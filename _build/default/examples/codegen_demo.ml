(* The Figure 3 generator pipeline, stage by stage: property specification
   -> intermediate-language machines (model-to-model) -> C monitors
   (model-to-text, Figure 10 shape).

   Run with: dune exec examples/codegen_demo.exe *)

let spec = {|
send: {
  MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
  maxDuration: 100ms onFail: skipTask;
}
|}

let () =
  print_endline "=== stage 0: property specification (Figure 5 excerpt) ===";
  print_string spec;
  let parsed = Artemis.Spec.Parser.parse_exn spec in
  let machines = Artemis.To_fsm.spec parsed in
  print_endline "\n=== stage 1: intermediate language (Figure 7 machines) ===";
  print_string (Artemis.Fsm.Printer.machines_to_string machines);
  print_endline "\n=== stage 2: generated C monitors (Figure 10 shape) ===";
  let c = Artemis.To_c.suite machines in
  print_string c;
  Printf.printf "\n/* estimated .text: %d bytes */\n"
    (Artemis.To_c.estimated_text_bytes c)
