(* Quickstart: the smallest complete ARTEMIS program.

   A two-task sensing app (sample -> transmit) runs on a harvested-energy
   device whose capacitor cannot power [transmit] from a partial charge,
   so transmit fails repeatedly after a cold start; a [maxTries] property
   bounds the retries and skips the path instead of hanging forever.

   Run with: dune exec examples/quickstart.exe *)

open Artemis

let () =
  (* 1. a tiny device: 3 mJ of usable energy per charge, 30 s to recharge *)
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 3.2) ~on_threshold:(Energy.mj 3.1)
      ~off_threshold:(Energy.mj 0.2) ()
  in
  let device =
    Device.create ~capacitor
      ~policy:(Charging_policy.Fixed_delay (Time.of_sec 30))
      ()
  in
  let nvm = Device.nvm device in

  (* 2. the application: two tasks on one path, linked by a channel *)
  let samples = Channel.create nvm ~name:"samples" ~bytes_per_item:4 ~capacity:4 in
  let sample =
    Task.make ~name:"sample" ~duration:(Time.of_ms 100) ~power:(Energy.mw 2.)
      ~body:(fun _ -> Channel.push samples 21.5)
      ()
  in
  (* transmit needs 3.12 mJ: more than one full charge can provide, so it
     can never complete - exactly the non-termination hazard of Section 2 *)
  let transmit =
    Task.make ~name:"transmit" ~duration:(Time.of_ms 120) ~power:(Energy.mw 26.)
      ()
  in
  let app = Task.app ~name:"quickstart" [ { Task.index = 1; tasks = [ sample; transmit ] } ] in

  (* 3. the property, in the ARTEMIS specification language *)
  let spec = "transmit: { maxTries: 3 onFail: skipPath; }" in
  let suite = compile_and_deploy_exn device app spec in

  (* 4. run, and look at what happened *)
  let stats = Runtime.run device app suite in
  Format.printf "%a@.@." Stats.pp stats;
  print_endline (Log.render_timeline (Device.log device));
  match stats.Stats.outcome with
  | Stats.Completed ->
      Printf.printf
        "\ncompleted: maxTries skipped the doomed transmit after %d failures\n"
        stats.Stats.power_failures
  | Stats.Did_not_finish reason -> Printf.printf "\nDNF: %s\n" reason
