(* The paper's benchmark end-to-end: the wearable health-monitoring app
   of Figures 4-6 with its Figure 5 property specification, run under
   intermittent power with a 6-minute charging delay - the scenario in
   which Mayfly never terminates while ARTEMIS's maxAttempt bounds the
   MITD retries and skips path 2 (Figures 12-13).

   Run with: dune exec examples/health_monitoring.exe *)

open Artemis
open Artemis_experiments

let describe label (stats : Stats.t) =
  let outcome =
    match stats.Stats.outcome with
    | Stats.Completed -> Printf.sprintf "completed in %.1f min" (Config.minutes stats)
    | Stats.Did_not_finish r -> "did not finish: " ^ r
  in
  Printf.printf "%-8s %s (%d power failures, %.1f mJ)\n" label outcome
    stats.Stats.power_failures (Config.millijoules stats)

let () =
  let supply = Config.Intermittent (Time.of_min 6) in
  let artemis = Config.run_health Config.Artemis_runtime supply in
  let mayfly = Config.run_health Config.Mayfly_runtime supply in
  print_endline "health-monitoring benchmark, 6 min charging delay:\n";
  describe "ARTEMIS" artemis.Config.stats;
  describe "Mayfly" mayfly.Config.stats;
  Printf.printf "\nARTEMIS delivered %d of 3 transmissions (path 2 skipped after 3 MITD attempts)\n"
    (artemis.Config.handles.Health_app.sent_messages ());
  print_endline "\n--- ARTEMIS path-2 story (Figure 13) ---";
  print_endline (Fig13.render (Fig13.run ~delay_min:6 ()));
  (* the emergency variant: a fever pushes avgTemp out of [36,38], firing
     the dpData property whose completePath action rushes the rest of
     path 1 through unmonitored (Section 3.2) *)
  print_endline "\n--- fever variant (dpData completePath) ---";
  let fever = Config.run_health ~temp_base:39.4 Config.Artemis_runtime Config.Continuous in
  Printf.printf "avgTemp = %.1f C -> monitoring suspended events: %d\n"
    (fever.Config.handles.Health_app.read_avg_temp ())
    (Log.count (Device.log fever.Config.device) (function
      | Event.Monitoring_suspended _ -> true
      | _ -> false))
