(* Periodic environmental sensing with the two properties the health
   benchmark does not exercise: [period] (Table 1) and the [minEnergy]
   energy-awareness extension (Section 4.2.2).

   A station samples and logs in a loop (modelled as repeated runs of a
   two-task path).  The period property watches that consecutive sampling
   instances start within the configured interval - charging delays that
   break the cadence restart the path up to maxAttempt times before
   giving up on the instance; minEnergy refuses to start the radio task
   on a nearly-empty capacitor instead of browning out mid-transmission.

   Run with: dune exec examples/periodic_sensing.exe *)

open Artemis

let spec =
  {|
sample: {
  period: 10s onFail: restartPath maxAttempt: 2 onFail: skipPath;
}
log: {
  minEnergy: 2mJ onFail: skipTask;
}
|}

(* four sampling rounds, modelled as four paths over the same two tasks
   (sharing task values across paths is exactly what the benchmark's send
   task does) *)
let rounds = 4

let build nvm =
  let readings = Channel.create nvm ~name:"readings" ~bytes_per_item:4 ~capacity:8 in
  let sample =
    Task.make ~name:"sample" ~duration:(Time.of_ms 150) ~power:(Energy.mw 3.)
      ~body:(fun ctx -> Channel.push readings (Prng.float_range ctx.Task.prng ~lo:10. ~hi:30.))
      ()
  in
  let log =
    Task.make ~name:"log" ~duration:(Time.of_ms 60) ~power:(Energy.mw 28.) ()
  in
  let paths =
    List.init rounds (fun i -> { Task.index = i + 1; tasks = [ sample; log ] })
  in
  (Task.app ~name:"weather-station" paths, readings)

let run_once label device =
  let app, readings = build (Device.nvm device) in
  let suite = compile_and_deploy_exn device app spec in
  let stats = Runtime.run device app suite in
  Printf.printf "%-22s %s, %d readings, %d power failures, %.2f mJ\n" label
    (match stats.Stats.outcome with
    | Stats.Completed -> "completed"
    | Stats.Did_not_finish r -> "DNF (" ^ r ^ ")")
    (Channel.length readings) stats.Stats.power_failures
    (Energy.to_mj stats.Stats.energy_total);
  (stats, Device.log device)

let () =
  (* lint the spec first, as a user would *)
  let parsed = Spec.Parser.parse_exn spec in
  (match Spec.Consistency.check_spec parsed with
  | [] -> print_endline "consistency check: clean"
  | findings -> print_endline (Spec.Consistency.to_string findings));

  (* plenty of energy: the period holds, everything runs *)
  let steady =
    Device.create
      ~capacitor:
        (Capacitor.create ~capacity:(Energy.mj 50.) ~on_threshold:(Energy.mj 48.)
           ~off_threshold:(Energy.mj 1.) ())
      ~policy:(Charging_policy.Fixed_delay (Time.of_sec 2))
      ()
  in
  ignore (run_once "steady power:" steady);

  (* a tight budget: the sample completes but the radio would brown out;
     minEnergy skips it preemptively *)
  let tight =
    Device.create
      ~capacitor:
        (Capacitor.create ~capacity:(Energy.mj 1.5) ~on_threshold:(Energy.mj 1.4)
           ~off_threshold:(Energy.mj 0.4) ())
      ~policy:(Charging_policy.Fixed_delay (Time.of_sec 30))
      ()
  in
  let _, log = run_once "tight energy budget:" tight in
  print_endline "\ntight-budget trace:";
  print_endline (Log.render_timeline ~limit:60 log)
