(* The Section 4.2.2 extension scenario: energy awareness as a new
   property, written directly in the intermediate language (the escape
   hatch the paper provides when the property specification language
   lacks expressiveness).

   The hand-written machine reads the built-in [energyLevel] primitive and
   tells the runtime to skip an expensive radio task whenever the stored
   energy cannot possibly carry it to completion - avoiding the wasted
   partial executions an oblivious runtime would pay for.

   Run with: dune exec examples/custom_fsm.exe *)

open Artemis

(* transmit needs 3.0 mJ plus the 0.4 mJ turn-off floor: skip it
   pre-execution below 3.4 mJ *)
let energy_guard_text =
  {|
machine energyGuard_transmit {
  initial state Watching {
    on startTask(transmit) when (energyLevel < 3.4) {
      fail skipTask;
    };
  }
}
|}

let build_app nvm =
  let sense =
    Task.make ~name:"sense" ~duration:(Time.of_ms 200) ~power:(Energy.mw 4.) ()
  in
  let transmit =
    Task.make ~name:"transmit" ~duration:(Time.of_ms 100) ~power:(Energy.mw 30.)
      ()
  in
  ignore nvm;
  Task.app ~name:"energy-aware" [ { Task.index = 1; tasks = [ sense; transmit ] } ]

let device () =
  (* 3.5 mJ usable: sense (0.8 mJ) leaves too little for transmit (3 mJ) *)
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 3.9) ~on_threshold:(Energy.mj 3.8)
      ~off_threshold:(Energy.mj 0.4) ()
  in
  Device.create ~capacitor
    ~policy:(Charging_policy.Fixed_delay (Time.of_min 2))
    ()

let run ~with_guard =
  let d = device () in
  let app = build_app (Device.nvm d) in
  let machines =
    if with_guard then [ Fsm.Parser.parse_machine_exn energy_guard_text ]
    else []
  in
  let suite = deploy d machines in
  let stats = Runtime.run d app suite in
  (stats, d)

let () =
  let naive, _ = run ~with_guard:false in
  let guarded, d = run ~with_guard:true in
  Printf.printf
    "without energy guard: %d power failures, %.2f mJ, %.1f s total\n"
    naive.Stats.power_failures
    (Energy.to_mj naive.Stats.energy_total)
    (Time.to_sec_f naive.Stats.total_time);
  Printf.printf
    "with energy guard:    %d power failures, %.2f mJ, %.1f s total\n"
    guarded.Stats.power_failures
    (Energy.to_mj guarded.Stats.energy_total)
    (Time.to_sec_f guarded.Stats.total_time);
  print_endline "\nguarded trace:";
  print_endline (Log.render_timeline (Device.log d))
