(* A compact Figure 12/16 sweep: ARTEMIS vs Mayfly across charging delays,
   showing the non-termination crossover at the 5-minute MITD limit.

   Run with: dune exec examples/mayfly_comparison.exe *)

open Artemis_experiments

let () =
  let rows = Fig12.run ~delays:[ 1; 3; 5; 7; 9 ] () in
  print_endline "execution time vs charging delay (Figure 12 shape):";
  print_endline (Fig12.render rows);
  print_endline "\nenergy per completed run (Figure 16 shape):";
  print_endline (Fig16.render (Fig16.run ()))
