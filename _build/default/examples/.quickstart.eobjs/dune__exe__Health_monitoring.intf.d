examples/health_monitoring.mli:
