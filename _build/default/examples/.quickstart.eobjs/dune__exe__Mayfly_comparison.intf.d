examples/mayfly_comparison.mli:
