examples/health_monitoring.ml: Artemis Artemis_experiments Config Device Event Fig13 Health_app Log Printf Stats Time
