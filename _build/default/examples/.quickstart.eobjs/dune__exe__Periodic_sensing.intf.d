examples/periodic_sensing.mli:
