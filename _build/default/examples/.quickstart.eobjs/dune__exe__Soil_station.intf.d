examples/soil_station.mli:
