examples/periodic_sensing.ml: Artemis Capacitor Channel Charging_policy Device Energy List Log Printf Prng Runtime Spec Stats Task Time
