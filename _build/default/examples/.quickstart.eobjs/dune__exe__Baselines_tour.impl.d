examples/baselines_tour.ml: Artemis Capacitor Charging_policy Checkpoint Device Energy Ink Mayfly Printf Runtime Spec Stats Task Time
