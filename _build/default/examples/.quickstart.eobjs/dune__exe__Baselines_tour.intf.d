examples/baselines_tour.mli:
