examples/mayfly_comparison.ml: Artemis_experiments Fig12 Fig16
