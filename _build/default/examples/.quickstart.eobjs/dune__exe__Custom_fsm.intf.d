examples/custom_fsm.mli:
