examples/quickstart.ml: Artemis Capacitor Channel Charging_policy Device Energy Format Log Printf Runtime Stats Task Time
