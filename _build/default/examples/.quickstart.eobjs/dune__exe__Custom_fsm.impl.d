examples/custom_fsm.ml: Artemis Capacitor Charging_policy Device Energy Fsm Log Printf Runtime Stats Task Time
