examples/codegen_demo.ml: Artemis Printf
