examples/quickstart.mli:
