examples/soil_station.ml: Artemis Capacitor Charging_policy Device Energy Harvester Printf Runtime Soil_app Stats Summary Time
