(* A batteryless soil-monitoring station (the deployment class the
   paper's introduction motivates) on a solar day/night harvesting trace.

   The station runs its three paths (soil profile, air readings,
   irrigation decision) on whatever the panel delivers: generous by day,
   nothing at night - so the same program transparently moves between
   continuous-feeling operation and deep intermittency, with the ARTEMIS
   properties (periodicity, collection, freshness, minEnergy on the
   actuator, dry-spell completePath) keeping it honest throughout.

   Run with: dune exec examples/soil_station.exe *)

open Artemis

(* a little solar day: strong morning, clouds, afternoon, night *)
let solar_trace =
  Harvester.Trace
    [|
      (Time.zero, Energy.uw 400.);           (* morning sun *)
      (Time.of_min 20, Energy.uw 60.);       (* clouds roll in *)
      (Time.of_min 40, Energy.uw 300.);      (* afternoon *)
      (Time.of_min 60, Energy.uw 15.);       (* dusk *)
    |]

let device () =
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 12.) ~on_threshold:(Energy.mj 11.5)
      ~off_threshold:(Energy.mj 1.) ()
  in
  Device.create ~capacitor
    ~policy:(Charging_policy.From_harvester solar_trace)
    ~horizon:(Time.of_min 360) ()

let run label ~dryness_base =
  let d = device () in
  let app, handles = Soil_app.make ~dryness_base (Device.nvm d) in
  let suite = compile_and_deploy_exn d app Soil_app.spec_text in
  let stats = Runtime.run d app suite in
  Printf.printf "%-18s %s | %d uplinks, %d actuations, dryness %.2f, %d power failures\n"
    label
    (match stats.Stats.outcome with
    | Stats.Completed -> Printf.sprintf "completed in %5.1f min" (Time.to_min_f stats.Stats.total_time)
    | Stats.Did_not_finish r -> "DNF: " ^ r)
    (handles.Soil_app.uplinks ())
    (handles.Soil_app.actuations ())
    (handles.Soil_app.read_dryness ())
    stats.Stats.power_failures;
  d

let () =
  print_endline "soil station on a solar day/night trace:\n";
  let healthy_device = run "healthy soil:" ~dryness_base:0.30 in
  let _ = run "dry spell:" ~dryness_base:0.70 in
  print_endline "\nmonitor activity (healthy run):";
  print_endline (Summary.render (Device.log healthy_device))
