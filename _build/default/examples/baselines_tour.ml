(* A tour of the four intermittent execution models in this repository
   (the executable version of the paper's Table 3), all running the same
   two-step sense-then-transmit workload on identical devices:

   - ARTEMIS: task-based runtime + generated monitors; maxTries bounds
     the doomed re-executions instead of looping;
   - Mayfly:  task-based runtime with fused expiration checks and a fixed
     restart reaction - non-termination under long outages;
   - TICS-style checkpointing: sequential segments, freshness annotation,
     restart-from-producer reaction - also non-terminating;
   - InK: reactive kernel; the fixed reaction evicts the whole thread,
     which terminates but delivers nothing.

   Run with: dune exec examples/baselines_tour.exe *)

open Artemis

let sense_ms = 100
let transmit_ms = 200

(* every model runs on this device: sense fits a charge, transmit (0.6 mJ)
   exceeds even a full one (0.5 mJ usable) - the doomed-peripheral
   scenario of Section 2 - and each failure costs a 6-minute recharge
   against a 2-minute freshness window *)
let device () =
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 0.75) ~on_threshold:(Energy.mj 0.7)
      ~off_threshold:(Energy.mj 0.25) ()
  in
  Device.create ~capacitor
    ~policy:(Charging_policy.Fixed_delay (Time.of_min 6))
    ~horizon:(Time.of_min 90) ()

let sense_task () =
  Task.make ~name:"sense" ~duration:(Time.of_ms sense_ms) ~power:(Energy.mw 2.) ()

let transmit_task () =
  Task.make ~name:"transmit" ~duration:(Time.of_ms transmit_ms)
    ~power:(Energy.mw 3.) ()

let describe label (stats : Stats.t) extra =
  Printf.printf "%-24s %-44s %s\n" label
    (match stats.Stats.outcome with
    | Stats.Completed ->
        Printf.sprintf "completed in %.1f min (%d power failures)"
          (Time.to_min_f stats.Stats.total_time)
          stats.Stats.power_failures
    | Stats.Did_not_finish reason -> "DNF: " ^ reason)
    extra

let run_artemis () =
  let d = device () in
  let app = Task.app ~name:"tour" [ { Task.index = 1; tasks = [ sense_task (); transmit_task () ] } ] in
  let spec =
    "transmit: { maxTries: 3 onFail: skipPath; MITD: 2min dpTask: sense \
     onFail: restartPath maxAttempt: 2 onFail: skipPath; }"
  in
  let stats = Runtime.run d app (compile_and_deploy_exn d app spec) in
  describe "ARTEMIS" stats "(maxTries bounds the attempts, path skipped)"

let run_mayfly () =
  let d = device () in
  let app = Task.app ~name:"tour" [ { Task.index = 1; tasks = [ sense_task (); transmit_task () ] } ] in
  let annotations =
    Mayfly.annotations_of_spec
      (Spec.Parser.parse_exn
         "transmit: { MITD: 2min dpTask: sense onFail: restartPath; }")
  in
  describe "Mayfly" (Mayfly.run d app annotations) "(fixed restart, loops forever)"

let run_checkpointed () =
  let d = device () in
  let program =
    {
      Checkpoint.program_name = "tour";
      segments =
        [
          Checkpoint.segment ~name:"sense" ~duration:(Time.of_ms sense_ms)
            ~power:(Energy.mw 2.) ();
          Checkpoint.segment ~name:"transmit" ~duration:(Time.of_ms transmit_ms)
            ~power:(Energy.mw 3.)
            ~freshness:
              {
                Checkpoint.data_from = "sense";
                within = Time.of_min 2;
                on_expire = Checkpoint.Restart_from "sense";
              }
            ();
        ];
    }
  in
  describe "TICS-style checkpoints" (Checkpoint.run d program)
    "(restart-from-producer, loops forever)"

let run_ink () =
  let d = device () in
  let thread =
    {
      Ink.thread_name = "sample";
      priority = 1;
      tasks = [ sense_task (); transmit_task () ];
      expiry = Some (Time.of_min 2);
    }
  in
  let outcome = Ink.run d [ { Ink.thread; arrival = Time.zero } ] in
  describe "InK" outcome.Ink.stats
    (Printf.sprintf "(thread evicted: %b, nothing delivered)"
       (outcome.Ink.evicted_threads <> []))

let () =
  Printf.printf "sense (fits one charge) -> transmit (never fits even a full charge);\n";
  Printf.printf "every failure costs a 6 min recharge against a 2 min freshness window\n\n";
  run_artemis ();
  run_mayfly ();
  run_checkpointed ();
  run_ink ()
