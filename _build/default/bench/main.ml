(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on the simulated testbed, then micro-benchmarks
   each experiment kernel with Bechamel (one Test.make per table/figure).

   Absolute numbers come from the simulator's calibrated cost model; the
   reproduction target is the paper's shape: who wins, by how much, where
   the crossovers are.  EXPERIMENTS.md records paper-vs-measured. *)

open Artemis_experiments

let section title body =
  Printf.printf "\n=== %s ===\n%s\n" title body;
  flush stdout

let reproduce_all () =
  section "Figure 12: total execution time vs charging time (1-10 min)"
    (Fig12.render (Fig12.run ()));
  section "Figure 13: ARTEMIS prevents non-termination (6 min charging)"
    (Fig13.render (Fig13.run ()));
  let fig14 = Fig14.run () in
  section "Figure 14: execution time on continuous power (seconds)"
    (Fig14.render fig14);
  section "Figure 15: overhead breakdown on continuous power (milliseconds)"
    (Fig14.render_overheads fig14);
  section "Figure 16: energy consumption per completed run"
    (Fig16.render (Fig16.run ()));
  section "Table 2: memory requirements (bytes)" (Table2.render (Table2.run ()));
  section "Table 3: feature comparison with prior art" (Table3.render ());
  section
    "Ablation A: monitor deployment alternatives (Section 7), health benchmark"
    (Ablation.render_deployments (Ablation.deployments ()));
  section "Ablation B: collect-counter semantics (DESIGN.md decision 1)"
    (Ablation.render_collect (Ablation.collect_semantics ()));
  section
    "Baseline: checkpoint-based system (TICS-style) on the benchmark workload"
    (Baseline_checkpoint.render (Baseline_checkpoint.run ()));
  section "Timekeeper quality vs property enforcement (6 min charging)"
    (Timekeeper_sweep.render (Timekeeper_sweep.run ()));
  section "Harvester study: emergent charging delays (duty-cycled harvester)"
    (Harvester_study.render (Harvester_study.run ()));
  section "Scalability: monitor overhead vs deployed property count (P3)"
    (Scalability.render (Scalability.run ()));
  section "Yield study: reactive soil station, 20 rounds per harvest level"
    (Yield_study.render (Yield_study.run ()))

(* --- Bechamel micro-benchmarks over the experiment kernels --- *)

open Bechamel
open Toolkit

let stagedf f = Staged.stage f

let tests =
  Test.make_grouped ~name:"experiments"
    [
      Test.make ~name:"fig12-one-delay"
        (stagedf (fun () -> ignore (Fig12.run ~delays:[ 2 ] ())));
      Test.make ~name:"fig13-timeline"
        (stagedf (fun () -> ignore (Fig13.run ~delay_min:6 ())));
      Test.make ~name:"fig14-fig15-continuous"
        (stagedf (fun () -> ignore (Fig14.run ())));
      Test.make ~name:"fig16-energy-2min"
        (stagedf (fun () ->
             ignore
               (Fig16.run
                  ~scenarios:
                    [
                      {
                        Fig16.label = "2 min";
                        supply = Config.Intermittent (Artemis.Time.of_min 2);
                      };
                    ]
                  ())));
      Test.make ~name:"table2-memory" (stagedf (fun () -> ignore (Table2.run ())));
      Test.make ~name:"ablation-deployments"
        (stagedf (fun () -> ignore (Ablation.deployments ())));
      Test.make ~name:"ablation-collect"
        (stagedf (fun () -> ignore (Ablation.collect_semantics ())));
      Test.make ~name:"baseline-checkpoint"
        (stagedf (fun () -> ignore (Baseline_checkpoint.run ~delays:[ 1 ] ())));
      Test.make ~name:"timekeeper-sweep"
        (stagedf (fun () -> ignore (Timekeeper_sweep.run ())));
      Test.make ~name:"harvester-study"
        (stagedf (fun () -> ignore (Harvester_study.run ~rates_uw:[ 200. ] ())));
      Test.make ~name:"scalability"
        (stagedf (fun () -> ignore (Scalability.run ~factors:[ 2 ] ())));
      Test.make ~name:"yield-study"
        (stagedf (fun () -> ignore (Yield_study.run ~rounds:3 ~rates_uw:[ 100. ] ())));
      Test.make ~name:"table3-features" (stagedf (fun () -> ignore (Table3.render ())));
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n=== Bechamel micro-benchmarks (ns per kernel run) ===\n";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Printf.sprintf "%.0f ns" e
        | Some _ | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf " (r2=%.3f)" r
        | None -> ""
      in
      Printf.printf "%-32s %s%s\n" name estimate r2)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  flush stdout

let () =
  reproduce_all ();
  benchmark ()
