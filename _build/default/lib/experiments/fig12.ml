open Artemis

type row = { delay_min : int; artemis : Stats.t; mayfly : Stats.t }

let run ?(delays = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]) () =
  List.map
    (fun delay_min ->
      let supply = Config.Intermittent (Time.of_min delay_min) in
      let artemis = (Config.run_health Config.Artemis_runtime supply).Config.stats in
      let mayfly = (Config.run_health Config.Mayfly_runtime supply).Config.stats in
      { delay_min; artemis; mayfly })
    delays

let cell (s : Stats.t) =
  match s.Stats.outcome with
  | Stats.Completed -> Printf.sprintf "%.1f min" (Config.minutes s)
  | Stats.Did_not_finish _ -> "DNF (non-termination)"

let render rows =
  let table =
    Table.create
      ~headers:[ "charging time"; "ARTEMIS total exec"; "Mayfly total exec" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ Printf.sprintf "%d min" r.delay_min; cell r.artemis; cell r.mayfly ])
    rows;
  Table.render table
