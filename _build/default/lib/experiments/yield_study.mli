(** Long-horizon yield of a reactive deployment.

    A monitoring station does not run once; it reports for as long as the
    ambient source feeds it.  This study runs the soil station for many
    reactive rounds (monitor state persisting across rounds) under
    different constant harvesting rates and reports the delivered uplink
    yield: how the same monitored program degrades gracefully from
    continuous-feeling operation to deep intermittency. *)

open Artemis

type row = {
  harvest_uw : float;
  rounds : int;  (** completed passes (Round_completed + final) *)
  uplinks : int;  (** reports actually delivered *)
  hours : float;  (** simulated wall-clock *)
  uplinks_per_hour : float;
  stats : Stats.t;
}

val run : ?rounds:int -> ?rates_uw:float list -> unit -> row list
(** Defaults: 20 rounds at 500, 100, 50 and 25 uW. *)

val render : row list -> string
