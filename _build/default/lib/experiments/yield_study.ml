open Artemis

type row = {
  harvest_uw : float;
  rounds : int;
  uplinks : int;
  hours : float;
  uplinks_per_hour : float;
  stats : Stats.t;
}

let station_capacitor () =
  Capacitor.create ~capacity:(Energy.mj 12.) ~on_threshold:(Energy.mj 11.5)
    ~off_threshold:(Energy.mj 1.) ()

let run_at ~rounds ~harvest_uw =
  let device =
    Device.create
      ~capacitor:(station_capacitor ())
      ~policy:
        (Charging_policy.From_harvester (Harvester.Constant (Energy.uw harvest_uw)))
      ~horizon:(Time.of_min 720) ()
  in
  let app, handles = Soil_app.make (Device.nvm device) in
  let suite = compile_and_deploy_exn device app Soil_app.spec_text in
  let config = { Runtime.default_config with rounds } in
  let stats = Runtime.run ~config device app suite in
  let completed_rounds =
    Log.count (Device.log device) (function
      | Event.Round_completed _ -> true
      | _ -> false)
    + (if Stats.completed stats then 1 else 0)
  in
  let hours = Time.to_sec_f stats.Stats.total_time /. 3600. in
  let uplinks = handles.Soil_app.uplinks () in
  {
    harvest_uw;
    rounds = completed_rounds;
    uplinks;
    hours;
    uplinks_per_hour = (if hours > 0. then float_of_int uplinks /. hours else 0.);
    stats;
  }

let run ?(rounds = 20) ?(rates_uw = [ 500.; 100.; 50.; 25. ]) () =
  List.map (fun harvest_uw -> run_at ~rounds ~harvest_uw) rates_uw

let render rows =
  let table =
    Table.create
      ~headers:
        [ "avg harvest"; "rounds done"; "uplinks"; "sim hours"; "uplinks/hour" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Printf.sprintf "%.0f uW" r.harvest_uw;
          string_of_int r.rounds;
          string_of_int r.uplinks;
          Printf.sprintf "%.2f" r.hours;
          Printf.sprintf "%.1f" r.uplinks_per_hour;
        ])
    rows;
  Table.render table
