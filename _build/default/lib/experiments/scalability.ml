open Artemis

type row = {
  copies : int;
  monitors : int;
  monitor_ms : float;
  app_s : float;
  monitor_fram : int;
}

(* k independent copies of the benchmark's machines; each copy is renamed
   so its FRAM cells are distinct, but checks the same events. *)
let replicated_machines k =
  let base = To_fsm.spec (Spec.Parser.parse_exn Health_app.spec_text) in
  List.concat_map
    (fun i ->
      List.map
        (fun (m : Fsm.Ast.machine) ->
          if i = 0 then m
          else
            { m with Fsm.Ast.machine_name = Printf.sprintf "%s_copy%d" m.Fsm.Ast.machine_name i })
        base)
    (List.init k Fun.id)

let run_with_copies copies =
  let device = Config.device Config.Continuous in
  let app, _ = Health_app.make (Device.nvm device) in
  let machines = replicated_machines copies in
  let suite = deploy device machines in
  let stats = Runtime.run device app suite in
  {
    copies;
    monitors = List.length machines;
    monitor_ms = Time.to_ms_f stats.Stats.monitor_overhead;
    app_s = Time.to_sec_f stats.Stats.app_time;
    monitor_fram = Nvm.footprint (Device.nvm device) ~kind:Nvm.Fram ~region:Nvm.Monitor;
  }

let run ?(factors = [ 1; 2; 4; 8 ]) () = List.map run_with_copies factors

let render rows =
  let table =
    Table.create
      ~headers:
        [ "property copies"; "monitors"; "monitor overhead (ms)"; "app time (s)"; "monitor FRAM (B)" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.copies;
          string_of_int r.monitors;
          Printf.sprintf "%.2f" r.monitor_ms;
          Printf.sprintf "%.3f" r.app_s;
          string_of_int r.monitor_fram;
        ])
    rows;
  Table.render table
