open Artemis

type report = {
  mayfly_runtime_fram : int;
  mayfly_runtime_ram : int;
  artemis_runtime_fram : int;
  artemis_runtime_ram : int;
  monitor_fram : int;
  monitor_ram : int;
  monitor_text : int;
}

let footprint device kind region =
  Nvm.footprint (Device.nvm device) ~kind ~region

let run () =
  (* a short continuous-power run allocates every persistent structure *)
  let artemis = Config.run_health Config.Artemis_runtime Config.Continuous in
  let mayfly = Config.run_health Config.Mayfly_runtime Config.Continuous in
  let c_unit =
    match generate_monitor_c Health_app.spec_text with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  {
    mayfly_runtime_fram = footprint mayfly.Config.device Nvm.Fram Nvm.Runtime;
    mayfly_runtime_ram = footprint mayfly.Config.device Nvm.Ram Nvm.Runtime;
    artemis_runtime_fram = footprint artemis.Config.device Nvm.Fram Nvm.Runtime;
    artemis_runtime_ram = footprint artemis.Config.device Nvm.Ram Nvm.Runtime;
    monitor_fram = footprint artemis.Config.device Nvm.Fram Nvm.Monitor;
    monitor_ram = footprint artemis.Config.device Nvm.Ram Nvm.Monitor;
    monitor_text = To_c.estimated_text_bytes c_unit;
  }

let render r =
  let table =
    Table.create ~headers:[ "component"; ".text (B)"; "RAM (B)"; "FRAM (B)" ]
  in
  Table.add_row table
    [
      "Mayfly runtime";
      "n/a (simulated)";
      string_of_int r.mayfly_runtime_ram;
      string_of_int r.mayfly_runtime_fram;
    ];
  Table.add_row table
    [
      "ARTEMIS runtime";
      "n/a (simulated)";
      string_of_int r.artemis_runtime_ram;
      string_of_int r.artemis_runtime_fram;
    ];
  Table.add_row table
    [
      "ARTEMIS monitor";
      string_of_int r.monitor_text;
      string_of_int r.monitor_ram;
      string_of_int r.monitor_fram;
    ];
  Table.render table
