(** Table 2: memory requirements of the benchmark deployment.

    FRAM and RAM columns are exact byte counts of the simulated cells each
    component allocates; the monitor [.text] column is estimated from the
    generated C translation unit (DESIGN.md decision 6).  The two
    runtimes' [.text] cannot be measured in simulation (no msp430-gcc
    here) and is reported as n/a.  The reproduction targets are the
    orderings the paper draws conclusions from: ARTEMIS's runtime needs
    less FRAM than Mayfly's fused runtime, and the generated monitors add
    the largest (application-specific) share. *)

type report = {
  mayfly_runtime_fram : int;
  mayfly_runtime_ram : int;
  artemis_runtime_fram : int;
  artemis_runtime_ram : int;
  monitor_fram : int;
  monitor_ram : int;
  monitor_text : int;  (** estimated bytes from the generated C *)
}

val run : unit -> report
val render : report -> string
