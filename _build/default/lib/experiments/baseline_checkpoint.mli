(** The checkpoint-based system family (TICS-style) on the benchmark
    workload - an executable version of Table 3's third row family.

    The health-monitoring benchmark is re-expressed as a sequential
    checkpointed program (checkpointing systems have no task graph): the
    respiration chain carries a TICS-style freshness annotation mirroring
    the MITD property ([send] data must be younger than 5 minutes,
    expiration restarts from [accel]).

    Expected shape: like Mayfly - and unlike ARTEMIS - the checkpointed
    system has no bounded-attempt construct, so charging delays beyond
    the freshness window drive it into non-termination; on short delays
    it completes with *less* runtime overhead than ARTEMIS (checkpoints
    are its only bookkeeping; it evaluates no properties beyond the
    annotation). *)

open Artemis

type row = {
  delay : Config.power_supply;
  label : string;
  checkpointed : Stats.t;
  artemis : Stats.t;
}

val run : ?delays:int list -> unit -> row list
(** Default: continuous, then 1 and 6 minute delays. *)

val render : row list -> string
