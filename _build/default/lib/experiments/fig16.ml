open Artemis

type scenario = { label : string; supply : Config.power_supply }
type row = { scenario : scenario; artemis : Stats.t; mayfly : Stats.t }

let scenarios =
  { label = "continuous"; supply = Config.Continuous }
  :: List.map
       (fun m ->
         {
           label = Printf.sprintf "%d min charging" m;
           supply = Config.Intermittent (Time.of_min m);
         })
       [ 1; 2; 5; 10 ]

let run ?(scenarios = scenarios) () =
  List.map
    (fun scenario ->
      let artemis =
        (Config.run_health Config.Artemis_runtime scenario.supply).Config.stats
      in
      let mayfly =
        (Config.run_health Config.Mayfly_runtime scenario.supply).Config.stats
      in
      { scenario; artemis; mayfly })
    scenarios

let cell (s : Stats.t) =
  match s.Stats.outcome with
  | Stats.Completed -> Printf.sprintf "%.1f mJ" (Config.millijoules s)
  | Stats.Did_not_finish _ ->
      Printf.sprintf "unbounded (>= %.0f mJ at horizon)" (Config.millijoules s)

let render rows =
  let table =
    Table.create ~headers:[ "power supply"; "ARTEMIS energy"; "Mayfly energy" ]
  in
  List.iter
    (fun r ->
      Table.add_row table [ r.scenario.label; cell r.artemis; cell r.mayfly ])
    rows;
  Table.render table
