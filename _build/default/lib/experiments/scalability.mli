(** Scalability of property checking (the paper's contribution 3 and
    problem P3).

    The paper argues that fused designs cannot scale their property set,
    while ARTEMIS adds properties without touching application or runtime
    code.  This study deploys the benchmark with its property set
    replicated k times (every copy is a real, independently evaluated
    monitor) and measures how the monitor overhead grows while the
    application time stays untouched: the per-event cost is the dispatch
    plus a linear per-property term, so overhead should grow linearly in
    k with everything else constant. *)


type row = {
  copies : int;  (** replication factor of the benchmark property set *)
  monitors : int;  (** deployed monitor count *)
  monitor_ms : float;
  app_s : float;
  monitor_fram : int;
}

val run : ?factors:int list -> unit -> row list
(** Default factors: 1, 2, 4, 8. *)

val render : row list -> string
