open Artemis

type row = {
  system : string;
  app_s : float;
  runtime_ms : float;
  monitor_ms : float;
  total_s : float;
  stats : Stats.t;
}

let row system stats =
  {
    system;
    app_s = Time.to_sec_f stats.Stats.app_time;
    runtime_ms = Time.to_ms_f stats.Stats.runtime_overhead;
    monitor_ms = Time.to_ms_f stats.Stats.monitor_overhead;
    total_s = Time.to_sec_f stats.Stats.total_time;
    stats;
  }

let run () =
  let artemis =
    (Config.run_health Config.Artemis_runtime Config.Continuous).Config.stats
  in
  let mayfly =
    (Config.run_health Config.Mayfly_runtime Config.Continuous).Config.stats
  in
  [ row "ARTEMIS" artemis; row "Mayfly" mayfly ]

let render rows =
  let table =
    Table.create
      ~headers:[ "system"; "app logic (s)"; "runtime+monitor overhead (s)"; "total (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.system;
          Printf.sprintf "%.3f" r.app_s;
          Printf.sprintf "%.4f" ((r.runtime_ms +. r.monitor_ms) /. 1e3);
          Printf.sprintf "%.3f" r.total_s;
        ])
    rows;
  Table.render table

let render_overheads rows =
  let table =
    Table.create
      ~headers:[ "system"; "runtime overhead (ms)"; "monitor overhead (ms)"; "total overhead (ms)" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.system;
          Printf.sprintf "%.2f" r.runtime_ms;
          Printf.sprintf "%.2f" r.monitor_ms;
          Printf.sprintf "%.2f" (r.runtime_ms +. r.monitor_ms);
        ])
    rows;
  Table.render table
