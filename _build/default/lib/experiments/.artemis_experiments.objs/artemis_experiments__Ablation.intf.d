lib/experiments/ablation.mli: Artemis Stats
