lib/experiments/harvester_study.ml: Artemis Capacitor Charging_policy Config Device Energy Event Harvester Health_app List Log Mayfly Printf Runtime Spec Stats Table Time
