lib/experiments/yield_study.mli: Artemis Stats
