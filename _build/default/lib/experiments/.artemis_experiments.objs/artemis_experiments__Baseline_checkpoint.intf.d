lib/experiments/baseline_checkpoint.mli: Artemis Config Stats
