lib/experiments/config.ml: Artemis Capacitor Charging_policy Device Energy Health_app Mayfly Runtime Spec Stats Time
