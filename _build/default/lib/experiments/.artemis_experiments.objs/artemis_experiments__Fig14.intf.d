lib/experiments/fig14.mli: Artemis Stats
