lib/experiments/table2.ml: Artemis Config Device Health_app Nvm Table To_c
