lib/experiments/fig16.mli: Artemis Config Stats
