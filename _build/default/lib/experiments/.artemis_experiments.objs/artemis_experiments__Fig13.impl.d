lib/experiments/fig13.ml: Artemis Config Device Event Format List Log Printf Stats String Time
