lib/experiments/fig12.ml: Artemis Config List Printf Stats Table Time
