lib/experiments/harvester_study.mli: Artemis Stats Time
