lib/experiments/scalability.ml: Artemis Config Device Fsm Fun Health_app List Nvm Printf Runtime Spec Stats Table Time To_fsm
