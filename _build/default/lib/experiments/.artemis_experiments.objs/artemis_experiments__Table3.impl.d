lib/experiments/table3.ml: Artemis List
