lib/experiments/yield_study.ml: Artemis Capacitor Charging_policy Device Energy Event Harvester List Log Printf Runtime Soil_app Stats Table Time
