lib/experiments/baseline_checkpoint.ml: Artemis Checkpoint Config Energy List Printf Stats Table Time
