lib/experiments/fig12.mli: Artemis Stats
