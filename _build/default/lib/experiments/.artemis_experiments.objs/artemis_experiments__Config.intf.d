lib/experiments/config.mli: Artemis Capacitor Device Health_app Persistent_clock Runtime Stats Time To_fsm
