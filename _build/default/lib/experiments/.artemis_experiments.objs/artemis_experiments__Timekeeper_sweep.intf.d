lib/experiments/timekeeper_sweep.mli: Artemis Stats
