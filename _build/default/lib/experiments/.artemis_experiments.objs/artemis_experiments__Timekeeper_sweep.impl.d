lib/experiments/timekeeper_sweep.ml: Artemis Config Device Event Health_app List Log Persistent_clock Printf Remanence_timekeeper Stats String Table Time
