lib/experiments/scalability.mli:
