lib/experiments/fig16.ml: Artemis Config List Printf Stats Table Time
