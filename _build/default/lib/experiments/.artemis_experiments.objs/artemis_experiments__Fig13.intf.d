lib/experiments/fig13.mli: Artemis Stats
