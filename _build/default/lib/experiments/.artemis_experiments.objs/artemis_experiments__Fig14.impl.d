lib/experiments/fig14.ml: Artemis Config List Printf Stats Table Time
