lib/experiments/ablation.ml: Artemis Config Device Energy Event Health_app List Log Printf Runtime Spec Stats Table Time To_c To_fsm
