(** Figure 13: how ARTEMIS prevents non-termination - the event timeline
    of the benchmark under a 6-minute charging delay, showing the three
    MITD attempts on path 2 and the final [skipPath] that lets [send]
    data from the remaining paths through. *)

open Artemis

type result = {
  stats : Stats.t;
  mitd_violations : int;  (** MITD monitor verdicts observed *)
  path2_restarts : int;
  path2_skipped : bool;
  timeline : string;  (** path-2 focused, annotated event timeline *)
}

val run : ?delay_min:int -> unit -> result
val render : result -> string
