(** Figures 14 and 15: execution time and overhead breakdown on
    continuous power.

    With continuous power both systems run the identical task sequence,
    so the comparison isolates the bookkeeping costs: application time on
    the seconds scale (Figure 14), runtime/monitor overheads on the
    milliseconds scale (Figure 15), with ARTEMIS slightly above Mayfly
    because monitoring is a separate, richer component. *)

open Artemis

type row = {
  system : string;
  app_s : float;  (** application logic, seconds *)
  runtime_ms : float;
  monitor_ms : float;
  total_s : float;
  stats : Stats.t;
}

val run : unit -> row list
(** Two rows: ARTEMIS then Mayfly, same benchmark on continuous power. *)

val render : row list -> string
(** Figure 14 view (seconds). *)

val render_overheads : row list -> string
(** Figure 15 view (milliseconds). *)
