type spec_support =
  | No_language_constructs
  | Limited_temporal
  | Open_property_language

type checking =
  | By_programmer
  | By_compiler
  | By_runtime_fixed
  | By_generated_monitors

type adaptation =
  | Programmer_handled
  | Compile_time_only
  | Fixed_runtime_reaction
  | Programmable_actions

type entry = {
  name : string;
  spec : spec_support;
  checking : checking;
  adaptation : adaptation;
}

let entries =
  [
    {
      name = "DINO/Chain/Alpaca/HarvOS/Chinchilla/Coati";
      spec = No_language_constructs;
      checking = By_programmer;
      adaptation = Programmer_handled;
    };
    {
      name = "Capybara";
      spec = No_language_constructs;
      checking = By_compiler;
      adaptation = Compile_time_only;
    };
    {
      name = "Etap";
      spec = No_language_constructs;
      checking = By_compiler;
      adaptation = Compile_time_only;
    };
    {
      name = "Mayfly";
      spec = Limited_temporal;
      checking = By_runtime_fixed;
      adaptation = Fixed_runtime_reaction;
    };
    {
      name = "InK";
      spec = Limited_temporal;
      checking = By_runtime_fixed;
      adaptation = Fixed_runtime_reaction;
    };
    {
      name = "TICS";
      spec = Limited_temporal;
      checking = By_runtime_fixed;
      adaptation = Fixed_runtime_reaction;
    };
    {
      name = "ImmortalThreads";
      spec = Limited_temporal;
      checking = By_runtime_fixed;
      adaptation = Fixed_runtime_reaction;
    };
    {
      name = "ARTEMIS";
      spec = Open_property_language;
      checking = By_generated_monitors;
      adaptation = Programmable_actions;
    };
  ]

let artemis_entry = List.nth entries (List.length entries - 1)

let spec_to_string = function
  | No_language_constructs -> "no language constructs"
  | Limited_temporal -> "limited temporal properties"
  | Open_property_language -> "open, extensible property language"

let checking_to_string = function
  | By_programmer -> "explicitly by programmer"
  | By_compiler -> "compile-time analysis"
  | By_runtime_fixed -> "fixed checks fused in runtime"
  | By_generated_monitors -> "generated application-specific monitors"

let adaptation_to_string = function
  | Programmer_handled -> "explicitly by programmer"
  | Compile_time_only -> "compile-time solution (n/a)"
  | Fixed_runtime_reaction -> "fixed reaction (restart/evict)"
  | Programmable_actions -> "programmer-specified actions via monitors"

let render () =
  let table =
    Artemis.Table.create
      ~headers:
        [ "prior art"; "property specification"; "property checking"; "runtime adaptation" ]
  in
  List.iter
    (fun e ->
      Artemis.Table.add_row table
        [
          e.name;
          spec_to_string e.spec;
          checking_to_string e.checking;
          adaptation_to_string e.adaptation;
        ])
    entries;
  Artemis.Table.render table
