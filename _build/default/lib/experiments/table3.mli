(** Table 3: qualitative comparison of ARTEMIS against prior art, rendered
    from typed feature descriptors (so tests can assert, e.g., that only
    ARTEMIS combines open property specification with runtime checking
    and runtime adaptation). *)

type spec_support =
  | No_language_constructs
  | Limited_temporal
  | Open_property_language

type checking =
  | By_programmer
  | By_compiler
  | By_runtime_fixed  (** fixed set, fused into the runtime *)
  | By_generated_monitors

type adaptation =
  | Programmer_handled
  | Compile_time_only
  | Fixed_runtime_reaction
  | Programmable_actions

type entry = {
  name : string;
  spec : spec_support;
  checking : checking;
  adaptation : adaptation;
}

val entries : entry list
(** One row per system (or system family) of the paper's Table 3. *)

val artemis_entry : entry
val render : unit -> string
