(** Figure 12: total execution time under intermittent power as the
    charging delay sweeps 1-10 minutes.

    Expected shape: both systems degrade linearly with the delay up to
    5 minutes; beyond that Mayfly never satisfies the [send]/[accel] MITD
    again and does not terminate, while ARTEMIS's [maxAttempt] bounds the
    retries and the application still completes. *)

open Artemis

type row = { delay_min : int; artemis : Stats.t; mayfly : Stats.t }

val run : ?delays:int list -> unit -> row list
(** Default sweep: 1..10 minutes. *)

val render : row list -> string
(** Paper-style rows: delay, per-system completion time or DNF. *)
