open Artemis

type row = {
  delay : Config.power_supply;
  label : string;
  checkpointed : Stats.t;
  artemis : Stats.t;
}

let mcu = Energy.mw 1.2
let with_peripheral p = Energy.add_power mcu (Energy.mw p)

(* The benchmark flattened into a sequential checkpointed program, same
   durations and draws as Health_app; the respiration chain carries the
   5-minute freshness annotation that mirrors the MITD property. *)
let health_program () =
  let seg = Checkpoint.segment in
  {
    Checkpoint.program_name = "health-monitoring-checkpointed";
    segments =
      [
        seg ~name:"bodyTemp" ~duration:(Time.of_ms 250) ~power:(with_peripheral 3.0) ();
        seg ~name:"calcAvg" ~duration:(Time.of_ms 30) ~power:mcu ();
        seg ~name:"heartRate" ~duration:(Time.of_ms 200) ~power:mcu ();
        seg ~name:"sendVitals" ~duration:(Time.of_ms 80) ~power:(with_peripheral 30.0) ();
        seg ~name:"accel" ~duration:(Time.of_ms 900) ~power:(with_peripheral 18.0) ();
        seg ~name:"classify" ~duration:(Time.of_ms 250) ~power:mcu ();
        seg ~name:"sendBreath" ~duration:(Time.of_ms 80) ~power:(with_peripheral 30.0)
          ~freshness:
            {
              Checkpoint.data_from = "accel";
              within = Time.of_min 5;
              on_expire = Checkpoint.Restart_from "accel";
            }
          ();
        seg ~name:"micSense" ~duration:(Time.of_ms 600) ~power:(with_peripheral 12.0) ();
        seg ~name:"filter" ~duration:(Time.of_ms 150) ~power:mcu ();
        seg ~name:"sendCough" ~duration:(Time.of_ms 80) ~power:(with_peripheral 30.0) ();
      ];
  }

let run_checkpointed supply =
  let device = Config.device supply in
  Checkpoint.run device (health_program ())

let run ?(delays = [ 1; 6 ]) () =
  let scenario label supply =
    {
      delay = supply;
      label;
      checkpointed = run_checkpointed supply;
      artemis = (Config.run_health Config.Artemis_runtime supply).Config.stats;
    }
  in
  scenario "continuous" Config.Continuous
  :: List.map
       (fun m ->
         scenario
           (Printf.sprintf "%d min charging" m)
           (Config.Intermittent (Time.of_min m)))
       delays

let cell (s : Stats.t) =
  match s.Stats.outcome with
  | Stats.Completed ->
      Printf.sprintf "%.1f min (rt %.1f ms)" (Config.minutes s)
        (Time.to_ms_f (Stats.overhead_time s))
  | Stats.Did_not_finish _ -> "DNF (non-termination)"

let render rows =
  let table =
    Table.create
      ~headers:[ "power supply"; "checkpointed (TICS-style)"; "ARTEMIS" ]
  in
  List.iter
    (fun r -> Table.add_row table [ r.label; cell r.checkpointed; cell r.artemis ])
    rows;
  Table.render table
