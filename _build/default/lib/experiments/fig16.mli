(** Figure 16: energy to complete one application run, on continuous
    power and with 1/2/5/10-minute charging delays.

    Expected shape: parity between the systems up to short delays; beyond
    the 5-minute MITD limit Mayfly's consumption is unbounded (it keeps
    re-executing [accel] forever - we report the energy burned up to the
    simulation horizon), while ARTEMIS lands at roughly 3x its
    continuous-power consumption thanks to [maxAttempt]. *)

open Artemis

type scenario = { label : string; supply : Config.power_supply }

type row = { scenario : scenario; artemis : Stats.t; mayfly : Stats.t }

val scenarios : scenario list
(** Continuous, 1, 2, 5, 10 minutes. *)

val run : ?scenarios:scenario list -> unit -> row list
val render : row list -> string
