lib/energy/capacitor.ml: Artemis_util Energy
