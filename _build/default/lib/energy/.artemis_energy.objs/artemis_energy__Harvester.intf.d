lib/energy/harvester.mli: Artemis_util Energy Time
