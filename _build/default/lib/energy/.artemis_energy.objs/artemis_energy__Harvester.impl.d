lib/energy/harvester.ml: Array Artemis_util Energy Float Stdlib Time
