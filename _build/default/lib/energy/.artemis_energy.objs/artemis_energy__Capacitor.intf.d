lib/energy/capacitor.mli: Artemis_util Energy
