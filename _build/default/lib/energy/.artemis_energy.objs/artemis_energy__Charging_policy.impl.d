lib/energy/charging_policy.ml: Artemis_util Capacitor Harvester Time
