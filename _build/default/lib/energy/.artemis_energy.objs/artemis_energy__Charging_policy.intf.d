lib/energy/charging_policy.mli: Artemis_util Capacitor Harvester Time
