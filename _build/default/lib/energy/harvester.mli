(** Ambient-energy harvester models.

    The paper's testbed uses a Powercast RF transmitter/receiver pair; its
    delivered power depends on placement and duty-cycling, which the
    evaluation abstracts into a single "charging time" variable.  We keep
    both levels: harvester models that integrate incoming power over time,
    and (in {!Charging_policy}) the paper's direct fixed-delay knob. *)

open Artemis_util

type t =
  | Constant of Energy.power
      (** steady incoming power (e.g. a well-placed RF receiver) *)
  | Duty_cycle of { period : Time.t; on_fraction : float; rate : Energy.power }
      (** power arrives during the first [on_fraction] of each period *)
  | Trace of (Time.t * Energy.power) array
      (** piecewise-constant profile: [(t_i, p_i)] means power is [p_i]
          from [t_i] until the next entry; the last rate holds forever.
          Entries must start at 0 and be strictly increasing. *)

val validate : t -> (unit, string) result

val rate_at : t -> Time.t -> Energy.power
(** Incoming power at absolute time [t]. *)

val harvested : t -> from_:Time.t -> until:Time.t -> Energy.energy
(** Energy collected over the interval (exact piecewise integration).
    @raise Invalid_argument if [until < from_]. *)

val time_to_harvest :
  t -> now:Time.t -> Energy.energy -> Time.t option
(** How long from [now] until the given energy has been collected;
    [None] if it never will be (e.g. a trace that ends at zero power). *)
