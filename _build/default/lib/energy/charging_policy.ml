open Artemis_util

type t = Fixed_delay of Time.t | From_harvester of Harvester.t

let recharge policy ~now ~capacitor =
  match policy with
  | Fixed_delay d ->
      Capacitor.recharge_full capacitor;
      Some d
  | From_harvester h -> (
      let deficit = Capacitor.deficit_to_turn_on capacitor in
      match Harvester.time_to_harvest h ~now deficit with
      | None -> None
      | Some dt ->
          Capacitor.charge capacitor (Harvester.harvested h ~from_:now ~until:(Time.add now dt));
          Some dt)
