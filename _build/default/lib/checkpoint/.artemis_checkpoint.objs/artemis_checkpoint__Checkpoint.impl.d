lib/checkpoint/checkpoint.ml: Array Artemis_device Artemis_nvm Artemis_task Artemis_trace Artemis_util Energy List Option Printf Prng Result Stdlib String Time
