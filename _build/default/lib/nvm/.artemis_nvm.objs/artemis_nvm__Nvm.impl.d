lib/nvm/nvm.ml: List Printf String
