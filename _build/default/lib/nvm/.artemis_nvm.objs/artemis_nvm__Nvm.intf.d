lib/nvm/nvm.mli:
