lib/mayfly/mayfly_lang.mli: Artemis_fsm Artemis_spec Artemis_util Mayfly Time
