lib/mayfly/mayfly.mli: Artemis_device Artemis_spec Artemis_task Artemis_trace Artemis_util Cost_model Device Task Time
