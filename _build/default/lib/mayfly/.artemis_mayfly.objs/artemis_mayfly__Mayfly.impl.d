lib/mayfly/mayfly.ml: Array Artemis_device Artemis_nvm Artemis_spec Artemis_task Artemis_trace Artemis_util List Printf Prng Stdlib String Time
