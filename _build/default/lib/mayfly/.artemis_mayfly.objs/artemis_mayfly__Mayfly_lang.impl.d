lib/mayfly/mayfly_lang.ml: Artemis_spec Artemis_transform Artemis_util Format List Mayfly Printf Result Scanner String Time
