open Artemis_util
module S = Artemis_spec.Ast

type constraint_ = Expires of Time.t | Collects of int

type edge = {
  producer : string;
  consumer : string;
  constraint_ : constraint_;
  path : int option;
}

exception Error of string * int * int

let puncts = [ "->"; ";" ]

type stream = { mutable tokens : Scanner.located list }

let peek s = match s.tokens with [] -> assert false | t :: _ -> t

let advance s =
  match s.tokens with [] -> assert false | _ :: rest -> s.tokens <- rest

let fail_at (loc : Scanner.located) fmt =
  Format.kasprintf (fun msg -> raise (Error (msg, loc.line, loc.col))) fmt

let expect_ident s =
  let t = peek s in
  match t.token with
  | Scanner.Ident name ->
      advance s;
      name
  | other -> fail_at t "expected a task name but found %a" Scanner.pp_token other

let expect_punct s p =
  let t = peek s in
  match t.token with
  | Scanner.Punct q when String.equal p q -> advance s
  | other -> fail_at t "expected %S but found %a" p Scanner.pp_token other

let parse_edge s =
  let producer = expect_ident s in
  expect_punct s "->";
  let consumer = expect_ident s in
  let t = peek s in
  let constraint_ =
    match expect_ident s with
    | "expires" -> (
        let t = peek s in
        match t.token with
        | Scanner.Duration d ->
            advance s;
            Expires d
        | other -> fail_at t "expected a duration but found %a" Scanner.pp_token other)
    | "collect" -> (
        let t = peek s in
        match t.token with
        | Scanner.Int n when n > 0 ->
            advance s;
            Collects n
        | other ->
            fail_at t "expected a positive count but found %a" Scanner.pp_token other)
    | other -> fail_at t "unknown constraint %S (expires|collect)" other
  in
  let path =
    let t = peek s in
    match t.token with
    | Scanner.Ident "Path" -> (
        advance s;
        let t = peek s in
        match t.token with
        | Scanner.Int p when p > 0 ->
            advance s;
            Some p
        | other ->
            fail_at t "expected a path index but found %a" Scanner.pp_token other)
    | _ -> None
  in
  expect_punct s ";";
  { producer; consumer; constraint_; path }

let parse_exn src =
  let wrap f =
    try f () with
    | Error (msg, line, col) ->
        failwith (Printf.sprintf "mayfly-lang parse error at %d:%d: %s" line col msg)
    | Scanner.Lex_error (msg, line, col) ->
        failwith (Printf.sprintf "mayfly-lang lex error at %d:%d: %s" line col msg)
  in
  wrap (fun () ->
      let s = { tokens = Scanner.tokenize ~puncts src } in
      let rec edges acc =
        match (peek s).token with
        | Scanner.Eof -> List.rev acc
        | _ -> edges (parse_edge s :: acc)
      in
      edges [])

let parse src =
  match parse_exn src with
  | edges -> Ok edges
  | exception Failure msg -> Result.Error msg

let edge_to_string e =
  let constraint_ =
    match e.constraint_ with
    | Expires d -> "expires " ^ Time.to_literal d
    | Collects n -> Printf.sprintf "collect %d" n
  in
  let path = match e.path with None -> "" | Some p -> Printf.sprintf " Path %d" p in
  Printf.sprintf "%s -> %s %s%s;" e.producer e.consumer constraint_ path

let to_string edges = String.concat "\n" (List.map edge_to_string edges) ^ "\n"

(* Group edges by consumer into ARTEMIS task blocks; Mayfly's fixed
   reaction is a path restart. *)
let to_spec edges =
  let consumers =
    List.sort_uniq String.compare (List.map (fun e -> e.consumer) edges)
  in
  List.map
    (fun consumer ->
      let properties =
        List.filter_map
          (fun e ->
            if not (String.equal e.consumer consumer) then None
            else
              match e.constraint_ with
              | Expires limit ->
                  Some
                    (S.Mitd
                       {
                         limit;
                         dp_task = e.producer;
                         on_fail = S.Restart_path;
                         max_attempt = None;
                         path = e.path;
                       })
              | Collects n ->
                  Some
                    (S.Collect
                       {
                         n;
                         dp_task = e.producer;
                         on_fail = S.Restart_path;
                         path = e.path;
                       }))
          edges
      in
      { S.task = consumer; properties })
    consumers

let to_machines edges = Artemis_transform.To_fsm.spec (to_spec edges)

let to_annotations edges =
  Mayfly.annotations_of_spec (to_spec edges)

let equal_edge a b =
  String.equal a.producer b.producer
  && String.equal a.consumer b.consumer
  && (match (a.constraint_, b.constraint_) with
     | Expires x, Expires y -> Time.equal x y
     | Collects x, Collects y -> x = y
     | (Expires _ | Collects _), _ -> false)
  && a.path = b.path

let equal a b = List.length a = List.length b && List.for_all2 equal_edge a b
