(** A Mayfly-style specification frontend (Section 7, "Support for Other
    Languages").

    Mayfly expresses timing as annotations on task-graph {e edges}; this
    module implements a compact edge syntax and maps it onto the ARTEMIS
    intermediate language - demonstrating that several property languages
    can share the monitor-generation backend - and, alternatively, onto
    native {!Mayfly.annotation}s for the baseline runtime.

    {v
    spec ::= edge*
    edge ::= ident "->" ident constraint ["Path" int] ";"
    constraint ::= "expires" duration    // data freshness (MITD)
                 | "collect" int         // required data items
    v}

    Example:
    {v
    accel -> send expires 5min Path 2;
    bodyTemp -> calcAvg collect 10;
    v}

    Violations take Mayfly's fixed reaction: restart the consumer's path
    (Table 3, "Runtime restarts task-graph"). *)

open Artemis_util

type constraint_ = Expires of Time.t | Collects of int

type edge = {
  producer : string;
  consumer : string;
  constraint_ : constraint_;
  path : int option;
}

val parse : string -> (edge list, string) result
val parse_exn : string -> edge list

val to_string : edge list -> string
(** Concrete syntax; [parse_exn (to_string e) = e] (property-tested). *)

val to_spec : edge list -> Artemis_spec.Ast.t
(** Mapping into the ARTEMIS property language (one block per consumer,
    [MITD]/[collect] with [restartPath]), from which the regular
    monitor-generation pipeline proceeds. *)

val to_machines : edge list -> Artemis_fsm.Ast.machine list
(** Straight to intermediate-language machines (via {!to_spec} and the
    standard transformation). *)

val to_annotations : edge list -> (string * Mayfly.annotation list) list
(** Native annotations for the {!Mayfly} baseline runtime. *)

val equal : edge list -> edge list -> bool
