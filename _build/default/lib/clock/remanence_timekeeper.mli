(** Remanence-decay off-time estimation.

    Real persistent timekeepers for intermittent systems (CusTARD-style
    capacitor decay, SRAM-remanence timers - the paper's citations
    [22, 51]) do not measure the power-off interval exactly: they read
    the decay of some charge at boot, giving an estimate with a bounded
    relative error, and the decay saturates beyond a maximum measurable
    interval (after which every longer outage reads the same).

    This module models exactly those two imperfections, deterministically
    (seeded), so experiments can quantify how timekeeper quality affects
    time-window properties: a timekeeper that saturates below an MITD
    window silently under-reports long outages and lets stale data
    through (tested in [test_timekeeper.ml]). *)

open Artemis_util

type t

val create :
  ?seed:int ->
  ?relative_error:float ->
  ?max_measurable:Time.t ->
  unit ->
  t
(** Defaults: 5% relative error, 10-minute saturation (generous
    CusTARD-class figures); [seed] defaults to 1.
    @raise Invalid_argument if [relative_error] is outside [0, 1). *)

val estimate : t -> actual:Time.t -> Time.t
(** Estimated off interval: uniformly within
    [(1 - e) * actual, (1 + e) * actual], then clamped to
    [max_measurable].  Monotone in expectation but individual draws are
    not; never negative. *)

val max_measurable : t -> Time.t

val as_off_estimator : t -> Time.t -> Time.t
(** For {!Persistent_clock.create}'s [off_estimator]. *)

val ideal : Time.t -> Time.t
(** The identity estimator (a perfect timekeeper). *)
