open Artemis_util

type t = {
  granularity : Time.t;
  drift_ppm : int;
  off_estimator : Time.t -> Time.t;
  mutable elapsed : Time.t;  (* ground truth *)
  mutable visible : Time.t;  (* what the timekeeper reports *)
  mutable reboot_count : int;
}

let create ?(granularity = Time.of_ms 1) ?(drift_ppm = 0)
    ?(off_estimator = fun dt -> dt) () =
  if Time.(granularity <= zero) then
    invalid_arg "Persistent_clock.create: non-positive granularity";
  {
    granularity;
    drift_ppm;
    off_estimator;
    elapsed = Time.zero;
    visible = Time.zero;
    reboot_count = 0;
  }

let advance t dt =
  if Time.is_negative dt then
    invalid_arg "Persistent_clock.advance: negative duration";
  t.elapsed <- Time.add t.elapsed dt;
  t.visible <- Time.add t.visible dt

let advance_off t dt =
  if Time.is_negative dt then
    invalid_arg "Persistent_clock.advance_off: negative duration";
  t.elapsed <- Time.add t.elapsed dt;
  t.visible <- Time.add t.visible (t.off_estimator dt)

let now t =
  let us = Time.to_us t.visible in
  let drifted = us + (us / 1_000_000 * t.drift_ppm) in
  let g = Time.to_us t.granularity in
  Time.of_us (drifted / g * g)

let elapsed_ground_truth t = t.elapsed
let record_reboot t = t.reboot_count <- t.reboot_count + 1
let reboots t = t.reboot_count
