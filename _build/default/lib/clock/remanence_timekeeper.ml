open Artemis_util

type t = {
  prng : Prng.t;
  relative_error : float;
  max_measurable_interval : Time.t;
}

let create ?(seed = 1) ?(relative_error = 0.05)
    ?(max_measurable = Time.of_min 10) () =
  if relative_error < 0. || relative_error >= 1. then
    invalid_arg "Remanence_timekeeper.create: relative_error out of [0, 1)";
  { prng = Prng.create ~seed; relative_error; max_measurable_interval = max_measurable }

let estimate t ~actual =
  if Time.(actual <= Time.zero) then Time.zero
  else begin
    let e = t.relative_error in
    let factor = Prng.float_range t.prng ~lo:(1. -. e) ~hi:(1. +. e) in
    let estimated = Time.of_sec_f (Time.to_sec_f actual *. factor) in
    Time.min estimated t.max_measurable_interval
  end

let max_measurable t = t.max_measurable_interval
let as_off_estimator t actual = estimate t ~actual
let ideal actual = actual
