(** Persistent timekeeping for the simulated device.

    ARTEMIS (like TICS, InK and Mayfly) assumes a persistent timekeeper
    [22,31,35,51 in the paper]: the notion of time is not lost across power
    failures, so charging delays are visible to time-related properties.
    In simulation the ground truth is the discrete-event simulation time;
    this module models the imperfections a real persistent clock adds - a
    read granularity and a static drift - so tests can show the monitors
    tolerate them. *)

open Artemis_util

type t

val create :
  ?granularity:Time.t ->
  ?drift_ppm:int ->
  ?off_estimator:(Time.t -> Time.t) ->
  unit ->
  t
(** [granularity] (default 1 ms, typical of LC-circuit timekeepers)
    quantizes reads; [drift_ppm] (default 0) applies a static rate error;
    [off_estimator] (default: identity) maps the true power-off interval
    to what the timekeeper reports at reboot - pass
    {!Remanence_timekeeper.as_off_estimator} for a realistic one.
    @raise Invalid_argument if granularity is not positive. *)

val advance : t -> Time.t -> unit
(** Advance powered time (visible and ground-truth alike).
    @raise Invalid_argument on a negative duration. *)

val advance_off : t -> Time.t -> unit
(** Advance across a power-off (charging) interval: ground truth moves by
    the actual duration, the visible time by [off_estimator duration] -
    the whole point of persistent timekeeping, with its real-world
    imprecision. @raise Invalid_argument on a negative duration. *)

val now : t -> Time.t
(** The timestamp the runtime and monitors observe (granularity and drift
    applied). *)

val elapsed_ground_truth : t -> Time.t
(** Exact simulated time (unaffected by the off estimator), for tests,
    trace rendering and the simulation horizon. *)

val record_reboot : t -> unit
val reboots : t -> int
(** Number of reboots survived, a cheap persistence witness for tests. *)
