lib/clock/persistent_clock.mli: Artemis_util Time
