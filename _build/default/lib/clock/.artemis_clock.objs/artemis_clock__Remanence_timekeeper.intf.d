lib/clock/remanence_timekeeper.mli: Artemis_util Time
