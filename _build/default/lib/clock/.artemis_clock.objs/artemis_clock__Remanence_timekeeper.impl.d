lib/clock/remanence_timekeeper.ml: Artemis_util Prng Time
