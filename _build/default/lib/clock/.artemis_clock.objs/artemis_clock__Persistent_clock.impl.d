lib/clock/persistent_clock.ml: Artemis_util Time
