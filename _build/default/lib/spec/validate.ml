module Task = Artemis_task.Task

type issue = { where : string; message : string }

let pp_issue ppf { where; message } = Format.fprintf ppf "%s: %s" where message

let issues_to_string issues =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_issue) issues)

let paths_of_task (app : Task.app) name =
  List.filter
    (fun (p : Task.path) ->
      List.exists (fun (t : Task.t) -> String.equal t.Task.name name) p.Task.tasks)
    app.Task.paths

let escapes_to_path action =
  match action with
  | Ast.Restart_path | Ast.Skip_path -> true
  | Ast.Restart_task | Ast.Skip_task | Ast.Complete_path -> false

let has_dependency = function
  | Ast.Mitd _ | Ast.Collect _ -> true
  | Ast.Max_tries _ | Ast.Max_duration _ | Ast.Period _ | Ast.Dp_data _
  | Ast.Min_energy _ ->
      false

let property_escapes p =
  escapes_to_path (Ast.property_on_fail p)
  ||
  match p with
  | Ast.Mitd { max_attempt = Some { exhausted; _ }; _ }
  | Ast.Period { max_attempt = Some { exhausted; _ }; _ } ->
      escapes_to_path exhausted
  | Ast.Mitd _ | Ast.Period _ | Ast.Max_tries _ | Ast.Max_duration _
  | Ast.Collect _ | Ast.Dp_data _ | Ast.Min_energy _ ->
      false

let check_property app ~task issues p =
  let where = Printf.sprintf "%s/%s" task (Ast.property_kind p) in
  let issue message = { where; message } in
  let issues =
    (* dpTask must exist *)
    match p with
    | Ast.Mitd { dp_task; _ } | Ast.Collect { dp_task; _ } ->
        if Task.find_task app dp_task = None then
          issue (Printf.sprintf "dpTask %S is not a task of the application" dp_task)
          :: issues
        else issues
    | Ast.Max_tries _ | Ast.Max_duration _ | Ast.Period _ | Ast.Dp_data _
    | Ast.Min_energy _ ->
        issues
  in
  let issues =
    match Ast.property_task_path p with
    | None -> issues
    | Some idx -> (
        match Task.find_path app idx with
        | None ->
            issue (Printf.sprintf "Path %d does not exist" idx) :: issues
        | Some path ->
            if
              List.exists
                (fun (t : Task.t) -> String.equal t.Task.name task)
                path.Task.tasks
            then issues
            else
              issue (Printf.sprintf "task is not on path %d" idx) :: issues)
  in
  let issues =
    (* the paper's path-merging rule (Section 3.2): only cross-task
       properties are ambiguous at merge points - a self property's
       restart/skip always targets the current path *)
    if
      property_escapes p && has_dependency p
      && Ast.property_task_path p = None
      && List.length (paths_of_task app task) > 1
    then
      issue
        "task lies on several paths (path merging); a path-escaping action \
         of a cross-task property needs an explicit Path clause"
      :: issues
    else issues
  in
  let issues =
    match p with
    | Ast.Dp_data { var; _ } -> (
        match Task.find_task app task with
        | None -> issues (* reported at block level *)
        | Some t ->
            if List.mem_assoc var t.Task.monitored then issues
            else
              issue
                (Printf.sprintf "variable %S is not monitored by the task" var)
              :: issues)
    | Ast.Max_tries _ | Ast.Max_duration _ | Ast.Mitd _ | Ast.Collect _
    | Ast.Period _ | Ast.Min_energy _ ->
        issues
  in
  issues

let check app spec =
  let seen = Hashtbl.create 8 in
  let issues =
    List.fold_left
      (fun issues { Ast.task; properties } ->
        let issues =
          if Hashtbl.mem seen task then
            { where = task; message = "duplicate task block" } :: issues
          else begin
            Hashtbl.add seen task ();
            issues
          end
        in
        let issues =
          if Task.find_task app task = None then
            {
              where = task;
              message = "block names a task that is not in the application";
            }
            :: issues
          else issues
        in
        List.fold_left (fun issues p -> check_property app ~task issues p) issues
          properties)
      [] spec
  in
  match List.rev issues with [] -> Ok () | issues -> Error issues
