(** Parser for the concrete property specification syntax of Figure 5.

    Grammar (EBNF, comments are [// ...]):
    {v
    spec      ::= block*
    block     ::= ident ":"? "{" property* "}"
    property  ::= kind ":" value clause* ";"
    kind      ::= "maxTries" | "maxDuration" | "MITD" | "collect"
                | "period" | "dpData"
    clause    ::= "dpTask" ":" ident
                | "onFail" ":" action
                | "maxAttempt" ":" int
                | "Path" ":" int
                | "Range" ":" "[" number "," number "]"
    action    ::= "restartPath" | "skipPath" | "restartTask"
                | "skipTask" | "completePath"
    v}
    An [onFail] clause binds to the immediately preceding [maxAttempt] if
    that one has no action yet, otherwise it is the property's primary
    action - matching how Figure 5 line 6 reads. *)

val parse : string -> (Ast.t, string) result
(** Error messages carry line/column. *)

val parse_exn : string -> Ast.t
(** @raise Failure with the same message as {!parse}'s [Error]. *)
