(** Concrete-syntax printer for property specifications.

    [Parser.parse_exn (to_string spec)] equals [spec] (round-trip law,
    property-tested). *)

val duration : Artemis_util.Time.t -> string
(** Exact concrete-syntax duration: the largest unit that divides the
    value evenly ("5min", "100ms", "1500us"). *)

val property_to_string : Ast.property -> string
val to_string : Ast.t -> string
