(** Semantic validation of a property specification against an
    application (the checks Xtext's editor performs in the paper's
    tooling). *)

type issue = { where : string; message : string }

val check : Artemis_task.Task.app -> Ast.t -> (unit, issue list) result
(** Verifies that:
    - every task block names a task of the application;
    - every [dpTask] names a task of the application;
    - every [Path] index names a path, and the block's task is on it;
    - a task block appears at most once per task;
    - a property whose action escapes to a path ([restartPath],
      [skipPath]) carries an explicit [Path] when its task lies on
      several paths (the paper's path-merging rule, Section 3.2);
    - a [dpData] variable is exposed by the task's [monitored] list. *)

val pp_issue : Format.formatter -> issue -> unit
val issues_to_string : issue list -> string
