open Artemis_util
module Task = Artemis_task.Task

type severity = Error | Warning
type finding = { severity : severity; where : string; message : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s: %s: %s"
    (match f.severity with Error -> "error" | Warning -> "warning")
    f.where f.message

let to_string findings =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_finding) findings)

let errors = List.filter (fun f -> f.severity = Error)

let finding severity ~task p message =
  { severity; where = Printf.sprintf "%s/%s" task (Ast.property_kind p); message }

(* --- application-independent rules --- *)

let data_property_actions ~task acc p =
  match p with
  | Ast.Collect { on_fail = Ast.Restart_task; _ } ->
      finding Error ~task p
        "restartTask on a collect property livelocks: re-starting the task \
         re-fails the same check without producing new data"
      :: acc
  | Ast.Mitd { on_fail = Ast.Restart_task; _ }
  | Ast.Period { on_fail = Ast.Restart_task; _ } ->
      finding Warning ~task p
        "restartTask on a time-window property rarely helps; the paper's \
         examples escalate to the path level (restartPath/skipPath)"
      :: acc
  | Ast.Max_tries { n = 1; _ } ->
      finding Warning ~task p
        "maxTries: 1 allows no re-execution: any single power failure \
         triggers the action"
      :: acc
  | Ast.Max_tries _ | Ast.Max_duration _ | Ast.Mitd _ | Ast.Collect _
  | Ast.Period _ | Ast.Dp_data _ | Ast.Min_energy _ ->
      acc

let period_vs_duration_limits ~task properties acc =
  let periods =
    List.filter_map
      (function Ast.Period { interval; _ } -> Some interval | _ -> None)
      properties
  in
  let duration_limits =
    List.filter_map
      (function Ast.Max_duration { limit; _ } -> Some limit | _ -> None)
      properties
  in
  List.fold_left
    (fun acc interval ->
      List.fold_left
        (fun acc limit ->
          if Time.(interval < limit) then
            {
              severity = Warning;
              where = task ^ "/period";
              message =
                Printf.sprintf
                  "the period (%s) is shorter than the allowed task duration \
                   (maxDuration %s): a slow-but-legal execution already \
                   breaks the periodicity"
                  (Time.to_literal interval) (Time.to_literal limit);
            }
            :: acc
          else acc)
        acc duration_limits)
    acc periods

let property_signature p =
  (* kind + dependency + path identifies "the same check" *)
  let dependency =
    match p with
    | Ast.Mitd { dp_task; _ } | Ast.Collect { dp_task; _ } -> dp_task
    | Ast.Dp_data { var; _ } -> var
    | Ast.Max_tries _ | Ast.Max_duration _ | Ast.Period _ | Ast.Min_energy _ ->
        ""
  in
  (Ast.property_kind p, dependency, Ast.property_task_path p)

let duplicates ~task properties acc =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc p ->
      let signature = property_signature p in
      if Hashtbl.mem seen signature then
        finding Warning ~task p
          "duplicate property of the same kind, dependency and path on this \
           task; only one of them can be the binding constraint"
        :: acc
      else begin
        Hashtbl.add seen signature ();
        acc
      end)
    acc properties

let check_spec spec =
  List.rev
    (List.fold_left
       (fun acc { Ast.task; properties } ->
         let acc = List.fold_left (data_property_actions ~task) acc properties in
         let acc = period_vs_duration_limits ~task properties acc in
         duplicates ~task properties acc)
       [] spec)

(* --- application-aware rules --- *)

(* Minimal time between the completion of [producer] and the start of
   [consumer] within one path: the durations of the tasks strictly between
   them.  None when they do not appear in producer-then-consumer order. *)
let min_gap_on_path (path : Task.path) ~producer ~consumer =
  let names = List.map (fun (t : Task.t) -> t.Task.name) path.Task.tasks in
  let rec index i = function
    | [] -> None
    | n :: rest -> if String.equal n producer then Some i else index (i + 1) rest
  in
  match index 0 names with
  | None -> None
  | Some pi -> (
      let rec cindex i = function
        | [] -> None
        | n :: rest ->
            if i > pi && String.equal n consumer then Some i
            else cindex (i + 1) rest
      in
      match cindex 0 names with
      | None -> None
      | Some ci ->
          let between =
            List.filteri (fun i _ -> i > pi && i < ci) path.Task.tasks
          in
          Some
            (List.fold_left
               (fun acc (t : Task.t) -> Time.add acc t.Task.duration)
               Time.zero between))

let mitd_feasibility app ~task acc p =
  match p with
  | Ast.Mitd { limit; dp_task; path; _ } -> (
      let paths =
        match path with
        | Some idx -> Option.to_list (Task.find_path app idx)
        | None -> app.Task.paths
      in
      let gaps =
        List.filter_map
          (fun pth -> min_gap_on_path pth ~producer:dp_task ~consumer:task)
          paths
      in
      match gaps with
      | [] ->
          finding Warning ~task p
            (Printf.sprintf
               "producer %S never precedes the task on the property's \
                path(s); the freshness window depends on cross-path timing"
               dp_task)
          :: acc
      | gaps ->
          let minimal = List.fold_left Time.min (List.hd gaps) gaps in
          if Time.(minimal > limit) then
            finding Error ~task p
              (Printf.sprintf
                 "statically unsatisfiable: at least %s of intermediate task \
                  execution separates %s from this task, which exceeds the \
                  %s window even without power failures"
                 (Time.to_literal minimal) dp_task (Time.to_literal limit))
            :: acc
          else acc)
  | Ast.Max_tries _ | Ast.Max_duration _ | Ast.Collect _ | Ast.Period _
  | Ast.Dp_data _ | Ast.Min_energy _ ->
      acc

let timing_feasibility app ~task acc p =
  match Task.find_task app task with
  | None -> acc
  | Some t -> (
      let duration = t.Task.duration in
      match p with
      | Ast.Max_duration { limit; _ } when Time.(limit < duration) ->
          finding Error ~task p
            (Printf.sprintf
               "the task runs for %s uninterrupted, so a %s limit can never \
                be met"
               (Time.to_literal duration) (Time.to_literal limit))
          :: acc
      | Ast.Period { interval; _ } when Time.(interval < duration) ->
          finding Error ~task p
            (Printf.sprintf
               "the task alone runs for %s, longer than its %s period"
               (Time.to_literal duration) (Time.to_literal interval))
          :: acc
      | Ast.Min_energy { uj; _ } ->
          let demand = Energy.consumed t.Task.power duration in
          if uj < Energy.to_uj demand then
            finding Warning ~task p
              (Printf.sprintf
                 "the threshold (%.0fuJ) is below the task's own demand \
                  (%.0fuJ): the task may still brown out after passing the \
                  check"
                 uj (Energy.to_uj demand))
            :: acc
          else acc
      | Ast.Max_duration _ | Ast.Period _ | Ast.Max_tries _ | Ast.Mitd _
      | Ast.Collect _ | Ast.Dp_data _ ->
          acc)

let energy_budget ~usable_budget ~task acc p =
  match (usable_budget, p) with
  | Some budget, Ast.Min_energy { uj; _ } when uj > Energy.to_uj budget ->
      finding Error ~task p
        (Printf.sprintf
           "the threshold (%.0fuJ) exceeds the per-charge usable budget \
            (%.0fuJ): the task can never start"
           uj (Energy.to_uj budget))
      :: acc
  | _, _ -> acc

let check ?usable_budget app spec =
  let app_rules =
    List.fold_left
      (fun acc { Ast.task; properties } ->
        List.fold_left
          (fun acc p ->
            let acc = mitd_feasibility app ~task acc p in
            let acc = timing_feasibility app ~task acc p in
            energy_budget ~usable_budget ~task acc p)
          acc properties)
      [] spec
  in
  check_spec spec @ List.rev app_rules
