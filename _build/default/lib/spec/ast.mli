(** Abstract syntax of the ARTEMIS property specification language
    (Table 1, Figure 5). *)

open Artemis_util

type action =
  | Restart_path
  | Skip_path
  | Restart_task
  | Skip_task
  | Complete_path

type max_attempt = { attempts : int; exhausted : action }
(** The [maxAttempt: n onFail: a] suffix of time-related properties: after
    [attempts] violations the [exhausted] action replaces the primary one
    (the paper's non-termination guard). *)

type property =
  | Max_tries of { n : int; on_fail : action; path : int option }
      (** maximum successive execution attempts of the task *)
  | Max_duration of { limit : Time.t; on_fail : action; path : int option }
      (** maximum task execution duration, measured from the first start
          attempt (Section 4.1.3) *)
  | Mitd of {
      limit : Time.t;
      dp_task : string;
      on_fail : action;
      max_attempt : max_attempt option;
      path : int option;
    }  (** maximum inter-task delay from [dp_task]'s completion *)
  | Collect of {
      n : int;
      dp_task : string;
      on_fail : action;
      path : int option;
    }  (** data items required from [dp_task] before the task may start *)
  | Period of {
      interval : Time.t;
      on_fail : action;
      max_attempt : max_attempt option;
      path : int option;
    }  (** desired execution periodicity of the task *)
  | Dp_data of {
      var : string;
      low : float;
      high : float;
      on_fail : action;
      path : int option;
    }  (** dependent-data range check on a monitored task variable *)
  | Min_energy of { uj : float; on_fail : action; path : int option }
      (** minimum stored energy (uJ) required before the task may start -
          the Section 4.2.2 energy-awareness extension, relying on the
          runtime's capacitor-level primitive *)

type task_block = { task : string; properties : property list }

type t = task_block list

val action_to_string : action -> string
val action_of_string : string -> action option

val property_kind : property -> string
(** The concrete-syntax keyword ("maxTries", "MITD", ...). *)

val property_task_path : property -> int option
val property_on_fail : property -> action

val equal_action : action -> action -> bool
val equal_property : property -> property -> bool
val equal : t -> t -> bool

val pp_action : Format.formatter -> action -> unit
val pp_property : Format.formatter -> property -> unit
val pp : Format.formatter -> t -> unit
(** Debug printers (not concrete syntax; see {!Printer} for that). *)
