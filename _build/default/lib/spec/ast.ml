open Artemis_util

type action =
  | Restart_path
  | Skip_path
  | Restart_task
  | Skip_task
  | Complete_path

type max_attempt = { attempts : int; exhausted : action }

type property =
  | Max_tries of { n : int; on_fail : action; path : int option }
  | Max_duration of { limit : Time.t; on_fail : action; path : int option }
  | Mitd of {
      limit : Time.t;
      dp_task : string;
      on_fail : action;
      max_attempt : max_attempt option;
      path : int option;
    }
  | Collect of { n : int; dp_task : string; on_fail : action; path : int option }
  | Period of {
      interval : Time.t;
      on_fail : action;
      max_attempt : max_attempt option;
      path : int option;
    }
  | Dp_data of {
      var : string;
      low : float;
      high : float;
      on_fail : action;
      path : int option;
    }
  | Min_energy of { uj : float; on_fail : action; path : int option }

type task_block = { task : string; properties : property list }
type t = task_block list

let action_to_string = function
  | Restart_path -> "restartPath"
  | Skip_path -> "skipPath"
  | Restart_task -> "restartTask"
  | Skip_task -> "skipTask"
  | Complete_path -> "completePath"

let action_of_string = function
  | "restartPath" -> Some Restart_path
  | "skipPath" -> Some Skip_path
  | "restartTask" -> Some Restart_task
  | "skipTask" -> Some Skip_task
  | "completePath" -> Some Complete_path
  | _ -> None

let property_kind = function
  | Max_tries _ -> "maxTries"
  | Max_duration _ -> "maxDuration"
  | Mitd _ -> "MITD"
  | Collect _ -> "collect"
  | Period _ -> "period"
  | Dp_data _ -> "dpData"
  | Min_energy _ -> "minEnergy"

let property_task_path = function
  | Max_tries { path; _ }
  | Max_duration { path; _ }
  | Mitd { path; _ }
  | Collect { path; _ }
  | Period { path; _ }
  | Dp_data { path; _ }
  | Min_energy { path; _ } ->
      path

let property_on_fail = function
  | Max_tries { on_fail; _ }
  | Max_duration { on_fail; _ }
  | Mitd { on_fail; _ }
  | Collect { on_fail; _ }
  | Period { on_fail; _ }
  | Dp_data { on_fail; _ }
  | Min_energy { on_fail; _ } ->
      on_fail

let equal_action (a : action) b = a = b

let equal_max_attempt_opt a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a.attempts = b.attempts && equal_action a.exhausted b.exhausted
  | None, Some _ | Some _, None -> false

let equal_property p q =
  match (p, q) with
  | Max_tries a, Max_tries b ->
      a.n = b.n && equal_action a.on_fail b.on_fail && a.path = b.path
  | Max_duration a, Max_duration b ->
      Time.equal a.limit b.limit && equal_action a.on_fail b.on_fail && a.path = b.path
  | Mitd a, Mitd b ->
      Time.equal a.limit b.limit
      && String.equal a.dp_task b.dp_task
      && equal_action a.on_fail b.on_fail
      && equal_max_attempt_opt a.max_attempt b.max_attempt
      && a.path = b.path
  | Collect a, Collect b ->
      a.n = b.n
      && String.equal a.dp_task b.dp_task
      && equal_action a.on_fail b.on_fail
      && a.path = b.path
  | Period a, Period b ->
      Time.equal a.interval b.interval
      && equal_action a.on_fail b.on_fail
      && equal_max_attempt_opt a.max_attempt b.max_attempt
      && a.path = b.path
  | Dp_data a, Dp_data b ->
      String.equal a.var b.var && a.low = b.low && a.high = b.high
      && equal_action a.on_fail b.on_fail
      && a.path = b.path
  | Min_energy a, Min_energy b ->
      a.uj = b.uj && equal_action a.on_fail b.on_fail && a.path = b.path
  | ( ( Max_tries _ | Max_duration _ | Mitd _ | Collect _ | Period _
      | Dp_data _ | Min_energy _ ),
      _ ) ->
      false

let equal_task_block a b =
  String.equal a.task b.task
  && List.length a.properties = List.length b.properties
  && List.for_all2 equal_property a.properties b.properties

let equal a b =
  List.length a = List.length b && List.for_all2 equal_task_block a b

let pp_action ppf a = Format.pp_print_string ppf (action_to_string a)

let pp_path ppf = function
  | None -> ()
  | Some p -> Format.fprintf ppf " Path: %d" p

let pp_max_attempt ppf = function
  | None -> ()
  | Some { attempts; exhausted } ->
      Format.fprintf ppf " maxAttempt: %d onFail: %a" attempts pp_action exhausted

let pp_property ppf = function
  | Max_tries { n; on_fail; path } ->
      Format.fprintf ppf "maxTries: %d onFail: %a%a" n pp_action on_fail pp_path path
  | Max_duration { limit; on_fail; path } ->
      Format.fprintf ppf "maxDuration: %a onFail: %a%a" Time.pp limit pp_action
        on_fail pp_path path
  | Mitd { limit; dp_task; on_fail; max_attempt; path } ->
      Format.fprintf ppf "MITD: %a dpTask: %s onFail: %a%a%a" Time.pp limit
        dp_task pp_action on_fail pp_max_attempt max_attempt pp_path path
  | Collect { n; dp_task; on_fail; path } ->
      Format.fprintf ppf "collect: %d dpTask: %s onFail: %a%a" n dp_task
        pp_action on_fail pp_path path
  | Period { interval; on_fail; max_attempt; path } ->
      Format.fprintf ppf "period: %a onFail: %a%a%a" Time.pp interval pp_action
        on_fail pp_max_attempt max_attempt pp_path path
  | Dp_data { var; low; high; on_fail; path } ->
      Format.fprintf ppf "dpData: %s Range: [%g, %g] onFail: %a%a" var low high
        pp_action on_fail pp_path path
  | Min_energy { uj; on_fail; path } ->
      Format.fprintf ppf "minEnergy: %guJ onFail: %a%a" uj pp_action on_fail
        pp_path path

let pp ppf t =
  let pp_block ppf { task; properties } =
    Format.fprintf ppf "@[<v 2>%s: {@ %a@]@ }" task
      (Format.pp_print_list pp_property)
      properties
  in
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_block) t
