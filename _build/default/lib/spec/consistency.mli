(** Static consistency checking of property specifications.

    The paper lists this as future work (Section 7, "Property Consistency
    Checking"): simultaneous time-related properties can be unsatisfiable
    by construction, i.e. no task-execution sequence meets all of them.
    This module implements a pragmatic checker over the specification
    (and, when available, the application's task durations):

    {b errors} (no execution can satisfy the property):
    - [maxDuration] below the task's uninterrupted execution time;
    - [period] below the task's execution time;
    - [MITD] whose window is shorter than the execution time of the tasks
      that necessarily run between the producer and the consumer;
    - [minEnergy] above the per-charge energy budget (when given);
    - [restartTask] as the failure action of a data-availability property
      ([collect]): re-starting the same task re-fails the same check
      without producing data - a livelock.

    {b warnings} (suspicious but satisfiable):
    - [maxDuration] exceeding a [period] on the same task;
    - [minEnergy] below the task's own energy demand;
    - duplicate properties of the same kind/dependency/path on one task;
    - [maxTries: 1] (any single power failure skips the task);
    - [restartTask] on a time-window property (the paper's examples
      always escalate to the path level). *)

open Artemis_util

type severity = Error | Warning

type finding = { severity : severity; where : string; message : string }

val check_spec : Ast.t -> finding list
(** Application-independent rules only (usable from the [artemisc] CLI). *)

val check :
  ?usable_budget:Energy.energy ->
  Artemis_task.Task.app ->
  Ast.t ->
  finding list
(** All rules; task durations and path structure come from the app, the
    optional [usable_budget] enables the energy-budget rule. *)

val errors : finding list -> finding list
val pp_finding : Format.formatter -> finding -> unit
val to_string : finding list -> string
