open Artemis_util

let duration = Time.to_literal

let float_lit f =
  (* Keep integral floats parseable as plain numbers (36, not 36.);
     non-integral ones use fixed-point with trailing zeros trimmed, since
     %g would round large values to 6 significant digits *)
  if Float.is_integer f then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12f" f in
    let len = String.length s in
    let rec last i =
      if i > 0 && s.[i] = '0' && s.[i - 1] <> '.' then last (i - 1) else i
    in
    String.sub s 0 (last (len - 1) + 1)

let clause_path = function
  | None -> ""
  | Some p -> Printf.sprintf " Path: %d" p

let clause_max_attempt = function
  | None -> ""
  | Some { Ast.attempts; exhausted } ->
      Printf.sprintf " maxAttempt: %d onFail: %s" attempts
        (Ast.action_to_string exhausted)

let property_to_string = function
  | Ast.Max_tries { n; on_fail; path } ->
      Printf.sprintf "maxTries: %d onFail: %s%s;" n
        (Ast.action_to_string on_fail) (clause_path path)
  | Ast.Max_duration { limit; on_fail; path } ->
      Printf.sprintf "maxDuration: %s onFail: %s%s;" (duration limit)
        (Ast.action_to_string on_fail) (clause_path path)
  | Ast.Mitd { limit; dp_task; on_fail; max_attempt; path } ->
      Printf.sprintf "MITD: %s dpTask: %s onFail: %s%s%s;" (duration limit)
        dp_task
        (Ast.action_to_string on_fail)
        (clause_max_attempt max_attempt)
        (clause_path path)
  | Ast.Collect { n; dp_task; on_fail; path } ->
      Printf.sprintf "collect: %d dpTask: %s onFail: %s%s;" n dp_task
        (Ast.action_to_string on_fail) (clause_path path)
  | Ast.Period { interval; on_fail; max_attempt; path } ->
      Printf.sprintf "period: %s onFail: %s%s%s;" (duration interval)
        (Ast.action_to_string on_fail)
        (clause_max_attempt max_attempt)
        (clause_path path)
  | Ast.Dp_data { var; low; high; on_fail; path } ->
      Printf.sprintf "dpData: %s Range: [%s, %s] onFail: %s%s;" var
        (float_lit low) (float_lit high)
        (Ast.action_to_string on_fail)
        (clause_path path)
  | Ast.Min_energy { uj; on_fail; path } ->
      Printf.sprintf "minEnergy: %suJ onFail: %s%s;" (float_lit uj)
        (Ast.action_to_string on_fail) (clause_path path)

let block_to_string { Ast.task; properties } =
  let props =
    properties |> List.map (fun p -> "  " ^ property_to_string p)
    |> String.concat "\n"
  in
  Printf.sprintf "%s: {\n%s\n}" task props

let to_string spec = String.concat "\n\n" (List.map block_to_string spec) ^ "\n"
