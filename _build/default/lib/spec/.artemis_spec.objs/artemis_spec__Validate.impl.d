lib/spec/validate.ml: Artemis_task Ast Format Hashtbl List Printf String
