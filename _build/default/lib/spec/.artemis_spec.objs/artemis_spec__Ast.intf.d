lib/spec/ast.mli: Artemis_util Format Time
