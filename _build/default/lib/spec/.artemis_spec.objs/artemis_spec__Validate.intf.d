lib/spec/validate.mli: Artemis_task Ast Format
