lib/spec/printer.mli: Artemis_util Ast
