lib/spec/consistency.ml: Artemis_task Artemis_util Ast Energy Format Hashtbl List Option Printf String Time
