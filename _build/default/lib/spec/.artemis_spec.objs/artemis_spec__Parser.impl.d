lib/spec/parser.ml: Artemis_util Ast Format List Printf Result Scanner String
