lib/spec/ast.ml: Artemis_util Format List String Time
