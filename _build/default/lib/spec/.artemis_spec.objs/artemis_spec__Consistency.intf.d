lib/spec/consistency.mli: Artemis_task Artemis_util Ast Energy Format
