lib/spec/printer.ml: Artemis_util Ast Float List Printf String Time
