(** Chain-style inter-task channels.

    Task-based intermittent systems pass data between tasks through
    non-volatile channels [Chain, Alpaca].  A channel is an append-only
    buffer living in the simulated FRAM; producers push inside their task
    transaction, so a power failure mid-task leaves the channel exactly as
    it was (all-or-nothing semantics). *)

open Artemis_nvm

type 'a t

val create :
  Nvm.t -> name:string -> bytes_per_item:int -> capacity:int -> 'a t
(** Declares [capacity * bytes_per_item] bytes of FRAM in the
    [Application] region for Table 2 accounting.  Pushing beyond
    [capacity] drops the oldest item (ring behaviour, like a fixed FRAM
    buffer). @raise Invalid_argument on non-positive capacity. *)

val push : 'a t -> 'a -> unit
(** Transactional append (requires an open task transaction). *)

val items : 'a t -> 'a list
(** Oldest first. *)

val length : 'a t -> int

val take_all : 'a t -> 'a list
(** Read and clear, transactionally (the consumer-task idiom). *)

val clear : 'a t -> unit
(** Transactional clear. *)

val name : 'a t -> string
