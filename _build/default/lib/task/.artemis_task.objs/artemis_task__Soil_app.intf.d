lib/task/soil_app.mli: Artemis_nvm Channel Nvm Task
