lib/task/task.mli: Artemis_nvm Artemis_util Energy Nvm Prng Time
