lib/task/soil_app.ml: Artemis_nvm Artemis_util Channel Energy List Nvm Prng Task Time
