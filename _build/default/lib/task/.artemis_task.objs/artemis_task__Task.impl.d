lib/task/task.ml: Artemis_nvm Artemis_util Energy Hashtbl List Nvm Printf Prng Result String Time
