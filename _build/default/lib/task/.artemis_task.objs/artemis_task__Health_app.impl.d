lib/task/health_app.ml: Artemis_nvm Artemis_util Channel Energy Float List Nvm Prng Task Time
