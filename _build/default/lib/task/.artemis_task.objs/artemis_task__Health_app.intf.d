lib/task/health_app.mli: Artemis_nvm Channel Nvm Task
