lib/task/channel.ml: Artemis_nvm List Nvm
