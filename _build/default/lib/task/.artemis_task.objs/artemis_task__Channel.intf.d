lib/task/channel.mli: Artemis_nvm Nvm
