(** A second complete application domain: a batteryless soil/environment
    monitoring station (the paper's introduction motivates exactly this
    class of deployment, citing soil-monitoring sensors powered by
    soil-air temperature differences [32]).

    Three paths over seven tasks:
    - path 1 (soil profile): moisture -> soilTemp -> aggregate -> uplink
      (five moisture samples aggregated per report);
    - path 2 (air): airTemp -> aggregate2... modelled as
      airTemp -> humidity -> uplink;
    - path 3 (irrigation decision): decide -> actuate, where [decide]
      exposes a monitored soil-dryness index whose out-of-range value
      rushes the actuation through ([completePath], mirroring the health
      app's emergency flow).

    The property mix intentionally differs from the health benchmark:
    periodicity on the sampling head, [minEnergy] in front of the
    actuator (Section 4.2.2 extension), a freshness window on the
    irrigation decision, and sample collection on the aggregator. *)

open Artemis_nvm

type handles = {
  moisture_samples : float Channel.t;
  read_dryness : unit -> float;
  uplinks : unit -> int;  (** completed [uplink] executions *)
  actuations : unit -> int;  (** completed [actuate] executions *)
}

val make : ?dryness_base:float -> Nvm.t -> Task.app * handles
(** [dryness_base] (default 0.30, inside the healthy [0.15, 0.55] range)
    shifts the synthetic dryness index; above 0.55 the [dpData] property
    fires [completePath] on path 3. *)

val spec_text : string
(** The station's property specification:
    {v
    moisture:  period 30s (restartPath, maxAttempt 2 -> skipPath)
    aggregate: collect 5 from moisture (restartPath)
    uplink:    MITD 2min from aggregate (restartPath, maxAttempt 3 ->
               skipPath, Path 1); maxDuration 150ms (skipTask)
    actuate:   minEnergy 5mJ (skipTask); maxTries 5 (skipPath)
    decide:    dpData dryness Range [0.15, 0.55] (completePath)
    v} *)
