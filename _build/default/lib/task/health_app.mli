(** The wearable health-monitoring benchmark application of Figures 4-6.

    Three paths over eight tasks:
    - path 1: bodyTemp -> calcAvg -> heartRate -> send (average of 10
      temperature samples);
    - path 2: accel -> classify -> send (respiration rate);
    - path 3: micSense -> filter -> send (cough detection).

    Sensor values are synthetic deterministic waveforms (the paper's
    Thunderboard sensors are not available); durations and power draws
    follow the calibration in DESIGN.md so that power failures land where
    the paper's Section 5 narrative needs them. *)

open Artemis_nvm

type handles = {
  temp_samples : float Channel.t;
  accel_samples : float Channel.t;
  mic_samples : float Channel.t;
  read_avg_temp : unit -> float;
  read_heart_rate : unit -> float;
  sent_messages : unit -> int;  (** completed [send] executions *)
}

val make : ?temp_base:float -> Nvm.t -> Task.app * handles
(** [temp_base] (default 36.5 C, in the healthy [36,38] range) shifts the
    synthetic body-temperature waveform; pass e.g. 39.2 to trigger the
    [dpData avgTemp Range] emergency property. *)

val spec_text : string
(** The Figure 5 property specification, verbatim in our concrete
    syntax. *)

val mayfly_spec_text : string
(** The Mayfly version (Section 5.1.1): only [collect] and [MITD]; no
    [maxTries]/[maxAttempt]. *)
