open Artemis_util
open Artemis_nvm

type handles = {
  moisture_samples : float Channel.t;
  read_dryness : unit -> float;
  uplinks : unit -> int;
  actuations : unit -> int;
}

let mcu = Energy.mw 1.2
let with_peripheral p = Energy.add_power mcu (Energy.mw p)

let make ?(dryness_base = 0.30) nvm =
  let moisture_samples =
    Channel.create nvm ~name:"moisture" ~bytes_per_item:4 ~capacity:8
  in
  let soil_temp = Nvm.cell nvm ~region:Application ~name:"soilTempC" ~bytes:4 0.0 in
  let air_temp = Nvm.cell nvm ~region:Application ~name:"airTempC" ~bytes:4 0.0 in
  let humidity_pct = Nvm.cell nvm ~region:Application ~name:"humidityPct" ~bytes:4 0.0 in
  let profile = Nvm.cell nvm ~region:Application ~name:"soilProfile" ~bytes:4 0.0 in
  let dryness = Nvm.cell nvm ~region:Application ~name:"dryness" ~bytes:4 0.0 in
  let uplinked = Nvm.cell nvm ~region:Application ~name:"uplinkCount" ~bytes:2 0 in
  let actuated = Nvm.cell nvm ~region:Application ~name:"actuateCount" ~bytes:2 0 in
  let tick = Nvm.cell nvm ~region:Application ~name:"soilTick" ~bytes:2 0 in

  let wave base amplitude ctx =
    let i = Nvm.read tick in
    Nvm.tx_write tick (i + 1);
    base
    +. (amplitude *. sin (float_of_int i /. 5.))
    +. Prng.float_range ctx.Task.prng ~lo:(-0.01) ~hi:0.01
  in

  let moisture =
    Task.make ~name:"moisture" ~duration:(Time.of_ms 120)
      ~power:(with_peripheral 5.0)
      ~body:(fun ctx -> Channel.push moisture_samples (wave 0.32 0.05 ctx))
      ()
  in
  let soil_temp_task =
    Task.make ~name:"soilTemp" ~duration:(Time.of_ms 80)
      ~power:(with_peripheral 3.0)
      ~body:(fun ctx -> Nvm.tx_write soil_temp (wave 14.0 1.5 ctx))
      ()
  in
  let aggregate =
    Task.make ~name:"aggregate" ~duration:(Time.of_ms 40) ~power:mcu
      ~body:(fun _ ->
        match Channel.items moisture_samples with
        | [] -> ()
        | samples ->
            let sum = List.fold_left ( +. ) 0. samples in
            Nvm.tx_write profile (sum /. float_of_int (List.length samples)))
      ()
  in
  let uplink =
    Task.make ~name:"uplink" ~duration:(Time.of_ms 90)
      ~power:(with_peripheral 30.0)
      ~body:(fun _ -> Nvm.tx_write uplinked (Nvm.read uplinked + 1))
      ()
  in
  let air_temp_task =
    Task.make ~name:"airTemp" ~duration:(Time.of_ms 60)
      ~power:(with_peripheral 3.0)
      ~body:(fun ctx -> Nvm.tx_write air_temp (wave 21.0 3.0 ctx))
      ()
  in
  let humidity =
    Task.make ~name:"humidity" ~duration:(Time.of_ms 60)
      ~power:(with_peripheral 3.0)
      ~body:(fun ctx -> Nvm.tx_write humidity_pct (wave 55.0 8.0 ctx))
      ()
  in
  let decide =
    Task.make ~name:"decide" ~duration:(Time.of_ms 50) ~power:mcu
      ~monitored:[ ("dryness", fun () -> Nvm.read dryness) ]
      ~body:(fun ctx ->
        (* a dry spell raises the index above the healthy band *)
        Nvm.tx_write dryness (wave dryness_base 0.04 ctx))
      ()
  in
  let actuate =
    Task.make ~name:"actuate" ~duration:(Time.of_ms 300)
      ~power:(with_peripheral 25.0)
      ~body:(fun _ -> Nvm.tx_write actuated (Nvm.read actuated + 1))
      ()
  in
  let app =
    Task.app ~name:"soil-monitoring"
      [
        { Task.index = 1; tasks = [ moisture; soil_temp_task; aggregate; uplink ] };
        { Task.index = 2; tasks = [ air_temp_task; humidity; uplink ] };
        { Task.index = 3; tasks = [ decide; actuate ] };
      ]
  in
  let handles =
    {
      moisture_samples;
      read_dryness = (fun () -> Nvm.read dryness);
      uplinks = (fun () -> Nvm.read uplinked);
      actuations = (fun () -> Nvm.read actuated);
    }
  in
  (app, handles)

let spec_text =
  {|// Soil/environment monitoring station properties
moisture: {
  period: 30s onFail: restartPath maxAttempt: 2 onFail: skipPath;
}

aggregate: {
  collect: 5 dpTask: moisture onFail: restartPath;
}

uplink: {
  MITD: 2min dpTask: aggregate onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 1;
  maxDuration: 150ms onFail: skipTask;
}

actuate: {
  minEnergy: 5mJ onFail: skipTask;
  maxTries: 5 onFail: skipPath;
}

decide: {
  dpData: dryness Range: [0.15, 0.55] onFail: completePath;
}
|}
