open Artemis_util
open Artemis_nvm

type handles = {
  temp_samples : float Channel.t;
  accel_samples : float Channel.t;
  mic_samples : float Channel.t;
  read_avg_temp : unit -> float;
  read_heart_rate : unit -> float;
  sent_messages : unit -> int;
}

let mcu = Energy.mw 1.2

let with_peripheral p = Energy.add_power mcu (Energy.mw p)

let make ?(temp_base = 36.5) nvm =
  let temp_samples = Channel.create nvm ~name:"temp" ~bytes_per_item:4 ~capacity:16 in
  let accel_samples = Channel.create nvm ~name:"accel" ~bytes_per_item:4 ~capacity:8 in
  let mic_samples = Channel.create nvm ~name:"mic" ~bytes_per_item:4 ~capacity:8 in
  let avg_temp = Nvm.cell nvm ~region:Application ~name:"avgTemp" ~bytes:4 0.0 in
  let heart_rate = Nvm.cell nvm ~region:Application ~name:"heartRateBpm" ~bytes:4 0.0 in
  let breath_class = Nvm.cell nvm ~region:Application ~name:"breathClass" ~bytes:2 0 in
  let cough_level = Nvm.cell nvm ~region:Application ~name:"coughLevel" ~bytes:4 0.0 in
  let sent = Nvm.cell nvm ~region:Application ~name:"sentCount" ~bytes:2 0 in
  let sample_index = Nvm.cell nvm ~region:Application ~name:"sampleIndex" ~bytes:2 0 in

  (* Deterministic quasi-periodic waveform around a base value. *)
  let waveform base amplitude ctx =
    let i = Nvm.read sample_index in
    Nvm.tx_write sample_index (i + 1);
    let jitter = Prng.float_range ctx.Task.prng ~lo:(-0.05) ~hi:0.05 in
    base +. (amplitude *. sin (float_of_int i /. 3.)) +. jitter
  in

  let body_temp =
    Task.make ~name:"bodyTemp" ~duration:(Time.of_ms 250)
      ~power:(with_peripheral 3.0)
      ~body:(fun ctx -> Channel.push temp_samples (waveform temp_base 0.2 ctx))
      ()
  in
  let calc_avg =
    Task.make ~name:"calcAvg" ~duration:(Time.of_ms 30) ~power:mcu
      ~monitored:[ ("avgTemp", fun () -> Nvm.read avg_temp) ]
      ~body:(fun _ ->
        match Channel.items temp_samples with
        | [] -> ()
        | samples ->
            let sum = List.fold_left ( +. ) 0. samples in
            Nvm.tx_write avg_temp (sum /. float_of_int (List.length samples)))
      ()
  in
  let heart_rate_task =
    Task.make ~name:"heartRate" ~duration:(Time.of_ms 200) ~power:mcu
      ~body:(fun ctx ->
        Nvm.tx_write heart_rate (waveform 72. 6. ctx))
      ()
  in
  let accel =
    Task.make ~name:"accel" ~duration:(Time.of_ms 900)
      ~power:(with_peripheral 18.0)
      ~body:(fun ctx -> Channel.push accel_samples (waveform 0.4 0.3 ctx))
      ()
  in
  let classify =
    Task.make ~name:"classify" ~duration:(Time.of_ms 250) ~power:mcu
      ~body:(fun _ ->
        let magnitude =
          List.fold_left (fun m v -> Float.max m (Float.abs v)) 0.
            (Channel.items accel_samples)
        in
        Nvm.tx_write breath_class (if magnitude > 0.5 then 1 else 0))
      ()
  in
  let mic_sense =
    Task.make ~name:"micSense" ~duration:(Time.of_ms 600)
      ~power:(with_peripheral 12.0)
      ~body:(fun ctx -> Channel.push mic_samples (waveform 0.1 0.08 ctx))
      ()
  in
  let filter =
    Task.make ~name:"filter" ~duration:(Time.of_ms 150) ~power:mcu
      ~body:(fun _ ->
        let energy_sum =
          List.fold_left (fun acc v -> acc +. (v *. v)) 0.
            (Channel.items mic_samples)
        in
        Nvm.tx_write cough_level energy_sum)
      ()
  in
  let send =
    Task.make ~name:"send" ~duration:(Time.of_ms 80)
      ~power:(with_peripheral 30.0)
      ~body:(fun _ -> Nvm.tx_write sent (Nvm.read sent + 1))
      ()
  in
  let app =
    Task.app ~name:"health-monitoring"
      [
        { Task.index = 1; tasks = [ body_temp; calc_avg; heart_rate_task; send ] };
        { Task.index = 2; tasks = [ accel; classify; send ] };
        { Task.index = 3; tasks = [ mic_sense; filter; send ] };
      ]
  in
  let handles =
    {
      temp_samples;
      accel_samples;
      mic_samples;
      read_avg_temp = (fun () -> Nvm.read avg_temp);
      read_heart_rate = (fun () -> Nvm.read heart_rate);
      sent_messages = (fun () -> Nvm.read sent);
    }
  in
  (app, handles)

let spec_text =
  {|// Figure 5: property specification of the health-monitoring benchmark
micSense: {
  maxTries: 10 onFail: skipPath;
}

send: {
  MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
  maxDuration: 100ms onFail: skipTask;
  collect: 1 dpTask: accel onFail: restartPath Path: 2;
  collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg: {
  collect: 10 dpTask: bodyTemp onFail: restartPath;
  dpData: avgTemp Range: [36, 38] onFail: completePath;
}

accel: {
  maxTries: 10 onFail: skipPath;
}
|}

let mayfly_spec_text =
  {|// Mayfly version (Section 5.1.1): collect and MITD only
send: {
  MITD: 5min dpTask: accel onFail: restartPath Path: 2;
  collect: 1 dpTask: accel onFail: restartPath Path: 2;
  collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg: {
  collect: 10 dpTask: bodyTemp onFail: restartPath;
}
|}
