lib/runtime/runtime.ml: Array Artemis_device Artemis_energy Artemis_fsm Artemis_immortal Artemis_monitor Artemis_nvm Artemis_task Artemis_trace Artemis_util Energy List Option Prng Time
