lib/runtime/runtime.mli: Artemis_device Artemis_monitor Artemis_task Artemis_trace Artemis_util Cost_model Device Energy Task Time
