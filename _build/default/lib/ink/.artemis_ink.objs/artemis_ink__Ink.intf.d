lib/ink/ink.mli: Artemis_device Artemis_task Artemis_trace Artemis_util Device Energy Task Time
