lib/ink/ink.ml: Array Artemis_device Artemis_nvm Artemis_task Artemis_trace Artemis_util Energy List Printf Prng Result String Time
