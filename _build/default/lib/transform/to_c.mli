(** Model-to-text transformation: intermediate language -> C monitor code
    (Section 4.2, Figure 10).

    The emitted translation unit mirrors the paper's generated monitors:
    every machine becomes an FRAM-resident state enum + variable struct
    and a step function; the unit ends with the [callMonitor] dispatcher
    wrapped in ImmortalThreads-style [_begin]/[_end] macros, plus
    [resetMonitor] and [monitorFinalize].  The code targets msp430-gcc
    conventions ([__attribute__((section(".persistent")))] for FRAM
    placement) but is plain C99.

    We cannot run msp430-gcc in this environment, so the output is
    golden-tested structurally, and Table 2's [.text] column is estimated
    from the emitted source size (DESIGN.md decision 6). *)

val prelude : string
(** Event/result/action declarations shared by all monitors. *)

val machine : Artemis_fsm.Ast.machine -> string
(** The C for one monitor (enum, persistent variables, step function). *)

val suite : Artemis_fsm.Ast.machine list -> string
(** Complete translation unit: prelude, every machine, and the
    [callMonitor]/[resetMonitor]/[monitorFinalize] interface. *)

val estimated_text_bytes : string -> int
(** [.text] estimate from C source size (factor 0.28, DESIGN.md). *)

val fram_bytes : Artemis_fsm.Ast.machine -> int
(** Bytes of FRAM the machine's state and variables occupy (2 for the
    state, 4 per int/float, 1 per bool, 8 per time). *)
