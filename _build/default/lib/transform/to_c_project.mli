(** Whole-project C emission.

    The paper's artifact ships ARTEMIS as a C library tree (appendix A.3:
    [libartemis] runtime sources, [mem.h] non-volatile memory macros,
    [clock.h] persistent timekeeping, a trimmed ImmortalThreads library,
    and the generated application monitors).  This module emits that tree
    for a given application and compiled monitor set: a self-contained,
    msp430-gcc-oriented C project in which only the task bodies remain to
    be filled in.

    We cannot compile it here (no msp430 toolchain in the environment);
    the emitted files are structurally golden-tested, and every
    task/path/monitor reference is generated from the validated
    application so the project is internally consistent. *)

open Artemis_task

type file = { path : string; contents : string }

val project :
  app:Task.app -> machines:Artemis_fsm.Ast.machine list -> file list
(** Files, with project-relative paths:
    - [include/artemis/mem.h] - FRAM placement and task-transaction macros
    - [include/artemis/clock.h] - persistent timekeeping interface
    - [include/artemis/immortal.h] - local-continuation macros
    - [include/artemis/runtime.h] - task/event/action declarations
    - [src/monitors.c] - the generated monitor translation unit
    - [src/runtime.c] - the Figure 8/9 main loop over the app's task table
    - [src/tasks.c] - one stub per task, durations/draws as comments
    - [Makefile] - msp430-elf-gcc build rules
    @raise Invalid_argument if {!Task.validate} rejects the app. *)

val write_to : dir:string -> file list -> unit
(** Materialize the project under [dir] (creates directories). *)

val total_bytes : file list -> int
