(** Model-to-model transformation: property specification -> intermediate
    language (one state machine per property, the shapes of Figure 7).

    Semantics notes (see DESIGN.md "deliberate semantic decisions"):

    - {b maxTries n}: the counter follows Figure 7 exactly - the action
      fires on the (n+1)-th consecutive start event (n attempts are
      allowed to run).
    - {b maxDuration}: repeated start events of the same task instance
      (power-failure re-executions) are absorbed by the implicit
      self-transition, so the monitor retains the first attempt's
      timestamp (Section 4.1.3).
    - {b collect n}: by default the counter is [persistent] and
      accumulates across path restarts, consuming [n] on success; with
      [collect_reset_on_fail = true] the literal Figure 7 machine is
      produced (counter zeroed on failure).
    - {b MITD/period with maxAttempt m}: the first [m-1] violations raise
      the primary action, the m-th raises the exhausted action and resets
      the (persistent) attempt counter.
    - A property with a [Path] clause gets a [path == p] conjunct on the
      transitions triggered by its own task's events. *)

type options = { collect_reset_on_fail : bool }

val default_options : options
(** [{ collect_reset_on_fail = false }]. *)

val action : Artemis_spec.Ast.action -> Artemis_fsm.Ast.action

val property :
  ?options:options ->
  task:string ->
  name:string ->
  Artemis_spec.Ast.property ->
  Artemis_fsm.Ast.machine
(** Compile one property of [task] into a machine called [name]. *)

val spec :
  ?options:options -> Artemis_spec.Ast.t -> Artemis_fsm.Ast.machine list
(** Compile a whole specification; machine names are derived from the
    task, property kind and dependency, made unique with a numeric
    suffix on clashes.  Every produced machine satisfies
    {!Artemis_fsm.Typecheck.check} (tested). *)
