lib/transform/to_c.mli: Artemis_fsm
