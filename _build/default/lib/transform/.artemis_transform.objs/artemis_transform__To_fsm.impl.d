lib/transform/to_fsm.ml: Artemis_fsm Artemis_spec Artemis_util Hashtbl List Printf Time
