lib/transform/to_c_project.ml: Artemis_task Artemis_util Buffer Energy Filename Format List Option Out_channel Printf String Sys Time To_c
