lib/transform/to_c.ml: Artemis_fsm Artemis_util Buffer Float Format List Option Printf String Time
