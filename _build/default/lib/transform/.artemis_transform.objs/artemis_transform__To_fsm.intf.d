lib/transform/to_fsm.mli: Artemis_fsm Artemis_spec
