lib/transform/to_c_project.mli: Artemis_fsm Artemis_task Task
