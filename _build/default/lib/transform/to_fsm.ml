open Artemis_util
module S = Artemis_spec.Ast
module F = Artemis_fsm.Ast

type options = { collect_reset_on_fail : bool }

let default_options = { collect_reset_on_fail = false }

let action = function
  | S.Restart_path -> F.Restart_path
  | S.Skip_path -> F.Skip_path
  | S.Restart_task -> F.Restart_task
  | S.Skip_task -> F.Skip_task
  | S.Complete_path -> F.Complete_path

(* Conjoin the [path == p] filter of a Path-qualified property. *)
let with_path_filter path guard =
  match path with
  | None -> guard
  | Some p ->
      let filter = F.Binop (F.Eq, F.Event_path, F.Lit (F.Vint p)) in
      (match guard with
      | None -> Some filter
      | Some g -> Some (F.Binop (F.And, filter, g)))

let int_lit n = F.Lit (F.Vint n)
let time_lit t = F.Lit (F.Vtime t)
let ivar name = F.Var name

let fail act path = F.Fail (action act, path)

(* Figure 7, first machine. *)
let max_tries ~task ~name ~n ~on_fail ~path =
  let start_guard g = with_path_filter path g in
  {
    F.machine_name = name;
    vars = [ { F.var_name = "i"; ty = F.Tint; init = F.Vint 0; persistent = false } ];
    initial = "NotStarted";
    states =
      [
        {
          F.state_name = "NotStarted";
          transitions =
            [
              {
                F.trigger = F.On_start task;
                guard = start_guard None;
                body = [ F.Assign ("i", int_lit 1) ];
                target = "Started";
              };
            ];
        };
        {
          F.state_name = "Started";
          transitions =
            [
              {
                F.trigger = F.On_start task;
                guard = start_guard (Some (F.Binop (F.Lt, ivar "i", int_lit n)));
                body = [ F.Assign ("i", F.Binop (F.Add, ivar "i", int_lit 1)) ];
                target = "Started";
              };
              {
                F.trigger = F.On_start task;
                guard = start_guard (Some (F.Binop (F.Ge, ivar "i", int_lit n)));
                body = [ fail on_fail path; F.Assign ("i", int_lit 0) ];
                target = "NotStarted";
              };
              {
                F.trigger = F.On_end task;
                guard = None;
                body = [ F.Assign ("i", int_lit 0) ];
                target = "NotStarted";
              };
            ];
        };
      ];
  }

(* Figure 7, second machine.  In [Started], re-delivered start events hit
   the implicit self-transition, so [start] keeps the first attempt's
   timestamp (Section 4.1.3). *)
let max_duration ~task ~name ~limit ~on_fail ~path =
  let elapsed = F.Binop (F.Sub, F.Timestamp, ivar "start") in
  {
    F.machine_name = name;
    vars =
      [
        {
          F.var_name = "start";
          ty = F.Ttime;
          init = F.Vtime Time.zero;
          persistent = false;
        };
      ];
    initial = "NotStarted";
    states =
      [
        {
          F.state_name = "NotStarted";
          transitions =
            [
              {
                F.trigger = F.On_start task;
                guard = with_path_filter path None;
                body = [ F.Assign ("start", F.Timestamp) ];
                target = "Started";
              };
            ];
        };
        {
          F.state_name = "Started";
          transitions =
            [
              {
                F.trigger = F.On_end task;
                guard = Some (F.Binop (F.Le, elapsed, time_lit limit));
                body = [];
                target = "NotStarted";
              };
              {
                F.trigger = F.On_any;
                guard = Some (F.Binop (F.Gt, elapsed, time_lit limit));
                body = [ fail on_fail path ];
                target = "NotStarted";
              };
            ];
        };
      ];
  }

(* Figure 7, third machine, with the accumulate-across-restarts default
   (DESIGN.md decision 1).  The [Consumed] state absorbs re-delivered
   start events so one successful check is not double-consumed. *)
let collect ~options ~task ~name ~n ~dp_task ~on_fail ~path =
  let fail_body =
    if options.collect_reset_on_fail then
      [ fail on_fail path; F.Assign ("i", int_lit 0) ]
    else [ fail on_fail path ]
  in
  {
    F.machine_name = name;
    vars =
      [
        {
          F.var_name = "i";
          ty = F.Tint;
          init = F.Vint 0;
          persistent = not options.collect_reset_on_fail;
        };
      ];
    initial = "Counting";
    states =
      [
        {
          F.state_name = "Counting";
          transitions =
            [
              {
                F.trigger = F.On_end dp_task;
                guard = None;
                body = [ F.Assign ("i", F.Binop (F.Add, ivar "i", int_lit 1)) ];
                target = "Counting";
              };
              {
                F.trigger = F.On_start task;
                guard =
                  with_path_filter path (Some (F.Binop (F.Ge, ivar "i", int_lit n)));
                body = [ F.Assign ("i", F.Binop (F.Sub, ivar "i", int_lit n)) ];
                target = "Consumed";
              };
              {
                F.trigger = F.On_start task;
                guard =
                  with_path_filter path (Some (F.Binop (F.Lt, ivar "i", int_lit n)));
                body = fail_body;
                target = "Counting";
              };
            ];
        };
        {
          F.state_name = "Consumed";
          transitions =
            [
              {
                F.trigger = F.On_end task;
                guard = None;
                body = [];
                target = "Counting";
              };
              {
                F.trigger = F.On_end dp_task;
                guard = None;
                body = [ F.Assign ("i", F.Binop (F.Add, ivar "i", int_lit 1)) ];
                target = "Consumed";
              };
            ];
        };
      ];
  }

(* Figure 7, fourth machine.  With maxAttempt m, the first m-1 violations
   raise the primary action and the m-th the exhausted action. *)
let mitd ~task ~name ~limit ~dp_task ~on_fail ~max_attempt ~path =
  let elapsed = F.Binop (F.Sub, F.Timestamp, ivar "endB") in
  let on_time = F.Binop (F.Le, elapsed, time_lit limit) in
  let late = F.Binop (F.Gt, elapsed, time_lit limit) in
  let vars =
    {
      F.var_name = "endB";
      ty = F.Ttime;
      init = F.Vtime Time.zero;
      persistent = false;
    }
    ::
    (match max_attempt with
    | None -> []
    | Some _ ->
        [
          {
            F.var_name = "attempts";
            ty = F.Tint;
            init = F.Vint 0;
            persistent = true;
          };
        ])
  in
  let violation_transitions =
    match max_attempt with
    | None ->
        [
          {
            F.trigger = F.On_start task;
            guard = with_path_filter path (Some late);
            body = [ fail on_fail path ];
            target = "WaitEndB";
          };
        ]
    | Some { S.attempts = m; exhausted } ->
        [
          {
            F.trigger = F.On_start task;
            guard =
              with_path_filter path
                (Some
                   (F.Binop (F.And, late, F.Binop (F.Lt, ivar "attempts", int_lit (m - 1)))));
            body =
              [
                F.Assign ("attempts", F.Binop (F.Add, ivar "attempts", int_lit 1));
                fail on_fail path;
              ];
            target = "WaitEndB";
          };
          {
            F.trigger = F.On_start task;
            guard =
              with_path_filter path
                (Some
                   (F.Binop (F.And, late, F.Binop (F.Ge, ivar "attempts", int_lit (m - 1)))));
            body = [ F.Assign ("attempts", int_lit 0); fail exhausted path ];
            target = "WaitEndB";
          };
        ]
  in
  let reset_attempts =
    match max_attempt with
    | None -> []
    | Some _ -> [ F.Assign ("attempts", int_lit 0) ]
  in
  {
    F.machine_name = name;
    vars;
    initial = "WaitEndB";
    states =
      [
        {
          F.state_name = "WaitEndB";
          transitions =
            [
              {
                F.trigger = F.On_end dp_task;
                guard = None;
                body = [ F.Assign ("endB", F.Timestamp) ];
                target = "WaitStartA";
              };
            ];
        };
        {
          F.state_name = "WaitStartA";
          transitions =
            ({
               F.trigger = F.On_start task;
               guard = with_path_filter path (Some on_time);
               body = reset_attempts;
               target = "WaitEndB";
             }
            :: violation_transitions)
            @ [
                (* a fresh completion of B re-anchors the window *)
                {
                  F.trigger = F.On_end dp_task;
                  guard = None;
                  body = [ F.Assign ("endB", F.Timestamp) ];
                  target = "WaitStartA";
                };
              ];
        };
      ];
  }

(* Periodicity: anchored on the previous instance's start; power-failure
   re-starts are absorbed in [Running]. *)
let period ~task ~name ~interval ~on_fail ~max_attempt ~path =
  let elapsed = F.Binop (F.Sub, F.Timestamp, ivar "last") in
  let on_time = F.Binop (F.Le, elapsed, time_lit interval) in
  let late = F.Binop (F.Gt, elapsed, time_lit interval) in
  let vars =
    {
      F.var_name = "last";
      ty = F.Ttime;
      init = F.Vtime Time.zero;
      persistent = false;
    }
    ::
    (match max_attempt with
    | None -> []
    | Some _ ->
        [
          {
            F.var_name = "attempts";
            ty = F.Tint;
            init = F.Vint 0;
            persistent = true;
          };
        ])
  in
  let anchor = F.Assign ("last", F.Timestamp) in
  let violation_transitions =
    match max_attempt with
    | None ->
        [
          {
            F.trigger = F.On_start task;
            guard = with_path_filter path (Some late);
            body = [ fail on_fail path; anchor ];
            target = "Running";
          };
        ]
    | Some { S.attempts = m; exhausted } ->
        [
          {
            F.trigger = F.On_start task;
            guard =
              with_path_filter path
                (Some
                   (F.Binop (F.And, late, F.Binop (F.Lt, ivar "attempts", int_lit (m - 1)))));
            body =
              [
                F.Assign ("attempts", F.Binop (F.Add, ivar "attempts", int_lit 1));
                fail on_fail path;
                anchor;
              ];
            target = "Running";
          };
          {
            F.trigger = F.On_start task;
            guard =
              with_path_filter path
                (Some
                   (F.Binop (F.And, late, F.Binop (F.Ge, ivar "attempts", int_lit (m - 1)))));
            body = [ F.Assign ("attempts", int_lit 0); fail exhausted path; anchor ];
            target = "Running";
          };
        ]
  in
  {
    F.machine_name = name;
    vars;
    initial = "First";
    states =
      [
        {
          F.state_name = "First";
          transitions =
            [
              {
                F.trigger = F.On_start task;
                guard = with_path_filter path None;
                body = [ anchor ];
                target = "Running";
              };
            ];
        };
        {
          F.state_name = "Running";
          transitions =
            [
              { F.trigger = F.On_end task; guard = None; body = []; target = "Await" };
            ];
        };
        {
          F.state_name = "Await";
          transitions =
            {
              F.trigger = F.On_start task;
              guard = with_path_filter path (Some on_time);
              body = [ anchor ];
              target = "Running";
            }
            :: violation_transitions;
        };
      ];
  }

(* Range check over a monitored task variable, at task completion. *)
let dp_data ~task ~name ~var ~low ~high ~on_fail ~path =
  let out_of_range =
    F.Binop
      ( F.Or,
        F.Binop (F.Lt, F.Dep_data var, F.Lit (F.Vfloat low)),
        F.Binop (F.Gt, F.Dep_data var, F.Lit (F.Vfloat high)) )
  in
  {
    F.machine_name = name;
    vars = [];
    initial = "Watching";
    states =
      [
        {
          F.state_name = "Watching";
          transitions =
            [
              {
                F.trigger = F.On_end task;
                guard = with_path_filter path (Some out_of_range);
                body = [ fail on_fail path ];
                target = "Watching";
              };
            ];
        };
      ];
  }

(* Section 4.2.2 extension: pre-execution energy check via the runtime's
   capacitor-level primitive. *)
let min_energy ~task ~name ~uj ~on_fail ~path =
  let below =
    F.Binop (F.Lt, F.Energy_level, F.Lit (F.Vfloat (uj /. 1e3) (* mJ *)))
  in
  {
    F.machine_name = name;
    vars = [];
    initial = "Watching";
    states =
      [
        {
          F.state_name = "Watching";
          transitions =
            [
              {
                F.trigger = F.On_start task;
                guard = with_path_filter path (Some below);
                body = [ fail on_fail path ];
                target = "Watching";
              };
            ];
        };
      ];
  }

let property ?(options = default_options) ~task ~name (p : S.property) =
  match p with
  | S.Max_tries { n; on_fail; path } -> max_tries ~task ~name ~n ~on_fail ~path
  | S.Max_duration { limit; on_fail; path } ->
      max_duration ~task ~name ~limit ~on_fail ~path
  | S.Collect { n; dp_task; on_fail; path } ->
      collect ~options ~task ~name ~n ~dp_task ~on_fail ~path
  | S.Mitd { limit; dp_task; on_fail; max_attempt; path } ->
      mitd ~task ~name ~limit ~dp_task ~on_fail ~max_attempt ~path
  | S.Period { interval; on_fail; max_attempt; path } ->
      period ~task ~name ~interval ~on_fail ~max_attempt ~path
  | S.Dp_data { var; low; high; on_fail; path } ->
      dp_data ~task ~name ~var ~low ~high ~on_fail ~path
  | S.Min_energy { uj; on_fail; path } ->
      min_energy ~task ~name ~uj ~on_fail ~path

let base_name ~task (p : S.property) =
  match p with
  | S.Max_tries _ -> Printf.sprintf "maxTries_%s" task
  | S.Max_duration _ -> Printf.sprintf "maxDuration_%s" task
  | S.Collect { dp_task; _ } -> Printf.sprintf "collect_%s_%s" task dp_task
  | S.Mitd { dp_task; _ } -> Printf.sprintf "MITD_%s_%s" task dp_task
  | S.Period _ -> Printf.sprintf "period_%s" task
  | S.Dp_data { var; _ } -> Printf.sprintf "dpData_%s_%s" task var
  | S.Min_energy _ -> Printf.sprintf "minEnergy_%s" task

let spec ?(options = default_options) blocks =
  let used = Hashtbl.create 16 in
  let unique name =
    if not (Hashtbl.mem used name) then begin
      Hashtbl.add used name ();
      name
    end
    else
      let rec next i =
        let candidate = Printf.sprintf "%s_%d" name i in
        if Hashtbl.mem used candidate then next (i + 1)
        else begin
          Hashtbl.add used candidate ();
          candidate
        end
      in
      next 2
  in
  List.concat_map
    (fun { S.task; properties } ->
      List.map
        (fun p ->
          let name = unique (base_name ~task p) in
          property ~options ~task ~name p)
        properties)
    blocks
