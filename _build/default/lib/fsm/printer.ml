open Artemis_util
open Ast

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* fixed-point decimal so the scanner (which has no exponent syntax)
       can read it back; trailing zeros trimmed but one decimal kept *)
    let s = Printf.sprintf "%.12f" f in
    let len = String.length s in
    let rec last i = if i > 0 && s.[i] = '0' && s.[i - 1] <> '.' then last (i - 1) else i in
    String.sub s 0 (last (len - 1) + 1)

let value_to_string = function
  | Vint n -> string_of_int n
  | Vbool b -> if b then "true" else "false"
  | Vfloat f -> float_lit f
  | Vtime t -> Time.to_literal t

let unop_to_string = function Neg -> "-" | Not -> "!"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

(* Fully parenthesized compound expressions: unambiguous to reparse and
   close to what the C emitter produces. *)
let rec expr_to_string = function
  | Lit v -> value_to_string v
  | Var x -> x
  | Timestamp -> "t"
  | Event_path -> "path"
  | Dep_data x -> Printf.sprintf "data(%s)" x
  | Energy_level -> "energyLevel"
  | Unop (op, e) -> Printf.sprintf "%s(%s)" (unop_to_string op) (expr_to_string e)
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
        (expr_to_string b)

let trigger_to_string = function
  | On_start t -> Printf.sprintf "startTask(%s)" t
  | On_end t -> Printf.sprintf "endTask(%s)" t
  | On_any -> "anyEvent"

let rec stmt_lines indent stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Assign (x, e) -> [ Printf.sprintf "%s%s := %s;" pad x (expr_to_string e) ]
  | Fail (action, path) ->
      let suffix =
        match path with None -> "" | Some p -> Printf.sprintf " Path %d" p
      in
      [ Printf.sprintf "%sfail %s%s;" pad (action_to_string action) suffix ]
  | If (cond, then_, []) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_to_string cond)
      :: List.concat_map (stmt_lines (indent + 2)) then_)
      @ [ pad ^ "}" ]
  | If (cond, then_, else_) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_to_string cond)
      :: List.concat_map (stmt_lines (indent + 2)) then_)
      @ [ pad ^ "} else {" ]
      @ List.concat_map (stmt_lines (indent + 2)) else_
      @ [ pad ^ "}" ]

let transition_lines state_name tr =
  let guard =
    match tr.guard with
    | None -> ""
    | Some g -> Printf.sprintf " when (%s)" (expr_to_string g)
  in
  let arrow =
    if String.equal tr.target state_name then ""
    else Printf.sprintf " -> %s" tr.target
  in
  match tr.body with
  | [] -> [ Printf.sprintf "    on %s%s%s;" (trigger_to_string tr.trigger) guard arrow ]
  | body ->
      (Printf.sprintf "    on %s%s {" (trigger_to_string tr.trigger) guard
      :: List.concat_map (stmt_lines 6) body)
      @ [ Printf.sprintf "    }%s;" arrow ]

let to_string m =
  let buf = Buffer.create 512 in
  let line l = Buffer.add_string buf (l ^ "\n") in
  line (Printf.sprintf "machine %s {" m.machine_name);
  List.iter
    (fun v ->
      line
        (Printf.sprintf "  %svar %s : %s = %s;"
           (if v.persistent then "persistent " else "")
           v.var_name (ty_to_string v.ty) (value_to_string v.init)))
    m.vars;
  List.iter
    (fun s ->
      let keyword =
        if String.equal s.state_name m.initial then "initial state" else "state"
      in
      line (Printf.sprintf "  %s %s {" keyword s.state_name);
      List.iter (fun tr -> List.iter line (transition_lines s.state_name tr)) s.transitions;
      line "  }")
    m.states;
  line "}";
  Buffer.contents buf

let machines_to_string ms = String.concat "\n" (List.map to_string ms)
