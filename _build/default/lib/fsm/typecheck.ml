open Ast

let rec expr_type ~vars e =
  let ( let* ) r f = Result.bind r f in
  match e with
  | Lit v -> Ok (ty_of_value v)
  | Var x -> (
      match vars x with
      | Some ty -> Ok ty
      | None -> Error (Printf.sprintf "undeclared variable %S" x))
  | Timestamp -> Ok Ttime
  | Event_path -> Ok Tint
  | Dep_data _ -> Ok Tfloat
  | Energy_level -> Ok Tfloat
  | Unop (Neg, e) -> (
      let* ty = expr_type ~vars e in
      match ty with
      | Tint | Tfloat | Ttime -> Ok ty
      | Tbool -> Error "cannot negate a bool")
  | Unop (Not, e) -> (
      let* ty = expr_type ~vars e in
      match ty with
      | Tbool -> Ok Tbool
      | Tint | Tfloat | Ttime -> Error "! expects a bool")
  | Binop (op, a, b) -> (
      let* ta = expr_type ~vars a in
      let* tb = expr_type ~vars b in
      let same what =
        if ta = tb then Ok ta
        else
          Error
            (Printf.sprintf "%s expects equal operand types, got %s and %s"
               what (ty_to_string ta) (ty_to_string tb))
      in
      match op with
      | Add | Sub -> (
          let* ty = same "arithmetic" in
          match ty with
          | Tint | Tfloat | Ttime -> Ok ty
          | Tbool -> Error "arithmetic on bool")
      | Mul | Div -> (
          let* ty = same "arithmetic" in
          match ty with
          | Tint | Tfloat -> Ok ty
          | Ttime -> Error "* and / are not defined on time"
          | Tbool -> Error "arithmetic on bool")
      | Mod -> (
          let* ty = same "%" in
          match ty with
          | Tint -> Ok Tint
          | Tbool | Tfloat | Ttime -> Error "% expects ints")
      | Eq | Ne | Lt | Le | Gt | Ge ->
          let* _ = same "comparison" in
          Ok Tbool
      | And | Or ->
          if ta = Tbool && tb = Tbool then Ok Tbool
          else Error "&& and || expect bools")

let check m =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* unique names *)
  let check_unique what names =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun n ->
        if Hashtbl.mem tbl n then err "duplicate %s %S" what n
        else Hashtbl.add tbl n ())
      names
  in
  check_unique "state" (List.map (fun s -> s.state_name) m.states);
  check_unique "variable" (List.map (fun v -> v.var_name) m.vars);
  if find_state m m.initial = None then
    err "initial state %S does not exist" m.initial;
  List.iter
    (fun v ->
      if ty_of_value v.init <> v.ty then
        err "variable %S: initializer type %s does not match declared %s"
          v.var_name
          (ty_to_string (ty_of_value v.init))
          (ty_to_string v.ty))
    m.vars;
  let vars x = Option.map (fun v -> v.ty) (find_var m x) in
  let in_ctx state_name what = Printf.sprintf "state %S, %s" state_name what in
  let rec check_stmt ctx = function
    | Assign (x, e) -> (
        match (vars x, expr_type ~vars e) with
        | None, _ -> err "%s: assignment to undeclared variable %S" ctx x
        | Some _, Error msg -> err "%s: %s" ctx msg
        | Some ty, Ok te ->
            if ty <> te then
              err "%s: assigning %s to variable %S of type %s" ctx
                (ty_to_string te) x (ty_to_string ty))
    | If (cond, then_, else_) ->
        (match expr_type ~vars cond with
        | Error msg -> err "%s: %s" ctx msg
        | Ok Tbool -> ()
        | Ok other ->
            err "%s: if condition has type %s, expected bool" ctx
              (ty_to_string other));
        List.iter (check_stmt ctx) then_;
        List.iter (check_stmt ctx) else_
    | Fail (_, Some p) when p <= 0 -> err "%s: fail Path must be positive" ctx
    | Fail (_, _) -> ()
  in
  List.iter
    (fun s ->
      List.iter
        (fun tr ->
          let ctx = in_ctx s.state_name "transition" in
          (match tr.guard with
          | None -> ()
          | Some g -> (
              match expr_type ~vars g with
              | Error msg -> err "%s: %s" ctx msg
              | Ok Tbool -> ()
              | Ok other ->
                  err "%s: guard has type %s, expected bool" ctx
                    (ty_to_string other)));
          List.iter (check_stmt ctx) tr.body;
          if find_state m tr.target = None then
            err "%s: target state %S does not exist" ctx tr.target)
        s.transitions)
    m.states;
  match List.rev !errors with [] -> Ok () | errs -> Error errs

let check_exn m =
  match check m with
  | Ok () -> ()
  | Error errs ->
      failwith
        (Printf.sprintf "machine %S: %s" m.machine_name
           (String.concat "\n" errs))
