open Artemis_util
open Ast

exception Error of string * int * int

type stream = { mutable tokens : Scanner.located list }

let peek s = match s.tokens with [] -> assert false | t :: _ -> t

let advance s =
  match s.tokens with [] -> assert false | _ :: rest -> s.tokens <- rest

let fail_at (loc : Scanner.located) fmt =
  Format.kasprintf (fun msg -> raise (Error (msg, loc.line, loc.col))) fmt

let expect_punct s p =
  let t = peek s in
  match t.token with
  | Scanner.Punct q when String.equal p q -> advance s
  | other -> fail_at t "expected %S but found %a" p Scanner.pp_token other

let accept_punct s p =
  let t = peek s in
  match t.token with
  | Scanner.Punct q when String.equal p q ->
      advance s;
      true
  | _ -> false

let expect_ident s =
  let t = peek s in
  match t.token with
  | Scanner.Ident name ->
      advance s;
      name
  | other -> fail_at t "expected an identifier but found %a" Scanner.pp_token other

let expect_keyword s kw =
  let t = peek s in
  match t.token with
  | Scanner.Ident name when String.equal name kw -> advance s
  | other -> fail_at t "expected %S but found %a" kw Scanner.pp_token other

let accept_keyword s kw =
  let t = peek s in
  match t.token with
  | Scanner.Ident name when String.equal name kw ->
      advance s;
      true
  | _ -> false

let expect_int s =
  let t = peek s in
  match t.token with
  | Scanner.Int n ->
      advance s;
      n
  | other -> fail_at t "expected an integer but found %a" Scanner.pp_token other

(* --- expressions (precedence climbing) --- *)

let literal_of_token s =
  let t = peek s in
  match t.token with
  | Scanner.Int n ->
      advance s;
      Some (Vint n)
  | Scanner.Float f ->
      advance s;
      Some (Vfloat f)
  | Scanner.Duration d ->
      advance s;
      Some (Vtime d)
  | Scanner.Ident "true" ->
      advance s;
      Some (Vbool true)
  | Scanner.Ident "false" ->
      advance s;
      Some (Vbool false)
  | _ -> None

let negate_value loc = function
  | Vint n -> Vint (-n)
  | Vfloat f -> Vfloat (-.f)
  | Vtime t -> Vtime (Time.sub Time.zero t)
  | Vbool _ -> fail_at loc "cannot negate a bool literal"

let rec parse_or s =
  let left = parse_and s in
  if accept_punct s "||" then Binop (Or, left, parse_or s) else left

and parse_and s =
  let left = parse_cmp s in
  if accept_punct s "&&" then Binop (And, left, parse_and s) else left

and parse_cmp s =
  let left = parse_add s in
  let op =
    if accept_punct s "==" then Some Eq
    else if accept_punct s "!=" then Some Ne
    else if accept_punct s "<=" then Some Le
    else if accept_punct s ">=" then Some Ge
    else if accept_punct s "<" then Some Lt
    else if accept_punct s ">" then Some Gt
    else None
  in
  match op with None -> left | Some op -> Binop (op, left, parse_add s)

and parse_add s =
  let rec loop left =
    if accept_punct s "+" then loop (Binop (Add, left, parse_mul s))
    else if accept_punct s "-" then loop (Binop (Sub, left, parse_mul s))
    else left
  in
  loop (parse_mul s)

and parse_mul s =
  let rec loop left =
    if accept_punct s "*" then loop (Binop (Mul, left, parse_unary s))
    else if accept_punct s "/" then loop (Binop (Div, left, parse_unary s))
    else if accept_punct s "%" then loop (Binop (Mod, left, parse_unary s))
    else left
  in
  loop (parse_unary s)

and parse_unary s =
  let loc = peek s in
  if accept_punct s "-" then
    (* fold minus into a directly following literal so that printed
       negative literals round-trip *)
    match literal_of_token s with
    | Some v -> Lit (negate_value loc v)
    | None -> Unop (Neg, parse_unary s)
  else if accept_punct s "!" then Unop (Not, parse_unary s)
  else parse_primary s

and parse_primary s =
  let t = peek s in
  match literal_of_token s with
  | Some v -> Lit v
  | None -> (
      match t.token with
      | Scanner.Punct "(" ->
          advance s;
          let e = parse_or s in
          expect_punct s ")";
          e
      | Scanner.Ident "t" ->
          advance s;
          Timestamp
      | Scanner.Ident "path" ->
          advance s;
          Event_path
      | Scanner.Ident "energyLevel" ->
          advance s;
          Energy_level
      | Scanner.Ident "data" ->
          advance s;
          expect_punct s "(";
          let x = expect_ident s in
          expect_punct s ")";
          Dep_data x
      | Scanner.Ident x ->
          advance s;
          Var x
      | other -> fail_at t "expected an expression but found %a" Scanner.pp_token other)

(* --- statements --- *)

let expect_action s =
  let t = peek s in
  let name = expect_ident s in
  match action_of_string name with
  | Some a -> a
  | None -> fail_at t "unknown action %S" name

let rec parse_stmt s =
  let t = peek s in
  match t.token with
  | Scanner.Ident "if" ->
      advance s;
      expect_punct s "(";
      let cond = parse_or s in
      expect_punct s ")";
      expect_punct s "{";
      let then_ = parse_stmts s in
      expect_punct s "}";
      let else_ =
        if accept_keyword s "else" then begin
          expect_punct s "{";
          let e = parse_stmts s in
          expect_punct s "}";
          e
        end
        else []
      in
      If (cond, then_, else_)
  | Scanner.Ident "fail" ->
      advance s;
      let action = expect_action s in
      let path =
        if accept_keyword s "Path" then Some (expect_int s) else None
      in
      expect_punct s ";";
      Fail (action, path)
  | Scanner.Ident _ ->
      let x = expect_ident s in
      expect_punct s ":=";
      let e = parse_or s in
      expect_punct s ";";
      Assign (x, e)
  | other -> fail_at t "expected a statement but found %a" Scanner.pp_token other

and parse_stmts s =
  let rec loop acc =
    match (peek s).token with
    | Scanner.Punct "}" -> List.rev acc
    | _ -> loop (parse_stmt s :: acc)
  in
  loop []

(* --- machine structure --- *)

let parse_trigger s =
  let t = peek s in
  match t.token with
  | Scanner.Ident "startTask" ->
      advance s;
      expect_punct s "(";
      let task = expect_ident s in
      expect_punct s ")";
      On_start task
  | Scanner.Ident "endTask" ->
      advance s;
      expect_punct s "(";
      let task = expect_ident s in
      expect_punct s ")";
      On_end task
  | Scanner.Ident "anyEvent" ->
      advance s;
      On_any
  | other -> fail_at t "expected a trigger but found %a" Scanner.pp_token other

let parse_transition s ~state_name =
  expect_keyword s "on";
  let trigger = parse_trigger s in
  let guard =
    if accept_keyword s "when" then begin
      expect_punct s "(";
      let g = parse_or s in
      expect_punct s ")";
      Some g
    end
    else None
  in
  let body =
    if accept_punct s "{" then begin
      let b = parse_stmts s in
      expect_punct s "}";
      b
    end
    else []
  in
  let target = if accept_punct s "->" then expect_ident s else state_name in
  expect_punct s ";";
  { trigger; guard; body; target }

let parse_ty s =
  let t = peek s in
  match expect_ident s with
  | "int" -> Tint
  | "bool" -> Tbool
  | "float" -> Tfloat
  | "time" -> Ttime
  | other -> fail_at t "unknown type %S" other

let parse_var_decl s ~persistent =
  expect_keyword s "var";
  let var_name = expect_ident s in
  expect_punct s ":";
  let ty = parse_ty s in
  expect_punct s "=";
  let loc = peek s in
  let init =
    if accept_punct s "-" then
      match literal_of_token s with
      | Some v -> negate_value loc v
      | None -> fail_at loc "expected a literal initializer"
    else
      match literal_of_token s with
      | Some v -> v
      | None -> fail_at loc "expected a literal initializer"
  in
  expect_punct s ";";
  { var_name; ty; init; persistent }

let parse_state s ~initial =
  expect_keyword s "state";
  let state_name = expect_ident s in
  expect_punct s "{";
  let rec transitions acc =
    match (peek s).token with
    | Scanner.Punct "}" ->
        advance s;
        List.rev acc
    | _ -> transitions (parse_transition s ~state_name :: acc)
  in
  (initial, { state_name; transitions = transitions [] })

let parse_machine s =
  let start = peek s in
  expect_keyword s "machine";
  let machine_name = expect_ident s in
  expect_punct s "{";
  let vars = ref [] and states = ref [] and initial = ref None in
  let rec loop () =
    let t = peek s in
    match t.token with
    | Scanner.Punct "}" -> advance s
    | Scanner.Ident "persistent" ->
        advance s;
        vars := parse_var_decl s ~persistent:true :: !vars;
        loop ()
    | Scanner.Ident "var" ->
        vars := parse_var_decl s ~persistent:false :: !vars;
        loop ()
    | Scanner.Ident "initial" ->
        advance s;
        let _, st = parse_state s ~initial:true in
        (match !initial with
        | Some _ -> fail_at t "a machine may have only one initial state"
        | None -> initial := Some st.state_name);
        states := st :: !states;
        loop ()
    | Scanner.Ident "state" ->
        let _, st = parse_state s ~initial:false in
        states := st :: !states;
        loop ()
    | other ->
        fail_at t "expected a declaration or '}' but found %a" Scanner.pp_token
          other
  in
  loop ();
  let initial =
    match !initial with
    | Some i -> i
    | None -> fail_at start "machine %S has no initial state" machine_name
  in
  { machine_name; vars = List.rev !vars; initial; states = List.rev !states }

let puncts =
  [
    "{"; "}"; "("; ")"; ";"; ","; ":="; "->"; "=="; "!="; "<="; ">="; "<"; ">";
    "+"; "-"; "*"; "/"; "%"; "&&"; "||"; "!"; ":"; "=";
  ]

let wrap f =
  try f () with
  | Error (msg, line, col) ->
      failwith (Printf.sprintf "fsm parse error at %d:%d: %s" line col msg)
  | Scanner.Lex_error (msg, line, col) ->
      failwith (Printf.sprintf "fsm lex error at %d:%d: %s" line col msg)

let parse_exn src =
  wrap (fun () ->
      let s = { tokens = Scanner.tokenize ~puncts src } in
      let rec machines acc =
        match (peek s).token with
        | Scanner.Eof -> List.rev acc
        | _ -> machines (parse_machine s :: acc)
      in
      machines [])

let parse src =
  match parse_exn src with
  | machines -> Ok machines
  | exception Failure msg -> Result.Error msg

let parse_machine_exn src =
  match parse_exn src with
  | [ m ] -> m
  | ms -> failwith (Printf.sprintf "expected exactly one machine, got %d" (List.length ms))

let parse_expr_exn src =
  wrap (fun () ->
      let s = { tokens = Scanner.tokenize ~puncts src } in
      let e = parse_or s in
      match (peek s).token with
      | Scanner.Eof -> e
      | other ->
          let t = peek s in
          fail_at t "trailing input after expression: %a" Scanner.pp_token other)
