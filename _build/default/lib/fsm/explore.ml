open Artemis_util
open Ast

type snapshot = { state : string; vars : (string * value) list }

let initial (m : machine) =
  {
    state = m.initial;
    vars = List.map (fun v -> (v.var_name, v.init)) m.vars;
  }

let store_of_snapshot snapshot =
  let vars = Hashtbl.create 8 in
  List.iter (fun (name, v) -> Hashtbl.replace vars name v) snapshot.vars;
  let state = ref snapshot.state in
  let store =
    {
      Interp.get =
        (fun x ->
          match Hashtbl.find_opt vars x with
          | Some v -> v
          | None -> raise (Interp.Runtime_error (Printf.sprintf "unknown variable %S" x)));
      set = (fun x v -> Hashtbl.replace vars x v);
      get_state = (fun () -> !state);
      set_state = (fun s -> state := s);
    }
  in
  let freeze () =
    {
      state = !state;
      vars =
        List.filter_map
          (fun (name, _) -> Option.map (fun v -> (name, v)) (Hashtbl.find_opt vars name))
          snapshot.vars;
    }
  in
  (store, freeze)

let step_pure m snapshot event =
  let store, freeze = store_of_snapshot snapshot in
  match Interp.step m store event with
  | failures -> Ok (freeze (), failures)
  | exception Interp.Runtime_error msg -> Error msg

type violation = {
  trace : Interp.event list;
  message : string;
  at : snapshot;
}

(* --- alphabet derivation --- *)

let rec expr_times acc = function
  | Lit (Vtime t) -> t :: acc
  | Lit (Vint _ | Vbool _ | Vfloat _) | Var _ | Timestamp | Event_path
  | Dep_data _ | Energy_level ->
      acc
  | Unop (_, e) -> expr_times acc e
  | Binop (_, a, b) -> expr_times (expr_times acc a) b

let rec expr_paths acc = function
  | Binop (Eq, Event_path, Lit (Vint p)) | Binop (Eq, Lit (Vint p), Event_path) ->
      p :: acc
  | Binop (_, a, b) -> expr_paths (expr_paths acc a) b
  | Unop (_, e) -> expr_paths acc e
  | Lit _ | Var _ | Timestamp | Event_path | Dep_data _ | Energy_level -> acc

let rec expr_data acc = function
  | Dep_data x -> x :: acc
  | Unop (_, e) -> expr_data acc e
  | Binop (_, a, b) -> expr_data (expr_data acc a) b
  | Lit _ | Var _ | Timestamp | Event_path | Energy_level -> acc

let machine_exprs m =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun tr ->
          let rec stmt_exprs = function
            | Assign (_, e) -> [ e ]
            | If (c, t, e) ->
                (c :: List.concat_map stmt_exprs t) @ List.concat_map stmt_exprs e
            | Fail _ -> []
          in
          Option.to_list tr.guard @ List.concat_map stmt_exprs tr.body)
        s.transitions)
    m.states

let machine_tasks m =
  List.sort_uniq String.compare
    (List.concat_map
       (fun s ->
         List.filter_map
           (fun tr ->
             match tr.trigger with
             | On_start t | On_end t -> Some t
             | On_any -> None)
           s.transitions)
       m.states)

let default_alphabet ?(extra_timestamps = []) m =
  let exprs = machine_exprs m in
  let times =
    List.concat_map (expr_times []) exprs @ extra_timestamps
    |> List.concat_map (fun t -> [ t; Time.add t (Time.of_ms 1) ])
    |> List.cons Time.zero
    |> List.sort_uniq Time.compare
  in
  let paths =
    0 :: List.concat_map (expr_paths []) exprs |> List.sort_uniq compare
  in
  let data_names =
    List.concat_map (expr_data []) exprs |> List.sort_uniq String.compare
  in
  let dep_data = List.map (fun x -> (x, 1.0)) data_names in
  let tasks = machine_tasks m @ [ "other__" ] in
  List.concat_map
    (fun task ->
      List.concat_map
        (fun kind ->
          List.concat_map
            (fun timestamp ->
              List.map
                (fun path ->
                  { Interp.kind; task; timestamp; path; dep_data; energy_mj = 50. })
                paths)
            times)
        [ Interp.Start; Interp.End ])
    tasks

(* --- bounded DFS with non-decreasing timestamps --- *)

exception Found of violation

let check ?(depth = 4) ?(invariant = fun _ -> true) ?alphabet m =
  let alphabet = match alphabet with Some a -> a | None -> default_alphabet m in
  let steps = ref 0 in
  let rec dfs snapshot trace remaining last_ts =
    if remaining > 0 then
      List.iter
        (fun (event : Interp.event) ->
          if Time.(event.Interp.timestamp >= last_ts) then begin
            incr steps;
            let trace' = event :: trace in
            match step_pure m snapshot event with
            | Error message ->
                raise (Found { trace = List.rev trace'; message; at = snapshot })
            | Ok (snapshot', _) ->
                if not (invariant snapshot') then
                  raise
                    (Found
                       {
                         trace = List.rev trace';
                         message = "invariant violated";
                         at = snapshot';
                       });
                dfs snapshot' trace' (remaining - 1) event.Interp.timestamp
          end)
        alphabet
  in
  match dfs (initial m) [] depth Time.zero with
  | () -> Ok !steps
  | exception Found v -> Error v

let reachable_states ?depth ?alphabet m =
  let seen = Hashtbl.create 8 in
  Hashtbl.replace seen m.initial ();
  let invariant snapshot =
    Hashtbl.replace seen snapshot.state ();
    true
  in
  match check ?depth ~invariant ?alphabet m with
  | Ok _ -> List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
  | Error v -> failwith v.message
