lib/fsm/parser.ml: Artemis_util Ast Format List Printf Result Scanner String Time
