lib/fsm/ast.mli: Artemis_util Format Time
