lib/fsm/printer.ml: Artemis_util Ast Buffer Float List Printf String Time
