lib/fsm/printer.mli: Ast
