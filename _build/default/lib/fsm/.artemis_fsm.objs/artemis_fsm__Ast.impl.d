lib/fsm/ast.ml: Artemis_util Format List String Time
