lib/fsm/interp.ml: Artemis_util Ast Format Hashtbl List String Time
