lib/fsm/explore.mli: Artemis_util Ast Interp Time
