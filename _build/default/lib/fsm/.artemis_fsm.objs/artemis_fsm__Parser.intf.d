lib/fsm/parser.mli: Ast
