lib/fsm/interp.mli: Artemis_util Ast Time
