lib/fsm/explore.ml: Artemis_util Ast Hashtbl Interp List Option Printf String Time
