lib/fsm/typecheck.mli: Ast
