lib/fsm/typecheck.ml: Ast Format Hashtbl List Option Printf Result String
