(** Bounded exhaustive exploration of monitor state machines.

    The paper's future work (Section 7, "Property Consistency Checking")
    envisages translating constraints to time-aware models and model
    checking them.  This module is a small prototype of that idea at the
    intermediate-language level: it enumerates every event sequence up to
    a bounded depth over a finite event alphabet (with non-decreasing
    timestamps, as the runtime guarantees) and checks that

    - the interpreter never raises {!Interp.Runtime_error} (no missing
      [data(_)] payloads, no division by zero on any reachable path), and
    - a user-supplied invariant over the machine's state and variables
      holds after every step.

    The monitor generator's unit tests use it to prove, exhaustively up
    to the bound, invariants such as "the maxTries counter never exceeds
    n" and "a collect counter never goes negative". *)

open Artemis_util

type snapshot = { state : string; vars : (string * Ast.value) list }
(** A pure machine configuration (control state + variable values). *)

val initial : Ast.machine -> snapshot

val step_pure :
  Ast.machine -> snapshot -> Interp.event ->
  (snapshot * Interp.failure list, string) result
(** One interpreter step without shared mutable state; [Error] carries a
    {!Interp.Runtime_error} message. *)

type violation = {
  trace : Interp.event list;  (** the offending sequence, in order *)
  message : string;  (** runtime error text or "invariant violated" *)
  at : snapshot;  (** configuration after (or during) the last step *)
}

val default_alphabet : ?extra_timestamps:Time.t list -> Ast.machine -> Interp.event list
(** A finite alphabet derived from the machine: start/end events of every
    mentioned task (plus one foreign task for anyEvent coverage), at the
    timestamps 0, every time literal in the machine's guards, and each
    literal plus one millisecond; path 0 and every path literal; one
    generic [data] payload per referenced variable. *)

val check :
  ?depth:int ->
  ?invariant:(snapshot -> bool) ->
  ?alphabet:Interp.event list ->
  Ast.machine ->
  (int, violation) result
(** Explore all sequences of length <= [depth] (default 4) with
    non-decreasing timestamps.  [Ok n] reports the number of steps
    explored.  The first violation aborts the search. *)

val reachable_states : ?depth:int -> ?alphabet:Interp.event list -> Ast.machine -> string list
(** Control states reachable within the bound (sorted, unique).
    @raise Failure if exploration hits a runtime error. *)
