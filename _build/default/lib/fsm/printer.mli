(** Concrete-syntax printer for the intermediate language.

    [Parser.parse_machine_exn (to_string m)] equals [m] (round-trip law,
    property-tested).  The syntax is the one documented in {!Parser}. *)

val value_to_string : Ast.value -> string
val expr_to_string : Ast.expr -> string
val to_string : Ast.machine -> string
val machines_to_string : Ast.machine list -> string
