(** Static well-formedness and type checking of intermediate-language
    machines (what the Xtext editor validates in the paper's tooling).

    Rules:
    - state and variable names are unique, the initial state and every
      transition target exist;
    - variable initializers match their declared type;
    - guards have type [bool];
    - assignments are type-preserving, to declared variables only;
    - arithmetic is homogeneous ([int op int], [float op float]; [+]/[-]
      also on [time]); [%] is int-only; comparisons need equal operand
      types; [&&]/[||] need [bool];
    - [t] has type [time], [path] [int], [data(_)] and [energyLevel]
      [float];
    - explicit [fail ... Path n] targets must be positive. *)

val check : Ast.machine -> (unit, string list) result

val check_exn : Ast.machine -> unit
(** @raise Failure with all messages joined by newlines. *)

val expr_type :
  vars:(string -> Ast.ty option) -> Ast.expr -> (Ast.ty, string) result
(** Exposed for the parser's tests. *)
