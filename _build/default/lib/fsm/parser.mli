(** Parser for the intermediate language's concrete syntax.

    {v
    file       ::= machine*
    machine    ::= "machine" ident "{" var_decl* state* "}"
    var_decl   ::= ["persistent"] "var" ident ":" type "=" literal ";"
    type       ::= "int" | "bool" | "float" | "time"
    state      ::= ["initial"] "state" ident "{" transition* "}"
    transition ::= "on" trigger ["when" "(" expr ")"]
                   ["{" stmt* "}"] ["->" ident] ";"
    trigger    ::= "startTask" "(" ident ")" | "endTask" "(" ident ")"
                 | "anyEvent"
    stmt       ::= ident ":=" expr ";"
                 | "if" "(" expr ")" "{" stmt* "}" ["else" "{" stmt* "}"]
                 | "fail" action ["Path" int] ";"
    v}

    Expressions use C-like precedence: [||] < [&&] < comparisons <
    [+ -] < [* / %] < unary [- !].  Atoms: int/float/duration/bool
    literals, variables, [t] (event timestamp), [path] (current path),
    [data(x)] (monitored variable), [energyLevel].  A unary minus applied
    directly to a literal is folded into the literal.

    Omitting ["->" target] makes the transition a self-loop; exactly one
    state must be marked [initial]. *)

val parse : string -> (Ast.machine list, string) result
val parse_exn : string -> Ast.machine list
(** @raise Failure on parse errors. *)

val parse_machine_exn : string -> Ast.machine
(** Expects exactly one machine. @raise Failure otherwise. *)

val parse_expr_exn : string -> Ast.expr
(** Parse a standalone expression (tests). @raise Failure *)
