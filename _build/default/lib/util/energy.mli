(** Energy and power quantities for the simulated energy-harvesting device.

    Energy is measured in microjoules and power in microwatts, carried as
    floats so that fractional draw over short intervals accumulates
    correctly.  The invariant [consumed = power * seconds] links the two
    units: 1 uW over 1 s is 1 uJ. *)

type energy
(** Microjoules. *)

type power
(** Microwatts. *)

val zero : energy
val uj : float -> energy
val mj : float -> energy
val to_uj : energy -> float
val to_mj : energy -> float

val uw : float -> power
val mw : float -> power
val to_uw : power -> float
val to_mw : power -> float

val add : energy -> energy -> energy
val sub : energy -> energy -> energy
(** [sub a b] clamps at {!zero}: a capacitor cannot go negative. *)

val sub_exact : energy -> energy -> energy
(** Like {!sub} but without clamping (for accounting deltas). *)

val scale : energy -> float -> energy

val compare : energy -> energy -> int
val ( <= ) : energy -> energy -> bool
val ( < ) : energy -> energy -> bool
val ( >= ) : energy -> energy -> bool
val min : energy -> energy -> energy

val consumed : power -> Time.t -> energy
(** [consumed p dt] is the energy drawn by a constant load [p] over
    duration [dt]. *)

val time_to_consume : power -> energy -> Time.t
(** [time_to_consume p e] is how long the load [p] takes to draw [e].
    @raise Invalid_argument if [p] is not strictly positive. *)

val add_power : power -> power -> power

val pp_energy : Format.formatter -> energy -> unit
val pp_power : Format.formatter -> power -> unit
