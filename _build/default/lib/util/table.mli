(** Minimal ASCII table rendering, used by the benchmark harness to print
    paper-style rows (Figures 12, 14-16 and Tables 2-3). *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val render : t -> string
(** Render with column widths fitted to content, pipe separators and a
    header rule. *)

val pp : Format.formatter -> t -> unit
