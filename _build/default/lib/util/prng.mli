(** Small deterministic pseudo-random generator (splitmix64).

    Synthetic sensor waveforms and failure-injection tests need randomness
    that is reproducible across runs and independent of the global
    [Random] state, so each stream owns its own generator seeded
    explicitly. *)

type t

val create : seed:int -> t
val copy : t -> t

val next_int : t -> int
(** Next non-negative 62-bit integer. *)

val int_range : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. @raise Invalid_argument if [hi < lo]. *)

val float_range : t -> lo:float -> hi:float -> float
val bool : t -> bool
