type t = int

let zero = 0
let of_us us = us
let of_ms ms = ms * 1_000
let of_sec s = s * 1_000_000
let of_min m = m * 60_000_000
let of_sec_f s = int_of_float (Float.round (s *. 1e6))
let to_us t = t
let to_ms_f t = float_of_int t /. 1e3
let to_sec_f t = float_of_int t /. 1e6
let to_min_f t = float_of_int t /. 60e6
let add = ( + )
let sub = ( - )
let scale t k = t * k
let divide t k = t / k
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let min = Stdlib.min
let max = Stdlib.max
let is_negative t = Stdlib.( < ) t 0

let pp ppf t =
  let abs = Stdlib.abs t in
  if Stdlib.( < ) abs 1_000 then Format.fprintf ppf "%dus" t
  else if Stdlib.( < ) abs 1_000_000 then Format.fprintf ppf "%.2fms" (to_ms_f t)
  else if Stdlib.( < ) abs 60_000_000 then Format.fprintf ppf "%.2fs" (to_sec_f t)
  else Format.fprintf ppf "%.2fmin" (to_min_f t)

let to_string t = Format.asprintf "%a" pp t

let to_literal t =
  if t mod 60_000_000 = 0 && t <> 0 then
    Printf.sprintf "%dmin" (t / 60_000_000)
  else if t mod 1_000_000 = 0 && t <> 0 then Printf.sprintf "%ds" (t / 1_000_000)
  else if t mod 1_000 = 0 && t <> 0 then Printf.sprintf "%dms" (t / 1_000)
  else Printf.sprintf "%dus" t
