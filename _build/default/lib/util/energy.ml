type energy = float
type power = float

let zero = 0.
let uj e = e
let mj e = e *. 1e3
let to_uj e = e
let to_mj e = e /. 1e3
let uw p = p
let mw p = p *. 1e3
let to_uw p = p
let to_mw p = p /. 1e3
let add = ( +. )
let sub a b = Float.max 0. (a -. b)
let sub_exact a b = a -. b
let scale e k = e *. k
let compare = Float.compare
let ( <= ) (a : energy) b = Stdlib.( <= ) a b
let ( < ) (a : energy) b = Stdlib.( < ) a b
let ( >= ) (a : energy) b = Stdlib.( >= ) a b
let min = Float.min
let consumed p dt = p *. Time.to_sec_f dt

let time_to_consume p e =
  if Stdlib.( <= ) p 0. then invalid_arg "Energy.time_to_consume: non-positive power";
  Time.of_sec_f (e /. p)

let add_power = ( +. )

let pp_energy ppf e =
  if Stdlib.( < ) (Float.abs e) 1e3 then Format.fprintf ppf "%.2fuJ" e
  else if Stdlib.( < ) (Float.abs e) 1e6 then Format.fprintf ppf "%.3fmJ" (e /. 1e3)
  else Format.fprintf ppf "%.4fJ" (e /. 1e6)

let pp_power ppf p =
  if Stdlib.( < ) (Float.abs p) 1e3 then Format.fprintf ppf "%.2fuW" p
  else Format.fprintf ppf "%.3fmW" (p /. 1e3)
