type token =
  | Ident of string
  | Int of int
  | Float of float
  | Duration of Time.t
  | Energy of float
  | Punct of string
  | Eof

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Int n -> Format.fprintf ppf "integer %d" n
  | Float f -> Format.fprintf ppf "float %g" f
  | Duration d -> Format.fprintf ppf "duration %a" Time.pp d
  | Energy uj -> Format.fprintf ppf "energy %guJ" uj
  | Punct p -> Format.fprintf ppf "%S" p
  | Eof -> Format.fprintf ppf "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* A trailing identifier after a number selects the literal kind: time
   units produce [Duration], energy units [Energy]. *)
let unit_literal ~line ~col value unit_name =
  let duration us = Duration (Time.of_us (int_of_float (Float.round us))) in
  match unit_name with
  | "us" -> duration value
  | "ms" -> duration (value *. 1e3)
  | "s" | "sec" -> duration (value *. 1e6)
  | "min" -> duration (value *. 60e6)
  | "h" | "hour" -> duration (value *. 3600e6)
  | "uJ" -> Energy value
  | "mJ" -> Energy (value *. 1e3)
  | "J" -> Energy (value *. 1e6)
  | other ->
      raise (Lex_error (Printf.sprintf "unknown unit %S" other, line, col))

let tokenize ~puncts src =
  (* Longest punctuation first so "->" is not read as "-" then ">". *)
  let puncts =
    List.sort (fun a b -> compare (String.length b) (String.length a)) puncts
  in
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let out = ref [] in
  let emit token line col = out := { token; line; col } :: !out in
  let advance k =
    for i = !pos to Stdlib.min (n - 1) (!pos + k - 1) do
      if src.[i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    pos := !pos + k
  in
  let match_punct () =
    let rec try_list = function
      | [] -> None
      | p :: rest ->
          let len = String.length p in
          if !pos + len <= n && String.equal (String.sub src !pos len) p then
            Some p
          else try_list rest
    in
    try_list puncts
  in
  while !pos < n do
    let c = src.[!pos] in
    let tok_line = !line and tok_col = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        advance 1
      done
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance 1
      done;
      let is_float =
        !pos + 1 < n && src.[!pos] = '.' && is_digit src.[!pos + 1]
      in
      if is_float then begin
        advance 1;
        while !pos < n && is_digit src.[!pos] do
          advance 1
        done
      end;
      let num_text = String.sub src start (!pos - start) in
      (* A trailing identifier makes it a duration literal: 100ms, 5min. *)
      if !pos < n && is_ident_start src.[!pos] then begin
        let ustart = !pos in
        while !pos < n && is_ident_char src.[!pos] do
          advance 1
        done;
        let unit_name = String.sub src ustart (!pos - ustart) in
        let value = float_of_string num_text in
        emit (unit_literal ~line:tok_line ~col:tok_col value unit_name)
          tok_line tok_col
      end
      else if is_float then emit (Float (float_of_string num_text)) tok_line tok_col
      else emit (Int (int_of_string num_text)) tok_line tok_col
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance 1
      done;
      emit (Ident (String.sub src start (!pos - start))) tok_line tok_col
    end
    else
      match match_punct () with
      | Some p ->
          advance (String.length p);
          emit (Punct p) tok_line tok_col
      | None ->
          raise
            (Lex_error
               (Printf.sprintf "unexpected character %C" c, tok_line, tok_col))
  done;
  emit Eof !line !col;
  List.rev !out
