lib/util/scanner.mli: Format Time
