lib/util/prng.mli:
