lib/util/energy.ml: Float Format Stdlib Time
