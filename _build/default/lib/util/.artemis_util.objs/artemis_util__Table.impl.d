lib/util/table.ml: Format List Printf Stdlib String
