lib/util/time.ml: Float Format Int Printf Stdlib
