lib/util/energy.mli: Format Time
