lib/util/scanner.ml: Float Format List Printf Stdlib String Time
