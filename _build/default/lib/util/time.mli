(** Simulated time values.

    All simulated instants and durations in the ARTEMIS reproduction are
    expressed as a whole number of microseconds.  Using an integer
    representation keeps the discrete-event simulation fully deterministic
    (no floating-point drift between runs), which the reproduction tests
    rely on. *)

type t
(** An instant or a duration, in microseconds.  The type is used for both
    because the paper's monitors only ever subtract and compare
    timestamps. *)

val zero : t

val of_us : int -> t
val of_ms : int -> t
val of_sec : int -> t
val of_min : int -> t

val of_sec_f : float -> t
(** [of_sec_f s] rounds [s] seconds to the nearest microsecond. *)

val to_us : t -> int
val to_ms_f : t -> float
val to_sec_f : t -> float
val to_min_f : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b].  May be negative; see {!is_negative}. *)

val scale : t -> int -> t
val divide : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t
val is_negative : t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (us, ms, s or min). *)

val to_literal : t -> string
(** Exact concrete-syntax duration literal: the largest unit dividing the
    value evenly ("5min", "100ms", "1500us").  Scanning the result with
    {!Scanner} yields the value back. *)

val to_string : t -> string
