type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: row width differs from header";
  t.rows <- t.rows @ [ row ]

let widths t =
  let update acc row =
    List.map2 (fun w cell -> Stdlib.max w (String.length cell)) acc row
  in
  List.fold_left update (List.map String.length t.headers) t.rows

let render_row widths row =
  let cells = List.map2 (fun w c -> Printf.sprintf " %-*s " w c) widths row in
  "|" ^ String.concat "|" cells ^ "|"

let rule widths =
  let dashes = List.map (fun w -> String.make (w + 2) '-') widths in
  "+" ^ String.concat "+" dashes ^ "+"

let render t =
  let ws = widths t in
  let lines =
    [ rule ws; render_row ws t.headers; rule ws ]
    @ List.map (render_row ws) t.rows
    @ [ rule ws ]
  in
  String.concat "\n" lines

let pp ppf t = Format.pp_print_string ppf (render t)
