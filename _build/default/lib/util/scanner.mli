(** Generic lexical scanner shared by the two ARTEMIS language frontends
    (the property specification language and the intermediate state-machine
    language).

    It tokenizes identifiers, integer/float literals, duration literals
    ([100ms], [5min], [3s], [2sec], [10us]) and single/double-character
    punctuation, tracking line/column for error reporting.  Comments run
    from [//] to end of line. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Duration of Time.t
  | Energy of float
      (** microjoules; from [3.4mJ], [500uJ], [2J] literals (the
          Section 4.2.2 energy-awareness extension) *)
  | Punct of string  (** one of the punctuation strings given at creation *)
  | Eof

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int
(** message, line, column *)

val tokenize : puncts:string list -> string -> located list
(** [tokenize ~puncts src] scans the whole input.  [puncts] lists the
    punctuation/operator lexemes to recognize; longer lexemes take
    precedence (so ["->"] wins over ["-"]).
    @raise Lex_error on an unexpected character or malformed number. *)

val pp_token : Format.formatter -> token -> unit
