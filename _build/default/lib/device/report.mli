(** Build run statistics from the device's accounting and trace log
    (shared by the ARTEMIS runtime and the Mayfly baseline). *)

val stats : Device.t -> outcome:Artemis_trace.Stats.outcome -> Artemis_trace.Stats.t
