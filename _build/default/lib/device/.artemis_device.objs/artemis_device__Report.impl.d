lib/device/report.ml: Artemis_trace Device
