lib/device/device.ml: Artemis_clock Artemis_energy Artemis_nvm Artemis_trace Artemis_util Energy List Time
