lib/device/device.mli: Artemis_clock Artemis_energy Artemis_nvm Artemis_trace Artemis_util Energy Time
