lib/device/report.mli: Artemis_trace Device
