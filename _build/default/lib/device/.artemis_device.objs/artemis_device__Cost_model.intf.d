lib/device/cost_model.mli: Artemis_util Energy Time
