lib/device/cost_model.ml: Artemis_util Energy Time
