module Event = Artemis_trace.Event
module Log = Artemis_trace.Log
module Stats = Artemis_trace.Stats

let stats d ~outcome =
  let log = Device.log d in
  let count pred = Log.count log pred in
  {
    Stats.outcome;
    total_time = Device.sim_time d;
    off_time = Device.off_time d;
    app_time = Device.time_in d Device.App;
    runtime_overhead = Device.time_in d Device.Runtime_work;
    monitor_overhead = Device.time_in d Device.Monitor_work;
    energy_total = Device.total_energy d;
    energy_app = Device.energy_in d Device.App;
    energy_runtime = Device.energy_in d Device.Runtime_work;
    energy_monitor = Device.energy_in d Device.Monitor_work;
    power_failures = Device.power_failures d;
    reboots = Device.reboots d;
    task_executions = count (function Event.Task_started _ -> true | _ -> false);
    task_completions =
      count (function Event.Task_completed _ -> true | _ -> false);
    path_restarts = count (function Event.Path_restarted _ -> true | _ -> false);
    path_skips = count (function Event.Path_skipped _ -> true | _ -> false);
  }
