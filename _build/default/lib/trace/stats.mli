(** Aggregate statistics of one simulated run; the raw material of
    Figures 12 and 14-16. *)

open Artemis_util

type outcome =
  | Completed
  | Did_not_finish of string
      (** non-termination: the run hit the simulation horizon or the
          no-progress detector; the string says which *)

type t = {
  outcome : outcome;
  total_time : Time.t;  (** wall-clock span including charging delays *)
  off_time : Time.t;  (** time spent dark (charging) *)
  app_time : Time.t;  (** time executing application task bodies *)
  runtime_overhead : Time.t;  (** runtime bookkeeping (checkTask etc.) *)
  monitor_overhead : Time.t;  (** property checking *)
  energy_total : Energy.energy;
  energy_app : Energy.energy;
  energy_runtime : Energy.energy;
  energy_monitor : Energy.energy;
  power_failures : int;
  reboots : int;
  task_executions : int;  (** Task_started events *)
  task_completions : int;
  path_restarts : int;
  path_skips : int;
}

val completed : t -> bool
val active_time : t -> Time.t
(** [total_time - off_time]. *)

val overhead_time : t -> Time.t
(** [runtime_overhead + monitor_overhead]. *)

val pp : Format.formatter -> t -> unit
