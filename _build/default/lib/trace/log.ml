type t = { mutable rev_events : Event.timed list; mutable n : int }

let create () = { rev_events = []; n = 0 }

let record t ~at event =
  t.rev_events <- { Event.at; event } :: t.rev_events;
  t.n <- t.n + 1

let events t = List.rev t.rev_events
let length t = t.n

let count t pred =
  List.fold_left
    (fun acc (e : Event.timed) -> if pred e.event then acc + 1 else acc)
    0 t.rev_events

let find_all t pred =
  List.filter (fun (e : Event.timed) -> pred e.event) (events t)

let task_attempts t ~task =
  count t (function
    | Event.Task_started { task = tk; _ } -> String.equal tk task
    | _ -> false)

let render_timeline ?limit t =
  let all = events t in
  let shown, elided =
    match limit with
    | Some n when List.length all > n ->
        (List.filteri (fun i _ -> i < n) all, List.length all - n)
    | _ -> (all, 0)
  in
  let lines = List.map (Format.asprintf "%a" Event.pp_timed) shown in
  let lines =
    if elided > 0 then lines @ [ Printf.sprintf "... (%d more events)" elided ]
    else lines
  in
  String.concat "\n" lines
