(** Append-only execution trace. *)

open Artemis_util

type t

val create : unit -> t
val record : t -> at:Time.t -> Event.t -> unit
val events : t -> Event.timed list
(** In recording order. *)

val length : t -> int

val count : t -> (Event.t -> bool) -> int
val find_all : t -> (Event.t -> bool) -> Event.timed list

val task_attempts : t -> task:string -> int
(** Number of [Task_started] events for [task] over the whole trace. *)

val render_timeline : ?limit:int -> t -> string
(** Figure 13-style textual timeline, one event per line; [limit] keeps
    the first N lines and elides the rest. *)
