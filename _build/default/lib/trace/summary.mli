(** Aggregations over a trace log: which monitors fired, which actions the
    runtime took, which tasks needed how many attempts. *)

val verdicts_by_monitor : Log.t -> (string * int) list
(** Violations reported per monitor, descending count then name. *)

val actions_by_kind : Log.t -> (string * int) list
(** Arbitrated runtime actions per action kind, descending count. *)

val attempts_by_task : Log.t -> (string * int) list
(** Start events per task (re-executions included), descending count. *)

val render : Log.t -> string
(** The three aggregations as a compact report (empty sections elided). *)
