lib/trace/stats.ml: Artemis_util Energy Format Time
