lib/trace/log.ml: Event Format List Printf String
