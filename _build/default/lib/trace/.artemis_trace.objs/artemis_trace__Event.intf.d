lib/trace/event.mli: Artemis_util Format Time
