lib/trace/event.ml: Artemis_util Format Time
