lib/trace/summary.ml: Event Hashtbl List Log Option Printf String
