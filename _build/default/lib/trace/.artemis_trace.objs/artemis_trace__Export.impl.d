lib/trace/export.ml: Artemis_util Buffer Char Energy Event List Log Option Printf Stats String Time
