lib/trace/summary.mli: Log
