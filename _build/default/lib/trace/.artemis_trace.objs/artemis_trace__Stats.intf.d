lib/trace/stats.mli: Artemis_util Energy Format Time
