lib/trace/export.mli: Log Stats
