lib/trace/log.mli: Artemis_util Event Time
