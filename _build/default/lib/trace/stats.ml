open Artemis_util

type outcome = Completed | Did_not_finish of string

type t = {
  outcome : outcome;
  total_time : Time.t;
  off_time : Time.t;
  app_time : Time.t;
  runtime_overhead : Time.t;
  monitor_overhead : Time.t;
  energy_total : Energy.energy;
  energy_app : Energy.energy;
  energy_runtime : Energy.energy;
  energy_monitor : Energy.energy;
  power_failures : int;
  reboots : int;
  task_executions : int;
  task_completions : int;
  path_restarts : int;
  path_skips : int;
}

let completed t = t.outcome = Completed
let active_time t = Time.sub t.total_time t.off_time
let overhead_time t = Time.add t.runtime_overhead t.monitor_overhead

let pp ppf t =
  let outcome =
    match t.outcome with
    | Completed -> "completed"
    | Did_not_finish r -> "DNF (" ^ r ^ ")"
  in
  Format.fprintf ppf
    "@[<v>outcome: %s@ total: %a (off %a)@ app: %a, runtime: %a, monitor: %a@ \
     energy: %a (app %a, runtime %a, monitor %a)@ failures: %d, reboots: %d@ \
     tasks: %d started / %d completed@ paths: %d restarts, %d skips@]"
    outcome Time.pp t.total_time Time.pp t.off_time Time.pp t.app_time Time.pp
    t.runtime_overhead Time.pp t.monitor_overhead Energy.pp_energy
    t.energy_total Energy.pp_energy t.energy_app Energy.pp_energy
    t.energy_runtime Energy.pp_energy t.energy_monitor t.power_failures
    t.reboots t.task_executions t.task_completions t.path_restarts t.path_skips
