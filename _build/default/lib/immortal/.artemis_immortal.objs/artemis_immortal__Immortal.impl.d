lib/immortal/immortal.ml: Array Artemis_nvm Nvm
