lib/immortal/immortal.mli: Artemis_nvm Nvm
