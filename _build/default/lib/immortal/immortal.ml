open Artemis_nvm

type t = { pc_cell : int Nvm.cell; steps : (unit -> unit) array }

type progress = Ran of int | Done

let create nvm ~region ~name ~steps =
  if Array.length steps = 0 then invalid_arg "Immortal.create: no steps";
  let pc_cell = Nvm.cell nvm ~region ~name:("ic:" ^ name) ~bytes:2 0 in
  { pc_cell; steps }

let pc t = Nvm.read t.pc_cell
let length t = Array.length t.steps
let fresh t = pc t = 0
let completed t = pc t >= Array.length t.steps
let in_progress t = (not (fresh t)) && not (completed t)

let run_step t =
  let i = pc t in
  if i >= Array.length t.steps then Done
  else begin
    t.steps.(i) ();
    Nvm.write t.pc_cell (i + 1);
    Ran i
  end

let rec run_to_completion t =
  match run_step t with Done -> () | Ran _ -> run_to_completion t

let reset t = Nvm.write t.pc_cell 0
