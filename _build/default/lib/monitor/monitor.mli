(** A deployed monitor: an intermediate-language machine whose variables
    and control state live in simulated FRAM, so that - like the
    ImmortalThreads-generated C monitors of Section 4.2.3 - it survives
    power failures without losing track of the properties it checks. *)

open Artemis_nvm
open Artemis_fsm

type t

val create : Nvm.t -> Ast.machine -> t
(** Typechecks the machine and allocates one FRAM cell per variable plus
    a state cell, all in the [Monitor] region (their bytes are what
    Table 2 reports as monitor FRAM).
    @raise Failure if the machine is ill-typed. *)

val name : t -> string
val machine : t -> Ast.machine

val hard_reset : t -> unit
(** First-boot initialisation ([resetMonitor], Figure 8 line 14). *)

val reinitialize : t -> unit
(** Path-restart re-initialisation: control state and ordinary variables
    reset, [persistent] variables retained (Section 3.3 and DESIGN.md
    decision 2). *)

val step : t -> Interp.event -> Interp.failure list
(** Feed one runtime event through the machine. *)

val current_state : t -> string
val read_var : t -> string -> Ast.value
(** @raise Not_found for an unknown variable. *)

val watches_task : t -> string -> bool
(** Whether any trigger of the machine names the task (used to select the
    monitors a path restart must re-initialize). *)

val fram_bytes : t -> int
