(** The set of application-specific monitors deployed with one
    application, and the arbitration rule the runtime applies when
    several of them fail on the same event. *)

open Artemis_nvm
open Artemis_fsm

type t

val create : Nvm.t -> Ast.machine list -> t
val monitors : t -> Monitor.t list

val property_count : t -> int
(** Number of deployed monitors = number of properties (the monitor
    overhead cost model scales with this). *)

val hard_reset : t -> unit

val step_all : t -> Interp.event -> Interp.failure list
(** Deliver the event to every monitor (each machine decides relevance),
    concatenating the reported failures in deployment order. *)

val reinit_for_tasks : t -> tasks:string list -> unit
(** Path restart: re-initialize every monitor watching one of the given
    tasks (Section 3.3). *)

val fram_bytes : t -> int

(** {2 Arbitration} *)

val severity : Ast.action -> int
(** Deterministic action-severity order (DESIGN.md decision 3):
    skipPath (4) > restartPath (3) > completePath (2) > skipTask (1) >
    restartTask (0). *)

val arbitrate : Interp.failure list -> Interp.failure option
(** The failure whose action the runtime executes: highest severity,
    first-reported among equals; [None] when the list is empty. *)
