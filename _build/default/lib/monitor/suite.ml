open Artemis_fsm

type t = { monitors : Monitor.t list }

let create nvm machines = { monitors = List.map (Monitor.create nvm) machines }
let monitors t = t.monitors
let property_count t = List.length t.monitors
let hard_reset t = List.iter Monitor.hard_reset t.monitors

let step_all t event =
  List.concat_map (fun m -> Monitor.step m event) t.monitors

let reinit_for_tasks t ~tasks =
  List.iter
    (fun m ->
      if List.exists (fun task -> Monitor.watches_task m task) tasks then
        Monitor.reinitialize m)
    t.monitors

let fram_bytes t =
  List.fold_left (fun acc m -> acc + Monitor.fram_bytes m) 0 t.monitors

let severity = function
  | Ast.Skip_path -> 4
  | Ast.Restart_path -> 3
  | Ast.Complete_path -> 2
  | Ast.Skip_task -> 1
  | Ast.Restart_task -> 0

let arbitrate failures =
  List.fold_left
    (fun best (f : Interp.failure) ->
      match best with
      | None -> Some f
      | Some b -> if severity f.action > severity b.action then Some f else Some b)
    None failures
