open Artemis_nvm
open Artemis_fsm

let ty_bytes = function
  | Ast.Tint -> 4
  | Ast.Tbool -> 1
  | Ast.Tfloat -> 4
  | Ast.Ttime -> 8

type t = {
  machine : Ast.machine;
  state_cell : string Nvm.cell;
  var_cells : (string * Ast.value Nvm.cell) list;
  store : Interp.store;
  bytes : int;
}

let create nvm (machine : Ast.machine) =
  Typecheck.check_exn machine;
  let prefix = machine.Ast.machine_name in
  let state_cell =
    Nvm.cell nvm ~region:Monitor ~name:(prefix ^ ".state") ~bytes:2
      machine.Ast.initial
  in
  let var_cells =
    List.map
      (fun v ->
        ( v.Ast.var_name,
          Nvm.cell nvm ~region:Monitor
            ~name:(prefix ^ "." ^ v.Ast.var_name)
            ~bytes:(ty_bytes v.Ast.ty) v.Ast.init ))
      machine.Ast.vars
  in
  let store =
    {
      Interp.get =
        (fun x ->
          match List.assoc_opt x var_cells with
          | Some c -> Nvm.read c
          | None ->
              raise (Interp.Runtime_error (Printf.sprintf "unknown variable %S" x)));
      set =
        (fun x v ->
          match List.assoc_opt x var_cells with
          | Some c -> Nvm.write c v
          | None ->
              raise (Interp.Runtime_error (Printf.sprintf "unknown variable %S" x)));
      get_state = (fun () -> Nvm.read state_cell);
      set_state = (fun s -> Nvm.write state_cell s);
    }
  in
  (* The generated C keeps each property's parameters (limits, dependent
     task pointer, action fields) in an FRAM-resident property_t struct
     (Figure 10); the interpreter holds them in the machine AST instead,
     so the deployed footprint is accounted for explicitly. *)
  let property_table_bytes = 24 in
  ignore
    (Nvm.cell nvm ~region:Monitor ~name:(prefix ^ ".property_t")
       ~bytes:property_table_bytes ());
  let bytes =
    2 + property_table_bytes
    + List.fold_left (fun acc v -> acc + ty_bytes v.Ast.ty) 0 machine.Ast.vars
  in
  { machine; state_cell; var_cells; store; bytes }

let name t = t.machine.Ast.machine_name
let machine t = t.machine

let hard_reset t =
  Nvm.write t.state_cell t.machine.Ast.initial;
  List.iter
    (fun v -> Nvm.write (List.assoc v.Ast.var_name t.var_cells) v.Ast.init)
    t.machine.Ast.vars

let reinitialize t =
  Nvm.write t.state_cell t.machine.Ast.initial;
  List.iter
    (fun v ->
      if not v.Ast.persistent then
        Nvm.write (List.assoc v.Ast.var_name t.var_cells) v.Ast.init)
    t.machine.Ast.vars

let step t event = Interp.step t.machine t.store event
let current_state t = Nvm.read t.state_cell

let read_var t x =
  match List.assoc_opt x t.var_cells with
  | Some c -> Nvm.read c
  | None -> raise Not_found

let watches_task t task = Interp.mentions_task t.machine task
let fram_bytes t = t.bytes
