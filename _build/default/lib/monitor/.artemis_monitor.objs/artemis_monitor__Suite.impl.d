lib/monitor/suite.ml: Artemis_fsm Ast Interp List Monitor
