lib/monitor/suite.mli: Artemis_fsm Artemis_nvm Ast Interp Monitor Nvm
