lib/monitor/monitor.ml: Artemis_fsm Artemis_nvm Ast Interp List Nvm Printf Typecheck
