lib/monitor/monitor.mli: Artemis_fsm Artemis_nvm Ast Interp Nvm
