bin/artemis_sim.ml: Arg Artemis Artemis_experiments Cmd Cmdliner Config Format Out_channel Printf Term
