bin/artemis_sim.mli:
