bin/artemisc.ml: Arg Artemis Cmd Cmdliner Fun Hashtbl In_channel List Out_channel Printf String Term
