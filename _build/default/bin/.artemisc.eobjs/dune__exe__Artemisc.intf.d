bin/artemisc.mli:
