(* artemis_sim: run the health-monitoring benchmark on the simulated
   intermittent device under either runtime, printing statistics and
   (optionally) the execution trace. *)

open Cmdliner
open Artemis_experiments

let run system_name delay_min continuous temp_base show_trace trace_limit show_summary csv_path =
  let system =
    match system_name with
    | "artemis" -> Ok Config.Artemis_runtime
    | "mayfly" -> Ok Config.Mayfly_runtime
    | other -> Error (Printf.sprintf "unknown system %S (artemis|mayfly)" other)
  in
  match system with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok system ->
      let supply =
        if continuous then Config.Continuous
        else Config.Intermittent (Artemis.Time.of_min delay_min)
      in
      let { Config.stats; device; handles } =
        Config.run_health ?temp_base system supply
      in
      Format.printf "%a@." Artemis.Stats.pp stats;
      Format.printf "messages sent: %d, avgTemp: %.2f C@."
        (handles.Artemis.Health_app.sent_messages ())
        (handles.Artemis.Health_app.read_avg_temp ());
      if show_summary then begin
        print_endline "--- summary ---";
        print_endline (Artemis.Summary.render (Artemis.Device.log device))
      end;
      if show_trace then begin
        print_endline "--- trace ---";
        print_endline
          (Artemis.Log.render_timeline ~limit:trace_limit
             (Artemis.Device.log device))
      end;
      (match csv_path with
      | None -> ()
      | Some path ->
          Out_channel.with_open_bin path (fun oc ->
              output_string oc (Artemis.Export.log_to_csv (Artemis.Device.log device)));
          Printf.printf "trace CSV written to %s\n" path);
      0

let system_arg =
  Arg.(
    value & opt string "artemis"
    & info [ "s"; "system" ] ~docv:"SYSTEM"
        ~doc:"Runtime to use: $(b,artemis) (default) or $(b,mayfly).")

let delay_arg =
  Arg.(
    value & opt int 1
    & info [ "d"; "delay" ] ~docv:"MIN"
        ~doc:"Charging delay in minutes after each power failure (default 1).")

let continuous_arg =
  Arg.(
    value & flag
    & info [ "continuous" ] ~doc:"Continuous power (no power failures).")

let temp_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "temp-base" ] ~docv:"CELSIUS"
        ~doc:"Synthetic body-temperature baseline; 39.2 triggers the \
              dpData emergency property.")

let trace_arg =
  Arg.(value & flag & info [ "t"; "trace" ] ~doc:"Print the execution trace.")

let trace_limit_arg =
  Arg.(
    value & opt int 200
    & info [ "trace-limit" ] ~docv:"N" ~doc:"Trace lines to print (default 200).")

let summary_arg =
  Arg.(
    value & flag
    & info [ "summary" ]
        ~doc:"Print per-monitor violation and per-action counts.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Write the trace as CSV to $(docv).")

let cmd =
  let doc = "simulate the health-monitoring benchmark on intermittent power" in
  Cmd.v
    (Cmd.info "artemis_sim" ~doc)
    Term.(
      const run $ system_arg $ delay_arg $ continuous_arg $ temp_arg $ trace_arg
      $ trace_limit_arg $ summary_arg $ csv_arg)

let () = exit (Cmd.eval' cmd)
