(* artemisc: the ARTEMIS monitor compiler CLI.

   Reads a property specification and emits, per the chosen stage of the
   Figure 3 pipeline: the re-printed specification ("spec"), the
   intermediate-language state machines ("fsm", the model-to-model
   transformation), or the generated C monitors ("c", the model-to-text
   transformation). *)

open Cmdliner

type emit = Spec | Fsm | C | Lint | Project

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run emit reset_on_fail input output =
  let text = if input = "-" then In_channel.input_all stdin else read_file input in
  let options = { Artemis.To_fsm.collect_reset_on_fail = reset_on_fail } in
  let result =
    match Artemis.Spec.Parser.parse text with
    | Error msg -> Error msg
    | Ok spec -> (
        match emit with
        | Spec -> Ok (Artemis.Spec.Printer.to_string spec)
        | Fsm ->
            Ok
              (Artemis.Fsm.Printer.machines_to_string
                 (Artemis.To_fsm.spec ~options spec))
        | C -> Ok (Artemis.To_c.suite (Artemis.To_fsm.spec ~options spec))
        | Lint ->
            let findings = Artemis.Spec.Consistency.check_spec spec in
            if findings = [] then Ok "no consistency findings\n"
            else Ok (Artemis.Spec.Consistency.to_string findings ^ "\n")
        | Project ->
            (* a skeleton application derived from the specification: every
               mentioned task on one path, placeholder calibration *)
            let mentioned =
              List.concat_map
                (fun { Artemis.Spec.Ast.task; properties } ->
                  task
                  :: List.filter_map
                       (function
                         | Artemis.Spec.Ast.Mitd { dp_task; _ }
                         | Artemis.Spec.Ast.Collect { dp_task; _ } ->
                             Some dp_task
                         | _ -> None)
                       properties)
                spec
            in
            let seen = Hashtbl.create 8 in
            let tasks =
              List.filter_map
                (fun name ->
                  if Hashtbl.mem seen name then None
                  else begin
                    Hashtbl.add seen name ();
                    Some
                      (Artemis.Task.make ~name
                         ~duration:(Artemis.Time.of_ms 100)
                         ~power:(Artemis.Energy.mw 1.2) ())
                  end)
                mentioned
            in
            let app =
              Artemis.Task.app ~name:"generated"
                [ { Artemis.Task.index = 1; tasks } ]
            in
            let machines = Artemis.To_fsm.spec ~options spec in
            let files = Artemis.To_c_project.project ~app ~machines in
            Ok
              (String.concat ""
                 (List.map
                    (fun f ->
                      Printf.sprintf "/* ===== %s ===== */\n%s\n"
                        f.Artemis.To_c_project.path f.Artemis.To_c_project.contents)
                    files)))
  in
  match result with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok out -> (
      match output with
      | None ->
          print_string out;
          0
      | Some path ->
          Out_channel.with_open_bin path (fun oc -> output_string oc out);
          0)

let emit_arg =
  let stage_conv =
    Arg.enum
      [ ("spec", Spec); ("fsm", Fsm); ("c", C); ("lint", Lint); ("project", Project) ]
  in
  Arg.(
    value
    & opt stage_conv C
    & info [ "e"; "emit" ] ~docv:"STAGE"
        ~doc:"Output stage: $(b,spec) (re-printed specification), $(b,fsm) \
              (intermediate-language machines), $(b,c) (generated C \
              monitors, default), $(b,lint) (consistency findings) or \
              $(b,project) (a complete C project tree, concatenated).")

let reset_arg =
  Arg.(
    value & flag
    & info [ "collect-reset-on-fail" ]
        ~doc:"Compile $(b,collect) with the literal Figure 7 semantics \
              (counter zeroed on failure) instead of the accumulate \
              default.")

let input_arg =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"SPEC" ~doc:"Property specification file ('-' = stdin).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output to $(docv).")

let cmd =
  let doc = "compile ARTEMIS property specifications into runtime monitors" in
  Cmd.v
    (Cmd.info "artemisc" ~doc)
    Term.(const run $ emit_arg $ reset_arg $ input_arg $ output_arg)

let () = exit (Cmd.eval' cmd)
