open Artemis

let test_annotations_of_spec () =
  let spec = Spec.Parser.parse_exn Health_app.spec_text in
  let annotations = Mayfly.annotations_of_spec spec in
  (* maxTries/maxDuration/dpData are dropped: only send and calcAvg keep
     annotations (Section 5.1.1) *)
  Alcotest.(check (list string)) "annotated tasks" [ "send"; "calcAvg" ]
    (List.map fst annotations);
  let send = List.assoc "send" annotations in
  Alcotest.(check int) "send keeps MITD + 2 collects" 3 (List.length send);
  (* no maxAttempt survives anywhere: the type has no place for it *)
  match List.assoc "calcAvg" annotations with
  | [ Mayfly.Requires { producer = "bodyTemp"; count = 10; path = None } ] -> ()
  | _ -> Alcotest.fail "calcAvg annotation wrong"

let producer_consumer nvm =
  let ch = Channel.create nvm ~name:"items" ~bytes_per_item:4 ~capacity:16 in
  let produce =
    Helpers.simple_task ~name:"produce" ~ms:100 ~body:(fun _ -> Channel.push ch 1) ()
  in
  let consume = Helpers.simple_task ~name:"consume" ~ms:50 () in
  (Helpers.one_path_app [ produce; consume ], ch)

let test_requires_restarts_until_enough () =
  let device = Helpers.powered_device () in
  let app, _ = producer_consumer (Device.nvm device) in
  let annotations =
    [ ("consume", [ Mayfly.Requires { producer = "produce"; count = 3; path = None } ]) ]
  in
  let stats = Mayfly.run device app annotations in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "restarted twice" 2 stats.Stats.path_restarts

let test_expires_fresh_data_passes () =
  let device = Helpers.powered_device () in
  let app, _ = producer_consumer (Device.nvm device) in
  let annotations =
    [ ("consume", [ Mayfly.Expires { producer = "produce"; within = Time.of_sec 5; path = None } ]) ]
  in
  let stats = Mayfly.run device app annotations in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "no restarts" 0 stats.Stats.path_restarts

let test_expires_non_termination () =
  (* the charging delay always exceeds the expiration window and consume
     browns out every time: Mayfly loops forever (Figure 12) *)
  let device =
    Helpers.tiny_device ~usable_mj:0.25 ~delay:(Time.of_sec 30)
      ~horizon:(Time.of_min 30) ()
  in
  let nvm = Device.nvm device in
  let produce = Helpers.simple_task ~name:"produce" ~ms:100 ~mw:2. () in
  (* 0.3 mJ: never completes on the 0.05 mJ left after produce *)
  let consume = Helpers.simple_task ~name:"consume" ~ms:100 ~mw:3. () in
  ignore nvm;
  let app = Helpers.one_path_app [ produce; consume ] in
  let annotations =
    [ ("consume", [ Mayfly.Expires { producer = "produce"; within = Time.of_sec 10; path = None } ]) ]
  in
  let stats = Mayfly.run device app annotations in
  (match stats.Stats.outcome with
  | Stats.Did_not_finish _ -> ()
  | Stats.Completed -> Alcotest.fail "expected non-termination");
  Alcotest.(check bool) "kept restarting" true (stats.Stats.path_restarts > 3)

let test_path_filtered_annotations () =
  let device = Helpers.powered_device () in
  let shared = Helpers.simple_task ~name:"shared" ()
  and a = Helpers.simple_task ~name:"a" ()
  and b = Helpers.simple_task ~name:"b" () in
  let app =
    Task.app ~name:"two-paths"
      [
        { Task.index = 1; tasks = [ a; shared ] };
        { Task.index = 2; tasks = [ b; shared ] };
      ]
  in
  (* shared requires data from b, but only on path 2; path 1 must pass *)
  let annotations =
    [ ("shared", [ Mayfly.Requires { producer = "b"; count = 1; path = Some 2 } ]) ]
  in
  let stats = Mayfly.run device app annotations in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "no restarts" 0 stats.Stats.path_restarts

let test_task_atomicity () =
  let device = Helpers.powered_device () in
  let app, ch = producer_consumer (Device.nvm device) in
  Device.schedule_failure device ~at:(Time.of_ms 50);
  let stats = Mayfly.run device app [] in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check (list int)) "one committed item" [ 1 ] (Channel.items ch)

let test_no_monitor_overhead () =
  let device = Helpers.powered_device () in
  let app, _ = producer_consumer (Device.nvm device) in
  let stats = Mayfly.run device app [] in
  Alcotest.check Helpers.time "mayfly has no monitor component" Time.zero
    stats.Stats.monitor_overhead

let suite =
  [
    Alcotest.test_case "annotations_of_spec keeps the Mayfly subset" `Quick
      test_annotations_of_spec;
    Alcotest.test_case "requires restarts until enough" `Quick
      test_requires_restarts_until_enough;
    Alcotest.test_case "fresh data passes expiration" `Quick
      test_expires_fresh_data_passes;
    Alcotest.test_case "expiration + brown-outs = non-termination" `Quick
      test_expires_non_termination;
    Alcotest.test_case "path-filtered annotations" `Quick
      test_path_filtered_annotations;
    Alcotest.test_case "task atomicity" `Quick test_task_atomicity;
    Alcotest.test_case "no monitor overhead" `Quick test_no_monitor_overhead;
  ]
