open Artemis

let test_make_validation () =
  Alcotest.check_raises "empty name" (Invalid_argument "Task.make: empty name")
    (fun () -> ignore (Task.make ~name:"" ~duration:Time.zero ~power:(Energy.mw 1.) ()));
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Task.make: negative duration") (fun () ->
      ignore
        (Task.make ~name:"t" ~duration:(Time.of_us (-1)) ~power:(Energy.mw 1.) ()))

let t name = Helpers.simple_task ~name ()

let test_app_validation () =
  let ok =
    Task.app ~name:"ok"
      [
        { Task.index = 1; tasks = [ t "a"; t "b" ] };
        { Task.index = 2; tasks = [ t "c" ] };
      ]
  in
  Alcotest.(check bool) "valid app" true (Task.validate ok = Ok ());
  let empty = Task.app ~name:"empty" [] in
  Alcotest.(check bool) "no paths" true (Result.is_error (Task.validate empty));
  let bad_index =
    Task.app ~name:"bad" [ { Task.index = 2; tasks = [ t "a" ] } ]
  in
  Alcotest.(check bool) "bad indices" true (Result.is_error (Task.validate bad_index));
  let empty_path =
    Task.app ~name:"bad"
      [ { Task.index = 1; tasks = [ t "a" ] }; { Task.index = 2; tasks = [] } ]
  in
  Alcotest.(check bool) "empty path" true (Result.is_error (Task.validate empty_path))

let test_shared_tasks () =
  (* the same physical task on two paths is fine (send in the benchmark);
     two different tasks with the same name are not *)
  let send = t "send" in
  let shared =
    Task.app ~name:"shared"
      [
        { Task.index = 1; tasks = [ t "a"; send ] };
        { Task.index = 2; tasks = [ t "b"; send ] };
      ]
  in
  Alcotest.(check bool) "sharing ok" true (Task.validate shared = Ok ());
  let clashing =
    Task.app ~name:"clash"
      [
        { Task.index = 1; tasks = [ t "send" ] };
        { Task.index = 2; tasks = [ t "send" ] };
      ]
  in
  Alcotest.(check bool) "clash rejected" true (Result.is_error (Task.validate clashing))

let test_lookups () =
  let send = t "send" in
  let app =
    Task.app ~name:"app"
      [
        { Task.index = 1; tasks = [ t "a"; send ] };
        { Task.index = 2; tasks = [ t "b"; send ] };
      ]
  in
  Alcotest.(check bool) "find existing" true (Task.find_task app "b" <> None);
  Alcotest.(check bool) "find missing" true (Task.find_task app "zz" = None);
  Alcotest.(check (list string)) "unique names in order" [ "a"; "send"; "b" ]
    (Task.task_names app);
  Alcotest.(check int) "path count" 2 (Task.path_count app);
  Alcotest.(check bool) "find path" true (Task.find_path app 2 <> None);
  Alcotest.(check bool) "missing path" true (Task.find_path app 3 = None)

let test_channel_tx_semantics () =
  let nvm = Nvm.create () in
  let ch = Channel.create nvm ~name:"c" ~bytes_per_item:4 ~capacity:3 in
  Nvm.begin_tx nvm;
  Channel.push ch 1;
  Channel.push ch 2;
  Alcotest.(check (list int)) "read own writes" [ 1; 2 ] (Channel.items ch);
  Nvm.commit_tx nvm;
  Nvm.begin_tx nvm;
  Channel.push ch 3;
  Nvm.power_failure nvm;
  Alcotest.(check (list int)) "failure drops uncommitted push" [ 1; 2 ]
    (Channel.items ch);
  Nvm.begin_tx nvm;
  Channel.push ch 3;
  Channel.push ch 4;
  Nvm.commit_tx nvm;
  Alcotest.(check (list int)) "ring drops oldest beyond capacity" [ 2; 3; 4 ]
    (Channel.items ch);
  Nvm.begin_tx nvm;
  let taken = Channel.take_all ch in
  Nvm.commit_tx nvm;
  Alcotest.(check (list int)) "take_all returns all" [ 2; 3; 4 ] taken;
  Alcotest.(check int) "emptied" 0 (Channel.length ch)

let test_health_app_shape () =
  let nvm = Nvm.create () in
  let app, _ = Health_app.make nvm in
  Alcotest.(check bool) "valid" true (Task.validate app = Ok ());
  Alcotest.(check int) "three paths" 3 (Task.path_count app);
  Alcotest.(check (list string)) "tasks"
    [ "bodyTemp"; "calcAvg"; "heartRate"; "send"; "accel"; "classify"; "micSense"; "filter" ]
    (Task.task_names app);
  (* the Figure 5 spec parses and validates against the app *)
  let spec = Spec.Parser.parse_exn Health_app.spec_text in
  (match Spec.Validate.check app spec with
  | Ok () -> ()
  | Error issues -> Alcotest.fail (Spec.Validate.issues_to_string issues));
  let mayfly_spec = Spec.Parser.parse_exn Health_app.mayfly_spec_text in
  match Spec.Validate.check app mayfly_spec with
  | Ok () -> ()
  | Error issues -> Alcotest.fail (Spec.Validate.issues_to_string issues)

let suite =
  [
    Alcotest.test_case "task construction validation" `Quick test_make_validation;
    Alcotest.test_case "app validation" `Quick test_app_validation;
    Alcotest.test_case "shared tasks across paths" `Quick test_shared_tasks;
    Alcotest.test_case "lookups" `Quick test_lookups;
    Alcotest.test_case "channel transactional semantics" `Quick
      test_channel_tx_semantics;
    Alcotest.test_case "health app shape and specs" `Quick test_health_app_shape;
  ]
