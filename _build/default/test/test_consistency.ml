open Artemis
module C = Spec.Consistency

let parse = Spec.Parser.parse_exn

let app () =
  let b = Helpers.simple_task ~name:"b" ~ms:100 ~mw:2. () in
  let mid = Helpers.simple_task ~name:"mid" ~ms:400 ~mw:2. () in
  let t = Helpers.simple_task ~name:"t" ~ms:200 ~mw:10. () in
  Helpers.one_path_app [ b; mid; t ]

let has severity fragment findings =
  List.exists
    (fun (f : C.finding) ->
      f.C.severity = severity
      &&
      let s = f.C.message in
      let n = String.length fragment in
      let rec go i =
        i + n <= String.length s && (String.equal (String.sub s i n) fragment || go (i + 1))
      in
      go 0)
    findings

let check_none findings =
  if findings <> [] then Alcotest.fail (C.to_string findings)

let test_clean_spec () =
  check_none (C.check (app ()) (parse "t: { maxTries: 3 onFail: skipPath; }"));
  check_none
    (C.check (app ())
       (parse "t: { MITD: 1min dpTask: b onFail: restartPath; maxDuration: 300ms onFail: skipTask; }"))

let test_livelock_error () =
  let findings =
    C.check_spec (parse "t: { collect: 2 dpTask: b onFail: restartTask; }")
  in
  Alcotest.(check bool) "livelock flagged" true (has C.Error "livelock" findings)

let test_restart_task_on_time_window_warns () =
  let findings = C.check_spec (parse "t: { period: 1min onFail: restartTask; }") in
  Alcotest.(check bool) "warned" true (has C.Warning "escalate" findings)

let test_single_try_warns () =
  let findings = C.check_spec (parse "t: { maxTries: 1 onFail: skipPath; }") in
  Alcotest.(check bool) "warned" true (has C.Warning "single power failure" findings)

let test_period_shorter_than_duration_limit () =
  let findings =
    C.check_spec
      (parse
         "t: { period: 10ms onFail: restartPath; maxDuration: 50ms onFail: skipTask; }")
  in
  Alcotest.(check bool) "warned" true (has C.Warning "breaks the periodicity" findings)

let test_duplicate_properties_warn () =
  let findings =
    C.check_spec
      (parse
         "t: { collect: 1 dpTask: b onFail: restartPath; collect: 2 dpTask: b onFail: restartPath; }")
  in
  Alcotest.(check bool) "warned" true (has C.Warning "duplicate property" findings);
  (* different dependency: not a duplicate *)
  check_none
    (C.check_spec
       (parse
          "t: { collect: 1 dpTask: b onFail: restartPath; collect: 1 dpTask: c onFail: restartPath; }"))

let test_max_duration_below_task_duration () =
  (* t runs 200 ms; a 50 ms limit is unsatisfiable *)
  let findings =
    C.check (app ()) (parse "t: { maxDuration: 50ms onFail: skipTask; }")
  in
  Alcotest.(check bool) "error" true (has C.Error "can never be met" findings)

let test_period_below_task_duration () =
  let findings =
    C.check (app ()) (parse "t: { period: 100ms onFail: restartPath; }")
  in
  Alcotest.(check bool) "error" true (has C.Error "longer than its" findings)

let test_mitd_statically_unsatisfiable () =
  (* 400 ms of [mid] necessarily separates b from t; a 300 ms window is
     dead on arrival *)
  let findings =
    C.check (app ()) (parse "t: { MITD: 300ms dpTask: b onFail: restartPath; }")
  in
  Alcotest.(check bool) "error" true (has C.Error "statically unsatisfiable" findings);
  (* a 500 ms window is fine *)
  check_none
    (C.check (app ()) (parse "t: { MITD: 500ms dpTask: b onFail: restartPath; }"))

let test_mitd_producer_not_preceding () =
  let findings =
    C.check (app ()) (parse "b: { MITD: 1min dpTask: t onFail: restartPath; }")
  in
  Alcotest.(check bool) "warned" true (has C.Warning "never precedes" findings)

let test_min_energy_rules () =
  (* t demands 10mW x 200ms = 2000 uJ *)
  let findings =
    C.check (app ()) (parse "t: { minEnergy: 500uJ onFail: skipTask; }")
  in
  Alcotest.(check bool) "below-demand warning" true
    (has C.Warning "below the task's own demand" findings);
  let findings =
    C.check ~usable_budget:(Energy.mj 3.) (app ())
      (parse "t: { minEnergy: 5mJ onFail: skipTask; }")
  in
  Alcotest.(check bool) "budget error" true (has C.Error "can never start" findings)

let test_benchmark_spec_is_consistent () =
  let nvm = Nvm.create () in
  let app, _ = Health_app.make nvm in
  let findings =
    C.check app (parse Health_app.spec_text) |> C.errors
  in
  if findings <> [] then Alcotest.fail (C.to_string findings)

let suite =
  [
    Alcotest.test_case "clean specs pass" `Quick test_clean_spec;
    Alcotest.test_case "collect + restartTask livelock" `Quick test_livelock_error;
    Alcotest.test_case "restartTask on time windows warns" `Quick
      test_restart_task_on_time_window_warns;
    Alcotest.test_case "maxTries 1 warns" `Quick test_single_try_warns;
    Alcotest.test_case "period < maxDuration warns" `Quick
      test_period_shorter_than_duration_limit;
    Alcotest.test_case "duplicates warn" `Quick test_duplicate_properties_warn;
    Alcotest.test_case "maxDuration < task duration" `Quick
      test_max_duration_below_task_duration;
    Alcotest.test_case "period < task duration" `Quick
      test_period_below_task_duration;
    Alcotest.test_case "MITD statically unsatisfiable" `Quick
      test_mitd_statically_unsatisfiable;
    Alcotest.test_case "MITD producer ordering" `Quick
      test_mitd_producer_not_preceding;
    Alcotest.test_case "minEnergy rules" `Quick test_min_energy_rules;
    Alcotest.test_case "benchmark spec has no errors" `Quick
      test_benchmark_spec_is_consistent;
  ]
