open Artemis

let checkf = Alcotest.(check (float 1e-6))
let uj e = Energy.to_uj e

let test_constant () =
  let h = Harvester.Constant (Energy.mw 2.) in
  checkf "integrates" 2_000.
    (uj (Harvester.harvested h ~from_:Time.zero ~until:(Time.of_sec 1)));
  match Harvester.time_to_harvest h ~now:Time.zero (Energy.mj 1.) with
  | Some t -> Alcotest.check Helpers.time "500ms" (Time.of_ms 500) t
  | None -> Alcotest.fail "expected a duration"

let test_constant_zero_starves () =
  let h = Harvester.Constant (Energy.uw 0.) in
  Alcotest.(check bool)
    "never harvests" true
    (Harvester.time_to_harvest h ~now:Time.zero (Energy.uj 1.) = None)

let duty =
  (* 1 s period, 2 mW during the first 25% -> 0.5 mJ per period *)
  Harvester.Duty_cycle
    { period = Time.of_sec 1; on_fraction = 0.25; rate = Energy.mw 2. }

let test_duty_rate_at () =
  checkf "on phase" 2_000. (Energy.to_uw (Harvester.rate_at duty (Time.of_ms 100)));
  checkf "off phase" 0. (Energy.to_uw (Harvester.rate_at duty (Time.of_ms 600)));
  checkf "next period on" 2_000.
    (Energy.to_uw (Harvester.rate_at duty (Time.of_ms 1_100)))

let test_duty_integral () =
  checkf "two full periods" 1_000.
    (uj (Harvester.harvested duty ~from_:Time.zero ~until:(Time.of_sec 2)));
  (* 125 ms into the on-phase at 2 mW *)
  checkf "half an on-phase" 250.
    (uj (Harvester.harvested duty ~from_:Time.zero ~until:(Time.of_ms 125)))

let test_duty_time_to_harvest () =
  (* 1.25 mJ = 2 periods (1.0 mJ) + half an on-phase (125 ms) *)
  match Harvester.time_to_harvest duty ~now:Time.zero (Energy.uj 1_250.) with
  | Some t -> Alcotest.check Helpers.time "2.125s" (Time.of_us 2_125_000) t
  | None -> Alcotest.fail "expected a duration"

let trace =
  Harvester.Trace
    [|
      (Time.zero, Energy.mw 1.);
      (Time.of_sec 1, Energy.uw 0.);
      (Time.of_sec 2, Energy.mw 4.);
    |]

let test_trace_integral () =
  checkf "first segment only" 1_000.
    (uj (Harvester.harvested trace ~from_:Time.zero ~until:(Time.of_sec 2)));
  checkf "with last segment" 5_000.
    (uj (Harvester.harvested trace ~from_:Time.zero ~until:(Time.of_sec 3)))

let test_trace_time_to_harvest () =
  (* starting inside the dead segment, 2 mJ needs 0.5 s of the 4 mW tail
     reached after 0.5 s of waiting *)
  match
    Harvester.time_to_harvest trace ~now:(Time.of_us 1_500_000) (Energy.mj 2.)
  with
  | Some t -> Alcotest.check Helpers.time "1s" (Time.of_sec 1) t
  | None -> Alcotest.fail "expected a duration"

let test_trace_starvation () =
  let dead =
    Harvester.Trace [| (Time.zero, Energy.mw 1.); (Time.of_sec 1, Energy.uw 0.) |]
  in
  Alcotest.(check bool)
    "dead tail starves" true
    (Harvester.time_to_harvest dead ~now:(Time.of_sec 5) (Energy.uj 1.) = None)

let test_validate () =
  let ok h = Alcotest.(check bool) "valid" true (Harvester.validate h = Ok ()) in
  ok duty;
  ok trace;
  let bad h = Alcotest.(check bool) "invalid" true (Result.is_error (Harvester.validate h)) in
  bad (Harvester.Duty_cycle { period = Time.zero; on_fraction = 0.5; rate = Energy.mw 1. });
  bad (Harvester.Duty_cycle { period = Time.of_sec 1; on_fraction = 1.5; rate = Energy.mw 1. });
  bad (Harvester.Trace [||]);
  bad (Harvester.Trace [| (Time.of_sec 1, Energy.mw 1.) |]);
  bad (Harvester.Trace [| (Time.zero, Energy.mw 1.); (Time.zero, Energy.mw 2.) |])

(* time_to_harvest is consistent with harvested: collecting for the
   returned duration yields at least the requested energy. *)
let consistency =
  QCheck.Test.make ~name:"time_to_harvest consistent with harvested" ~count:200
    QCheck.(pair (float_range 1. 5_000.) (int_range 0 3_000_000))
    (fun (need_uj, now_us) ->
      let now = Time.of_us now_us in
      let need = Energy.uj need_uj in
      match Harvester.time_to_harvest duty ~now need with
      | None -> false
      | Some dt ->
          let got = Harvester.harvested duty ~from_:now ~until:(Time.add now dt) in
          Energy.to_uj got +. 1e-3 >= need_uj)

let suite =
  [
    Alcotest.test_case "constant rate" `Quick test_constant;
    Alcotest.test_case "zero rate starves" `Quick test_constant_zero_starves;
    Alcotest.test_case "duty cycle rate_at" `Quick test_duty_rate_at;
    Alcotest.test_case "duty cycle integral" `Quick test_duty_integral;
    Alcotest.test_case "duty cycle time_to_harvest" `Quick
      test_duty_time_to_harvest;
    Alcotest.test_case "trace integral" `Quick test_trace_integral;
    Alcotest.test_case "trace time_to_harvest" `Quick test_trace_time_to_harvest;
    Alcotest.test_case "trace starvation" `Quick test_trace_starvation;
    Alcotest.test_case "validation" `Quick test_validate;
    QCheck_alcotest.to_alcotest consistency;
  ]
