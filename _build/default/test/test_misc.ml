(* Table rendering, PRNG determinism, charging policies. *)

open Artemis

let test_table_render () =
  let t = Table.create ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "xxx"; "y" ];
  Table.add_row t [ "z"; "wwww" ];
  let expected =
    "+-----+------+\n\
     | a   | bb   |\n\
     +-----+------+\n\
     | xxx | y    |\n\
     | z   | wwww |\n\
     +-----+------+"
  in
  Alcotest.(check string) "layout" expected (Table.render t)

let test_table_width_mismatch () =
  let t = Table.create ~headers:[ "a" ] in
  Alcotest.check_raises "width"
    (Invalid_argument "Table.add_row: row width differs from header") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_prng_bool_and_time_strings () =
  let g = Prng.create ~seed:11 in
  let flips = List.init 64 (fun _ -> Prng.bool g) in
  Alcotest.(check bool) "both outcomes occur" true
    (List.mem true flips && List.mem false flips);
  Alcotest.(check string) "time to_string" "2.50s" (Time.to_string (Time.of_ms 2500))

let test_prng_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  let xs = List.init 20 (fun _ -> Prng.next_int a) in
  let ys = List.init 20 (fun _ -> Prng.next_int b) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Prng.create ~seed:8 in
  let zs = List.init 20 (fun _ -> Prng.next_int c) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs);
  let d = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.next_int a) (Prng.next_int d)

let prng_ranges =
  QCheck.Test.make ~name:"int_range and float_range stay in bounds" ~count:300
    QCheck.(pair small_int (pair (int_range 0 100) (int_range 0 100)))
    (fun (seed, (a, b)) ->
      let lo = min a b and hi = max a b in
      let g = Prng.create ~seed in
      let n = Prng.int_range g ~lo ~hi in
      let f = Prng.float_range g ~lo:(float_of_int lo) ~hi:(float_of_int hi) in
      n >= lo && n <= hi && f >= float_of_int lo && f <= float_of_int hi)

let test_fixed_delay_policy () =
  let c =
    Capacitor.create ~capacity:(Energy.mj 10.) ~on_threshold:(Energy.mj 9.)
      ~off_threshold:(Energy.mj 1.) ~initial:(Energy.mj 1.) ()
  in
  match
    Charging_policy.recharge (Charging_policy.Fixed_delay (Time.of_min 2))
      ~now:Time.zero ~capacitor:c
  with
  | Some d ->
      Alcotest.check Helpers.time "fixed delay" (Time.of_min 2) d;
      Alcotest.(check (float 1e-6)) "recharged full" 10. (Energy.to_mj (Capacitor.level c))
  | None -> Alcotest.fail "fixed delay never starves"

let test_harvester_policy () =
  let c =
    Capacitor.create ~capacity:(Energy.mj 10.) ~on_threshold:(Energy.mj 9.)
      ~off_threshold:(Energy.mj 1.) ~initial:(Energy.mj 1.) ()
  in
  match
    Charging_policy.recharge
      (Charging_policy.From_harvester (Harvester.Constant (Energy.mw 2.)))
      ~now:Time.zero ~capacitor:c
  with
  | Some d ->
      (* 8 mJ deficit at 2 mW = 4 s *)
      Alcotest.check Helpers.time "harvest time" (Time.of_sec 4) d;
      Alcotest.(check bool) "can turn on" true (Capacitor.can_turn_on c)
  | None -> Alcotest.fail "should recharge"

let suite =
  [
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table width mismatch" `Quick test_table_width_mismatch;
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bool / time strings" `Quick
      test_prng_bool_and_time_strings;
    QCheck_alcotest.to_alcotest prng_ranges;
    Alcotest.test_case "fixed-delay charging policy" `Quick test_fixed_delay_policy;
    Alcotest.test_case "harvester charging policy" `Quick test_harvester_policy;
  ]
