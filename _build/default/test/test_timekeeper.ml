open Artemis
module Rt = Remanence_timekeeper
module Clock = Persistent_clock

let test_bounded_error () =
  let tk = Rt.create ~seed:3 ~relative_error:0.05 ~max_measurable:(Time.of_min 30) () in
  for _ = 1 to 200 do
    let actual = Time.of_sec 120 in
    let est = Time.to_sec_f (Rt.estimate tk ~actual) in
    if est < 114. || est > 126. then
      Alcotest.failf "estimate %.1fs outside the 5%% band" est
  done

let test_saturation () =
  let tk = Rt.create ~relative_error:0. ~max_measurable:(Time.of_min 2) () in
  Alcotest.check Helpers.time "short interval exact" (Time.of_sec 30)
    (Rt.estimate tk ~actual:(Time.of_sec 30));
  Alcotest.check Helpers.time "long outage reads as the ceiling" (Time.of_min 2)
    (Rt.estimate tk ~actual:(Time.of_min 20))

let test_zero_and_validation () =
  let tk = Rt.create () in
  Alcotest.check Helpers.time "zero maps to zero" Time.zero
    (Rt.estimate tk ~actual:Time.zero);
  Alcotest.check_raises "bad error bound"
    (Invalid_argument "Remanence_timekeeper.create: relative_error out of [0, 1)")
    (fun () -> ignore (Rt.create ~relative_error:1.5 ()))

let test_clock_off_estimator () =
  (* visible time follows the estimator across off periods, ground truth
     does not *)
  let clock =
    Clock.create ~granularity:(Time.of_us 1)
      ~off_estimator:(fun dt -> Time.divide dt 2)
      ()
  in
  Clock.advance clock (Time.of_sec 1);
  Clock.advance_off clock (Time.of_sec 10);
  Alcotest.check Helpers.time "visible undercounts" (Time.of_sec 6) (Clock.now clock);
  Alcotest.check Helpers.time "ground truth exact" (Time.of_sec 11)
    (Clock.elapsed_ground_truth clock)

(* The semantic consequence: a timekeeper that saturates below the MITD
   window lets stale data through. *)
let mitd_app nvm =
  ignore nvm;
  let producer = Helpers.simple_task ~name:"producer" ~ms:100 () in
  let consumer = Helpers.simple_task ~name:"consumer" ~ms:50 () in
  Helpers.one_path_app [ producer; consumer ]

let run_with_timekeeper ~off_estimator =
  let clock = Clock.create ~off_estimator () in
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 1000.) ~on_threshold:(Energy.mj 999.)
      ~off_threshold:(Energy.mj 1.) ()
  in
  let device =
    Device.create ~capacitor ~clock
      ~policy:(Charging_policy.Fixed_delay (Time.of_min 6))
      ()
  in
  let app = mitd_app (Device.nvm device) in
  (* a failure in the gap between the producer's completion (at ~100.7 ms)
     and the consumer's first start check forces a 6 min outage that the
     MITD window sees; a failure later, during the consumer, would be
     absorbed as a same-instance re-start (Section 4.1.3) *)
  Device.schedule_failure device ~at:(Time.of_us 100_900);
  let stats =
    Helpers.run_app device app
      "consumer: { MITD: 5min dpTask: producer onFail: skipTask; }"
  in
  let consumer_skipped =
    Helpers.count_events device (function
      | Event.Runtime_action { action = "skipTask"; task = "consumer" } -> true
      | _ -> false)
    > 0
  in
  (stats, consumer_skipped)

let test_ideal_timekeeper_catches_staleness () =
  let stats, skipped = run_with_timekeeper ~off_estimator:Rt.ideal in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check bool) "stale consumer vetoed" true skipped

let test_saturating_timekeeper_misses_staleness () =
  (* the timekeeper tops out at 2 min: the 6 min outage reads as 2 min,
     inside the 5 min window - the stale data is consumed *)
  let tk = Rt.create ~relative_error:0. ~max_measurable:(Time.of_min 2) () in
  let stats, skipped = run_with_timekeeper ~off_estimator:(Rt.as_off_estimator tk) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check bool) "staleness missed (saturation)" false skipped

let suite =
  [
    Alcotest.test_case "bounded relative error" `Quick test_bounded_error;
    Alcotest.test_case "saturation" `Quick test_saturation;
    Alcotest.test_case "zero and validation" `Quick test_zero_and_validation;
    Alcotest.test_case "clock separates visible from ground truth" `Quick
      test_clock_off_estimator;
    Alcotest.test_case "ideal timekeeper catches staleness" `Quick
      test_ideal_timekeeper_catches_staleness;
    Alcotest.test_case "saturating timekeeper misses staleness" `Quick
      test_saturating_timekeeper_misses_staleness;
  ]
