test/test_export.ml: Alcotest Artemis Event Export Helpers List Log Printf Runtime String Time
