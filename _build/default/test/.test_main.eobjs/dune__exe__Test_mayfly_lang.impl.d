test/test_mayfly_lang.ml: Alcotest Artemis Fsm Helpers List Mayfly Mayfly_lang QCheck QCheck_alcotest Spec Time
