test/test_misc.ml: Alcotest Artemis Capacitor Charging_policy Energy Harvester Helpers List Prng QCheck QCheck_alcotest Table Time
