test/test_energy.ml: Alcotest Artemis Energy Helpers QCheck QCheck_alcotest Time
