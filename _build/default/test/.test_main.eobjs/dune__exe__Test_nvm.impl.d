test/test_nvm.ml: Alcotest Artemis Gen List Nvm QCheck QCheck_alcotest Test
