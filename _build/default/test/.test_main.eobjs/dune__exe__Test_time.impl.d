test/test_time.ml: Alcotest Artemis Artemis_util Format Helpers QCheck QCheck_alcotest Time
