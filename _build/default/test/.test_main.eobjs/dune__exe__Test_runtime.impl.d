test/test_runtime.ml: Alcotest Artemis Capacitor Channel Charging_policy Device Energy Event Fsm Harvester Helpers List Log Monitor Nvm QCheck QCheck_alcotest Runtime Stats Suite Task Time
