test/test_timekeeper.ml: Alcotest Artemis Capacitor Charging_policy Device Energy Event Helpers Persistent_clock Remanence_timekeeper Time
