test/test_scanner.ml: Alcotest Artemis Artemis_util List Time
