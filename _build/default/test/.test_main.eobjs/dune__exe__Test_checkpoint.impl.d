test/test_checkpoint.ml: Alcotest Artemis Channel Checkpoint Device Energy Event Helpers List QCheck QCheck_alcotest Result Stats Time
