test/test_to_c.ml: Alcotest Artemis Fsm Health_app List Spec String Time To_c To_fsm
