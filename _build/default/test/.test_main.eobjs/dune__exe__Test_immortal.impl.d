test/test_immortal.ml: Alcotest Array Artemis Immortal Nvm QCheck QCheck_alcotest
