test/test_soil_app.ml: Alcotest Artemis Channel Device Event Helpers Runtime Soil_app Spec Task Time
