test/test_monitor.ml: Alcotest Artemis Fsm Helpers List Monitor Nvm Printf Suite
