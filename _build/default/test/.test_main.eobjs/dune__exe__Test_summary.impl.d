test/test_summary.ml: Alcotest Artemis Artemis_experiments Device List Log Summary Time
