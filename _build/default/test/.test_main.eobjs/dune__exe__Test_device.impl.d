test/test_device.ml: Alcotest Artemis Capacitor Charging_policy Device Energy Event Float Harvester Helpers List Log Nvm QCheck QCheck_alcotest Time
