test/test_consistency.ml: Alcotest Artemis Energy Health_app Helpers List Nvm Spec String
