test/helpers.ml: Alcotest Artemis Capacitor Charging_policy Device Energy Fsm Log Runtime Stats Task Time
