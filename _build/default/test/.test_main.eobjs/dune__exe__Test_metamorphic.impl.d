test/test_metamorphic.ml: Alcotest Artemis Artemis_experiments Config Device Energy Event Helpers List Log Mayfly Printf QCheck QCheck_alcotest Runtime Stats Task Time
