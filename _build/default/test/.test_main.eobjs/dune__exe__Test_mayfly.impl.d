test/test_mayfly.ml: Alcotest Artemis Channel Device Health_app Helpers List Mayfly Spec Stats Task Time
