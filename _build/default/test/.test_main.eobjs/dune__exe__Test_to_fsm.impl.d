test/test_to_fsm.ml: Alcotest Artemis Fsm Health_app Helpers List QCheck QCheck_alcotest Spec String Test_spec Time To_fsm
