test/test_fsm.ml: Alcotest Artemis Fsm Helpers List Option QCheck QCheck_alcotest String Time
