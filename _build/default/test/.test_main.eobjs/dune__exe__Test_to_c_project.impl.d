test/test_to_c_project.ml: Alcotest Artemis Filename Health_app List Nvm Spec String Sys Task To_c_project To_fsm
