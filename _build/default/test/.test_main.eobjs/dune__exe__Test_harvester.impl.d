test/test_harvester.ml: Alcotest Artemis Energy Harvester Helpers QCheck QCheck_alcotest Result Time
