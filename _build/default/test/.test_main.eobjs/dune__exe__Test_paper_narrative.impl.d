test/test_paper_narrative.ml: Alcotest Artemis Artemis_experiments Config Device Event Health_app List Log Nvm Spec Stats String Task Time
