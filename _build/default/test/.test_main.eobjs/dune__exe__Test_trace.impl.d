test/test_trace.ml: Alcotest Artemis Energy Event Helpers List Log Stats String Time
