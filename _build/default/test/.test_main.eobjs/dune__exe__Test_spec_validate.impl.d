test/test_spec_validate.ml: Alcotest Artemis Helpers Spec String Task
