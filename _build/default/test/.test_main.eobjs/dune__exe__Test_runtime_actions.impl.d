test/test_runtime_actions.ml: Alcotest Artemis Device Event Fsm Helpers List Runtime Stats String Summary Task
