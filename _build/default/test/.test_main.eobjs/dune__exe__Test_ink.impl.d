test/test_ink.ml: Alcotest Artemis Channel Device Helpers Ink Result Stats Time
