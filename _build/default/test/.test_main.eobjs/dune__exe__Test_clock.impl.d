test/test_clock.ml: Alcotest Artemis Helpers QCheck QCheck_alcotest Time
