test/test_explore.ml: Alcotest Artemis Fsm Health_app List Spec Time To_fsm
