test/test_capacitor.ml: Alcotest Artemis Capacitor Energy List QCheck QCheck_alcotest
