test/test_spec.ml: Alcotest Artemis Health_app Helpers List QCheck QCheck_alcotest Spec String Time
