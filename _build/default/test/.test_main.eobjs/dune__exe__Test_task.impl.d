test/test_task.ml: Alcotest Artemis Channel Energy Health_app Helpers Nvm Result Spec Task Time
