test/test_fuzz.ml: Artemis Fsm Mayfly_lang QCheck QCheck_alcotest Spec String
