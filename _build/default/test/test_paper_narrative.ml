(* Line-by-line assertions of the Section 5.1 benchmark narrative: what
   each path's properties are supposed to do, checked on traces of the
   actual runs. *)

open Artemis
open Artemis_experiments

let run_at delay_min =
  let r =
    Config.run_health Config.Artemis_runtime
      (Config.Intermittent (Time.of_min delay_min))
  in
  (r.Config.stats, Device.log r.Config.device, r.Config.handles)

let count log pred = Log.count log pred

let test_path1_collects_ten () =
  (* "Path #1 collects ten body temperature readings and transmits the
     average. ... ARTEMIS restarts the first path until enough samples
     are collected." *)
  let stats, log, handles = run_at 1 in
  Alcotest.(check bool) "completed" true (Stats.completed stats);
  Alcotest.(check int) "ten bodyTemp completions" 10
    (count log (function
      | Event.Task_completed { task = "bodyTemp" } -> true
      | _ -> false));
  Alcotest.(check int) "nine collect-driven restarts of path 1" 9
    (count log (function
      | Event.Path_restarted { path = 1; reason = "collect_calcAvg_bodyTemp" } ->
          true
      | _ -> false));
  (* the average is of exactly those ten samples, in the healthy band *)
  let avg = handles.Health_app.read_avg_temp () in
  Alcotest.(check bool) "healthy average" true (avg > 36. && avg < 38.)

let test_path2_mitd_story_at_6min () =
  (* "the acceleration data must have been collected within the last five
     minutes when the send task starts" + "the path is skipped ... after
     three attempts" *)
  let stats, log, _ = run_at 6 in
  Alcotest.(check bool) "completed" true (Stats.completed stats);
  Alcotest.(check int) "three MITD verdicts" 3
    (count log (function
      | Event.Monitor_verdict { monitor = "MITD_send_accel"; _ } -> true
      | _ -> false));
  Alcotest.(check int) "two path-2 restarts" 2
    (count log (function
      | Event.Path_restarted { path = 2; _ } -> true
      | _ -> false));
  Alcotest.(check int) "then path 2 skipped" 1
    (count log (function
      | Event.Path_skipped { path = 2; _ } -> true
      | _ -> false));
  (* "ARTEMIS allows the application to complete and transmit the
     remaining data, even if some data is missing": path 3's send ran *)
  Alcotest.(check int) "path 3 completed" 1
    (count log (function
      | Event.Path_completed { path = 3 } -> true
      | _ -> false))

let test_path2_send_ok_at_short_delay () =
  (* below the window the same failures are harmless: send delivers *)
  let stats, log, handles = run_at 1 in
  Alcotest.(check bool) "completed" true (Stats.completed stats);
  Alcotest.(check int) "no MITD verdicts" 0
    (count log (function
      | Event.Monitor_verdict { monitor = "MITD_send_accel"; _ } -> true
      | _ -> false));
  Alcotest.(check int) "all three transmissions" 3
    (handles.Health_app.sent_messages ())

let test_path3_collect_guarantee () =
  (* "The collect property is also defined between micSense and send to
     guarantee the transmission of at least one sample." *)
  let stats, log, _ = run_at 6 in
  Alcotest.(check bool) "completed" true (Stats.completed stats);
  let mic_done_before_send =
    (* micSense completed at least once before path 3's send completed *)
    count log (function
      | Event.Task_completed { task = "micSense" } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "at least one micSense sample" true
    (mic_done_before_send >= 1)

let test_figure2_contrast () =
  (* the P1/P2 problems in one assertion: the same spec change (adding
     maxTries/maxAttempt) required zero edits to the application - both
     versions run the byte-identical Task.app *)
  let nvm1 = Nvm.create () and nvm2 = Nvm.create () in
  let app_full, _ = Health_app.make nvm1 in
  let app_mayfly, _ = Health_app.make nvm2 in
  Alcotest.(check (list string)) "identical task structure"
    (Task.task_names app_full) (Task.task_names app_mayfly);
  (* and the two specs genuinely differ only in the bounded-attempt and
     duration/range properties *)
  let kinds text =
    Spec.Parser.parse_exn text
    |> List.concat_map (fun b -> List.map Spec.Ast.property_kind b.Spec.Ast.properties)
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "full property mix"
    [ "MITD"; "collect"; "dpData"; "maxDuration"; "maxTries" ]
    (kinds Health_app.spec_text);
  Alcotest.(check (list string)) "Mayfly subset" [ "MITD"; "collect" ]
    (kinds Health_app.mayfly_spec_text)

let suite =
  [
    Alcotest.test_case "path 1: collect ten samples" `Slow test_path1_collects_ten;
    Alcotest.test_case "path 2: MITD + maxAttempt at 6 min" `Slow
      test_path2_mitd_story_at_6min;
    Alcotest.test_case "path 2: clean at short delays" `Slow
      test_path2_send_ok_at_short_delay;
    Alcotest.test_case "path 3: collect guarantee" `Slow test_path3_collect_guarantee;
    Alcotest.test_case "separation of concerns (P1/P2)" `Quick test_figure2_contrast;
  ]
