open Artemis
module S = Spec.Ast
module F = Fsm.Ast
module Interp = Fsm.Interp

let compile ?options property ~task =
  let m = To_fsm.property ?options ~task ~name:"m" property in
  Fsm.Typecheck.check_exn m;
  m

let start ?(path = 1) task ts = Helpers.event ~task ~ts ~path ()
let end_ ?(path = 1) ?(dep_data = []) task ts =
  Helpers.event ~kind:Fsm.Interp.End ~task ~ts ~path ~dep_data ()

let actions m store events =
  List.concat_map
    (fun ev -> List.map (fun (f : Interp.failure) -> f.Interp.action) (Interp.step m store ev))
    events

let test_max_tries_fires_after_n () =
  let m = compile (S.Max_tries { n = 3; on_fail = S.Skip_path; path = None }) ~task:"a" in
  let store = Interp.memory_store m in
  (* n attempts are allowed; the (n+1)-th start event trips the action *)
  let ok = actions m store [ start "a" 1; start "a" 2; start "a" 3 ] in
  Alcotest.(check int) "three attempts fine" 0 (List.length ok);
  (match actions m store [ start "a" 4 ] with
  | [ F.Skip_path ] -> ()
  | _ -> Alcotest.fail "expected skipPath on 4th start");
  (* completion resets the counter *)
  let ok2 = actions m store [ start "a" 5; end_ "a" 6; start "a" 7; start "a" 8; start "a" 9 ] in
  Alcotest.(check int) "reset after completion" 0 (List.length ok2)

let test_max_duration_within_limit () =
  let m =
    compile (S.Max_duration { limit = Time.of_ms 100; on_fail = S.Skip_task; path = None })
      ~task:"a"
  in
  let store = Interp.memory_store m in
  Alcotest.(check int) "fast task ok" 0
    (List.length (actions m store [ start "a" 0; end_ "a" 80 ]))

let test_max_duration_keeps_first_start_timestamp () =
  (* Section 4.1.3: re-delivered start events (power-failure restarts) must
     not refresh the anchor *)
  let m =
    compile (S.Max_duration { limit = Time.of_ms 100; on_fail = S.Skip_task; path = None })
      ~task:"a"
  in
  let store = Interp.memory_store m in
  ignore (Interp.step m store (start "a" 0));
  (* re-start within the window: absorbed, anchor unchanged *)
  Alcotest.(check int) "restart absorbed" 0 (List.length (actions m store [ start "a" 50 ]));
  (* the end comes 120 ms after the FIRST start: violation *)
  match actions m store [ end_ "a" 120 ] with
  | [ F.Skip_task ] -> ()
  | _ -> Alcotest.fail "expected skipTask measured from the first start"

let test_max_duration_any_event_detects_timeout () =
  let m =
    compile (S.Max_duration { limit = Time.of_ms 100; on_fail = S.Skip_task; path = None })
      ~task:"a"
  in
  let store = Interp.memory_store m in
  ignore (Interp.step m store (start "a" 0));
  (* any event beyond the window reveals the violation (anyEvent trigger) *)
  match actions m store [ start "b" 500 ] with
  | [ F.Skip_task ] -> ()
  | _ -> Alcotest.fail "expected skipTask via anyEvent"

let collect_prop ?(n = 3) () =
  S.Collect { n; dp_task = "b"; on_fail = S.Restart_path; path = None }

let test_collect_blocks_until_n () =
  let m = compile (collect_prop ()) ~task:"a" in
  let store = Interp.memory_store m in
  (match actions m store [ end_ "b" 1; start "a" 2 ] with
  | [ F.Restart_path ] -> ()
  | _ -> Alcotest.fail "1 < 3 should restart the path");
  (* accumulate across restarts (DESIGN.md decision 1): the counter kept
     its value, two more completions suffice *)
  (match actions m store [ end_ "b" 3; end_ "b" 4; start "a" 5 ] with
  | [] -> ()
  | _ -> Alcotest.fail "3 items collected: start must pass");
  Alcotest.check Helpers.value "consumed on success" (F.Vint 0) (store.Interp.get "i")

let test_collect_no_double_consume_on_restart_events () =
  let m = compile (collect_prop ~n:1 ()) ~task:"a" in
  let store = Interp.memory_store m in
  ignore (actions m store [ end_ "b" 1 ]);
  Alcotest.(check int) "first start passes" 0
    (List.length (actions m store [ start "a" 2 ]));
  (* power-failure re-delivery of the start while the task re-executes:
     absorbed by the Consumed state, no second consume and no failure *)
  Alcotest.(check int) "re-start absorbed" 0
    (List.length (actions m store [ start "a" 3 ]));
  Alcotest.(check int) "completion returns to counting" 0
    (List.length (actions m store [ end_ "a" 4 ]));
  match actions m store [ start "a" 5 ] with
  | [ F.Restart_path ] -> ()
  | _ -> Alcotest.fail "counter empty again: restart expected"

let test_collect_reset_on_fail_variant () =
  let options = { To_fsm.collect_reset_on_fail = true } in
  let m = compile ~options (collect_prop ~n:2 ()) ~task:"a" in
  let store = Interp.memory_store m in
  ignore (actions m store [ end_ "b" 1 ]);
  (match actions m store [ start "a" 2 ] with
  | [ F.Restart_path ] -> ()
  | _ -> Alcotest.fail "restart expected");
  (* the literal Figure 7 machine zeroes the counter on failure *)
  Alcotest.check Helpers.value "counter zeroed" (F.Vint 0) (store.Interp.get "i")

let mitd_prop ?max_attempt () =
  S.Mitd
    { limit = Time.of_sec 2; dp_task = "b"; on_fail = S.Restart_path; max_attempt; path = None }

let test_mitd_on_time () =
  let m = compile (mitd_prop ()) ~task:"a" in
  let store = Interp.memory_store m in
  Alcotest.(check int) "within window" 0
    (List.length (actions m store [ end_ "b" 0; start "a" 1500 ]))

let test_mitd_violation () =
  let m = compile (mitd_prop ()) ~task:"a" in
  let store = Interp.memory_store m in
  match actions m store [ end_ "b" 0; start "a" 2500 ] with
  | [ F.Restart_path ] -> ()
  | _ -> Alcotest.fail "expected restartPath"

let test_mitd_max_attempt_escalates () =
  let m =
    compile (mitd_prop ~max_attempt:{ S.attempts = 3; exhausted = S.Skip_path } ())
      ~task:"a"
  in
  let store = Interp.memory_store m in
  let violate ts_b ts_a = actions m store [ end_ "b" ts_b; start "a" ts_a ] in
  (match violate 0 3000 with
  | [ F.Restart_path ] -> ()
  | _ -> Alcotest.fail "violation 1 restarts");
  (match violate 4000 8000 with
  | [ F.Restart_path ] -> ()
  | _ -> Alcotest.fail "violation 2 restarts");
  (match violate 9000 13000 with
  | [ F.Skip_path ] -> ()
  | _ -> Alcotest.fail "violation 3 skips (maxAttempt)");
  (* exhausted action resets the attempt counter *)
  Alcotest.check Helpers.value "attempts reset" (F.Vint 0) (store.Interp.get "attempts")

let test_mitd_success_resets_attempts () =
  let m =
    compile (mitd_prop ~max_attempt:{ S.attempts = 2; exhausted = S.Skip_path } ())
      ~task:"a"
  in
  let store = Interp.memory_store m in
  ignore (actions m store [ end_ "b" 0; start "a" 5000 ]);  (* violation 1 *)
  ignore (actions m store [ end_ "b" 6000; start "a" 6500 ]);  (* on time *)
  Alcotest.check Helpers.value "attempts reset on success" (F.Vint 0)
    (store.Interp.get "attempts");
  (* the next violation is attempt 1 again, not the exhausting one *)
  match actions m store [ end_ "b" 10000; start "a" 20000 ] with
  | [ F.Restart_path ] -> ()
  | _ -> Alcotest.fail "restart, not skip"

let test_mitd_fresh_end_reanchors () =
  let m = compile (mitd_prop ()) ~task:"a" in
  let store = Interp.memory_store m in
  (* b completes twice; the window is measured from the latest one *)
  Alcotest.(check int) "re-anchored" 0
    (List.length (actions m store [ end_ "b" 0; end_ "b" 3000; start "a" 4000 ]))

let period_prop ?max_attempt () =
  S.Period { interval = Time.of_sec 10; on_fail = S.Restart_path; max_attempt; path = None }

let test_period_on_time () =
  let m = compile (period_prop ()) ~task:"a" in
  let store = Interp.memory_store m in
  Alcotest.(check int) "periodic starts ok" 0
    (List.length
       (actions m store
          [ start "a" 0; end_ "a" 100; start "a" 9000; end_ "a" 9100; start "a" 18500 ]))

let test_period_violation_and_reanchor () =
  let m = compile (period_prop ()) ~task:"a" in
  let store = Interp.memory_store m in
  ignore (actions m store [ start "a" 0; end_ "a" 100 ]);
  (match actions m store [ start "a" 15_000 ] with
  | [ F.Restart_path ] -> ()
  | _ -> Alcotest.fail "late start violates periodicity");
  (* the late start re-anchors: next on-time start passes *)
  Alcotest.(check int) "re-anchored" 0
    (List.length (actions m store [ end_ "a" 15_100; start "a" 20_000 ]))

let test_period_ignores_powerfail_restarts () =
  let m = compile (period_prop ()) ~task:"a" in
  let store = Interp.memory_store m in
  ignore (Interp.step m store (start "a" 0));
  (* re-delivered starts while the task re-executes: not new instances *)
  Alcotest.(check int) "restarts absorbed" 0
    (List.length (actions m store [ start "a" 4000; start "a" 8000; start "a" 12_000 ]))

let test_dp_data_range () =
  let m =
    compile
      (S.Dp_data { var = "avgTemp"; low = 36.; high = 38.; on_fail = S.Complete_path; path = None })
      ~task:"a"
  in
  let store = Interp.memory_store m in
  Alcotest.(check int) "in range" 0
    (List.length (actions m store [ end_ ~dep_data:[ ("avgTemp", 37.2) ] "a" 1 ]));
  (match actions m store [ end_ ~dep_data:[ ("avgTemp", 39.4) ] "a" 2 ] with
  | [ F.Complete_path ] -> ()
  | _ -> Alcotest.fail "above range fires");
  match actions m store [ end_ ~dep_data:[ ("avgTemp", 35.1) ] "a" 3 ] with
  | [ F.Complete_path ] -> ()
  | _ -> Alcotest.fail "below range fires"

let test_min_energy () =
  let m =
    compile
      (S.Min_energy { uj = 3_400.; on_fail = S.Skip_task; path = None })
      ~task:"tx"
  in
  let store = Interp.memory_store m in
  let at_energy mj = { (start "tx" 0) with Fsm.Interp.energy_mj = mj } in
  Alcotest.(check int) "enough energy" 0
    (List.length (Interp.step m store (at_energy 10.)));
  match Interp.step m store (at_energy 2.) with
  | [ { Interp.action = F.Skip_task; _ } ] -> ()
  | _ -> Alcotest.fail "low energy must skip the task"

let test_path_filter () =
  let m =
    compile
      (S.Max_tries { n = 1; on_fail = S.Skip_path; path = Some 2 })
      ~task:"send"
  in
  let store = Interp.memory_store m in
  (* events from path 1 never even enter the machine *)
  Alcotest.(check int) "path 1 ignored" 0
    (List.length (actions m store [ start ~path:1 "send" 0; start ~path:1 "send" 1 ]));
  ignore (actions m store [ start ~path:2 "send" 2 ]);
  match actions m store [ start ~path:2 "send" 3 ] with
  | [ F.Skip_path ] -> ()
  | _ -> Alcotest.fail "path 2 events are monitored"

let test_fail_carries_explicit_path () =
  let machines =
    To_fsm.spec
      (Spec.Parser.parse_exn
         "send: { collect: 1 dpTask: accel onFail: restartPath Path: 2; }")
  in
  let m = List.hd machines in
  let store = Interp.memory_store m in
  match Interp.step m store (start ~path:2 "send" 0) with
  | [ { Interp.target_path = Some 2; action = F.Restart_path; _ } ] -> ()
  | _ -> Alcotest.fail "explicit Path must be attached to the failure"

let test_spec_compilation_names_unique () =
  let machines = To_fsm.spec (Spec.Parser.parse_exn Health_app.spec_text) in
  Alcotest.(check int) "one machine per property" 8 (List.length machines);
  let names = List.map (fun m -> m.F.machine_name) machines in
  Alcotest.(check int) "unique names" 8 (List.length (List.sort_uniq String.compare names))

let test_duplicate_property_names_suffixed () =
  let machines =
    To_fsm.spec
      (Spec.Parser.parse_exn
         "a: { maxTries: 1 onFail: skipTask; maxTries: 2 onFail: skipPath; }")
  in
  match List.map (fun m -> m.F.machine_name) machines with
  | [ "maxTries_a"; "maxTries_a_2" ] -> ()
  | names -> Alcotest.failf "got %s" (String.concat "," names)

(* every machine compiled from a random well-formed spec typechecks *)
let compiled_machines_typecheck =
  QCheck.Test.make ~name:"compiled machines always typecheck" ~count:300
    (QCheck.make Test_spec.gen_spec)
    (fun spec ->
      List.for_all
        (fun m -> Fsm.Typecheck.check m = Ok ())
        (To_fsm.spec spec))

let suite =
  [
    Alcotest.test_case "maxTries fires after n attempts" `Quick
      test_max_tries_fires_after_n;
    Alcotest.test_case "maxDuration within limit" `Quick
      test_max_duration_within_limit;
    Alcotest.test_case "maxDuration keeps first start (4.1.3)" `Quick
      test_max_duration_keeps_first_start_timestamp;
    Alcotest.test_case "maxDuration detected via anyEvent" `Quick
      test_max_duration_any_event_detects_timeout;
    Alcotest.test_case "collect blocks until n" `Quick test_collect_blocks_until_n;
    Alcotest.test_case "collect: no double consume" `Quick
      test_collect_no_double_consume_on_restart_events;
    Alcotest.test_case "collect: reset-on-fail variant" `Quick
      test_collect_reset_on_fail_variant;
    Alcotest.test_case "MITD on time" `Quick test_mitd_on_time;
    Alcotest.test_case "MITD violation" `Quick test_mitd_violation;
    Alcotest.test_case "MITD maxAttempt escalation" `Quick
      test_mitd_max_attempt_escalates;
    Alcotest.test_case "MITD success resets attempts" `Quick
      test_mitd_success_resets_attempts;
    Alcotest.test_case "MITD re-anchors on fresh data" `Quick
      test_mitd_fresh_end_reanchors;
    Alcotest.test_case "period on time" `Quick test_period_on_time;
    Alcotest.test_case "period violation re-anchors" `Quick
      test_period_violation_and_reanchor;
    Alcotest.test_case "period ignores power-fail restarts" `Quick
      test_period_ignores_powerfail_restarts;
    Alcotest.test_case "dpData range" `Quick test_dp_data_range;
    Alcotest.test_case "minEnergy (4.2.2 extension)" `Quick test_min_energy;
    Alcotest.test_case "Path filter" `Quick test_path_filter;
    Alcotest.test_case "fail carries explicit path" `Quick
      test_fail_carries_explicit_path;
    Alcotest.test_case "benchmark spec compiles to 8 machines" `Quick
      test_spec_compilation_names_unique;
    Alcotest.test_case "name clashes suffixed" `Quick
      test_duplicate_property_names_suffixed;
    QCheck_alcotest.to_alcotest compiled_machines_typecheck;
  ]
