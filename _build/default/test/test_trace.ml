open Artemis

let test_log_order_and_count () =
  let log = Log.create () in
  Log.record log ~at:Time.zero Event.Boot;
  Log.record log ~at:(Time.of_ms 1) (Event.Task_started { task = "a"; attempt = 1 });
  Log.record log ~at:(Time.of_ms 2) (Event.Task_completed { task = "a" });
  Log.record log ~at:(Time.of_ms 3) (Event.Task_started { task = "a"; attempt = 1 });
  Alcotest.(check int) "length" 4 (Log.length log);
  Alcotest.(check int) "attempts of a" 2 (Log.task_attempts log ~task:"a");
  Alcotest.(check int) "attempts of b" 0 (Log.task_attempts log ~task:"b");
  match Log.events log with
  | { Event.event = Event.Boot; _ } :: _ -> ()
  | _ -> Alcotest.fail "events out of order"

let test_timeline_limit () =
  let log = Log.create () in
  for i = 1 to 10 do
    Log.record log ~at:(Time.of_ms i) (Event.Task_started { task = "t"; attempt = i })
  done;
  let rendered = Log.render_timeline ~limit:3 log in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "3 + elision line" 4 (List.length lines);
  Alcotest.(check string) "elision mentions count" "... (7 more events)"
    (List.nth lines 3)

let test_event_rendering () =
  let show e = Event.to_string e in
  Alcotest.(check string) "reboot" "reboot after 2.00min charging"
    (show (Event.Reboot { charging_delay = Time.of_min 2 }));
  Alcotest.(check string) "failure in task" "power failure during send"
    (show (Event.Power_failure { during_task = Some "send" }));
  Alcotest.(check string) "verdict"
    "monitor MITD_send_accel: violation at send -> restartPath"
    (show
       (Event.Monitor_verdict
          { monitor = "MITD_send_accel"; task = "send"; action = "restartPath" }))

let test_stats_helpers () =
  let stats =
    {
      Stats.outcome = Stats.Completed;
      total_time = Time.of_sec 10;
      off_time = Time.of_sec 4;
      app_time = Time.of_sec 5;
      runtime_overhead = Time.of_ms 600;
      monitor_overhead = Time.of_ms 400;
      energy_total = Energy.mj 3.;
      energy_app = Energy.mj 2.;
      energy_runtime = Energy.mj 0.5;
      energy_monitor = Energy.mj 0.5;
      power_failures = 2;
      reboots = 2;
      task_executions = 5;
      task_completions = 3;
      path_restarts = 1;
      path_skips = 0;
    }
  in
  Alcotest.(check bool) "completed" true (Stats.completed stats);
  Alcotest.check Helpers.time "active" (Time.of_sec 6) (Stats.active_time stats);
  Alcotest.check Helpers.time "overhead" (Time.of_sec 1) (Stats.overhead_time stats)

let suite =
  [
    Alcotest.test_case "log order and counting" `Quick test_log_order_and_count;
    Alcotest.test_case "timeline limit" `Quick test_timeline_limit;
    Alcotest.test_case "event rendering" `Quick test_event_rendering;
    Alcotest.test_case "stats helpers" `Quick test_stats_helpers;
  ]
