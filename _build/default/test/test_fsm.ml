open Artemis
module Ast = Fsm.Ast
module Parser = Fsm.Parser
module Printer = Fsm.Printer
module Typecheck = Fsm.Typecheck
module Interp = Fsm.Interp

let machine_t =
  Alcotest.testable Ast.pp_machine Ast.equal_machine

let parse = Parser.parse_machine_exn

let max_tries_text =
  {|
machine maxTries_a {
  var i : int = 0;
  initial state NotStarted {
    on startTask(a) { i := 1; } -> Started;
  }
  state Started {
    on startTask(a) when (i < 3) { i := i + 1; };
    on startTask(a) when (i >= 3) { fail skipPath; i := 0; } -> NotStarted;
    on endTask(a) { i := 0; } -> NotStarted;
  }
}
|}

(* --- parser --- *)

let test_parse_structure () =
  let m = parse max_tries_text in
  Alcotest.(check string) "name" "maxTries_a" m.Ast.machine_name;
  Alcotest.(check string) "initial" "NotStarted" m.Ast.initial;
  Alcotest.(check int) "two states" 2 (List.length m.Ast.states);
  let started = Option.get (Ast.find_state m "Started") in
  Alcotest.(check int) "three transitions" 3 (List.length started.Ast.transitions);
  (* the self-loop has no arrow in the source *)
  let self = List.hd started.Ast.transitions in
  Alcotest.(check string) "self target" "Started" self.Ast.target

let test_parse_expressions () =
  let e = Parser.parse_expr_exn "t - start <= 100ms && path == 2" in
  let expected =
    Ast.Binop
      ( Ast.And,
        Ast.Binop
          ( Ast.Le,
            Ast.Binop (Ast.Sub, Ast.Timestamp, Ast.Var "start"),
            Ast.Lit (Ast.Vtime (Time.of_ms 100)) ),
        Ast.Binop (Ast.Eq, Ast.Event_path, Ast.Lit (Ast.Vint 2)) )
  in
  if not (Printer.expr_to_string e = Printer.expr_to_string expected) then
    Alcotest.failf "got %s" (Printer.expr_to_string e)

let test_parse_negative_literal_folding () =
  match Parser.parse_expr_exn "-3" with
  | Ast.Lit (Ast.Vint -3) -> ()
  | other -> Alcotest.failf "got %s" (Printer.expr_to_string other)

let test_parse_builtins () =
  (match Parser.parse_expr_exn "data(avgTemp) > 38.0" with
  | Ast.Binop (Ast.Gt, Ast.Dep_data "avgTemp", Ast.Lit (Ast.Vfloat _)) -> ()
  | _ -> Alcotest.fail "data() parse");
  match Parser.parse_expr_exn "energyLevel < 3.4" with
  | Ast.Binop (Ast.Lt, Ast.Energy_level, _) -> ()
  | _ -> Alcotest.fail "energyLevel parse"

let test_parse_errors () =
  let bad src =
    match Parser.parse src with
    | Ok _ -> Alcotest.failf "expected failure for %S" src
    | Error _ -> ()
  in
  bad "machine m { state S { } }";  (* no initial state *)
  bad "machine m { initial state A { } initial state B { } }";
  bad "machine m { initial state A { on banana; } }";
  bad "machine m { var x : quaternion = 1; initial state A { } }";
  bad "machine m { initial state A { on startTask(t) { fail explode; }; } }"

(* --- typecheck --- *)

let test_typecheck_ok () =
  Alcotest.(check bool) "well-typed" true (Typecheck.check (parse max_tries_text) = Ok ())

let expect_type_error text fragment =
  match Typecheck.check (parse text) with
  | Ok () -> Alcotest.failf "expected a type error mentioning %s" fragment
  | Error errs ->
      let joined = String.concat " | " errs in
      let contains sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length joined && (String.sub joined i n = sub || go (i + 1))
        in
        go 0
      in
      if not (contains fragment) then
        Alcotest.failf "errors %S do not mention %S" joined fragment

let test_typecheck_errors () =
  expect_type_error
    "machine m { initial state A { on startTask(t) when (x > 1); } }"
    "undeclared variable";
  expect_type_error
    "machine m { var x : int = 0; initial state A { on startTask(t) when (x); } }"
    "guard has type int";
  expect_type_error
    "machine m { var x : int = 0; initial state A { on startTask(t) { x := 100ms; }; } }"
    "assigning time";
  expect_type_error
    "machine m { var x : int = 0; initial state A { on startTask(t) when (x + t == t); } }"
    "equal operand types";
  expect_type_error
    "machine m { initial state A { on startTask(t) -> Nowhere; } }"
    "target state";
  expect_type_error "machine m { var x : bool = 3; initial state A { } }"
    "initializer type";
  expect_type_error
    "machine m { var x : time = 0us; initial state A { on startTask(t) when (x * x == x); } }"
    "not defined on time"

(* --- interpreter --- *)

let test_interp_max_tries () =
  let m = parse max_tries_text in
  let store = Interp.memory_store m in
  let start i = Helpers.event ~task:"a" ~ts:i () in
  Alcotest.(check int) "1st start ok" 0 (List.length (Interp.step m store (start 1)));
  Alcotest.(check int) "2nd ok" 0 (List.length (Interp.step m store (start 2)));
  Alcotest.(check int) "3rd ok" 0 (List.length (Interp.step m store (start 3)));
  (match Interp.step m store (start 4) with
  | [ { Interp.action = Ast.Skip_path; failed_machine = "maxTries_a"; target_path = None } ] -> ()
  | fs -> Alcotest.failf "expected one skipPath failure, got %d" (List.length fs));
  Alcotest.check Helpers.value "counter reset" (Ast.Vint 0) (store.Interp.get "i");
  Alcotest.(check string) "back to initial" "NotStarted" (store.Interp.get_state ())

let test_interp_implicit_self_transition () =
  let m = parse max_tries_text in
  let store = Interp.memory_store m in
  (* an event nothing matches: unrelated task *)
  let other = Helpers.event ~task:"zz" () in
  Alcotest.(check int) "accepted silently" 0 (List.length (Interp.step m store other));
  Alcotest.(check string) "state unchanged" "NotStarted" (store.Interp.get_state ())

let test_interp_transition_order () =
  (* first matching transition wins, in declaration order *)
  let m =
    parse
      {|
machine order {
  var x : int = 0;
  initial state A {
    on startTask(t) when (true) { x := 1; };
    on startTask(t) when (true) { x := 2; };
  }
}
|}
  in
  let store = Interp.memory_store m in
  ignore (Interp.step m store (Helpers.event ~task:"t" ()));
  Alcotest.check Helpers.value "first wins" (Ast.Vint 1) (store.Interp.get "x")

let test_interp_if_else_and_arith () =
  let m =
    parse
      {|
machine arith {
  var a : int = 10;
  var b : float = 1.5;
  var ok : bool = false;
  initial state S {
    on startTask(t) {
      a := a / 3 + 14 % 5;
      b := b * 2.0;
      if (a == 7 && b == 3.0) { ok := true; } else { ok := false; }
    };
  }
}
|}
  in
  let store = Interp.memory_store m in
  ignore (Interp.step m store (Helpers.event ~task:"t" ()));
  Alcotest.check Helpers.value "int arith" (Ast.Vint 7) (store.Interp.get "a");
  Alcotest.check Helpers.value "float arith" (Ast.Vfloat 3.0) (store.Interp.get "b");
  Alcotest.check Helpers.value "if took then-branch" (Ast.Vbool true)
    (store.Interp.get "ok")

let test_interp_dep_data_and_energy () =
  let m =
    parse
      {|
machine dd {
  initial state S {
    on endTask(t) when (data(x) > 38.0 || energyLevel < 1.0) { fail completePath; };
  }
}
|}
  in
  let store = Interp.memory_store m in
  let ok_event = Helpers.event ~kind:Fsm.Interp.End ~task:"t" ~dep_data:[ ("x", 37.0) ] ~energy:50. () in
  Alcotest.(check int) "in range" 0 (List.length (Interp.step m store ok_event));
  let bad_event = Helpers.event ~kind:Fsm.Interp.End ~task:"t" ~dep_data:[ ("x", 39.0) ] () in
  Alcotest.(check int) "out of range fires" 1 (List.length (Interp.step m store bad_event));
  let missing = Helpers.event ~kind:Fsm.Interp.End ~task:"t" () in
  match Interp.step m store missing with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a runtime error for missing data"

let test_interp_division_by_zero () =
  let m =
    parse
      {|
machine dz {
  var x : int = 0;
  initial state S {
    on startTask(t) { x := 1 / x; };
  }
}
|}
  in
  let store = Interp.memory_store m in
  match Interp.step m store (Helpers.event ~task:"t" ()) with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected division by zero"

let test_mentions_task () =
  let m = parse max_tries_text in
  Alcotest.(check bool) "mentions a" true (Interp.mentions_task m "a");
  Alcotest.(check bool) "not b" false (Interp.mentions_task m "b")

(* --- printer round trip over generated machines --- *)

(* the z_ prefix keeps generated identifiers clear of keywords and the
   builtin names (t, path, data, energyLevel) *)
let gen_ident =
  QCheck.Gen.(
    map (fun rest -> "z_" ^ rest)
      (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)))

let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Ast.Vint n) (int_range (-100) 100);
        map (fun b -> Ast.Vbool b) bool;
        map (fun f -> Ast.Vfloat (float_of_int f /. 4.)) (int_range (-400) 400);
        map (fun n -> Ast.Vtime (Time.of_ms n)) (int_bound 10_000);
      ])

let gen_expr vars =
  let open QCheck.Gen in
  let leaf =
    oneof
      ([ map (fun v -> Ast.Lit v) gen_value; return Ast.Timestamp; return Ast.Event_path;
         return Ast.Energy_level; map (fun x -> Ast.Dep_data x) gen_ident ]
      @ match vars with [] -> [] | vs -> [ map (fun x -> Ast.Var x) (oneofl vs) ])
  in
  let rec expr n =
    if n <= 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map3 (fun op a b -> Ast.Binop (op, a, b))
                (oneofl Ast.[ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or ])
                (expr (n - 1)) (expr (n - 1)));
          (1, map2 (fun op e -> Ast.Unop (op, e)) (oneofl Ast.[ Neg; Not ]) (expr (n - 1)));
        ]
  in
  expr 3

let gen_machine =
  let open QCheck.Gen in
  let* vars =
    list_size (int_range 0 3)
      (map3 (fun name ty persistent ->
           let init =
             match ty with
             | Ast.Tint -> Ast.Vint 0
             | Ast.Tbool -> Ast.Vbool false
             | Ast.Tfloat -> Ast.Vfloat 0.
             | Ast.Ttime -> Ast.Vtime Time.zero
           in
           { Ast.var_name = name; ty; init; persistent })
         gen_ident (oneofl Ast.[ Tint; Tbool; Tfloat; Ttime ]) bool)
  in
  let var_names = List.map (fun v -> v.Ast.var_name) vars in
  let gen_stmt =
    let open QCheck.Gen in
    frequency
      ([ (1, map2 (fun a p -> Ast.Fail (a, p))
              (oneofl Ast.[ Restart_path; Skip_path; Restart_task; Skip_task; Complete_path ])
              (opt (int_range 1 5))) ]
      @
      match var_names with
      | [] -> []
      | vs -> [ (3, map2 (fun x e -> Ast.Assign (x, e)) (oneofl vs) (gen_expr var_names)) ])
  in
  let* state_names = map (List.sort_uniq String.compare) (list_size (int_range 1 4) gen_ident) in
  let gen_transition =
    let* trigger =
      oneof
        [ map (fun t -> Ast.On_start t) gen_ident; map (fun t -> Ast.On_end t) gen_ident;
          return Ast.On_any ]
    in
    let* guard = opt (gen_expr var_names) in
    let* body = list_size (int_range 0 3) gen_stmt in
    let* target = oneofl state_names in
    return { Ast.trigger; guard; body; target }
  in
  let* states =
    flatten_l
      (List.map
         (fun state_name ->
           let* transitions = list_size (int_range 0 3) gen_transition in
           return { Ast.state_name; transitions })
         state_names)
  in
  let* name = gen_ident in
  return { Ast.machine_name = name; vars; initial = List.hd state_names; states }

let printer_roundtrip =
  QCheck.Test.make ~name:"fsm print-parse round trip" ~count:300
    (QCheck.make gen_machine)
    (fun m ->
      match Parser.parse (Printer.to_string m) with
      | Ok [ m' ] -> Ast.equal_machine m m'
      | Ok _ | Error _ -> false)

let suite =
  [
    Alcotest.test_case "parse structure" `Quick test_parse_structure;
    Alcotest.test_case "parse expressions" `Quick test_parse_expressions;
    Alcotest.test_case "negative literal folding" `Quick
      test_parse_negative_literal_folding;
    Alcotest.test_case "builtin primitives" `Quick test_parse_builtins;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "typecheck accepts good machines" `Quick test_typecheck_ok;
    Alcotest.test_case "typecheck errors" `Quick test_typecheck_errors;
    Alcotest.test_case "interp: maxTries machine" `Quick test_interp_max_tries;
    Alcotest.test_case "interp: implicit self-transition" `Quick
      test_interp_implicit_self_transition;
    Alcotest.test_case "interp: declaration order" `Quick
      test_interp_transition_order;
    Alcotest.test_case "interp: statements and arithmetic" `Quick
      test_interp_if_else_and_arith;
    Alcotest.test_case "interp: data() and energyLevel" `Quick
      test_interp_dep_data_and_energy;
    Alcotest.test_case "interp: division by zero" `Quick
      test_interp_division_by_zero;
    Alcotest.test_case "mentions_task" `Quick test_mentions_task;
    QCheck_alcotest.to_alcotest printer_roundtrip;
    Alcotest.test_case "machine equality sanity" `Quick (fun () ->
        let m = parse max_tries_text in
        Alcotest.check machine_t "reflexive" m m);
  ]
