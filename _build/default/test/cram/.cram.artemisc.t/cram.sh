  $ cat > spec.txt <<'SPEC'
  > accel: { maxTries: 2 onFail: skipPath; }
  > SPEC
  $ ../../bin/artemisc.exe --emit spec spec.txt
  $ ../../bin/artemisc.exe --emit fsm spec.txt
  $ ../../bin/artemisc.exe --emit c spec.txt | grep -c callMonitor
  $ ../../bin/artemisc.exe --emit lint - <<'SPEC'
  > t: { maxTries: 1 onFail: skipPath; collect: 1 dpTask: u onFail: restartTask; }
  > SPEC
  $ ../../bin/artemisc.exe --emit spec - <<'SPEC'
  > t: { maxTries: onFail: skipPath; }
  > SPEC
