  $ ../../bin/artemis_sim.exe --continuous | head -2
  $ ../../bin/artemis_sim.exe -s mayfly -d 6 | head -1
  $ ../../bin/artemis_sim.exe -s artemis -d 6 | head -1
  $ ../../bin/artemis_sim.exe -s tics
