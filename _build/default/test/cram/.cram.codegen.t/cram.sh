  $ ../../bin/artemisc.exe --emit c - <<'SPEC'
  > send: { maxDuration: 100ms onFail: skipTask; }
  > SPEC
