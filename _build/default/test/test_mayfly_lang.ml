open Artemis
module L = Mayfly_lang

let example =
  "accel -> send expires 5min Path 2;\nbodyTemp -> calcAvg collect 10;\n"

let test_parse () =
  match L.parse_exn example with
  | [ e1; e2 ] ->
      Alcotest.(check string) "producer" "accel" e1.L.producer;
      Alcotest.(check string) "consumer" "send" e1.L.consumer;
      (match e1.L.constraint_ with
      | L.Expires d -> Alcotest.check Helpers.time "5min" (Time.of_min 5) d
      | L.Collects _ -> Alcotest.fail "expires expected");
      Alcotest.(check (option int)) "path" (Some 2) e1.L.path;
      (match e2.L.constraint_ with
      | L.Collects 10 -> ()
      | _ -> Alcotest.fail "collect 10 expected")
  | _ -> Alcotest.fail "two edges expected"

let test_parse_errors () =
  let bad src =
    match L.parse src with
    | Ok _ -> Alcotest.failf "expected failure for %S" src
    | Error _ -> ()
  in
  bad "accel send expires 5min;";
  bad "accel -> send expires;";
  bad "accel -> send collect 0;";
  bad "accel -> send evaporates 5min;";
  bad "accel -> send expires 5min"

let test_roundtrip_fixed () =
  let edges = L.parse_exn example in
  Alcotest.(check bool) "round trip" true
    (L.equal edges (L.parse_exn (L.to_string edges)))

let roundtrip_qcheck =
  let gen_edge =
    QCheck.Gen.(
      let ident = map (fun s -> "t_" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 4)) in
      let constraint_ =
        oneof
          [ map (fun n -> L.Expires (Artemis.Time.of_sec (n + 1))) (int_bound 600);
            map (fun n -> L.Collects (n + 1)) (int_bound 20) ]
      in
      map (fun (producer, consumer, constraint_, path) ->
          { L.producer; consumer; constraint_; path })
        (quad ident ident constraint_ (opt (int_range 1 5))))
  in
  QCheck.Test.make ~name:"mayfly-lang round trip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 6) gen_edge))
    (fun edges -> L.equal edges (L.parse_exn (L.to_string edges)))

let test_to_spec_and_machines () =
  let edges = L.parse_exn example in
  let spec = L.to_spec edges in
  (* blocks are grouped by consumer, actions are Mayfly's fixed restart *)
  Alcotest.(check (list string)) "consumers" [ "calcAvg"; "send" ]
    (List.map (fun b -> b.Spec.Ast.task) spec);
  List.iter
    (fun b ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "fixed reaction" true
            (Spec.Ast.property_on_fail p = Spec.Ast.Restart_path))
        b.Spec.Ast.properties)
    spec;
  (* the machines typecheck and behave like MITD: a late consumer start
     after the producer's completion triggers a restart *)
  let machines = L.to_machines edges in
  Alcotest.(check int) "two machines" 2 (List.length machines);
  let mitd =
    List.find
      (fun m ->
        Fsm.Interp.mentions_task m "accel" && Fsm.Interp.mentions_task m "send")
      machines
  in
  let store = Fsm.Interp.memory_store mitd in
  ignore
    (Fsm.Interp.step mitd store
       (Helpers.event ~kind:Fsm.Interp.End ~task:"accel" ~ts:0 ~path:2 ()));
  match
    Fsm.Interp.step mitd store
      (Helpers.event ~task:"send" ~ts:(6 * 60 * 1000) ~path:2 ())
  with
  | [ { Fsm.Interp.action = Fsm.Ast.Restart_path; _ } ] -> ()
  | _ -> Alcotest.fail "expected a restart on expired data"

let test_to_annotations_drive_baseline () =
  (* the same edges drive the Mayfly baseline runtime natively *)
  let device = Helpers.powered_device () in
  let produce = Helpers.simple_task ~name:"produce" ~ms:50 () in
  let consume = Helpers.simple_task ~name:"consume" ~ms:50 () in
  let app = Helpers.one_path_app [ produce; consume ] in
  let annotations =
    L.to_annotations (L.parse_exn "produce -> consume collect 2;")
  in
  let stats = Mayfly.run device app annotations in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "one restart (needs 2 items)" 1 stats.Artemis.Stats.path_restarts

let suite =
  [
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "round trip (fixed)" `Quick test_roundtrip_fixed;
    QCheck_alcotest.to_alcotest roundtrip_qcheck;
    Alcotest.test_case "maps onto the intermediate language" `Quick
      test_to_spec_and_machines;
    Alcotest.test_case "maps onto baseline annotations" `Quick
      test_to_annotations_drive_baseline;
  ]
