open Artemis

let check = Alcotest.(check int)

let test_constructors () =
  check "ms" 1_000 (Time.to_us (Time.of_ms 1));
  check "sec" 1_000_000 (Time.to_us (Time.of_sec 1));
  check "min" 60_000_000 (Time.to_us (Time.of_min 1));
  check "sec_f rounds" 1_500_000 (Time.to_us (Time.of_sec_f 1.5));
  check "sec_f rounds to nearest us" 1 (Time.to_us (Time.of_sec_f 1.4e-6))

let test_arithmetic () =
  let a = Time.of_ms 5 and b = Time.of_ms 3 in
  Alcotest.check Helpers.time "add" (Time.of_ms 8) (Time.add a b);
  Alcotest.check Helpers.time "sub" (Time.of_ms 2) (Time.sub a b);
  Alcotest.check Helpers.time "scale" (Time.of_ms 15) (Time.scale a 3);
  Alcotest.check Helpers.time "divide" (Time.of_us 2_500) (Time.divide a 2);
  Alcotest.(check bool) "negative" true (Time.is_negative (Time.sub b a))

let test_comparisons () =
  let a = Time.of_ms 1 and b = Time.of_ms 2 in
  Alcotest.(check bool) "lt" true Time.(a < b);
  Alcotest.(check bool) "le refl" true Time.(a <= a);
  Alcotest.(check bool) "gt" true Time.(b > a);
  Alcotest.check Helpers.time "min" a (Time.min a b);
  Alcotest.check Helpers.time "max" b (Time.max a b)

let test_literal () =
  Alcotest.(check string) "min unit" "5min" (Time.to_literal (Time.of_min 5));
  Alcotest.(check string) "s unit" "90s" (Time.to_literal (Time.of_sec 90));
  Alcotest.(check string) "ms unit" "100ms" (Time.to_literal (Time.of_ms 100));
  Alcotest.(check string) "us unit" "1500us" (Time.to_literal (Time.of_us 1_500));
  Alcotest.(check string) "zero" "0us" (Time.to_literal Time.zero)

let test_pp_units () =
  let render t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "us" "42us" (render (Time.of_us 42));
  Alcotest.(check string) "ms" "1.50ms" (render (Time.of_us 1_500));
  Alcotest.(check string) "s" "2.50s" (render (Time.of_ms 2_500));
  Alcotest.(check string) "min" "2.00min" (render (Time.of_min 2))

let literal_roundtrip =
  QCheck.Test.make ~name:"to_literal scans back to the same value"
    ~count:500
    QCheck.(map Time.of_us (int_bound 10_000_000_000))
    (fun t ->
      match
        Artemis_util.Scanner.tokenize ~puncts:[] (Time.to_literal t)
      with
      | [ { token = Artemis_util.Scanner.Duration d; _ }; _ ] -> Time.equal d t
      | _ -> false)

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "exact literals" `Quick test_literal;
    Alcotest.test_case "pp adaptive units" `Quick test_pp_units;
    QCheck_alcotest.to_alcotest literal_roundtrip;
  ]
