module Scanner = Artemis_util.Scanner
open Artemis

let tokens src =
  List.map
    (fun (l : Scanner.located) -> l.Scanner.token)
    (Scanner.tokenize ~puncts:[ "{"; "}"; ":"; ";"; "->"; "-"; ":="; "=" ] src)

let tok = Alcotest.testable Scanner.pp_token ( = )

let test_idents_and_numbers () =
  Alcotest.(check (list tok))
    "mixed"
    [
      Scanner.Ident "foo";
      Scanner.Int 42;
      Scanner.Float 3.5;
      Scanner.Ident "_x1";
      Scanner.Eof;
    ]
    (tokens "foo 42 3.5 _x1")

let test_durations () =
  Alcotest.(check (list tok))
    "all units"
    [
      Scanner.Duration (Time.of_us 10);
      Scanner.Duration (Time.of_ms 100);
      Scanner.Duration (Time.of_sec 3);
      Scanner.Duration (Time.of_sec 2);
      Scanner.Duration (Time.of_min 5);
      Scanner.Duration (Time.of_sec_f 1.5);
      Scanner.Eof;
    ]
    (tokens "10us 100ms 3s 2sec 5min 1.5s")

let test_energy_literals () =
  Alcotest.(check (list tok))
    "energy units"
    [ Scanner.Energy 500.; Scanner.Energy 3_400.; Scanner.Energy 2_000_000.; Scanner.Eof ]
    (tokens "500uJ 3.4mJ 2J")

let test_punct_longest_match () =
  Alcotest.(check (list tok))
    "-> beats -"
    [ Scanner.Punct "->"; Scanner.Punct "-"; Scanner.Punct ":="; Scanner.Punct ":"; Scanner.Eof ]
    (tokens "-> - := :")

let test_comments_and_layout () =
  Alcotest.(check (list tok))
    "comment skipped"
    [ Scanner.Ident "a"; Scanner.Ident "b"; Scanner.Eof ]
    (tokens "a // a comment with 1 2 3\n  b")

let test_error_position () =
  match Scanner.tokenize ~puncts:[] "ab\n  @" with
  | exception Scanner.Lex_error (_, 2, 3) -> ()
  | exception Scanner.Lex_error (_, l, c) ->
      Alcotest.failf "wrong position %d:%d" l c
  | _ -> Alcotest.fail "expected a lex error"

let test_unknown_unit () =
  match Scanner.tokenize ~puncts:[] "3parsec" with
  | exception Scanner.Lex_error (msg, 1, 1) ->
      Alcotest.(check string) "message" "unknown unit \"parsec\"" msg
  | exception Scanner.Lex_error (_, l, c) ->
      Alcotest.failf "wrong position %d:%d" l c
  | _ -> Alcotest.fail "expected a lex error"

let suite =
  [
    Alcotest.test_case "idents and numbers" `Quick test_idents_and_numbers;
    Alcotest.test_case "duration literals" `Quick test_durations;
    Alcotest.test_case "energy literals" `Quick test_energy_literals;
    Alcotest.test_case "longest punct wins" `Quick test_punct_longest_match;
    Alcotest.test_case "comments" `Quick test_comments_and_layout;
    Alcotest.test_case "error position" `Quick test_error_position;
    Alcotest.test_case "unknown duration unit" `Quick test_unknown_unit;
  ]
