open Artemis

let test_write_through () =
  let nvm = Nvm.create () in
  let c = Nvm.cell nvm ~region:Nvm.Monitor ~name:"x" ~bytes:4 0 in
  Nvm.write c 7;
  Alcotest.(check int) "visible" 7 (Nvm.read c);
  Nvm.power_failure nvm;
  Alcotest.(check int) "survives failure" 7 (Nvm.read c)

let test_tx_commit () =
  let nvm = Nvm.create () in
  let c = Nvm.cell nvm ~region:Nvm.Application ~name:"x" ~bytes:4 0 in
  Nvm.begin_tx nvm;
  Nvm.tx_write c 1;
  Alcotest.(check int) "read own writes" 1 (Nvm.read c);
  Nvm.tx_write c 2;
  Nvm.commit_tx nvm;
  Alcotest.(check int) "committed" 2 (Nvm.read c);
  Nvm.power_failure nvm;
  Alcotest.(check int) "durable" 2 (Nvm.read c)

let test_tx_abort_on_power_failure () =
  let nvm = Nvm.create () in
  let c = Nvm.cell nvm ~region:Nvm.Application ~name:"x" ~bytes:4 10 in
  Nvm.begin_tx nvm;
  Nvm.tx_write c 99;
  Nvm.power_failure nvm;
  Alcotest.(check int) "rolled back" 10 (Nvm.read c);
  Alcotest.(check bool) "tx closed" false (Nvm.in_tx nvm)

let test_ram_reset () =
  let nvm = Nvm.create () in
  let r = Nvm.cell nvm ~region:Nvm.Runtime ~kind:Nvm.Ram ~name:"scratch" ~bytes:2 5 in
  Nvm.write r 42;
  Nvm.power_failure nvm;
  Alcotest.(check int) "volatile reset to initial" 5 (Nvm.read r)

let test_mixed_write_disciplines_rejected () =
  let nvm = Nvm.create () in
  let c = Nvm.cell nvm ~region:Nvm.Application ~name:"x" ~bytes:4 0 in
  Nvm.begin_tx nvm;
  Nvm.tx_write c 1;
  Alcotest.check_raises "direct write with pending tx value"
    (Invalid_argument "Nvm.write: cell \"x\" has an uncommitted tx value")
    (fun () -> Nvm.write c 2);
  Nvm.abort_tx nvm

let test_tx_discipline_errors () =
  let nvm = Nvm.create () in
  let c = Nvm.cell nvm ~region:Nvm.Application ~name:"x" ~bytes:4 0 in
  Alcotest.check_raises "tx_write outside tx"
    (Invalid_argument "Nvm.tx_write: no open transaction") (fun () ->
      Nvm.tx_write c 1);
  Alcotest.check_raises "commit outside tx"
    (Invalid_argument "Nvm.commit_tx: no open transaction") (fun () ->
      Nvm.commit_tx nvm);
  Nvm.begin_tx nvm;
  Alcotest.check_raises "nested tx"
    (Invalid_argument "Nvm.begin_tx: transaction already open") (fun () ->
      Nvm.begin_tx nvm);
  Nvm.abort_tx nvm;
  let r = Nvm.cell nvm ~region:Nvm.Runtime ~kind:Nvm.Ram ~name:"r" ~bytes:1 0 in
  Nvm.begin_tx nvm;
  Alcotest.check_raises "tx_write on volatile cell"
    (Invalid_argument "Nvm.tx_write: cell \"r\" is volatile") (fun () ->
      Nvm.tx_write r 1);
  Nvm.abort_tx nvm

let test_duplicate_cells_rejected () =
  let nvm = Nvm.create () in
  ignore (Nvm.cell nvm ~region:Nvm.Monitor ~name:"x" ~bytes:1 ());
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Nvm.cell: duplicate cell \"x\"") (fun () ->
      ignore (Nvm.cell nvm ~region:Nvm.Monitor ~name:"x" ~bytes:1 ()));
  (* same name in another region is fine *)
  ignore (Nvm.cell nvm ~region:Nvm.Runtime ~name:"x" ~bytes:1 ())

let test_footprint_accounting () =
  let nvm = Nvm.create () in
  ignore (Nvm.cell nvm ~region:Nvm.Monitor ~name:"a" ~bytes:4 ());
  ignore (Nvm.cell nvm ~region:Nvm.Monitor ~name:"b" ~bytes:8 ());
  ignore (Nvm.cell nvm ~region:Nvm.Runtime ~name:"c" ~bytes:2 ());
  ignore (Nvm.cell nvm ~region:Nvm.Runtime ~kind:Nvm.Ram ~name:"d" ~bytes:2 ());
  Alcotest.(check int) "monitor fram" 12
    (Nvm.footprint nvm ~kind:Nvm.Fram ~region:Nvm.Monitor);
  Alcotest.(check int) "runtime fram" 2
    (Nvm.footprint nvm ~kind:Nvm.Fram ~region:Nvm.Runtime);
  Alcotest.(check int) "runtime ram" 2
    (Nvm.footprint nvm ~kind:Nvm.Ram ~region:Nvm.Runtime);
  Alcotest.(check (list string)) "names in order" [ "a"; "b" ]
    (Nvm.cell_names nvm ~region:Nvm.Monitor)

(* Random interleavings of transactional ops and power failures never leak
   uncommitted state: after every failure, reads equal the last committed
   value. *)
let atomicity_qcheck =
  let open QCheck in
  let op = Gen.oneofl [ `Tx_write; `Commit; `Failure ] in
  Test.make ~name:"tx atomicity under random failures" ~count:300
    (make Gen.(list_size (int_range 1 40) (pair op (int_bound 100))))
    (fun ops ->
      let nvm = Nvm.create () in
      let cell = Nvm.cell nvm ~region:Nvm.Application ~name:"x" ~bytes:4 0 in
      let committed = ref 0 in
      let pending = ref None in
      List.iter
        (fun (op, v) ->
          match op with
          | `Tx_write ->
              if not (Nvm.in_tx nvm) then Nvm.begin_tx nvm;
              Nvm.tx_write cell v;
              pending := Some v
          | `Commit ->
              if Nvm.in_tx nvm then begin
                Nvm.commit_tx nvm;
                (match !pending with Some v -> committed := v | None -> ());
                pending := None
              end
          | `Failure ->
              Nvm.power_failure nvm;
              pending := None)
        ops;
      if Nvm.in_tx nvm then Nvm.power_failure nvm;
      Nvm.read cell = !committed)

let suite =
  [
    Alcotest.test_case "write-through persistence" `Quick test_write_through;
    Alcotest.test_case "transaction commit" `Quick test_tx_commit;
    Alcotest.test_case "power failure aborts tx" `Quick test_tx_abort_on_power_failure;
    Alcotest.test_case "RAM cells reset on failure" `Quick test_ram_reset;
    Alcotest.test_case "mixed disciplines rejected" `Quick
      test_mixed_write_disciplines_rejected;
    Alcotest.test_case "transaction discipline errors" `Quick
      test_tx_discipline_errors;
    Alcotest.test_case "duplicate cells rejected" `Quick
      test_duplicate_cells_rejected;
    Alcotest.test_case "footprint accounting" `Quick test_footprint_accounting;
    QCheck_alcotest.to_alcotest atomicity_qcheck;
  ]
