open Artemis

let thread ?(priority = 0) ?expiry name tasks =
  { Ink.thread_name = name; priority; tasks; expiry }

let armed ?(at = 0) t = { Ink.thread = t; arrival = Time.of_ms at }

let test_validate () =
  let t = thread "t" [ Helpers.simple_task ~name:"a" () ] in
  Alcotest.(check bool) "ok" true (Ink.validate [ armed t ] = Ok ());
  Alcotest.(check bool) "empty set" true (Result.is_error (Ink.validate []));
  Alcotest.(check bool) "duplicate names" true
    (Result.is_error (Ink.validate [ armed t; armed t ]));
  Alcotest.(check bool) "empty chain" true
    (Result.is_error (Ink.validate [ armed (thread "e" []) ]))

let test_priority_scheduling () =
  let device = Helpers.powered_device () in
  let nvm = Device.nvm device in
  let order = Channel.create nvm ~name:"order" ~bytes_per_item:1 ~capacity:8 in
  let mk tag = Helpers.simple_task ~name:tag ~body:(fun _ -> Channel.push order tag) () in
  let low = thread ~priority:1 "low" [ mk "l1"; mk "l2" ] in
  let high = thread ~priority:9 "high" [ mk "h1"; mk "h2" ] in
  let outcome = Ink.run device [ armed low; armed high ] in
  Alcotest.(check bool) "completed" true (Helpers.completed outcome.Ink.stats);
  Alcotest.(check (list string)) "high priority chain first"
    [ "h1"; "h2"; "l1"; "l2" ] (Channel.items order);
  Alcotest.(check (list string)) "completion order" [ "high"; "low" ]
    outcome.Ink.completed_threads

let test_preemption_at_task_boundary () =
  (* a higher-priority event arriving mid-chain preempts at the next task
     boundary (InK schedules between tasks, not inside them) *)
  let device = Helpers.powered_device () in
  let nvm = Device.nvm device in
  let order = Channel.create nvm ~name:"order" ~bytes_per_item:1 ~capacity:8 in
  let mk ?(ms = 100) tag =
    Helpers.simple_task ~name:tag ~ms ~body:(fun _ -> Channel.push order tag) ()
  in
  let background = thread ~priority:1 "bg" [ mk "b1"; mk "b2"; mk "b3" ] in
  let urgent = thread ~priority:9 "urgent" [ mk "u1" ] in
  let outcome =
    Ink.run device [ armed background; armed ~at:150 urgent ]
  in
  Alcotest.(check bool) "completed" true (Helpers.completed outcome.Ink.stats);
  Alcotest.(check (list string)) "urgent runs between b2 and b3"
    [ "b1"; "b2"; "u1"; "b3" ] (Channel.items order)

let test_eviction_on_expiry () =
  (* the fixed InK reaction: a charging delay longer than the event's
     expiry evicts the whole thread *)
  let device = Helpers.tiny_device ~usable_mj:1000. ~delay:(Time.of_sec 30) () in
  let nvm = Device.nvm device in
  let out = Channel.create nvm ~name:"out" ~bytes_per_item:1 ~capacity:8 in
  let mk tag = Helpers.simple_task ~name:tag ~body:(fun _ -> Channel.push out tag) () in
  let fragile =
    thread ~expiry:(Time.of_sec 2) "fragile" [ mk "f1"; mk "f2" ]
  in
  Device.schedule_failure device ~at:(Time.of_ms 50);
  let outcome = Ink.run device [ armed fragile ] in
  Alcotest.(check bool) "run completed" true (Helpers.completed outcome.Ink.stats);
  Alcotest.(check (list string)) "thread evicted" [ "fragile" ]
    outcome.Ink.evicted_threads;
  Alcotest.(check (list string)) "no partial output" [] (Channel.items out)

let test_no_eviction_when_fresh () =
  let device = Helpers.powered_device () in
  let fresh =
    thread ~expiry:(Time.of_sec 2) "fresh" [ Helpers.simple_task ~name:"a" () ]
  in
  let outcome = Ink.run device [ armed fresh ] in
  Alcotest.(check (list string)) "not evicted" [] outcome.Ink.evicted_threads;
  Alcotest.(check (list string)) "completed" [ "fresh" ]
    outcome.Ink.completed_threads

let test_idle_until_arrival () =
  let device = Helpers.powered_device () in
  let late = thread "late" [ Helpers.simple_task ~name:"a" () ] in
  let outcome = Ink.run device [ armed ~at:5_000 late ] in
  Alcotest.(check bool) "completed" true (Helpers.completed outcome.Ink.stats);
  (* idling costs time but no energy *)
  Alcotest.(check bool) "waited for the event" true
    Time.(outcome.Ink.stats.Stats.total_time >= Time.of_sec 5)

let test_intermittent_progress () =
  let device = Helpers.tiny_device ~usable_mj:1. ~delay:(Time.of_sec 10) () in
  (* 0.8 mJ per charge cannot power the full chain in one go *)
  let t =
    thread "chain"
      [
        Helpers.simple_task ~name:"a" ~ms:200 ~mw:2. ();
        Helpers.simple_task ~name:"b" ~ms:200 ~mw:2. ();
        Helpers.simple_task ~name:"c" ~ms:200 ~mw:2. ();
      ]
  in
  let outcome = Ink.run device [ armed t ] in
  Alcotest.(check bool) "completed across failures" true
    (Helpers.completed outcome.Ink.stats);
  Alcotest.(check bool) "failures happened" true
    (outcome.Ink.stats.Stats.power_failures > 0)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validate;
    Alcotest.test_case "priority scheduling" `Quick test_priority_scheduling;
    Alcotest.test_case "preemption at task boundaries" `Quick
      test_preemption_at_task_boundary;
    Alcotest.test_case "eviction on expiry" `Quick test_eviction_on_expiry;
    Alcotest.test_case "no eviction when fresh" `Quick test_no_eviction_when_fresh;
    Alcotest.test_case "idles until arrival" `Quick test_idle_until_arrival;
    Alcotest.test_case "progress across failures" `Quick test_intermittent_progress;
  ]
