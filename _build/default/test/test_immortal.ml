open Artemis

let make_thread nvm counters =
  let steps =
    Array.init (Array.length counters) (fun i () ->
        counters.(i) <- counters.(i) + 1)
  in
  Immortal.create nvm ~region:Nvm.Monitor ~name:"t" ~steps

let test_runs_each_step_once () =
  let nvm = Nvm.create () in
  let counters = Array.make 4 0 in
  let t = make_thread nvm counters in
  Immortal.run_to_completion t;
  Alcotest.(check (array int)) "each step once" [| 1; 1; 1; 1 |] counters;
  Alcotest.(check bool) "completed" true (Immortal.completed t)

let test_resume_after_interruption () =
  let nvm = Nvm.create () in
  let counters = Array.make 4 0 in
  let t = make_thread nvm counters in
  (* run two steps, then a power failure (pc persists in FRAM) *)
  ignore (Immortal.run_step t);
  ignore (Immortal.run_step t);
  Nvm.power_failure nvm;
  Alcotest.(check bool) "in progress after reboot" true (Immortal.in_progress t);
  Alcotest.(check int) "pc persisted" 2 (Immortal.pc t);
  Immortal.run_to_completion t;
  Alcotest.(check (array int)) "no step ran twice" [| 1; 1; 1; 1 |] counters

let test_reset_for_next_invocation () =
  let nvm = Nvm.create () in
  let counters = Array.make 2 0 in
  let t = make_thread nvm counters in
  Immortal.run_to_completion t;
  Immortal.reset t;
  Alcotest.(check bool) "fresh" true (Immortal.fresh t);
  Immortal.run_to_completion t;
  Alcotest.(check (array int)) "second invocation" [| 2; 2 |] counters

let test_progress_report () =
  let nvm = Nvm.create () in
  let counters = Array.make 2 0 in
  let t = make_thread nvm counters in
  (match Immortal.run_step t with
  | Immortal.Ran 0 -> ()
  | Immortal.Ran i -> Alcotest.failf "ran %d" i
  | Immortal.Done -> Alcotest.fail "done too early");
  ignore (Immortal.run_step t);
  match Immortal.run_step t with
  | Immortal.Done -> ()
  | Immortal.Ran _ -> Alcotest.fail "expected Done"

let test_empty_steps_rejected () =
  let nvm = Nvm.create () in
  Alcotest.check_raises "no steps" (Invalid_argument "Immortal.create: no steps")
    (fun () ->
      ignore (Immortal.create nvm ~region:Nvm.Monitor ~name:"e" ~steps:[||]))

(* Under arbitrary interruption points, every step still executes exactly
   once per invocation - the ImmortalThreads forward-progress guarantee. *)
let forward_progress_qcheck =
  QCheck.Test.make ~name:"exactly-once steps under random interruptions"
    ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.int_range 0 20) bool))
    (fun (n, interruptions) ->
      let nvm = Nvm.create () in
      let counters = Array.make n 0 in
      let t = make_thread nvm counters in
      let interruptions = ref interruptions in
      let next_interrupts () =
        match !interruptions with
        | [] -> false
        | b :: rest ->
            interruptions := rest;
            b
      in
      while not (Immortal.completed t) do
        if next_interrupts () then Nvm.power_failure nvm
        else ignore (Immortal.run_step t)
      done;
      Array.for_all (fun c -> c = 1) counters)

let suite =
  [
    Alcotest.test_case "each step runs once" `Quick test_runs_each_step_once;
    Alcotest.test_case "resume after interruption" `Quick
      test_resume_after_interruption;
    Alcotest.test_case "reset for next invocation" `Quick
      test_reset_for_next_invocation;
    Alcotest.test_case "progress reporting" `Quick test_progress_report;
    Alcotest.test_case "empty steps rejected" `Quick test_empty_steps_rejected;
    QCheck_alcotest.to_alcotest forward_progress_qcheck;
  ]
