open Artemis
module Interp = Fsm.Interp

(* Build a producer/consumer app: [produce] pushes one item per run into a
   channel, [consume] reads it.  Used across the runtime tests. *)
let make_produce_consume nvm =
  let ch = Channel.create nvm ~name:"items" ~bytes_per_item:4 ~capacity:16 in
  let produce =
    Helpers.simple_task ~name:"produce" ~ms:100 ~mw:2.
      ~body:(fun _ -> Channel.push ch 1)
      ()
  in
  let consume = Helpers.simple_task ~name:"consume" ~ms:50 ~mw:2. () in
  (Helpers.one_path_app [ produce; consume ], ch)

let empty_suite device = deploy device []

let test_completes_without_properties () =
  let device = Helpers.powered_device () in
  let app, ch = make_produce_consume (Device.nvm device) in
  let stats = Runtime.run device app (empty_suite device) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check (list int)) "body committed" [ 1 ] (Channel.items ch);
  Alcotest.(check int) "two tasks" 2 stats.Stats.task_completions;
  Alcotest.(check int) "no failures" 0 stats.Stats.power_failures

let test_event_order () =
  let device = Helpers.powered_device () in
  let app, _ = make_produce_consume (Device.nvm device) in
  ignore (Runtime.run device app (empty_suite device));
  let interesting = function
    | Event.Boot | Event.Task_started _ | Event.Task_completed _
    | Event.Path_started _ | Event.Path_completed _ | Event.App_completed ->
        true
    | _ -> false
  in
  let names =
    Log.events (Device.log device)
    |> List.filter (fun (e : Event.timed) -> interesting e.Event.event)
    |> List.map (fun (e : Event.timed) -> Event.to_string e.Event.event)
  in
  Alcotest.(check (list string)) "canonical order"
    [
      "boot";
      "path #1 started";
      "start produce (attempt 1)";
      "end produce";
      "start consume (attempt 1)";
      "end consume";
      "path #1 completed";
      "application completed";
    ]
    names

let test_task_atomicity_under_failure () =
  let device = Helpers.powered_device () in
  let app, ch = make_produce_consume (Device.nvm device) in
  (* interrupt produce mid-flight: its channel push must not be visible,
     and the task must re-execute from scratch *)
  Device.schedule_failure device ~at:(Time.of_ms 50);
  let stats = Runtime.run device app (empty_suite device) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check (list int)) "exactly one committed item" [ 1 ] (Channel.items ch);
  Alcotest.(check int) "one failure" 1 stats.Stats.power_failures;
  (* the produce task started twice (attempts 1 and 2) *)
  Alcotest.(check int) "two start events" 2
    (Log.task_attempts (Device.log device) ~task:"produce")

let test_max_tries_skips_doomed_task () =
  (* 3 mJ usable; transmit needs 3.12 mJ: can never complete *)
  let device = Helpers.tiny_device ~usable_mj:3. () in
  let nvm = Device.nvm device in
  let sample = Helpers.simple_task ~name:"sample" ~ms:50 ~mw:2. () in
  let transmit =
    Task.make ~name:"transmit" ~duration:(Time.of_ms 120) ~power:(Energy.mw 26.) ()
  in
  ignore nvm;
  let app = Helpers.one_path_app [ sample; transmit ] in
  let stats = Helpers.run_app device app "transmit: { maxTries: 3 onFail: skipPath; }" in
  Alcotest.(check bool) "completed despite doomed task" true (Helpers.completed stats);
  Alcotest.(check int) "three failed attempts" 3 stats.Stats.power_failures;
  Alcotest.(check int) "path skipped" 1 stats.Stats.path_skips;
  Alcotest.(check int) "transmit never completed" 0
    (Helpers.count_events device (function
      | Event.Task_completed { task = "transmit" } -> true
      | _ -> false))

let test_max_duration_spans_power_failures () =
  (* Section 4.1.3: the duration anchor is the first start attempt, so a
     charging delay inside the task trips maxDuration *)
  let device = Helpers.tiny_device ~usable_mj:100. ~delay:(Time.of_sec 30) () in
  let a = Helpers.simple_task ~name:"a" ~ms:100 ~mw:2. () in
  let b = Helpers.simple_task ~name:"b" ~ms:50 ~mw:2. () in
  let app = Helpers.one_path_app [ a; b ] in
  Device.schedule_failure device ~at:(Time.of_ms 50);
  let stats = Helpers.run_app device app "a: { maxDuration: 150ms onFail: skipTask; }" in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "a skipped, not completed" 0
    (Helpers.count_events device (function
      | Event.Task_completed { task = "a" } -> true
      | _ -> false));
  Alcotest.(check int) "b still ran" 1
    (Helpers.count_events device (function
      | Event.Task_completed { task = "b" } -> true
      | _ -> false));
  Alcotest.(check int) "skipTask action logged" 1
    (Helpers.count_events device (function
      | Event.Runtime_action { action = "skipTask"; task = "a" } -> true
      | _ -> false))

let test_collect_restart_until_enough () =
  let device = Helpers.powered_device () in
  let app, ch = make_produce_consume (Device.nvm device) in
  let stats =
    Helpers.run_app device app
      "consume: { collect: 3 dpTask: produce onFail: restartPath; }"
  in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "two restarts (at 1 and 2 items)" 2 stats.Stats.path_restarts;
  Alcotest.(check int) "produce ran three times" 3
    (Helpers.count_events device (function
      | Event.Task_completed { task = "produce" } -> true
      | _ -> false));
  Alcotest.(check (list int)) "three items committed" [ 1; 1; 1 ] (Channel.items ch)

let test_complete_path_suspends_monitoring () =
  let device = Helpers.powered_device () in
  let nvm = Device.nvm device in
  let reading = Nvm.cell nvm ~region:Nvm.Application ~name:"reading" ~bytes:4 99.0 in
  let sensor =
    Helpers.simple_task ~name:"sensor"
      ~monitored:[ ("reading", fun () -> Nvm.read reading) ]
      ()
  in
  (* the follow-up task has a doomed collect property: if monitoring were
     still active it would restart the path forever *)
  let act = Helpers.simple_task ~name:"act" ()
  and never = Helpers.simple_task ~name:"never" () in
  let app =
    Task.app ~name:"emergency"
      [
        { Task.index = 1; tasks = [ sensor; act ] };
        { Task.index = 2; tasks = [ never ] };
      ]
  in
  let spec =
    "sensor: { dpData: reading Range: [0, 50] onFail: completePath; }\n\
     act: { collect: 5 dpTask: sensor onFail: restartPath; }"
  in
  let config = { Runtime.default_config with max_loop_iterations = 500 } in
  let stats = Helpers.run_app ~config device app spec in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "monitoring suspended once" 1
    (Helpers.count_events device (function
      | Event.Monitoring_suspended { path = 1 } -> true
      | _ -> false));
  Alcotest.(check int) "no restarts: act ran unmonitored" 0 stats.Stats.path_restarts;
  (* monitoring resumes on path 2 *)
  Alcotest.(check int) "path 2 ran" 1
    (Helpers.count_events device (function
      | Event.Task_completed { task = "never" } -> true
      | _ -> false))

let test_restart_task_action () =
  let device = Helpers.powered_device () in
  let a = Helpers.simple_task ~name:"a" () in
  let app = Helpers.one_path_app [ a ] in
  (* a hand-written monitor that demands one re-execution of [a] *)
  let machine =
    Fsm.Parser.parse_machine_exn
      {|
machine redo {
  var done_once : bool = false;
  initial state S {
    on endTask(a) when (!done_once) { done_once := true; fail restartTask; };
  }
}
|}
  in
  let suite = deploy device [ machine ] in
  let stats = Runtime.run device app suite in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "a completed twice" 2
    (Helpers.count_events device (function
      | Event.Task_completed { task = "a" } -> true
      | _ -> false))

let test_skip_task_at_start () =
  let device = Helpers.powered_device () in
  let hit = ref false in
  let a = Helpers.simple_task ~name:"a" ~body:(fun _ -> hit := true) () in
  let app = Helpers.one_path_app [ a ] in
  let machine =
    Fsm.Parser.parse_machine_exn
      "machine veto { initial state S { on startTask(a) { fail skipTask; }; } }"
  in
  let stats = Runtime.run device app (deploy device [ machine ]) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check bool) "body never ran" false !hit

(* Exactly-once event delivery to monitors under random power failures:
   a counting monitor must agree with the trace log, whatever the
   interruption points (ImmortalThreads-style monitor resumption). *)
let exactly_once_qcheck =
  QCheck.Test.make ~name:"monitor sees each task completion exactly once"
    ~count:150
    QCheck.(list_of_size (QCheck.Gen.int_range 0 4) (int_range 0 400_000))
    (fun failure_times ->
      let device = Helpers.powered_device () in
      let app, _ = make_produce_consume (Device.nvm device) in
      List.iter
        (fun us -> Device.schedule_failure device ~at:(Time.of_us us))
        (List.sort_uniq compare failure_times);
      let machine =
        Fsm.Parser.parse_machine_exn
          {|
machine counter {
  persistent var n : int = 0;
  initial state S {
    on endTask(produce) { n := n + 1; };
  }
}
|}
      in
      let suite = deploy device [ machine ] in
      let stats = Runtime.run device app suite in
      let monitor = List.hd (Suite.monitors suite) in
      let seen =
        match Monitor.read_var monitor "n" with
        | Fsm.Ast.Vint n -> n
        | _ -> -1
      in
      let completions =
        Helpers.count_events device (function
          | Event.Task_completed { task = "produce" } -> true
          | _ -> false)
      in
      Helpers.completed stats && seen = completions)

let test_end_timestamp_fixed_across_failure () =
  (* Section 4.1.3: a power failure after task completion must not move
     the EndTask timestamp the monitor observes *)
  let device = Helpers.powered_device () in
  let a = Helpers.simple_task ~name:"a" ~ms:100 () in
  let app = Helpers.one_path_app [ a ] in
  let machine =
    Fsm.Parser.parse_machine_exn
      {|
machine stamp {
  persistent var last : time = 0us;
  initial state S {
    on endTask(a) { last := t; };
  }
}
|}
  in
  (* the end-phase runtime bookkeeping runs in [~100.7ms, ~101.1ms]:
     inject the failure there, after the commit but before the monitor *)
  Device.schedule_failure device ~at:(Time.of_us 100_900);
  let suite = deploy device [ machine ] in
  let stats = Runtime.run device app suite in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "the failure actually happened" 1 stats.Stats.power_failures;
  let monitor = List.hd (Suite.monitors suite) in
  match Monitor.read_var monitor "last" with
  | Fsm.Ast.Vtime t ->
      (* the 30 s charging delay must NOT be in the timestamp *)
      Alcotest.(check bool) "timestamp from before the failure" true
        Time.(t < Time.of_sec 1)
  | v -> Alcotest.failf "unexpected %s" (Fsm.Printer.value_to_string v)

let test_dnf_on_iteration_limit () =
  let device = Helpers.powered_device () in
  let a = Helpers.simple_task ~name:"a" () in
  let app = Helpers.one_path_app [ a ] in
  let machine =
    Fsm.Parser.parse_machine_exn
      "machine stubborn { initial state S { on endTask(a) { fail restartTask; }; } }"
  in
  let config = { Runtime.default_config with max_loop_iterations = 50 } in
  let stats = Runtime.run ~config device app (deploy device [ machine ]) in
  match stats.Stats.outcome with
  | Stats.Did_not_finish reason ->
      Alcotest.(check string) "reason" "iteration limit (no progress)" reason
  | Stats.Completed -> Alcotest.fail "expected non-termination"

let test_dnf_on_starvation () =
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 1.) ~on_threshold:(Energy.mj 0.9)
      ~off_threshold:(Energy.mj 0.1) ()
  in
  let device =
    Device.create ~capacitor
      ~policy:(Charging_policy.From_harvester (Harvester.Constant (Energy.uw 0.)))
      ()
  in
  let a = Helpers.simple_task ~name:"a" ~ms:1000 ~mw:5. () in
  let app = Helpers.one_path_app [ a ] in
  let stats = Runtime.run device app (empty_suite device) in
  match stats.Stats.outcome with
  | Stats.Did_not_finish _ -> ()
  | Stats.Completed -> Alcotest.fail "expected starvation DNF"

let test_invalid_app_rejected () =
  let device = Helpers.powered_device () in
  let app = Task.app ~name:"broken" [] in
  match Runtime.run device app (empty_suite device) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty app accepted"

let test_runtime_fram_accounted () =
  let device = Helpers.powered_device () in
  let app, _ = make_produce_consume (Device.nvm device) in
  ignore (Runtime.run device app (empty_suite device));
  Alcotest.(check bool) "runtime cells accounted" true
    (Runtime.runtime_fram_bytes device > 0)

let suite =
  [
    Alcotest.test_case "completes without properties" `Quick
      test_completes_without_properties;
    Alcotest.test_case "canonical event order" `Quick test_event_order;
    Alcotest.test_case "task atomicity under failure" `Quick
      test_task_atomicity_under_failure;
    Alcotest.test_case "maxTries skips a doomed task" `Quick
      test_max_tries_skips_doomed_task;
    Alcotest.test_case "maxDuration spans power failures (4.1.3)" `Quick
      test_max_duration_spans_power_failures;
    Alcotest.test_case "collect restarts until enough data" `Quick
      test_collect_restart_until_enough;
    Alcotest.test_case "completePath suspends monitoring" `Quick
      test_complete_path_suspends_monitoring;
    Alcotest.test_case "restartTask re-executes" `Quick test_restart_task_action;
    Alcotest.test_case "skipTask at start vetoes the body" `Quick
      test_skip_task_at_start;
    QCheck_alcotest.to_alcotest exactly_once_qcheck;
    Alcotest.test_case "EndTask timestamp fixed across failures (4.1.3)" `Quick
      test_end_timestamp_fixed_across_failure;
    Alcotest.test_case "DNF on iteration limit" `Quick test_dnf_on_iteration_limit;
    Alcotest.test_case "DNF on starvation" `Quick test_dnf_on_starvation;
    Alcotest.test_case "invalid app rejected" `Quick test_invalid_app_rejected;
    Alcotest.test_case "runtime FRAM accounted" `Quick test_runtime_fram_accounted;
  ]
