open Artemis

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_contains c fragments =
  List.iter
    (fun fragment ->
      if not (contains c fragment) then
        Alcotest.failf "generated C lacks %S" fragment)
    fragments

let benchmark_machines () =
  To_fsm.spec (Spec.Parser.parse_exn Health_app.spec_text)

let test_machine_shape () =
  let m =
    To_fsm.property ~task:"accel" ~name:"maxTries_accel"
      (Spec.Ast.Max_tries { n = 10; on_fail = Spec.Ast.Skip_path; path = None })
  in
  let c = To_c.machine m in
  check_contains c
    [
      "typedef enum";
      "MAXTRIES_ACCEL_S_NOTSTARTED = 0";
      "MAXTRIES_ACCEL_S_STARTED = 1";
      "__fram maxTries_accel_state_t maxTries_accel_state";
      "int32_t i;";
      "static void maxTries_accel_step(const MonitorEvent_t *e, MonitorResult_t *r)";
      "e->kind == EVENT_START_TASK && artemis_task_is(e, \"accel\")";
      "(maxTries_accel_vars.i >= 10)";
      "monitor_report(r, ACTION_SKIP_PATH, 0);";
      "implicit self-transition";
    ]

let test_time_and_float_literals () =
  let m =
    To_fsm.property ~task:"send" ~name:"maxDuration_send"
      (Spec.Ast.Max_duration
         { limit = Time.of_ms 100; on_fail = Spec.Ast.Skip_task; path = None })
  in
  check_contains (To_c.machine m) [ "100000ULL"; "uint64_t start;" ];
  let d =
    To_fsm.property ~task:"calcAvg" ~name:"dpData_calcAvg"
      (Spec.Ast.Dp_data
         { var = "avgTemp"; low = 36.; high = 38.; on_fail = Spec.Ast.Complete_path; path = None })
  in
  check_contains (To_c.machine d)
    [ "36.000000f"; "e->depData[0] /* avgTemp */"; "ACTION_COMPLETE_PATH" ]

let test_persistent_vars_in_reinit () =
  let m =
    To_fsm.property ~task:"send" ~name:"MITD_send_accel"
      (Spec.Ast.Mitd
         {
           limit = Time.of_min 5;
           dp_task = "accel";
           on_fail = Spec.Ast.Restart_path;
           max_attempt = Some { Spec.Ast.attempts = 3; exhausted = Spec.Ast.Skip_path };
           path = Some 2;
         })
  in
  let c = To_c.machine m in
  check_contains c
    [
      "int32_t attempts; /* persistent across path restart */";
      "static void MITD_send_accel_reinit(void)";
      "MITD_send_accel_vars.endB = 0ULL;";
      "monitor_report(r, ACTION_SKIP_PATH, 2);";
      "e->path == 2";
    ];
  (* reinit must NOT reset the persistent attempt counter *)
  let marker = "static void MITD_send_accel_reinit(void)" in
  let after_reinit =
    let rec find i =
      if i + String.length marker > String.length c then
        Alcotest.fail "reinit not found"
      else if String.equal (String.sub c i (String.length marker)) marker then
        String.sub c i (String.length c - i)
      else find (i + 1)
    in
    find 0
  in
  let reinit_body =
    String.sub after_reinit 0
      (match String.index_opt after_reinit '}' with
      | Some i -> i
      | None -> String.length after_reinit)
  in
  if contains reinit_body "attempts =" then
    Alcotest.fail "reinit must preserve the persistent attempts counter"

let test_suite_interface () =
  let c = To_c.suite (benchmark_machines ()) in
  check_contains c
    [
      "MonitorResult_t callMonitor(MonitorEvent_t e)";
      "MonitorResult_t monitorFinalize(void)";
      "void resetMonitor(void)";
      "void monitor_reinit_for_path_restart(void)";
      "__fram uint8_t monitor_pc";
      "_begin();";
      "_end();";
      "maxTries_accel_step(&monitor_event, &monitor_result);";
      "MITD_send_accel_step(&monitor_event, &monitor_result);";
    ]

let test_text_estimate_and_fram () =
  let machines = benchmark_machines () in
  let c = To_c.suite machines in
  let text = To_c.estimated_text_bytes c in
  Alcotest.(check bool) "plausible .text" true (text > 1_000 && text < 100_000);
  (* fram accounting: 2 bytes of state + per-variable sizes *)
  let mitd = List.find (fun m -> m.Fsm.Ast.machine_name = "MITD_send_accel") machines in
  Alcotest.(check int) "MITD fram = 2 + 8 (endB) + 4 (attempts)" 14
    (To_c.fram_bytes mitd)

let test_energy_primitive () =
  let m =
    Fsm.Parser.parse_machine_exn
      {|
machine guard {
  initial state S {
    on startTask(tx) when (energyLevel < 3.4) { fail skipTask; };
  }
}
|}
  in
  check_contains (To_c.machine m) [ "artemis_energy_level_mj()" ]

let suite =
  [
    Alcotest.test_case "machine shape" `Quick test_machine_shape;
    Alcotest.test_case "literals" `Quick test_time_and_float_literals;
    Alcotest.test_case "persistent vars preserved by reinit" `Quick
      test_persistent_vars_in_reinit;
    Alcotest.test_case "suite interface" `Quick test_suite_interface;
    Alcotest.test_case ".text estimate and FRAM accounting" `Quick
      test_text_estimate_and_fram;
    Alcotest.test_case "energyLevel primitive" `Quick test_energy_primitive;
  ]
