open Artemis

let checkf = Alcotest.(check (float 1e-9))

let test_units () =
  checkf "mj" 1_000. (Energy.to_uj (Energy.mj 1.));
  checkf "mw" 1_000. (Energy.to_uw (Energy.mw 1.));
  checkf "to_mj" 2.5 (Energy.to_mj (Energy.uj 2_500.))

let test_consumed () =
  (* 1 mW for 1 s = 1 mJ *)
  checkf "1mW x 1s" 1_000.
    (Energy.to_uj (Energy.consumed (Energy.mw 1.) (Time.of_sec 1)));
  checkf "zero duration" 0.
    (Energy.to_uj (Energy.consumed (Energy.mw 5.) Time.zero))

let test_time_to_consume () =
  Alcotest.check Helpers.time "1mJ at 1mW takes 1s" (Time.of_sec 1)
    (Energy.time_to_consume (Energy.mw 1.) (Energy.mj 1.));
  Alcotest.check_raises "non-positive power rejected"
    (Invalid_argument "Energy.time_to_consume: non-positive power") (fun () ->
      ignore (Energy.time_to_consume (Energy.uw 0.) (Energy.mj 1.)))

let test_sub_clamps () =
  checkf "clamped at zero" 0.
    (Energy.to_uj (Energy.sub (Energy.uj 1.) (Energy.uj 5.)));
  checkf "exact sub goes negative" (-4.)
    (Energy.to_uj (Energy.sub_exact (Energy.uj 1.) (Energy.uj 5.)))

let consume_roundtrip =
  QCheck.Test.make ~name:"time_to_consume inverts consumed" ~count:300
    QCheck.(pair (float_range 0.1 1000.) (int_range 1 100_000_000))
    (fun (mw, us) ->
      let p = Energy.mw mw in
      let dt = Time.of_us us in
      let e = Energy.consumed p dt in
      let dt' = Energy.time_to_consume p e in
      abs (Time.to_us dt' - us) <= 1)

let suite =
  [
    Alcotest.test_case "unit conversions" `Quick test_units;
    Alcotest.test_case "consumed" `Quick test_consumed;
    Alcotest.test_case "time_to_consume" `Quick test_time_to_consume;
    Alcotest.test_case "sub clamps, sub_exact does not" `Quick test_sub_clamps;
    QCheck_alcotest.to_alcotest consume_roundtrip;
  ]
