open Artemis

let build ?dryness_base () =
  let device = Helpers.tiny_device ~usable_mj:60. ~delay:(Time.of_sec 20) () in
  let app, handles = Soil_app.make ?dryness_base (Device.nvm device) in
  (device, app, handles)

let test_shape_and_spec () =
  let _, app, _ = build () in
  Alcotest.(check bool) "valid app" true (Task.validate app = Ok ());
  Alcotest.(check int) "three paths" 3 (Task.path_count app);
  let spec = Spec.Parser.parse_exn Soil_app.spec_text in
  (match Spec.Validate.check app spec with
  | Ok () -> ()
  | Error issues -> Alcotest.fail (Spec.Validate.issues_to_string issues));
  (* no static inconsistencies either *)
  match Spec.Consistency.check app spec |> Spec.Consistency.errors with
  | [] -> ()
  | findings -> Alcotest.fail (Spec.Consistency.to_string findings)

let test_nominal_run () =
  let device, app, handles = build () in
  let suite = compile_and_deploy_exn device app Soil_app.spec_text in
  let stats = Runtime.run device app suite in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  (* collect 5: five moisture samples before the aggregate passes *)
  Alcotest.(check int) "five samples" 5 (Channel.length handles.Soil_app.moisture_samples);
  Alcotest.(check int) "four path-1 restarts" 4
    (Helpers.count_events device (function
      | Event.Path_restarted { path = 1; _ } -> true
      | _ -> false));
  (* both uplink instances delivered, irrigation not triggered *)
  Alcotest.(check int) "two uplinks" 2 (handles.Soil_app.uplinks ());
  Alcotest.(check int) "one actuation" 1 (handles.Soil_app.actuations ());
  Alcotest.(check bool) "dryness healthy" true (handles.Soil_app.read_dryness () < 0.55)

let test_dry_spell_emergency () =
  (* out-of-range dryness: completePath rushes actuation through without
     the minEnergy/maxTries checks *)
  let device, app, handles = build ~dryness_base:0.7 () in
  let suite = compile_and_deploy_exn device app Soil_app.spec_text in
  let stats = Runtime.run device app suite in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "monitoring suspended on path 3" 1
    (Helpers.count_events device (function
      | Event.Monitoring_suspended { path = 3 } -> true
      | _ -> false));
  Alcotest.(check int) "actuated" 1 (handles.Soil_app.actuations ())

let test_low_energy_skips_actuator () =
  (* a 4 mJ budget: everything small runs, but the 7.9 mJ actuator is
     vetoed pre-execution by minEnergy instead of brown-out looping *)
  let device = Helpers.tiny_device ~usable_mj:4. ~delay:(Time.of_sec 20) () in
  let app, handles = Soil_app.make (Device.nvm device) in
  let suite = compile_and_deploy_exn device app Soil_app.spec_text in
  let stats = Runtime.run device app suite in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "actuator skipped" 0 (handles.Soil_app.actuations ());
  Alcotest.(check bool) "minEnergy verdicts observed" true
    (Helpers.count_events device (function
       | Event.Monitor_verdict { monitor = "minEnergy_actuate"; _ } -> true
       | _ -> false)
    > 0)

let test_stale_uplink_bounded () =
  (* a long outage between aggregate and uplink: MITD restarts path 1 up
     to maxAttempt times, then skips - never loops *)
  let device = Helpers.tiny_device ~usable_mj:60. ~delay:(Time.of_min 5) () in
  let app, _ = Soil_app.make (Device.nvm device) in
  (* fail in the gap right after aggregate completes on the final pass *)
  let suite = compile_and_deploy_exn device app Soil_app.spec_text in
  Device.schedule_failure device ~at:(Time.of_sec 3);
  let stats = Runtime.run device app suite in
  Alcotest.(check bool) "still completes" true (Helpers.completed stats)

let suite =
  [
    Alcotest.test_case "shape, validation, consistency" `Quick test_shape_and_spec;
    Alcotest.test_case "nominal run" `Quick test_nominal_run;
    Alcotest.test_case "dry-spell emergency (completePath)" `Quick
      test_dry_spell_emergency;
    Alcotest.test_case "low energy skips the actuator" `Quick
      test_low_energy_skips_actuator;
    Alcotest.test_case "stale uplink bounded by maxAttempt" `Quick
      test_stale_uplink_bounded;
  ]
