open Artemis
module E = Fsm.Explore
module F = Fsm.Ast

let compile property ~task =
  To_fsm.property ~task ~name:"m" property

let int_var snapshot name =
  match List.assoc_opt name snapshot.E.vars with
  | Some (F.Vint n) -> n
  | _ -> Alcotest.failf "variable %s not an int" name

let test_alphabet_shape () =
  let m =
    compile
      (Spec.Ast.Max_duration
         { limit = Time.of_ms 100; on_fail = Spec.Ast.Skip_task; path = None })
      ~task:"a"
  in
  let alphabet = E.default_alphabet m in
  (* tasks {a, other__} x kinds {Start, End} x times {0, 100ms, 101ms} x path {0} *)
  Alcotest.(check int) "alphabet size" 12 (List.length alphabet);
  Alcotest.(check bool) "timestamps straddle the limit" true
    (List.exists (fun (e : Fsm.Interp.event) -> Time.equal e.Fsm.Interp.timestamp (Time.of_us 101_000)) alphabet)

let test_max_tries_counter_bounded () =
  let m =
    compile (Spec.Ast.Max_tries { n = 3; on_fail = Spec.Ast.Skip_path; path = None })
      ~task:"a"
  in
  (* exhaustive up to depth 5: 0 <= i <= 3, always *)
  match
    E.check ~depth:5
      ~invariant:(fun s ->
        let i = int_var s "i" in
        i >= 0 && i <= 3)
      m
  with
  | Ok steps -> Alcotest.(check bool) "explored something" true (steps > 1_000)
  | Error v -> Alcotest.failf "violated: %s" v.E.message

let test_collect_counter_nonnegative () =
  let m =
    compile
      (Spec.Ast.Collect
         { n = 2; dp_task = "b"; on_fail = Spec.Ast.Restart_path; path = None })
      ~task:"a"
  in
  match
    E.check ~depth:5 ~invariant:(fun s -> int_var s "i" >= 0) m
  with
  | Ok _ -> ()
  | Error v -> Alcotest.failf "violated: %s" v.E.message

let test_finds_seeded_invariant_violation () =
  (* sanity: the checker does find violations when they exist *)
  let m =
    Fsm.Parser.parse_machine_exn
      {|
machine grows {
  var i : int = 0;
  initial state S {
    on startTask(a) { i := i + 1; };
  }
}
|}
  in
  match E.check ~depth:4 ~invariant:(fun s -> int_var s "i" < 3) m with
  | Ok _ -> Alcotest.fail "expected a violation at i = 3"
  | Error v ->
      Alcotest.(check int) "shortest counterexample has 3 events" 3
        (List.length v.E.trace);
      Alcotest.(check string) "message" "invariant violated" v.E.message

let test_finds_runtime_errors () =
  (* a machine reading data(x) on an event that carries none would crash
     at runtime; the default alphabet carries the payload, so seed the
     crash with division instead *)
  let m =
    Fsm.Parser.parse_machine_exn
      {|
machine crash {
  var z : int = 0;
  initial state S {
    on startTask(a) { z := 1 / z; };
  }
}
|}
  in
  match E.check ~depth:2 m with
  | Ok _ -> Alcotest.fail "expected a runtime error"
  | Error v ->
      Alcotest.(check string) "division detected" "integer division by zero"
        v.E.message

let test_reachable_states () =
  let m =
    compile
      (Spec.Ast.Mitd
         {
           limit = Time.of_sec 2;
           dp_task = "b";
           on_fail = Spec.Ast.Restart_path;
           max_attempt = None;
           path = None;
         })
      ~task:"a"
  in
  Alcotest.(check (list string)) "both MITD states reachable"
    [ "WaitEndB"; "WaitStartA" ]
    (E.reachable_states ~depth:3 m)

let test_benchmark_machines_safe () =
  (* every benchmark monitor is exhaustively safe up to the bound: no
     runtime errors on any event sequence *)
  let machines = To_fsm.spec (Spec.Parser.parse_exn Health_app.spec_text) in
  List.iter
    (fun m ->
      match E.check ~depth:3 m with
      | Ok _ -> ()
      | Error v ->
          Alcotest.failf "machine %s: %s" m.F.machine_name v.E.message)
    machines

let suite =
  [
    Alcotest.test_case "alphabet derivation" `Quick test_alphabet_shape;
    Alcotest.test_case "maxTries counter bounded (exhaustive)" `Quick
      test_max_tries_counter_bounded;
    Alcotest.test_case "collect counter non-negative (exhaustive)" `Quick
      test_collect_counter_nonnegative;
    Alcotest.test_case "finds seeded violations" `Quick
      test_finds_seeded_invariant_violation;
    Alcotest.test_case "finds runtime errors" `Quick test_finds_runtime_errors;
    Alcotest.test_case "reachable states" `Quick test_reachable_states;
    Alcotest.test_case "benchmark machines safe up to bound" `Slow
      test_benchmark_machines_safe;
  ]
