open Artemis

let send = Helpers.simple_task ~name:"send" ()
let reading = ref 0.

let app () =
  let sensor =
    Helpers.simple_task ~name:"sensor"
      ~monitored:[ ("reading", fun () -> !reading) ]
      ()
  in
  Task.app ~name:"app"
    [
      { Task.index = 1; tasks = [ sensor; send ] };
      { Task.index = 2; tasks = [ Helpers.simple_task ~name:"other" (); send ] };
    ]

let check_ok spec_text =
  match Spec.Validate.check (app ()) (Spec.Parser.parse_exn spec_text) with
  | Ok () -> ()
  | Error issues -> Alcotest.fail (Spec.Validate.issues_to_string issues)

let check_issue fragment spec_text =
  match Spec.Validate.check (app ()) (Spec.Parser.parse_exn spec_text) with
  | Ok () -> Alcotest.failf "expected an issue mentioning %S" fragment
  | Error issues ->
      let joined = Spec.Validate.issues_to_string issues in
      let contains sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length joined && (String.sub joined i n = sub || go (i + 1))
        in
        go 0
      in
      if not (contains fragment) then
        Alcotest.failf "issues %S do not mention %S" joined fragment

let test_accepts_good_specs () =
  check_ok "sensor: { maxTries: 3 onFail: skipPath; }";
  check_ok "send: { maxTries: 3 onFail: skipPath Path: 2; }";
  check_ok "send: { collect: 1 dpTask: sensor onFail: restartPath Path: 1; }";
  check_ok "sensor: { dpData: reading Range: [0, 10] onFail: completePath; }";
  (* non-escaping actions need no Path even on merged tasks *)
  check_ok "send: { maxDuration: 10ms onFail: skipTask; }"

let test_rejects_unknown_names () =
  check_issue "not in the application" "ghost: { maxTries: 1 onFail: skipPath; }";
  check_issue "dpTask \"ghost\""
    "sensor: { collect: 1 dpTask: ghost onFail: restartPath; }";
  check_issue "Path 9 does not exist"
    "sensor: { maxTries: 1 onFail: skipPath Path: 9; }";
  check_issue "not on path 2" "sensor: { maxTries: 1 onFail: skipPath Path: 2; }"

let test_rejects_ambiguous_path_merge () =
  (* send lies on two paths: a cross-task property with a path-escaping
     action needs an explicit Path; self properties do not (their
     restart/skip targets the current path) *)
  check_issue "path merging"
    "send: { collect: 1 dpTask: sensor onFail: restartPath; }";
  check_issue "path merging"
    "send: { MITD: 1min dpTask: sensor onFail: restartTask maxAttempt: 2 onFail: restartPath; }";
  check_ok "send: { maxTries: 2 onFail: skipPath; }"

let test_rejects_duplicate_blocks () =
  check_issue "duplicate task block"
    "sensor: { maxTries: 1 onFail: skipTask; }\nsensor: { maxTries: 2 onFail: skipTask; }"

let test_rejects_unmonitored_dp_data () =
  check_issue "not monitored"
    "send: { dpData: reading Range: [0, 1] onFail: skipTask; }"

let suite =
  [
    Alcotest.test_case "accepts good specs" `Quick test_accepts_good_specs;
    Alcotest.test_case "unknown names" `Quick test_rejects_unknown_names;
    Alcotest.test_case "ambiguous path merging" `Quick
      test_rejects_ambiguous_path_merge;
    Alcotest.test_case "duplicate blocks" `Quick test_rejects_duplicate_blocks;
    Alcotest.test_case "unmonitored dpData variable" `Quick
      test_rejects_unmonitored_dp_data;
  ]
