module Clock = Artemis.Persistent_clock
open Artemis

let test_advances () =
  let c = Clock.create ~granularity:(Time.of_us 1) () in
  Clock.advance c (Time.of_ms 5);
  Clock.advance c (Time.of_ms 7);
  Alcotest.check Helpers.time "sum" (Time.of_ms 12) (Clock.now c)

let test_persists_across_reboots () =
  let c = Clock.create ~granularity:(Time.of_us 1) () in
  Clock.advance c (Time.of_min 3);
  Clock.record_reboot c;
  Clock.advance c (Time.of_min 2);
  Alcotest.check Helpers.time "keeps counting across off-time" (Time.of_min 5)
    (Clock.now c);
  Alcotest.(check int) "reboot counted" 1 (Clock.reboots c)

let test_granularity () =
  let c = Clock.create ~granularity:(Time.of_ms 1) () in
  Clock.advance c (Time.of_us 2_700);
  Alcotest.check Helpers.time "quantized down" (Time.of_ms 2) (Clock.now c);
  Alcotest.check Helpers.time "ground truth exact" (Time.of_us 2_700)
    (Clock.elapsed_ground_truth c)

let test_drift () =
  let c = Clock.create ~granularity:(Time.of_us 1) ~drift_ppm:100 () in
  Clock.advance c (Time.of_sec 10);
  (* 100 ppm over 10 s = 1 ms fast *)
  Alcotest.check Helpers.time "drifted" (Time.of_us 10_001_000) (Clock.now c)

let test_bad_arguments () =
  Alcotest.check_raises "zero granularity"
    (Invalid_argument "Persistent_clock.create: non-positive granularity")
    (fun () -> ignore (Clock.create ~granularity:Time.zero ()));
  let c = Clock.create () in
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Persistent_clock.advance: negative duration") (fun () ->
      Clock.advance c (Time.of_us (-1)))

let monotone_qcheck =
  QCheck.Test.make ~name:"clock reads are monotone" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (int_range 0 1_000_000))
    (fun steps ->
      let c = Clock.create () in
      let rec go last = function
        | [] -> true
        | s :: rest ->
            Clock.advance c (Time.of_us s);
            let now = Clock.now c in
            Time.(last <= now) && go now rest
      in
      go Time.zero steps)

let suite =
  [
    Alcotest.test_case "advances" `Quick test_advances;
    Alcotest.test_case "persistent across reboots" `Quick
      test_persists_across_reboots;
    Alcotest.test_case "read granularity" `Quick test_granularity;
    Alcotest.test_case "static drift" `Quick test_drift;
    Alcotest.test_case "argument validation" `Quick test_bad_arguments;
    QCheck_alcotest.to_alcotest monotone_qcheck;
  ]
