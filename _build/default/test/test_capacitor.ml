open Artemis

let mj = Energy.mj
let checkf msg expected got = Alcotest.(check (float 1e-6)) msg expected got

let cap ?initial () =
  Capacitor.create ~capacity:(mj 10.) ~on_threshold:(mj 9.) ~off_threshold:(mj 1.)
    ?initial ()

let test_create_validation () =
  Alcotest.check_raises "off >= on"
    (Invalid_argument "Capacitor.create: need off < on <= capacity") (fun () ->
      ignore
        (Capacitor.create ~capacity:(mj 10.) ~on_threshold:(mj 1.)
           ~off_threshold:(mj 2.) ()));
  Alcotest.check_raises "initial above capacity"
    (Invalid_argument "Capacitor.create: initial level out of range") (fun () ->
      ignore (cap ~initial:(mj 11.) ()))

let test_drain_within_budget () =
  let c = cap () in
  checkf "usable budget" 9. (Energy.to_mj (Capacitor.usable_budget c));
  (match Capacitor.drain c (mj 4.) with
  | Capacitor.Drained -> ()
  | Capacitor.Depleted _ -> Alcotest.fail "unexpected depletion");
  checkf "level dropped" 6. (Energy.to_mj (Capacitor.level c))

let test_drain_depletes () =
  let c = cap () in
  (match Capacitor.drain c (mj 20.) with
  | Capacitor.Depleted drawn -> checkf "drew the usable part" 9. (Energy.to_mj drawn)
  | Capacitor.Drained -> Alcotest.fail "expected depletion");
  checkf "stuck at off threshold" 1. (Energy.to_mj (Capacitor.level c));
  Alcotest.(check bool) "cannot turn on" false (Capacitor.can_turn_on c);
  checkf "deficit" 8. (Energy.to_mj (Capacitor.deficit_to_turn_on c))

let test_charge_clamps () =
  let c = cap ~initial:(mj 2.) () in
  Capacitor.charge c (mj 100.);
  checkf "clamped at capacity" 10. (Energy.to_mj (Capacitor.level c));
  Alcotest.(check bool) "can turn on" true (Capacitor.can_turn_on c);
  checkf "no deficit" 0. (Energy.to_mj (Capacitor.deficit_to_turn_on c))

let level_invariant =
  QCheck.Test.make ~name:"level stays within [off, capacity]" ~count:300
    QCheck.(list (pair bool (float_range 0. 20.)))
    (fun ops ->
      let c = cap () in
      List.for_all
        (fun (charge, amount) ->
          if charge then Capacitor.charge c (mj amount)
          else ignore (Capacitor.drain c (mj amount));
          let level = Energy.to_mj (Capacitor.level c) in
          level >= 1. -. 1e-9 && level <= 10. +. 1e-9)
        ops)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "drain within budget" `Quick test_drain_within_budget;
    Alcotest.test_case "drain depletes at off threshold" `Quick
      test_drain_depletes;
    Alcotest.test_case "charge clamps at capacity" `Quick test_charge_clamps;
    QCheck_alcotest.to_alcotest level_invariant;
  ]
