(* Focused tests of the runtime's action application and arbitration. *)

open Artemis

let machine text = Fsm.Parser.parse_machine_exn text

let test_concurrent_failures_arbitrated () =
  (* two monitors fail on the same event; the runtime must apply exactly
     one action, the most severe (restartPath > skipTask) *)
  let device = Helpers.powered_device () in
  let a = Helpers.simple_task ~name:"a" () in
  let b = Helpers.simple_task ~name:"b" () in
  let app = Helpers.one_path_app [ a; b ] in
  let mild =
    machine
      {|
machine mild {
  persistent var done_once : bool = false;
  initial state S {
    on endTask(a) when (!done_once) { done_once := true; fail skipTask; };
  }
}
|}
  in
  let severe =
    machine
      {|
machine severe {
  persistent var done_once : bool = false;
  initial state S {
    on endTask(a) when (!done_once) { done_once := true; fail restartPath; };
  }
}
|}
  in
  let stats = Runtime.run device app (deploy device [ mild; severe ]) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  (* both verdicts logged, one action taken *)
  Alcotest.(check int) "two verdicts" 2
    (Helpers.count_events device (function
      | Event.Monitor_verdict _ -> true
      | _ -> false));
  Alcotest.(check (list string)) "the severe action won" [ "restartPath" ]
    (List.map fst (Summary.actions_by_kind (Device.log device)));
  Alcotest.(check int) "path restarted once" 1 stats.Stats.path_restarts

let two_path_app () =
  let a = Helpers.simple_task ~name:"a" () in
  let b = Helpers.simple_task ~name:"b" () in
  Task.app ~name:"two"
    [ { Task.index = 1; tasks = [ a ] }; { Task.index = 2; tasks = [ b ] } ]

let test_restart_path_with_explicit_target () =
  (* a monitor on path 2 demands a re-run of path 1 *)
  let device = Helpers.powered_device () in
  let app = two_path_app () in
  let jump =
    machine
      {|
machine jump {
  persistent var done_once : bool = false;
  initial state S {
    on endTask(b) when (!done_once) { done_once := true; fail restartPath Path 1; };
  }
}
|}
  in
  let stats = Runtime.run device app (deploy device [ jump ]) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  let completions task =
    Helpers.count_events device (function
      | Event.Task_completed { task = t } -> String.equal t task
      | _ -> false)
  in
  Alcotest.(check int) "a re-ran via the jump" 2 (completions "a");
  Alcotest.(check int) "b ran twice (path 2 re-reached)" 2 (completions "b");
  Alcotest.(check int) "restart targeted path 1" 1
    (Helpers.count_events device (function
      | Event.Path_restarted { path = 1; _ } -> true
      | _ -> false))

let test_skip_path_moves_past_target () =
  let device = Helpers.powered_device () in
  let app = two_path_app () in
  let veto =
    machine
      "machine veto { initial state S { on startTask(a) { fail skipPath; }; } }"
  in
  let stats = Runtime.run device app (deploy device [ veto ]) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "a never ran" 0
    (Helpers.count_events device (function
      | Event.Task_completed { task = "a" } -> true
      | _ -> false));
  Alcotest.(check int) "b still ran" 1
    (Helpers.count_events device (function
      | Event.Task_completed { task = "b" } -> true
      | _ -> false))

let test_complete_path_at_start_event () =
  (* completePath raised at a task's start: the task itself still runs,
     and the rest of the path runs unmonitored *)
  let device = Helpers.powered_device () in
  let ran = ref [] in
  let mk name =
    Helpers.simple_task ~name ~body:(fun _ -> ran := name :: !ran) ()
  in
  let app = Helpers.one_path_app [ mk "first"; mk "second" ] in
  let emergency =
    machine
      "machine emergency { initial state S { on startTask(first) { fail completePath; }; } }"
  in
  let veto_second =
    machine
      "machine veto { initial state S { on startTask(second) { fail skipTask; }; } }"
  in
  let stats = Runtime.run device app (deploy device [ emergency; veto_second ]) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  (* with monitoring suspended, veto_second never got the chance to skip *)
  Alcotest.(check (list string)) "both bodies ran" [ "first"; "second" ]
    (List.rev !ran);
  Alcotest.(check int) "suspension logged" 1
    (Helpers.count_events device (function
      | Event.Monitoring_suspended _ -> true
      | _ -> false))

let test_deployments_same_verdicts () =
  (* the three monitor deployments only change costs, never decisions *)
  let run deployment =
    let device = Helpers.powered_device () in
    let a = Helpers.simple_task ~name:"a" () in
    let app = Helpers.one_path_app [ a ] in
    let m =
      machine
        {|
machine redo {
  var done_once : bool = false;
  initial state S {
    on endTask(a) when (!done_once) { done_once := true; fail restartTask; };
  }
}
|}
    in
    let config = { Runtime.default_config with deployment } in
    let stats = Runtime.run ~config device app (deploy device [ m ]) in
    (Helpers.completed stats, stats.Stats.task_completions)
  in
  let expected = (true, 2) in
  Alcotest.(check (pair bool int)) "separate" expected (run Runtime.Separate_module);
  Alcotest.(check (pair bool int)) "inlined" expected (run Runtime.Inlined);
  Alcotest.(check (pair bool int)) "external" expected
    (run Runtime.default_external_wireless)

let test_reactive_rounds () =
  let device = Helpers.powered_device () in
  let a = Helpers.simple_task ~name:"a" () in
  let b = Helpers.simple_task ~name:"b" () in
  let app = Helpers.one_path_app [ a; b ] in
  let config = { Runtime.default_config with rounds = 3 } in
  let stats = Runtime.run ~config device app (deploy device []) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "three passes of two tasks" 6 stats.Stats.task_completions;
  Alcotest.(check int) "two intermediate round marks" 2
    (Helpers.count_events device (function
      | Event.Round_completed _ -> true
      | _ -> false));
  Alcotest.(check int) "one final completion" 1
    (Helpers.count_events device (function
      | Event.App_completed -> true
      | _ -> false))

let test_period_spans_rounds () =
  (* periodicity is anchored across reactive rounds: a slow task breaks
     its own period on the next round's start *)
  let device = Helpers.powered_device () in
  let slow = Helpers.simple_task ~name:"slow" ~ms:1500 () in
  let app = Helpers.one_path_app [ slow ] in
  let suite_ = compile_and_deploy_exn device app "slow: { period: 1s onFail: restartTask; }" in
  let config = { Runtime.default_config with rounds = 3 } in
  let stats = Runtime.run ~config device app suite_ in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check bool) "period violations observed across rounds" true
    (Helpers.count_events device (function
       | Event.Monitor_verdict { monitor = "period_slow"; _ } -> true
       | _ -> false)
    >= 1)

let test_invalid_rounds () =
  let device = Helpers.powered_device () in
  let app = Helpers.one_path_app [ Helpers.simple_task ~name:"a" () ] in
  let config = { Runtime.default_config with rounds = 0 } in
  match Runtime.run ~config device app (deploy device []) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rounds = 0 accepted"

let suite =
  [
    Alcotest.test_case "concurrent failures arbitrated" `Quick
      test_concurrent_failures_arbitrated;
    Alcotest.test_case "restartPath with explicit target" `Quick
      test_restart_path_with_explicit_target;
    Alcotest.test_case "skipPath moves past the target" `Quick
      test_skip_path_moves_past_target;
    Alcotest.test_case "completePath at a start event" `Quick
      test_complete_path_at_start_event;
    Alcotest.test_case "deployments agree on decisions" `Quick
      test_deployments_same_verdicts;
    Alcotest.test_case "reactive rounds" `Quick test_reactive_rounds;
    Alcotest.test_case "period spans rounds" `Quick test_period_spans_rounds;
    Alcotest.test_case "invalid rounds rejected" `Quick test_invalid_rounds;
  ]
