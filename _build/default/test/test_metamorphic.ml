(* Metamorphic and differential properties of the simulation itself. *)

open Artemis
open Artemis_experiments

let test_determinism () =
  (* identical configuration => bit-identical statistics and trace shape *)
  let run () =
    let r =
      Config.run_health Config.Artemis_runtime
        (Config.Intermittent (Time.of_min 6))
    in
    (r.Config.stats, Log.length (Device.log r.Config.device))
  in
  let s1, n1 = run () in
  let s2, n2 = run () in
  Alcotest.(check int) "same trace length" n1 n2;
  Alcotest.(check bool) "same stats" true (s1 = s2)

let test_stats_time_decomposition () =
  (* no idle time exists in the simulation: active time is exactly the
     app + runtime + monitor components *)
  let r = Config.run_health Config.Artemis_runtime (Config.Intermittent (Time.of_min 2)) in
  let s = r.Config.stats in
  let parts =
    Time.add s.Stats.app_time (Time.add s.Stats.runtime_overhead s.Stats.monitor_overhead)
  in
  Alcotest.check Helpers.time "total - off = app + overheads"
    (Stats.active_time s) parts

let test_stats_energy_decomposition () =
  let r = Config.run_health Config.Mayfly_runtime Config.Continuous in
  let s = r.Config.stats in
  let parts =
    Energy.to_uj s.Stats.energy_app
    +. Energy.to_uj s.Stats.energy_runtime
    +. Energy.to_uj s.Stats.energy_monitor
  in
  Alcotest.(check (float 1e-6)) "energy components sum"
    (Energy.to_uj s.Stats.energy_total) parts

(* delay monotonicity: more charging time never speeds the app up *)
let delay_monotonicity =
  QCheck.Test.make ~name:"total time is monotone in the charging delay" ~count:20
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (a, b) ->
      let d1 = min a b and d2 = max a b in
      let total d =
        (Config.run_health Config.Artemis_runtime
           (Config.Intermittent (Time.of_min d))).Config.stats.Stats.total_time
      in
      Time.(total d1 <= total d2))

(* differential: with no properties at all, the two runtimes execute the
   same task sequence on identical devices *)
let gen_small_app =
  QCheck.Gen.(
    let gen_task i =
      map2
        (fun ms mw ->
          Task.make
            ~name:(Printf.sprintf "t%d_%d" i ms)
            ~duration:(Artemis.Time.of_ms (ms + 1))
            ~power:(Artemis.Energy.mw (float_of_int (mw + 1)))
            ())
        (int_bound 200) (int_bound 5)
    in
    let* n = int_range 1 4 in
    let* tasks = flatten_l (List.init n gen_task) in
    return tasks)

let runtimes_agree_without_properties =
  QCheck.Test.make ~name:"ARTEMIS = Mayfly without properties" ~count:100
    (QCheck.make gen_small_app)
    (fun tasks ->
      (* task names must be unique; the generator embeds the index but two
         tasks may still clash on (i, ms) - regenerate names defensively *)
      let tasks =
        List.mapi
          (fun i (t : Task.t) ->
            Task.make
              ~name:(Printf.sprintf "u%d_%s" i t.Task.name)
              ~duration:t.Task.duration ~power:t.Task.power ())
          tasks
      in
      let completions runner =
        let device = Helpers.tiny_device ~usable_mj:50. ~delay:(Time.of_sec 10) () in
        let app = Helpers.one_path_app tasks in
        let stats = runner device app in
        ( Helpers.completed stats,
          stats.Stats.task_completions,
          Log.find_all (Device.log device) (function
            | Event.Task_completed _ -> true
            | _ -> false)
          |> List.map (fun (e : Event.timed) -> Event.to_string e.Event.event) )
      in
      let a_done, a_n, a_seq =
        completions (fun d app -> Runtime.run d app (deploy d []))
      in
      let m_done, m_n, m_seq = completions (fun d app -> Mayfly.run d app []) in
      a_done = m_done && a_n = m_n && a_seq = m_seq)

(* seeds only affect synthetic sensor values, never control flow of the
   benchmark (its properties do not depend on the random data when the
   temperature stays in the healthy band) *)
let seed_independence =
  QCheck.Test.make ~name:"benchmark control flow independent of the PRNG seed"
    ~count:20 QCheck.(int_range 0 10_000)
    (fun seed ->
      let config = { Runtime.default_config with seed } in
      let r =
        Config.run_health ~config Config.Artemis_runtime
          (Config.Intermittent (Time.of_min 1))
      in
      let s = r.Config.stats in
      Stats.completed s && s.Stats.power_failures = 2)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "time decomposition" `Quick test_stats_time_decomposition;
    Alcotest.test_case "energy decomposition" `Quick
      test_stats_energy_decomposition;
    QCheck_alcotest.to_alcotest delay_monotonicity;
    QCheck_alcotest.to_alcotest runtimes_agree_without_properties;
    QCheck_alcotest.to_alcotest seed_independence;
  ]
