open Artemis

let sample_log () =
  let log = Log.create () in
  Log.record log ~at:Time.zero Event.Boot;
  Log.record log ~at:(Time.of_ms 1)
    (Event.Task_started { task = "a"; attempt = 1 });
  Log.record log ~at:(Time.of_ms 2)
    (Event.Path_restarted { path = 2; reason = "stale, \"old\" data" });
  log

let test_round_event_row () =
  let log = Log.create () in
  Log.record log ~at:(Time.of_sec 1) (Event.Round_completed { round = 2 });
  let csv = Export.log_to_csv log in
  Alcotest.(check bool) "round row present" true
    (let needle = "1000000,round_completed,,,round=2" in
     let n = String.length needle in
     let rec go i = i + n <= String.length csv && (String.sub csv i n = needle || go (i + 1)) in
     go 0)

let test_csv_shape () =
  let csv = Export.log_to_csv (sample_log ()) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "header" "time_us,event,task,path,detail" (List.hd lines);
  Alcotest.(check string) "boot row" "0,boot,,," (List.nth lines 1);
  Alcotest.(check string) "quoted detail"
    "2000,path_restarted,,2,\"stale, \"\"old\"\" data\"" (List.nth lines 3)

let run_stats () =
  let device = Helpers.powered_device () in
  let app = Helpers.one_path_app [ Helpers.simple_task ~name:"a" () ] in
  Runtime.run device app (deploy device [])

let test_json_fields () =
  let json = Export.stats_to_json (run_stats ()) in
  List.iter
    (fun key ->
      let needle = Printf.sprintf "\"%s\":" key in
      let n = String.length needle in
      let rec go i =
        i + n <= String.length json && (String.sub json i n = needle || go (i + 1))
      in
      if not (go 0) then Alcotest.failf "missing %s in %s" key json)
    [ "outcome"; "total_time_us"; "energy_total_uj"; "path_skips" ];
  Alcotest.(check bool) "completed outcome" true
    (let n = "\"outcome\": \"completed\"" in
     let ln = String.length n in
     let rec go i = i + ln <= String.length json && (String.sub json i ln = n || go (i+1)) in
     go 0)

let test_stats_csv_alignment () =
  let header_cols = String.split_on_char ',' Export.stats_csv_header in
  let stats = run_stats () in
  (* quoted cells could embed commas, but none of the numeric/outcome
     fields do for a completed run *)
  let row_cols = String.split_on_char ',' (Export.stats_to_csv_row stats) in
  Alcotest.(check int) "same arity" (List.length header_cols) (List.length row_cols);
  Alcotest.(check string) "first column is the outcome" "completed" (List.hd row_cols);
  (* header, row and JSON all derive from one field-spec list *)
  let json = Export.stats_to_json stats in
  let doc =
    match Json.parse json with
    | Ok d -> d
    | Error e -> Alcotest.failf "stats JSON does not parse: %s" e
  in
  List.iter
    (fun key ->
      if Json.member key doc = None then
        Alcotest.failf "CSV header column %S missing from the JSON" key)
    header_cols

(* Regression: a bare %.3f rendered nan/inf stats as [nan]/[inf], which
   no JSON parser accepts.  Non-finite floats must render as null. *)
let test_non_finite_stats_json_parses () =
  let s =
    {
      (run_stats ()) with
      Stats.energy_total = Energy.uj Float.nan;
      energy_app = Energy.uj Float.infinity;
      energy_runtime = Energy.uj Float.neg_infinity;
    }
  in
  let json = Export.stats_to_json s in
  (match Json.parse json with
  | Ok doc ->
      Alcotest.(check bool) "nan renders as null" true
        (Json.member "energy_total_uj" doc = Some Json.Null);
      Alcotest.(check bool) "inf renders as null" true
        (Json.member "energy_app_uj" doc = Some Json.Null)
  | Error e -> Alcotest.failf "non-finite stats JSON does not parse: %s" e);
  (* the CSV row stays well-formed too: no bare nan/inf tokens *)
  let row = Export.stats_to_csv_row s in
  Alcotest.(check int) "row arity unchanged"
    (List.length (String.split_on_char ',' Export.stats_csv_header))
    (List.length (String.split_on_char ',' row))

let suite =
  [
    Alcotest.test_case "log CSV shape and quoting" `Quick test_csv_shape;
    Alcotest.test_case "round event row" `Quick test_round_event_row;
    Alcotest.test_case "stats JSON fields" `Quick test_json_fields;
    Alcotest.test_case "stats CSV header/row alignment" `Quick
      test_stats_csv_alignment;
    Alcotest.test_case "non-finite stats stay valid JSON" `Quick
      test_non_finite_stats_json_parses;
  ]
