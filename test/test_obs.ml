open Artemis

(* The observability layer is process-global and other suites run in the
   same binary, so every test that switches it on restores the default
   off state on the way out. *)
let with_obs ?(metrics = false) ?(tracing = false) f =
  Obs.reset ();
  Obs.set_metrics metrics;
  Obs.set_tracing tracing;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics false;
      Obs.set_tracing false;
      Obs.reset ())
    f

let test_disabled_is_inert () =
  with_obs (fun () ->
      let c = Obs.counter "test_inert_counter" in
      let g = Obs.gauge "test_inert_gauge" in
      let h = Obs.histogram "test_inert_hist" in
      Obs.incr c;
      Obs.add c 10;
      Obs.set_gauge g 3.5;
      Obs.observe_us h 42;
      Obs.span ~cat:"test" ~begin_us:0 ~end_us:5 "s";
      Obs.instant ~cat:"test" "i";
      Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
      Alcotest.(check (float 0.)) "gauge untouched" 0. (Obs.gauge_value g);
      Alcotest.(check int) "no events" 0 (Obs.event_count ()))

let test_registry_semantics () =
  with_obs ~metrics:true (fun () ->
      let c = Obs.counter "test_sem_counter" in
      Obs.incr c;
      Obs.add c 4;
      Alcotest.(check int) "counter accumulates" 5 (Obs.counter_value c);
      Alcotest.(check bool) "registration is idempotent" true
        (Obs.counter "test_sem_counter" == c);
      let g = Obs.gauge "test_sem_gauge" in
      Obs.set_gauge g 1.5;
      Obs.set_gauge g 2.5;
      Alcotest.(check (float 0.)) "gauge keeps the last value" 2.5
        (Obs.gauge_value g);
      Obs.reset ();
      Alcotest.(check int) "reset zeroes counters" 0 (Obs.counter_value c);
      Alcotest.(check (float 0.)) "reset zeroes gauges" 0. (Obs.gauge_value g);
      (* reset turned nothing off *)
      Obs.incr c;
      Alcotest.(check int) "still enabled after reset" 1 (Obs.counter_value c))

let test_histogram_buckets () =
  with_obs ~metrics:true (fun () ->
      let h = Obs.histogram ~buckets_us:[| 10; 100; 1000 |] "test_hist_buckets" in
      List.iter (Obs.observe_us h) [ 1; 10; 11; 100; 5_000; 1_000_000 ];
      let dump = Obs.metrics_dump () in
      let contains needle =
        let n = String.length needle and l = String.length dump in
        let rec go i = i + n <= l && (String.sub dump i n = needle || go (i + 1)) in
        go 0
      in
      (* 1,10 -> le10; 11,100 -> le100; nothing in le1000; 2 overflow *)
      Alcotest.(check bool) "bucket line" true
        (contains
           "histogram test_hist_buckets count 6 sum_us 1005122 le10:2 le100:2 \
            le1000:0 inf:2"))

let test_span_clamps_and_balances () =
  with_obs ~tracing:true (fun () ->
      Obs.span ~cat:"test" ~begin_us:100 ~end_us:50 "backwards";
      Alcotest.(check int) "B and E emitted together" 2 (Obs.event_count ());
      match Json.parse (Obs.trace_json ()) with
      | Error e -> Alcotest.failf "trace does not parse: %s" e
      | Ok doc -> (
          match Json.member "traceEvents" doc with
          | Some (Json.Arr events) ->
              let ts ev =
                match Json.member "ts" ev with
                | Some (Json.Num n) -> int_of_float n
                | _ -> -1
              in
              let spans =
                List.filter
                  (fun ev ->
                    match Json.member "ph" ev with
                    | Some (Json.Str ("B" | "E")) -> true
                    | _ -> false)
                  events
              in
              Alcotest.(check (list int)) "end clamped to begin" [ 100; 100 ]
                (List.map ts spans)
          | _ -> Alcotest.fail "missing traceEvents"))

(* --- golden test: a full quickstart run with observability on --- *)

let quickstart_run () =
  let b = Artemis_faultsim.Scenario.quickstart.Artemis_faultsim.Scenario.build ~engine:None ~seed:42 in
  Runtime.run ~config:b.Artemis_faultsim.Scenario.config
    b.Artemis_faultsim.Scenario.device b.Artemis_faultsim.Scenario.app
    b.Artemis_faultsim.Scenario.suite

let test_quickstart_trace_is_valid_and_balanced () =
  with_obs ~metrics:true ~tracing:true (fun () ->
      let _stats = quickstart_run () in
      let text = Obs.trace_json () in
      match Json.parse text with
      | Error e -> Alcotest.failf "trace does not parse: %s" e
      | Ok doc -> (
          match Json.member "traceEvents" doc with
          | Some (Json.Arr events) ->
              Alcotest.(check bool) "has events" true (List.length events > 10);
              (* per-track B/E balance walk in emission order *)
              let depth = Hashtbl.create 8 in
              List.iter
                (fun ev ->
                  let tid =
                    match Json.member "tid" ev with
                    | Some (Json.Num n) -> int_of_float n
                    | _ -> 0
                  in
                  let d = try Hashtbl.find depth tid with Not_found -> 0 in
                  match Json.member "ph" ev with
                  | Some (Json.Str "B") -> Hashtbl.replace depth tid (d + 1)
                  | Some (Json.Str "E") ->
                      if d = 0 then Alcotest.failf "E without B on tid %d" tid;
                      Hashtbl.replace depth tid (d - 1)
                  | _ -> ())
                events;
              Hashtbl.iter
                (fun tid d ->
                  if d <> 0 then Alcotest.failf "%d unclosed B on tid %d" d tid)
                depth;
              (* the doomed transmit scenario browns out: its power
                 failures must appear as instants on the power track *)
              let pf =
                List.filter
                  (fun ev ->
                    Json.member "name" ev = Some (Json.Str "power_failure"))
                  events
              in
              Alcotest.(check bool) "power-failure instants present" true
                (List.length pf > 0)
          | _ -> Alcotest.fail "missing traceEvents"))

let test_quickstart_metrics_reconcile () =
  with_obs ~metrics:true (fun () ->
      let stats = quickstart_run () in
      (match Export.reconcile_metrics stats with
      | [] -> ()
      | mismatches ->
          Alcotest.failf "counters disagree with stats: %s"
            (String.concat ", "
               (List.map
                  (fun (name, expected, got) ->
                    Printf.sprintf "%s stats=%d counter=%d" name expected got)
                  mismatches)));
      (* and the JSON export of the registry parses *)
      match Json.parse (Obs.metrics_json ()) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e)

(* disabled observability leaves different-run stats untouched: the same
   scenario produces the same log digest with and without the layer on *)
let test_observing_does_not_perturb_the_run () =
  let digest_with ~metrics ~tracing =
    with_obs ~metrics ~tracing (fun () ->
        let b =
          Artemis_faultsim.Scenario.quickstart.Artemis_faultsim.Scenario.build
            ~engine:None ~seed:7
        in
        ignore
          (Runtime.run ~config:b.Artemis_faultsim.Scenario.config
             b.Artemis_faultsim.Scenario.device b.Artemis_faultsim.Scenario.app
             b.Artemis_faultsim.Scenario.suite);
        Export.log_digest (Device.log b.Artemis_faultsim.Scenario.device))
  in
  let off = digest_with ~metrics:false ~tracing:false in
  let on = digest_with ~metrics:true ~tracing:true in
  Alcotest.(check string) "observability is read-only" off on

let suite =
  [
    Alcotest.test_case "disabled layer is inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "registry semantics" `Quick test_registry_semantics;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "span clamps and balances" `Quick
      test_span_clamps_and_balances;
    Alcotest.test_case "quickstart trace valid and balanced" `Quick
      test_quickstart_trace_is_valid_and_balanced;
    Alcotest.test_case "quickstart metrics reconcile with stats" `Quick
      test_quickstart_metrics_reconcile;
    Alcotest.test_case "observability does not perturb the run" `Quick
      test_observing_does_not_perturb_the_run;
  ]
