open Artemis
module Cp = Checkpoint

let seg ?freshness ?body ?(ms = 100) ?(mw = 2.) name =
  Cp.segment ~name ~duration:(Time.of_ms ms) ~power:(Energy.mw mw) ?body
    ?freshness ()

let program ?(name = "prog") segments = { Cp.program_name = name; segments }

let test_validate () =
  let ok p = Alcotest.(check bool) "valid" true (Cp.validate p = Ok ()) in
  let bad p = Alcotest.(check bool) "invalid" true (Result.is_error (Cp.validate p)) in
  ok (program [ seg "a"; seg "b" ]);
  bad (program []);
  bad (program [ seg "a"; seg "a" ]);
  (* freshness producer must precede the consumer *)
  bad
    (program
       [ seg "a"
           ~freshness:
             { Cp.data_from = "b"; within = Time.of_sec 1; on_expire = Cp.Skip_segment };
         seg "b" ]);
  bad
    (program
       [ seg "a"
           ~freshness:
             { Cp.data_from = "ghost"; within = Time.of_sec 1; on_expire = Cp.Skip_segment } ]);
  (* restart targets cannot jump forward *)
  bad
    (program
       [ seg "a";
         seg "b"
           ~freshness:
             { Cp.data_from = "a"; within = Time.of_sec 1; on_expire = Cp.Restart_from "c" };
         seg "c" ]);
  ok
    (program
       [ seg "a";
         seg "b"
           ~freshness:
             { Cp.data_from = "a"; within = Time.of_sec 1; on_expire = Cp.Restart_from "a" } ])

let test_runs_to_completion () =
  let device = Helpers.powered_device () in
  let nvm = Device.nvm device in
  let out = Channel.create nvm ~name:"out" ~bytes_per_item:4 ~capacity:8 in
  let p =
    program
      [
        seg "a" ~body:(fun _ -> Channel.push out 1);
        seg "b" ~body:(fun _ -> Channel.push out 2);
        seg "c" ~body:(fun _ -> Channel.push out 3);
      ]
  in
  let stats = Cp.run device p in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check (list int)) "segments in order, once each" [ 1; 2; 3 ]
    (Channel.items out);
  (* checkpoint + restore costs accounted as runtime work *)
  Alcotest.(check bool) "runtime overhead charged" true
    Time.(stats.Stats.runtime_overhead > Time.zero)

let test_resumes_from_last_checkpoint () =
  let device = Helpers.powered_device () in
  let nvm = Device.nvm device in
  let out = Channel.create nvm ~name:"out" ~bytes_per_item:4 ~capacity:8 in
  let p =
    program
      [
        seg "a" ~body:(fun _ -> Channel.push out 1);
        seg "b" ~body:(fun _ -> Channel.push out 2);
      ]
  in
  (* interrupt segment b mid-flight: a must NOT re-run (checkpointed) *)
  Device.schedule_failure device ~at:(Time.of_ms 150);
  let stats = Cp.run device p in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check (list int)) "a ran once, b's partial try rolled back" [ 1; 2 ]
    (Channel.items out);
  Alcotest.(check int) "b started twice" 2
    (Helpers.count_events device (function
      | Event.Task_started { task = "b"; _ } -> true
      | _ -> false));
  Alcotest.(check int) "a started once" 1
    (Helpers.count_events device (function
      | Event.Task_started { task = "a"; _ } -> true
      | _ -> false))

let fresh_program () =
  program
    [
      seg "sense" ~ms:100;
      seg "proc" ~ms:50;
      seg "send" ~ms:80
        ~freshness:
          { Cp.data_from = "sense"; within = Time.of_sec 2; on_expire = Cp.Restart_from "sense" };
    ]

let test_fresh_data_passes () =
  let device = Helpers.powered_device () in
  let stats = Cp.run device (fresh_program ()) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check int) "no expiration restarts" 0 stats.Stats.path_restarts

let test_expiration_restarts_from_producer () =
  (* plenty of energy, but a 30 s charging delay when a failure is
     injected right before send: on resume the sense data is 30 s old,
     far beyond the 2 s window *)
  let device = Helpers.tiny_device ~usable_mj:1000. ~delay:(Time.of_sec 30) () in
  Device.schedule_failure device ~at:(Time.of_ms 160);
  let stats = Cp.run device (fresh_program ()) in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check bool) "expired at least once" true (stats.Stats.path_restarts >= 1);
  (* sense re-ran to refresh the data *)
  Alcotest.(check bool) "sense re-executed" true
    (Helpers.count_events device (function
       | Event.Task_started { task = "sense"; _ } -> true
       | _ -> false)
    >= 2)

let test_expiration_skip () =
  let device = Helpers.tiny_device ~usable_mj:1000. ~delay:(Time.of_sec 30) () in
  let hit = ref false in
  let p =
    program
      [
        seg "sense" ~ms:100;
        seg "send" ~ms:80
          ~body:(fun _ -> hit := true)
          ~freshness:
            { Cp.data_from = "sense"; within = Time.of_sec 2; on_expire = Cp.Skip_segment };
        seg "tail";
      ]
  in
  (* a failure inside send; the 30 s charging delay blows the window and
     the skip reaction drops the stale consumer *)
  Device.schedule_failure device ~at:(Time.of_ms 120);
  let stats = Cp.run device p in
  Alcotest.(check bool) "completed" true (Helpers.completed stats);
  Alcotest.(check bool) "send skipped" false !hit;
  Alcotest.(check int) "tail still ran" 1
    (Helpers.count_events device (function
      | Event.Task_completed { task = "tail" } -> true
      | _ -> false))

let test_non_termination_without_bounds () =
  (* the TICS/Mayfly failure mode: window < charging delay, and every
     retry browns out again -> restart-from loops forever *)
  let device =
    Helpers.tiny_device ~usable_mj:0.4 ~delay:(Time.of_sec 30)
      ~horizon:(Time.of_min 20) ()
  in
  let p =
    program
      [
        seg "sense" ~ms:100 ~mw:2.;
        (* 0.36 mJ: cannot complete on what a sense pass leaves over *)
        seg "send" ~ms:120 ~mw:3.
          ~freshness:
            { Cp.data_from = "sense"; within = Time.of_sec 5; on_expire = Cp.Restart_from "sense" };
      ]
  in
  let stats = Cp.run device p in
  match stats.Stats.outcome with
  | Stats.Did_not_finish _ -> ()
  | Stats.Completed -> Alcotest.fail "expected non-termination"

let test_snapshot_accounting () =
  let device = Helpers.powered_device () in
  let p =
    program
      [
        Cp.segment ~name:"big" ~duration:(Time.of_ms 10) ~power:(Energy.mw 1.)
          ~snapshot_bytes:200 ();
        Cp.segment ~name:"small" ~duration:(Time.of_ms 10) ~power:(Energy.mw 1.)
          ~snapshot_bytes:30 ();
      ]
  in
  ignore (Cp.run device p);
  (* double-buffered largest snapshot (2 x 200) dominates the footprint *)
  Alcotest.(check bool) "snapshot area accounted" true
    (Cp.runtime_fram_bytes device >= 400)

let exactly_once_commits_qcheck =
  QCheck.Test.make ~name:"channel items match completed segments under failures"
    ~count:150
    QCheck.(list_of_size (QCheck.Gen.int_range 0 3) (int_range 0 400_000))
    (fun failure_times ->
      let device = Helpers.powered_device () in
      let nvm = Device.nvm device in
      let out = Channel.create nvm ~name:"out" ~bytes_per_item:4 ~capacity:16 in
      List.iter
        (fun us -> Device.schedule_failure device ~at:(Time.of_us us))
        (List.sort_uniq compare failure_times);
      let p =
        program
          [
            seg "a" ~body:(fun _ -> Channel.push out 1);
            seg "b" ~body:(fun _ -> Channel.push out 2);
          ]
      in
      let stats = Cp.run device p in
      Helpers.completed stats && Channel.items out = [ 1; 2 ])

(* PR 10 regression: the WAR-analysis surface deduplicates repeated
   segment names by first appearance, like [Task.bodies] and
   [Ink.bodies].  [validate] rejects such programs, but the analysis
   surface must not depend on validation having run - the pre-fix
   version reported duplicated segments twice, inflating hazard counts
   for exactly the programs most likely to be buggy. *)
let test_bodies_dedup () =
  let hits = ref [] in
  let body tag _ = hits := tag :: !hits in
  let p =
    program
      [ seg "a" ~body:(body "a1"); seg "b" ~body:(body "b");
        seg "a" ~body:(body "a2") ]
  in
  let named = Cp.bodies p in
  Alcotest.(check (list string))
    "each segment name analyzed once" [ "a"; "b" ] (List.map fst named);
  (* first appearance wins, as for every other backend surface *)
  let nvm = Nvm.create () in
  let r = Consistency.War.analyze_bodies nvm named in
  Alcotest.(check (list string))
    "analysis order follows first appearance" [ "a"; "b" ]
    r.Consistency.War.analyzed;
  Alcotest.(check (list string))
    "the first duplicate's body is the one analyzed" [ "a1"; "b" ]
    (List.rev !hits)

let suite =
  [
    Alcotest.test_case "program validation" `Quick test_validate;
    Alcotest.test_case "bodies: duplicate segments analyzed once" `Quick
      test_bodies_dedup;
    Alcotest.test_case "runs to completion" `Quick test_runs_to_completion;
    Alcotest.test_case "resumes from the last checkpoint" `Quick
      test_resumes_from_last_checkpoint;
    Alcotest.test_case "fresh data passes" `Quick test_fresh_data_passes;
    Alcotest.test_case "expiration restarts from the producer" `Quick
      test_expiration_restarts_from_producer;
    Alcotest.test_case "expiration can skip the consumer" `Quick
      test_expiration_skip;
    Alcotest.test_case "non-termination without bounded attempts" `Quick
      test_non_termination_without_bounds;
    Alcotest.test_case "snapshot FRAM accounting" `Quick test_snapshot_accounting;
    QCheck_alcotest.to_alcotest exactly_once_commits_qcheck;
  ]
