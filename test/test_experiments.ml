(* Shape assertions over the reproduced evaluation (Section 5): these are
   the claims EXPERIMENTS.md records as reproduced. *)

open Artemis
open Artemis_experiments

let test_fig12_shape () =
  let rows = Fig12.run ~delays:[ 1; 6 ] () in
  let short = List.hd rows and long = List.nth rows 1 in
  (* short delays: both systems complete, nearly identical time *)
  Alcotest.(check bool) "artemis completes at 1min" true
    (Stats.completed short.Fig12.artemis);
  Alcotest.(check bool) "mayfly completes at 1min" true
    (Stats.completed short.Fig12.mayfly);
  let a = Config.minutes short.Fig12.artemis
  and m = Config.minutes short.Fig12.mayfly in
  Alcotest.(check bool) "parity at 1min" true (Float.abs (a -. m) /. m < 0.05);
  (* beyond the MITD limit: ARTEMIS completes, Mayfly does not *)
  Alcotest.(check bool) "artemis completes at 6min" true
    (Stats.completed long.Fig12.artemis);
  Alcotest.(check bool) "mayfly DNF at 6min" false
    (Stats.completed long.Fig12.mayfly)

let test_fig12_monotone () =
  let rows = Fig12.run ~delays:[ 1; 2; 3 ] () in
  let times = List.map (fun r -> Config.minutes r.Fig12.artemis) rows in
  match times with
  | [ a; b; c ] ->
      Alcotest.(check bool) "execution time grows with charging time" true
        (a < b && b < c)
  | _ -> Alcotest.fail "three rows expected"

let test_fig13_story () =
  let r = Fig13.run ~delay_min:6 () in
  Alcotest.(check bool) "completed" true (Stats.completed r.Fig13.stats);
  Alcotest.(check int) "exactly 3 MITD attempts" 3 r.Fig13.mitd_violations;
  Alcotest.(check int) "2 restarts before the skip" 2 r.Fig13.path2_restarts;
  Alcotest.(check bool) "maxAttempt skipped path 2" true r.Fig13.path2_skipped;
  Alcotest.(check bool) "timeline non-empty" true (String.length r.Fig13.timeline > 0)

let test_fig14_fig15_overheads () =
  match Fig14.run () with
  | [ artemis; mayfly ] ->
      Alcotest.(check string) "row order" "ARTEMIS" artemis.Fig14.system;
      (* identical task sequence: same app time *)
      Alcotest.(check (float 1e-6)) "same app seconds" mayfly.Fig14.app_s
        artemis.Fig14.app_s;
      (* Figure 14: overheads negligible next to app time *)
      Alcotest.(check bool) "overheads are ms-scale" true
        (artemis.Fig14.runtime_ms +. artemis.Fig14.monitor_ms
        < artemis.Fig14.app_s *. 1000. /. 10.);
      (* Figure 15: ARTEMIS slightly above Mayfly; Mayfly has no monitor *)
      Alcotest.(check bool) "ARTEMIS total overhead higher" true
        (artemis.Fig14.runtime_ms +. artemis.Fig14.monitor_ms
        > mayfly.Fig14.runtime_ms +. mayfly.Fig14.monitor_ms);
      Alcotest.(check (float 1e-9)) "mayfly monitor overhead zero" 0.
        mayfly.Fig14.monitor_ms;
      Alcotest.(check bool) "ARTEMIS runtime leaner than Mayfly's fused loop" true
        (artemis.Fig14.runtime_ms > 0. && mayfly.Fig14.runtime_ms > 0.)
  | _ -> Alcotest.fail "two rows expected"

let test_fig16_energy_shape () =
  let scenarios =
    [
      { Fig16.label = "continuous"; supply = Config.Continuous };
      { Fig16.label = "1 min"; supply = Config.Intermittent (Time.of_min 1) };
      { Fig16.label = "10 min"; supply = Config.Intermittent (Time.of_min 10) };
    ]
  in
  match Fig16.run ~scenarios () with
  | [ continuous; short; long ] ->
      (* parity between systems at short delays *)
      let a1 = Config.millijoules short.Fig16.artemis
      and m1 = Config.millijoules short.Fig16.mayfly in
      Alcotest.(check bool) "parity at 1min" true (Float.abs (a1 -. m1) /. m1 < 0.05);
      (* ARTEMIS at long delays: roughly 3x continuous (paper: "three
         times higher"), bounded *)
      let ratio =
        Config.millijoules long.Fig16.artemis
        /. Config.millijoules continuous.Fig16.artemis
      in
      Alcotest.(check bool) "ARTEMIS ~3x continuous" true (ratio > 2. && ratio < 4.);
      (* Mayfly at long delays: unbounded (DNF), burned more than ARTEMIS *)
      Alcotest.(check bool) "mayfly DNF" false (Stats.completed long.Fig16.mayfly);
      Alcotest.(check bool) "mayfly burned more" true
        (Config.millijoules long.Fig16.mayfly > Config.millijoules long.Fig16.artemis)
  | _ -> Alcotest.fail "three rows expected"

let test_table2_orderings () =
  let r = Table2.run () in
  Alcotest.(check bool) "separation: ARTEMIS runtime FRAM < Mayfly FRAM" true
    (r.Table2.artemis_runtime_fram < r.Table2.mayfly_runtime_fram);
  Alcotest.(check bool) "monitors are the largest FRAM share" true
    (r.Table2.monitor_fram > r.Table2.mayfly_runtime_fram);
  Alcotest.(check int) "runtime RAM scratch (2 B, as Table 2)" 2
    r.Table2.artemis_runtime_ram;
  Alcotest.(check int) "mayfly RAM scratch" 2 r.Table2.mayfly_runtime_ram;
  Alcotest.(check int) "monitor needs no RAM" 0 r.Table2.monitor_ram;
  Alcotest.(check bool) "monitor .text estimated" true (r.Table2.monitor_text > 1_000)

let test_table3_artemis_unique () =
  let open Table3 in
  Alcotest.(check string) "last row" "ARTEMIS" artemis_entry.name;
  let open_spec =
    List.filter (fun e -> e.spec = Open_property_language) entries
  in
  Alcotest.(check int) "only ARTEMIS has an open property language" 1
    (List.length open_spec);
  let monitors = List.filter (fun e -> e.checking = By_generated_monitors) entries in
  Alcotest.(check int) "only ARTEMIS generates monitors" 1 (List.length monitors)

let test_renders_are_tables () =
  let is_table s = String.length s > 0 && s.[0] = '+' in
  Alcotest.(check bool) "fig12" true (is_table (Fig12.render (Fig12.run ~delays:[ 1 ] ())));
  let fig14 = Fig14.run () in
  Alcotest.(check bool) "fig14" true (is_table (Fig14.render fig14));
  Alcotest.(check bool) "fig15" true (is_table (Fig14.render_overheads fig14));
  Alcotest.(check bool) "table2" true (is_table (Table2.render (Table2.run ())));
  Alcotest.(check bool) "table3" true (is_table (Table3.render ()))

let test_fever_emergency_variant () =
  (* temp_base out of [36,38]: dpData fires completePath on path 1 *)
  let run = Config.run_health ~temp_base:39.4 Config.Artemis_runtime Config.Continuous in
  Alcotest.(check bool) "completed" true (Stats.completed run.Config.stats);
  Alcotest.(check bool) "avgTemp reflects the fever" true
    (run.Config.handles.Health_app.read_avg_temp () > 38.);
  Alcotest.(check int) "monitoring suspended on path 1" 1
    (Log.count (Device.log run.Config.device) (function
      | Event.Monitoring_suspended { path = 1 } -> true
      | _ -> false))

let test_deployment_ablation () =
  match Ablation.deployments () with
  | [ separate; inlined; external_ ] ->
      (* all three deployments preserve the monitoring semantics *)
      List.iter
        (fun (r : Ablation.deployment_row) ->
          Alcotest.(check bool) (r.Ablation.label ^ " completes") true
            (Stats.completed r.Ablation.intermittent))
        [ separate; inlined; external_ ];
      (* inlined: less monitor time, more code *)
      Alcotest.(check bool) "inlined is faster" true
        Time.(inlined.Ablation.continuous.Stats.monitor_overhead
              < separate.Ablation.continuous.Stats.monitor_overhead);
      Alcotest.(check bool) "inlined is bigger" true
        (inlined.Ablation.est_text_bytes > separate.Ablation.est_text_bytes);
      (* external: tiny local footprint, radio-dominated energy *)
      Alcotest.(check bool) "external smallest footprint" true
        (external_.Ablation.est_text_bytes < separate.Ablation.est_text_bytes);
      Alcotest.(check bool) "external burns the most monitor energy" true
        (Energy.to_uj external_.Ablation.continuous.Stats.energy_monitor
        > 10. *. Energy.to_uj separate.Ablation.continuous.Stats.energy_monitor)
  | _ -> Alcotest.fail "three deployments expected"

let test_collect_ablation () =
  match Ablation.collect_semantics () with
  | [ accumulate; reset ] ->
      Alcotest.(check bool) "accumulate completes" true
        (Stats.completed accumulate.Ablation.stats);
      Alcotest.(check bool) "reset-on-fail never converges" false
        (Stats.completed reset.Ablation.stats);
      Alcotest.(check int) "exactly 10 samples suffice when accumulating" 10
        accumulate.Ablation.body_temp_runs
  | _ -> Alcotest.fail "two rows expected"

let test_checkpoint_baseline () =
  match Baseline_checkpoint.run ~delays:[ 1; 6 ] () with
  | [ continuous; short; long ] ->
      Alcotest.(check bool) "checkpointed completes on continuous power" true
        (Stats.completed continuous.Baseline_checkpoint.checkpointed);
      Alcotest.(check bool) "checkpointed completes at 1 min" true
        (Stats.completed short.Baseline_checkpoint.checkpointed);
      (* bookkeeping-only overhead: below ARTEMIS's property checking *)
      Alcotest.(check bool) "less overhead than ARTEMIS" true
        Time.(Stats.overhead_time continuous.Baseline_checkpoint.checkpointed
              < Stats.overhead_time continuous.Baseline_checkpoint.artemis);
      (* the family's weakness: no bounded attempts *)
      Alcotest.(check bool) "checkpointed DNF at 6 min" false
        (Stats.completed long.Baseline_checkpoint.checkpointed);
      Alcotest.(check bool) "ARTEMIS still completes" true
        (Stats.completed long.Baseline_checkpoint.artemis)
  | _ -> Alcotest.fail "three rows expected"

let test_timekeeper_sweep () =
  match Timekeeper_sweep.run () with
  | [ ideal; wide; narrow; tiny ] ->
      Alcotest.(check bool) "ideal enforces MITD" true
        ideal.Timekeeper_sweep.mitd_enforced;
      Alcotest.(check bool) "10 min ceiling still enforces" true
        wide.Timekeeper_sweep.mitd_enforced;
      (* ceilings below the 5 min window hide the outage *)
      Alcotest.(check bool) "2 min ceiling misses staleness" false
        narrow.Timekeeper_sweep.mitd_enforced;
      Alcotest.(check bool) "30 s ceiling misses staleness" false
        tiny.Timekeeper_sweep.mitd_enforced;
      (* the miss shows up as an extra (stale) transmission *)
      Alcotest.(check int) "ideal drops the stale transmission" 2
        ideal.Timekeeper_sweep.transmissions;
      Alcotest.(check int) "narrow delivers stale data" 3
        narrow.Timekeeper_sweep.transmissions
  | _ -> Alcotest.fail "four rows expected"

let test_harvester_study () =
  match Harvester_study.run ~rates_uw:[ 1000.; 40. ] () with
  | [ rich; starved ] ->
      (* plentiful harvest: both complete, no MITD trouble *)
      Alcotest.(check bool) "both complete when harvest is plentiful" true
        (Stats.completed rich.Harvester_study.artemis
        && Stats.completed rich.Harvester_study.mayfly);
      (* starved harvest: emergent delays exceed the window on every
         retry - Mayfly never terminates, ARTEMIS still does *)
      Alcotest.(check bool) "ARTEMIS completes when starved" true
        (Stats.completed starved.Harvester_study.artemis);
      Alcotest.(check bool) "Mayfly DNF when starved" false
        (Stats.completed starved.Harvester_study.mayfly);
      (match starved.Harvester_study.mean_delay with
      | Some d ->
          Alcotest.(check bool) "emergent delay beyond the 5 min window" true
            Time.(d > Time.of_min 5)
      | None -> Alcotest.fail "expected charging delays")
  | _ -> Alcotest.fail "two rows expected"

let test_scalability () =
  match Scalability.run ~factors:[ 1; 4 ] () with
  | [ base; quadrupled ] ->
      (* the application is untouched: identical app time *)
      Alcotest.(check (float 1e-9)) "app time unchanged" base.Scalability.app_s
        quadrupled.Scalability.app_s;
      (* overhead grows sub-linearly in the monitor count (shared
         dispatch) but clearly grows, and FRAM is per-monitor *)
      let ratio = quadrupled.Scalability.monitor_ms /. base.Scalability.monitor_ms in
      Alcotest.(check bool) "overhead grows with the property set" true
        (ratio > 2. && ratio < 4.5);
      Alcotest.(check bool) "FRAM grows with the property set" true
        (quadrupled.Scalability.monitor_fram > 3 * base.Scalability.monitor_fram)
  | _ -> Alcotest.fail "two rows expected"

let test_non_watching_flat () =
  match Scalability.run_non_watching ~extras:[ 0; 32 ] () with
  | [ base; piled ] ->
      (* task-indexed dispatch never invokes a monitor whose tasks the
         application does not run: piling them on must not grow the
         monitor overhead, only the FRAM footprint *)
      Alcotest.(check bool) "overhead stays flat" true
        (piled.Scalability.nw_monitor_ms
        <= 1.2 *. base.Scalability.nw_monitor_ms);
      Alcotest.(check bool) "FRAM still grows" true
        (piled.Scalability.nw_monitor_fram
        > 2 * base.Scalability.nw_monitor_fram)
  | _ -> Alcotest.fail "two rows expected"

let test_yield_study () =
  match Yield_study.run ~rounds:5 ~rates_uw:[ 500.; 25. ] () with
  | [ rich; poor ] ->
      Alcotest.(check bool) "both finish their rounds" true
        (Stats.completed rich.Yield_study.stats
        && Stats.completed poor.Yield_study.stats);
      Alcotest.(check int) "rich rounds" 5 rich.Yield_study.rounds;
      Alcotest.(check bool) "yield degrades with harvest" true
        (rich.Yield_study.uplinks_per_hour > poor.Yield_study.uplinks_per_hour);
      Alcotest.(check bool) "poor still delivers" true (poor.Yield_study.uplinks > 0)
  | _ -> Alcotest.fail "two rows expected"

let suite =
  [
    Alcotest.test_case "fig12: crossover at the MITD limit" `Slow test_fig12_shape;
    Alcotest.test_case "fig12: monotone in charging time" `Slow test_fig12_monotone;
    Alcotest.test_case "fig13: 3 attempts then skip" `Slow test_fig13_story;
    Alcotest.test_case "fig14/15: overhead breakdown" `Quick
      test_fig14_fig15_overheads;
    Alcotest.test_case "fig16: energy shape" `Slow test_fig16_energy_shape;
    Alcotest.test_case "table2: memory orderings" `Quick test_table2_orderings;
    Alcotest.test_case "table3: ARTEMIS row unique" `Quick test_table3_artemis_unique;
    Alcotest.test_case "renders" `Quick test_renders_are_tables;
    Alcotest.test_case "fever variant (completePath)" `Quick
      test_fever_emergency_variant;
    Alcotest.test_case "ablation: monitor deployments" `Slow
      test_deployment_ablation;
    Alcotest.test_case "ablation: collect semantics" `Slow test_collect_ablation;
    Alcotest.test_case "baseline: checkpointed system" `Slow
      test_checkpoint_baseline;
    Alcotest.test_case "timekeeper quality sweep" `Slow test_timekeeper_sweep;
    Alcotest.test_case "harvester study" `Slow test_harvester_study;
    Alcotest.test_case "scalability in property count" `Slow test_scalability;
    Alcotest.test_case "non-watching properties cost nothing at runtime" `Slow
      test_non_watching_flat;
    Alcotest.test_case "yield study (reactive rounds)" `Slow test_yield_study;
  ]
