The fleet runner expands scenario x seed x harvester x engine into a
device matrix and prints one deterministic report (--jobs defaults to
auto, so the pinned output below doubles as a parallel-determinism
check on multi-core machines):

  $ ../../bin/artemis_fleet.exe --name smoke --scenario quickstart --seeds 4 --harvester default --harvester fixed:30s
  fleet smoke: 8 devices (1 scenarios x 2 harvesters x 1 engines x 1 backends x 4 seeds)
  outcomes: completed=8
  verdicts: skipPath=8
  energy uJ: p50=9000.8 p90=9000.8 p99=9000.8 max=9000.8
  worst devices:
    #0 quickstart seed=0 default default immortal completed failures=3 energy=9000.8uJ
    #1 quickstart seed=1 default default immortal completed failures=3 energy=9000.8uJ
    #2 quickstart seed=2 default default immortal completed failures=3 energy=9000.8uJ
    #3 quickstart seed=3 default default immortal completed failures=3 energy=9000.8uJ
    #4 quickstart seed=0 fixed:30s default immortal completed failures=3 energy=9000.8uJ

The same fleet can come from a spec file; the JSON report carries the
per-cell roll-ups:

  $ cat > fleet.json <<'EOF'
  > {"name": "spec-smoke",
  >  "scenarios": ["quickstart"],
  >  "seeds": {"first": 0, "count": 2},
  >  "harvesters": ["default"],
  >  "engines": ["compiled", "table"]}
  > EOF
  $ ../../bin/artemis_fleet.exe --spec fleet.json --json | head -12
  {
    "fleet": "spec-smoke",
    "devices": 4,
    "scenarios": ["quickstart"],
    "seeds": {"first": 0, "count": 2},
    "harvesters": ["default"],
    "engines": ["compiled", "table"],
    "backends": ["immortal"],
    "outcomes": {"completed": 4},
    "verdicts": {"skipPath": 4},
    "energyPercentilesUj": {"p50": 9000.840, "p90": 9000.840, "p99": 9000.840, "max": 9000.840},
    "groups": [

The report is byte-identical for every jobs/chunk combination:

  $ ../../bin/artemis_fleet.exe --spec fleet.json --json --devices --jobs 1 > j1.json
  $ ../../bin/artemis_fleet.exe --spec fleet.json --json --devices --jobs 8 --chunk 1 > j8.json
  $ ../../bin/artemis_fleet.exe --spec fleet.json --json --devices --jobs 0 > auto.json
  $ cmp j1.json j8.json
  $ cmp j1.json auto.json

Fleet campaigns can mix task-execution backends (PR 10): --backend
adds a spec axis, one cell per scenario x harvester x engine x
backend:

  $ ../../bin/artemis_fleet.exe --scenario quickstart --seeds 2 \
  >   --backend immortal --backend alpaca --backend checkpoint | head -4
  fleet fleet: 6 devices (1 scenarios x 1 harvesters x 1 engines x 3 backends x 2 seeds)
  outcomes: completed=6
  verdicts: skipPath=6
  energy uJ: p50=9000.8 p90=9000.8 p99=9000.8 max=9000.8
  $ ../../bin/artemis_fleet.exe --backend tock --seeds 1
  artemis_fleet: unknown backend "tock" (immortal|checkpoint|ink|mayfly|alpaca)
  [1]

Bad inputs are reported with context:

  $ ../../bin/artemis_fleet.exe --scenario nope --seeds 1
  artemis_fleet: unknown scenario "nope" (quickstart|health|quickstart-adapt|health-adapt|quickstart-fresh|stale-read|war-buggy|livelock-prop|quickstart-alpaca)
  [1]
  $ ../../bin/artemis_fleet.exe --harvester fixed:30 --seeds 1
  artemis_fleet: delay needs a unit suffix (us|ms|s|min): "30"
  [1]
  $ ../../bin/artemis_fleet.exe --seeds 0
  artemis_fleet: seeds.count must be positive
  [1]
  $ ../../bin/artemis_fleet.exe --jobs=-1 --seeds 1
  artemis_fleet: --jobs must be 0 (auto) or positive (got -1)
  [2]
