The compiler CLI drives the Figure 3 pipeline from the shell.

A specification pretty-prints back through the spec stage:

  $ cat > spec.txt <<'SPEC'
  > accel: { maxTries: 2 onFail: skipPath; }
  > SPEC
  $ ../../bin/artemisc.exe --emit spec spec.txt
  accel: {
    maxTries: 2 onFail: skipPath;
  }

The model-to-model stage produces the Figure 7 machine:

  $ ../../bin/artemisc.exe --emit fsm spec.txt
  machine maxTries_accel {
    var i : int = 0;
    initial state NotStarted {
      on startTask(accel) {
        i := 1;
      } -> Started;
    }
    state Started {
      on startTask(accel) when ((i < 2)) {
        i := (i + 1);
      };
      on startTask(accel) when ((i >= 2)) {
        fail skipPath;
        i := 0;
      } -> NotStarted;
      on endTask(accel) {
        i := 0;
      } -> NotStarted;
    }
  }

The generated C contains the monitor interface:

  $ ../../bin/artemisc.exe --emit c spec.txt | grep -c callMonitor
  3

The linter reports consistency findings:

  $ ../../bin/artemisc.exe --emit lint - <<'SPEC'
  > t: { maxTries: 1 onFail: skipPath; collect: 1 dpTask: u onFail: restartTask; }
  > SPEC
  warning: t/maxTries: maxTries: 1 allows no re-execution: any single power failure triggers the action
  error: t/collect: restartTask on a collect property livelocks: re-starting the task re-fails the same check without producing new data

Parse errors carry positions and exit non-zero:

  $ ../../bin/artemisc.exe --emit spec - <<'SPEC'
  > t: { maxTries: onFail: skipPath; }
  > SPEC
  spec parse error at 1:16: expected an integer but found identifier "onFail"
  [1]

The --engine flag reports per-property execution-backend cost instead of
emitting code.  For the table engine that is the flat-buffer footprint in
words (dispatch table + bytecode) plus the register-file size:

  $ cat > engines.txt <<'SPEC'
  > accel: { maxTries: 2 onFail: skipPath; }
  > transmit: { maxTries: 3 onFail: restartTask; MITD: 5min dpTask: accel onFail: restartPath; }
  > SPEC
  $ ../../bin/artemisc.exe --engine interpreted engines.txt
  engine: interpreted (AST walk, reference semantics)
  maxTries_accel: 2 states, 1 vars, 4 transitions
  maxTries_transmit: 2 states, 1 vars, 4 transitions
  MITD_transmit_accel: 2 states, 1 vars, 4 transitions
  $ ../../bin/artemisc.exe --engine compiled engines.txt
  engine: compiled (deploy-time closures)
  maxTries_accel: 2 states, 1 vars, 1 watched tasks
  maxTries_transmit: 2 states, 1 vars, 1 watched tasks
  MITD_transmit_accel: 2 states, 1 vars, 2 watched tasks
  $ ../../bin/artemisc.exe --engine table engines.txt
  engine: table (flat dispatch + bytecode)
  maxTries_accel: dispatch 55w + bytecode 8w = 63 words (regs: 2 int, 0 float)
  maxTries_transmit: dispatch 55w + bytecode 8w = 63 words (regs: 2 int, 0 float)
  MITD_transmit_accel: dispatch 63w + bytecode 3w = 66 words (regs: 2 int, 0 float)
  total: 192 words
