The compiler CLI drives the Figure 3 pipeline from the shell.

A specification pretty-prints back through the spec stage:

  $ cat > spec.txt <<'SPEC'
  > accel: { maxTries: 2 onFail: skipPath; }
  > SPEC
  $ ../../bin/artemisc.exe --emit spec spec.txt
  accel: {
    maxTries: 2 onFail: skipPath;
  }

The model-to-model stage produces the Figure 7 machine:

  $ ../../bin/artemisc.exe --emit fsm spec.txt
  machine maxTries_accel {
    var i : int = 0;
    initial state NotStarted {
      on startTask(accel) {
        i := 1;
      } -> Started;
    }
    state Started {
      on startTask(accel) when ((i < 2)) {
        i := (i + 1);
      };
      on startTask(accel) when ((i >= 2)) {
        fail skipPath;
        i := 0;
      } -> NotStarted;
      on endTask(accel) {
        i := 0;
      } -> NotStarted;
    }
  }

The generated C contains the monitor interface:

  $ ../../bin/artemisc.exe --emit c spec.txt | grep -c callMonitor
  3

The linter reports consistency findings:

  $ ../../bin/artemisc.exe --emit lint - <<'SPEC'
  > t: { maxTries: 1 onFail: skipPath; collect: 1 dpTask: u onFail: restartTask; }
  > SPEC
  warning: t/maxTries: maxTries: 1 allows no re-execution: any single power failure triggers the action
  error: t/collect: restartTask on a collect property livelocks: re-starting the task re-fails the same check without producing new data

Parse errors carry positions and exit non-zero:

  $ ../../bin/artemisc.exe --emit spec - <<'SPEC'
  > t: { maxTries: onFail: skipPath; }
  > SPEC
  spec parse error at 1:16: expected an integer but found identifier "onFail"
  [1]

The --engine flag reports per-property execution-backend cost instead of
emitting code.  For the table engine that is the flat-buffer footprint in
words (dispatch table + bytecode) plus the register-file size:

  $ cat > engines.txt <<'SPEC'
  > accel: { maxTries: 2 onFail: skipPath; }
  > transmit: { maxTries: 3 onFail: restartTask; MITD: 5min dpTask: accel onFail: restartPath; }
  > SPEC
  $ ../../bin/artemisc.exe --engine interpreted engines.txt
  engine: interpreted (AST walk, reference semantics)
  maxTries_accel: 2 states, 1 vars, 4 transitions
  maxTries_transmit: 2 states, 1 vars, 4 transitions
  MITD_transmit_accel: 2 states, 1 vars, 4 transitions
  $ ../../bin/artemisc.exe --engine compiled engines.txt
  engine: compiled (deploy-time closures)
  maxTries_accel: 2 states, 1 vars, 1 watched tasks
  maxTries_transmit: 2 states, 1 vars, 1 watched tasks
  MITD_transmit_accel: 2 states, 1 vars, 2 watched tasks
  $ ../../bin/artemisc.exe --engine table engines.txt
  engine: table (flat dispatch + bytecode)
  maxTries_accel: dispatch 55w + bytecode 8w = 63 words (regs: 2 int, 0 float)
  maxTries_transmit: dispatch 55w + bytecode 8w = 63 words (regs: 2 int, 0 float)
  MITD_transmit_accel: dispatch 63w + bytecode 3w = 66 words (regs: 2 int, 0 float)
  total: 192 words

The --check flag runs the static WAR-hazard pass (PR 7) over a faultsim
scenario's task surface: a task that reads a persistent cell and later
writes it back outside its transaction is non-idempotent under
re-execution, invisible to the dynamic oracles when the cell lies
outside the Application region, and rejected here with exit 1:

  $ ../../bin/artemisc.exe --check war-buggy
  scenario war-buggy: 2 tasks analyzed
  WAR hazard: task "filter" reads then writes runtime cell "drv.filter.acc" outside a transaction
  1 hazard
  [1]

Clean scenarios pass, several can be checked at once:

  $ ../../bin/artemisc.exe --check quickstart --check health --check stale-read
  scenario quickstart: 2 tasks analyzed
  no WAR hazards
  scenario health: 8 tasks analyzed
  no WAR hazards
  scenario stale-read: 2 tasks analyzed
  no WAR hazards

--allow-hazard downgrades the verdict to report-only (a migration
escape hatch, not a recommendation):

  $ ../../bin/artemisc.exe --check war-buggy --allow-hazard
  scenario war-buggy: 2 tasks analyzed
  WAR hazard: task "filter" reads then writes runtime cell "drv.filter.acc" outside a transaction
  1 hazard

Unknown scenarios are rejected:

  $ ../../bin/artemisc.exe --check nope
  unknown scenario "nope" (quickstart|health|quickstart-adapt|health-adapt|quickstart-fresh|stale-read|war-buggy|livelock-prop|quickstart-alpaca)
  [1]

The --energy-report flag runs the static energy-admissibility analysis
(PR 9): per-property worst-case monitor-call bounds (dispatch + guard +
body + NVM-write cycles at the scenario's cost model) against the
device's usable charge budget.  Clean scenarios classify every property
"progresses" and exit 0:

  $ ../../bin/artemisc.exe --energy-report quickstart
  energy-admissibility report: quickstart
    deployment separate-module @ 1000000 Hz; budget usable 3000.000 uJ, reboot 3000.000 uJ (fixed-delay)
    property                     origin     worst-case      call-us    call-uJ  class
    maxTries_transmit            deployed   Started/start        390      0.468  progresses
    deployed-suite call bound: 0.468 uJ (progresses)

The seeded livelock-prop scenario carries an OTA payload whose 20-store
monitor body bounds above the whole 1.0 uJ usable budget: the payload is
classified "may livelock", the adaptation validate step refuses it as
energy-inadmissible, and the report exits 1:

  $ ../../bin/artemisc.exe --energy-report livelock-prop
  energy-admissibility report: livelock-prop
    deployment separate-module @ 1000000 Hz; budget usable 1.000 uJ, reboot 1.000 uJ (fixed-delay)
    property                     origin     worst-case      call-us    call-uJ  class
    maxTries_ping                deployed   Started/start        390      0.468  progresses
    audit_log                    update #1  Idle/end           1410      1.692  may livelock
    deployed-suite call bound: 0.468 uJ (progresses)
    update #1: rejected by validate: energy-inadmissible: property 'audit_log' worst-case monitor-call bound 1.692 uJ exceeds the usable charge budget 1.000 uJ (may livelock)
  [1]

--energy-json emits the same analysis as one machine-readable line per
scenario:

  $ ../../bin/artemisc.exe --energy-report quickstart --energy-json
  {"scenario": "quickstart", "deployment": "separate-module", "mcu_hz": 1000000, "budget": {"usable_uj": 3000.000, "reboot_uj": 3000.000, "policy": "fixed-delay"}, "suite_call_bound_uj": 0.468, "properties": [{"name": "maxTries_transmit", "origin": "deployed", "worst_state": "Started", "worst_kind": "start", "step_cycles": 120, "guard_cycles": 12, "body_cycles": 18, "write_cycles": 60, "call_us": 390, "call_uj": 0.468, "class": "progresses"}]}
