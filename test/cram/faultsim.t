The fault-injection CLI numbers its sites deterministically (NVM
bookkeeping sites first, then runtime sites, then the live-adaptation
protocol's crash windows):

  $ ../../bin/faultsim.exe --list-sites
   0 nvm.write.before
   1 nvm.write.after
   2 nvm.tx_write.before
   3 nvm.tx_write.after
   4 nvm.commit_tx.before
   5 nvm.commit_tx.after
   6 rt.monitor_step.before
   7 rt.monitor_step.after
   8 rt.event_update.before
   9 rt.event_update.after
  10 rt.verdict.before
  11 rt.verdict.after
  12 rt.adapt.stage.before
  13 rt.adapt.stage.after
  14 rt.adapt.validate.after
  15 rt.adapt.migrate.before
  16 rt.adapt.migrate.after
  17 rt.adapt.flip.before
  18 rt.adapt.flip.after
  19 rt.adapt.clear.after
  20 alpaca.log.before
  21 alpaca.log.after
  22 alpaca.swap.before
  23 alpaca.swap.after

A depth-1 bounded-exhaustive campaign over the quickstart scenario
crashes every dynamic (site, occurrence) instant the baseline run
exhibits — one run per probed instruction execution — and every
invariant oracle stays green (the exit status verifies zero violations
plus byte-identical replay of every run).  The adaptation sites never
fire without a scheduled update, so 12 of the 20 sites are coverable:

  $ ../../bin/faultsim.exe --scenario quickstart --depth 1
  scenario quickstart: 24 injection sites
  baseline: completed, 0 violations
  exhaustive (depth 1): 160 runs, coverage 12/24, 0 violations

The quickstart-adapt scenario delivers a live property update mid-run,
which drives the campaign through every adaptation crash window as
well — the update still applies exactly once, and never as a torn
suite, under a power failure at every single instant:

  $ ../../bin/faultsim.exe --scenario quickstart-adapt --depth 1
  scenario quickstart-adapt: 24 injection sites
  baseline: completed, 0 violations
  exhaustive (depth 1): 154 runs, coverage 20/24, 0 violations

The JSON report carries the same verdict with stable keys:

  $ ../../bin/faultsim.exe --scenario quickstart --depth 1 --json --skip-replay-check \
  >   | grep -E '"(coverage|total_runs|total_violations|shrunk)"'
    "coverage": "12/24",
    "total_runs": 160,
    "total_violations": 0,
    "shrunk": null

A single schedule replays from its one-line reproducer:

  $ ../../bin/faultsim.exe --scenario quickstart --replay '42:6@0,4@1'
  replay 42:6@0,4@1: completed, 0 violations, reproducible

The input-freshness oracle (PR 7) audits declared producer/consumer
pairs against a per-scenario data-age budget.  quickstart-fresh adds a
generous 10-minute budget to the quickstart app and stays green at
every crash instant, while stale-read's deliberately-buggy 10-second
budget is shorter than its 30-second charging delay, so any crash
between the producing and consuming commits surfaces stale data — and
only that oracle fires, with a one-line shrunk reproducer:

  $ ../../bin/faultsim.exe --scenario quickstart-fresh --depth 1
  scenario quickstart-fresh: 24 injection sites
  baseline: completed, 0 violations
  exhaustive (depth 1): 160 runs, coverage 12/24, 0 violations

  $ ../../bin/faultsim.exe --scenario stale-read --depth 1 2>&1 | grep -v VIOLATION
  scenario stale-read: 24 injection sites
  baseline: completed, 0 violations
  exhaustive (depth 1): 112 runs, coverage 12/24, 100 violations
  minimal reproducer: 42:0@6
  $ ../../bin/faultsim.exe --scenario stale-read --replay '42:0@6' 2>&1 | grep VIOLATION | head -1
  VIOLATION [input-freshness] report consumed sense data aged 30000580us (budget 10000000us) at 30101160us

The war-buggy scenario read-modify-writes a Runtime-region cell outside
its task transaction.  Task transactions only guard the Application
region, so every dynamic oracle stays green — the gap the static WAR
pass (artemisc --check) exists to close:

  $ ../../bin/faultsim.exe --scenario war-buggy --depth 1
  scenario war-buggy: 24 injection sites
  baseline: completed, 0 violations
  exhaustive (depth 1): 110 runs, coverage 12/24, 0 violations

The checkpoint-free Alpaca backend (PR 10) adds four two-phase-commit
injection sites (alpaca.log/swap x before/after); the depth-1
exhaustive campaign crashes inside both commit phases and every oracle
stays green - a torn publish would be a task-atomicity violation:

  $ ../../bin/faultsim.exe --scenario quickstart-alpaca --depth 1
  scenario quickstart-alpaca: 24 injection sites
  baseline: completed, 0 violations
  exhaustive (depth 1): 166 runs, coverage 16/24, 0 violations

Bad input is rejected:

  $ ../../bin/faultsim.exe --scenario nope
  unknown scenario "nope" (quickstart|health|quickstart-adapt|health-adapt|quickstart-fresh|stale-read|war-buggy|livelock-prop|quickstart-alpaca)
  [2]
  $ ../../bin/faultsim.exe --replay '42:99@0'
  bad replay line: site 99 out of range [0,23]
  [2]

The campaign fans out over worker domains with --jobs; the merged
report is byte-identical to the sequential one, so the summary, the
JSON report and the exit status are the same for every job count:

  $ ../../bin/faultsim.exe --scenario quickstart --depth 1 --jobs 4
  scenario quickstart: 24 injection sites
  baseline: completed, 0 violations
  exhaustive (depth 1): 160 runs, coverage 12/24, 0 violations

  $ ../../bin/faultsim.exe --scenario quickstart --depth 1 --json --skip-replay-check --jobs 1 > seq.json
  $ ../../bin/faultsim.exe --scenario quickstart --depth 1 --json --skip-replay-check --jobs 4 > par.json
  $ cmp seq.json par.json

--jobs 0 means auto: one worker per core, still byte-identical
(PR 8); a negative worker count is rejected:

  $ ../../bin/faultsim.exe --scenario quickstart --depth 1 --json --skip-replay-check --jobs 0 > auto.json
  $ cmp seq.json auto.json
  $ ../../bin/faultsim.exe --scenario quickstart --depth 1 --jobs=-3
  faultsim: --jobs must be 0 (auto) or positive (got -3)
  [2]
