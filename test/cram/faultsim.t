The fault-injection CLI numbers its sites deterministically (NVM
bookkeeping sites first, then runtime sites):

  $ ../../bin/faultsim.exe --list-sites
   0 nvm.write.before
   1 nvm.write.after
   2 nvm.tx_write.before
   3 nvm.tx_write.after
   4 nvm.commit_tx.before
   5 nvm.commit_tx.after
   6 rt.monitor_step.before
   7 rt.monitor_step.after
   8 rt.event_update.before
   9 rt.event_update.after
  10 rt.verdict.before
  11 rt.verdict.after

A depth-1 bounded-exhaustive campaign over the quickstart scenario
crashes every dynamic (site, occurrence) instant the baseline run
exhibits — one run per probed instruction execution — and every
invariant oracle stays green (the exit status verifies zero violations
plus byte-identical replay of every run):

  $ ../../bin/faultsim.exe --scenario quickstart --depth 1
  scenario quickstart: 12 injection sites
  baseline: completed, 0 violations
  exhaustive (depth 1): 160 runs, coverage 12/12, 0 violations

The JSON report carries the same verdict with stable keys:

  $ ../../bin/faultsim.exe --scenario quickstart --depth 1 --json --skip-replay-check \
  >   | grep -E '"(coverage|total_runs|total_violations|shrunk)"'
    "coverage": "12/12",
    "total_runs": 160,
    "total_violations": 0,
    "shrunk": null

A single schedule replays from its one-line reproducer:

  $ ../../bin/faultsim.exe --scenario quickstart --replay '42:6@0,4@1'
  replay 42:6@0,4@1: completed, 0 violations, reproducible

Bad input is rejected:

  $ ../../bin/faultsim.exe --scenario nope
  unknown scenario "nope" (quickstart|health)
  [2]
  $ ../../bin/faultsim.exe --replay '42:99@0'
  bad replay line: site 99 out of range [0,11]
  [2]
