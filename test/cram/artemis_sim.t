The simulator CLI runs the paper's benchmark.

On continuous power the application always completes:

  $ ../../bin/artemis_sim.exe --continuous | head -2
  outcome: completed
  total: 4.91s (off 0us)

Under a 6-minute charging delay Mayfly never terminates:

  $ ../../bin/artemis_sim.exe -s mayfly -d 6 | head -1
  outcome: DNF (simulation time horizon)

while ARTEMIS completes by skipping path 2 after three MITD attempts:

  $ ../../bin/artemis_sim.exe -s artemis -d 6 | head -1
  outcome: completed

Unknown systems are rejected:

  $ ../../bin/artemis_sim.exe -s tics
  unknown system "tics" (artemis|mayfly)
  [1]
