The simulator CLI runs the paper's benchmark.

On continuous power the application always completes:

  $ ../../bin/artemis_sim.exe --continuous | head -2
  outcome: completed
  total: 4.91s (off 0us)

Under a 6-minute charging delay Mayfly never terminates:

  $ ../../bin/artemis_sim.exe -s mayfly -d 6 | head -1
  outcome: DNF (simulation time horizon)

while ARTEMIS completes by skipping path 2 after three MITD attempts:

  $ ../../bin/artemis_sim.exe -s artemis -d 6 | head -1
  outcome: completed

Unknown systems are rejected:

  $ ../../bin/artemis_sim.exe -s tics
  unknown system "tics" (artemis|mayfly)
  [1]

The observability exports self-validate: the trace must be balanced
Chrome trace-event JSON and the metrics must reconcile with the stats:

  $ ../../bin/artemis_sim.exe --trace-out trace.json --metrics-out metrics.json | tail -2
  trace written to trace.json (valid JSON, balanced spans)
  metrics written to metrics.json (reconciled with stats)

  $ head -c 18 trace.json
  {"displayTimeUnit"

A text dump of the registry is available without writing files; the
counters mirror the task/failure lines of the stats header:

  $ ../../bin/artemis_sim.exe --metrics | grep -E "counter (task_|power_failures|reboots)"
  counter power_failures 2
  counter reboots 2
  counter task_completions 19
  counter task_executions 30

Live property adaptation (--adapt): a JSON script of updates is
delivered over the simulated radio mid-run, validated on-device and
applied with the crash-atomic generation flip; the report lists each
staging and the committed flip:

  $ cat > update.json <<'JSON'
  > [
  >   {"at": 40,
  >    "spec": "send: { MITD: 4min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2; }",
  >    "remove": ["maxDuration_send"]}
  > ]
  > JSON
  $ ../../bin/artemis_sim.exe --adapt update.json -d 1 | sed -n '/adaptations/,$p'
  --- adaptations ---
  [2.07min] update #1 staged (160 bytes)
  [2.07min] update #1 applied (generation 1)
  messages sent: 3, avgTemp: 36.61 C

An invalid update is refused by on-device validation, never
half-deployed:

  $ cat > bad.json <<'JSON'
  > [ {"at": 40, "remove": ["no_such_monitor"]} ]
  > JSON
  $ ../../bin/artemis_sim.exe --adapt bad.json -d 1 | sed -n '/adaptations/,$p'
  --- adaptations ---
  [2.07min] update #1 staged (65 bytes)
  [2.07min] update #1 rejected (remove: no deployed monitor named no_such_monitor)
  messages sent: 3, avgTemp: 36.61 C

Scripts only work with the ARTEMIS runtime, and malformed scripts are
rejected up front:

  $ ../../bin/artemis_sim.exe -s mayfly --adapt update.json
  --adapt requires the artemis runtime
  [1]
  $ echo '{"not": "an array"}' > broken.json
  $ ../../bin/artemis_sim.exe --adapt broken.json
  adapt script: expected a JSON array of updates
  [1]

The runtime matrix (PR 10) runs one scenario under every registered
task-execution backend with the same monitors; verdict streams must
equal the immortal reference's (exit 1 on divergence), while energy
and runtime-FRAM columns differ per family:

  $ ../../bin/artemis_sim.exe --matrix quickstart
  runtime matrix: quickstart (seed 42), verdict reference immortal
  +------------+-----------+-------+-------+----------+---------+----------+-----------+----------+-------+
  | backend    | outcome   | fails | execs | E_app mJ | E_rt mJ | E_mon mJ | rt FRAM B | verdicts | agree |
  +------------+-----------+-------+-------+----------+---------+----------+-----------+----------+-------+
  | immortal   | completed | 3     | 5     | 8.996    | 0.003   | 0.002    | 40        | 2        | yes   |
  | checkpoint | completed | 3     | 5     | 8.993    | 0.006   | 0.002    | 168       | 2        | yes   |
  | ink        | completed | 3     | 5     | 8.995    | 0.004   | 0.002    | 43        | 2        | yes   |
  | mayfly     | completed | 3     | 5     | 8.996    | 0.003   | 0.002    | 58        | 2        | yes   |
  | alpaca     | completed | 3     | 5     | 8.996    | 0.003   | 0.002    | 56        | 2        | yes   |
  +------------+-----------+-------+-------+----------+---------+----------+-----------+----------+-------+
  verdict streams: all 5 backends agree
  $ ../../bin/artemis_sim.exe --matrix nope
  artemis_sim: unknown scenario "nope" (quickstart|health|quickstart-adapt|health-adapt|quickstart-fresh|stale-read|war-buggy|livelock-prop|quickstart-alpaca)
  [2]
