The simulator CLI runs the paper's benchmark.

On continuous power the application always completes:

  $ ../../bin/artemis_sim.exe --continuous | head -2
  outcome: completed
  total: 4.91s (off 0us)

Under a 6-minute charging delay Mayfly never terminates:

  $ ../../bin/artemis_sim.exe -s mayfly -d 6 | head -1
  outcome: DNF (simulation time horizon)

while ARTEMIS completes by skipping path 2 after three MITD attempts:

  $ ../../bin/artemis_sim.exe -s artemis -d 6 | head -1
  outcome: completed

Unknown systems are rejected:

  $ ../../bin/artemis_sim.exe -s tics
  unknown system "tics" (artemis|mayfly)
  [1]

The observability exports self-validate: the trace must be balanced
Chrome trace-event JSON and the metrics must reconcile with the stats:

  $ ../../bin/artemis_sim.exe --trace-out trace.json --metrics-out metrics.json | tail -2
  trace written to trace.json (valid JSON, balanced spans)
  metrics written to metrics.json (reconciled with stats)

  $ head -c 18 trace.json
  {"displayTimeUnit"

A text dump of the registry is available without writing files; the
counters mirror the task/failure lines of the stats header:

  $ ../../bin/artemis_sim.exe --metrics | grep -E "counter (task_|power_failures|reboots)"
  counter power_failures 2
  counter reboots 2
  counter task_completions 19
  counter task_executions 30
