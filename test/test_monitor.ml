open Artemis
module F = Fsm.Ast
module Interp = Fsm.Interp

let machine_text =
  {|
machine m {
  var x : int = 0;
  persistent var keep : int = 0;
  initial state A {
    on startTask(t) { x := x + 1; keep := keep + 1; } -> B;
  }
  state B {
    on endTask(t) -> A;
  }
}
|}

let make () =
  let nvm = Nvm.create () in
  let monitor = Monitor.create nvm (Fsm.Parser.parse_machine_exn machine_text) in
  (nvm, monitor)

let test_state_survives_power_failure () =
  let nvm, m = make () in
  ignore (Monitor.step m (Helpers.event ~task:"t" ()));
  Nvm.power_failure nvm;
  Alcotest.(check string) "state persists" "B" (Monitor.current_state m);
  Alcotest.check Helpers.value "vars persist" (F.Vint 1) (Monitor.read_var m "x")

let test_hard_reset () =
  let _, m = make () in
  ignore (Monitor.step m (Helpers.event ~task:"t" ()));
  Monitor.hard_reset m;
  Alcotest.(check string) "initial state" "A" (Monitor.current_state m);
  Alcotest.check Helpers.value "all vars reset" (F.Vint 0) (Monitor.read_var m "keep")

let test_reinitialize_preserves_persistent () =
  let _, m = make () in
  ignore (Monitor.step m (Helpers.event ~task:"t" ()));
  Monitor.reinitialize m;
  Alcotest.(check string) "state reset" "A" (Monitor.current_state m);
  Alcotest.check Helpers.value "ordinary var reset" (F.Vint 0) (Monitor.read_var m "x");
  Alcotest.check Helpers.value "persistent var kept" (F.Vint 1)
    (Monitor.read_var m "keep")

let test_ill_typed_rejected () =
  let nvm = Nvm.create () in
  let bad =
    Fsm.Parser.parse_machine_exn
      "machine bad { initial state A { on startTask(t) when (zz > 1); } }"
  in
  match Monitor.create nvm bad with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "ill-typed machine accepted"

let test_watches_task_and_fram () =
  let _, m = make () in
  Alcotest.(check bool) "watches t" true (Monitor.watches_task m "t");
  Alcotest.(check bool) "ignores u" false (Monitor.watches_task m "u");
  (* 2 state + 24 property table + 4 + 4 vars *)
  Alcotest.(check int) "fram bytes" 34 (Monitor.fram_bytes m)

let test_read_var_unknown () =
  let _, m = make () in
  match Monitor.read_var m "nope" with
  | exception Invalid_argument msg ->
      let mentions sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        "names the monitor" true
        (mentions (Monitor.name m));
      Alcotest.(check bool) "names the variable" true (mentions "nope")
  | exception Not_found -> Alcotest.fail "bare Not_found leaked"
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- Suite --- *)

let test_suite_step_all_order () =
  let nvm = Nvm.create () in
  let mk name action =
    Fsm.Parser.parse_machine_exn
      (Printf.sprintf
         "machine %s { initial state A { on startTask(t) { fail %s; }; } }" name
         action)
  in
  let suite = Suite.create nvm [ mk "first" "restartTask"; mk "second" "skipPath" ] in
  let failures = Suite.step_all suite (Helpers.event ~task:"t" ()) in
  Alcotest.(check (list string)) "deployment order"
    [ "first"; "second" ]
    (List.map (fun (f : Interp.failure) -> f.Interp.failed_machine) failures);
  match Suite.arbitrate failures with
  | Some { Interp.failed_machine = "second"; action = F.Skip_path; _ } -> ()
  | _ -> Alcotest.fail "skipPath outranks restartTask"

let test_severity_order () =
  let order =
    List.map Suite.severity
      [ F.Skip_path; F.Restart_path; F.Complete_path; F.Skip_task; F.Restart_task ]
  in
  Alcotest.(check (list int)) "strictly decreasing" [ 4; 3; 2; 1; 0 ] order

let test_arbitrate_ties_first_wins () =
  let f name = { Interp.failed_machine = name; action = F.Skip_task; target_path = None } in
  match Suite.arbitrate [ f "a"; f "b" ] with
  | Some { Interp.failed_machine = "a"; _ } -> ()
  | _ -> Alcotest.fail "first-reported wins ties"

let test_arbitrate_empty () =
  Alcotest.(check bool) "none" true (Suite.arbitrate [] = None)

let test_reinit_for_tasks () =
  let nvm = Nvm.create () in
  let suite =
    Suite.create nvm
      [
        Fsm.Parser.parse_machine_exn
          "machine watches_a { var x : int = 0; initial state S { on startTask(a) { x := 1; }; } }";
        Fsm.Parser.parse_machine_exn
          "machine watches_b { var x : int = 0; initial state S { on startTask(b) { x := 1; }; } }";
      ]
  in
  ignore (Suite.step_all suite (Helpers.event ~task:"a" ()));
  ignore (Suite.step_all suite (Helpers.event ~task:"b" ()));
  Suite.reinit_for_tasks suite ~tasks:[ "a" ];
  let find name =
    List.find (fun m -> Monitor.name m = name) (Suite.monitors suite)
  in
  Alcotest.check Helpers.value "a's monitor reset" (F.Vint 0)
    (Monitor.read_var (find "watches_a") "x");
  Alcotest.check Helpers.value "b's monitor untouched" (F.Vint 1)
    (Monitor.read_var (find "watches_b") "x")

let test_reinit_on_any () =
  (* regression: an anyEvent-only machine watches every task, so a path
     restart must re-initialize it too (mentions_task used to return
     false for On_any, leaving its state stale across restarts) *)
  let nvm = Nvm.create () in
  let suite =
    Suite.create nvm
      [
        Fsm.Parser.parse_machine_exn
          "machine anyonly { var x : int = 0; initial state S { on anyEvent { x := 1; }; } }";
      ]
  in
  ignore (Suite.step_all suite (Helpers.event ~task:"whatever" ()));
  let m = List.hd (Suite.monitors suite) in
  Alcotest.check Helpers.value "stepped" (F.Vint 1) (Monitor.read_var m "x");
  Suite.reinit_for_tasks suite ~tasks:[ "whatever" ];
  Alcotest.check Helpers.value "reset on path restart" (F.Vint 0)
    (Monitor.read_var m "x")

let test_dispatch_skips_non_watching () =
  let nvm = Nvm.create () in
  let suite =
    Suite.create nvm
      [
        Fsm.Parser.parse_machine_exn
          "machine watches_a { initial state S { on startTask(a); } }";
        Fsm.Parser.parse_machine_exn
          "machine watches_b { initial state S { on startTask(b); } }";
        Fsm.Parser.parse_machine_exn
          "machine anyonly { initial state S { on anyEvent; } }";
      ]
  in
  let names ev =
    List.map Monitor.name (Suite.relevant_monitors suite ev)
  in
  Alcotest.(check (list string)) "a's event"
    [ "watches_a"; "anyonly" ]
    (names (Helpers.event ~task:"a" ()));
  Alcotest.(check (list string)) "b's event"
    [ "watches_b"; "anyonly" ]
    (names (Helpers.event ~task:"b" ()));
  Alcotest.(check (list string)) "unknown task: only anyEvent watchers"
    [ "anyonly" ]
    (names (Helpers.event ~task:"zz" ()))

let test_engines_agree_over_nvm () =
  let step_with engine =
    let nvm = Nvm.create () in
    let m =
      Monitor.create ~engine nvm (Fsm.Parser.parse_machine_exn machine_text)
    in
    ignore (Monitor.step m (Helpers.event ~task:"t" ()));
    Nvm.power_failure nvm;
    ignore (Monitor.step m (Helpers.event ~kind:Interp.End ~task:"t" ()));
    ignore (Monitor.step m (Helpers.event ~task:"t" ()));
    (Monitor.current_state m, Monitor.read_var m "x", Monitor.read_var m "keep")
  in
  let si, xi, ki = step_with Monitor.Interpreted in
  let sc, xc, kc = step_with Monitor.Compiled in
  Alcotest.(check string) "same state" si sc;
  Alcotest.check Helpers.value "same x" xi xc;
  Alcotest.check Helpers.value "same keep" ki kc

let suite =
  [
    Alcotest.test_case "state survives power failure" `Quick
      test_state_survives_power_failure;
    Alcotest.test_case "hard reset" `Quick test_hard_reset;
    Alcotest.test_case "reinitialize preserves persistent vars" `Quick
      test_reinitialize_preserves_persistent;
    Alcotest.test_case "ill-typed machines rejected" `Quick test_ill_typed_rejected;
    Alcotest.test_case "watches_task and FRAM accounting" `Quick
      test_watches_task_and_fram;
    Alcotest.test_case "read_var unknown" `Quick test_read_var_unknown;
    Alcotest.test_case "suite: step order and arbitration" `Quick
      test_suite_step_all_order;
    Alcotest.test_case "suite: severity order" `Quick test_severity_order;
    Alcotest.test_case "suite: ties" `Quick test_arbitrate_ties_first_wins;
    Alcotest.test_case "suite: empty arbitration" `Quick test_arbitrate_empty;
    Alcotest.test_case "suite: selective re-initialisation" `Quick
      test_reinit_for_tasks;
    Alcotest.test_case "suite: anyEvent machines reinit on path restart" `Quick
      test_reinit_on_any;
    Alcotest.test_case "suite: dispatch index skips non-watching monitors" `Quick
      test_dispatch_skips_non_watching;
    Alcotest.test_case "engines agree over NVM" `Quick test_engines_agree_over_nvm;
  ]
