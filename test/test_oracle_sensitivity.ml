(* Oracle sensitivity (mutation testing for the fault-injection engine):
   every oracle must be shown to FAIL, not just pass.  Each test flips
   one test-only chaos hook that re-introduces a known-bad behaviour the
   PR2/PR4 campaigns hardened away, reruns a cheap depth-1 campaign and
   asserts the matching oracle reports at least one violation.  A silent
   oracle under mutation would mean the campaign's green runs prove
   nothing.

   The expected counts are not asserted exactly - only that the targeted
   oracle fires and a shrunk reproducer is produced - so the suite stays
   robust to unrelated scenario tweaks. *)

open Artemis
module F = Artemis_faultsim.Faultsim
module Scenario = Artemis_faultsim.Scenario

let all_oracles =
  [ "task-atomicity"; "golden-reexecution"; "action-at-most-once";
    "update-exactly-once"; "stable-footprint"; "input-freshness" ]

(* Oracles fired across the whole suite; the meta-test at the bottom
   checks every oracle appears at least once. *)
let fired_anywhere : (string, unit) Hashtbl.t = Hashtbl.create 8

let oracle_counts campaign =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : F.run_result) ->
      List.iter
        (fun (v : F.violation) ->
          Hashtbl.replace fired_anywhere v.F.oracle ();
          Hashtbl.replace tbl v.F.oracle
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v.F.oracle)))
        r.F.violations)
    campaign.F.runs;
  tbl

let reset_all_chaos () =
  Nvm.Chaos.reset ();
  Runtime.Chaos.reset ();
  Alpaca.Chaos.reset ();
  Consistency.Freshness.Chaos.reset ()

(* Run [campaign ()] with [flag] set, hooks always cleared afterwards
   (even on assertion failure, so one failing mutation cannot poison the
   rest of the test binary). *)
let with_mutation flag campaign =
  flag := true;
  Fun.protect ~finally:reset_all_chaos campaign

let check_mutation ~name ~oracle flag scenario =
  let c =
    with_mutation flag (fun () -> F.exhaustive scenario ~seed:42 ~depth:1)
  in
  let counts = oracle_counts c in
  let hits = Option.value ~default:0 (Hashtbl.find_opt counts oracle) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s oracle fires" name oracle)
    true (hits >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "%s: shrunk reproducer found" name)
    true (c.F.shrunk <> None);
  (* the engine itself keeps working under mutation: the clean baseline
     run is still the anchor every injected run is compared against *)
  Alcotest.(check string)
    (Printf.sprintf "%s: baseline completes" name)
    "completed" c.F.baseline.F.outcome

(* --- control: with every hook off, the campaigns are green --- *)

let test_control () =
  reset_all_chaos ();
  let c = F.exhaustive Scenario.quickstart ~seed:42 ~depth:1 in
  Alcotest.(check int) "quickstart clean" 0 (F.total_violations c);
  let ca = F.exhaustive Scenario.quickstart_adapt ~seed:42 ~depth:1 in
  Alcotest.(check int) "quickstart-adapt clean" 0 (F.total_violations ca);
  (* a generous freshness budget never fires without a chaos hook, even
     across crash-inserted 30 s outages *)
  let cf = F.exhaustive Scenario.quickstart_fresh ~seed:42 ~depth:1 in
  Alcotest.(check int) "quickstart-fresh clean" 0 (F.total_violations cf);
  (* the WAR-hazard app is invisible to every *dynamic* oracle: task
     transactions only guard the Application region, and the buggy task
     read-modify-writes a Runtime-region cell (the static pass below is
     the only thing that catches it) *)
  let cw = F.exhaustive Scenario.war_buggy ~seed:42 ~depth:1 in
  Alcotest.(check int) "war-buggy dynamically clean" 0 (F.total_violations cw);
  (* the alpaca two-phase commit is green under injection everywhere,
     including its four protocol sites *)
  let cal = F.exhaustive Scenario.quickstart_alpaca ~seed:42 ~depth:1 in
  Alcotest.(check int) "quickstart-alpaca clean" 0 (F.total_violations cal)

(* --- NVM-level mutations --- *)

(* Transactional writes land in committed state immediately: a crash
   mid-task exposes partial application writes (the canonical
   intermittent-computing bug ARTEMIS's task transactions exist to
   prevent). *)
let test_tx_write_through () =
  check_mutation ~name:"tx_write_through" ~oracle:"task-atomicity"
    Nvm.Chaos.tx_write_through Scenario.quickstart

(* Runtime bookkeeping writes stop joining the open task transaction, so
   a crash can separate the cursor/monitor updates from the task commit:
   the journal no longer matches the monitors' persistent state. *)
let test_no_write_join () =
  check_mutation ~name:"no_write_join" ~oracle:"golden-reexecution"
    Nvm.Chaos.no_write_join Scenario.quickstart

(* --- runtime-level mutations --- *)

(* The pre-PR2 ordering bug: the monitor-call active flag is raised
   before the thread is re-armed and the failure accumulator cleared, so
   a crash in the window replays a stale verdict. *)
let test_reorder_begin_mcall () =
  check_mutation ~name:"reorder_begin_mcall" ~oracle:"golden-reexecution"
    Runtime.Chaos.reorder_begin_mcall Scenario.quickstart

(* The generation flip commits without its journal entry: golden
   re-execution replays the run against the pre-update property set and
   sees a suite it cannot explain. *)
let test_drop_adapt_journal () =
  check_mutation ~name:"drop_adapt_journal" ~oracle:"golden-reexecution"
    Runtime.Chaos.drop_adapt_journal Scenario.quickstart_adapt

(* The arbitrated corrective action is recorded twice per verdict. *)
let test_double_apply_action () =
  check_mutation ~name:"double_apply_action" ~oracle:"action-at-most-once"
    Runtime.Chaos.double_apply_action Scenario.quickstart

(* One committed update flip logs Adaptation_applied twice. *)
let test_double_adapt_event () =
  check_mutation ~name:"double_adapt_event" ~oracle:"update-exactly-once"
    Runtime.Chaos.double_adapt_event Scenario.quickstart_adapt

(* Every injected-crash recovery allocates a fresh uniquely-named NVM
   cell: the persistent footprint grows run over run. *)
let test_leak_on_recovery () =
  check_mutation ~name:"leak_on_recovery" ~oracle:"stable-footprint"
    Runtime.Chaos.leak_on_recovery Scenario.quickstart

(* Channel pushes bypass the task transaction and land directly in
   committed Application-region FRAM: a crash mid-task exposes the
   half-pushed item (dynamic task-atomicity violation), and the same
   plain write turns the push's read-modify-write into a textbook WAR
   hazard the static pass must flag. *)
let test_hazardous_nontx_write () =
  check_mutation ~name:"hazardous_nontx_write" ~oracle:"task-atomicity"
    Nvm.Chaos.hazardous_nontx_write Scenario.quickstart;
  let report =
    Fun.protect ~finally:reset_all_chaos (fun () ->
        Nvm.Chaos.hazardous_nontx_write := true;
        let b = Scenario.quickstart.Scenario.build ~engine:None ~seed:42 in
        Consistency.War.analyze_app (Device.nvm b.Scenario.device)
          b.Scenario.app)
  in
  Alcotest.(check bool)
    "hazardous_nontx_write: static WAR pass flags the channel cell" true
    (List.exists
       (fun (h : Consistency.War.hazard) -> h.haz_cell = "chan:samples")
       report.Consistency.War.hazards)

(* --- alpaca two-phase-commit mutations (PR 10) --- *)

(* The recovery swap loses the youngest Application-region entry of the
   sealed redo log - a broken (non-atomic) publish.  Clean runs never
   enter recovery with a sealed log, so the control stays green; any
   injected crash inside the sealed window (between alpaca.log.after
   and the log clear) now recovers to a torn application state, which
   the task-atomicity oracle's promised-write-set check must report. *)
let test_torn_commit_log () =
  check_mutation ~name:"torn_commit_log" ~oracle:"task-atomicity"
    Alpaca.Chaos.torn_commit_log Scenario.quickstart_alpaca

(* --- freshness-level mutations --- *)

(* Producer completions stop stamping their data: every consumer check
   finds no provable timestamp and reports unstamped consumption. *)
let test_skip_freshness_stamp () =
  check_mutation ~name:"skip_freshness_stamp" ~oracle:"input-freshness"
    Consistency.Freshness.Chaos.skip_freshness_stamp Scenario.quickstart_fresh

(* A remanence-timekeeper misestimate: every recovery skews the tracker
   clock an hour forward, so any consumption after a crash reads as far
   beyond the 10-minute budget. *)
let test_clock_skip_on_recovery () =
  check_mutation ~name:"clock_skip_on_recovery" ~oracle:"input-freshness"
    Consistency.Freshness.Chaos.clock_skip_on_recovery
    Scenario.quickstart_fresh

(* --- meta: across the suite, every oracle fired at least once --- *)

let test_all_oracles_covered () =
  List.iter
    (fun oracle ->
      Alcotest.(check bool)
        (Printf.sprintf "some mutation trips %s" oracle)
        true
        (Hashtbl.mem fired_anywhere oracle))
    all_oracles

let suite =
  [
    ("control: all hooks off, campaigns green", `Quick, test_control);
    ("tx_write_through -> task-atomicity", `Quick, test_tx_write_through);
    ("no_write_join -> golden-reexecution", `Quick, test_no_write_join);
    ("reorder_begin_mcall -> golden-reexecution", `Quick,
      test_reorder_begin_mcall);
    ("drop_adapt_journal -> golden-reexecution", `Quick,
      test_drop_adapt_journal);
    ("double_apply_action -> action-at-most-once", `Quick,
      test_double_apply_action);
    ("double_adapt_event -> update-exactly-once", `Quick,
      test_double_adapt_event);
    ("leak_on_recovery -> stable-footprint", `Quick, test_leak_on_recovery);
    ("hazardous_nontx_write -> task-atomicity + static WAR", `Quick,
      test_hazardous_nontx_write);
    ("torn_commit_log -> task-atomicity (two-phase publish)", `Quick,
      test_torn_commit_log);
    ("skip_freshness_stamp -> input-freshness", `Quick,
      test_skip_freshness_stamp);
    ("clock_skip_on_recovery -> input-freshness", `Quick,
      test_clock_skip_on_recovery);
    ("every oracle fired somewhere", `Quick, test_all_oracles_covered);
  ]
