open Artemis

let checkf = Alcotest.(check (float 1e-6))
let uj e = Energy.to_uj e

let test_constant () =
  let h = Harvester.Constant (Energy.mw 2.) in
  checkf "integrates" 2_000.
    (uj (Harvester.harvested h ~from_:Time.zero ~until:(Time.of_sec 1)));
  match Harvester.time_to_harvest h ~now:Time.zero (Energy.mj 1.) with
  | Some t -> Alcotest.check Helpers.time "500ms" (Time.of_ms 500) t
  | None -> Alcotest.fail "expected a duration"

let test_constant_zero_starves () =
  let h = Harvester.Constant (Energy.uw 0.) in
  Alcotest.(check bool)
    "never harvests" true
    (Harvester.time_to_harvest h ~now:Time.zero (Energy.uj 1.) = None)

let duty =
  (* 1 s period, 2 mW during the first 25% -> 0.5 mJ per period *)
  Harvester.Duty_cycle
    { period = Time.of_sec 1; on_fraction = 0.25; rate = Energy.mw 2. }

let test_duty_rate_at () =
  checkf "on phase" 2_000. (Energy.to_uw (Harvester.rate_at duty (Time.of_ms 100)));
  checkf "off phase" 0. (Energy.to_uw (Harvester.rate_at duty (Time.of_ms 600)));
  checkf "next period on" 2_000.
    (Energy.to_uw (Harvester.rate_at duty (Time.of_ms 1_100)))

let test_duty_integral () =
  checkf "two full periods" 1_000.
    (uj (Harvester.harvested duty ~from_:Time.zero ~until:(Time.of_sec 2)));
  (* 125 ms into the on-phase at 2 mW *)
  checkf "half an on-phase" 250.
    (uj (Harvester.harvested duty ~from_:Time.zero ~until:(Time.of_ms 125)))

let test_duty_time_to_harvest () =
  (* 1.25 mJ = 2 periods (1.0 mJ) + half an on-phase (125 ms) *)
  match Harvester.time_to_harvest duty ~now:Time.zero (Energy.uj 1_250.) with
  | Some t -> Alcotest.check Helpers.time "2.125s" (Time.of_us 2_125_000) t
  | None -> Alcotest.fail "expected a duration"

let trace =
  Harvester.Trace
    [|
      (Time.zero, Energy.mw 1.);
      (Time.of_sec 1, Energy.uw 0.);
      (Time.of_sec 2, Energy.mw 4.);
    |]

let test_trace_integral () =
  checkf "first segment only" 1_000.
    (uj (Harvester.harvested trace ~from_:Time.zero ~until:(Time.of_sec 2)));
  checkf "with last segment" 5_000.
    (uj (Harvester.harvested trace ~from_:Time.zero ~until:(Time.of_sec 3)))

let test_trace_time_to_harvest () =
  (* starting inside the dead segment, 2 mJ needs 0.5 s of the 4 mW tail
     reached after 0.5 s of waiting *)
  match
    Harvester.time_to_harvest trace ~now:(Time.of_us 1_500_000) (Energy.mj 2.)
  with
  | Some t -> Alcotest.check Helpers.time "1s" (Time.of_sec 1) t
  | None -> Alcotest.fail "expected a duration"

let test_trace_starvation () =
  let dead =
    Harvester.Trace [| (Time.zero, Energy.mw 1.); (Time.of_sec 1, Energy.uw 0.) |]
  in
  Alcotest.(check bool)
    "dead tail starves" true
    (Harvester.time_to_harvest dead ~now:(Time.of_sec 5) (Energy.uj 1.) = None)

let test_validate () =
  let ok h = Alcotest.(check bool) "valid" true (Harvester.validate h = Ok ()) in
  ok duty;
  ok trace;
  let bad h = Alcotest.(check bool) "invalid" true (Result.is_error (Harvester.validate h)) in
  bad (Harvester.Duty_cycle { period = Time.zero; on_fraction = 0.5; rate = Energy.mw 1. });
  bad (Harvester.Duty_cycle { period = Time.of_sec 1; on_fraction = 1.5; rate = Energy.mw 1. });
  bad (Harvester.Trace [||]);
  bad (Harvester.Trace [| (Time.of_sec 1, Energy.mw 1.) |]);
  bad (Harvester.Trace [| (Time.zero, Energy.mw 1.); (Time.zero, Energy.mw 2.) |])

(* time_to_harvest is consistent with harvested: collecting for the
   returned duration yields at least the requested energy. *)
let consistency =
  QCheck.Test.make ~name:"time_to_harvest consistent with harvested" ~count:200
    QCheck.(pair (float_range 1. 5_000.) (int_range 0 3_000_000))
    (fun (need_uj, now_us) ->
      let now = Time.of_us now_us in
      let need = Energy.uj need_uj in
      match Harvester.time_to_harvest duty ~now need with
      | None -> false
      | Some dt ->
          let got = Harvester.harvested duty ~from_:now ~until:(Time.add now dt) in
          Energy.to_uj got +. 1e-3 >= need_uj)

(* --- differential tests for the binary-search trace lookup ---

   The optimized rate_at/integral must agree with the naive O(n) scan
   they replaced, on random traces and random (including monotone and
   interleaved-across-arrays) query orders. *)

let naive_rate_at arr at =
  let rec find i best =
    if i >= Array.length arr then best
    else if Time.(fst arr.(i) <= at) then find (i + 1) (snd arr.(i))
    else best
  in
  find 0 (Energy.uw 0.)

let naive_integral arr at =
  let n = Array.length arr in
  let acc = ref Energy.zero in
  for i = 0 to n - 1 do
    let seg_start, rate = arr.(i) in
    let seg_end = if i + 1 < n then fst arr.(i + 1) else at in
    let seg_end = Time.min seg_end at in
    if Time.(seg_start < seg_end) then
      acc := Energy.add !acc (Energy.consumed rate (Time.sub seg_end seg_start))
  done;
  !acc

(* a strictly-increasing trace starting at 0 from random positive gaps *)
let trace_of_gaps gaps =
  let t = ref 0 in
  Array.of_list
    (List.mapi
       (fun i (gap_us, rate_uw) ->
         if i > 0 then t := !t + gap_us;
         (Time.of_us !t, Energy.uw rate_uw))
       gaps)

let gaps_gen =
  QCheck.(
    list_of_size
      (Gen.int_range 1 40)
      (pair (int_range 1 500_000) (float_range 0. 5_000.)))

let trace_differential =
  QCheck.Test.make ~name:"trace lookup agrees with the naive scan" ~count:300
    QCheck.(pair gaps_gen (list_of_size (Gen.int_range 1 30) (int_range 0 25_000_000)))
    (fun (gaps, queries) ->
      let arr = trace_of_gaps gaps in
      let h = Harvester.Trace arr in
      List.for_all
        (fun q ->
          let at = Time.of_us q in
          Energy.to_uw (Harvester.rate_at h at)
          = Energy.to_uw (naive_rate_at arr at)
          && Energy.to_uj (Harvester.harvested h ~from_:Time.zero ~until:at)
             = Energy.to_uj (naive_integral arr at))
        queries)

let trace_differential_monotone =
  QCheck.Test.make
    ~name:"monotone queries ride the cursor and agree with the naive scan"
    ~count:200
    QCheck.(pair gaps_gen (list_of_size (Gen.int_range 1 30) (int_range 0 1_000_000)))
    (fun (gaps, steps) ->
      let arr = trace_of_gaps gaps in
      let h = Harvester.Trace arr in
      let at = ref 0 in
      List.for_all
        (fun step ->
          at := !at + step;
          let q = Time.of_us !at in
          Energy.to_uw (Harvester.rate_at h q)
          = Energy.to_uw (naive_rate_at arr q)
          && Energy.to_uj (Harvester.harvested h ~from_:Time.zero ~until:q)
             = Energy.to_uj (naive_integral arr q))
        steps)

(* alternating queries across two distinct arrays exercise the cache
   invalidation path on every call *)
let trace_differential_interleaved =
  QCheck.Test.make ~name:"interleaved arrays invalidate the cursor cache"
    ~count:100
    QCheck.(triple gaps_gen gaps_gen (list_of_size (Gen.int_range 1 20) (int_range 0 25_000_000)))
    (fun (gaps_a, gaps_b, queries) ->
      let a = trace_of_gaps gaps_a and b = trace_of_gaps gaps_b in
      let ha = Harvester.Trace a and hb = Harvester.Trace b in
      List.for_all
        (fun q ->
          let at = Time.of_us q in
          Energy.to_uj (Harvester.harvested ha ~from_:Time.zero ~until:at)
          = Energy.to_uj (naive_integral a at)
          && Energy.to_uj (Harvester.harvested hb ~from_:Time.zero ~until:at)
             = Energy.to_uj (naive_integral b at)
          && Energy.to_uw (Harvester.rate_at ha at)
             = Energy.to_uw (naive_rate_at a at))
        queries)

let suite =
  [
    Alcotest.test_case "constant rate" `Quick test_constant;
    Alcotest.test_case "zero rate starves" `Quick test_constant_zero_starves;
    Alcotest.test_case "duty cycle rate_at" `Quick test_duty_rate_at;
    Alcotest.test_case "duty cycle integral" `Quick test_duty_integral;
    Alcotest.test_case "duty cycle time_to_harvest" `Quick
      test_duty_time_to_harvest;
    Alcotest.test_case "trace integral" `Quick test_trace_integral;
    Alcotest.test_case "trace time_to_harvest" `Quick test_trace_time_to_harvest;
    Alcotest.test_case "trace starvation" `Quick test_trace_starvation;
    Alcotest.test_case "validation" `Quick test_validate;
    QCheck_alcotest.to_alcotest consistency;
    QCheck_alcotest.to_alcotest trace_differential;
    QCheck_alcotest.to_alcotest trace_differential_monotone;
    QCheck_alcotest.to_alcotest trace_differential_interleaved;
  ]
