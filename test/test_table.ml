(* Unit tests for the flat-table bytecode engine (Fsm.Table): interning,
   CSR dispatch lookup, bytecode edge cases (division by zero, NaN), the
   packed suite buffer, the zero-allocation steady-state contract, and a
   faultsim depth-1 campaign under the Table engine.  Randomized
   three-way equivalence lives in test_differential.ml. *)

open Artemis
module F = Fsm.Ast
module Interp = Fsm.Interp
module Compile = Fsm.Compile
module Table = Fsm.Table

let parse = Fsm.Parser.parse_machine_exn

let failure =
  Alcotest.testable
    (fun ppf (f : Interp.failure) ->
      Format.fprintf ppf "%s/%s" f.Interp.failed_machine
        (F.action_to_string f.Interp.action))
    ( = )

let machine_text =
  {|
machine m {
  var x : int = 0;
  persistent var keep : int = 7;
  initial state A {
    on startTask(t) when (x < 2) { x := x + 1; } -> B;
    on startTask(t) { fail restartTask; } -> A;
  }
  state B {
    on endTask(t) -> A;
    on anyEvent when (x > 10) { fail skipPath Path 2; } -> B;
  }
}
|}

let test_interning () =
  let m = parse machine_text in
  let t = Table.compile m in
  let c = Compile.compile m in
  Alcotest.(check int) "state count" 2 (Table.state_count t);
  Alcotest.(check string) "state 0" "A" (Table.state_name t 0);
  Alcotest.(check string) "state 1" "B" (Table.state_name t 1);
  Alcotest.(check int) "id of B" 1 (Table.state_id t "B");
  Alcotest.(check int) "initial is A" 0 (Table.initial_state t);
  Alcotest.(check int) "var count" 2 (Table.var_count t);
  Alcotest.(check string) "slot 0" "x" (Table.var_name t 0);
  Alcotest.(check int) "slot of keep" 1 (Table.var_id t "keep");
  (* slot numbering is shared with the compiled engine, so NVM cell
     layouts are interchangeable between engines *)
  List.iter
    (fun (v : F.var_decl) ->
      Alcotest.(check int)
        ("slot of " ^ v.F.var_name)
        (Compile.var_id c v.F.var_name)
        (Table.var_id t v.F.var_name))
    m.F.vars;
  (match Table.state_id t "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown state must raise");
  Alcotest.(check (list string)) "watched tasks" [ "t" ] (Table.watched_tasks t);
  Alcotest.(check bool) "uses anyEvent" true (Table.watches_any_event t);
  Alcotest.(check bool) "mentions watched" true (Table.mentions_task t "t");
  Alcotest.(check bool) "anyEvent mentions all" true (Table.mentions_task t "zz")

let test_footprint () =
  let t = Table.compile (parse machine_text) in
  Alcotest.(check bool) "dispatch table non-empty" true (Table.dispatch_words t > 0);
  Alcotest.(check bool) "bytecode non-empty" true (Table.code_words t > 0);
  Alcotest.(check int) "buffer = dispatch + code"
    (Table.dispatch_words t + Table.code_words t)
    (Table.buffer_words t);
  (* register file: control state + 2 int vars, no floats *)
  Alcotest.(check int) "int registers" 3 (Table.int_regs t);
  Alcotest.(check int) "float registers" 0 (Table.float_regs t)

(* CSR dispatch: the (state, kind, task) row must deliver exactly the
   declaration-order candidates, with unknown tasks falling back to the
   anyEvent-only column. *)
let test_csr_dispatch () =
  let t = Table.compile (parse machine_text) in
  let inst = Table.instance t in
  (* A + start(t): guard x<2 passes, first transition fires -> B *)
  ignore (Table.step t inst (Helpers.event ~task:"t" ()));
  Alcotest.(check int) "A -start t-> B" 1 (Table.current_state inst);
  (* B + start for an unknown task: anyEvent candidate, guard x>10 false,
     implicit self-transition *)
  Alcotest.(check (list failure)) "unknown task: no fire" []
    (Table.step t inst (Helpers.event ~task:"zz" ()));
  Alcotest.(check int) "still in B" 1 (Table.current_state inst);
  (* B + end(t) -> A *)
  ignore (Table.step t inst (Helpers.event ~kind:Interp.End ~task:"t" ()));
  Alcotest.(check int) "B -end t-> A" 0 (Table.current_state inst);
  (* end(t) in A matches nothing: stay *)
  ignore (Table.step t inst (Helpers.event ~kind:Interp.End ~task:"t" ()));
  Alcotest.(check int) "A ignores end(t)" 0 (Table.current_state inst);
  (* exhaust the guard: x reaches 2, then the fail fallback fires *)
  ignore (Table.step t inst (Helpers.event ~task:"t" ()));  (* x=2, -> B *)
  ignore (Table.step t inst (Helpers.event ~kind:Interp.End ~task:"t" ()));
  let failures = Table.step t inst (Helpers.event ~task:"t" ()) in
  Alcotest.(check (list failure)) "fallback fails"
    [ { Interp.failed_machine = "m"; action = F.Restart_task; target_path = None } ]
    failures

let test_division_by_zero () =
  let m =
    parse
      {|
machine div {
  var x : int = 1;
  initial state A {
    on startTask(t) { x := x / (x - 1); } -> A;
    on endTask(t) { x := x % (x - 1); } -> A;
  }
}
|}
  in
  let t = Table.compile m in
  let inst = Table.instance t in
  (match Table.step t inst (Helpers.event ~task:"t" ()) with
  | exception Interp.Runtime_error msg ->
      Alcotest.(check string) "same message as interpreter"
        "integer division by zero" msg
  | _ -> Alcotest.fail "div by zero must raise");
  (match Table.step t inst (Helpers.event ~kind:Interp.End ~task:"t" ()) with
  | exception Interp.Runtime_error msg ->
      Alcotest.(check string) "same message as interpreter" "modulo by zero" msg
  | _ -> Alcotest.fail "mod by zero must raise")

let test_missing_dep_data () =
  let m =
    parse
      {|
machine dep {
  var f : float = 0.0;
  initial state A {
    on startTask(t) { f := data(d); } -> A;
  }
}
|}
  in
  let t = Table.compile m in
  let inst = Table.instance t in
  match Table.step t inst (Helpers.event ~task:"t" ~dep_data:[] ()) with
  | exception Interp.Runtime_error msg ->
      Alcotest.(check string) "same message as interpreter"
        "event carries no data for \"d\"" msg
  | _ -> Alcotest.fail "missing payload must raise"

(* NaN handling: 0/0 stores NaN; [Ast.same_value] treats NaN as equal to
   itself (totals via Float.compare) while the machine-level IEEE [=]
   keeps NaN <> NaN - both must match the interpreter exactly. *)
let test_nan_semantics () =
  let m =
    parse
      {|
machine nan {
  var f : float = 0.0;
  var b : bool = false;
  initial state A {
    on startTask(t) { f := f / f; b := f == f; } -> A;
  }
}
|}
  in
  let t = Table.compile m in
  let inst = Table.instance t in
  let istore = Interp.memory_store m in
  ignore (Table.step t inst (Helpers.event ~task:"t" ()));
  ignore (Interp.step m istore (Helpers.event ~task:"t" ()));
  let tf = Table.read_var t inst (Table.var_id t "f") in
  Alcotest.(check bool) "f is NaN" true
    (match tf with F.Vfloat x -> Float.is_nan x | _ -> false);
  Alcotest.check Helpers.value "NaN totals agree with interp"
    (istore.Interp.get "f") tf;
  (* b := f = f used IEEE equality mid-step: NaN <> NaN *)
  Alcotest.check Helpers.value "IEEE NaN <> NaN" (F.Vbool false)
    (Table.read_var t inst (Table.var_id t "b"))

(* The ISSUE contract: a steady-state step allocates nothing.  Drive a
   machine through guard evaluation, arithmetic and register stores for
   10k steps and require the minor-heap delta to stay within a small
   constant slack (the Gc probe itself boxes a float). *)
let test_zero_allocation () =
  let m =
    parse
      {|
machine hot {
  var x : int = 0;
  var f : float = 1.5;
  initial state A {
    on startTask(t) when (x < 1000000 && f < 100000.0) { x := x + 1; f := f * 1.0001; } -> B;
  }
  state B {
    on endTask(t) when (x % 7 != 3 || f > 0.0) { x := x + 1; } -> A;
  }
}
|}
  in
  let t = Table.compile m in
  let inst = Table.instance t in
  let ev_start = Helpers.event ~task:"t" () in
  let ev_end = Helpers.event ~kind:Interp.End ~task:"t" () in
  (* warm up: fault in any lazy setup *)
  ignore (Table.step t inst ev_start);
  ignore (Table.step t inst ev_end);
  let before = Gc.minor_words () in
  for _ = 1 to 5_000 do
    ignore (Table.step t inst ev_start);
    ignore (Table.step t inst ev_end)
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256. then
    Alcotest.failf "10k steps allocated %.0f minor words (want ~0)" delta

let test_packed_suite () =
  let m1 = parse machine_text in
  let m2 =
    parse
      {|
machine other {
  var f : float = 2.5;
  initial state S {
    on startTask(u) { f := f + 0.5; } -> S;
  }
}
|}
  in
  let t1 = Table.compile m1 and t2 = Table.compile m2 in
  let packed = Table.pack [ t1; t2 ] in
  Alcotest.(check int) "ints contiguous"
    (Table.int_regs t1 + Table.int_regs t2)
    (Array.length packed.Table.p_ints);
  (match packed.Table.p_insts with
  | [ i1; i2 ] ->
      ignore (Table.step t1 i1 (Helpers.event ~task:"t" ()));
      ignore (Table.step t2 i2 (Helpers.event ~task:"u" ()));
      Alcotest.(check int) "machine 1 stepped" 1 (Table.current_state i1);
      Alcotest.check Helpers.value "machine 2 stepped" (F.Vfloat 3.0)
        (Table.read_var t2 i2 0);
      (* both live in the one shared register pair *)
      Alcotest.(check int) "suite state visible in shared buffer" 1
        packed.Table.p_ints.(0)
  | _ -> Alcotest.fail "two instances expected")

(* the crash-recovery contract under the table engine: depth-1 exhaustive
   fault injection on quickstart, all four oracles green *)
let test_faultsim_depth1_table () =
  let scenario =
    Artemis_faultsim.Scenario.with_engine Monitor.Table
      Artemis_faultsim.Scenario.quickstart
  in
  let campaign = Artemis_faultsim.Faultsim.exhaustive scenario ~seed:11 ~depth:1 in
  Alcotest.(check int) "no oracle violations" 0
    (Artemis_faultsim.Faultsim.total_violations campaign)

let suite =
  [
    Alcotest.test_case "interning tables" `Quick test_interning;
    Alcotest.test_case "flat-buffer footprint" `Quick test_footprint;
    Alcotest.test_case "CSR dispatch lookup" `Quick test_csr_dispatch;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "missing data() payload" `Quick test_missing_dep_data;
    Alcotest.test_case "NaN semantics" `Quick test_nan_semantics;
    Alcotest.test_case "zero allocation per step" `Quick test_zero_allocation;
    Alcotest.test_case "packed suite buffer" `Quick test_packed_suite;
    Alcotest.test_case "faultsim depth-1 (table engine)" `Quick
      test_faultsim_depth1_table;
  ]
