open Artemis

let populated_log () =
  let r =
    Artemis_experiments.Config.run_health
      Artemis_experiments.Config.Artemis_runtime
      (Artemis_experiments.Config.Intermittent (Time.of_min 6))
  in
  Device.log r.Artemis_experiments.Config.device

let test_verdicts () =
  let log = populated_log () in
  let verdicts = Summary.verdicts_by_monitor log in
  Alcotest.(check (option int)) "3 MITD verdicts" (Some 3)
    (List.assoc_opt "MITD_send_accel" verdicts);
  Alcotest.(check (option int)) "9 collect restarts" (Some 9)
    (List.assoc_opt "collect_calcAvg_bodyTemp" verdicts)

let test_sorted_descending () =
  let attempts = Summary.attempts_by_task (populated_log ()) in
  let counts = List.map snd attempts in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) counts) counts

let test_actions () =
  let actions = Summary.actions_by_kind (populated_log ()) in
  Alcotest.(check (option int)) "one maxAttempt skip" (Some 1)
    (List.assoc_opt "skipPath" actions)

let test_render_empty () =
  Alcotest.(check string) "empty log renders empty" "" (Summary.render (Log.create ()))

(* Regression: summary ordering must not depend on hash-table iteration
   order (which varies with insertion order and OCaml version).  Equal
   counts are tie-broken by key, and recording the same events in any
   order renders the same summary byte-for-byte. *)
let test_deterministic_ordering () =
  let log_of tasks =
    let log = Log.create () in
    List.iter
      (fun task ->
        Log.record log ~at:Time.zero (Event.Task_started { task; attempt = 1 }))
      tasks;
    log
  in
  let tasks = [ "delta"; "alpha"; "echo"; "bravo"; "charlie" ] in
  (* all counts tie at 1: the rendered order must be the key order *)
  Alcotest.(check (list (pair string int)))
    "ties sort by key"
    [ ("alpha", 1); ("bravo", 1); ("charlie", 1); ("delta", 1); ("echo", 1) ]
    (Summary.attempts_by_task (log_of tasks));
  let reference = Summary.render (log_of tasks) in
  List.iter
    (fun permuted ->
      Alcotest.(check string)
        "render is insertion-order independent" reference
        (Summary.render (log_of permuted)))
    [
      [ "alpha"; "bravo"; "charlie"; "delta"; "echo" ];
      [ "echo"; "delta"; "charlie"; "bravo"; "alpha" ];
      [ "charlie"; "echo"; "alpha"; "delta"; "bravo" ];
    ]

let suite =
  [
    Alcotest.test_case "verdicts by monitor" `Quick test_verdicts;
    Alcotest.test_case "descending order" `Quick test_sorted_descending;
    Alcotest.test_case "actions by kind" `Quick test_actions;
    Alcotest.test_case "empty render" `Quick test_render_empty;
    Alcotest.test_case "deterministic ordering" `Quick test_deterministic_ordering;
  ]
