open Artemis

let small_device ?(delay = Time.of_sec 10) () =
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 5.) ~on_threshold:(Energy.mj 4.5)
      ~off_threshold:(Energy.mj 1.) ()
  in
  Device.create ~capacitor ~policy:(Charging_policy.Fixed_delay delay) ()

let test_consume_completes () =
  let d = Helpers.powered_device () in
  (match Device.consume d Device.App ~power:(Energy.mw 2.) ~duration:(Time.of_ms 100) () with
  | Device.Completed -> ()
  | Device.Interrupted | Device.Starved -> Alcotest.fail "unexpected interruption");
  Alcotest.check Helpers.time "time advanced" (Time.of_ms 100) (Device.sim_time d);
  Alcotest.check Helpers.time "accounted to app" (Time.of_ms 100)
    (Device.time_in d Device.App);
  Alcotest.(check (float 1e-6)) "energy accounted" 200.
    (Energy.to_uj (Device.energy_in d Device.App))

let test_zero_power_only_advances_time () =
  let d = small_device () in
  (match Device.consume d Device.Runtime_work ~power:(Energy.uw 0.) ~duration:(Time.of_sec 5) () with
  | Device.Completed -> ()
  | Device.Interrupted | Device.Starved -> Alcotest.fail "interrupted");
  Alcotest.(check int) "no failures" 0 (Device.power_failures d);
  Alcotest.(check (float 1e-9)) "no energy" 0. (Energy.to_uj (Device.total_energy d))

let test_depletion_interrupts () =
  let d = small_device () in
  (* 4 mJ usable; ask for 8 mJ of work: interrupted halfway *)
  (match Device.consume d Device.App ~during:"big" ~power:(Energy.mw 8.) ~duration:(Time.of_sec 1) () with
  | Device.Interrupted -> ()
  | Device.Completed | Device.Starved -> Alcotest.fail "expected interruption");
  (* the partial half-second ran, then a 10 s charging delay *)
  Alcotest.check Helpers.time "partial time + off time" (Time.of_us 10_500_000)
    (Device.sim_time d);
  Alcotest.check Helpers.time "off time" (Time.of_sec 10) (Device.off_time d);
  Alcotest.(check int) "one failure" 1 (Device.power_failures d);
  Alcotest.(check int) "one reboot" 1 (Device.reboots d);
  Alcotest.(check (float 1e-3)) "partial energy charged" 4_000.
    (Energy.to_uj (Device.energy_in d Device.App));
  (* capacitor recharged full by the fixed-delay policy *)
  Alcotest.(check (float 1e-6)) "recharged" 5.
    (Energy.to_mj (Capacitor.level (Device.capacitor d)))

let test_failure_aborts_nvm_tx () =
  let d = small_device () in
  let nvm = Device.nvm d in
  let cell = Nvm.cell nvm ~region:Nvm.Application ~name:"x" ~bytes:4 0 in
  Nvm.begin_tx nvm;
  Nvm.tx_write cell 9;
  (match Device.consume d Device.App ~power:(Energy.mw 8.) ~duration:(Time.of_sec 1) () with
  | Device.Interrupted -> ()
  | Device.Completed | Device.Starved -> Alcotest.fail "expected interruption");
  Alcotest.(check bool) "tx closed" false (Nvm.in_tx nvm);
  Alcotest.(check int) "rolled back" 0 (Nvm.read cell)

let test_failure_event_names_task () =
  let d = small_device () in
  ignore (Device.consume d Device.App ~during:"accel" ~power:(Energy.mw 8.) ~duration:(Time.of_sec 1) ());
  let failures =
    Log.find_all (Device.log d) (function
      | Event.Power_failure { during_task = Some "accel" } -> true
      | _ -> false)
  in
  Alcotest.(check int) "logged with task name" 1 (List.length failures)

let test_scheduled_failure () =
  let d = Helpers.powered_device () in
  Device.schedule_failure d ~at:(Time.of_ms 50);
  (match Device.consume d Device.App ~power:(Energy.mw 1.) ~duration:(Time.of_ms 200) () with
  | Device.Interrupted -> ()
  | Device.Completed | Device.Starved -> Alcotest.fail "expected injected failure");
  Alcotest.(check int) "failure injected" 1 (Device.power_failures d);
  (* the partial 50 ms ran before the injection *)
  Alcotest.check Helpers.time "app time" (Time.of_ms 50) (Device.time_in d Device.App)

(* Regression: a failure scheduled beyond the capacitor's reach.  4 mJ
   usable at 8 mW depletes at 500 ms, before the 1 s injection point;
   the device must brown out there and account only the energy actually
   drawn.  The scheduled-failure path used to ignore the drain result,
   advancing to the injection point and accounting 8 mJ the capacitor
   never held. *)
let test_depletion_before_scheduled_failure () =
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 5.) ~on_threshold:(Energy.mj 4.5)
      ~off_threshold:(Energy.mj 1.) ()
  in
  let d =
    Device.create ~capacitor
      ~policy:(Charging_policy.From_harvester (Harvester.Constant (Energy.uw 0.)))
      ()
  in
  Device.schedule_failure d ~at:(Time.of_sec 1);
  (match
     Device.consume d Device.App ~during:"big" ~power:(Energy.mw 8.)
       ~duration:(Time.of_sec 2) ()
   with
  | Device.Starved -> ()
  | Device.Completed | Device.Interrupted -> Alcotest.fail "expected starvation");
  Alcotest.check Helpers.time "browned out at depletion, not at injection"
    (Time.of_ms 500) (Device.sim_time d);
  Alcotest.(check (float 1e-3)) "only drawn energy accounted" 4_000.
    (Energy.to_uj (Device.energy_in d Device.App));
  Alcotest.(check (float 1e-6)) "level clamped at the off threshold" 1.
    (Energy.to_mj (Capacitor.level (Device.capacitor d)));
  (* conservation: accounted energy equals what left the capacitor *)
  Alcotest.(check (float 1e-6)) "accounting matches the capacitor" 4_000.
    (5_000. -. Energy.to_uj (Capacitor.level (Device.capacitor d)))

let test_starvation () =
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 1.) ~on_threshold:(Energy.mj 0.9)
      ~off_threshold:(Energy.mj 0.1) ()
  in
  let d =
    Device.create ~capacitor
      ~policy:(Charging_policy.From_harvester (Harvester.Constant (Energy.uw 0.)))
      ()
  in
  (match Device.consume d Device.App ~power:(Energy.mw 10.) ~duration:(Time.of_sec 1) () with
  | Device.Starved -> ()
  | Device.Completed | Device.Interrupted -> Alcotest.fail "expected starvation");
  Alcotest.(check bool) "horizon exceeded" true (Device.horizon_exceeded d);
  (match Device.consume d Device.App ~power:(Energy.mw 1.) ~duration:(Time.of_ms 1) () with
  | Device.Starved -> ()
  | Device.Completed | Device.Interrupted -> Alcotest.fail "still starved")

let test_harvester_policy_recharge () =
  let capacitor =
    Capacitor.create ~capacity:(Energy.mj 2.) ~on_threshold:(Energy.mj 1.5)
      ~off_threshold:(Energy.mj 0.5) ()
  in
  let d =
    Device.create ~capacitor
      ~policy:(Charging_policy.From_harvester (Harvester.Constant (Energy.mw 1.)))
      ()
  in
  (* drain 1.5 mJ usable, then 1 mJ deficit at 1 mW = 1 s off time *)
  (match Device.consume d Device.App ~power:(Energy.mw 3.) ~duration:(Time.of_sec 1) () with
  | Device.Interrupted -> ()
  | Device.Completed | Device.Starved -> Alcotest.fail "expected interruption");
  Alcotest.check Helpers.time "off = deficit / rate" (Time.of_sec 1)
    (Device.off_time d);
  Alcotest.(check bool) "turned back on" true
    (Capacitor.can_turn_on (Device.capacitor d))

let accounting_qcheck =
  QCheck.Test.make ~name:"total energy equals sum of categories" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30)
              (pair (int_range 0 2) (pair (float_range 0.1 10.) (int_range 1 100_000))))
    (fun ops ->
      let d = small_device () in
      List.iter
        (fun (cat, (mw, us)) ->
          let category =
            match cat with
            | 0 -> Device.App
            | 1 -> Device.Runtime_work
            | _ -> Device.Monitor_work
          in
          ignore
            (Device.consume d category ~power:(Energy.mw mw)
               ~duration:(Time.of_us us) ()))
        ops;
      let sum =
        Energy.to_uj (Device.energy_in d Device.App)
        +. Energy.to_uj (Device.energy_in d Device.Runtime_work)
        +. Energy.to_uj (Device.energy_in d Device.Monitor_work)
      in
      Float.abs (sum -. Energy.to_uj (Device.total_energy d)) < 1e-6)

let suite =
  [
    Alcotest.test_case "consume completes" `Quick test_consume_completes;
    Alcotest.test_case "zero power advances time only" `Quick
      test_zero_power_only_advances_time;
    Alcotest.test_case "depletion interrupts and recharges" `Quick
      test_depletion_interrupts;
    Alcotest.test_case "failure aborts open NVM tx" `Quick
      test_failure_aborts_nvm_tx;
    Alcotest.test_case "failure log names the task" `Quick
      test_failure_event_names_task;
    Alcotest.test_case "scheduled failure injection" `Quick test_scheduled_failure;
    Alcotest.test_case "depletion before scheduled failure" `Quick
      test_depletion_before_scheduled_failure;
    Alcotest.test_case "harvester starvation" `Quick test_starvation;
    Alcotest.test_case "harvester-driven recharge" `Quick
      test_harvester_policy_recharge;
    QCheck_alcotest.to_alcotest accounting_qcheck;
  ]
