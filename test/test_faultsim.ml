(* The fault-injection engine itself: site numbering, schedule parsing,
   coverage and oracle verdicts of the bounded-exhaustive campaign over
   the quickstart scenario, and byte-identical replay. *)

open Artemis
module F = Artemis_faultsim.Faultsim
module Scenario = Artemis_faultsim.Scenario

let test_site_numbering () =
  Alcotest.(check int)
    "nvm sites, runtime sites, then alpaca sites"
    (List.length Nvm.injection_sites
    + List.length Runtime.injection_sites
    + List.length Alpaca.injection_sites)
    F.site_count;
  Alcotest.(check string) "site 0" "nvm.write.before" F.sites.(0);
  Alcotest.(check string) "first alpaca site" "alpaca.log.before"
    F.sites.(List.length Nvm.injection_sites
             + List.length Runtime.injection_sites);
  List.iteri
    (fun i label -> Alcotest.(check int) ("id of " ^ label) i (F.site_id label))
    (Nvm.injection_sites @ Runtime.injection_sites @ Alpaca.injection_sites)

let test_schedule_roundtrip () =
  let cases = [ []; [ (0, 0) ]; [ (3, 2); (11, 0); (5, 7) ] ] in
  List.iter
    (fun s ->
      match F.schedule_of_string (F.schedule_to_string s) with
      | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | Error msg -> Alcotest.fail msg)
    cases;
  (match F.parse_replay (F.replay_line ~seed:99 [ (4, 1) ]) with
  | Ok (seed, s) ->
      Alcotest.(check int) "seed" 99 seed;
      Alcotest.(check bool) "schedule" true (s = [ (4, 1) ])
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (Result.is_error (F.schedule_of_string bad)))
    [ "x"; "1@"; "@2"; "99@0"; "1@-3" ]

(* the rt.adapt.* sites only fire in scenarios with a scheduled update;
   the alpaca.* sites only fire under the Alpaca backend *)
let is_adapt_site i = List.mem F.sites.(i) Adapt.injection_sites
let is_alpaca_site i = List.mem F.sites.(i) Alpaca.injection_sites

let test_baseline_clean () =
  let r = F.run_schedule Scenario.quickstart ~seed:42 [] in
  Alcotest.(check string) "completes" "completed" r.F.outcome;
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.F.oracle) r.F.violations);
  Alcotest.(check bool) "nothing fired" true (r.F.fired = []);
  Array.iteri
    (fun i h ->
      if is_adapt_site i then
        Alcotest.(check int) ("quiet without updates: " ^ F.sites.(i)) 0 h
      else if is_alpaca_site i then
        Alcotest.(check int)
          ("quiet under the immortal backend: " ^ F.sites.(i))
          0 h
      else
        Alcotest.(check bool) ("hit by a plain run: " ^ F.sites.(i)) true (h > 0))
    r.F.hits

let test_depth1_exhaustive_coverage () =
  let c = F.exhaustive Scenario.quickstart ~seed:42 ~depth:1 in
  (* level 1 is complete over dynamic instants: one run per (site,
     occurrence) pair the uninjected baseline exhibits *)
  let instants = Array.fold_left ( + ) 0 c.F.baseline.F.hits in
  Alcotest.(check int) "one run per dynamic instant" instants
    (List.length c.F.runs);
  Alcotest.(check int) "every fireable site injected"
    (F.site_count
    - List.length Adapt.injection_sites
    - List.length Alpaca.injection_sites)
    (List.length c.F.covered);
  Alcotest.(check int) "zero violations" 0 (F.total_violations c);
  Alcotest.(check bool) "no reproducer" true (c.F.shrunk = None);
  List.iter
    (fun (r : F.run_result) ->
      Alcotest.(check bool)
        ("schedule fired: " ^ F.schedule_to_string r.F.schedule)
        true
        (r.F.fired = r.F.schedule);
      Alcotest.(check bool) "injection rebooted the device" true
        (r.F.power_failures >= 1))
    c.F.runs

let test_replay_deterministic () =
  (* every depth-1 reproducer line rebuilds a byte-identical trace *)
  let c = F.exhaustive Scenario.quickstart ~seed:42 ~depth:1 in
  List.iter
    (fun (r : F.run_result) ->
      let line = F.replay_line ~seed:r.F.seed r.F.schedule in
      match F.replay Scenario.quickstart ~line with
      | Ok (again, reproducible) ->
          Alcotest.(check bool) ("reproducible: " ^ line) true reproducible;
          Alcotest.(check string) ("same digest: " ^ line) r.F.digest
            again.F.digest
      | Error msg -> Alcotest.fail msg)
    c.F.runs

let test_random_campaign_reproducible () =
  let a = F.random_campaign Scenario.quickstart ~seed:7 ~runs:25 ~max_depth:3 in
  let b = F.random_campaign Scenario.quickstart ~seed:7 ~runs:25 ~max_depth:3 in
  Alcotest.(check int) "zero violations" 0 (F.total_violations a);
  Alcotest.(check (list string))
    "same digests from the same campaign seed"
    (List.map (fun r -> r.F.digest) a.F.runs)
    (List.map (fun r -> r.F.digest) b.F.runs)

let test_footprint_matches_baseline () =
  let c = F.exhaustive Scenario.quickstart ~seed:42 ~depth:1 in
  List.iter
    (fun (r : F.run_result) ->
      Alcotest.(check string)
        ("stable footprint: " ^ F.schedule_to_string r.F.schedule)
        c.F.baseline.F.footprint r.F.footprint)
    c.F.runs

let test_json_report_shape () =
  let c = F.exhaustive Scenario.quickstart ~seed:42 ~depth:1 in
  let json = F.campaign_to_json c in
  List.iter
    (fun key ->
      let needle = Printf.sprintf "\"%s\":" key in
      let found =
        let n = String.length needle and l = String.length json in
        let rec go i = i + n <= l && (String.sub json i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("report has " ^ key) true found)
    [
      "scenario"; "mode"; "depth"; "sites"; "registered_sites"; "covered_sites";
      "coverage"; "baseline"; "runs"; "total_runs"; "total_violations"; "shrunk";
    ]

let suite =
  [
    ("site numbering", `Quick, test_site_numbering);
    ("schedule parse/print roundtrip", `Quick, test_schedule_roundtrip);
    ("uninjected baseline is clean", `Quick, test_baseline_clean);
    ("depth-1 exhaustive: full coverage, no violations", `Quick,
      test_depth1_exhaustive_coverage);
    ("replay is byte-identical", `Quick, test_replay_deterministic);
    ("random campaigns reproduce from their seed", `Quick,
      test_random_campaign_reproducible);
    ("injected runs keep the baseline footprint", `Quick,
      test_footprint_matches_baseline);
    ("JSON report keys", `Quick, test_json_report_shape);
  ]
