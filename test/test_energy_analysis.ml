(* PR 9: the static energy-admissibility analysis and its satellites.

   - Cost_model.cycles_to_time must round up (a truncated conversion
     under-bills every monitor call at MCU frequencies that don't divide
     the cycle count evenly);
   - Charging_policy.recharge From_harvester must actually reach the
     turn-on threshold (the integral inversion rounds the charging
     window down by a fraction of a sample);
   - Fleet.percentile must reject non-finite samples instead of letting
     Float.compare sort NaN above every real number;
   - the classification/admission contract on the seeded livelock-prop
     scenario;
   - the bound-domination harness: the static per-suite call bound must
     dominate every Monitor_work energy any single monitor-call attempt
     actually draws, across scenarios x engines x depth-1 injected-failure
     schedules, and on fuzzed machines. *)

open Artemis
module Ea = Energy_analysis
module Scenario = Artemis_faultsim.Scenario

(* --- cycles_to_time rounds up --- *)

let model_at hz = { Cost_model.default with Cost_model.mcu_frequency_hz = hz }

let test_cycles_to_time_regressions () =
  (* 180 cycles @ 8 MHz = 22.5 us: truncation said 22, the bound needs 23 *)
  Alcotest.check Helpers.time "180c @ 8 MHz rounds up" (Time.of_us 23)
    (Cost_model.cycles_to_time (model_at 8_000_000) 180);
  Alcotest.check Helpers.time "180c @ 16 MHz rounds up" (Time.of_us 12)
    (Cost_model.cycles_to_time (model_at 16_000_000) 180);
  Alcotest.check Helpers.time "400c @ 16 MHz" (Time.of_us 25)
    (Cost_model.cycles_to_time (model_at 16_000_000) 400);
  (* the default 1 MHz model is exact: cycles = microseconds, so every
     pre-PR9 trace stays byte-identical *)
  List.iter
    (fun c ->
      Alcotest.check Helpers.time
        (Printf.sprintf "%dc @ 1 MHz unchanged" c)
        (Time.of_us c)
        (Cost_model.cycles_to_time Cost_model.default c))
    [ 0; 1; 119; 120; 180; 400; 999_999 ]

let cycles_to_time_is_ceiling =
  QCheck.Test.make ~name:"cycles_to_time = ceil(cycles/f), never truncates"
    ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_range 1_000 256_000_000))
    (fun (cycles, hz) ->
      let us = Time.to_us (Cost_model.cycles_to_time (model_at hz) cycles) in
      (* smallest integer microsecond count covering the cycles *)
      us * hz >= cycles * 1_000_000
      && (us = 0 || (us - 1) * hz < cycles * 1_000_000))

(* --- recharge reaches the turn-on threshold --- *)

let drained_capacitor () =
  let c =
    Capacitor.create ~capacity:(Energy.uj 2.0) ~on_threshold:(Energy.uj 1.9)
      ~off_threshold:(Energy.uj 0.4) ()
  in
  ignore (Capacitor.drain c (Energy.uj 1.0));
  c

let test_recharge_reaches_threshold () =
  (* seeded rounding regression: a 1.0 uJ deficit at 3 uW inverts to
     333333.33... us; the truncated window harvests 0.999999 uJ and the
     old code booted the device below its turn-on threshold *)
  let c = drained_capacitor () in
  let policy = Charging_policy.From_harvester (Harvester.Constant (Energy.uw 3.)) in
  (match Charging_policy.recharge policy ~now:Time.zero ~capacitor:c with
  | None -> Alcotest.fail "constant harvester can always recharge"
  | Some off_time ->
      Alcotest.(check bool) "turn-on threshold reached" true
        (Capacitor.can_turn_on c);
      Alcotest.(check bool) "charging took time" true
        (Time.compare off_time Time.zero > 0));
  (* permanent starvation still reports None: a trace that ends at zero
     power must not be reported as a successful recharge *)
  let c = drained_capacitor () in
  let dead =
    Charging_policy.From_harvester
      (Harvester.Trace [| (Time.zero, Energy.uw 0.) |])
  in
  Alcotest.(check bool) "dead harvester starves" true
    (Charging_policy.recharge dead ~now:Time.zero ~capacitor:c = None)

let recharge_post_level =
  QCheck.Test.make
    ~name:"recharge Some => capacitor at turn-on threshold" ~count:300
    QCheck.(
      triple (float_range 0.5 50.) (float_range 0.1 0.9) (float_range 0.7 500.))
    (fun (capacity, drain_frac, rate_uw) ->
      let c =
        Capacitor.create ~capacity:(Energy.uj capacity)
          ~on_threshold:(Energy.uj (capacity *. 0.9))
          ~off_threshold:(Energy.uj (capacity *. 0.1))
          ()
      in
      ignore (Capacitor.drain c (Energy.uj (capacity *. drain_frac)));
      let policy =
        Charging_policy.From_harvester (Harvester.Constant (Energy.uw rate_uw))
      in
      match Charging_policy.recharge policy ~now:(Time.of_ms 5) ~capacitor:c with
      | None -> false (* a constant positive rate always recharges *)
      | Some _ -> Capacitor.can_turn_on c)

(* --- percentile rejects non-finite samples --- *)

let test_percentile_rejects_non_finite () =
  List.iter
    (fun bad ->
      Alcotest.check_raises "non-finite sample"
        (Invalid_argument "Fleet.percentile: non-finite sample") (fun () ->
          ignore (Fleet.percentile [| 1.0; bad; 3.0 |] 0.5)))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  Alcotest.(check (float 1e-9))
    "finite samples still work" 2.0
    (Fleet.percentile [| 3.0; 1.0; 2.0 |] 0.5)

(* --- the seeded livelock-prop scenario: classification + admission --- *)

let build_livelock () = Scenario.livelock_prop.Scenario.build ~engine:None ~seed:42

let payload_machines (u : Adapt.update) =
  match u.Adapt.payload with
  | None -> []
  | Some (Adapt.Machine_source src) -> (
      match Fsm.Parser.parse src with
      | Ok ms -> ms
      | Error e -> Alcotest.failf "payload parse: %s" e)
  | Some (Adapt.Spec_source src) -> (
      match Spec.Parser.parse src with
      | Ok spec -> To_fsm.spec spec
      | Error e -> Alcotest.failf "payload parse: %s" e)

let test_livelock_prop_classification () =
  let b = build_livelock () in
  let model = b.Scenario.config.Runtime.cost_model in
  let deployment = b.Scenario.config.Runtime.deployment in
  let budget = Ea.budget_of_device b.Scenario.device in
  (* the deployed property fits the 1.0 uJ budget *)
  List.iter
    (fun (e : Ea.entry) ->
      Alcotest.(check bool)
        (e.Ea.e_bound.Ea.b_property ^ " progresses")
        true
        (e.Ea.e_class = Ea.Progresses))
    (Ea.analyze ~deployment ~model ~budget ~origin:"deployed"
       b.Scenario.machines);
  (* the scheduled OTA payload's 20-store body cannot *)
  let heavy =
    List.concat_map (fun (_at, u) -> payload_machines u) b.Scenario.adaptations
  in
  Alcotest.(check bool) "payload present" true (heavy <> []);
  List.iter
    (fun (e : Ea.entry) ->
      Alcotest.(check bool)
        (e.Ea.e_bound.Ea.b_property ^ " may livelock")
        true
        (e.Ea.e_class = Ea.May_livelock);
      Alcotest.(check bool) "bound exceeds usable budget" true
        Energy.(budget.Ea.usable < e.Ea.e_bound.Ea.b_call_energy))
    (Ea.analyze ~deployment ~model ~budget ~origin:"update #1" heavy);
  match Ea.admit ~deployment ~model ~budget heavy with
  | Ok () -> Alcotest.fail "over-budget payload admitted"
  | Error reason ->
      Alcotest.(check bool) "reason names the check" true
        (String.length reason >= 19
        && String.sub reason 0 19 = "energy-inadmissible")

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_adapt_rejects_inadmissible_update () =
  let b = build_livelock () in
  let model = b.Scenario.config.Runtime.cost_model in
  let deployment = b.Scenario.config.Runtime.deployment in
  let budget = Ea.budget_of_device b.Scenario.device in
  let admission = Ea.admit ~deployment ~model ~budget in
  let mgr =
    Adapt.create ~admission
      (Device.nvm b.Scenario.device)
      ~app:b.Scenario.app b.Scenario.suite
  in
  let _, update = List.hd b.Scenario.adaptations in
  ignore (Adapt.stage mgr update);
  (match Adapt.apply mgr with
  | Adapt.Rejected { id; reason } ->
      Alcotest.(check int) "update id" 1 id;
      Alcotest.(check bool) "energy-inadmissible reason" true
        (contains ~sub:"energy-inadmissible" reason);
      Alcotest.(check bool) "reason names the property" true
        (contains ~sub:"audit_log" reason)
  | Adapt.Applied _ -> Alcotest.fail "over-budget update applied"
  | Adapt.Idle -> Alcotest.fail "nothing staged");
  (* the rejection is terminal: the suite is unchanged and nothing is
     left pending *)
  Alcotest.(check int) "generation unchanged" 0 (Adapt.generation mgr);
  Alcotest.(check bool) "no pending update" true (Adapt.pending_id mgr = None)

(* --- bound domination: static bound >= every measured call attempt --- *)

let engines = [ Monitor.Interpreted; Monitor.Compiled; Monitor.Table ]

let engine_name = function
  | Monitor.Interpreted -> "interpreted"
  | Monitor.Compiled -> "compiled"
  | Monitor.Table -> "table"

(* The static bound for everything a run could ever execute: the deployed
   suite plus every scheduled OTA payload.  Summing over the superset
   dominates the active suite at any instant (all shares are
   non-negative), so one number covers pre- and post-adaptation calls. *)
let static_bound (b : Scenario.built) =
  let model = b.Scenario.config.Runtime.cost_model in
  let deployment = b.Scenario.config.Runtime.deployment in
  let machines =
    b.Scenario.machines
    @ List.concat_map (fun (_at, u) -> payload_machines u) b.Scenario.adaptations
  in
  Ea.suite_call_bound ~deployment ~model
    (List.map (Ea.property_bound ~deployment ~model) machines)

(* The device's energy ledger is float-accumulated: an attempt's
   Monitor_work delta is read off a running multi-mJ total, so it
   carries ~1e-12 uJ of rounding noise.  The bound itself is exact in
   the model (External_wireless has zero structural margin to absorb
   the noise), so domination is checked with a ulp-scale allowance. *)
let with_float_slack bound =
  Energy.add bound (Energy.uj (1e-9 +. (1e-12 *. Energy.to_uj bound)))

let check_dominates ~what bound (inst : Runtime.instrumented) =
  if not Energy.(inst.Runtime.max_call_energy <= with_float_slack bound) then
    Alcotest.failf "%s: measured call %.6f uJ exceeds static bound %.6f uJ"
      what
      (Energy.to_uj inst.Runtime.max_call_energy)
      (Energy.to_uj bound)

let run_scenario (sc : Scenario.t) engine ~probe =
  let b = (Scenario.with_engine engine sc).Scenario.build ~engine:None ~seed:42 in
  let inst =
    Runtime.run_instrumented ~config:b.Scenario.config
      ~adaptations:b.Scenario.adaptations ~probe b.Scenario.device
      b.Scenario.app b.Scenario.suite
  in
  (static_bound b, inst)

let test_bound_dominates_uninjected () =
  List.iter
    (fun (sc : Scenario.t) ->
      List.iter
        (fun engine ->
          let bound, inst = run_scenario sc engine ~probe:(fun _ -> ()) in
          check_dominates
            ~what:(Printf.sprintf "%s/%s" sc.Scenario.name (engine_name engine))
            bound inst;
          (* sanity: runs that monitor at all measured something *)
          Alcotest.(check bool)
            (sc.Scenario.name ^ ": some call measured")
            true
            Energy.(Energy.zero < inst.Runtime.max_call_energy))
        engines)
    Scenario.all

(* Depth-1 injected-failure campaign: crash once at the k-th dynamic
   occurrence of each injection site and re-check domination - attempts
   cut short by a power failure must still be covered (a partial attempt
   consumes a prefix of a full one).  Occurrences are capped per site to
   keep the suite fast; every site's first windows are covered on every
   engine. *)
let max_occurrences_per_site = 3

let depth1_campaign (sc : Scenario.t) engine =
  (* baseline hit counts per site label *)
  let hits = Hashtbl.create 32 in
  let counting label =
    Hashtbl.replace hits label (1 + Option.value ~default:0 (Hashtbl.find_opt hits label))
  in
  let bound, inst = run_scenario sc engine ~probe:counting in
  check_dominates
    ~what:(Printf.sprintf "%s/%s baseline" sc.Scenario.name (engine_name engine))
    bound inst;
  Hashtbl.iter
    (fun site n ->
      for occ = 0 to Stdlib.min n max_occurrences_per_site - 1 do
        let seen = ref 0 in
        let probe label =
          if String.equal label site then begin
            let k = !seen in
            incr seen;
            if k = occ then raise (Nvm.Injected_failure site)
          end
        in
        let bound, inst = run_scenario sc engine ~probe in
        check_dominates
          ~what:
            (Printf.sprintf "%s/%s %s@%d" sc.Scenario.name (engine_name engine)
               site occ)
          bound inst
      done)
    hits

let test_bound_dominates_depth1 () =
  List.iter
    (fun engine -> depth1_campaign Scenario.quickstart engine)
    engines;
  (* the micro-budget scenario brown-outs mid-call constantly: the
     injected campaign doubles as a stress of the per-attempt meter *)
  depth1_campaign Scenario.livelock_prop Monitor.Table

(* Fuzzed machines (the differential suite's generator) x engines x
   deployments, with one injected failure at a fuzzed probe instant: the
   per-property bound must dominate whatever the run measures. *)
let fuzzed_bound_domination =
  let deployment_gen =
    QCheck.Gen.oneofl
      [ Runtime.Separate_module; Runtime.Inlined; Runtime.default_external_wireless ]
  in
  let engine_gen = QCheck.Gen.oneofl engines in
  QCheck.Test.make ~name:"static bound dominates fuzzed machines" ~count:60
    (QCheck.make
       ~print:(fun (m, _, engine, crash_at) ->
         Printf.sprintf "%s / crash@%d\n%s" (engine_name engine) crash_at
           (Fsm.Printer.to_string m))
       QCheck.Gen.(
         quad Test_differential.machine deployment_gen engine_gen (int_bound 40)))
    (fun (m, deployment, engine, crash_at) ->
      let mk name mw v =
        Task.make ~name ~duration:(Time.of_ms 100) ~power:(Energy.mw mw)
          ~monitored:[ ("d", fun () -> v) ]
          ()
      in
      let app =
        Task.app ~name:"fuzz-app"
          [
            { Task.index = 1; tasks = [ mk "a" 2. 1.5 ] };
            { Task.index = 2; tasks = [ mk "b" 4. 2.5 ] };
            { Task.index = 3; tasks = [ mk "c" 26. 3.5 ] };
          ]
      in
      let config =
        { Runtime.default_config with max_loop_iterations = 1500; deployment }
      in
      let device = Helpers.tiny_device ~usable_mj:3. () in
      let suite = Suite.create ~engine (Device.nvm device) [ m ] in
      let bound =
        Ea.suite_call_bound ~deployment ~model:config.Runtime.cost_model
          [ Ea.property_bound ~deployment ~model:config.Runtime.cost_model m ]
      in
      let hits = ref 0 in
      let probe _ =
        incr hits;
        if !hits = crash_at then raise (Nvm.Injected_failure "fuzz")
      in
      match Runtime.run_instrumented ~config ~probe device app suite with
      | inst -> Energy.(inst.Runtime.max_call_energy <= with_float_slack bound)
      | exception Fsm.Interp.Runtime_error _ ->
          true (* fuzzed division by zero: no call committed to measure *))

let suite =
  [
    Alcotest.test_case "cycles_to_time: 8/16 MHz regressions" `Quick
      test_cycles_to_time_regressions;
    QCheck_alcotest.to_alcotest cycles_to_time_is_ceiling;
    Alcotest.test_case "recharge reaches the turn-on threshold" `Quick
      test_recharge_reaches_threshold;
    QCheck_alcotest.to_alcotest recharge_post_level;
    Alcotest.test_case "percentile rejects non-finite samples" `Quick
      test_percentile_rejects_non_finite;
    Alcotest.test_case "livelock-prop: classification" `Quick
      test_livelock_prop_classification;
    Alcotest.test_case "livelock-prop: validate rejects the update" `Quick
      test_adapt_rejects_inadmissible_update;
    Alcotest.test_case "bound dominates: all scenarios x engines" `Quick
      test_bound_dominates_uninjected;
    Alcotest.test_case "bound dominates: depth-1 injected failures" `Quick
      test_bound_dominates_depth1;
    QCheck_alcotest.to_alcotest fuzzed_bound_domination;
  ]
