(* Input-freshness tracker (PR 7): age bookkeeping across brown-outs
   under a hand-cranked clock, the provisional-stamp anti-laundering
   protocol against a real NVM store, and the campaign-level behaviour
   of the freshness scenarios (stale-read fires, quickstart-fresh stays
   green, reports are jobs-invariant). *)

open Artemis
module Fresh = Consistency.Freshness
module F = Artemis_faultsim.Faultsim
module Scenario = Artemis_faultsim.Scenario

let sec n = n * 1_000_000

(* A tracker over a manual microsecond clock: every test drives time
   explicitly, brown-outs are just large clock jumps between events. *)
let manual ?(budget_s = 10) () =
  let t = ref 0 in
  let tracker =
    Fresh.create
      ~clock:(fun () -> !t)
      ~budget:(Time.of_sec budget_s)
      ~reads:[ ("use", [ "src" ]) ]
      ()
  in
  (t, tracker)

let completed task = Event.Task_completed { task }
let started task = Event.Task_started { task; attempt = 1 }

let n_violations tracker = List.length (Fresh.violations tracker)

(* --- age bookkeeping --- *)

let test_fresh_consumption_is_green () =
  let t, tr = manual () in
  Fresh.on_event tr (completed "src");
  t := sec 5;
  Fresh.on_event tr (started "use");
  Fresh.on_event tr (completed "use");
  Alcotest.(check int) "within budget: no violation" 0 (n_violations tr)

let test_brownout_ages_data_past_budget () =
  let t, tr = manual () in
  Fresh.on_event tr (completed "src");
  (* a 30 s outage while the consumer waited to re-run *)
  t := sec 30;
  Fresh.on_event tr (started "use");
  match Fresh.violations tr with
  | [ v ] ->
      Alcotest.(check string) "consumer" "use" v.Fresh.v_consumer;
      Alcotest.(check string) "source" "src" v.Fresh.v_source;
      Alcotest.(check (option int)) "age" (Some (sec 30)) v.Fresh.v_age_us;
      Alcotest.(check int) "at" (sec 30) v.Fresh.v_at_us
  | vs -> Alcotest.failf "expected one stale violation, got %d" (List.length vs)

let test_unstamped_consumption_flagged () =
  let _t, tr = manual () in
  Fresh.on_event tr (started "use");
  match Fresh.violations tr with
  | [ v ] ->
      Alcotest.(check (option int)) "unstamped = no age" None v.Fresh.v_age_us
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_restamp_resets_age () =
  let t, tr = manual () in
  Fresh.on_event tr (completed "src");
  t := sec 30;
  Fresh.on_event tr (started "use");
  Alcotest.(check int) "stale once" 1 (n_violations tr);
  (* the producer runs again: its data is young again *)
  Fresh.on_event tr (completed "src");
  t := sec 35;
  Fresh.on_event tr (started "use");
  Fresh.on_event tr (completed "use");
  Alcotest.(check int) "no further violations after restamp" 1
    (n_violations tr)

let test_nondeclared_tasks_ignored () =
  let t, tr = manual () in
  Fresh.on_event tr (completed "bystander");
  t := sec 60;
  Fresh.on_event tr (started "bystander");
  Fresh.on_event tr (completed "bystander");
  Alcotest.(check int) "undeclared tasks never checked" 0 (n_violations tr)

(* A crash can eat the producer's Task_completed after its commit: the
   consumer's check must recover the stamp from the producer's earlier
   Task_started (conservatively timestamped at the start). *)
let test_lost_completion_event_recovered () =
  let t, tr = manual () in
  t := sec 1;
  Fresh.on_event tr (started "src");
  (* no Task_completed: the crash ate it; runtime resumes at the consumer *)
  t := sec 5;
  Fresh.on_event tr (started "use");
  Alcotest.(check int) "pending stamp promoted, age 4s is fresh" 0
    (n_violations tr);
  (* the promoted stamp keeps aging from the producer's start *)
  t := sec 20;
  Fresh.on_event tr (started "use");
  match Fresh.violations tr with
  | [ v ] ->
      Alcotest.(check (option int)) "age measured from producer start"
        (Some (sec 19)) v.Fresh.v_age_us
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_negative_budget_rejected () =
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Freshness.create: negative budget") (fun () ->
      ignore
        (Fresh.create
           ~clock:(fun () -> 0)
           ~budget:(Time.of_us (-1))
           ~reads:[] ()))

(* --- chaos hooks --- *)

let test_skip_stamp_chaos () =
  Fun.protect ~finally:Fresh.Chaos.reset (fun () ->
      Fresh.Chaos.skip_freshness_stamp := true;
      let t, tr = manual () in
      Fresh.on_event tr (completed "src");
      t := sec 1;
      Fresh.on_event tr (started "use");
      match Fresh.violations tr with
      | [ v ] ->
          Alcotest.(check (option int)) "stamp skipped -> unstamped" None
            v.Fresh.v_age_us
      | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs))

let test_clock_skip_chaos () =
  Fun.protect ~finally:Fresh.Chaos.reset (fun () ->
      Fresh.Chaos.clock_skip_on_recovery := true;
      let t, tr = manual () in
      Fresh.on_event tr (completed "src");
      Fresh.on_event tr (Event.Reboot { charging_delay = Time.of_sec 30 });
      t := sec 1;
      Fresh.on_event tr (started "use");
      match Fresh.violations tr with
      | [ v ] ->
          Alcotest.(check bool) "skewed age way past budget" true
            (match v.Fresh.v_age_us with
            | Some age -> age >= 3_600_000_000
            | None -> false)
      | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs))

(* --- anti-laundering (the PR 7 bugfix satellite) ---

   A stamp taken while a transaction is open is provisional: an abort
   or power failure before its commit point must kill it, otherwise a
   reverted producer could pass off its (discarded) output as fresh. *)

let nvm_tracker nvm clock =
  Fresh.create
    ~clock:(fun () -> !clock)
    ~in_tx:(fun () -> Nvm.in_tx nvm)
    ~revert_count:(fun () -> Nvm.revert_count nvm)
    ~budget:(Time.of_sec 10)
    ~reads:[ ("use", [ "src" ]) ]
    ()

let test_aborted_tx_cannot_launder_stamp () =
  let nvm = Nvm.create () in
  let clock = ref 0 in
  let tr = nvm_tracker nvm clock in
  Nvm.begin_tx nvm;
  Fresh.stamp tr ~source:"src";
  Nvm.abort_tx nvm;
  Fresh.seal tr ~source:"src";
  clock := sec 1;
  Fresh.check tr ~consumer:"use";
  match Fresh.violations tr with
  | [ v ] ->
      Alcotest.(check (option int)) "reverted stamp is no stamp" None
        v.Fresh.v_age_us
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_power_failure_cannot_launder_stamp () =
  let nvm = Nvm.create () in
  let clock = ref 0 in
  let tr = nvm_tracker nvm clock in
  Nvm.begin_tx nvm;
  Fresh.stamp tr ~source:"src";
  Nvm.power_failure nvm;
  clock := sec 1;
  Fresh.check tr ~consumer:"use";
  Alcotest.(check int) "provisional stamp died with the crash" 1
    (n_violations tr)

let test_committed_stamp_is_durable () =
  let nvm = Nvm.create () in
  let clock = ref 0 in
  let tr = nvm_tracker nvm clock in
  Nvm.begin_tx nvm;
  Fresh.stamp tr ~source:"src";
  Nvm.commit_tx nvm;
  Fresh.seal tr ~source:"src";
  clock := sec 5;
  (* later reverts must not retroactively kill a sealed stamp *)
  Nvm.begin_tx nvm;
  Nvm.abort_tx nvm;
  Fresh.check tr ~consumer:"use";
  Alcotest.(check int) "sealed stamp survives later reverts" 0
    (n_violations tr)

(* --- campaign level --- *)

let test_stale_read_fires () =
  let c = F.exhaustive Scenario.stale_read ~seed:42 ~depth:1 in
  Alcotest.(check string) "baseline completes" "completed"
    c.F.baseline.F.outcome;
  Alcotest.(check int) "baseline itself is green" 0
    (List.length c.F.baseline.F.violations);
  let violations =
    List.concat_map (fun (r : F.run_result) -> r.F.violations) c.F.runs
  in
  Alcotest.(check bool) "some injected run is stale" true
    (violations <> []);
  List.iter
    (fun (v : F.violation) ->
      Alcotest.(check string) "only the freshness oracle fires"
        "input-freshness" v.F.oracle)
    violations;
  Alcotest.(check bool) "shrunk reproducer found" true (c.F.shrunk <> None)

let test_quickstart_fresh_green () =
  let c = F.exhaustive Scenario.quickstart_fresh ~seed:42 ~depth:1 in
  Alcotest.(check int) "quickstart-fresh clean under injection" 0
    (F.total_violations c)

let test_stale_read_jobs_invariant () =
  let run jobs =
    let ctx = Obs.Ctx.create () in
    Obs.Ctx.set_tracing ctx true;
    let json =
      Obs.with_ctx ctx (fun () ->
          F.campaign_to_json (F.exhaustive Scenario.stale_read ~seed:42 ~depth:1 ~jobs))
    in
    (json, Obs.Ctx.trace_json ctx)
  in
  let json1, trace1 = run 1 in
  let json4, trace4 = run 4 in
  Alcotest.(check string) "report identical across jobs" json1 json4;
  Alcotest.(check string) "merged trace identical across jobs" trace1 trace4

let suite =
  [
    ("fresh consumption is green", `Quick, test_fresh_consumption_is_green);
    ("brown-out ages data past budget", `Quick,
      test_brownout_ages_data_past_budget);
    ("unstamped consumption flagged", `Quick,
      test_unstamped_consumption_flagged);
    ("restamp resets the age", `Quick, test_restamp_resets_age);
    ("undeclared tasks ignored", `Quick, test_nondeclared_tasks_ignored);
    ("lost completion event recovered from start stamp", `Quick,
      test_lost_completion_event_recovered);
    ("negative budget rejected", `Quick, test_negative_budget_rejected);
    ("chaos: skipped stamps read as unstamped", `Quick, test_skip_stamp_chaos);
    ("chaos: recovery clock skip reads as stale", `Quick,
      test_clock_skip_chaos);
    ("aborted tx cannot launder a stamp", `Quick,
      test_aborted_tx_cannot_launder_stamp);
    ("power failure cannot launder a stamp", `Quick,
      test_power_failure_cannot_launder_stamp);
    ("committed+sealed stamp is durable", `Quick,
      test_committed_stamp_is_durable);
    ("campaign: stale-read fires input-freshness only", `Quick,
      test_stale_read_fires);
    ("campaign: quickstart-fresh stays green", `Quick,
      test_quickstart_fresh_green);
    ("campaign: stale-read report is jobs-invariant", `Quick,
      test_stale_read_jobs_invariant);
  ]
