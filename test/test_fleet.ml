(* The fleet runner (PR 8): spec parsing, the jobs/chunk byte-identity
   contract on whole reports, and the roll-up arithmetic (worst-device
   ranking, percentiles) on hand-built fixtures. *)

(* --- spec parsing --- *)

let parse_ok text =
  match Fleet.spec_of_json text with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "spec rejected: %s" e

let test_spec_parse () =
  let spec =
    parse_ok
      {|{"name": "smoke", "scenarios": ["quickstart", "health"],
         "seeds": {"first": 5, "count": 3},
         "harvesters": ["default", "fixed:30s", "duty:200uw", "constant:65uw"],
         "engines": ["compiled", "table"],
         "backends": ["immortal", "alpaca"]}|}
  in
  Alcotest.(check string) "name" "smoke" spec.Fleet.fleet_name;
  Alcotest.(check (list string))
    "scenarios" [ "quickstart"; "health" ] spec.Fleet.scenarios;
  Alcotest.(check int) "first" 5 spec.Fleet.seed_first;
  Alcotest.(check int) "count" 3 spec.Fleet.seed_count;
  Alcotest.(check (list string))
    "profiles round-trip"
    [ "default"; "fixed:30s"; "duty:200uw"; "constant:65uw" ]
    (List.map Fleet.profile_label spec.Fleet.profiles);
  Alcotest.(check (list string))
    "backends" [ "immortal"; "alpaca" ] spec.Fleet.backends;
  Alcotest.(check int) "size" (2 * 3 * 4 * 2 * 2) (Fleet.spec_size spec)

let test_spec_defaults () =
  let spec =
    parse_ok {|{"scenarios": ["quickstart"], "seeds": {"count": 2}}|}
  in
  Alcotest.(check string) "name" "fleet" spec.Fleet.fleet_name;
  Alcotest.(check int) "first" 0 spec.Fleet.seed_first;
  Alcotest.(check (list string)) "engines" [ "default" ] spec.Fleet.engines;
  Alcotest.(check (list string))
    "backends" [ "immortal" ] spec.Fleet.backends;
  Alcotest.(check int) "size" 2 (Fleet.spec_size spec)

let contains ~frag s =
  let n = String.length frag in
  let rec scan i = i + n <= String.length s
                   && (String.sub s i n = frag || scan (i + 1)) in
  scan 0

let test_spec_rejects () =
  let rejected text frag =
    match Fleet.spec_of_json text with
    | Ok _ -> Alcotest.failf "accepted %s" text
    | Error e ->
        if not (contains ~frag e) then
          Alcotest.failf "error %S does not mention %S" e frag
  in
  rejected {|{"seeds": {"count": 2}}|} "missing scenarios";
  rejected {|{"scenarios": ["quickstart"]}|} "seeds.count";
  rejected {|{"scenarios": ["nope"], "seeds": {"count": 1}}|}
    "unknown scenario";
  rejected
    {|{"scenarios": ["quickstart"], "seeds": {"count": 1},
       "harvesters": ["fixed:30"]}|}
    "unit suffix";
  rejected
    {|{"scenarios": ["quickstart"], "seeds": {"count": 1},
       "engines": ["jit"]}|}
    "unknown engine";
  rejected
    {|{"scenarios": ["quickstart"], "seeds": {"count": 1},
       "backends": ["tock"]}|}
    "unknown backend";
  rejected {|{"scenarios": ["quickstart"], "seeds": {"count": 0}}|}
    "must be positive"

let test_profile_round_trip () =
  List.iter
    (fun label ->
      match Fleet.profile_of_string label with
      | Error e -> Alcotest.failf "%s rejected: %s" label e
      | Ok p ->
          Alcotest.(check string) label label (Fleet.profile_label p))
    [ "default"; "fixed:30s"; "fixed:500ms"; "fixed:2min"; "duty:200uw";
      "constant:65uw" ]

(* --- report determinism: jobs and chunk must never change a byte --- *)

let report_bytes ?(devices = true) report =
  let path = Filename.temp_file "fleet" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Fleet.output_report_json ~devices oc report);
      In_channel.with_open_bin path In_channel.input_all)

let fleet_spec_gen =
  QCheck.make
    ~print:(fun (scenario, count, first) ->
      Printf.sprintf "(%s, count=%d, first=%d)" scenario count first)
    QCheck.Gen.(
      let* scenario = oneofl [ "quickstart"; "stale-read" ] in
      let* count = 1 -- 4 in
      let* first = 0 -- 50 in
      return (scenario, count, first))

let fleet_jobs_invariant =
  QCheck.Test.make ~name:"fleet report is jobs/chunk-invariant" ~count:4
    fleet_spec_gen (fun (scenario, count, first) ->
      let spec =
        parse_ok
          (Printf.sprintf
             {|{"scenarios": ["%s"], "seeds": {"first": %d, "count": %d},
                "harvesters": ["default", "fixed:5s"],
                "engines": ["compiled", "table"],
                "backends": ["immortal", "alpaca"]}|}
             scenario first count)
      in
      let baseline = report_bytes (Fleet.run ~jobs:1 spec) in
      List.for_all
        (fun (jobs, chunk) ->
          String.equal baseline (report_bytes (Fleet.run ~jobs ?chunk spec)))
        [ (2, None); (8, None); (2, Some 1); (8, Some 3) ])

let test_run_validates () =
  let spec = parse_ok {|{"scenarios": ["quickstart"], "seeds": {"count": 1}}|} in
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Fleet.run: jobs must be >= 1") (fun () ->
      ignore (Fleet.run ~jobs:0 spec))

(* progress ticks arrive once per device with a monotone counter, and
   never perturb the report *)
let test_progress_ticks () =
  let spec = parse_ok {|{"scenarios": ["quickstart"], "seeds": {"count": 3}}|} in
  let ticks = ref [] in
  let report =
    Fleet.run ~jobs:2
      ~on_progress:(fun ~completed ~total -> ticks := (completed, total) :: !ticks)
      spec
  in
  Alcotest.(check (list (pair int int)))
    "one tick per device, in order"
    [ (1, 3); (2, 3); (3, 3) ]
    (List.rev !ticks);
  Alcotest.(check string) "same bytes as untracked run"
    (report_bytes (Fleet.run ~jobs:1 spec))
    (report_bytes report)

(* --- roll-up arithmetic on hand-built fixtures --- *)

let device ?(outcome = "completed") ?(fresh = 0) ?(failures = 0)
    ?(energy = 100.) index =
  {
    Fleet.index;
    scenario = "fixture";
    seed = index;
    profile = "default";
    engine = "default";
    backend = "immortal";
    outcome;
    power_failures = failures;
    reboots = failures;
    energy_uj = energy;
    monitor_uj = 1.;
    active_us = 1000;
    off_us = 0;
    verdicts = [];
    freshness_violations = fresh;
  }

let test_worst_ranking () =
  let fixture =
    [
      device 0 ~energy:50.;
      device 1 ~outcome:"dnf:horizon" ~energy:10.;
      device 2 ~fresh:2 ~energy:10.;
      device 3 ~failures:9 ~energy:10.;
      device 4 ~energy:500.;
      device 5 ~energy:500.;
    ]
  in
  let worst = Fleet.worst_devices ~k:4 fixture in
  (* DNF first, then freshness violations, then failures, then energy;
     index breaks the 4-vs-5 energy tie. *)
  Alcotest.(check (list int))
    "badness order" [ 1; 2; 3; 4 ]
    (List.map (fun d -> d.Fleet.index) worst);
  Alcotest.(check (list int))
    "k larger than fleet" [ 1; 2; 3; 4; 5; 0 ]
    (List.map (fun d -> d.Fleet.index) (Fleet.worst_devices ~k:10 fixture))

let test_percentile () =
  let sample = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.)) "p50" 50. (Fleet.percentile sample 0.50);
  Alcotest.(check (float 0.)) "p90" 90. (Fleet.percentile sample 0.90);
  Alcotest.(check (float 0.)) "p99" 99. (Fleet.percentile sample 0.99);
  Alcotest.(check (float 0.)) "max" 100. (Fleet.percentile sample 1.0);
  Alcotest.(check (float 0.)) "single" 7. (Fleet.percentile [| 7. |] 0.5);
  Alcotest.check_raises "empty"
    (Invalid_argument "Fleet.percentile: empty sample") (fun () ->
      ignore (Fleet.percentile [||] 0.5))

(* the group roll-up and histograms agree with a by-hand count *)
let test_rollups () =
  let spec =
    parse_ok
      {|{"scenarios": ["quickstart"], "seeds": {"count": 2},
         "engines": ["compiled", "table"],
         "backends": ["immortal", "alpaca"]}|}
  in
  let report = Fleet.run spec in
  Alcotest.(check int)
    "engine x backend groups" 4
    (List.length report.Fleet.groups);
  List.iter
    (fun g ->
      Alcotest.(check int) "group size" 2 g.Fleet.g_devices;
      Alcotest.(check string) "group scenario" "quickstart" g.Fleet.g_scenario)
    report.Fleet.groups;
  let total_verdicts =
    List.fold_left (fun a (_, n) -> a + n) 0 report.Fleet.verdict_totals
  in
  Alcotest.(check int) "group verdicts sum to fleet total" total_verdicts
    (List.fold_left (fun a g -> a + g.Fleet.g_verdicts) 0 report.Fleet.groups);
  Alcotest.(check int) "outcome histogram covers every device"
    (Array.length report.Fleet.devices)
    (List.fold_left (fun a (_, n) -> a + n) 0 report.Fleet.outcomes)

let suite =
  [
    ("spec: full document parses", `Quick, test_spec_parse);
    ("spec: defaults fill in", `Quick, test_spec_defaults);
    ("spec: bad fields rejected with context", `Quick, test_spec_rejects);
    ("profiles: labels round-trip", `Quick, test_profile_round_trip);
    ("run: rejects jobs < 1", `Quick, test_run_validates);
    ("run: progress ticks once per device", `Quick, test_progress_ticks);
    ("rollup: worst-device ranking is total", `Quick, test_worst_ranking);
    ("rollup: nearest-rank percentiles", `Quick, test_percentile);
    ("rollup: groups and histograms reconcile", `Quick, test_rollups);
    QCheck_alcotest.to_alcotest fleet_jobs_invariant;
  ]
