(* Model-based testing of the NVM store: random operation sequences are
   run simultaneously against the real store and a trivially-correct pure
   model (plain arrays plus an explicit pending map).  After every
   operation the visible value of every cell must agree, and power
   failures must roll back pending transaction writes and reset volatile
   cells while committed FRAM survives.  This pins the semantics the
   fault-injection engine's atomicity oracle relies on. *)

open Artemis

(* Fixed cell population: enough variety to cross kinds and regions. *)
type cell_spec = {
  name : string;
  region : Nvm.region;
  kind : Nvm.kind;
  bytes : int;
  init : int;
}

let specs =
  [
    { name = "app.a"; region = Nvm.Application; kind = Nvm.Fram; bytes = 4; init = 0 };
    { name = "app.b"; region = Nvm.Application; kind = Nvm.Fram; bytes = 2; init = 7 };
    { name = "mon.m"; region = Nvm.Monitor; kind = Nvm.Fram; bytes = 8; init = -1 };
    { name = "rt.r"; region = Nvm.Runtime; kind = Nvm.Fram; bytes = 2; init = 3 };
    { name = "rt.scratch"; region = Nvm.Runtime; kind = Nvm.Ram; bytes = 2; init = 5 };
  ]

let n_cells = List.length specs
let spec i = List.nth specs i

(* The pure model: committed values, pending tx values, tx flag. *)
type model = {
  committed : int array;
  pending : int option array;
  mutable tx_open : bool;
}

let model_create () =
  {
    committed = Array.of_list (List.map (fun s -> s.init) specs);
    pending = Array.make n_cells None;
    tx_open = false;
  }

let model_read m i =
  match m.pending.(i) with Some v when m.tx_open -> v | _ -> m.committed.(i)

type op =
  | Write of int * int
  | Tx_write of int * int
  | Begin_tx
  | Commit_tx
  | Abort_tx
  | Power_failure

(* Preconditioned application: ops illegal in the current model state
   (double begin, commit outside a tx, tx_write on a volatile cell,
   plain write over a pending tx value) are skipped rather than issued -
   their error behaviour is covered by test_nvm.ml. *)
let model_legal m = function
  | Write (i, _) -> not (m.tx_open && m.pending.(i) <> None)
  | Tx_write (i, _) -> m.tx_open && (spec i).kind = Nvm.Fram
  | Begin_tx -> not m.tx_open
  | Commit_tx | Abort_tx -> m.tx_open
  | Power_failure -> true

let model_apply m = function
  | Write (i, v) -> m.committed.(i) <- v
  | Tx_write (i, v) -> m.pending.(i) <- Some v
  | Begin_tx -> m.tx_open <- true
  | Commit_tx ->
      Array.iteri
        (fun i p -> match p with Some v -> m.committed.(i) <- v | None -> ())
        m.pending;
      Array.fill m.pending 0 n_cells None;
      m.tx_open <- false
  | Abort_tx ->
      Array.fill m.pending 0 n_cells None;
      m.tx_open <- false
  | Power_failure ->
      Array.fill m.pending 0 n_cells None;
      m.tx_open <- false;
      List.iteri
        (fun i s -> if s.kind = Nvm.Ram then m.committed.(i) <- s.init)
        specs

let real_apply nvm cells = function
  | Write (i, v) -> Nvm.write cells.(i) v
  | Tx_write (i, v) -> Nvm.tx_write cells.(i) v
  | Begin_tx -> Nvm.begin_tx nvm
  | Commit_tx -> Nvm.commit_tx nvm
  | Abort_tx -> Nvm.abort_tx nvm
  | Power_failure -> Nvm.power_failure nvm

let op_gen =
  QCheck.Gen.(
    let cell = int_bound (n_cells - 1) in
    let v = int_range (-100) 100 in
    frequency
      [
        (5, map2 (fun i v -> Write (i, v)) cell v);
        (5, map2 (fun i v -> Tx_write (i, v)) cell v);
        (3, return Begin_tx);
        (3, return Commit_tx);
        (1, return Abort_tx);
        (2, return Power_failure);
      ])

let print_op = function
  | Write (i, v) -> Printf.sprintf "write %s %d" (spec i).name v
  | Tx_write (i, v) -> Printf.sprintf "tx_write %s %d" (spec i).name v
  | Begin_tx -> "begin_tx"
  | Commit_tx -> "commit_tx"
  | Abort_tx -> "abort_tx"
  | Power_failure -> "power_failure"

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

let agrees nvm cells m =
  List.for_all
    (fun i -> Nvm.read cells.(i) = model_read m i)
    (List.init n_cells Fun.id)
  && Nvm.in_tx nvm = m.tx_open

let build_store () =
  let nvm = Nvm.create () in
  let cells =
    Array.of_list
      (List.map
         (fun s ->
           Nvm.cell nvm ~region:s.region ~kind:s.kind ~name:s.name
             ~bytes:s.bytes s.init)
         specs)
  in
  (nvm, cells)

let model_equivalence =
  QCheck.Test.make ~name:"nvm = pure model (visibility and rollback)"
    ~count:1000 arb_ops (fun ops ->
      let nvm, cells = build_store () in
      let m = model_create () in
      List.for_all
        (fun op ->
          if model_legal m op then begin
            real_apply nvm cells op;
            model_apply m op
          end;
          agrees nvm cells m)
        ops)

(* The footprint is a declaration-time property: no operation sequence
   may ever change what [footprint] or [cell_names] report. *)
let footprint_stability =
  QCheck.Test.make ~name:"footprint invariant under any operations" ~count:300
    arb_ops (fun ops ->
      let expected_fram region =
        List.filter (fun s -> s.kind = Nvm.Fram && s.region = region) specs
        |> List.fold_left (fun acc s -> acc + s.bytes) 0
      in
      let expected_names region =
        List.filter (fun s -> s.region = region) specs
        |> List.map (fun s -> s.name)
      in
      let nvm, cells = build_store () in
      let m = model_create () in
      List.iter
        (fun op ->
          if model_legal m op then begin
            real_apply nvm cells op;
            model_apply m op
          end)
        ops;
      List.for_all
        (fun region ->
          Nvm.footprint nvm ~kind:Nvm.Fram ~region = expected_fram region
          && Nvm.cell_names nvm ~region = expected_names region)
        [ Nvm.Application; Nvm.Monitor; Nvm.Runtime ])

(* write_join must behave as tx_write inside an open FRAM transaction and
   as a plain write outside one. *)
let write_join_equivalence =
  QCheck.Test.make ~name:"write_join = tx_write inside tx, write outside"
    ~count:500 arb_ops (fun ops ->
      let nvm, cells = build_store () in
      let m = model_create () in
      List.for_all
        (fun op ->
          let joined =
            match op with
            | Write (i, v) | Tx_write (i, v) ->
                (* reinterpret both as write_join, mirroring its contract
                   in the model *)
                let volatile = (spec i).kind = Nvm.Ram in
                if m.tx_open && not volatile then begin
                  Nvm.write_join cells.(i) v;
                  model_apply m (Tx_write (i, v));
                  true
                end
                else if not (m.tx_open && m.pending.(i) <> None) then begin
                  Nvm.write_join cells.(i) v;
                  model_apply m (Write (i, v));
                  true
                end
                else false
            | other ->
                if model_legal m other then begin
                  real_apply nvm cells other;
                  model_apply m other
                end;
                true
          in
          ignore joined;
          agrees nvm cells m)
        ops)

let suite =
  [
    QCheck_alcotest.to_alcotest model_equivalence;
    QCheck_alcotest.to_alcotest footprint_stability;
    QCheck_alcotest.to_alcotest write_join_equivalence;
  ]
