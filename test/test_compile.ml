(* Unit tests for the deploy-time FSM compiler (Fsm.Compile): interning,
   indexed trigger dispatch, and equivalence with the interpreter on
   handcrafted machines.  Randomized equivalence lives in
   test_differential.ml. *)

open Artemis
module F = Fsm.Ast
module Interp = Fsm.Interp
module Compile = Fsm.Compile

let parse = Fsm.Parser.parse_machine_exn

let machine_text =
  {|
machine m {
  var x : int = 0;
  persistent var keep : int = 7;
  initial state A {
    on startTask(t) when (x < 2) { x := x + 1; } -> B;
    on startTask(t) { fail restartTask; } -> A;
  }
  state B {
    on endTask(t) -> A;
    on anyEvent when (x > 10) { fail skipPath Path 2; } -> B;
  }
}
|}

let test_interning () =
  let c = Compile.compile (parse machine_text) in
  Alcotest.(check int) "state count" 2 (Compile.state_count c);
  Alcotest.(check string) "state 0" "A" (Compile.state_name c 0);
  Alcotest.(check string) "state 1" "B" (Compile.state_name c 1);
  Alcotest.(check int) "id of B" 1 (Compile.state_id c "B");
  Alcotest.(check int) "initial is A" 0 (Compile.initial_state c);
  Alcotest.(check int) "var count" 2 (Compile.var_count c);
  Alcotest.(check string) "slot 0" "x" (Compile.var_name c 0);
  Alcotest.(check int) "slot of keep" 1 (Compile.var_id c "keep");
  (match Compile.state_id c "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown state must raise");
  Alcotest.(check (list string)) "watched tasks" [ "t" ] (Compile.watched_tasks c);
  Alcotest.(check bool) "uses anyEvent" true (Compile.watches_any_event c)

let test_memory_store_initials () =
  let c = Compile.compile (parse machine_text) in
  let s = Compile.memory_store c in
  Alcotest.(check int) "starts in initial" 0 (s.Compile.get_state ());
  Alcotest.check Helpers.value "x init" (F.Vint 0) (s.Compile.get 0);
  Alcotest.check Helpers.value "keep init" (F.Vint 7) (s.Compile.get 1)

let test_step_matches_interpreter () =
  let m = parse machine_text in
  let c = Compile.compile m in
  let istore = Interp.memory_store m and cstore = Compile.memory_store c in
  let feed ev =
    let fi = Interp.step m istore ev and fc = Compile.step c cstore ev in
    Alcotest.(check bool) "same failures" true (fi = fc);
    Alcotest.(check string) "same state"
      (istore.Interp.get_state ())
      (Compile.state_name c (cstore.Compile.get_state ()))
  in
  (* drives both the guarded fast path and the fail fallback *)
  List.iter feed
    [
      Helpers.event ~task:"t" ();
      Helpers.event ~kind:Interp.End ~task:"t" ();
      Helpers.event ~task:"t" ();
      Helpers.event ~kind:Interp.End ~task:"t" ();
      Helpers.event ~task:"t" ();  (* x = 2: guard fails, second fires *)
      Helpers.event ~task:"other" ();  (* implicit self-transition *)
    ];
  Alcotest.check Helpers.value "x saturated" (F.Vint 2)
    (cstore.Compile.get 0)

let test_declaration_order_dispatch () =
  (* anyEvent declared before the task-specific transition must win when
     both can fire - the index preserves declaration order. *)
  let m =
    parse
      {|
machine order {
  var hit : int = 0;
  initial state A {
    on anyEvent { hit := 1; } -> A;
    on startTask(t) { hit := 2; } -> A;
  }
}
|}
  in
  let c = Compile.compile m in
  let s = Compile.memory_store c in
  ignore (Compile.step c s (Helpers.event ~task:"t" ()));
  Alcotest.check Helpers.value "anyEvent fired first" (F.Vint 1)
    (s.Compile.get 0)

let test_unknown_task_falls_back_to_any () =
  let m =
    parse
      {|
machine fb {
  var n : int = 0;
  initial state A {
    on startTask(t) { n := 100; } -> A;
    on anyEvent { n := n + 1; } -> A;
  }
}
|}
  in
  let c = Compile.compile m in
  let s = Compile.memory_store c in
  ignore (Compile.step c s (Helpers.event ~task:"unknown" ()));
  ignore (Compile.step c s (Helpers.event ~kind:Interp.End ~task:"zz" ()));
  Alcotest.check Helpers.value "anyEvent handled both" (F.Vint 2) (s.Compile.get 0)

let test_dynamic_errors_match () =
  let m =
    parse
      {|
machine err {
  var f : float = 0.0;
  initial state A {
    on endTask(t) { f := data(missing); } -> A;
  }
}
|}
  in
  let c = Compile.compile m in
  let istore = Interp.memory_store m and cstore = Compile.memory_store c in
  let ev = Helpers.event ~kind:Interp.End ~task:"t" () in
  let msg run = match run () with
    | _ -> Alcotest.fail "expected Runtime_error"
    | exception Interp.Runtime_error e -> e
  in
  Alcotest.(check string) "same error message"
    (msg (fun () -> Interp.step m istore ev))
    (msg (fun () -> Compile.step c cstore ev))

let test_mentions_task_on_any () =
  (* regression: machines whose only triggers are anyEvent watch every
     task (previously reported false, so path restarts never
     re-initialized them) *)
  let m =
    parse "machine anyonly { initial state A { on anyEvent -> A; } }"
  in
  Alcotest.(check bool) "Interp.mentions_task" true (Interp.mentions_task m "whatever");
  let c = Compile.compile m in
  Alcotest.(check bool) "Compile.mentions_task" true (Compile.mentions_task c "whatever");
  Alcotest.(check bool) "watches_any_event" true (Compile.watches_any_event c);
  (* and a machine without anyEvent still discriminates *)
  let m2 = parse "machine plain { initial state A { on startTask(t) -> A; } }" in
  Alcotest.(check bool) "named task" true (Interp.mentions_task m2 "t");
  Alcotest.(check bool) "other task" false (Interp.mentions_task m2 "u")

let test_ill_typed_rejected () =
  let bad = parse "machine bad { initial state A { on startTask(t) when (zz > 1); } }" in
  match Compile.compile bad with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "ill-typed machine accepted"

let suite =
  [
    Alcotest.test_case "interning tables" `Quick test_interning;
    Alcotest.test_case "memory store initials" `Quick test_memory_store_initials;
    Alcotest.test_case "compiled = interpreted (handcrafted)" `Quick
      test_step_matches_interpreter;
    Alcotest.test_case "declaration order preserved by index" `Quick
      test_declaration_order_dispatch;
    Alcotest.test_case "unknown task falls back to anyEvent" `Quick
      test_unknown_task_falls_back_to_any;
    Alcotest.test_case "dynamic errors identical" `Quick test_dynamic_errors_match;
    Alcotest.test_case "mentions_task: anyEvent watches all (regression)" `Quick
      test_mentions_task_on_any;
    Alcotest.test_case "ill-typed machines rejected" `Quick test_ill_typed_rejected;
  ]
