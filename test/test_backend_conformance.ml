(* Backend conformance battery (PR 10): one functorized set of checks
   instantiated for every registered task-execution backend.  The
   contract a backend signs up for by entering [Artemis.Backends.all]:

   - crash-anywhere safety: a power failure at ANY probed instant of a
     run (depth-1 exhaustive fault injection) leaves committed
     application state a task-atomic prefix, replays monitor calls
     faithfully and leaks no persistent cells;
   - verdict equality: the monitor verdict/action stream equals the
     immortal reference backend's on the same scenario - monitoring is
     backend-independent;
   - WAR cleanliness: the backend's unit-of-re-execution surface has no
     write-after-read hazards on the shipped scenarios;
   - honest footprint: the FRAM bytes a backend declares equal the
     Runtime-region FRAM its [setup] actually allocates;
   - determinism: two identical runs produce byte-identical trace
     digests and cell fingerprints. *)

open Artemis
module F = Artemis_faultsim.Faultsim
module Matrix = Artemis_faultsim.Matrix
module Scenario = Artemis_faultsim.Scenario
module War = Consistency.War

module Battery (B : sig
  val b : Backend.b
end) =
struct
  let name = Backend.name B.b

  let scenario =
    Scenario.with_backend B.b
      ~name:("conformance-" ^ name)
      ~description:("quickstart under the " ^ name ^ " backend")
      Scenario.quickstart

  (* depth-1 exhaustive: every probed instant of the baseline run gets
     crashed exactly once; all six oracles must stay green, and the
     backend's own protocol sites (if any) must actually be covered *)
  let test_crash_anywhere () =
    let c = F.exhaustive scenario ~seed:42 ~depth:1 in
    Alcotest.(check string)
      "baseline completes" "completed" c.F.baseline.F.outcome;
    Alcotest.(check int) "zero violations" 0 (F.total_violations c);
    Alcotest.(check bool) "no reproducer" true (c.F.shrunk = None);
    List.iter
      (fun site ->
        Alcotest.(check bool)
          ("protocol site covered: " ^ site)
          true
          (List.mem (F.site_id site) c.F.covered))
      (Backend.injection_sites B.b)

  (* the semantic stream must equal the immortal reference's, on a
     scenario that completes and on one that ends in a freshness DNF *)
  let test_verdict_equality () =
    List.iter
      (fun base ->
        let report =
          Matrix.run ~backends:[ Backend.immortal; B.b ] base ~seed:42
        in
        Alcotest.(check bool)
          (base.Scenario.name ^ ": verdict stream equals immortal")
          true report.Matrix.agreement)
      [ Scenario.quickstart; Scenario.stale_read ]

  (* the backend's re-execution units must be WAR-clean on the shipped
     apps: re-executing after a crash can never observe its own write *)
  let test_war_clean () =
    List.iter
      (fun base ->
        let built = base.Scenario.build ~engine:None ~seed:42 in
        let report =
          War.analyze_bodies
            (Device.nvm built.Scenario.device)
            (Backend.bodies B.b built.Scenario.app)
        in
        Alcotest.(check (list string))
          (base.Scenario.name ^ ": no WAR hazards")
          []
          (List.map (fun h -> h.War.haz_cell) report.War.hazards))
      [ Scenario.quickstart; Scenario.health ]

  (* declared footprint = measured footprint: setup's Runtime-region
     FRAM allocation must match what the instance reports *)
  let test_declared_footprint () =
    let built = scenario.Scenario.build ~engine:None ~seed:42 in
    let nvm = Device.nvm built.Scenario.device in
    let before = Nvm.footprint nvm ~kind:Nvm.Fram ~region:Nvm.Runtime in
    let instance =
      Backend.setup B.b ~probe:ignore built.Scenario.device
        built.Scenario.app
    in
    let after = Nvm.footprint nvm ~kind:Nvm.Fram ~region:Nvm.Runtime in
    Alcotest.(check int)
      "fram_bytes matches allocated Runtime FRAM"
      (after - before)
      (instance.Backend.fram_bytes ())

  (* same seed, same schedule: byte-identical trace digest and cell
     fingerprint *)
  let test_deterministic () =
    let r1 = F.run_schedule scenario ~seed:42 [] in
    let r2 = F.run_schedule scenario ~seed:42 [] in
    Alcotest.(check string) "digest" r1.F.digest r2.F.digest;
    Alcotest.(check string) "footprint" r1.F.footprint r2.F.footprint

  let tests =
    [
      (name ^ ": crash anywhere, all oracles green", `Quick,
       test_crash_anywhere);
      (name ^ ": verdict stream equals immortal", `Quick,
       test_verdict_equality);
      (name ^ ": WAR-clean re-execution units", `Quick, test_war_clean);
      (name ^ ": declared FRAM footprint is honest", `Quick,
       test_declared_footprint);
      (name ^ ": identical runs are byte-identical", `Quick,
       test_deterministic);
    ]
end

(* every backend the registry knows answers the same battery; if a PR
   registers a sixth backend it is conformance-tested automatically *)
let suite =
  List.concat_map
    (fun b ->
      let module M = Battery (struct
        let b = b
      end) in
      M.tests)
    Backends.all

let () =
  assert (List.length Backends.all = 5)
