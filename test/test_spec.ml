open Artemis
module Ast = Spec.Ast
module Parser = Spec.Parser
module Printer = Spec.Printer

let spec_t = Alcotest.testable Ast.pp Ast.equal

let parse s =
  match Parser.parse s with
  | Ok spec -> spec
  | Error msg -> Alcotest.fail msg

let test_figure5_parses () =
  let spec = parse Health_app.spec_text in
  Alcotest.(check int) "four blocks" 4 (List.length spec);
  let send = List.find (fun b -> b.Ast.task = "send") spec in
  Alcotest.(check int) "four send properties" 4 (List.length send.Ast.properties);
  match send.Ast.properties with
  | Ast.Mitd { limit; dp_task; on_fail; max_attempt; path } :: _ ->
      Alcotest.check Helpers.time "5min" (Time.of_min 5) limit;
      Alcotest.(check string) "dpTask" "accel" dp_task;
      Alcotest.(check bool) "primary restartPath" true (on_fail = Ast.Restart_path);
      (match max_attempt with
      | Some { Ast.attempts = 3; exhausted = Ast.Skip_path } -> ()
      | _ -> Alcotest.fail "maxAttempt 3 / skipPath expected");
      Alcotest.(check (option int)) "Path 2" (Some 2) path
  | _ -> Alcotest.fail "MITD expected first"

let test_onfail_binding () =
  (* the onFail after maxAttempt binds to maxAttempt; the first onFail is
     the primary action (Figure 5, line 6 reading) *)
  let spec =
    parse "t: { MITD: 1min dpTask: u onFail: restartTask maxAttempt: 2 onFail: skipTask; }"
  in
  match (List.hd spec).Ast.properties with
  | [ Ast.Mitd { on_fail = Ast.Restart_task; max_attempt = Some { Ast.attempts = 2; exhausted = Ast.Skip_task }; _ } ] -> ()
  | _ -> Alcotest.fail "wrong clause binding"

let test_optional_colon_after_task () =
  let a = parse "calcAvg { collect: 10 dpTask: bodyTemp onFail: restartPath; }" in
  let b = parse "calcAvg: { collect: 10 dpTask: bodyTemp onFail: restartPath; }" in
  Alcotest.check spec_t "same" a b

let test_min_energy_property () =
  (* Section 4.2.2 extension: energy-awareness as a first-class property *)
  let spec = parse "accel: { minEnergy: 3.4mJ onFail: skipTask; }" in
  (match (List.hd spec).Ast.properties with
  | [ Ast.Min_energy { uj = 3_400.; on_fail = Ast.Skip_task; path = None } ] -> ()
  | _ -> Alcotest.fail "minEnergy parse");
  let spec2 = parse "tx: { minEnergy: 500uJ onFail: skipPath Path: 1; }" in
  match (List.hd spec2).Ast.properties with
  | [ Ast.Min_energy { uj = 500.; path = Some 1; _ } ] -> ()
  | _ -> Alcotest.fail "uJ unit parse"

let test_comments_ignored () =
  let spec = parse "// header\n t: { maxTries: 1 onFail: skipTask; // trailing\n }" in
  Alcotest.(check int) "one block" 1 (List.length spec)

let expect_error fragment src =
  match Parser.parse src with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  | Error msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      if not (contains msg fragment) then
        Alcotest.failf "error %S does not mention %S" msg fragment

let test_errors () =
  expect_error "onFail" "t: { maxTries: 3; }";
  expect_error "dpTask" "t: { collect: 2 onFail: restartPath; }";
  expect_error "duration" "t: { maxDuration: 100 onFail: skipTask; }";
  expect_error "positive" "t: { maxTries: 0 onFail: skipTask; }";
  expect_error "Range" "t: { dpData: x onFail: skipTask; }";
  expect_error "unknown action" "t: { maxTries: 3 onFail: explode; }";
  expect_error "unknown property" "t: { maxFoo: 3 onFail: skipTask; }";
  expect_error "duplicate onFail"
    "t: { maxTries: 3 onFail: skipTask onFail: skipPath; }";
  expect_error "maxAttempt needs its own onFail"
    "t: { MITD: 1min dpTask: u onFail: restartPath maxAttempt: 2; }";
  expect_error "not allowed" "t: { maxTries: 3 onFail: skipTask Range: [1, 2]; }";
  expect_error "lower bound"
    "t: { dpData: x Range: [5, 2] onFail: skipTask; }";
  expect_error "energy" "t: { minEnergy: 100ms onFail: skipTask; }";
  expect_error "positive" "t: { minEnergy: 0uJ onFail: skipTask; }"

(* Regression: truncated or empty input must surface as a located
   [Error], never escape as [Assert_failure] or any other exception. *)
let test_truncated () =
  (match Parser.parse "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty input should parse to the empty spec"
  | Error msg -> Alcotest.failf "empty input should be Ok []: %s" msg);
  List.iter
    (expect_error "")
    [
      "send";
      "send:";
      "send: {";
      "send: { maxTries";
      "send: { maxTries:";
      "send: { maxTries: 3";
      "send: { maxTries: 3 onFail";
      "send: { maxTries: 3 onFail: skipTask";
      "send: { maxTries: 3 onFail: skipTask;";
      "t: { dpData: x Range: [1,";
    ]

(* --- round-trip property: parse (print spec) = spec --- *)

let gen_action =
  QCheck.Gen.oneofl
    [ Ast.Restart_path; Ast.Skip_path; Ast.Restart_task; Ast.Skip_task; Ast.Complete_path ]

let gen_duration =
  (* multiples of whole units so literals are exact *)
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Time.of_ms (n + 1)) (int_bound 5_000);
        map (fun n -> Time.of_sec (n + 1)) (int_bound 600);
        map (fun n -> Time.of_min (n + 1)) (int_bound 60);
      ])

let gen_ident =
  QCheck.Gen.(
    map
      (fun (c, rest) -> String.make 1 c ^ rest)
      (pair (char_range 'a' 'z') (string_size ~gen:(char_range 'a' 'z') (int_bound 6))))

let gen_path = QCheck.Gen.(opt (int_range 1 5))

let gen_max_attempt =
  QCheck.Gen.(
    opt (map (fun (attempts, exhausted) -> { Ast.attempts; exhausted })
           (pair (int_range 1 9) gen_action)))

let gen_property =
  let open QCheck.Gen in
  frequency
    [
      (1, map3 (fun n on_fail path -> Ast.Max_tries { n; on_fail; path })
           (int_range 1 20) gen_action gen_path);
      (1, map3 (fun limit on_fail path -> Ast.Max_duration { limit; on_fail; path })
           gen_duration gen_action gen_path);
      (1, map (fun (limit, dp_task, on_fail, (max_attempt, path)) ->
               Ast.Mitd { limit; dp_task; on_fail; max_attempt; path })
           (quad gen_duration gen_ident gen_action (pair gen_max_attempt gen_path)));
      (1, map (fun (n, dp_task, on_fail, path) -> Ast.Collect { n; dp_task; on_fail; path })
           (quad (int_range 1 20) gen_ident gen_action gen_path));
      (1, map (fun (interval, on_fail, max_attempt, path) ->
               Ast.Period { interval; on_fail; max_attempt; path })
           (quad gen_duration gen_action gen_max_attempt gen_path));
      (1, map3 (fun uj on_fail path ->
               Ast.Min_energy { uj = float_of_int uj /. 4.; on_fail; path })
           (int_range 1 100_000) gen_action gen_path);
      (1, map (fun (var, bounds, on_fail, path) ->
               let low, high = if fst bounds <= snd bounds then bounds else (snd bounds, fst bounds) in
               Ast.Dp_data { var; low = float_of_int low; high = float_of_int high; on_fail; path })
           (quad gen_ident (pair (int_range (-50) 50) (int_range (-50) 50)) gen_action gen_path));
    ]

let gen_spec =
  QCheck.Gen.(
    list_size (int_range 1 5)
      (map2 (fun task properties -> { Ast.task; properties })
         gen_ident
         (list_size (int_range 1 4) gen_property)))

let roundtrip =
  QCheck.Test.make ~name:"print-parse round trip" ~count:500 (QCheck.make gen_spec)
    (fun spec ->
      match Parser.parse (Printer.to_string spec) with
      | Ok spec' -> Ast.equal spec spec'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "Figure 5 parses" `Quick test_figure5_parses;
    Alcotest.test_case "onFail clause binding" `Quick test_onfail_binding;
    Alcotest.test_case "optional colon after task" `Quick
      test_optional_colon_after_task;
    Alcotest.test_case "minEnergy extension property" `Quick
      test_min_energy_property;
    Alcotest.test_case "comments ignored" `Quick test_comments_ignored;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "truncated input" `Quick test_truncated;
    QCheck_alcotest.to_alcotest roundtrip;
  ]
