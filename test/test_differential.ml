(* Differential fuzzing of the three FSM execution engines: for random
   well-typed machines and random event traces, the deploy-time compiled
   closures (Fsm.Compile) and the flat-table bytecode engine (Fsm.Table)
   must be observationally equivalent to the reference interpreter
   (Fsm.Interp) - same control state, same variable values, same emitted
   failures, same dynamic errors - including over NVM-backed monitors
   with power failures injected between events. *)

open Artemis
module F = Fsm.Ast
module Interp = Fsm.Interp
module Compile = Fsm.Compile
module Table = Fsm.Table

(* --- random well-typed machines --- *)

(* Fixed declarations keep the expression generator simple: every machine
   declares the same typed pool and the generator picks variables by
   type. *)
let var_pool =
  [
    { F.var_name = "x"; ty = F.Tint; init = F.Vint 0; persistent = false };
    { F.var_name = "y"; ty = F.Tint; init = F.Vint 3; persistent = true };
    { F.var_name = "f"; ty = F.Tfloat; init = F.Vfloat 1.5; persistent = false };
    { F.var_name = "b"; ty = F.Tbool; init = F.Vbool false; persistent = false };
    { F.var_name = "tm"; ty = F.Ttime; init = F.Vtime (Time.of_ms 250); persistent = true };
  ]

let tasks = [ "a"; "b"; "c" ]

open QCheck.Gen

let rec int_expr n =
  if n <= 0 then oneofl [ F.Var "x"; F.Var "y"; F.Event_path; F.Lit (F.Vint 2) ]
  else
    frequency
      [
        (2, int_expr 0);
        (1, map (fun e -> F.Unop (F.Neg, e)) (int_expr (n - 1)));
        ( 3,
          map3
            (fun op a b -> F.Binop (op, a, b))
            (oneofl [ F.Add; F.Sub; F.Mul ])
            (int_expr (n - 1)) (int_expr (n - 1)) );
        (* divisor drawn from {0, 2}: division by zero must raise the
           same Runtime_error from both engines *)
        ( 1,
          map3
            (fun op a d -> F.Binop (op, a, F.Lit (F.Vint d)))
            (oneofl [ F.Div; F.Mod ])
            (int_expr (n - 1))
            (frequency [ (5, return 2); (1, return 0) ]) );
      ]

let rec float_expr n =
  if n <= 0 then
    oneofl
      [ F.Var "f"; F.Energy_level; F.Lit (F.Vfloat 0.5); F.Dep_data "d" ]
  else
    frequency
      [
        (2, float_expr 0);
        ( 3,
          map3
            (fun op a b -> F.Binop (op, a, b))
            (oneofl [ F.Add; F.Sub; F.Mul ])
            (float_expr (n - 1)) (float_expr (n - 1)) );
      ]

let time_expr =
  oneofl [ F.Var "tm"; F.Timestamp; F.Lit (F.Vtime (Time.of_ms 500)) ]

let rec bool_expr n =
  if n <= 0 then oneofl [ F.Var "b"; F.Lit (F.Vbool true); F.Lit (F.Vbool false) ]
  else
    let cmp_op = oneofl [ F.Eq; F.Ne; F.Lt; F.Le; F.Gt; F.Ge ] in
    frequency
      [
        (1, bool_expr 0);
        ( 2,
          map3 (fun op a b -> F.Binop (op, a, b)) cmp_op (int_expr (n - 1))
            (int_expr (n - 1)) );
        ( 2,
          map3 (fun op a b -> F.Binop (op, a, b)) cmp_op (float_expr (n - 1))
            (float_expr (n - 1)) );
        (1, map3 (fun op a b -> F.Binop (op, a, b)) cmp_op time_expr time_expr);
        ( 2,
          map3
            (fun op a b -> F.Binop (op, a, b))
            (oneofl [ F.And; F.Or ])
            (bool_expr (n - 1)) (bool_expr (n - 1)) );
        (1, map (fun e -> F.Unop (F.Not, e)) (bool_expr (n - 1)));
      ]

let assign =
  oneof
    [
      map (fun e -> F.Assign ("x", e)) (int_expr 2);
      map (fun e -> F.Assign ("y", e)) (int_expr 2);
      map (fun e -> F.Assign ("f", e)) (float_expr 2);
      map (fun e -> F.Assign ("b", e)) (bool_expr 2);
      map (fun e -> F.Assign ("tm", e)) time_expr;
    ]

let fail_stmt =
  map2
    (fun a p -> F.Fail (a, p))
    (oneofl
       [ F.Restart_path; F.Skip_path; F.Restart_task; F.Skip_task; F.Complete_path ])
    (frequency [ (3, return None); (1, return (Some 2)) ])

let rec stmt depth =
  if depth <= 0 then frequency [ (4, assign); (1, fail_stmt) ]
  else
    frequency
      [
        (4, assign);
        (1, fail_stmt);
        ( 1,
          map3
            (fun c t e -> F.If (c, t, e))
            (bool_expr 1)
            (list_size (int_bound 2) (stmt (depth - 1)))
            (list_size (int_bound 2) (stmt (depth - 1))) );
      ]

let trigger =
  frequency
    [
      (3, map (fun t -> F.On_start t) (oneofl tasks));
      (3, map (fun t -> F.On_end t) (oneofl tasks));
      (1, return F.On_any);
    ]

let transition n_states =
  let* trigger = trigger in
  let* guard = opt (bool_expr 2) in
  let* body = list_size (int_bound 3) (stmt 1) in
  let* target = int_bound (n_states - 1) in
  return { F.trigger; guard; body; target = Printf.sprintf "S%d" target }

let machine =
  let* n_states = int_range 1 4 in
  let* states =
    flatten_l
      (List.init n_states (fun i ->
           let* transitions = list_size (int_bound 3) (transition n_states) in
           return { F.state_name = Printf.sprintf "S%d" i; transitions }))
  in
  return
    { F.machine_name = "fuzzed"; vars = var_pool; initial = "S0"; states }

(* --- random event traces --- *)

let event i =
  let* kind = oneofl [ Interp.Start; Interp.End ] in
  let* task = frequency [ (6, oneofl tasks); (1, return "zz") ] in
  let* path = int_range 1 3 in
  (* sometimes omit the payload: data(d) must raise identically *)
  let* dep_data =
    frequency
      [ (4, map (fun v -> [ ("d", v) ]) (float_bound_exclusive 100.)); (1, return []) ]
  in
  let* energy = float_bound_exclusive 50. in
  return
    {
      Interp.kind;
      task;
      timestamp = Artemis.Time.of_ms (100 * i);
      path;
      dep_data;
      energy_mj = energy;
    }

let trace = list_size (int_range 5 40) (event 1) (* timestamps varied below *)

let trace =
  let* evs = trace in
  return (List.mapi (fun i ev -> { ev with Interp.timestamp = Time.of_ms (100 * (i + 1)) }) evs)

(* --- counterexample printers (QCheck reports are useless without them) --- *)

let show_event (ev : Interp.event) =
  Printf.sprintf "%s %s @%.1fms path=%d dep=[%s] e=%.3f"
    (match ev.Interp.kind with Interp.Start -> "start" | Interp.End -> "end")
    ev.Interp.task
    (Time.to_ms_f ev.Interp.timestamp)
    ev.Interp.path
    (String.concat ";"
       (List.map (fun (k, v) -> Printf.sprintf "%s=%.3f" k v) ev.Interp.dep_data))
    ev.Interp.energy_mj

let show_trace evs = String.concat "\n" (List.map show_event evs)

let show_machine_trace (m, evs) =
  Fsm.Printer.to_string m ^ "\n--- trace ---\n" ^ show_trace evs

(* --- the differential properties --- *)

type outcome = Failures of Interp.failure list | Err of string

let step_catch f =
  match f () with
  | failures -> Failures failures
  | exception Interp.Runtime_error msg -> Err msg

let equal_outcome a b =
  match (a, b) with
  | Failures x, Failures y -> x = y
  | Err x, Err y -> String.equal x y
  | Failures _, Err _ | Err _, Failures _ -> false

(* memory-backed stores: pure three-way engine equivalence *)
let memory_equivalence =
  QCheck.Test.make ~name:"table = compiled = interpreted (memory stores)"
    ~count:700
    (QCheck.make ~print:show_machine_trace QCheck.Gen.(pair machine trace))
    (fun (m, evs) ->
      let c = Compile.compile m in
      let t = Table.compile m in
      let istore = Interp.memory_store m and cstore = Compile.memory_store c in
      let tinst = Table.instance t in
      List.for_all
        (fun ev ->
          let ri = step_catch (fun () -> Interp.step m istore ev) in
          let rc = step_catch (fun () -> Compile.step c cstore ev) in
          let rt = step_catch (fun () -> Table.step t tinst ev) in
          equal_outcome ri rc && equal_outcome ri rt
          && String.equal
               (istore.Interp.get_state ())
               (Compile.state_name c (cstore.Compile.get_state ()))
          && String.equal
               (istore.Interp.get_state ())
               (Table.state_name t (Table.current_state tinst))
          && List.for_all
               (fun (v : F.var_decl) ->
                 let vi = istore.Interp.get v.F.var_name in
                 F.same_value vi
                   (cstore.Compile.get (Compile.var_id c v.F.var_name))
                 && F.same_value vi
                      (Table.read_var t tinst (Table.var_id t v.F.var_name)))
               var_pool)
        evs)

(* NVM-backed monitors with power failures injected between events, plus
   occasional path-restart re-initialisation: the deployed form of both
   engines must stay in lockstep *)
let nvm_equivalence =
  QCheck.Test.make
    ~name:"table = compiled = interpreted (NVM monitors, power failures)"
    ~count:500
    (QCheck.make
       ~print:(fun (m, evs, noise) ->
         show_machine_trace (m, evs)
         ^ "\n--- noise ---\n"
         ^ String.concat "," (List.map string_of_int noise))
       QCheck.Gen.(
         triple machine trace (list_size (int_range 5 40) (int_bound 9))))
    (fun (m, evs, noise) ->
      let nvm_i = Nvm.create ()
      and nvm_c = Nvm.create ()
      and nvm_t = Nvm.create () in
      let mon_i = Monitor.create ~engine:Monitor.Interpreted nvm_i m in
      let mon_c = Monitor.create ~engine:Monitor.Compiled nvm_c m in
      let mon_t = Monitor.create ~engine:Monitor.Table nvm_t m in
      let agree () =
        String.equal (Monitor.current_state mon_i) (Monitor.current_state mon_c)
        && String.equal
             (Monitor.current_state mon_i)
             (Monitor.current_state mon_t)
        && List.for_all
             (fun (v : F.var_decl) ->
               let vi = Monitor.read_var mon_i v.F.var_name in
               F.same_value vi (Monitor.read_var mon_c v.F.var_name)
               && F.same_value vi (Monitor.read_var mon_t v.F.var_name))
             var_pool
      in
      let rec go evs noise =
        match evs with
        | [] -> true
        | ev :: evs ->
            let n, noise =
              match noise with [] -> (0, []) | n :: rest -> (n, rest)
            in
            (* inject identical disturbances into all three deployments *)
            if n = 9 then begin
              Nvm.power_failure nvm_i;
              Nvm.power_failure nvm_c;
              Nvm.power_failure nvm_t
            end
            else if n = 8 then begin
              Monitor.reinitialize mon_i;
              Monitor.reinitialize mon_c;
              Monitor.reinitialize mon_t
            end;
            let ri = step_catch (fun () -> Monitor.step mon_i ev) in
            let rc = step_catch (fun () -> Monitor.step mon_c ev) in
            let rt = step_catch (fun () -> Monitor.step mon_t ev) in
            equal_outcome ri rc && equal_outcome ri rt && agree () && go evs noise
      in
      go evs noise)

(* suite-level: indexed dispatch delivers exactly what stepping every
   monitor would *)
let suite_dispatch_equivalence =
  QCheck.Test.make ~name:"indexed step_all = unindexed step_all" ~count:100
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 1 4) machine) trace))
    (fun (ms, evs) ->
      let rename i (m : F.machine) =
        { m with F.machine_name = Printf.sprintf "m%d" i }
      in
      let ms = List.mapi rename ms in
      let s_idx = Suite.create (Nvm.create ()) ms in
      let s_ref = Suite.create (Nvm.create ()) ms in
      let s_tbl = Suite.create ~engine:Monitor.Table (Nvm.create ()) ms in
      List.for_all
        (fun ev ->
          let ri = step_catch (fun () -> Suite.step_all s_idx ev) in
          let rr = step_catch (fun () -> Suite.step_all_unindexed s_ref ev) in
          let rt = step_catch (fun () -> Suite.step_all s_tbl ev) in
          equal_outcome ri rr && equal_outcome ri rt)
        evs)

(* whole-runtime differential across monitor deployments: for every
   deployment style of Section 7 (separate module, inlined, external
   wireless), running a fuzzed property under the Compiled engine on an
   intermittently powered device must reproduce the Interpreted engine's
   run exactly - same trace, same outcome, same final monitor FRAM *)
let deployment =
  oneofl
    [
      Runtime.Separate_module;
      Runtime.Inlined;
      Runtime.default_external_wireless;
    ]

let deployment_name = function
  | Runtime.Separate_module -> "separate"
  | Runtime.Inlined -> "inlined"
  | Runtime.External_wireless _ -> "external"

let runtime_deployment_equivalence =
  QCheck.Test.make
    ~name:"table = compiled = interpreted (full runtime, all deployments)"
    ~count:60
    (QCheck.make
       ~print:(fun (m, d) ->
         Printf.sprintf "%s / %s" (deployment_name d)
           (Fsm.Printer.to_string m))
       QCheck.Gen.(pair machine deployment))
    (fun (m, depl) ->
      (* one task per path so Fail(_, Some 2) always names a real path;
         task c is heavy enough that a partially charged capacitor fails
         it, exercising the monitorFinalize resume path *)
      let build_app () =
        let mk name mw v =
          Task.make ~name ~duration:(Time.of_ms 100) ~power:(Energy.mw mw)
            ~monitored:[ ("d", fun () -> v) ]
            ()
        in
        Task.app ~name:"fuzz-app"
          [
            { Task.index = 1; tasks = [ mk "a" 2. 1.5 ] };
            { Task.index = 2; tasks = [ mk "b" 4. 2.5 ] };
            { Task.index = 3; tasks = [ mk "c" 26. 3.5 ] };
          ]
      in
      let config =
        {
          Runtime.default_config with
          max_loop_iterations = 1500;
          deployment = depl;
        }
      in
      let exec engine =
        let device = Helpers.tiny_device ~usable_mj:3. () in
        let suite = Suite.create ~engine (Device.nvm device) [ m ] in
        match Runtime.run ~config device (build_app ()) suite with
        | stats ->
            ( Failures [],
              Some (stats.Stats.outcome, Log.render_timeline (Device.log device)),
              Suite.monitors suite )
        | exception Interp.Runtime_error msg -> (Err msg, None, Suite.monitors suite)
      in
      let oi, ri, msi = exec Monitor.Interpreted in
      let oc, rc, msc = exec Monitor.Compiled in
      let ot, rt, mst = exec Monitor.Table in
      let monitors_agree =
        List.for_all2
          (fun a b ->
            String.equal (Monitor.current_state a) (Monitor.current_state b)
            && List.for_all
                 (fun (v : F.var_decl) ->
                   F.same_value
                     (Monitor.read_var a v.F.var_name)
                     (Monitor.read_var b v.F.var_name))
                 var_pool)
      in
      equal_outcome oi oc && equal_outcome oi ot && ri = rc && ri = rt
      && monitors_agree msi msc && monitors_agree msi mst)

(* backend matrix differential (PR 10): for a random scenario, monitor
   engine, seed and injected power-failure schedule over the shared
   RUNTIME sites (rt.*, ids [6,19] - scheduler-loop bookkeeping every
   backend drives identically), all five task-execution backends must
   produce the immortal reference's verdict/action stream, duplicates
   included.  Runtime-site occurrences are semantic instants, so the
   same schedule crashes every backend at the same point of the same
   attempt; NVM-site schedules would not be comparable (backends differ
   in how many cell writes a commit costs, so occurrence k lands at
   different instants - a crash inside alpaca's sealed verdict window
   legitimately replays a verdict the reference never duplicates).
   QCheck shrinks the schedule list on divergence, so a failure
   collapses to a minimal (scenario, engine, seed, schedule)
   reproducer. *)

module FS = Artemis_faultsim.Faultsim
module FScenario = Artemis_faultsim.Scenario

let matrix_scenarios =
  [ FScenario.quickstart; FScenario.health; FScenario.stale_read ]

let matrix_engines =
  [ Monitor.Interpreted; Monitor.Compiled; Monitor.Table ]

let semantic_stream device =
  List.filter_map
    (fun (e : Event.timed) ->
      match e.Event.event with
      | Event.Monitor_verdict _ | Event.Runtime_action _ ->
          Some (Event.to_string e.Event.event)
      | _ -> None)
    (Log.events (Device.log device))

(* one injected run: a fresh build of [scenario] under [backend], with
   the schedule consumed faultsim-style (occurrence counted since the
   previous injection, each entry firing once) *)
let injected_verdicts scenario backend ~seed schedule =
  let built =
    (FScenario.with_backend backend ~name:scenario.FScenario.name
       ~description:scenario.FScenario.description scenario)
      .FScenario.build ~engine:None ~seed
  in
  let since = Array.make FS.site_count 0 in
  let remaining = ref schedule in
  let probe label =
    let id = FS.site_id label in
    let occ = since.(id) in
    since.(id) <- occ + 1;
    match !remaining with
    | (s, o) :: rest when s = id && o = occ ->
        remaining := rest;
        Array.fill since 0 FS.site_count 0;
        raise (Nvm.Injected_failure label)
    | _ -> ()
  in
  let result =
    Runtime.run_instrumented ~config:built.FScenario.config
      ~adaptations:built.FScenario.adaptations
      ~backend:built.FScenario.backend ~probe built.FScenario.device
      built.FScenario.app built.FScenario.suite
  in
  (semantic_stream built.FScenario.device,
   (result.Runtime.stats.Stats.outcome = Stats.Completed))

let rt_first = List.length Nvm.injection_sites
let rt_count = List.length Runtime.injection_sites
let clamp_entry (s, o) = (rt_first + (s mod rt_count), o mod 4)

let backend_matrix_print ((s_i, e_i, seed), schedule) =
  Printf.sprintf "scenario=%s engine=%d seed=%d schedule=%s"
    (List.nth matrix_scenarios (s_i mod 3)).FScenario.name
    (e_i mod 3) seed
    (FS.schedule_to_string (List.map clamp_entry schedule))

let backend_matrix_equivalence =
  QCheck.Test.make
    ~name:"all backends produce the reference verdict stream under injection"
    ~count:30
    QCheck.(
      set_print backend_matrix_print
        (pair
           (triple small_nat small_nat small_nat)
           (small_list (pair small_nat small_nat))))
    (fun ((s_i, e_i, seed), schedule) ->
      let scenario = List.nth matrix_scenarios (s_i mod 3) in
      let engine = List.nth matrix_engines (e_i mod 3) in
      let scenario = FScenario.with_engine engine scenario in
      (* clamp the raw schedule onto the shared runtime sites *)
      let schedule = List.map clamp_entry schedule in
      let reference, ref_done =
        injected_verdicts scenario Backend.immortal ~seed schedule
      in
      ref_done
      && List.for_all
           (fun b ->
             let verdicts, completed =
               injected_verdicts scenario b ~seed schedule
             in
             completed && verdicts = reference)
           (List.tl Backends.all))

let suite =
  [
    QCheck_alcotest.to_alcotest memory_equivalence;
    QCheck_alcotest.to_alcotest nvm_equivalence;
    QCheck_alcotest.to_alcotest suite_dispatch_equivalence;
    QCheck_alcotest.to_alcotest runtime_deployment_equivalence;
    QCheck_alcotest.to_alcotest backend_matrix_equivalence;
  ]
