(* Shared builders for the test suites. *)

open Artemis

let time = Alcotest.testable Time.pp Time.equal

let value =
  Alcotest.testable Fsm.Ast.pp_value Fsm.Ast.same_value

(* A device whose capacitor never depletes: pure-logic tests. *)
let powered_device ?horizon () =
  let capacitor =
    Capacitor.create
      ~capacity:(Energy.mj 1_000_000.)
      ~on_threshold:(Energy.mj 999_000.)
      ~off_threshold:(Energy.mj 0.)
      ()
  in
  Device.create ~capacitor ~policy:(Charging_policy.Fixed_delay Time.zero)
    ?horizon ()

(* A device with a small budget and fixed charging delay. *)
let tiny_device ?(usable_mj = 3.) ?(delay = Time.of_sec 30) ?horizon () =
  let capacitor =
    Capacitor.create
      ~capacity:(Energy.mj (usable_mj +. 0.5))
      ~on_threshold:(Energy.mj (usable_mj +. 0.4))
      ~off_threshold:(Energy.mj 0.5)
      ()
  in
  Device.create ~capacitor ~policy:(Charging_policy.Fixed_delay delay) ?horizon ()

let event ?(kind = Fsm.Interp.Start) ?(task = "a") ?(ts = 0) ?(path = 1)
    ?(dep_data = []) ?(energy = 50.) () =
  {
    Fsm.Interp.kind;
    task;
    timestamp = Time.of_ms ts;
    path;
    dep_data;
    energy_mj = energy;
  }

let simple_task ?(name = "a") ?(ms = 100) ?(mw = 2.) ?monitored ?body () =
  Task.make ~name ~duration:(Time.of_ms ms) ~power:(Energy.mw mw) ?monitored
    ?body ()

let one_path_app ?(name = "test-app") tasks =
  Task.app ~name [ { Task.index = 1; tasks } ]

let run_app ?config device app spec_text =
  let suite = compile_and_deploy_exn device app spec_text in
  Runtime.run ?config device app suite

let count_events device pred = Log.count (Device.log device) pred

let completed (stats : Stats.t) = stats.Stats.outcome = Stats.Completed
