(* Live property adaptation (PR 4): wire format, the crash-atomic
   stage/validate/build/migrate/flip protocol, per-site crash recovery,
   the differential check against a from-scratch replay, and the
   depth-1 fault-injection campaign over the update-window sites. *)

open Artemis
module F = Artemis_faultsim.Faultsim
module Scenario = Artemis_faultsim.Scenario

(* --- wire format --- *)

let test_wire_roundtrip () =
  let updates =
    [
      Adapt.spec_update ~id:1 "a: { maxTries: 3 onFail: skipPath; }";
      Adapt.spec_update ~id:7 ~remove:[ "x"; "y" ] "a: { maxTries: 2 onFail: skipTask; }";
      Adapt.machine_update ~id:2 "machine m { initial state S { on startTask(a); } }";
      Adapt.removal_update ~id:3 [ "old_monitor" ];
    ]
  in
  List.iter
    (fun u ->
      match Adapt.deserialize (Adapt.serialize u) with
      | Ok u' -> Alcotest.(check bool) "roundtrip" true (u = u')
      | Error e -> Alcotest.fail e)
    updates;
  Alcotest.(check int) "wire_bytes is the image length"
    (String.length (Adapt.serialize (List.hd updates)))
    (Adapt.wire_bytes (List.hd updates));
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (Result.is_error (Adapt.deserialize bad)))
    [ ""; "garbage"; "artemis-update/1\nid: 1\npayload: spec";
      "artemis-update/9\nid: 1\npayload: none\n---\n";
      "artemis-update/1\npayload: none\n---\n" ]

let test_script_parsing () =
  (match
     Adapt.parse_script
       {|[ {"at": 5, "spec": "a: { maxTries: 2 onFail: skipPath; }"},
           {"at": 9, "id": 42, "remove": ["m1"]} ]|}
   with
  | Error e -> Alcotest.fail e
  | Ok [ (5, u1); (9, u2) ] ->
      Alcotest.(check int) "default id is position" 1 u1.Adapt.id;
      Alcotest.(check int) "explicit id kept" 42 u2.Adapt.id;
      Alcotest.(check (list string)) "removals" [ "m1" ] u2.Adapt.remove;
      Alcotest.(check bool) "payload none" true (u2.Adapt.payload = None)
  | Ok _ -> Alcotest.fail "wrong shape");
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (Result.is_error (Adapt.parse_script bad)))
    [
      "{}";
      "[ {\"spec\": \"x\"} ]";
      "[ {\"at\": 1, \"spec\": \"s\", \"machines\": \"m\"} ]";
      "not json";
    ]

(* --- a minimal deployment for protocol-level tests --- *)

let counter_src =
  {|machine counter_a {
  persistent var n : int = 0;
  initial state S {
    on startTask(a) { n := n + 1; };
  }
}|}

let counter_v2_src =
  {|machine counter_a {
  persistent var n : int = 0;
  var scratch : int = 0;
  initial state S {
    on startTask(a) { n := n + 2; };
  }
}|}

let counter_incompatible_src =
  {|machine counter_a {
  persistent var n : float = 0.0;
  initial state S {
    on startTask(a) { n := n + 1.0; };
  }
}|}

let small_app () =
  let a = Task.make ~name:"a" ~duration:(Time.of_ms 10) ~power:(Energy.mw 1.) () in
  Task.app ~name:"small" [ { Task.index = 1; tasks = [ a ] } ]

let start_a i =
  {
    Fsm.Interp.kind = Fsm.Interp.Start;
    task = "a";
    timestamp = Time.of_ms (10 * i);
    path = 1;
    dep_data = [];
    energy_mj = 10.;
  }

let setup () =
  let nvm = Nvm.create () in
  let app = small_app () in
  let machine = Fsm.Parser.parse_machine_exn counter_src in
  let suite = Suite.create nvm [ machine ] in
  Suite.hard_reset suite;
  let mgr = Adapt.create nvm ~app suite in
  (nvm, mgr)

let read_n mgr =
  match Suite.find (Adapt.active mgr) "counter_a" with
  | None -> Alcotest.fail "counter_a not deployed"
  | Some m -> (
      match Monitor.read_var m "n" with
      | Fsm.Ast.Vint n -> n
      | v -> Alcotest.failf "n is %s" (Format.asprintf "%a" Fsm.Ast.pp_value v))

let test_apply_migrates () =
  let _nvm, mgr = setup () in
  for i = 1 to 3 do
    ignore (Suite.step_all_unindexed (Adapt.active mgr) (start_a i))
  done;
  Alcotest.(check int) "pre-update count" 3 (read_n mgr);
  let update = Adapt.machine_update ~id:1 counter_v2_src in
  ignore (Adapt.stage mgr update);
  Alcotest.(check (option int)) "pending" (Some 1) (Adapt.pending_id mgr);
  (match Adapt.apply mgr with
  | Adapt.Applied { id; generation; migrations } ->
      Alcotest.(check int) "id" 1 id;
      Alcotest.(check int) "generation" 1 generation;
      (match migrations with
      | [ { Adapt.monitor = "counter_a"; migrated = [ "n" ]; reset = false } ] -> ()
      | _ -> Alcotest.fail "expected n migrated without reset")
  | _ -> Alcotest.fail "expected Applied");
  Alcotest.(check int) "generation advanced" 1 (Adapt.generation mgr);
  Alcotest.(check (list int)) "applied ids" [ 1 ] (Adapt.applied_ids mgr);
  Alcotest.(check bool) "exactly-once flag" true (Adapt.already_applied mgr 1);
  Alcotest.(check (option int)) "no pending left" None (Adapt.pending_id mgr);
  Alcotest.(check int) "persistent n migrated" 3 (read_n mgr);
  ignore (Suite.step_all_unindexed (Adapt.active mgr) (start_a 4));
  Alcotest.(check int) "new logic (+2) over migrated state" 5 (read_n mgr);
  (* nothing staged: apply is a no-op, never a re-application *)
  Alcotest.(check bool) "idle after commit" true (Adapt.apply mgr = Adapt.Idle)

let test_incompatible_resets () =
  let _nvm, mgr = setup () in
  for i = 1 to 3 do
    ignore (Suite.step_all_unindexed (Adapt.active mgr) (start_a i))
  done;
  ignore (Adapt.stage mgr (Adapt.machine_update ~id:1 counter_incompatible_src));
  (match Adapt.apply mgr with
  | Adapt.Applied { migrations = [ { Adapt.reset = true; migrated = []; _ } ]; _ } ->
      ()
  | _ -> Alcotest.fail "expected hard-reset fallback");
  match Suite.find (Adapt.active mgr) "counter_a" with
  | Some m -> (
      match Monitor.read_var m "n" with
      | Fsm.Ast.Vfloat f -> Alcotest.(check (float 0.0)) "reset to init" 0.0 f
      | _ -> Alcotest.fail "n should be a float now")
  | None -> Alcotest.fail "counter_a not deployed"

let test_validation_rejects () =
  let reject update expect_substring =
    let _nvm, mgr = setup () in
    ignore (Adapt.stage mgr update);
    match Adapt.apply mgr with
    | Adapt.Rejected { reason; _ } ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "reason %S mentions %S" reason expect_substring)
          true
          (contains reason expect_substring);
        (* a rejection leaves the deployment untouched and disarmed *)
        Alcotest.(check int) "generation unchanged" 0 (Adapt.generation mgr);
        Alcotest.(check (option int)) "pending cleared" None (Adapt.pending_id mgr)
    | _ -> Alcotest.fail "expected Rejected"
  in
  reject (Adapt.removal_update ~id:1 [ "nope" ]) "no deployed monitor";
  reject (Adapt.removal_update ~id:1 []) "empty update";
  reject (Adapt.spec_update ~id:1 "not a spec {") "spec:";
  reject
    (Adapt.machine_update ~id:1
       "machine m { initial state S { on startTask(zz); } }")
    "unknown task"

(* Crash-recovery: inject a power failure at every adaptation site in
   turn; after the reboot the recovery rule (finish a pending apply,
   else redeliver if not yet applied) must land on exactly one
   application with the migrated state intact. *)
let test_per_site_crash_recovery () =
  List.iter
    (fun site ->
      let nvm, mgr = setup () in
      for i = 1 to 3 do
        ignore (Suite.step_all_unindexed (Adapt.active mgr) (start_a i))
      done;
      let update = Adapt.machine_update ~id:1 counter_v2_src in
      let armed = ref true in
      let probe label =
        if !armed && String.equal label site then begin
          armed := false;
          raise (Nvm.Injected_failure label)
        end
      in
      (try
         ignore (Adapt.stage ~probe mgr update);
         match Adapt.apply ~probe mgr with
         | Adapt.Applied _ -> ()
         | _ -> Alcotest.failf "%s: expected Applied" site
       with Nvm.Injected_failure _ -> Nvm.power_failure nvm);
      (* recovery, as the runtime's update window performs it *)
      (if Adapt.pending_id mgr <> None then
         match Adapt.apply mgr with
         | Adapt.Applied _ -> ()
         | _ -> Alcotest.failf "%s: recovery apply failed" site
       else if not (Adapt.already_applied mgr 1) then begin
         ignore (Adapt.stage mgr update);
         match Adapt.apply mgr with
         | Adapt.Applied _ -> ()
         | _ -> Alcotest.failf "%s: redelivery failed" site
       end);
      Alcotest.(check (list int)) (site ^ ": applied exactly once") [ 1 ]
        (Adapt.applied_ids mgr);
      Alcotest.(check int) (site ^ ": generation") 1 (Adapt.generation mgr);
      Alcotest.(check int) (site ^ ": migrated state") 3 (read_n mgr))
    Adapt.injection_sites

(* --- runtime integration --- *)

let health_update =
  Adapt.spec_update ~id:1 ~remove:[ "maxDuration_send" ]
    "send: { MITD: 4min dpTask: accel onFail: restartPath maxAttempt: 3 \
     onFail: skipPath Path: 2; }"

let test_run_adaptive () =
  let device = Device.create () in
  let app, _ = Health_app.make (Device.nvm device) in
  let suite = compile_and_deploy_exn device app Health_app.spec_text in
  let before = List.map Monitor.name (Suite.monitors suite) in
  let r = Runtime.run_adaptive ~adaptations:[ (40, health_update) ] device app suite in
  Alcotest.(check bool) "completed" true
    (r.Runtime.adaptive_stats.Stats.outcome = Stats.Completed);
  Alcotest.(check int) "final generation" 1 r.Runtime.final_generation;
  let after = List.map Monitor.name (Suite.monitors r.Runtime.final_suite) in
  Alcotest.(check bool) "maxDuration_send removed" true
    (List.mem "maxDuration_send" before
    && not (List.mem "maxDuration_send" after));
  Alcotest.(check bool) "MITD replaced in place" true
    (List.mem "MITD_send_accel" after);
  match r.Runtime.records with
  | [ rec1 ] -> (
      Alcotest.(check int) "update id" 1 rec1.Runtime.update_id;
      Alcotest.(check bool) "radio was costed" true
        (Time.compare rec1.Runtime.radio_time Time.zero > 0
        && Energy.to_mj rec1.Runtime.radio_energy > 0.);
      match rec1.Runtime.outcome with
      | Runtime.Update_applied { generation = 1; migrations } ->
          Alcotest.(check bool) "MITD attempts migrated" true
            (List.exists
               (fun (m : Adapt.migration) ->
                 m.Adapt.monitor = "MITD_send_accel"
                 && List.mem "attempts" m.Adapt.migrated && not m.Adapt.reset)
               migrations)
      | _ -> Alcotest.fail "expected Update_applied at generation 1")
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

(* Differential check: a run that adapts at iteration K must equal a
   from-scratch replay of its committed journal - same events, same
   update at the same point - modulo nothing: even migrated variables
   are reproduced because migration is deterministic. *)
let test_differential_replay () =
  let device = Device.create () in
  let app, _ = Health_app.make (Device.nvm device) in
  let machines = compile_exn ~app Health_app.spec_text in
  let suite = deploy device machines in
  let result =
    Runtime.run_instrumented ~adaptations:[ (40, health_update) ]
      ~probe:(fun _ -> ())
      device app suite
  in
  Alcotest.(check bool) "update committed in the journal" true
    (List.exists
       (function Runtime.Adapted { id = 1; _ } -> true | _ -> false)
       result.Runtime.journal);
  let gnvm = Nvm.create () in
  let golden0 = Suite.create gnvm machines in
  Suite.hard_reset golden0;
  let mgr = Adapt.create gnvm ~app golden0 in
  let golden = ref golden0 in
  List.iter
    (function
      | Runtime.Stepped ev -> ignore (Suite.step_all_unindexed !golden ev)
      | Runtime.Reinited tasks -> Suite.reinit_for_tasks !golden ~tasks
      | Runtime.Adapted { id; generation } ->
          ignore (Adapt.stage mgr health_update);
          (match Adapt.apply mgr with
          | Adapt.Applied a ->
              Alcotest.(check int) "same id" id a.Adapt.id;
              Alcotest.(check int) "same generation" generation a.Adapt.generation
          | _ -> Alcotest.fail "golden re-apply diverged");
          golden := Adapt.active mgr)
    result.Runtime.journal;
  let actual = Suite.monitors result.Runtime.final_suite in
  let gold = Suite.monitors !golden in
  Alcotest.(check (list string)) "same suite composition"
    (List.map Monitor.name gold)
    (List.map Monitor.name actual);
  List.iter2
    (fun a g ->
      Alcotest.(check string)
        (Monitor.name a ^ ": same state")
        (Monitor.current_state g) (Monitor.current_state a);
      List.iter
        (fun (vd : Fsm.Ast.var_decl) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s equal" (Monitor.name a) vd.Fsm.Ast.var_name)
            true
            (Fsm.Ast.same_value
               (Monitor.read_var a vd.Fsm.Ast.var_name)
               (Monitor.read_var g vd.Fsm.Ast.var_name)))
        (Monitor.machine a).Fsm.Ast.vars)
    actual gold

(* The acceptance campaign: a power failure at every dynamic instant of
   the adapting quickstart run - including all eight rt.adapt.* windows
   - never violates an oracle: the update applies exactly once and the
   suite is never torn. *)
let test_faultsim_campaign () =
  let c = F.exhaustive Scenario.quickstart_adapt ~seed:42 ~depth:1 in
  Alcotest.(check int) "zero violations" 0 (F.total_violations c);
  Alcotest.(check int) "all sites covered, including rt.adapt.*"
    (F.site_count - List.length Artemis.Alpaca.injection_sites)
    (List.length c.F.covered);
  Alcotest.(check bool) "no reproducer" true (c.F.shrunk = None)

let test_adaptation_study () =
  let s = Artemis_experiments.Adaptation_study.run () in
  Alcotest.(check int) "two updates studied" 2
    (List.length s.Artemis_experiments.Adaptation_study.rows);
  List.iter
    (fun (r : Artemis_experiments.Adaptation_study.row) ->
      Alcotest.(check bool) (r.label ^ ": applied") true
        (Artemis_experiments.Adaptation_study.applied r);
      Alcotest.(check bool) (r.label ^ ": orders of magnitude cheaper") true
        (Artemis_experiments.Adaptation_study.energy_ratio s r > 10.))
    s.Artemis_experiments.Adaptation_study.rows;
  let rendered = Artemis_experiments.Adaptation_study.render s in
  Alcotest.(check bool) "render mentions the baseline" true
    (String.length rendered > 0)

let suite =
  [
    ("wire roundtrip", `Quick, test_wire_roundtrip);
    ("script parsing", `Quick, test_script_parsing);
    ("apply migrates persistent state", `Quick, test_apply_migrates);
    ("incompatible layout hard-resets", `Quick, test_incompatible_resets);
    ("validation rejects, never half-deploys", `Quick, test_validation_rejects);
    ("per-site crash recovery is exactly-once", `Quick,
      test_per_site_crash_recovery);
    ("run_adaptive swaps the live suite", `Quick, test_run_adaptive);
    ("differential: adapted run == from-scratch replay", `Quick,
      test_differential_replay);
    ("depth-1 campaign over the update window", `Quick, test_faultsim_campaign);
    ("adaptation study beats reprogramming", `Quick, test_adaptation_study);
  ]
