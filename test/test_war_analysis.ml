(* Static WAR-hazard analysis (PR 7).

   Two layers of evidence:

   - unit tests pin the pass's judgement on hand-written bodies and on
     the shipped scenario catalogue across all four backend task
     surfaces (ARTEMIS runtime / Mayfly via [Task.bodies], InK via
     [Ink.bodies], checkpoints via [Checkpoint.bodies], immortal
     threads via [analyze_steps]);

   - a QCheck differential test generates random task bodies over a
     small FRAM cell set and checks the pass against a trivially-correct
     crash-replay reference on pure arrays: if re-executing the body
     after a crash at ANY prefix can diverge from the crash-free run,
     the static pass must flag at least one hazard (soundness).  Fully
     transactional bodies must never be flagged (no false positives on
     the programming model the runtime actually promises). *)

open Artemis
module War = Consistency.War
module Scenario = Artemis_faultsim.Scenario

let fresh_store () =
  let nvm = Nvm.create () in
  let a = Nvm.cell nvm ~region:Nvm.Application ~name:"a" ~bytes:4 5 in
  let b = Nvm.cell nvm ~region:Nvm.Application ~name:"b" ~bytes:4 (-3) in
  let scratch =
    Nvm.cell nvm ~region:Nvm.Runtime ~kind:Nvm.Ram ~name:"scratch" ~bytes:4 0
  in
  (nvm, a, b, scratch)

let analyze_body name body =
  let nvm, a, b, scratch = fresh_store () in
  War.analyze_bodies nvm [ (name, fun _ -> body a b scratch) ]

(* --- unit: hand-written bodies --- *)

let test_flags_read_modify_write () =
  let r =
    analyze_body "rmw" (fun a _ _ -> Nvm.write a (Nvm.read a + 1))
  in
  Alcotest.(check bool) "flagged" true (War.has_hazards r);
  match r.War.hazards with
  | [ h ] ->
      Alcotest.(check string) "task" "rmw" h.War.haz_task;
      Alcotest.(check string) "cell" "a" h.War.haz_cell
  | hs -> Alcotest.failf "expected exactly one hazard, got %d" (List.length hs)

let test_tx_write_is_safe () =
  let r =
    analyze_body "tx-rmw" (fun a _ _ -> Nvm.tx_write a (Nvm.read a + 1))
  in
  Alcotest.(check bool) "tx-buffered rmw not flagged" false (War.has_hazards r)

let test_volatile_is_safe () =
  let r =
    analyze_body "ram-rmw" (fun _ _ s -> Nvm.write s (Nvm.read s + 1))
  in
  Alcotest.(check bool) "volatile rmw not flagged" false (War.has_hazards r)

let test_blind_write_is_safe () =
  let r = analyze_body "blind" (fun a _ _ -> Nvm.write a 99) in
  Alcotest.(check bool) "write without read not flagged" false
    (War.has_hazards r)

let test_write_then_read_is_safe () =
  let r =
    analyze_body "wtr" (fun a _ _ ->
        Nvm.write a 7;
        ignore (Nvm.read a))
  in
  Alcotest.(check bool) "write-then-read not flagged" false (War.has_hazards r)

let test_cross_cell_read_then_write () =
  (* read a, then plain-write a via a copy chain: a is read at one
     point and directly written at a later one - flagged, whatever
     cell the intermediate value passed through *)
  let r =
    analyze_body "chain" (fun a b _ ->
        Nvm.write b (Nvm.read a);
        Nvm.write a (Nvm.read b))
  in
  Alcotest.(check bool) "read-then-later-write flagged" true
    (War.has_hazards r)

(* --- unit: the scenario catalogue --- *)

let build name =
  match Scenario.find name with
  | Some sc -> sc.Scenario.build ~engine:None ~seed:42
  | None -> Alcotest.failf "scenario %s missing" name

let test_war_buggy_flagged () =
  let b = build "war-buggy" in
  let r = War.analyze_app (Device.nvm b.Scenario.device) b.Scenario.app in
  Alcotest.(check bool) "war-buggy flagged" true (War.has_hazards r);
  Alcotest.(check bool) "names the accumulator cell" true
    (List.exists
       (fun h -> h.War.haz_task = "filter" && h.War.haz_cell = "drv.filter.acc")
       r.War.hazards)

let test_shipped_scenarios_clean () =
  List.iter
    (fun name ->
      let b = build name in
      let r = War.analyze_app (Device.nvm b.Scenario.device) b.Scenario.app in
      Alcotest.(check int)
        (Printf.sprintf "%s has no WAR hazards" name)
        0
        (List.length r.War.hazards))
    [ "quickstart"; "health"; "quickstart-fresh"; "stale-read" ]

let test_soil_app_clean () =
  let nvm = Nvm.create () in
  let app, _handles = Soil_app.make nvm in
  let r = War.analyze_app nvm app in
  Alcotest.(check int) "soil app has no WAR hazards" 0
    (List.length r.War.hazards)

(* --- unit: the four backend task surfaces --- *)

let hazardous_task nvm =
  let acc = Nvm.cell nvm ~region:Nvm.Runtime ~name:"acc" ~bytes:4 0 in
  Task.make ~name:"bump" ~duration:(Time.of_ms 10) ~power:(Energy.mw 1.)
    ~body:(fun _ -> Nvm.write acc (Nvm.read acc + 1))
    ()

let test_ink_surface () =
  let nvm = Nvm.create () in
  let armed =
    [
      {
        Ink.thread =
          {
            Ink.thread_name = "t";
            priority = 1;
            tasks = [ hazardous_task nvm ];
            expiry = None;
          };
        arrival = Time.zero;
      };
    ]
  in
  let r = War.analyze_bodies nvm (Ink.bodies armed) in
  Alcotest.(check bool) "InK surface flagged" true (War.has_hazards r)

let test_checkpoint_surface () =
  let nvm = Nvm.create () in
  let acc = Nvm.cell nvm ~region:Nvm.Application ~name:"ckpt.acc" ~bytes:4 0 in
  let seg =
    Checkpoint.segment ~name:"s1" ~duration:(Time.of_ms 10)
      ~power:(Energy.mw 1.)
      ~body:(fun _ -> Nvm.write acc (Nvm.read acc + 1))
      ()
  in
  let program = { Checkpoint.program_name = "p"; segments = [ seg ] } in
  let r = War.analyze_bodies nvm (Checkpoint.bodies program) in
  Alcotest.(check bool) "checkpoint surface flagged" true (War.has_hazards r)

let test_immortal_surface () =
  let nvm = Nvm.create () in
  let acc = Nvm.cell nvm ~region:Nvm.Monitor ~name:"imm.acc" ~bytes:4 0 in
  let safe = Nvm.cell nvm ~region:Nvm.Monitor ~name:"imm.safe" ~bytes:4 0 in
  let thread =
    Immortal.create nvm ~region:Nvm.Monitor ~name:"mon"
      ~steps:
        [|
          (fun () -> Nvm.write safe 1);
          (fun () -> Nvm.write acc (Nvm.read acc + 1));
        |]
  in
  let r =
    War.analyze_steps nvm ~name:"mon" (Immortal.steps thread)
  in
  Alcotest.(check bool) "immortal surface flagged" true (War.has_hazards r);
  (* per-step transactions: the hazard is localized to step 1 *)
  Alcotest.(check bool) "hazard names the step" true
    (List.exists (fun h -> h.War.haz_task = "mon#1") r.War.hazards)

(* --- differential: random bodies vs brute-force crash replay --- *)

let n_cells = 3
let init = [| 5; -3; 11 |]

type bop =
  | Incr_plain of int  (* write c (read c + 1): the canonical hazard *)
  | Incr_tx of int  (* tx_write c (read c + 1): crash-safe *)
  | Set_plain of int * int  (* write c k: blind, idempotent *)
  | Set_tx of int * int
  | Copy_plain of int * int  (* write c_j (read c_i) *)

let print_bop = function
  | Incr_plain i -> Printf.sprintf "c%d := c%d + 1" i i
  | Incr_tx i -> Printf.sprintf "c%d :=tx c%d + 1" i i
  | Set_plain (i, k) -> Printf.sprintf "c%d := %d" i k
  | Set_tx (i, k) -> Printf.sprintf "c%d :=tx %d" i k
  | Copy_plain (i, j) -> Printf.sprintf "c%d := c%d" j i

(* The store raises on a plain write over a cell with a pending tx
   write; the runtime's programming model simply never does that.  The
   pending-set evolution of a body is the same on every (re-)execution,
   so one static pass yields the legal subsequence. *)
let sanitize ops =
  let pending = Array.make n_cells false in
  List.filter
    (fun op ->
      match op with
      | Incr_tx i | Set_tx (i, _) ->
          pending.(i) <- true;
          true
      | Incr_plain i | Set_plain (i, _) -> not pending.(i)
      | Copy_plain (_, j) -> not pending.(j))
    ops

(* Pure reference semantics: committed array + tx-pending overlay,
   reads see the overlay (the body runs inside one open transaction). *)
let pure_read committed pending i =
  match pending.(i) with Some v -> v | None -> committed.(i)

let pure_apply committed pending = function
  | Incr_plain i -> committed.(i) <- pure_read committed pending i + 1
  | Incr_tx i -> pending.(i) <- Some (pure_read committed pending i + 1)
  | Set_plain (i, k) -> committed.(i) <- k
  | Set_tx (i, k) -> pending.(i) <- Some k
  | Copy_plain (i, j) -> committed.(j) <- pure_read committed pending i

let pure_commit committed pending =
  Array.iteri
    (fun i p -> match p with Some v -> committed.(i) <- v | None -> ())
    pending;
  Array.fill pending 0 n_cells None

(* Run the whole body over [committed] and commit its transaction. *)
let pure_run committed ops =
  let pending = Array.make n_cells None in
  List.iter (pure_apply committed pending) ops;
  pure_commit committed pending

(* Crash after the first [k] operations (tx buffer discarded, plain
   writes durable), then re-execute the body from the top, as the
   runtime does.  Returns the final committed state. *)
let crash_replay_final ops k =
  let committed = Array.copy init in
  let pending = Array.make n_cells None in
  List.iteri (fun n op -> if n < k then pure_apply committed pending op) ops;
  (* power failure: pending discarded, committed survives *)
  pure_run committed ops;
  committed

let diverges ops =
  let straight = Array.copy init in
  pure_run straight ops;
  let rec loop k =
    if k > List.length ops then false
    else if crash_replay_final ops k <> straight then true
    else loop (k + 1)
  in
  loop 0

let static_flags ops =
  let nvm = Nvm.create () in
  let cells =
    Array.init n_cells (fun i ->
        Nvm.cell nvm ~region:Nvm.Application
          ~name:(Printf.sprintf "c%d" i)
          ~bytes:4 init.(i))
  in
  let body _ =
    List.iter
      (function
        | Incr_plain i -> Nvm.write cells.(i) (Nvm.read cells.(i) + 1)
        | Incr_tx i -> Nvm.tx_write cells.(i) (Nvm.read cells.(i) + 1)
        | Set_plain (i, k) -> Nvm.write cells.(i) k
        | Set_tx (i, k) -> Nvm.tx_write cells.(i) k
        | Copy_plain (i, j) -> Nvm.write cells.(j) (Nvm.read cells.(i)))
      ops
  in
  War.has_hazards (War.analyze_bodies nvm [ ("body", body) ])

let bop_gen =
  QCheck.Gen.(
    let cell = int_bound (n_cells - 1) in
    let v = int_range (-50) 50 in
    frequency
      [
        (3, map (fun i -> Incr_plain i) cell);
        (3, map (fun i -> Incr_tx i) cell);
        (2, map2 (fun i k -> Set_plain (i, k)) cell v);
        (2, map2 (fun i k -> Set_tx (i, k)) cell v);
        (3, map2 (fun i j -> Copy_plain (i, j)) cell cell);
      ])

let arb_body =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_bop ops))
    QCheck.Gen.(list_size (int_range 0 12) bop_gen)

(* Soundness: whenever the brute-force crash replay can observe a
   divergent final state, the static pass reports a hazard. *)
let soundness =
  QCheck.Test.make ~name:"crash-replay divergence implies a WAR flag"
    ~count:500 arb_body (fun raw ->
      let ops = sanitize raw in
      (not (diverges ops)) || static_flags ops)

(* No false positives on the promised programming model: a body whose
   persistent writes are all transactional is never flagged (and never
   diverges). *)
let tx_only_clean =
  QCheck.Test.make ~name:"fully transactional bodies are never flagged"
    ~count:300 arb_body (fun raw ->
      let ops =
        List.filter
          (function Incr_tx _ | Set_tx _ -> true | _ -> false)
          (sanitize raw)
      in
      (not (diverges ops)) && not (static_flags ops))

let suite =
  [
    ("flags read-modify-write", `Quick, test_flags_read_modify_write);
    ("tx_write rmw is safe", `Quick, test_tx_write_is_safe);
    ("volatile rmw is safe", `Quick, test_volatile_is_safe);
    ("blind write is safe", `Quick, test_blind_write_is_safe);
    ("write-then-read is safe", `Quick, test_write_then_read_is_safe);
    ("cross-cell read-then-write flagged", `Quick,
      test_cross_cell_read_then_write);
    ("war-buggy scenario flagged", `Quick, test_war_buggy_flagged);
    ("shipped scenarios clean", `Quick, test_shipped_scenarios_clean);
    ("soil app clean", `Quick, test_soil_app_clean);
    ("InK task surface", `Quick, test_ink_surface);
    ("checkpoint segment surface", `Quick, test_checkpoint_surface);
    ("immortal step surface", `Quick, test_immortal_surface);
    QCheck_alcotest.to_alcotest soundness;
    QCheck_alcotest.to_alcotest tx_only_clean;
  ]
