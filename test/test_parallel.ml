(* The domain-parallel campaign runner (PR 5): the work-stealing map
   itself, the jobs-count-invariance of campaign reports (QCheck
   property: --jobs 1 and --jobs 4 produce byte-identical JSON and
   merged traces), and cross-domain isolation of Obs contexts. *)

open Artemis
module F = Artemis_faultsim.Faultsim
module Scenario = Artemis_faultsim.Scenario
module Par = Artemis_util.Par

(* --- Par.map --- *)

let test_par_map_order () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let got = Par.map ~jobs n (fun i -> i * i) in
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d n=%d" jobs n)
            (Array.init n (fun i -> i * i))
            got)
        [ 0; 1; 2; 7; 64 ])
    [ 1; 2; 4; 9 ]

let test_par_map_chunked () =
  let got = Par.map ~jobs:3 ~chunk:5 41 (fun i -> i + 1) in
  Alcotest.(check (array int)) "chunk=5" (Array.init 41 (fun i -> i + 1)) got

let test_par_map_list () =
  let xs = [ "a"; "b"; "c"; "d"; "e" ] in
  Alcotest.(check (list string))
    "map_list preserves order"
    (List.map String.uppercase_ascii xs)
    (Par.map_list ~jobs:4 String.uppercase_ascii xs)

let test_par_map_validates () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Par.map: jobs must be >= 1")
    (fun () -> ignore (Par.map ~jobs:0 3 Fun.id));
  Alcotest.check_raises "chunk=0"
    (Invalid_argument "Par.map: chunk must be >= 1") (fun () ->
      ignore (Par.map ~jobs:2 ~chunk:0 3 Fun.id))

exception Boom of int

let test_par_map_propagates_exn () =
  List.iter
    (fun jobs ->
      match Par.map ~jobs 32 (fun i -> if i = 17 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 17 -> ())
    [ 1; 4 ]

(* every spawned worker domain starts with its own quiet Obs context;
   items that land on the calling domain (always possible - worker 0
   runs there, and the PR 8 core cap may run the whole map inline) share
   the caller's context, which is why recording mapped code must isolate
   itself explicitly (next test) *)
let test_par_map_worker_ctx_isolated () =
  let parent = Obs.current () in
  let before = Obs.Ctx.event_count parent in
  let ctxs =
    Par.map ~jobs:4 8 (fun i ->
        let ctx = Obs.current () in
        if ctx != parent then begin
          Obs.Ctx.set_tracing ctx true;
          Obs.Ctx.instant ctx ~cat:"test" ~ts:i "tick"
        end;
        ctx)
  in
  Alcotest.(check int) "parent ctx untouched" before
    (Obs.Ctx.event_count parent);
  Array.iter
    (fun ctx ->
      Alcotest.(check bool) "worker recorded into its own ctx" true
        (ctx == parent || Obs.Ctx.event_count ctx >= 1))
    ctxs

(* the isolation pattern the campaign and fleet runners actually use:
   an explicit per-item context under [with_ctx] keeps the parent byte
   clean for every jobs value, even when the map runs inline *)
let test_par_map_explicit_isolation () =
  let parent = Obs.current () in
  let before = Obs.Ctx.event_count parent in
  let ctxs =
    Par.map ~jobs:4 8 (fun i ->
        let ctx = Obs.Ctx.create () in
        Obs.Ctx.set_tracing ctx true;
        Obs.with_ctx ctx (fun () -> Obs.instant ~cat:"test" ~ts:i "tick");
        ctx)
  in
  Alcotest.(check int) "parent ctx untouched" before
    (Obs.Ctx.event_count parent);
  Array.iter
    (fun ctx ->
      Alcotest.(check int) "each item recorded into its own ctx" 1
        (Obs.Ctx.event_count ctx))
    ctxs

(* --- Obs: two domains recording concurrently never interleave --- *)

let digest_of_ctx ctx = Digest.to_hex (Digest.string (Obs.Ctx.trace_json ctx))

(* Record [n] instants through the ctx clock (ts = base + clock), the
   same path device-driven events take. *)
let record_burst ctx label n =
  Obs.Ctx.set_tracing ctx true;
  let t = ref 0 in
  Obs.Ctx.set_clock ctx (fun () -> !t);
  for i = 1 to n do
    t := i;
    Obs.Ctx.instant ctx ~cat:label (Printf.sprintf "%s-%d" label i)
  done;
  ctx

let test_obs_two_domain_isolation () =
  (* expected digests from sequential, single-domain recording *)
  let expect_a = digest_of_ctx (record_burst (Obs.Ctx.create ()) "alpha" 500) in
  let expect_b = digest_of_ctx (record_burst (Obs.Ctx.create ()) "beta" 500) in
  for _round = 1 to 5 do
    let a = Obs.Ctx.create () and b = Obs.Ctx.create () in
    let da =
      Domain.spawn (fun () -> ignore (record_burst a "alpha" 500))
    in
    let db =
      Domain.spawn (fun () -> ignore (record_burst b "beta" 500))
    in
    Domain.join da;
    Domain.join db;
    Alcotest.(check string) "ctx a digest" expect_a (digest_of_ctx a);
    Alcotest.(check string) "ctx b digest" expect_b (digest_of_ctx b)
  done

(* absorbing per-run contexts in run order reproduces the sequential
   timeline: interleaved two-context recording merged with absorb equals
   recording both bursts into one context back to back *)
let test_obs_absorb_stitches () =
  let seq = Obs.Ctx.create () in
  ignore (record_burst seq "alpha" 50);
  Obs.Ctx.set_base seq 1_000;
  ignore (record_burst seq "beta" 50);
  Obs.Ctx.set_base seq 2_000;
  let a = record_burst (Obs.Ctx.create ()) "alpha" 50 in
  Obs.Ctx.set_base a 1_000;
  let b = record_burst (Obs.Ctx.create ()) "beta" 50 in
  Obs.Ctx.set_base b 1_000;
  let merged = Obs.Ctx.create () in
  Obs.Ctx.set_tracing merged true;
  Obs.Ctx.absorb ~into:merged a;
  Obs.Ctx.absorb ~into:merged b;
  Alcotest.(check int) "merged base" 2_000 (Obs.Ctx.base merged);
  Alcotest.(check string) "merged timeline = sequential timeline"
    (Obs.Ctx.trace_json seq) (Obs.Ctx.trace_json merged)

(* --- campaign determinism: jobs must never change the report --- *)

let campaign_gen =
  QCheck.make
    ~print:(fun (scenario, depth, seed) ->
      Printf.sprintf "(%s, depth=%d, seed=%d)" scenario.Scenario.name depth
        seed)
    QCheck.Gen.(
      let* scenario = oneofl [ Scenario.quickstart; Scenario.quickstart_adapt ] in
      let* depth = 1 -- 2 in
      let* seed = 0 -- 1000 in
      return (scenario, depth, seed))

let exhaustive_jobs_invariant =
  QCheck.Test.make ~name:"exhaustive report is jobs-invariant" ~count:4
    campaign_gen (fun (scenario, depth, seed) ->
      let run jobs =
        let ctx = Obs.Ctx.create () in
        Obs.Ctx.set_tracing ctx true;
        let json =
          Obs.with_ctx ctx (fun () ->
              F.campaign_to_json (F.exhaustive scenario ~seed ~depth ~jobs))
        in
        (json, Obs.Ctx.trace_json ctx)
      in
      let json1, trace1 = run 1 in
      let json4, trace4 = run 4 in
      String.equal json1 json4 && String.equal trace1 trace4)

let random_jobs_invariant =
  QCheck.Test.make ~name:"random campaign report is jobs-invariant" ~count:4
    campaign_gen (fun (scenario, _depth, seed) ->
      let run jobs =
        F.campaign_to_json
          (F.random_campaign scenario ~seed ~runs:20 ~max_depth:3 ~jobs)
      in
      String.equal (run 1) (run 4))

(* PR 8: the chunk size is a throughput knob only - results land at
   their input index whatever granularity workers claim them at. *)
let chunk_invariant =
  QCheck.Test.make ~name:"Par.map results are chunk-invariant" ~count:100
    QCheck.(
      make
        ~print:(fun (n, jobs, chunk) ->
          Printf.sprintf "(n=%d, jobs=%d, chunk=%s)" n jobs
            (match chunk with None -> "auto" | Some c -> string_of_int c))
        Gen.(
          let* n = 0 -- 200 in
          let* jobs = 1 -- 9 in
          let* chunk = opt (1 -- 64) in
          return (n, jobs, chunk)))
    (fun (n, jobs, chunk) ->
      Par.map ~jobs ?chunk n (fun i -> (i * 7) mod 13)
      = Array.init n (fun i -> (i * 7) mod 13))

let test_auto_chunk () =
  (* ~8 chunks per worker, never zero, and a single worker takes the
     whole range in one claim-free pass anyway. *)
  Alcotest.(check int) "n < jobs*8" 1 (Par.auto_chunk ~jobs:4 7);
  Alcotest.(check int) "10k over 4" 312 (Par.auto_chunk ~jobs:4 10_000);
  Alcotest.(check int) "empty" 1 (Par.auto_chunk ~jobs:4 0)

let suite =
  [
    ("Par.map: input order, any jobs/n", `Quick, test_par_map_order);
    ("Par.map: chunked claims", `Quick, test_par_map_chunked);
    ("Par.map_list: order preserved", `Quick, test_par_map_list);
    ("Par.map: rejects jobs/chunk < 1", `Quick, test_par_map_validates);
    ("Par.map: first exception propagates", `Quick, test_par_map_propagates_exn);
    ("Par.map: worker Obs contexts are private", `Quick,
      test_par_map_worker_ctx_isolated);
    ("Par.map: explicit per-item ctx isolation", `Quick,
      test_par_map_explicit_isolation);
    ("Obs: two domains record without interleaving", `Quick,
      test_obs_two_domain_isolation);
    ("Obs: absorb stitches the sequential timeline", `Quick,
      test_obs_absorb_stitches);
    ("Par.auto_chunk: ~8 chunks per worker, min 1", `Quick, test_auto_chunk);
    QCheck_alcotest.to_alcotest exhaustive_jobs_invariant;
    QCheck_alcotest.to_alcotest random_jobs_invariant;
    QCheck_alcotest.to_alcotest chunk_invariant;
  ]
