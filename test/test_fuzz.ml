(* Fuzzing the three language frontends: whatever the input, parsing must
   return [Error _], never raise or loop. *)

open Artemis

let gen_garbage =
  QCheck.Gen.(
    oneof
      [
        (* arbitrary printable noise *)
        string_size ~gen:(char_range ' ' '~') (int_bound 120);
        (* token soup that resembles the languages *)
        map (String.concat " ")
          (list_size (int_bound 25)
             (oneofl
                [
                  "machine"; "state"; "initial"; "on"; "when"; "fail"; "var";
                  "maxTries"; "MITD"; "collect"; "onFail"; "dpTask"; "Path";
                  "restartPath"; "skipPath"; "->"; "{"; "}"; "("; ")"; ";"; ":";
                  ":="; "5min"; "100ms"; "3.4mJ"; "42"; "3.5"; "t"; "data";
                  "expires"; "energyLevel"; "["; "]"; ",";
                ]));
      ])

let no_exception parse input =
  match parse input with Ok _ | Error _ -> true

let spec_fuzz =
  QCheck.Test.make ~name:"spec parser never raises" ~count:1000
    (QCheck.make gen_garbage)
    (no_exception Spec.Parser.parse)

(* Truncation fuzzing: every prefix of a valid spec is either a valid
   spec or a located parse error — never an [Assert_failure] from a
   drained token stream. *)
let gen_truncated_spec =
  QCheck.Gen.(
    map
      (fun n -> String.sub Health_app.spec_text 0 n)
      (int_bound (String.length Health_app.spec_text)))

let spec_truncation_fuzz =
  QCheck.Test.make ~name:"spec parser survives truncation" ~count:500
    (QCheck.make ~print:(fun s -> s) gen_truncated_spec)
    (no_exception Spec.Parser.parse)

let fsm_fuzz =
  QCheck.Test.make ~name:"fsm parser never raises" ~count:1000
    (QCheck.make gen_garbage)
    (no_exception Fsm.Parser.parse)

let mayfly_fuzz =
  QCheck.Test.make ~name:"mayfly-lang parser never raises" ~count:1000
    (QCheck.make gen_garbage)
    (no_exception Mayfly_lang.parse)

let suite =
  [
    QCheck_alcotest.to_alcotest spec_fuzz;
    QCheck_alcotest.to_alcotest spec_truncation_fuzz;
    QCheck_alcotest.to_alcotest fsm_fuzz;
    QCheck_alcotest.to_alcotest mayfly_fuzz;
  ]
