(* artemis_fleet: run a fleet of simulated intermittent devices - a
   scenario x seed x harvester x engine x backend matrix - sharded over
   domains, and print one deterministically-merged report. *)

open Cmdliner

let load_spec spec_path name scenarios seeds seed_first harvesters engines
    backends =
  match spec_path with
  | Some path -> (
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error e -> Error e
      | text -> Fleet.spec_of_json text)
  | None ->
      (* Inline flags build the same document the spec file would hold. *)
      let arr names =
        Printf.sprintf "[%s]"
          (String.concat ", " (List.map Artemis.Json.quote names))
      in
      Fleet.spec_of_json
        (Printf.sprintf
           "{\"name\": %s, \"scenarios\": %s, \"seeds\": {\"first\": %d, \
            \"count\": %d}, \"harvesters\": %s, \"engines\": %s, \
            \"backends\": %s}"
           (Artemis.Json.quote name) (arr scenarios) seed_first seeds
           (arr harvesters) (arr engines) (arr backends))

(* --progress: completion ticks with a wall-clock ETA on stderr.  Rendered
   from completion order, so it never touches the (deterministic) report. *)
let progress_printer total =
  let started = Unix.gettimeofday () in
  let last_line = ref 0 in
  fun ~completed ~total:_ ->
    let elapsed = Unix.gettimeofday () -. started in
    let pct = 100 * completed / total in
    let line =
      if completed = total then
        Printf.sprintf "fleet: %d/%d devices in %.1fs\n" completed total elapsed
      else if elapsed > 0.2 && completed > 0 then
        let eta = elapsed /. float_of_int completed
                  *. float_of_int (total - completed) in
        Printf.sprintf "\rfleet: %d/%d (%d%%) eta %.0fs " completed total pct
          eta
      else Printf.sprintf "\rfleet: %d/%d (%d%%) " completed total pct
    in
    (* Overwrite the previous line; pad when the new one is shorter. *)
    let pad = max 0 (!last_line - String.length line) in
    last_line := String.length line;
    prerr_string (line ^ String.make pad ' ');
    flush stderr

let run spec_path name scenarios seeds seed_first harvesters engines backends
    jobs chunk json devices out progress =
  if jobs < 0 then begin
    Printf.eprintf
      "artemis_fleet: --jobs must be 0 (auto) or positive (got %d)\n" jobs;
    2
  end
  else
    let jobs = if jobs = 0 then Artemis.Par.recommended_jobs () else jobs in
    match
      load_spec spec_path name scenarios seeds seed_first harvesters engines
        backends
    with
    | Error msg ->
        Printf.eprintf "artemis_fleet: %s\n" msg;
        1
    | Ok spec ->
        let on_progress =
          if progress then Some (progress_printer (Fleet.spec_size spec))
          else None
        in
        let report = Fleet.run ~jobs ?chunk ?on_progress spec in
        let emit oc =
          if json then Fleet.output_report_json ~devices oc report
          else output_string oc (Fleet.report_summary report)
        in
        (match out with
        | None -> emit stdout
        | Some path ->
            Out_channel.with_open_bin path emit;
            Printf.printf "fleet report written to %s\n" path);
        0

let spec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spec" ] ~docv:"FILE"
        ~doc:
          "Fleet spec JSON: {\"name\", \"scenarios\": [..], \"seeds\": \
           {\"first\", \"count\"}, \"harvesters\": [..], \"engines\": [..], \
           \"backends\": [..]}. Overrides the inline flags below.")

let name_arg =
  Arg.(
    value & opt string "fleet"
    & info [ "name" ] ~docv:"NAME" ~doc:"Fleet name for the report.")

let scenario_arg =
  Arg.(
    value
    & opt_all string [ "quickstart" ]
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          "Scenario(s) to deploy across the fleet (repeatable; default \
           $(b,quickstart)).  Same catalogue as $(b,faultsim).")

let seeds_arg =
  Arg.(
    value & opt int 10
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Seeds per scenario/harvester/engine/backend cell (default 10).")

let seed_first_arg =
  Arg.(
    value & opt int 0
    & info [ "seed-first" ] ~docv:"SEED" ~doc:"First seed (default 0).")

let harvester_arg =
  Arg.(
    value
    & opt_all string [ "default" ]
    & info [ "harvester" ] ~docv:"PROFILE"
        ~doc:
          "Harvester profile(s) (repeatable): $(b,default) keeps the \
           scenario's charging policy, $(b,fixed:30s) a fixed charging \
           delay, $(b,duty:200uw) a 2-minute duty-cycled harvester at the \
           given average power, $(b,constant:65uw) steady incoming power.")

let engine_arg =
  Arg.(
    value
    & opt_all string [ "default" ]
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Monitor engine(s) (repeatable): $(b,default), $(b,interpreted), \
           $(b,compiled) or $(b,table).")

let backend_arg =
  Arg.(
    value
    & opt_all string [ "immortal" ]
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Task-execution backend(s) (repeatable): $(b,immortal), \
           $(b,checkpoint), $(b,ink), $(b,mayfly) or $(b,alpaca).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Shard devices over $(docv) domains (default 0 = auto: one worker \
           per core).  The report is byte-identical for every $(docv).")

let chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"K"
        ~doc:
          "Devices claimed per scheduling step (default: automatic).  \
           Affects throughput only, never the report.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let devices_arg =
  Arg.(
    value & flag
    & info [ "devices" ]
        ~doc:"Include the full per-device array in the JSON report.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the report to $(docv) instead of stdout.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Print completion progress and an ETA to stderr.")

let cmd =
  let doc = "simulate a fleet of intermittent devices in parallel" in
  Cmd.v
    (Cmd.info "artemis_fleet" ~doc)
    Term.(
      const run $ spec_arg $ name_arg $ scenario_arg $ seeds_arg
      $ seed_first_arg $ harvester_arg $ engine_arg $ backend_arg $ jobs_arg
      $ chunk_arg $ json_arg $ devices_arg $ out_arg $ progress_arg)

let () = exit (Cmd.eval' cmd)
