(* artemis_sim: run the health-monitoring benchmark on the simulated
   intermittent device under either runtime, printing statistics and
   (optionally) the execution trace. *)

open Cmdliner
open Artemis_experiments

(* Self-validate an export before reporting success: the trace must be a
   parseable JSON document whose B/E events pair up per track, and the
   metrics counters must reconcile with the log-derived stats.  Failing
   either is a bug in the observability layer, reported as exit 1. *)
let check_trace_json text =
  match Artemis.Json.parse text with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok doc -> (
      match Artemis.Json.(member "traceEvents" doc) with
      | Some (Artemis.Json.Arr events) ->
          let depth = Hashtbl.create 8 in
          let bad =
            List.exists
              (fun ev ->
                let str k =
                  match Artemis.Json.member k ev with
                  | Some (Artemis.Json.Str s) -> s
                  | _ -> ""
                in
                let tid =
                  match Artemis.Json.member "tid" ev with
                  | Some (Artemis.Json.Num n) -> int_of_float n
                  | _ -> 0
                in
                let d = try Hashtbl.find depth tid with Not_found -> 0 in
                match str "ph" with
                | "B" ->
                    Hashtbl.replace depth tid (d + 1);
                    false
                | "E" ->
                    Hashtbl.replace depth tid (d - 1);
                    d - 1 < 0
                | _ -> false)
              events
          in
          let unclosed = Hashtbl.fold (fun _ d acc -> acc || d <> 0) depth false in
          if bad || unclosed then Error "unbalanced B/E span events" else Ok ()
      | _ -> Error "missing traceEvents array")

(* --adapt FILE: a JSON array of live property updates delivered to the
   running device (see Adapt.parse_script for the schema). *)
let load_adapt_script = function
  | None -> Ok None
  | Some path -> (
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error e -> Error e
      | text -> (
          match Artemis.Adapt.parse_script text with
          | Ok updates -> Ok (Some updates)
          | Error e -> Error e))

(* --matrix SCENARIO: run the scenario under every registered backend
   (immortal, checkpoint, ink, mayfly, alpaca) with the same monitors
   and compare the verdict streams; exit 1 on divergence. *)
let run_matrix name json seed =
  match Artemis_faultsim.Scenario.find name with
  | None ->
      Printf.eprintf "artemis_sim: unknown scenario %S (%s)\n" name
        (String.concat "|"
           (List.map
              (fun s -> s.Artemis_faultsim.Scenario.name)
              Artemis_faultsim.Scenario.all));
      2
  | Some scenario ->
      let report = Artemis_faultsim.Matrix.run scenario ~seed in
      print_string
        (if json then Artemis_faultsim.Matrix.to_json report
         else Artemis_faultsim.Matrix.summary report);
      if report.Artemis_faultsim.Matrix.agreement then 0 else 1

(* --experiment NAME: run one of the lib/experiments sweeps (optionally
   fanned out over --jobs domains) instead of a single simulation. *)
let run_experiment name jobs =
  match name with
  | "scalability" ->
      print_string (Scalability.render (Scalability.run ~jobs ()));
      0
  | "non-watching" ->
      print_string
        (Scalability.render_non_watching (Scalability.run_non_watching ~jobs ()));
      0
  | "harvester" ->
      print_string (Harvester_study.render (Harvester_study.run ~jobs ()));
      0
  | "timekeeper" ->
      print_string (Timekeeper_sweep.render (Timekeeper_sweep.run ~jobs ()));
      0
  | "ablation" ->
      print_string (Ablation.render_deployments (Ablation.deployments ~jobs ()));
      print_string
        (Ablation.render_collect (Ablation.collect_semantics ~jobs ()));
      0
  | other ->
      Printf.eprintf
        "artemis_sim: unknown experiment %S \
         (scalability|non-watching|harvester|timekeeper|ablation)\n"
        other;
      2

let run system_name engine delay_min continuous temp_base show_trace trace_limit show_summary csv_path trace_out metrics_out show_metrics adapt_path experiment matrix matrix_json seed jobs =
  if jobs < 0 then begin
    Printf.eprintf "artemis_sim: --jobs must be 0 (auto) or positive (got %d)\n"
      jobs;
    2
  end
  else
  let jobs = if jobs = 0 then Artemis.Par.recommended_jobs () else jobs in
  match (matrix, experiment) with
  | Some name, _ -> run_matrix name matrix_json seed
  | None, Some name -> run_experiment name jobs
  | None, None ->
  let system =
    match system_name with
    | "artemis" -> Ok Config.Artemis_runtime
    | "mayfly" -> Ok Config.Mayfly_runtime
    | other -> Error (Printf.sprintf "unknown system %S (artemis|mayfly)" other)
  in
  let system =
    match (system, adapt_path) with
    | Ok Config.Mayfly_runtime, Some _ ->
        Error "--adapt requires the artemis runtime"
    | Ok Config.Mayfly_runtime, None when engine <> None ->
        Error "--engine requires the artemis runtime"
    | s, _ -> s
  in
  match (system, load_adapt_script adapt_path) with
  | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      1
  | Ok system, Ok adaptations ->
      let supply =
        if continuous then Config.Continuous
        else Config.Intermittent (Artemis.Time.of_min delay_min)
      in
      Artemis.Obs.reset ();
      Artemis.Obs.set_metrics (metrics_out <> None || show_metrics);
      Artemis.Obs.set_tracing (trace_out <> None);
      let { Config.stats; device; handles } =
        Config.run_health ?temp_base ?adaptations ?engine system supply
      in
      Format.printf "%a@." Artemis.Stats.pp stats;
      (if adaptations <> None then
         let adapt_events =
           List.filter
             (fun (e : Artemis.Event.timed) ->
               match e.Artemis.Event.event with
               | Artemis.Event.Adaptation_staged _
               | Artemis.Event.Adaptation_applied _
               | Artemis.Event.Adaptation_rejected _ ->
                   true
               | _ -> false)
             (Artemis.Log.events (Artemis.Device.log device))
         in
         print_endline "--- adaptations ---";
         List.iter
           (fun e -> Format.printf "%a@." Artemis.Event.pp_timed e)
           adapt_events);
      Format.printf "messages sent: %d, avgTemp: %.2f C@."
        (handles.Artemis.Health_app.sent_messages ())
        (handles.Artemis.Health_app.read_avg_temp ());
      if show_summary then begin
        print_endline "--- summary ---";
        print_endline (Artemis.Summary.render (Artemis.Device.log device))
      end;
      if show_trace then begin
        print_endline "--- trace ---";
        print_endline
          (Artemis.Log.render_timeline ~limit:trace_limit
             (Artemis.Device.log device))
      end;
      (match csv_path with
      | None -> ()
      | Some path ->
          Out_channel.with_open_bin path (fun oc ->
              output_string oc (Artemis.Export.log_to_csv (Artemis.Device.log device)));
          Printf.printf "trace CSV written to %s\n" path);
      if show_metrics then begin
        print_endline "--- metrics ---";
        print_string (Artemis.Obs.metrics_dump ())
      end;
      let failures = ref 0 in
      (match trace_out with
      | None -> ()
      | Some path -> (
          let text = Artemis.Obs.trace_json () in
          Out_channel.with_open_bin path (fun oc -> output_string oc text);
          match check_trace_json text with
          | Ok () ->
              Printf.printf "trace written to %s (valid JSON, balanced spans)\n"
                path
          | Error e ->
              Printf.eprintf "trace written to %s FAILED validation: %s\n" path e;
              incr failures));
      (match metrics_out with
      | None -> ()
      | Some path -> (
          let text = Artemis.Obs.metrics_json () in
          Out_channel.with_open_bin path (fun oc -> output_string oc text);
          match
            ( Artemis.Json.parse text,
              Artemis.Export.reconcile_metrics stats )
          with
          | Error e, _ ->
              Printf.eprintf "metrics written to %s FAILED validation: %s\n" path
                e;
              incr failures
          | Ok _, [] ->
              Printf.printf "metrics written to %s (reconciled with stats)\n"
                path
          | Ok _, mismatches ->
              Printf.eprintf "metrics written to %s FAILED reconciliation:\n"
                path;
              List.iter
                (fun (name, expected, got) ->
                  Printf.eprintf "  %s: stats=%d counter=%d\n" name expected got)
                mismatches;
              incr failures));
      if !failures > 0 then 1 else 0

let system_arg =
  Arg.(
    value & opt string "artemis"
    & info [ "s"; "system" ] ~docv:"SYSTEM"
        ~doc:"Runtime to use: $(b,artemis) (default) or $(b,mayfly).")

let engine_arg =
  let engine_conv =
    Arg.enum
      [
        ("interpreted", Artemis.Monitor.Interpreted);
        ("compiled", Artemis.Monitor.Compiled);
        ("table", Artemis.Monitor.Table);
      ]
  in
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Monitor execution backend (artemis runtime only): \
              $(b,interpreted), $(b,compiled) (the default) or $(b,table).")

let delay_arg =
  Arg.(
    value & opt int 1
    & info [ "d"; "delay" ] ~docv:"MIN"
        ~doc:"Charging delay in minutes after each power failure (default 1).")

let continuous_arg =
  Arg.(
    value & flag
    & info [ "continuous" ] ~doc:"Continuous power (no power failures).")

let temp_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "temp-base" ] ~docv:"CELSIUS"
        ~doc:"Synthetic body-temperature baseline; 39.2 triggers the \
              dpData emergency property.")

let trace_arg =
  Arg.(value & flag & info [ "t"; "trace" ] ~doc:"Print the execution trace.")

let trace_limit_arg =
  Arg.(
    value & opt int 200
    & info [ "trace-limit" ] ~docv:"N" ~doc:"Trace lines to print (default 200).")

let summary_arg =
  Arg.(
    value & flag
    & info [ "summary" ]
        ~doc:"Print per-monitor violation and per-action counts.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Write the trace as CSV to $(docv).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record spans and instants during the run and write them as \
           Chrome trace-event JSON (loadable in Perfetto) to $(docv).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Enable the metrics registry and write it as JSON to $(docv); \
           counters are cross-checked against the run statistics.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Enable the metrics registry and print a text dump after the run.")

let adapt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "adapt" ] ~docv:"FILE"
        ~doc:
          "Deliver live property updates from $(docv), a JSON array of \
           {\"at\": iteration, \"spec\"|\"machines\": source, \"remove\": \
           [names]} entries, over the simulated radio (artemis only).")

let experiment_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "experiment" ] ~docv:"NAME"
        ~doc:
          "Run an experiment sweep instead of a single simulation: \
           $(b,scalability), $(b,non-watching), $(b,harvester), \
           $(b,timekeeper) or $(b,ablation).")

let matrix_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "matrix" ] ~docv:"SCENARIO"
        ~doc:
          "Run the named faultsim scenario under every registered task-\
           execution backend (immortal, checkpoint, ink, mayfly, alpaca) \
           with the same monitors, print the differential comparison, and \
           exit 1 if any backend's verdict stream diverges from the \
           reference.")

let matrix_json_arg =
  Arg.(
    value & flag
    & info [ "matrix-json" ]
        ~doc:"Print the $(b,--matrix) report as JSON instead of a table.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Scenario seed for $(b,--matrix) runs (default 42).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,--experiment) sweeps (default 1; 0 means \
           auto: one worker per core).  Rows are distributed over $(docv) \
           domains; the output is identical for every job count.")

let cmd =
  let doc = "simulate the health-monitoring benchmark on intermittent power" in
  Cmd.v
    (Cmd.info "artemis_sim" ~doc)
    Term.(
      const run $ system_arg $ engine_arg $ delay_arg $ continuous_arg
      $ temp_arg $ trace_arg
      $ trace_limit_arg $ summary_arg $ csv_arg $ trace_out_arg
      $ metrics_out_arg $ metrics_arg $ adapt_arg $ experiment_arg
      $ matrix_arg $ matrix_json_arg $ seed_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
