(* faultsim: deterministic power-failure fault-injection campaigns over
   the simulated ARTEMIS runtime, with invariant oracles and one-line
   replay of any failing schedule. *)

open Cmdliner
module F = Artemis_faultsim.Faultsim
module Scenario = Artemis_faultsim.Scenario

let list_sites () =
  Array.iteri (Printf.printf "%2d %s\n") F.sites;
  0

let verify_replays scenario campaign =
  (* Determinism check: every run's reproducer line must rebuild a
     byte-identical trace. *)
  let bad =
    List.filter
      (fun (r : F.run_result) ->
        match
          F.replay scenario ~line:(F.replay_line ~seed:r.F.seed r.F.schedule)
        with
        | Ok (_, true) -> false
        | Ok (_, false) | Error _ -> true)
      campaign.F.runs
  in
  List.iter
    (fun (r : F.run_result) ->
      Printf.printf "NOT REPRODUCIBLE: %s\n"
        (F.replay_line ~seed:r.F.seed r.F.schedule))
    bad;
  bad = []

let print_violations campaign =
  List.iter
    (fun (r : F.run_result) ->
      List.iter
        (fun (v : F.violation) ->
          Printf.printf "VIOLATION [%s] %s (replay %s)\n" v.F.oracle v.F.detail
            (F.replay_line ~seed:r.F.seed r.F.schedule))
        r.F.violations)
    (campaign.F.baseline :: campaign.F.runs)

let run scenario_name engine list depth random max_depth seed replay json skip_verify trace_out jobs =
  Artemis.Obs.reset ();
  Artemis.Obs.set_tracing (trace_out <> None);
  let write_trace code =
    (match trace_out with
    | None -> ()
    | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            output_string oc (Artemis.Obs.trace_json ()));
        Printf.eprintf "trace written to %s\n" path);
    code
  in
  write_trace
  @@
  if jobs < 0 then begin
    Printf.eprintf "faultsim: --jobs must be 0 (auto) or positive (got %d)\n" jobs;
    2
  end
  else
  let jobs = if jobs = 0 then Artemis.Par.recommended_jobs () else jobs in
  if list then list_sites ()
  else
    match Scenario.find scenario_name with
    | None ->
        Printf.eprintf "unknown scenario %S (%s)\n" scenario_name
          (String.concat "|"
             (List.map (fun s -> s.Scenario.name) Scenario.all));
        2
    | Some scenario -> (
        let scenario =
          match engine with
          | None -> scenario
          | Some e -> Scenario.with_engine e scenario
        in
        match replay with
        | Some line -> (
            match F.replay scenario ~line with
            | Error msg ->
                Printf.eprintf "bad replay line: %s\n" msg;
                2
            | Ok (result, reproducible) ->
                Printf.printf "replay %s: %s, %d violations, %s\n" line
                  result.F.outcome
                  (List.length result.F.violations)
                  (if reproducible then "reproducible"
                   else "NOT REPRODUCIBLE");
                List.iter
                  (fun (v : F.violation) ->
                    Printf.printf "VIOLATION [%s] %s\n" v.F.oracle v.F.detail)
                  result.F.violations;
                if result.F.violations = [] && reproducible then 0 else 1)
        | None ->
            let campaign =
              match random with
              | Some runs ->
                  F.random_campaign ~jobs scenario ~seed ~runs ~max_depth
              | None -> F.exhaustive ~jobs scenario ~seed ~depth
            in
            if json then F.output_campaign_json stdout campaign
            else begin
              print_string (F.campaign_summary campaign);
              print_violations campaign
            end;
            let reproducible =
              skip_verify || verify_replays scenario campaign
            in
            if
              F.total_violations campaign = 0
              && campaign.F.baseline.F.violations = []
              && reproducible
            then 0
            else 1)

let scenario_arg =
  Arg.(
    value & opt string "quickstart"
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:"Scenario to inject into: $(b,quickstart), $(b,health), their \
              live-adaptation variants $(b,quickstart-adapt) and \
              $(b,health-adapt), the freshness-budgeted \
              $(b,quickstart-fresh), or the deliberately buggy \
              $(b,stale-read) and $(b,war-buggy).")

let engine_arg =
  let engine_conv =
    Arg.enum
      [
        ("interpreted", Artemis.Monitor.Interpreted);
        ("compiled", Artemis.Monitor.Compiled);
        ("table", Artemis.Monitor.Table);
      ]
  in
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Monitor execution backend for the campaign: \
              $(b,interpreted), $(b,compiled) (the default) or $(b,table). \
              All oracles must hold under every engine.")

let list_arg =
  Arg.(
    value & flag
    & info [ "list-sites" ] ~doc:"Print the numbered injection sites and exit.")

let depth_arg =
  Arg.(
    value & opt int 1
    & info [ "depth" ] ~docv:"K"
        ~doc:"Bounded-exhaustive depth: up to $(docv) injected failures per run.")

let random_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "random" ] ~docv:"N"
        ~doc:"Run $(docv) seeded random schedules instead of the exhaustive \
              campaign.")

let max_depth_arg =
  Arg.(
    value & opt int 3
    & info [ "max-depth" ] ~docv:"K"
        ~doc:"Maximum failures per random schedule (default 3).")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed (default 42).")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"LINE"
        ~doc:"Replay one schedule, e.g. $(b,42:3@0,7@2); runs it twice and \
              checks the traces are byte-identical.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the full campaign report as JSON.")

let skip_verify_arg =
  Arg.(
    value & flag
    & info [ "skip-replay-check" ]
        ~doc:"Skip the per-run replay determinism verification.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the campaign as Chrome trace-event JSON to $(docv): one \
           span per run (laid end-to-end on a shared timeline) with \
           instant events at each oracle violation.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Fan campaign runs out over $(docv) domains (default 1); 0 means \
           auto: one worker per core.  The report and any exported trace \
           are byte-identical for every $(docv).")

let cmd =
  let doc =
    "deterministic power-failure fault injection with invariant oracles"
  in
  Cmd.v
    (Cmd.info "faultsim" ~doc)
    Term.(
      const run $ scenario_arg $ engine_arg $ list_arg $ depth_arg $ random_arg
      $ max_depth_arg $ seed_arg $ replay_arg $ json_arg $ skip_verify_arg
      $ trace_out_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
