(* artemisc: the ARTEMIS monitor compiler CLI.

   Reads a property specification and emits, per the chosen stage of the
   Figure 3 pipeline: the re-printed specification ("spec"), the
   intermediate-language state machines ("fsm", the model-to-model
   transformation), or the generated C monitors ("c", the model-to-text
   transformation). *)

open Cmdliner

type emit = Spec | Fsm | C | Lint | Project
type engine = Interpreted | Compiled | Table

(* --engine: report what each property costs under the chosen execution
   backend.  For the table engine this is the per-property flat-buffer
   footprint in words (dense dispatch rows + CSR segments + transition
   metadata, then bytecode + float pool) - the number an NVM-resident
   deployment of the tables would occupy. *)
let engine_report engine machines =
  let buf = Buffer.create 256 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match engine with
  | Interpreted ->
      adds "engine: interpreted (AST walk, reference semantics)\n";
      List.iter
        (fun (m : Artemis.Fsm.Ast.machine) ->
          adds "%s: %d states, %d vars, %d transitions\n"
            m.Artemis.Fsm.Ast.machine_name
            (List.length m.Artemis.Fsm.Ast.states)
            (List.length m.Artemis.Fsm.Ast.vars)
            (List.fold_left
               (fun acc (s : Artemis.Fsm.Ast.state) ->
                 acc + List.length s.Artemis.Fsm.Ast.transitions)
               0 m.Artemis.Fsm.Ast.states))
        machines
  | Compiled ->
      adds "engine: compiled (deploy-time closures)\n";
      List.iter
        (fun m ->
          let c = Artemis.Fsm.Compile.compile m in
          adds "%s: %d states, %d vars, %d watched tasks\n"
            (Artemis.Fsm.Compile.name c)
            (Artemis.Fsm.Compile.state_count c)
            (Artemis.Fsm.Compile.var_count c)
            (List.length (Artemis.Fsm.Compile.watched_tasks c)))
        machines
  | Table ->
      adds "engine: table (flat dispatch + bytecode)\n";
      let total = ref 0 in
      List.iter
        (fun m ->
          let t = Artemis.Fsm.Table.compile m in
          total := !total + Artemis.Fsm.Table.buffer_words t;
          adds "%s: dispatch %dw + bytecode %dw = %d words (regs: %d int, %d float)\n"
            (Artemis.Fsm.Table.name t)
            (Artemis.Fsm.Table.dispatch_words t)
            (Artemis.Fsm.Table.code_words t)
            (Artemis.Fsm.Table.buffer_words t)
            (Artemis.Fsm.Table.int_regs t)
            (Artemis.Fsm.Table.float_regs t))
        machines;
      adds "total: %d words\n" !total);
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --check: rebuild a faultsim scenario from the catalogue and run the
   static WAR-hazard pass (Artemis.Consistency.War) over its task
   surface.  The scenario is built fresh (seed 42) purely to be
   recorded, so the pass's committed-write side effects are harmless. *)
let check_scenarios names allow_hazard =
  let module Scenario = Artemis_faultsim.Scenario in
  let known () =
    String.concat "|" (List.map (fun (s : Scenario.t) -> s.name) Scenario.all)
  in
  let rec go worst = function
    | [] -> worst
    | name :: rest -> (
        match Scenario.find name with
        | None ->
            Printf.eprintf "unknown scenario %S (%s)\n" name (known ());
            1
        | Some sc ->
            let b = sc.Scenario.build ~engine:None ~seed:42 in
            let report =
              Artemis.Consistency.War.analyze_app
                (Artemis.Device.nvm b.Scenario.device)
                b.Scenario.app
            in
            Printf.printf "scenario %s: %s" name
              (Artemis.Consistency.War.report_to_string report);
            let worst =
              if Artemis.Consistency.War.has_hazards report && not allow_hazard
              then max worst 1
              else worst
            in
            go worst rest)
  in
  go 0 names

(* --energy-report: rebuild a faultsim scenario and run the PR 9 static
   energy-admissibility analysis over its deployed properties and every
   scheduled OTA payload.  Exits 1 when anything classifies "may
   livelock" - the same condition under which the runtime's adaptation
   validate step refuses the update as energy-inadmissible. *)
let energy_report names as_json =
  let module Scenario = Artemis_faultsim.Scenario in
  let module Ea = Artemis.Energy_analysis in
  let known () =
    String.concat "|" (List.map (fun (s : Scenario.t) -> s.name) Scenario.all)
  in
  let payload_machines (u : Artemis.Adapt.update) =
    match u.Artemis.Adapt.payload with
    | None -> Ok []
    | Some (Artemis.Adapt.Machine_source src) -> Artemis.Fsm.Parser.parse src
    | Some (Artemis.Adapt.Spec_source src) -> (
        match Artemis.Spec.Parser.parse src with
        | Error e -> Error e
        | Ok spec -> Ok (Artemis.To_fsm.spec spec))
  in
  let rec go worst = function
    | [] -> worst
    | name :: rest -> (
        match Scenario.find name with
        | None ->
            Printf.eprintf "unknown scenario %S (%s)\n" name (known ());
            1
        | Some sc -> (
            let b = sc.Scenario.build ~engine:None ~seed:42 in
            let model = b.Scenario.config.Artemis.Runtime.cost_model in
            let deployment = b.Scenario.config.Artemis.Runtime.deployment in
            let budget = Ea.budget_of_device b.Scenario.device in
            let deployed =
              Ea.analyze ~deployment ~model ~budget ~origin:"deployed"
                b.Scenario.machines
            in
            let updates =
              List.concat_map
                (fun (_at, u) ->
                  match payload_machines u with
                  | Error e ->
                      Printf.eprintf "scenario %s: bad update payload: %s\n"
                        name e;
                      []
                  | Ok machines ->
                      Ea.analyze ~deployment ~model ~budget
                        ~origin:(Printf.sprintf "update #%d" u.Artemis.Adapt.id)
                        machines)
                b.Scenario.adaptations
            in
            let entries = deployed @ updates in
            let buf = Buffer.create 1024 in
            if as_json then
              Ea.render_json ~scenario:name ~deployment ~model ~budget entries
                buf
            else begin
              Ea.render_human ~scenario:name ~deployment ~model ~budget
                entries buf;
              (* surface the adapt-time admission verdict for every
                 scheduled update: exactly what Adapt.validate will say *)
              List.iter
                (fun (_at, u) ->
                  match payload_machines u with
                  | Error _ -> ()
                  | Ok machines -> (
                      match Ea.admit ~deployment ~model ~budget machines with
                      | Ok () ->
                          Buffer.add_string buf
                            (Printf.sprintf
                               "  update #%d: admissible (validate will \
                                accept)\n"
                               u.Artemis.Adapt.id)
                      | Error reason ->
                          Buffer.add_string buf
                            (Printf.sprintf
                               "  update #%d: rejected by validate: %s\n"
                               u.Artemis.Adapt.id reason)))
                b.Scenario.adaptations
            end;
            print_string (Buffer.contents buf);
            let livelocks =
              List.exists (fun e -> e.Ea.e_class = Ea.May_livelock) entries
            in
            match livelocks with
            | true -> go (max worst 1) rest
            | false -> go worst rest))
  in
  go 0 names

let run_compile emit engine reset_on_fail input output =
  let text = if input = "-" then In_channel.input_all stdin else read_file input in
  let options = { Artemis.To_fsm.collect_reset_on_fail = reset_on_fail } in
  let result =
    match Artemis.Spec.Parser.parse text with
    | Error msg -> Error msg
    | Ok spec when engine <> None -> (
        let machines = Artemis.To_fsm.spec ~options spec in
        match engine with
        | Some e -> (
            try Ok (engine_report e machines) with Failure msg -> Error msg)
        | None -> assert false)
    | Ok spec -> (
        match emit with
        | Spec -> Ok (Artemis.Spec.Printer.to_string spec)
        | Fsm ->
            Ok
              (Artemis.Fsm.Printer.machines_to_string
                 (Artemis.To_fsm.spec ~options spec))
        | C -> Ok (Artemis.To_c.suite (Artemis.To_fsm.spec ~options spec))
        | Lint ->
            let findings = Artemis.Spec.Consistency.check_spec spec in
            if findings = [] then Ok "no consistency findings\n"
            else Ok (Artemis.Spec.Consistency.to_string findings ^ "\n")
        | Project ->
            (* a skeleton application derived from the specification: every
               mentioned task on one path, placeholder calibration *)
            let mentioned =
              List.concat_map
                (fun { Artemis.Spec.Ast.task; properties } ->
                  task
                  :: List.filter_map
                       (function
                         | Artemis.Spec.Ast.Mitd { dp_task; _ }
                         | Artemis.Spec.Ast.Collect { dp_task; _ } ->
                             Some dp_task
                         | _ -> None)
                       properties)
                spec
            in
            let seen = Hashtbl.create 8 in
            let tasks =
              List.filter_map
                (fun name ->
                  if Hashtbl.mem seen name then None
                  else begin
                    Hashtbl.add seen name ();
                    Some
                      (Artemis.Task.make ~name
                         ~duration:(Artemis.Time.of_ms 100)
                         ~power:(Artemis.Energy.mw 1.2) ())
                  end)
                mentioned
            in
            let app =
              Artemis.Task.app ~name:"generated"
                [ { Artemis.Task.index = 1; tasks } ]
            in
            let machines = Artemis.To_fsm.spec ~options spec in
            let files = Artemis.To_c_project.project ~app ~machines in
            Ok
              (String.concat ""
                 (List.map
                    (fun f ->
                      Printf.sprintf "/* ===== %s ===== */\n%s\n"
                        f.Artemis.To_c_project.path f.Artemis.To_c_project.contents)
                    files)))
  in
  match result with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok out -> (
      match output with
      | None ->
          print_string out;
          0
      | Some path ->
          Out_channel.with_open_bin path (fun oc -> output_string oc out);
          0)

let run emit engine reset_on_fail check allow_hazard energy energy_json input
    output =
  if check <> [] then check_scenarios check allow_hazard
  else if energy <> [] then energy_report energy energy_json
  else run_compile emit engine reset_on_fail input output

let emit_arg =
  let stage_conv =
    Arg.enum
      [ ("spec", Spec); ("fsm", Fsm); ("c", C); ("lint", Lint); ("project", Project) ]
  in
  Arg.(
    value
    & opt stage_conv C
    & info [ "e"; "emit" ] ~docv:"STAGE"
        ~doc:"Output stage: $(b,spec) (re-printed specification), $(b,fsm) \
              (intermediate-language machines), $(b,c) (generated C \
              monitors, default), $(b,lint) (consistency findings) or \
              $(b,project) (a complete C project tree, concatenated).")

let engine_arg =
  let engine_conv =
    Arg.enum
      [ ("interpreted", Interpreted); ("compiled", Compiled); ("table", Table) ]
  in
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Report the per-property cost of running the compiled machines \
              under $(docv): $(b,interpreted), $(b,compiled) or $(b,table). \
              For $(b,table) prints each property's flat-buffer footprint \
              (dispatch table + bytecode, in words) and its register-file \
              size.  Replaces the normal $(b,--emit) output.")

let reset_arg =
  Arg.(
    value & flag
    & info [ "collect-reset-on-fail" ]
        ~doc:"Compile $(b,collect) with the literal Figure 7 semantics \
              (counter zeroed on failure) instead of the accumulate \
              default.")

let check_arg =
  Arg.(
    value & opt_all string []
    & info [ "check" ] ~docv:"SCENARIO"
        ~doc:"Run the static WAR-hazard pass over the named faultsim \
              scenario's task surface instead of compiling a \
              specification.  Repeatable.  Exits 1 if any hazard is \
              found, unless $(b,--allow-hazard) is also given.")

let allow_hazard_arg =
  Arg.(
    value & flag
    & info [ "allow-hazard" ]
        ~doc:"Report WAR hazards without failing: $(b,--check) exits 0 \
              even when hazards are found.")

let energy_report_arg =
  Arg.(
    value & opt_all string []
    & info [ "energy-report" ] ~docv:"SCENARIO"
        ~doc:"Run the static energy-admissibility analysis over the named \
              faultsim scenario: per-property worst-case monitor-call \
              bounds against the device's usable charge budget, for the \
              deployed suite and every scheduled OTA payload.  Repeatable. \
              Exits 1 if any property classifies \"may livelock\".")

let energy_json_arg =
  Arg.(
    value & flag
    & info [ "energy-json" ]
        ~doc:"Emit the $(b,--energy-report) analysis as one line of JSON \
              per scenario instead of the human-readable table.")

let input_arg =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"SPEC" ~doc:"Property specification file ('-' = stdin).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output to $(docv).")

let cmd =
  let doc = "compile ARTEMIS property specifications into runtime monitors" in
  Cmd.v
    (Cmd.info "artemisc" ~doc)
    Term.(
      const run $ emit_arg $ engine_arg $ reset_arg $ check_arg
      $ allow_hazard_arg $ energy_report_arg $ energy_json_arg $ input_arg
      $ output_arg)

let () = exit (Cmd.eval' cmd)
