(* artemisc: the ARTEMIS monitor compiler CLI.

   Reads a property specification and emits, per the chosen stage of the
   Figure 3 pipeline: the re-printed specification ("spec"), the
   intermediate-language state machines ("fsm", the model-to-model
   transformation), or the generated C monitors ("c", the model-to-text
   transformation). *)

open Cmdliner

type emit = Spec | Fsm | C | Lint | Project
type engine = Interpreted | Compiled | Table

(* --engine: report what each property costs under the chosen execution
   backend.  For the table engine this is the per-property flat-buffer
   footprint in words (dense dispatch rows + CSR segments + transition
   metadata, then bytecode + float pool) - the number an NVM-resident
   deployment of the tables would occupy. *)
let engine_report engine machines =
  let buf = Buffer.create 256 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match engine with
  | Interpreted ->
      adds "engine: interpreted (AST walk, reference semantics)\n";
      List.iter
        (fun (m : Artemis.Fsm.Ast.machine) ->
          adds "%s: %d states, %d vars, %d transitions\n"
            m.Artemis.Fsm.Ast.machine_name
            (List.length m.Artemis.Fsm.Ast.states)
            (List.length m.Artemis.Fsm.Ast.vars)
            (List.fold_left
               (fun acc (s : Artemis.Fsm.Ast.state) ->
                 acc + List.length s.Artemis.Fsm.Ast.transitions)
               0 m.Artemis.Fsm.Ast.states))
        machines
  | Compiled ->
      adds "engine: compiled (deploy-time closures)\n";
      List.iter
        (fun m ->
          let c = Artemis.Fsm.Compile.compile m in
          adds "%s: %d states, %d vars, %d watched tasks\n"
            (Artemis.Fsm.Compile.name c)
            (Artemis.Fsm.Compile.state_count c)
            (Artemis.Fsm.Compile.var_count c)
            (List.length (Artemis.Fsm.Compile.watched_tasks c)))
        machines
  | Table ->
      adds "engine: table (flat dispatch + bytecode)\n";
      let total = ref 0 in
      List.iter
        (fun m ->
          let t = Artemis.Fsm.Table.compile m in
          total := !total + Artemis.Fsm.Table.buffer_words t;
          adds "%s: dispatch %dw + bytecode %dw = %d words (regs: %d int, %d float)\n"
            (Artemis.Fsm.Table.name t)
            (Artemis.Fsm.Table.dispatch_words t)
            (Artemis.Fsm.Table.code_words t)
            (Artemis.Fsm.Table.buffer_words t)
            (Artemis.Fsm.Table.int_regs t)
            (Artemis.Fsm.Table.float_regs t))
        machines;
      adds "total: %d words\n" !total);
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --check: rebuild a faultsim scenario from the catalogue and run the
   static WAR-hazard pass (Artemis.Consistency.War) over its task
   surface.  The scenario is built fresh (seed 42) purely to be
   recorded, so the pass's committed-write side effects are harmless. *)
let check_scenarios names allow_hazard =
  let module Scenario = Artemis_faultsim.Scenario in
  let known () =
    String.concat "|" (List.map (fun (s : Scenario.t) -> s.name) Scenario.all)
  in
  let rec go worst = function
    | [] -> worst
    | name :: rest -> (
        match Scenario.find name with
        | None ->
            Printf.eprintf "unknown scenario %S (%s)\n" name (known ());
            1
        | Some sc ->
            let b = sc.Scenario.build ~engine:None ~seed:42 in
            let report =
              Artemis.Consistency.War.analyze_app
                (Artemis.Device.nvm b.Scenario.device)
                b.Scenario.app
            in
            Printf.printf "scenario %s: %s" name
              (Artemis.Consistency.War.report_to_string report);
            let worst =
              if Artemis.Consistency.War.has_hazards report && not allow_hazard
              then max worst 1
              else worst
            in
            go worst rest)
  in
  go 0 names

let run_compile emit engine reset_on_fail input output =
  let text = if input = "-" then In_channel.input_all stdin else read_file input in
  let options = { Artemis.To_fsm.collect_reset_on_fail = reset_on_fail } in
  let result =
    match Artemis.Spec.Parser.parse text with
    | Error msg -> Error msg
    | Ok spec when engine <> None -> (
        let machines = Artemis.To_fsm.spec ~options spec in
        match engine with
        | Some e -> (
            try Ok (engine_report e machines) with Failure msg -> Error msg)
        | None -> assert false)
    | Ok spec -> (
        match emit with
        | Spec -> Ok (Artemis.Spec.Printer.to_string spec)
        | Fsm ->
            Ok
              (Artemis.Fsm.Printer.machines_to_string
                 (Artemis.To_fsm.spec ~options spec))
        | C -> Ok (Artemis.To_c.suite (Artemis.To_fsm.spec ~options spec))
        | Lint ->
            let findings = Artemis.Spec.Consistency.check_spec spec in
            if findings = [] then Ok "no consistency findings\n"
            else Ok (Artemis.Spec.Consistency.to_string findings ^ "\n")
        | Project ->
            (* a skeleton application derived from the specification: every
               mentioned task on one path, placeholder calibration *)
            let mentioned =
              List.concat_map
                (fun { Artemis.Spec.Ast.task; properties } ->
                  task
                  :: List.filter_map
                       (function
                         | Artemis.Spec.Ast.Mitd { dp_task; _ }
                         | Artemis.Spec.Ast.Collect { dp_task; _ } ->
                             Some dp_task
                         | _ -> None)
                       properties)
                spec
            in
            let seen = Hashtbl.create 8 in
            let tasks =
              List.filter_map
                (fun name ->
                  if Hashtbl.mem seen name then None
                  else begin
                    Hashtbl.add seen name ();
                    Some
                      (Artemis.Task.make ~name
                         ~duration:(Artemis.Time.of_ms 100)
                         ~power:(Artemis.Energy.mw 1.2) ())
                  end)
                mentioned
            in
            let app =
              Artemis.Task.app ~name:"generated"
                [ { Artemis.Task.index = 1; tasks } ]
            in
            let machines = Artemis.To_fsm.spec ~options spec in
            let files = Artemis.To_c_project.project ~app ~machines in
            Ok
              (String.concat ""
                 (List.map
                    (fun f ->
                      Printf.sprintf "/* ===== %s ===== */\n%s\n"
                        f.Artemis.To_c_project.path f.Artemis.To_c_project.contents)
                    files)))
  in
  match result with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok out -> (
      match output with
      | None ->
          print_string out;
          0
      | Some path ->
          Out_channel.with_open_bin path (fun oc -> output_string oc out);
          0)

let run emit engine reset_on_fail check allow_hazard input output =
  if check <> [] then check_scenarios check allow_hazard
  else run_compile emit engine reset_on_fail input output

let emit_arg =
  let stage_conv =
    Arg.enum
      [ ("spec", Spec); ("fsm", Fsm); ("c", C); ("lint", Lint); ("project", Project) ]
  in
  Arg.(
    value
    & opt stage_conv C
    & info [ "e"; "emit" ] ~docv:"STAGE"
        ~doc:"Output stage: $(b,spec) (re-printed specification), $(b,fsm) \
              (intermediate-language machines), $(b,c) (generated C \
              monitors, default), $(b,lint) (consistency findings) or \
              $(b,project) (a complete C project tree, concatenated).")

let engine_arg =
  let engine_conv =
    Arg.enum
      [ ("interpreted", Interpreted); ("compiled", Compiled); ("table", Table) ]
  in
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Report the per-property cost of running the compiled machines \
              under $(docv): $(b,interpreted), $(b,compiled) or $(b,table). \
              For $(b,table) prints each property's flat-buffer footprint \
              (dispatch table + bytecode, in words) and its register-file \
              size.  Replaces the normal $(b,--emit) output.")

let reset_arg =
  Arg.(
    value & flag
    & info [ "collect-reset-on-fail" ]
        ~doc:"Compile $(b,collect) with the literal Figure 7 semantics \
              (counter zeroed on failure) instead of the accumulate \
              default.")

let check_arg =
  Arg.(
    value & opt_all string []
    & info [ "check" ] ~docv:"SCENARIO"
        ~doc:"Run the static WAR-hazard pass over the named faultsim \
              scenario's task surface instead of compiling a \
              specification.  Repeatable.  Exits 1 if any hazard is \
              found, unless $(b,--allow-hazard) is also given.")

let allow_hazard_arg =
  Arg.(
    value & flag
    & info [ "allow-hazard" ]
        ~doc:"Report WAR hazards without failing: $(b,--check) exits 0 \
              even when hazards are found.")

let input_arg =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"SPEC" ~doc:"Property specification file ('-' = stdin).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output to $(docv).")

let cmd =
  let doc = "compile ARTEMIS property specifications into runtime monitors" in
  Cmd.v
    (Cmd.info "artemisc" ~doc)
    Term.(
      const run $ emit_arg $ engine_arg $ reset_arg $ check_arg
      $ allow_hazard_arg $ input_arg $ output_arg)

let () = exit (Cmd.eval' cmd)
