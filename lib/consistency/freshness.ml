open Artemis_util
module Event = Artemis_trace.Event

module Chaos = struct
  let skip_freshness_stamp = ref false
  let clock_skip_on_recovery = ref false

  let reset () =
    skip_freshness_stamp := false;
    clock_skip_on_recovery := false
end

type violation = {
  v_consumer : string;
  v_source : string;
  v_age_us : int option;
  v_at_us : int;
}

(* A stamp taken inside an open transaction is provisional: it records
   the store's revert count so that any abort or power failure between
   the stamp and its commit point kills it (see seal/valid below). *)
type stamp = { s_at : int; s_provisional : bool; s_reverts : int }

type t = {
  clock : unit -> int;
  in_tx : unit -> bool;
  revert_count : unit -> int;
  budget_us : int;
  reads : (string * string list) list;
  sources : (string, unit) Hashtbl.t;
  stamps : (string, stamp) Hashtbl.t;
  pending : (string, int) Hashtbl.t;
      (* producer start times: a crash can land between the producer's
         durable commit and its [Task_completed] record, losing the
         completion event while the data itself persisted.  Path order
         guarantees a consumer only runs after its producer committed
         (a reverted producer is re-executed, emitting a fresh
         [Task_started], before control moves on), so a consumer check
         that finds only a pending entry promotes it - conservatively
         timestamped at the producer's *start*. *)
  mutable skew_us : int;  (* chaos: recovery clock skip *)
  mutable violations : violation list;  (* newest first *)
}

let create ~clock ?(in_tx = fun () -> false) ?(revert_count = fun () -> 0)
    ~budget ~reads () =
  if Time.is_negative budget then
    invalid_arg "Freshness.create: negative budget";
  let sources = Hashtbl.create 8 in
  List.iter
    (fun (_, srcs) -> List.iter (fun s -> Hashtbl.replace sources s ()) srcs)
    reads;
  {
    clock;
    in_tx;
    revert_count;
    budget_us = Time.to_us budget;
    reads;
    sources;
    stamps = Hashtbl.create 8;
    pending = Hashtbl.create 8;
    skew_us = 0;
    violations = [];
  }

let now t = t.clock () + t.skew_us

let stamp t ~source =
  if (not !Chaos.skip_freshness_stamp) && Hashtbl.mem t.sources source then
    Hashtbl.replace t.stamps source
      {
        s_at = now t;
        s_provisional = t.in_tx ();
        s_reverts = t.revert_count ();
      }

(* Producer [Task_started]: remember the start time so the stamp is not
   lost if a crash eats the completion event after the commit. *)
let note_started t ~source =
  if (not !Chaos.skip_freshness_stamp) && Hashtbl.mem t.sources source then
    Hashtbl.replace t.pending source (now t)

(* Promote a pending start-time entry to a durable stamp (see the
   [pending] field comment for why this is sound). *)
let promote_pending t ~source =
  match Hashtbl.find_opt t.pending source with
  | None -> None
  | Some at ->
      let s = { s_at = at; s_provisional = false; s_reverts = 0 } in
      Hashtbl.replace t.stamps source s;
      Hashtbl.remove t.pending source;
      Some s

(* A provisional stamp survives to durability only if no revert happened
   since it was taken; both abort_tx and power_failure bump the revert
   count, so a reverted transaction cannot launder the timestamp. *)
let seal t ~source =
  match Hashtbl.find_opt t.stamps source with
  | Some s when s.s_provisional ->
      if t.revert_count () = s.s_reverts then
        Hashtbl.replace t.stamps source { s with s_provisional = false }
      else Hashtbl.remove t.stamps source
  | Some _ | None -> ()

let valid t (s : stamp) =
  (not s.s_provisional) || t.revert_count () = s.s_reverts

let check t ~consumer =
  match List.assoc_opt consumer t.reads with
  | None -> ()
  | Some srcs ->
      let at = now t in
      List.iter
        (fun source ->
          let stamped =
            match Hashtbl.find_opt t.stamps source with
            | Some s when valid t s -> Some s
            | Some _ | None -> promote_pending t ~source
          in
          match stamped with
          | Some s ->
              let age = at - s.s_at in
              if age > t.budget_us then
                t.violations <-
                  { v_consumer = consumer; v_source = source;
                    v_age_us = Some age; v_at_us = at }
                  :: t.violations
          | None ->
              t.violations <-
                { v_consumer = consumer; v_source = source; v_age_us = None;
                  v_at_us = at }
                :: t.violations)
        srcs

let on_event t = function
  | Event.Task_started { task; _ } ->
      check t ~consumer:task;
      note_started t ~source:task
  | Event.Task_completed { task } ->
      check t ~consumer:task;
      stamp t ~source:task;
      seal t ~source:task;
      Hashtbl.remove t.pending task
  | Event.Reboot _ ->
      if !Chaos.clock_skip_on_recovery then
        t.skew_us <- t.skew_us + 3_600_000_000
  | _ -> ()

let violations t = List.rev t.violations
let budget t = Time.of_us t.budget_us

let violation_to_string budget v =
  match v.v_age_us with
  | None ->
      Printf.sprintf "%s consumed unstamped input from %s at %dus" v.v_consumer
        v.v_source v.v_at_us
  | Some age ->
      Printf.sprintf "%s consumed %s data aged %dus (budget %dus) at %dus"
        v.v_consumer v.v_source age (Time.to_us budget) v.v_at_us
