(** Static WAR-hazard analysis over per-task NVM access sets (PR 7).

    Surbatovich et al.'s formal treatment of intermittent execution
    shows that a task which {e reads} a non-volatile cell and later
    {e writes it outside the protecting transaction} is non-idempotent:
    a power failure after the write but before task commit leaves the
    write durable, and the re-executed task reads the already-updated
    value - observable state diverges from any continuous execution.

    This pass needs no source access: it installs the
    {!Artemis_nvm.Nvm.set_recorder} access recorder, runs each task
    body {e once} inside an open transaction (so [write_join] resolves
    exactly as it does under the runtime), and flags every FRAM cell
    with a read at some program point followed by a direct persistent
    write ([Nvm.write], not the buffered [Nvm.tx_write]) at a later
    point of the same body.  Transactionally buffered writes are safe
    (discarded by a crash); volatile cells are safe (reset at reboot).

    The recording run's transaction is aborted afterwards, but direct
    writes performed by the bodies do land in committed state: analyze
    against a scenario built fresh for the purpose (the [artemisc
    --check] driver and the campaign tests do exactly that), not
    against a store whose state you still need. *)

open Artemis_nvm
open Artemis_task

type hazard = {
  haz_task : string;  (** task / step / segment that exhibits the hazard *)
  haz_cell : string;
  haz_region : Nvm.region;
}

type report = {
  analyzed : string list;  (** task names, in analysis order *)
  hazards : hazard list;  (** stable order: task order, then first write *)
}

val has_hazards : report -> bool

val merge : report list -> report
(** Concatenate in order (multi-surface scenarios: app + monitor thread). *)

val analyze_bodies :
  Nvm.t -> ?seed:int -> (string * (Task.context -> unit)) list -> report
(** Record each named body once against [nvm].  A fresh transaction is
    opened around every body and aborted after it; the body receives a
    {!Task.context} whose PRNG is seeded with [seed] (default 42) so
    synthetic sensors read deterministically.  A body that raises stops
    recording at the raise point (its accesses so far still count). *)

val analyze_app : Nvm.t -> ?seed:int -> Task.app -> report
(** {!analyze_bodies} over {!Task.bodies}: the ARTEMIS-runtime, Mayfly
    and (via [Ink.bodies]) InK task surfaces. *)

val analyze_steps :
  Nvm.t -> ?seed:int -> name:string -> (unit -> unit) array -> report
(** Immortal-thread surface: each step runs inside its own transaction
    (named ["<name>#<i>"]), matching {!Artemis_immortal.Immortal}'s
    one-transaction-per-step execution. *)

val hazard_to_string : hazard -> string
val report_to_string : report -> string
