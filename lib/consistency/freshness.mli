(** Dynamic input-freshness oracle (PR 7).

    Intermittent systems silently accumulate {e data age} across power
    failures: a sensor sample taken before an outage can be minutes old
    by the time the consuming task finally commits ("Automatically
    Enforcing Fresh and Consistent Inputs in Intermittent Systems",
    arXiv 2104.04616).  The paper's monitors express MITD windows over
    task pairs; this tracker audits the complementary runtime-level
    invariant: no declared consumer may start or commit against producer
    data older than the scenario's freshness budget.

    The tracker is driven from the {!Artemis_device.Device.record}
    chokepoint (install {!on_event} with [Device.set_on_record]), so
    every runtime backend that logs task events through a device feeds
    it: producer [Task_completed] stamps the source, consumer
    [Task_started]/[Task_completed] audits every declared source's age.

    {b Anti-laundering} (the PR 7 bugfix satellite): a stamp taken while
    a transaction is open is {e provisional} and snapshots the store's
    {!Artemis_nvm.Nvm.revert_count}.  It only becomes durable via
    {!seal} with the revert count unchanged; an [abort_tx] or power
    failure in between bumps the count and the stamp dies - a reverted
    transaction can never launder a stale timestamp as fresh. *)

open Artemis_util

type violation = {
  v_consumer : string;
  v_source : string;
  v_age_us : int option;  (** [None]: no valid stamp existed (unstamped) *)
  v_at_us : int;  (** tracker-clock time of the consumption *)
}

type t

val create :
  clock:(unit -> int) ->
  ?in_tx:(unit -> bool) ->
  ?revert_count:(unit -> int) ->
  budget:Time.t ->
  reads:(string * string list) list ->
  unit ->
  t
(** [clock] returns microseconds (wire the device's simulated clock:
    [fun () -> Time.to_us (Device.sim_time device)]).  [reads] declares
    each consumer task's source tasks.  [in_tx]/[revert_count] feed the
    provisional-stamp protocol and default to "never in a transaction"
    for pure unit tests. *)

val stamp : t -> source:string -> unit
(** Timestamp [source]'s data as produced now.  Provisional when taken
    inside an open transaction.  No-op for tasks that are not a declared
    source, and under [Chaos.skip_freshness_stamp]. *)

val seal : t -> source:string -> unit
(** Commit point: a provisional stamp whose revert count is unchanged
    becomes durable; one invalidated by an abort or power failure in
    between is dropped. *)

val check : t -> consumer:string -> unit
(** Audit every declared source of [consumer]: no valid stamp records an
    unstamped violation, a valid stamp older than the budget records a
    stale one. *)

val on_event : t -> Artemis_trace.Event.t -> unit
(** Chokepoint driver: consumer [Task_started]/[Task_completed] run
    {!check}; producer [Task_started] notes a {e pending} start time and
    [Task_completed] runs {!stamp} then {!seal}; [Reboot] applies the
    chaos clock skew when enabled.

    The pending start time closes the lost-completion window: a crash
    can land between the producer's durable commit and its
    [Task_completed] record, so the data persisted but the stamping
    event never arrives.  Path order guarantees a consumer only runs
    after its producer committed (a reverted producer re-executes,
    emitting a fresh [Task_started], before control moves on), so a
    consumer check that finds only the pending entry promotes it to a
    durable stamp - conservatively timestamped at the producer's
    {e start}, never later than the data actually is. *)

val violations : t -> violation list
(** In occurrence order (deterministic for a deterministic run). *)

val budget : t -> Time.t

val violation_to_string : Time.t -> violation -> string
(** Rendered against the budget, e.g. for oracle reports. *)

(** Test-only chaos hooks (see test/test_oracle_sensitivity.ml). *)
module Chaos : sig
  val skip_freshness_stamp : bool ref
  (** Producer completions stop stamping: every declared consumer
      trips the unstamped check. *)

  val clock_skip_on_recovery : bool ref
  (** Each reboot skews the tracker clock one hour forward (a
      remanence-timekeeper misestimate): any consumption after a crash
      reads as stale. *)

  val reset : unit -> unit
end
