open Artemis_util
module Nvm = Artemis_nvm.Nvm
module Task = Artemis_task.Task

type hazard = {
  haz_task : string;
  haz_cell : string;
  haz_region : Nvm.region;
}

type report = { analyzed : string list; hazards : hazard list }

let has_hazards r = r.hazards <> []

let merge reports =
  {
    analyzed = List.concat_map (fun r -> r.analyzed) reports;
    hazards = List.concat_map (fun r -> r.hazards) reports;
  }

let region_to_string = function
  | Nvm.Runtime -> "runtime"
  | Nvm.Monitor -> "monitor"
  | Nvm.Application -> "application"
  | Nvm.Staging -> "staging"

(* Scan one body's access trace in program order.  A FRAM cell is
   hazardous when some read of it precedes a later direct persistent
   write ([Write_op]): the write survives a crash, so the re-executed
   body reads post-write state - the WAR non-idempotence of Surbatovich
   et al.  Buffered writes ([Tx_write_op]) are crash-discarded and safe;
   volatile cells reset at reboot and are safe. *)
let hazards_of_trace ~task accesses =
  let read_seen = Hashtbl.create 8 in
  let flagged = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun (a : Nvm.access) ->
      let key = (a.Nvm.acc_region, a.Nvm.acc_name) in
      match a.Nvm.acc_op with
      | Nvm.Read_op -> Hashtbl.replace read_seen key ()
      | Nvm.Tx_write_op -> ()
      | Nvm.Write_op ->
          if
            a.Nvm.acc_kind = Nvm.Fram
            && Hashtbl.mem read_seen key
            && not (Hashtbl.mem flagged key)
          then begin
            Hashtbl.replace flagged key ();
            out :=
              { haz_task = task; haz_cell = a.Nvm.acc_name;
                haz_region = a.Nvm.acc_region }
              :: !out
          end)
    accesses;
  List.rev !out

(* Record one body: recorder installed, a fresh transaction opened so
   [write_join] resolves exactly as under the runtime, everything
   unwound afterwards (the transaction aborted, the recorder cleared)
   even when the body raises. *)
let record_one nvm ~run =
  if Nvm.in_tx nvm then
    invalid_arg "War.analyze: a transaction is already open on the store";
  let accesses = ref [] in
  Nvm.set_recorder nvm (Some (fun a -> accesses := a :: !accesses));
  Nvm.begin_tx nvm;
  Fun.protect
    ~finally:(fun () ->
      Nvm.set_recorder nvm None;
      if Nvm.in_tx nvm then Nvm.abort_tx nvm)
    (fun () -> try run () with _ -> ());
  List.rev !accesses

let analyze_bodies nvm ?(seed = 42) named_bodies =
  let prng = Prng.create ~seed in
  let results =
    List.map
      (fun (name, body) ->
        let ctx = { Task.nvm; now = Time.zero; prng } in
        let accesses = record_one nvm ~run:(fun () -> body ctx) in
        (name, hazards_of_trace ~task:name accesses))
      named_bodies
  in
  {
    analyzed = List.map fst results;
    hazards = List.concat_map snd results;
  }

let analyze_app nvm ?seed app = analyze_bodies nvm ?seed (Task.bodies app)

let analyze_steps nvm ?(seed = 42) ~name steps =
  ignore seed;
  let results =
    Array.to_list steps
    |> List.mapi (fun i step ->
           let label = Printf.sprintf "%s#%d" name i in
           let accesses = record_one nvm ~run:step in
           (label, hazards_of_trace ~task:label accesses))
  in
  {
    analyzed = List.map fst results;
    hazards = List.concat_map snd results;
  }

let hazard_to_string h =
  Printf.sprintf
    "WAR hazard: task %S reads then writes %s cell %S outside a transaction"
    h.haz_task (region_to_string h.haz_region) h.haz_cell

let report_to_string r =
  let buf = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string buf) "%d tasks analyzed\n"
    (List.length r.analyzed);
  List.iter
    (fun h -> Buffer.add_string buf (hazard_to_string h ^ "\n"))
    r.hazards;
  (if r.hazards = [] then Buffer.add_string buf "no WAR hazards\n"
   else
     Printf.ksprintf (Buffer.add_string buf) "%d hazard%s\n"
       (List.length r.hazards)
       (if List.length r.hazards = 1 then "" else "s"));
  Buffer.contents buf
