open Artemis_nvm

type 'a t = { cell : 'a list Nvm.cell; capacity : int; chan_name : string }

let create nvm ~name ~bytes_per_item ~capacity =
  if capacity <= 0 then invalid_arg "Channel.create: non-positive capacity";
  let cell =
    Nvm.cell nvm ~region:Application ~name:("chan:" ^ name)
      ~bytes:(bytes_per_item * capacity)
      []
  in
  { cell; capacity; chan_name = name }

let items t = List.rev (Nvm.read t.cell)
let length t = List.length (Nvm.read t.cell)

let push t v =
  let current = Nvm.read t.cell in
  let bounded =
    if List.length current >= t.capacity then
      (* drop the oldest item: it is the last of the reversed list *)
      List.filteri (fun i _ -> i < t.capacity - 1) current
    else current
  in
  if !Nvm.Chaos.hazardous_nontx_write then
    (* mutation-suite variant (PR 7): the push bypasses the task
       transaction, re-introducing the WAR hazard the static
       consistency pass flags *)
    Nvm.write t.cell (v :: bounded)
  else Nvm.tx_write t.cell (v :: bounded)

let take_all t =
  let all = items t in
  Nvm.tx_write t.cell [];
  all

let clear t = Nvm.tx_write t.cell []
let name t = t.chan_name
