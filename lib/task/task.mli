(** Task-based intermittent application model (Section 3.1).

    An application is a sequence of {e paths}; a path is a sequence of
    atomic tasks executed in order.  One application run executes each
    path once, in index order, subject to the actions monitors inject
    (restart/skip/complete).  Tasks are all-or-nothing: the runtime runs
    a task's body inside an NVM transaction committed at task end. *)

open Artemis_util
open Artemis_nvm

type context = {
  nvm : Nvm.t;
  now : Time.t;  (** task logical start time (persistent-clock read) *)
  prng : Prng.t;  (** deterministic randomness for synthetic sensors *)
}

type t = private {
  name : string;
  duration : Time.t;  (** uninterrupted execution time *)
  power : Energy.power;  (** total draw while executing (MCU + peripheral) *)
  body : context -> unit;  (** effects, applied transactionally on success *)
  monitored : (string * (unit -> float)) list;
      (** dpData variables exposed to monitors: name and current-value
          reader (the paper passes the variable address in the task
          context; we pass a getter) *)
}

val make :
  name:string ->
  duration:Time.t ->
  power:Energy.power ->
  ?monitored:(string * (unit -> float)) list ->
  ?body:(context -> unit) ->
  unit ->
  t
(** @raise Invalid_argument on an empty name or negative duration. *)

type path = { index : int; tasks : t list }

type app = { app_name : string; paths : path list }

val app : name:string -> path list -> app

val validate : app -> (unit, string) result
(** Checks: at least one path; paths indexed 1..n in order; every path
    non-empty; a task name always denotes the same task value (tasks may
    be shared between paths, like [send] in the benchmark). *)

val find_task : app -> string -> t option
val task_names : app -> string list
(** Unique names, in first-appearance order. *)

val find_path : app -> int -> path option

val path_count : app -> int

val bodies : app -> (string * (context -> unit)) list
(** Every distinct task body, named, in first-appearance order: the
    access-recording surface the static WAR-hazard analysis
    ({!Artemis_consistency.War}) runs over.  This is the execution
    surface of both the ARTEMIS runtime and the Mayfly baseline. *)
