open Artemis_util
open Artemis_nvm

type context = { nvm : Nvm.t; now : Time.t; prng : Prng.t }

type t = {
  name : string;
  duration : Time.t;
  power : Energy.power;
  body : context -> unit;
  monitored : (string * (unit -> float)) list;
}

let make ~name ~duration ~power ?(monitored = []) ?(body = fun _ -> ()) () =
  if String.length name = 0 then invalid_arg "Task.make: empty name";
  if Time.is_negative duration then invalid_arg "Task.make: negative duration";
  { name; duration; power; body; monitored }

type path = { index : int; tasks : t list }
type app = { app_name : string; paths : path list }

let app ~name paths = { app_name = name; paths }

let validate a =
  let ( let* ) r f = Result.bind r f in
  let* () = if a.paths = [] then Error "application has no paths" else Ok () in
  let* () =
    let ok =
      List.for_all2
        (fun p i -> p.index = i)
        a.paths
        (List.init (List.length a.paths) (fun i -> i + 1))
    in
    if ok then Ok () else Error "paths must be indexed 1..n in order"
  in
  let* () =
    match List.find_opt (fun p -> p.tasks = []) a.paths with
    | Some p -> Error (Printf.sprintf "path #%d is empty" p.index)
    | None -> Ok ()
  in
  (* A name must always denote the same task value (physical sharing). *)
  let seen = Hashtbl.create 16 in
  let check_task acc t =
    let* () = acc in
    match Hashtbl.find_opt seen t.name with
    | None ->
        Hashtbl.add seen t.name t;
        Ok ()
    | Some t' ->
        if t' == t then Ok ()
        else Error (Printf.sprintf "task name %S bound to two different tasks" t.name)
  in
  List.fold_left
    (fun acc p -> List.fold_left check_task acc p.tasks)
    (Ok ()) a.paths

let find_task a name =
  let rec in_paths = function
    | [] -> None
    | p :: rest -> (
        match List.find_opt (fun t -> String.equal t.name name) p.tasks with
        | Some t -> Some t
        | None -> in_paths rest)
  in
  in_paths a.paths

let task_names a =
  let seen = Hashtbl.create 16 in
  List.concat_map (fun p -> p.tasks) a.paths
  |> List.filter_map (fun t ->
         if Hashtbl.mem seen t.name then None
         else begin
           Hashtbl.add seen t.name ();
           Some t.name
         end)

let find_path a index = List.find_opt (fun p -> p.index = index) a.paths
let path_count a = List.length a.paths

(* The WAR-analysis surface (PR 7): every distinct task body, named, in
   first-appearance order.  This is the execution surface of the ARTEMIS
   runtime and of the Mayfly baseline (both run Task.app values); InK
   and the checkpoint runtime expose their own [bodies]. *)
let bodies a =
  let seen = Hashtbl.create 16 in
  List.concat_map (fun p -> p.tasks) a.paths
  |> List.filter_map (fun t ->
         if Hashtbl.mem seen t.name then None
         else begin
           Hashtbl.add seen t.name ();
           Some (t.name, t.body)
         end)
