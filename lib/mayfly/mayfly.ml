open Artemis_util
module Nvm = Artemis_nvm.Nvm
module Device = Artemis_device.Device
module Cost_model = Artemis_device.Cost_model
module Report = Artemis_device.Report
module Event = Artemis_trace.Event
module Stats = Artemis_trace.Stats
module Task = Artemis_task.Task
module S = Artemis_spec.Ast

type annotation =
  | Expires of { producer : string; within : Time.t; path : int option }
  | Requires of { producer : string; count : int; path : int option }

let annotations_of_spec spec =
  List.filter_map
    (fun { S.task; properties } ->
      let annotations =
        List.filter_map
          (function
            | S.Mitd { limit; dp_task; path; _ } ->
                Some (Expires { producer = dp_task; within = limit; path })
            | S.Collect { n; dp_task; path; _ } ->
                Some (Requires { producer = dp_task; count = n; path })
            | S.Max_tries _ | S.Max_duration _ | S.Period _ | S.Dp_data _
            | S.Min_energy _ ->
                None)
          properties
      in
      if annotations = [] then None else Some (task, annotations))
    spec

(* Mayfly executes the same Task.app surface as the ARTEMIS runtime, so
   its WAR-analysis surface is the app's distinct task bodies. *)
let bodies = Task.bodies

type config = { cost_model : Cost_model.t; max_loop_iterations : int; seed : int }

let default_config =
  { cost_model = Cost_model.default; max_loop_iterations = 200_000; seed = 42 }

type cursor = {
  path : int;
  index : int;
  finished : bool;
  attempt : int;
  end_ts : Time.t;
}

type state = {
  device : Device.t;
  paths : Task.t array array;
  annotations : (string * annotation list) list;
  config : config;
  cursor : cursor Nvm.cell;
  (* fused bookkeeping, all in the Runtime region (Table 2) *)
  producer_end : (string * Time.t option Nvm.cell) list;
  producer_count : (string * int Nvm.cell) list;
  prng : Prng.t;
  mutable iterations : int;
}

let producers annotations =
  let names =
    List.concat_map
      (fun (_, anns) ->
        List.map
          (function Expires { producer; _ } | Requires { producer; _ } -> producer)
          anns)
      annotations
  in
  List.sort_uniq String.compare names

let make_state ~config device app annotations =
  (match Task.validate app with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Mayfly.run: invalid application: " ^ msg));
  let nvm = Device.nvm device in
  let paths =
    Array.of_list (List.map (fun p -> Array.of_list p.Task.tasks) app.Task.paths)
  in
  let cursor =
    Nvm.cell nvm ~region:Runtime ~name:"mf.cursor" ~bytes:12
      { path = 1; index = 0; finished = false; attempt = 0; end_ts = Time.zero }
  in
  let producer_names = producers annotations in
  let producer_end =
    List.map
      (fun p ->
        (p, Nvm.cell nvm ~region:Runtime ~name:("mf.end." ^ p) ~bytes:9 None))
      producer_names
  in
  let producer_count =
    List.map
      (fun p ->
        (p, Nvm.cell nvm ~region:Runtime ~name:("mf.count." ^ p) ~bytes:4 0))
      producer_names
  in
  (* Mayfly keeps its expiration table for every task, annotated or not -
     the fused design the paper criticizes; declare the remaining slack so
     the footprint reflects it. *)
  let all_tasks = Task.task_names app in
  List.iteri
    (fun i name ->
      if not (List.mem name producer_names) then
        ignore
          (Nvm.cell nvm ~region:Runtime
             ~name:(Printf.sprintf "mf.slot.%d.%s" i name)
             ~bytes:13 ()))
    all_tasks;
  ignore
    (Nvm.cell nvm ~region:Runtime ~kind:Artemis_nvm.Nvm.Ram ~name:"mf.scratch"
       ~bytes:2 0);
  {
    device;
    paths;
    annotations;
    config;
    cursor;
    producer_end;
    producer_count;
    prng = Prng.create ~seed:config.seed;
    iterations = 0;
  }

let current_task st (c : cursor) = st.paths.(c.path - 1).(c.index)

let task_annotations st ~task ~path =
  match List.assoc_opt task st.annotations with
  | None -> []
  | Some anns ->
      List.filter
        (fun a ->
          match a with
          | Expires { path = Some p; _ } | Requires { path = Some p; _ } ->
              p = path
          | Expires { path = None; _ } | Requires { path = None; _ } -> true)
        anns

let overhead_power st = Cost_model.overhead_power st.config.cost_model

let consume_runtime st =
  Device.consume st.device Device.Runtime_work ~power:(overhead_power st)
    ~duration:(Cost_model.mayfly_runtime_overhead st.config.cost_model)
    ()

let consume_checks st ~properties =
  (* fused in-loop property checks are charged to the runtime, not to a
     monitor: Mayfly has no separate monitor component *)
  Device.consume st.device Device.Runtime_work ~power:(overhead_power st)
    ~duration:(Cost_model.mayfly_check_overhead st.config.cost_model ~properties)
    ()

(* --- cursor movements --- *)

let fresh_path p = { path = p; index = 0; finished = false; attempt = 0; end_ts = Time.zero }

let advance st =
  let c = Nvm.read st.cursor in
  if c.index + 1 < Array.length st.paths.(c.path - 1) then
    Nvm.write st.cursor
      { c with index = c.index + 1; finished = false; attempt = 0 }
  else begin
    Device.record st.device (Event.Path_completed { path = c.path });
    Nvm.write st.cursor (fresh_path (c.path + 1))
  end

let restart_path st ~reason =
  let c = Nvm.read st.cursor in
  Device.record st.device
    (Event.Runtime_action { action = "restartPath"; task = (current_task st c).Task.name });
  Device.record st.device (Event.Path_restarted { path = c.path; reason });
  Nvm.write st.cursor (fresh_path c.path)

(* --- property evaluation (props_satisfied of Figure 2(b)) --- *)

let violated st ~now = function
  | Expires { producer; within; _ } -> (
      match Nvm.read (List.assoc producer st.producer_end) with
      | None -> true  (* no data yet: nothing fresh to consume *)
      | Some finished -> Time.(Time.sub now finished > within))
  | Requires { producer; count; _ } ->
      Nvm.read (List.assoc producer st.producer_count) < count

(* --- task execution --- *)

let execute_task st =
  let c = Nvm.read st.cursor in
  let task = current_task st c in
  let nvm = Device.nvm st.device in
  Nvm.begin_tx nvm;
  match
    Device.consume st.device Device.App ~during:task.Task.name
      ~power:task.Task.power ~duration:task.Task.duration ()
  with
  | Device.Interrupted | Device.Starved -> ()
  | Device.Completed ->
      let now = Device.now st.device in
      task.Task.body { Task.nvm; now; prng = st.prng };
      (* producer bookkeeping, atomically with the task commit *)
      (match List.assoc_opt task.Task.name st.producer_end with
      | Some cell -> Nvm.tx_write cell (Some now)
      | None -> ());
      (match List.assoc_opt task.Task.name st.producer_count with
      | Some cell -> Nvm.tx_write cell (Nvm.read cell + 1)
      | None -> ());
      (* consumer bookkeeping: a completed task consumes its inputs *)
      List.iter
        (function
          | Requires { producer; count; _ } ->
              let cell = List.assoc producer st.producer_count in
              Nvm.tx_write cell (Stdlib.max 0 (Nvm.read cell - count))
          | Expires _ -> ())
        (task_annotations st ~task:task.Task.name ~path:c.path);
      Nvm.tx_write st.cursor { c with finished = true; end_ts = now };
      Nvm.commit_tx nvm;
      Device.record st.device (Event.Task_completed { task = task.Task.name })

let start_phase st =
  let c = Nvm.read st.cursor in
  if c.index = 0 && c.attempt = 0 then
    Device.record st.device (Event.Path_started { path = c.path });
  let c = { c with attempt = c.attempt + 1 } in
  Nvm.write st.cursor c;
  let task = current_task st c in
  Device.record st.device
    (Event.Task_started { task = task.Task.name; attempt = c.attempt });
  match consume_runtime st with
  | Device.Interrupted | Device.Starved -> ()
  | Device.Completed -> (
      let anns = task_annotations st ~task:task.Task.name ~path:c.path in
      match consume_checks st ~properties:(List.length anns) with
      | Device.Interrupted | Device.Starved -> ()
      | Device.Completed ->
          let now = Device.now st.device in
          if List.exists (violated st ~now) anns then
            restart_path st ~reason:"expired or missing data"
          else execute_task st)

let end_phase st =
  match consume_runtime st with
  | Device.Interrupted | Device.Starved -> ()
  | Device.Completed -> advance st

let run ?(config = default_config) device app annotations =
  let st = make_state ~config device app annotations in
  Device.record device Event.Boot;
  let rec loop () =
    st.iterations <- st.iterations + 1;
    if st.iterations > config.max_loop_iterations then begin
      let reason = "iteration limit (no progress)" in
      Device.record device (Event.Horizon_reached { reason });
      Report.stats device ~outcome:(Stats.Did_not_finish reason)
    end
    else if Device.horizon_exceeded device then begin
      let reason = "simulation time horizon" in
      Device.record device (Event.Horizon_reached { reason });
      Report.stats device ~outcome:(Stats.Did_not_finish reason)
    end
    else begin
      let c = Nvm.read st.cursor in
      if c.path > Array.length st.paths then begin
        Device.record device Event.App_completed;
        Report.stats device ~outcome:Stats.Completed
      end
      else begin
        if c.finished then end_phase st else start_phase st;
        loop ()
      end
    end
  in
  loop ()

let runtime_fram_bytes device =
  Nvm.footprint (Device.nvm device) ~kind:Artemis_nvm.Nvm.Fram
    ~region:Artemis_nvm.Nvm.Runtime

(* --- the unified-backend adapter (PR 10) ---

   Runs ARTEMIS [Task.app] tasks under the Mayfly execution discipline
   inside the shared runtime: the fused expiration table keeps a
   completion timestamp for {e every} task (annotated or not - the
   design Table 2 charges for), updated atomically with the task, and
   each commit pays the fused in-loop property check. *)
module Backend_impl : Artemis_backend.Backend.S = struct
  module Backend = Artemis_backend.Backend

  let name = "mayfly"

  let description =
    "Mayfly-style fused runtime (per-task expiration table, in-loop checks)"

  let injection_sites = []
  let bodies = Task.bodies

  let setup ~probe device app =
    ignore probe;
    let config = default_config in
    let nvm = Device.nvm device in
    let stamps =
      List.map
        (fun task_name ->
          ( task_name,
            Nvm.cell nvm ~region:Runtime ~name:("mfb.end." ^ task_name)
              ~bytes:9 (None : Time.t option) ))
        (Task.task_names app)
    in
    let consume_check () =
      Device.consume device Device.Runtime_work
        ~power:(Cost_model.overhead_power config.cost_model)
        ~duration:(Cost_model.mayfly_check_overhead config.cost_model ~properties:1)
        ()
    in
    {
      Backend.recover = (fun () -> ());
      execute =
        (fun ~task ~context ~commit ->
          Nvm.begin_tx nvm;
          match
            Device.consume device Device.App ~during:task.Task.name
              ~power:task.Task.power ~duration:task.Task.duration ()
          with
          | Device.Interrupted | Device.Starved -> Backend.Interrupted
          | Device.Completed -> (
              task.Task.body (context ());
              (* expiration-table bookkeeping joins the task transaction *)
              Nvm.tx_write
                (List.assoc task.Task.name stamps)
                (Some (Device.now device));
              commit ();
              (* the fused in-loop check runs before the commit becomes
                 durable: an interruption rolls the whole attempt back *)
              match consume_check () with
              | Device.Interrupted | Device.Starved -> Backend.Interrupted
              | Device.Completed ->
                  Nvm.commit_tx nvm;
                  Backend.Committed));
      fram_bytes = (fun () -> 9 * List.length stamps);
    }
end

let backend : Artemis_backend.Backend.b = (module Backend_impl)
