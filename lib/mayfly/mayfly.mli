(** Mayfly-style baseline runtime (Hester et al., SenSys'17), the
    comparison system of the paper's evaluation.

    Mayfly fuses property checking into the runtime main loop
    (Figure 2(b)): each task carries data-expiration and data-collection
    annotations that the loop checks inline before running the task, and a
    violation restarts the task graph's current path.  There is no
    [maxTries]/[maxAttempt] (Section 5.1.1), which is precisely why long
    charging delays drive it into non-termination (Figure 12).

    All bookkeeping (producer completion timestamps, collection counters)
    lives in the [Runtime] NVM region - the fused design the paper
    contrasts with ARTEMIS's separated monitors, and the reason Mayfly's
    runtime FRAM footprint in Table 2 is larger. *)

open Artemis_util
open Artemis_device
open Artemis_task

type annotation =
  | Expires of { producer : string; within : Time.t; path : int option }
      (** the task must start within [within] of [producer]'s completion
          (data freshness / MITD) *)
  | Requires of { producer : string; count : int; path : int option }
      (** the task needs [count] items from [producer] before it may start *)

val annotations_of_spec : Artemis_spec.Ast.t -> (string * annotation list) list
(** Keep the [MITD] and [collect] properties of a specification (the
    subset Mayfly supports, Section 5.1.1) and drop the rest - including
    any [maxAttempt] guards. *)

val bodies : Task.app -> (string * (Task.context -> unit)) list
(** The access-recording surface for the static WAR-hazard analysis:
    Mayfly executes the same {!Task.app} task bodies (transactionally)
    as the ARTEMIS runtime, so the surface is {!Task.bodies}. *)

type config = { cost_model : Cost_model.t; max_loop_iterations : int; seed : int }

val default_config : config

val run :
  ?config:config ->
  Device.t ->
  Task.app ->
  (string * annotation list) list ->
  Artemis_trace.Stats.t
(** Execute one application run under Mayfly semantics.
    @raise Invalid_argument if {!Task.validate} rejects the app. *)

val runtime_fram_bytes : Device.t -> int
(** FRAM bytes of Mayfly's fused runtime cells (Table 2). *)

val backend : Artemis_backend.Backend.b
(** The unified-backend adapter (PR 10, [name = "mayfly"]): runs ARTEMIS
    task apps under the Mayfly discipline inside the shared runtime -
    a fused per-task expiration table ([mfb.end.<task>], one 9-byte cell
    per task whether annotated or not) committed atomically with each
    task, plus the fused in-loop check cost on every commit. *)
