(* Fleet-scale simulation service (PR 8).

   A fleet run is an embarrassingly parallel map over the device matrix
   followed by a deterministic fold.  All the parallel machinery is
   Par.map (which writes each device's record at its input index) plus
   the faultsim Obs-context discipline: when the caller is recording,
   each device runs in a context of its own, absorbed back in index
   order; when not, devices share their worker domain's quiet context
   and every Obs call is a guarded no-op.  Either way the report is a
   pure function of the spec. *)

open Artemis
module Scenario = Artemis_faultsim.Scenario
module F = Artemis_faultsim.Faultsim

(* ------------------------------------------------------------------ *)
(* Harvester profiles *)

type profile =
  | Scenario_default
  | Fixed_delay of Time.t
  | Duty_cycle of { avg_uw : float }
  | Constant of { avg_uw : float }

(* The duty-cycle shape of the harvester study: a 2-minute period whose
   first half delivers twice the average rate, so the time-averaged
   power equals [avg_uw]. *)
let policy_of_profile = function
  | Scenario_default -> None
  | Fixed_delay d -> Some (Charging_policy.Fixed_delay d)
  | Duty_cycle { avg_uw } ->
      Some
        (Charging_policy.From_harvester
           (Harvester.Duty_cycle
              {
                period = Time.of_min 2;
                on_fraction = 0.5;
                rate = Energy.uw (2. *. avg_uw);
              }))
  | Constant { avg_uw } ->
      Some (Charging_policy.From_harvester (Harvester.Constant (Energy.uw avg_uw)))

let parse_positive what s =
  match float_of_string_opt s with
  | Some v when v > 0. && Float.is_finite v -> Ok v
  | _ -> Error (Printf.sprintf "%s must be a positive number (got %S)" what s)

let parse_time s =
  let num suffix =
    String.sub s 0 (String.length s - String.length suffix)
  in
  let scaled suffix to_time =
    Result.map to_time (parse_positive "delay" (num suffix))
  in
  if String.length s > 2 && Filename.check_suffix s "min" then
    scaled "min" (fun v -> Time.of_sec_f (v *. 60.))
  else if String.length s > 2 && Filename.check_suffix s "ms" then
    scaled "ms" (fun v -> Time.of_us (int_of_float (Float.round (v *. 1000.))))
  else if String.length s > 2 && Filename.check_suffix s "us" then
    scaled "us" (fun v -> Time.of_us (int_of_float (Float.round v)))
  else if String.length s > 1 && Filename.check_suffix s "s" then
    scaled "s" Time.of_sec_f
  else Error (Printf.sprintf "delay needs a unit suffix (us|ms|s|min): %S" s)

let parse_uw what s =
  if String.length s > 2 && Filename.check_suffix s "uw" then
    parse_positive what (String.sub s 0 (String.length s - 2))
  else Error (Printf.sprintf "%s needs a uw suffix (e.g. 200uw): %S" what s)

let profile_of_string s =
  match String.index_opt s ':' with
  | None ->
      if s = "default" then Ok Scenario_default
      else
        Error
          (Printf.sprintf
             "unknown harvester profile %S (default|fixed:<delay>|duty:<uw>|constant:<uw>)"
             s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "fixed" -> Result.map (fun d -> Fixed_delay d) (parse_time arg)
      | "duty" ->
          Result.map (fun avg_uw -> Duty_cycle { avg_uw }) (parse_uw "duty" arg)
      | "constant" ->
          Result.map
            (fun avg_uw -> Constant { avg_uw })
            (parse_uw "constant" arg)
      | _ ->
          Error
            (Printf.sprintf
               "unknown harvester profile kind %S (fixed|duty|constant)" kind))

(* Canonical labels round-trip through profile_of_string; times render
   in the largest exact unit so "fixed:30s" stays "fixed:30s". *)
let time_label t =
  let us = Time.to_us t in
  if us mod 60_000_000 = 0 then Printf.sprintf "%dmin" (us / 60_000_000)
  else if us mod 1_000_000 = 0 then Printf.sprintf "%ds" (us / 1_000_000)
  else if us mod 1_000 = 0 then Printf.sprintf "%dms" (us / 1_000)
  else Printf.sprintf "%dus" us

let uw_label v =
  if Float.is_integer v then Printf.sprintf "%.0fuw" v
  else Printf.sprintf "%guw" v

let profile_label = function
  | Scenario_default -> "default"
  | Fixed_delay d -> "fixed:" ^ time_label d
  | Duty_cycle { avg_uw } -> "duty:" ^ uw_label avg_uw
  | Constant { avg_uw } -> "constant:" ^ uw_label avg_uw

(* ------------------------------------------------------------------ *)
(* Specs *)

type spec = {
  fleet_name : string;
  scenarios : string list;
  seed_first : int;
  seed_count : int;
  profiles : profile list;
  engines : string list;
  backends : string list;
}

let engine_of_string = function
  | "default" -> Ok None
  | "interpreted" -> Ok (Some Monitor.Interpreted)
  | "compiled" -> Ok (Some Monitor.Compiled)
  | "table" -> Ok (Some Monitor.Table)
  | other ->
      Error
        (Printf.sprintf "unknown engine %S (default|interpreted|compiled|table)"
           other)

let backend_of_string name =
  match Backends.find name with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown backend %S (%s)" name
           (String.concat "|" Backends.names))

let validate_spec spec =
  let ( let* ) = Result.bind in
  let* () =
    if spec.scenarios = [] then Error "spec needs at least one scenario"
    else Ok ()
  in
  let* () =
    if spec.seed_count < 1 then Error "seeds.count must be positive" else Ok ()
  in
  let* () =
    if spec.profiles = [] then Error "spec needs at least one harvester profile"
    else Ok ()
  in
  let* () =
    if spec.engines = [] then Error "spec needs at least one engine" else Ok ()
  in
  let* () =
    if spec.backends = [] then Error "spec needs at least one backend"
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        match Scenario.find name with
        | Some _ -> Ok ()
        | None ->
            Error
              (Printf.sprintf "unknown scenario %S (%s)" name
                 (String.concat "|"
                    (List.map (fun s -> s.Scenario.name) Scenario.all))))
      (Ok ()) spec.scenarios
  in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        Result.map ignore (engine_of_string name))
      (Ok ()) spec.engines
  in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        Result.map ignore (backend_of_string name))
      (Ok ()) spec.backends
  in
  Ok spec

let spec_of_json text =
  let ( let* ) = Result.bind in
  let* doc = Json.parse text in
  let str_list what default = function
    | None -> Ok default
    | Some j -> (
        match Json.to_arr j with
        | None -> Error (Printf.sprintf "%s must be an array of strings" what)
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match Json.to_str item with
                | Some s -> Ok (s :: acc)
                | None ->
                    Error (Printf.sprintf "%s must be an array of strings" what))
              (Ok []) items
            |> Result.map List.rev)
  in
  let int_field what default = function
    | None -> (
        match default with
        | Some d -> Ok d
        | None -> Error (Printf.sprintf "spec is missing %s" what))
    | Some j -> (
        match Json.to_num j with
        | Some n when Float.is_integer n -> Ok (int_of_float n)
        | _ -> Error (Printf.sprintf "%s must be an integer" what))
  in
  let* fleet_name =
    match Json.member "name" doc with
    | None -> Ok "fleet"
    | Some j -> (
        match Json.to_str j with
        | Some s -> Ok s
        | None -> Error "name must be a string")
  in
  let* scenarios =
    match Json.member "scenarios" doc with
    | None -> Error "spec is missing scenarios"
    | some -> str_list "scenarios" [] some
  in
  let seeds = Json.member "seeds" doc in
  let* seed_first =
    int_field "seeds.first" (Some 0) (Option.bind seeds (Json.member "first"))
  in
  let* seed_count =
    int_field "seeds.count" None (Option.bind seeds (Json.member "count"))
  in
  let* harvesters =
    str_list "harvesters" [ "default" ] (Json.member "harvesters" doc)
  in
  let* profiles =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        Result.map (fun p -> p :: acc) (profile_of_string s))
      (Ok []) harvesters
    |> Result.map List.rev
  in
  let* engines = str_list "engines" [ "default" ] (Json.member "engines" doc) in
  let* backends =
    str_list "backends" [ "immortal" ] (Json.member "backends" doc)
  in
  validate_spec
    { fleet_name; scenarios; seed_first; seed_count; profiles; engines;
      backends }

let spec_size spec =
  List.length spec.scenarios * List.length spec.profiles
  * List.length spec.engines * List.length spec.backends * spec.seed_count

(* ------------------------------------------------------------------ *)
(* Per-device runs *)

type device_result = {
  index : int;
  scenario : string;
  seed : int;
  profile : string;
  engine : string;
  backend : string;
  outcome : string;
  power_failures : int;
  reboots : int;
  energy_uj : float;
  monitor_uj : float;
  active_us : int;
  off_us : int;
  verdicts : (string * int) list;
  freshness_violations : int;
}

type coord = {
  c_scenario : Scenario.t;
  c_seed : int;
  c_profile : profile;
  c_engine : string;
  c_backend : string * Backend.b;
}

(* Scenario-major decomposition of the flat device index; seeds vary
   fastest so consecutive devices share a freshly-warmed scenario
   closure within a chunk. *)
let expand spec =
  let scenarios =
    List.map
      (fun name ->
        match Scenario.find name with
        | Some s -> s
        | None -> failwith (Printf.sprintf "Fleet.run: unknown scenario %S" name))
      spec.scenarios
  in
  let scenarios = Array.of_list scenarios in
  let profiles = Array.of_list spec.profiles in
  let engines =
    Array.of_list
      (List.map
         (fun name ->
           match engine_of_string name with
           | Ok e -> (name, e)
           | Error msg -> failwith ("Fleet.run: " ^ msg))
         spec.engines)
  in
  let backends =
    Array.of_list
      (List.map
         (fun name ->
           match backend_of_string name with
           | Ok b -> (name, b)
           | Error msg -> failwith ("Fleet.run: " ^ msg))
         spec.backends)
  in
  let np = Array.length profiles and ne = Array.length engines in
  let nb = Array.length backends in
  let k = spec.seed_count in
  fun idx ->
    let seed_i = idx mod k and idx = idx / k in
    let b_i = idx mod nb and idx = idx / nb in
    let e_i = idx mod ne and idx = idx / ne in
    let p_i = idx mod np and s_i = idx / np in
    let name, engine = engines.(e_i) in
    let scenario = scenarios.(s_i) in
    let scenario =
      match engine with
      | None -> scenario
      | Some e -> Scenario.with_engine e scenario
    in
    {
      c_scenario = scenario;
      c_seed = spec.seed_first + seed_i;
      c_profile = profiles.(p_i);
      c_engine = name;
      c_backend = backends.(b_i);
    }

let verdict_counts log =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.timed) ->
      match e.Event.event with
      | Event.Monitor_verdict { action; _ } ->
          Hashtbl.replace tbl action
            (1 + try Hashtbl.find tbl action with Not_found -> 0)
      | _ -> ())
    (Log.events log);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run_device ~index coord =
  let built =
    coord.c_scenario.Scenario.build ~engine:None ~seed:coord.c_seed
  in
  (match policy_of_profile coord.c_profile with
  | None -> ()
  | Some policy -> Device.set_policy built.Scenario.device policy);
  let backend_name, backend = coord.c_backend in
  let stats =
    Runtime.run ~config:built.Scenario.config
      ~adaptations:built.Scenario.adaptations ~backend built.Scenario.device
      built.Scenario.app built.Scenario.suite
  in
  let freshness_violations =
    match built.Scenario.freshness with
    | None -> 0
    | Some tracker -> List.length (Consistency.Freshness.violations tracker)
  in
  {
    index;
    scenario = coord.c_scenario.Scenario.name;
    seed = coord.c_seed;
    profile = profile_label coord.c_profile;
    engine = coord.c_engine;
    backend = backend_name;
    outcome =
      (match stats.Stats.outcome with
      | Stats.Completed -> "completed"
      | Stats.Did_not_finish reason -> "dnf:" ^ reason);
    power_failures = stats.Stats.power_failures;
    reboots = stats.Stats.reboots;
    energy_uj = Energy.to_uj stats.Stats.energy_total;
    monitor_uj = Energy.to_uj stats.Stats.energy_monitor;
    active_us = Time.to_us (Stats.active_time stats);
    off_us = Time.to_us stats.Stats.off_time;
    verdicts = verdict_counts (Device.log built.Scenario.device);
    freshness_violations;
  }

(* ------------------------------------------------------------------ *)
(* Roll-ups *)

let percentile sample q =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Fleet.percentile: empty sample";
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Fleet.percentile: q must be in [0, 1]";
  (* Float.compare totally orders NaN above every float, so a single
     NaN sample would silently surface as p99/max in the fleet roll-up.
     Refuse loudly instead of reporting garbage. *)
  Array.iter
    (fun x ->
      if not (Float.is_finite x) then
        invalid_arg "Fleet.percentile: non-finite sample")
    sample;
  let sorted = Array.copy sample in
  Array.sort Float.compare sorted;
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

(* Total order: DNF before completed, then freshness violations, power
   failures and energy descending, index ascending - jobs-invariant
   because index breaks every tie. *)
let worse a b =
  let dnf r = r.outcome <> "completed" in
  let cmp =
    compare (dnf b, b.freshness_violations, b.power_failures)
      (dnf a, a.freshness_violations, a.power_failures)
  in
  if cmp <> 0 then cmp
  else
    let cmp = Float.compare b.energy_uj a.energy_uj in
    if cmp <> 0 then cmp else compare a.index b.index

let worst_devices ~k devices =
  let sorted = List.sort worse devices in
  List.filteri (fun i _ -> i < k) sorted

let histogram key items =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun item ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace tbl k (v + try Hashtbl.find tbl k with Not_found -> 0))
        (key item))
    items;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type group = {
  g_scenario : string;
  g_profile : string;
  g_engine : string;
  g_backend : string;
  g_devices : int;
  g_completed : int;
  g_power_failures : int;
  g_verdicts : int;
  g_energy_uj : float;
}

type report = {
  spec : spec;
  devices : device_result array;
  outcomes : (string * int) list;
  verdict_totals : (string * int) list;
  energy_percentiles : (string * float) list;
  worst : device_result list;
  groups : group list;
}

(* One row per scenario x profile x engine x backend, in matrix order:
   devices arrive index-sorted, so each group's seed block is contiguous. *)
let group_rollup spec devices =
  let seed_count = spec.seed_count in
  let rec blocks i acc =
    if i >= Array.length devices then List.rev acc
    else
      let first = devices.(i) in
      let g =
        Array.fold_left
          (fun g d ->
            {
              g with
              g_devices = g.g_devices + 1;
              g_completed =
                (g.g_completed + if d.outcome = "completed" then 1 else 0);
              g_power_failures = g.g_power_failures + d.power_failures;
              g_verdicts =
                g.g_verdicts
                + List.fold_left (fun a (_, n) -> a + n) 0 d.verdicts;
              g_energy_uj = g.g_energy_uj +. d.energy_uj;
            })
          {
            g_scenario = first.scenario;
            g_profile = first.profile;
            g_engine = first.engine;
            g_backend = first.backend;
            g_devices = 0;
            g_completed = 0;
            g_power_failures = 0;
            g_verdicts = 0;
            g_energy_uj = 0.;
          }
          (Array.sub devices i seed_count)
      in
      blocks (i + seed_count) (g :: acc)
  in
  blocks 0 []

let rollup spec devices =
  let device_list = Array.to_list devices in
  {
    spec;
    devices;
    outcomes = histogram (fun d -> [ (d.outcome, 1) ]) device_list;
    verdict_totals = histogram (fun d -> d.verdicts) device_list;
    energy_percentiles =
      (let sample = Array.map (fun d -> d.energy_uj) devices in
       [
         ("p50", percentile sample 0.50);
         ("p90", percentile sample 0.90);
         ("p99", percentile sample 0.99);
         ("max", percentile sample 1.0);
       ]);
    worst = worst_devices ~k:5 device_list;
    groups = group_rollup spec devices;
  }

(* ------------------------------------------------------------------ *)
(* The fleet runner *)

let run ?(jobs = 1) ?chunk ?on_progress spec =
  let n = spec_size spec in
  if n = 0 then invalid_arg "Fleet.run: empty device matrix";
  if jobs < 1 then invalid_arg "Fleet.run: jobs must be >= 1";
  let coord = expand spec in
  let parent = Obs.current () in
  let observed =
    Obs.Ctx.metrics_enabled parent || Obs.Ctx.tracing_enabled parent
  in
  let progress_lock = Mutex.create () in
  let completed = ref 0 in
  let tick () =
    match on_progress with
    | None -> ()
    | Some f ->
        Mutex.protect progress_lock (fun () ->
            incr completed;
            f ~completed:!completed ~total:n)
  in
  let results =
    Par.map ~jobs ?chunk n (fun i ->
        let c = coord i in
        let out =
          if observed then (
            let ctx = Obs.Ctx.create ~like:parent () in
            let r = Obs.with_ctx ctx (fun () -> run_device ~index:i c) in
            (r, Some ctx))
          else (run_device ~index:i c, None)
        in
        tick ();
        out)
  in
  let devices =
    Array.map
      (fun (r, ctx) ->
        (match ctx with
        | Some ctx -> Obs.Ctx.absorb ~into:parent ctx
        | None -> ());
        r)
      results
  in
  rollup spec devices

(* ------------------------------------------------------------------ *)
(* Reports *)

let output_report_json ?(devices = false) oc report =
  let emit = output_string oc in
  let emitf fmt = Printf.ksprintf emit fmt in
  let str = F.json_string in
  let strings names =
    String.concat ", " (List.map str names)
  in
  let pairs render kvs =
    String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (str k) (render v)) kvs)
  in
  emitf "{\n  \"fleet\": %s,\n" (str report.spec.fleet_name);
  emitf "  \"devices\": %d,\n" (Array.length report.devices);
  emitf "  \"scenarios\": [%s],\n" (strings report.spec.scenarios);
  emitf "  \"seeds\": {\"first\": %d, \"count\": %d},\n" report.spec.seed_first
    report.spec.seed_count;
  emitf "  \"harvesters\": [%s],\n"
    (strings (List.map profile_label report.spec.profiles));
  emitf "  \"engines\": [%s],\n" (strings report.spec.engines);
  emitf "  \"backends\": [%s],\n" (strings report.spec.backends);
  emitf "  \"outcomes\": {%s},\n" (pairs string_of_int report.outcomes);
  emitf "  \"verdicts\": {%s},\n" (pairs string_of_int report.verdict_totals);
  emitf "  \"energyPercentilesUj\": {%s},\n"
    (pairs Json.float_lit report.energy_percentiles);
  emit "  \"groups\": [\n";
  let last_group = List.length report.groups - 1 in
  List.iteri
    (fun i g ->
      emitf
        "    {\"scenario\": %s, \"harvester\": %s, \"engine\": %s, \
         \"backend\": %s, \"devices\": %d, \"completed\": %d, \
         \"powerFailures\": %d, \"verdicts\": %d, \"energyUj\": %s}%s\n"
        (str g.g_scenario) (str g.g_profile) (str g.g_engine)
        (str g.g_backend) g.g_devices
        g.g_completed g.g_power_failures g.g_verdicts
        (Json.float_lit g.g_energy_uj)
        (if i = last_group then "" else ","))
    report.groups;
  emit "  ],\n";
  let emit_device indent d last =
    emitf
      "%s{\"index\": %d, \"scenario\": %s, \"seed\": %d, \"harvester\": %s, \
       \"engine\": %s, \"backend\": %s, \"outcome\": %s, \"powerFailures\": \
       %d, \"reboots\": %d, \"energyUj\": %s, \"monitorUj\": %s, \
       \"activeUs\": %d, \"offUs\": %d, \"verdicts\": {%s}, \
       \"freshnessViolations\": %d}%s\n"
      indent d.index (str d.scenario) d.seed (str d.profile) (str d.engine)
      (str d.backend) (str d.outcome) d.power_failures d.reboots
      (Json.float_lit d.energy_uj)
      (Json.float_lit d.monitor_uj)
      d.active_us d.off_us
      (pairs string_of_int d.verdicts)
      d.freshness_violations
      (if last then "" else ",")
  in
  emit "  \"worst\": [\n";
  let last_worst = List.length report.worst - 1 in
  List.iteri
    (fun i d -> emit_device "    " d (i = last_worst))
    report.worst;
  if devices then begin
    emit "  ],\n";
    emit "  \"deviceResults\": [\n";
    let n = Array.length report.devices in
    Array.iteri (fun i d -> emit_device "    " d (i = n - 1)) report.devices;
    emit "  ]\n"
  end
  else emit "  ]\n";
  emit "}\n"

let report_summary report =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "fleet %s: %d devices (%d scenarios x %d harvesters x %d engines x %d \
     backends x %d seeds)\n"
    report.spec.fleet_name
    (Array.length report.devices)
    (List.length report.spec.scenarios)
    (List.length report.spec.profiles)
    (List.length report.spec.engines)
    (List.length report.spec.backends)
    report.spec.seed_count;
  let kvs render kvs =
    String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ render v) kvs)
  in
  add "outcomes: %s\n" (kvs string_of_int report.outcomes);
  if report.verdict_totals <> [] then
    add "verdicts: %s\n" (kvs string_of_int report.verdict_totals);
  add "energy uJ: %s\n"
    (kvs (Printf.sprintf "%.1f") report.energy_percentiles);
  add "worst devices:\n";
  List.iter
    (fun d ->
      add "  #%d %s seed=%d %s %s %s %s failures=%d energy=%.1fuJ%s\n" d.index
        d.scenario d.seed d.profile d.engine d.backend d.outcome d.power_failures
        d.energy_uj
        (if d.freshness_violations > 0 then
           Printf.sprintf " freshness=%d" d.freshness_violations
         else ""))
    report.worst;
  Buffer.contents buf
