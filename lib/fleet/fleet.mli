(** Fleet-scale simulation service (PR 8).

    The paper simulates one intermittent device; production means a
    {e fleet}.  A {!spec} names the sweep axes - scenario x seed range x
    harvester profile x monitor engine x task backend - and {!run}
    expands them into a
    device matrix, runs every device as an independent simulation
    sharded over domains with {!Artemis.Par.map}, and folds the
    per-device records into one deterministically-merged {!report}:
    outcome and verdict histograms, energy percentiles, per-group
    roll-ups and the worst-case devices.

    Determinism contract (the same one the faultsim campaign runner
    pins): device [i]'s record depends only on the spec and [i], results
    are merged in device-index order, and when the caller's
    {!Artemis.Obs} context is recording each device runs in its own
    context absorbed back in index order - so the report and any
    exported trace are byte-identical for every [jobs] and [chunk]
    value. *)

open Artemis

(** {2 Harvester profiles} *)

(** How each device in the sweep recharges after a brown-out.  The
    scenario builder picks its own policy; a non-default profile
    overrides it ({!Artemis.Device.set_policy}) before the run starts. *)
type profile =
  | Scenario_default
  | Fixed_delay of Time.t  (** the paper's charging-time knob *)
  | Duty_cycle of { avg_uw : float }
      (** 2-minute period, power during the first half at twice the
          average rate (the harvester-study shape) *)
  | Constant of { avg_uw : float }  (** steady incoming power *)

val profile_of_string : string -> (profile, string) result
(** ["default"], ["fixed:30s"] (also [ms]/[min] suffixes),
    ["duty:200uw"], ["constant:65uw"]. *)

val profile_label : profile -> string
(** Canonical rendering, parseable by {!profile_of_string}. *)

(** {2 Fleet specs} *)

type spec = {
  fleet_name : string;
  scenarios : string list;  (** {!Artemis_faultsim.Scenario} names *)
  seed_first : int;
  seed_count : int;  (** seeds [seed_first .. seed_first+seed_count-1] *)
  profiles : profile list;
  engines : string list;
      (** ["default"] or {!Artemis.Monitor} engine names *)
  backends : string list;
      (** {!Artemis.Backends} names (PR 10); every device in the sweep
          runs its scenario under the named task-execution backend *)
}

val spec_of_json : string -> (spec, string) result
(** Parse a fleet spec document, e.g.
    [{"name": "smoke", "scenarios": ["quickstart"],
      "seeds": {"first": 0, "count": 100},
      "harvesters": ["default", "fixed:30s", "duty:200uw"],
      "engines": ["compiled", "table"],
      "backends": ["immortal", "alpaca"]}].
    [name] defaults to ["fleet"], [seeds.first] to [0], [harvesters] to
    [["default"]], [engines] to [["default"]] and [backends] to
    [["immortal"]]; [scenarios] and [seeds.count] are required.
    Scenario, profile, engine and backend names are validated here, so
    {!run} cannot fail on a parsed spec. *)

val spec_size : spec -> int
(** Devices in the matrix:
    [scenarios * profiles * engines * backends * seed_count]. *)

(** {2 Per-device records} *)

type device_result = {
  index : int;  (** position in the device matrix *)
  scenario : string;
  seed : int;
  profile : string;  (** {!profile_label} *)
  engine : string;
  backend : string;  (** {!Artemis.Backend.name} of the task backend *)
  outcome : string;  (** ["completed"] or ["dnf:<reason>"] *)
  power_failures : int;
  reboots : int;
  energy_uj : float;  (** total energy drawn *)
  monitor_uj : float;  (** share attributed to property checking *)
  active_us : int;
  off_us : int;
  verdicts : (string * int) list;
      (** corrective-action counts (e.g. ["skipPath"]), sorted by name *)
  freshness_violations : int;
      (** input-freshness oracle hits, for scenarios with a budget *)
}

(** {2 Reports} *)

type group = {
  g_scenario : string;
  g_profile : string;
  g_engine : string;
  g_backend : string;
  g_devices : int;
  g_completed : int;
  g_power_failures : int;
  g_verdicts : int;
  g_energy_uj : float;  (** total across the group's devices *)
}

type report = {
  spec : spec;
  devices : device_result array;  (** device-index order *)
  outcomes : (string * int) list;  (** outcome histogram, sorted *)
  verdict_totals : (string * int) list;  (** fleet-wide verdict histogram *)
  energy_percentiles : (string * float) list;
      (** [("p50", uj); ("p90", _); ("p99", _); ("max", _)] *)
  worst : device_result list;  (** worst devices first; see {!worst_devices} *)
  groups : group list;
      (** one row per scenario x profile x engine x backend *)
}

val worst_devices : k:int -> device_result list -> device_result list
(** The [k] worst devices under the fleet badness order: did-not-finish
    before completed, then more freshness violations, then more power
    failures, then more energy, ties broken by device index (so the
    ranking is total and jobs-invariant). *)

val percentile : float array -> float -> float
(** Nearest-rank percentile of an unsorted sample, [q] in [0, 1].
    @raise Invalid_argument on an empty sample or any non-finite sample
    value (a NaN would otherwise sort above every float and surface as
    p99/max). *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  spec ->
  report
(** Expand the matrix and run every device.  [jobs] (default 1) shards
    devices over domains; [chunk] overrides the auto chunk size (the
    report is byte-identical either way).  [on_progress] is invoked
    under a lock after each device completes, from whichever domain
    finished it - completion order is nondeterministic, so drive
    progress/ETA output from it but never report content.

    @raise Invalid_argument if the spec is empty or [jobs < 1], and
    [Failure] if a scenario/engine/backend name does not resolve
    (impossible for a spec from {!spec_of_json}). *)

val output_report_json : ?devices:bool -> out_channel -> report -> unit
(** Stream the report as JSON with a fixed key order.  [devices]
    (default [false]) appends the full per-device array - roll-ups stay
    a few KB however large the fleet is, so fleet-scale reports omit the
    raw rows unless asked. *)

val report_summary : report -> string
(** Short human-readable summary (used by the CLI and the cram test). *)
