open Artemis_util

exception Error of string * int * int

type stream = {
  mutable tokens : Scanner.located list;
  (* location of the most recently consumed token, so running off the end
     of a truncated token list still reports a position *)
  mutable last_line : int;
  mutable last_col : int;
}

(* [Scanner.tokenize] always terminates the list with [Eof], so a
   well-formed stream never runs dry; but a truncated or empty list must
   surface as a located parse error, never as an [Assert_failure]. *)
let truncated s =
  raise (Error ("unexpected end of input", s.last_line, s.last_col))

let peek s = match s.tokens with [] -> truncated s | t :: _ -> t

let advance s =
  match s.tokens with
  | [] -> truncated s
  | t :: rest ->
      s.last_line <- t.Scanner.line;
      s.last_col <- t.Scanner.col;
      s.tokens <- rest

let fail_at (loc : Scanner.located) fmt =
  Format.kasprintf (fun msg -> raise (Error (msg, loc.line, loc.col))) fmt

let expect_punct s p =
  let t = peek s in
  match t.token with
  | Scanner.Punct q when String.equal p q -> advance s
  | other -> fail_at t "expected %S but found %a" p Scanner.pp_token other

let expect_ident s =
  let t = peek s in
  match t.token with
  | Scanner.Ident name ->
      advance s;
      name
  | other -> fail_at t "expected an identifier but found %a" Scanner.pp_token other

let expect_int s =
  let t = peek s in
  match t.token with
  | Scanner.Int n ->
      advance s;
      n
  | other -> fail_at t "expected an integer but found %a" Scanner.pp_token other

let expect_energy s =
  let t = peek s in
  match t.token with
  | Scanner.Energy uj ->
      advance s;
      uj
  | other ->
      fail_at t "expected an energy amount (e.g. 3.4mJ, 500uJ) but found %a"
        Scanner.pp_token other

let expect_duration s =
  let t = peek s in
  match t.token with
  | Scanner.Duration d ->
      advance s;
      d
  | other ->
      fail_at t "expected a duration (e.g. 100ms, 5min) but found %a"
        Scanner.pp_token other

let expect_number s =
  let t = peek s in
  let negated =
    match t.token with
    | Scanner.Punct "-" ->
        advance s;
        true
    | _ -> false
  in
  let t = peek s in
  let magnitude =
    match t.token with
    | Scanner.Int n ->
        advance s;
        float_of_int n
    | Scanner.Float f ->
        advance s;
        f
    | other -> fail_at t "expected a number but found %a" Scanner.pp_token other
  in
  if negated then -.magnitude else magnitude

let expect_action s =
  let t = peek s in
  let name = expect_ident s in
  match Ast.action_of_string name with
  | Some a -> a
  | None -> fail_at t "unknown action %S" name

(* Accumulated clause state for one property. *)
type clauses = {
  mutable dp_task : string option;
  mutable on_fail : Ast.action option;
  mutable max_attempt : int option;
  mutable max_attempt_action : Ast.action option;
  mutable path : int option;
  mutable range : (float * float) option;
  (* true when the last clause parsed was maxAttempt, so that a following
     onFail binds to it (Figure 5, line 6) *)
  mutable pending_max_attempt : bool;
}

let empty_clauses () =
  {
    dp_task = None;
    on_fail = None;
    max_attempt = None;
    max_attempt_action = None;
    path = None;
    range = None;
    pending_max_attempt = false;
  }

let parse_clause s c =
  let t = peek s in
  match t.token with
  | Scanner.Ident "dpTask" ->
      advance s;
      expect_punct s ":";
      if c.dp_task <> None then fail_at t "duplicate dpTask clause";
      c.dp_task <- Some (expect_ident s);
      c.pending_max_attempt <- false;
      true
  | Scanner.Ident "onFail" ->
      advance s;
      expect_punct s ":";
      let action = expect_action s in
      if c.pending_max_attempt then begin
        c.max_attempt_action <- Some action;
        c.pending_max_attempt <- false
      end
      else if c.on_fail = None then c.on_fail <- Some action
      else fail_at t "duplicate onFail clause";
      true
  | Scanner.Ident "maxAttempt" ->
      advance s;
      expect_punct s ":";
      if c.max_attempt <> None then fail_at t "duplicate maxAttempt clause";
      c.max_attempt <- Some (expect_int s);
      c.pending_max_attempt <- true;
      true
  | Scanner.Ident "Path" ->
      advance s;
      expect_punct s ":";
      if c.path <> None then fail_at t "duplicate Path clause";
      c.path <- Some (expect_int s);
      c.pending_max_attempt <- false;
      true
  | Scanner.Ident "Range" ->
      advance s;
      expect_punct s ":";
      expect_punct s "[";
      let low = expect_number s in
      expect_punct s ",";
      let high = expect_number s in
      expect_punct s "]";
      if c.range <> None then fail_at t "duplicate Range clause";
      c.range <- Some (low, high);
      c.pending_max_attempt <- false;
      true
  | _ -> false

let required loc what = function
  | Some v -> v
  | None -> fail_at loc "property is missing its %s clause" what

let unexpected loc what kind =
  fail_at loc "%s clause is not allowed on a %s property" what kind

let finish_max_attempt loc c =
  match (c.max_attempt, c.max_attempt_action) with
  | None, None -> None
  | Some attempts, Some exhausted ->
      if attempts <= 0 then fail_at loc "maxAttempt must be positive";
      Some { Ast.attempts; exhausted }
  | Some _, None -> fail_at loc "maxAttempt needs its own onFail action"
  | None, Some _ -> assert false

let parse_property s =
  let start = peek s in
  let kind = expect_ident s in
  expect_punct s ":";
  let build c =
    match kind with
    | "maxTries" ->
        let n = expect_int s in
        fun () ->
          if n <= 0 then fail_at start "maxTries must be positive";
          if c.dp_task <> None then unexpected start "dpTask" kind;
          if c.range <> None then unexpected start "Range" kind;
          if finish_max_attempt start c <> None then
            unexpected start "maxAttempt" kind;
          Ast.Max_tries
            { n; on_fail = required start "onFail" c.on_fail; path = c.path }
    | "maxDuration" ->
        let limit = expect_duration s in
        fun () ->
          if c.dp_task <> None then unexpected start "dpTask" kind;
          if c.range <> None then unexpected start "Range" kind;
          if finish_max_attempt start c <> None then
            unexpected start "maxAttempt" kind;
          Ast.Max_duration
            { limit; on_fail = required start "onFail" c.on_fail; path = c.path }
    | "MITD" ->
        let limit = expect_duration s in
        fun () ->
          if c.range <> None then unexpected start "Range" kind;
          Ast.Mitd
            {
              limit;
              dp_task = required start "dpTask" c.dp_task;
              on_fail = required start "onFail" c.on_fail;
              max_attempt = finish_max_attempt start c;
              path = c.path;
            }
    | "collect" ->
        let n = expect_int s in
        fun () ->
          if n <= 0 then fail_at start "collect count must be positive";
          if c.range <> None then unexpected start "Range" kind;
          if finish_max_attempt start c <> None then
            unexpected start "maxAttempt" kind;
          Ast.Collect
            {
              n;
              dp_task = required start "dpTask" c.dp_task;
              on_fail = required start "onFail" c.on_fail;
              path = c.path;
            }
    | "period" ->
        let interval = expect_duration s in
        fun () ->
          if c.dp_task <> None then unexpected start "dpTask" kind;
          if c.range <> None then unexpected start "Range" kind;
          Ast.Period
            {
              interval;
              on_fail = required start "onFail" c.on_fail;
              max_attempt = finish_max_attempt start c;
              path = c.path;
            }
    | "minEnergy" ->
        let uj = expect_energy s in
        fun () ->
          if uj <= 0. then fail_at start "minEnergy must be positive";
          if c.dp_task <> None then unexpected start "dpTask" kind;
          if c.range <> None then unexpected start "Range" kind;
          if finish_max_attempt start c <> None then
            unexpected start "maxAttempt" kind;
          Ast.Min_energy
            { uj; on_fail = required start "onFail" c.on_fail; path = c.path }
    | "dpData" ->
        let var = expect_ident s in
        fun () ->
          if c.dp_task <> None then unexpected start "dpTask" kind;
          if finish_max_attempt start c <> None then
            unexpected start "maxAttempt" kind;
          let low, high = required start "Range" c.range in
          if low > high then fail_at start "Range lower bound exceeds upper bound";
          Ast.Dp_data
            {
              var;
              low;
              high;
              on_fail = required start "onFail" c.on_fail;
              path = c.path;
            }
    | other -> fail_at start "unknown property kind %S" other
  in
  let c = empty_clauses () in
  let finish = build c in
  while parse_clause s c do
    ()
  done;
  expect_punct s ";";
  finish ()

let parse_block s =
  let task = expect_ident s in
  (let t = peek s in
   match t.token with
   | Scanner.Punct ":" -> advance s
   | _ -> ());
  expect_punct s "{";
  let rec properties acc =
    let t = peek s in
    match t.token with
    | Scanner.Punct "}" ->
        advance s;
        List.rev acc
    | _ -> properties (parse_property s :: acc)
  in
  { Ast.task; properties = properties [] }

let puncts = [ "{"; "}"; ":"; ";"; "["; "]"; ","; "-" ]

let parse_exn src =
  let convert f =
    try f () with
    | Error (msg, line, col) ->
        failwith (Printf.sprintf "spec parse error at %d:%d: %s" line col msg)
    | Scanner.Lex_error (msg, line, col) ->
        failwith (Printf.sprintf "spec lex error at %d:%d: %s" line col msg)
  in
  convert (fun () ->
      let s =
        { tokens = Scanner.tokenize ~puncts src; last_line = 1; last_col = 1 }
      in
      let rec blocks acc =
        let t = peek s in
        match t.token with
        | Scanner.Eof -> List.rev acc
        | _ -> blocks (parse_block s :: acc)
      in
      blocks [])

let parse src =
  match parse_exn src with
  | spec -> Ok spec
  | exception Failure msg -> Result.Error msg
