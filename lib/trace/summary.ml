(* Rendered summaries must be byte-identical across runs and OCaml
   versions, so the hash table's iteration order must never reach the
   output: entries are fully ordered by (count descending, key
   ascending), a total order with no ties left to the fold order. *)
let tally pairs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun key ->
      Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    pairs;
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) tbl []
  |> List.sort (fun (ka, ca) (kb, cb) ->
         match Int.compare cb ca with 0 -> String.compare ka kb | c -> c)

let verdicts_by_monitor log =
  Log.events log
  |> List.filter_map (fun (e : Event.timed) ->
         match e.Event.event with
         | Event.Monitor_verdict { monitor; _ } -> Some monitor
         | _ -> None)
  |> tally

let actions_by_kind log =
  Log.events log
  |> List.filter_map (fun (e : Event.timed) ->
         match e.Event.event with
         | Event.Runtime_action { action; _ } -> Some action
         | _ -> None)
  |> tally

let attempts_by_task log =
  Log.events log
  |> List.filter_map (fun (e : Event.timed) ->
         match e.Event.event with
         | Event.Task_started { task; _ } -> Some task
         | _ -> None)
  |> tally

let render log =
  let section title rows =
    if rows = [] then []
    else
      (title ^ ":")
      :: List.map (fun (key, count) -> Printf.sprintf "  %-32s %d" key count) rows
  in
  String.concat "\n"
    (section "violations by monitor" (verdicts_by_monitor log)
    @ section "runtime actions" (actions_by_kind log)
    @ section "task start attempts" (attempts_by_task log))
