open Artemis_util

type t =
  | Boot
  | Reboot of { charging_delay : Time.t }
  | Power_failure of { during_task : string option }
  | Task_started of { task : string; attempt : int }
  | Task_completed of { task : string }
  | Monitor_verdict of { monitor : string; task : string; action : string }
  | Runtime_action of { action : string; task : string }
  | Path_started of { path : int }
  | Path_completed of { path : int }
  | Path_restarted of { path : int; reason : string }
  | Path_skipped of { path : int; reason : string }
  | Monitoring_suspended of { path : int }
  | Round_completed of { round : int }
  | Adaptation_staged of { id : int; bytes : int }
  | Adaptation_applied of { id : int; generation : int }
  | Adaptation_rejected of { id : int; reason : string }
  | App_completed
  | Horizon_reached of { reason : string }

type timed = { at : Time.t; event : t }

let pp ppf = function
  | Boot -> Format.fprintf ppf "boot"
  | Reboot { charging_delay } ->
      Format.fprintf ppf "reboot after %a charging" Time.pp charging_delay
  | Power_failure { during_task = Some t } ->
      Format.fprintf ppf "power failure during %s" t
  | Power_failure { during_task = None } ->
      Format.fprintf ppf "power failure between tasks"
  | Task_started { task; attempt } ->
      Format.fprintf ppf "start %s (attempt %d)" task attempt
  | Task_completed { task } -> Format.fprintf ppf "end %s" task
  | Monitor_verdict { monitor; task; action } ->
      Format.fprintf ppf "monitor %s: violation at %s -> %s" monitor task action
  | Runtime_action { action; task } ->
      Format.fprintf ppf "runtime action %s at %s" action task
  | Path_started { path } -> Format.fprintf ppf "path #%d started" path
  | Path_completed { path } -> Format.fprintf ppf "path #%d completed" path
  | Path_restarted { path; reason } ->
      Format.fprintf ppf "path #%d restarted (%s)" path reason
  | Path_skipped { path; reason } ->
      Format.fprintf ppf "path #%d skipped (%s)" path reason
  | Monitoring_suspended { path } ->
      Format.fprintf ppf "monitoring suspended until path #%d completes" path
  | Round_completed { round } -> Format.fprintf ppf "round %d completed" round
  | Adaptation_staged { id; bytes } ->
      Format.fprintf ppf "update #%d staged (%d bytes)" id bytes
  | Adaptation_applied { id; generation } ->
      Format.fprintf ppf "update #%d applied (generation %d)" id generation
  | Adaptation_rejected { id; reason } ->
      Format.fprintf ppf "update #%d rejected (%s)" id reason
  | App_completed -> Format.fprintf ppf "application completed"
  | Horizon_reached { reason } ->
      Format.fprintf ppf "simulation horizon reached (%s)" reason

let pp_timed ppf { at; event } = Format.fprintf ppf "[%a] %a" Time.pp at pp event
let to_string e = Format.asprintf "%a" pp e
