open Artemis_util
module Obs = Artemis_obs.Obs

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(* Event decomposition into (kind, task, path, detail) columns. *)
let event_columns = function
  | Event.Boot -> ("boot", "", "", "")
  | Event.Reboot { charging_delay } ->
      ("reboot", "", "", Printf.sprintf "charging_us=%d" (Time.to_us charging_delay))
  | Event.Power_failure { during_task } ->
      ("power_failure", Option.value during_task ~default:"", "", "")
  | Event.Task_started { task; attempt } ->
      ("task_started", task, "", Printf.sprintf "attempt=%d" attempt)
  | Event.Task_completed { task } -> ("task_completed", task, "", "")
  | Event.Monitor_verdict { monitor; task; action } ->
      ("monitor_verdict", task, "", Printf.sprintf "monitor=%s action=%s" monitor action)
  | Event.Runtime_action { action; task } -> ("runtime_action", task, "", action)
  | Event.Path_started { path } -> ("path_started", "", string_of_int path, "")
  | Event.Path_completed { path } -> ("path_completed", "", string_of_int path, "")
  | Event.Path_restarted { path; reason } ->
      ("path_restarted", "", string_of_int path, reason)
  | Event.Path_skipped { path; reason } ->
      ("path_skipped", "", string_of_int path, reason)
  | Event.Monitoring_suspended { path } ->
      ("monitoring_suspended", "", string_of_int path, "")
  | Event.Round_completed { round } ->
      ("round_completed", "", "", Printf.sprintf "round=%d" round)
  | Event.Adaptation_staged { id; bytes } ->
      ("adaptation_staged", "", "", Printf.sprintf "id=%d bytes=%d" id bytes)
  | Event.Adaptation_applied { id; generation } ->
      ("adaptation_applied", "", "", Printf.sprintf "id=%d generation=%d" id generation)
  | Event.Adaptation_rejected { id; reason } ->
      ("adaptation_rejected", "", "", Printf.sprintf "id=%d %s" id reason)
  | Event.App_completed -> ("app_completed", "", "", "")
  | Event.Horizon_reached { reason } -> ("horizon_reached", "", "", reason)

let log_to_csv log =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time_us,event,task,path,detail\n";
  List.iter
    (fun (e : Event.timed) ->
      let kind, task, path, detail = event_columns e.Event.event in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s,%s\n" (Time.to_us e.Event.at) kind
           (csv_quote task) path (csv_quote detail)))
    (Log.events log);
  Buffer.contents buf

let log_digest log = Digest.to_hex (Digest.string (Log.render_timeline log))

let outcome_string (s : Stats.t) =
  match s.Stats.outcome with
  | Stats.Completed -> "completed"
  | Stats.Did_not_finish reason -> "dnf:" ^ reason

(* The single source of truth for the stats schema: the JSON keys, the
   CSV header and the CSV row order all derive from this one list, so
   they cannot desync (the header used to rebuild a dummy record by
   hand, which silently drifted whenever a field was added). *)
let stats_field_specs :
    (string * (Stats.t -> [ `S of string | `I of int | `F of float ])) list =
  [
    ("outcome", fun s -> `S (outcome_string s));
    ("total_time_us", fun s -> `I (Time.to_us s.Stats.total_time));
    ("off_time_us", fun s -> `I (Time.to_us s.Stats.off_time));
    ("app_time_us", fun s -> `I (Time.to_us s.Stats.app_time));
    ("runtime_overhead_us", fun s -> `I (Time.to_us s.Stats.runtime_overhead));
    ("monitor_overhead_us", fun s -> `I (Time.to_us s.Stats.monitor_overhead));
    ("energy_total_uj", fun s -> `F (Energy.to_uj s.Stats.energy_total));
    ("energy_app_uj", fun s -> `F (Energy.to_uj s.Stats.energy_app));
    ("energy_runtime_uj", fun s -> `F (Energy.to_uj s.Stats.energy_runtime));
    ("energy_monitor_uj", fun s -> `F (Energy.to_uj s.Stats.energy_monitor));
    ("power_failures", fun s -> `I s.Stats.power_failures);
    ("reboots", fun s -> `I s.Stats.reboots);
    ("task_executions", fun s -> `I s.Stats.task_executions);
    ("task_completions", fun s -> `I s.Stats.task_completions);
    ("path_restarts", fun s -> `I s.Stats.path_restarts);
    ("path_skips", fun s -> `I s.Stats.path_skips);
  ]

let stats_fields s = List.map (fun (key, get) -> (key, get s)) stats_field_specs

(* [Json.float_lit] renders non-finite values as [null]: a bare %.3f
   turned a nan/inf stat (e.g. a zero-length run's derived ratio fed
   back in) into an unparseable document. *)
let float_lit = Json.float_lit

let stats_to_json s =
  let field (key, v) =
    let value =
      match v with
      | `S s -> Json.quote s
      | `I n -> string_of_int n
      | `F f -> float_lit f
    in
    Printf.sprintf "  \"%s\": %s" key value
  in
  "{\n" ^ String.concat ",\n" (List.map field (stats_fields s)) ^ "\n}\n"

let stats_csv_header = String.concat "," (List.map fst stats_field_specs)

let stats_to_csv_row s =
  String.concat ","
    (List.map
       (fun (_, v) ->
         match v with
         | `S str -> csv_quote str
         | `I n -> string_of_int n
         | `F f -> float_lit f)
       (stats_fields s))

(* --- metrics/stats reconciliation --- *)

(* The observability counters are bumped at the [Device.record]
   chokepoint - the same event stream [Stats] is derived from - so when
   the registry was enabled for the whole run the two must agree
   exactly.  Returns the mismatches as [(name, stats_value, counter)]. *)
let reconciled_counters =
  [
    ("task_executions", fun (s : Stats.t) -> s.Stats.task_executions);
    ("task_completions", fun s -> s.Stats.task_completions);
    ("power_failures", fun s -> s.Stats.power_failures);
    ("reboots", fun s -> s.Stats.reboots);
    ("path_restarts", fun s -> s.Stats.path_restarts);
    ("path_skips", fun s -> s.Stats.path_skips);
  ]

let reconcile_metrics s =
  List.filter_map
    (fun (name, get) ->
      let expected = get s in
      let got = Obs.counter_value (Obs.counter name) in
      if expected = got then None else Some (name, expected, got))
    reconciled_counters
