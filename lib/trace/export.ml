open Artemis_util

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(* Event decomposition into (kind, task, path, detail) columns. *)
let event_columns = function
  | Event.Boot -> ("boot", "", "", "")
  | Event.Reboot { charging_delay } ->
      ("reboot", "", "", Printf.sprintf "charging_us=%d" (Time.to_us charging_delay))
  | Event.Power_failure { during_task } ->
      ("power_failure", Option.value during_task ~default:"", "", "")
  | Event.Task_started { task; attempt } ->
      ("task_started", task, "", Printf.sprintf "attempt=%d" attempt)
  | Event.Task_completed { task } -> ("task_completed", task, "", "")
  | Event.Monitor_verdict { monitor; task; action } ->
      ("monitor_verdict", task, "", Printf.sprintf "monitor=%s action=%s" monitor action)
  | Event.Runtime_action { action; task } -> ("runtime_action", task, "", action)
  | Event.Path_started { path } -> ("path_started", "", string_of_int path, "")
  | Event.Path_completed { path } -> ("path_completed", "", string_of_int path, "")
  | Event.Path_restarted { path; reason } ->
      ("path_restarted", "", string_of_int path, reason)
  | Event.Path_skipped { path; reason } ->
      ("path_skipped", "", string_of_int path, reason)
  | Event.Monitoring_suspended { path } ->
      ("monitoring_suspended", "", string_of_int path, "")
  | Event.Round_completed { round } ->
      ("round_completed", "", "", Printf.sprintf "round=%d" round)
  | Event.App_completed -> ("app_completed", "", "", "")
  | Event.Horizon_reached { reason } -> ("horizon_reached", "", "", reason)

let log_to_csv log =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time_us,event,task,path,detail\n";
  List.iter
    (fun (e : Event.timed) ->
      let kind, task, path, detail = event_columns e.Event.event in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s,%s\n" (Time.to_us e.Event.at) kind
           (csv_quote task) path (csv_quote detail)))
    (Log.events log);
  Buffer.contents buf

let log_digest log = Digest.to_hex (Digest.string (Log.render_timeline log))

let outcome_string (s : Stats.t) =
  match s.Stats.outcome with
  | Stats.Completed -> "completed"
  | Stats.Did_not_finish reason -> "dnf:" ^ reason

let stats_fields (s : Stats.t) =
  [
    ("outcome", `S (outcome_string s));
    ("total_time_us", `I (Time.to_us s.Stats.total_time));
    ("off_time_us", `I (Time.to_us s.Stats.off_time));
    ("app_time_us", `I (Time.to_us s.Stats.app_time));
    ("runtime_overhead_us", `I (Time.to_us s.Stats.runtime_overhead));
    ("monitor_overhead_us", `I (Time.to_us s.Stats.monitor_overhead));
    ("energy_total_uj", `F (Energy.to_uj s.Stats.energy_total));
    ("energy_app_uj", `F (Energy.to_uj s.Stats.energy_app));
    ("energy_runtime_uj", `F (Energy.to_uj s.Stats.energy_runtime));
    ("energy_monitor_uj", `F (Energy.to_uj s.Stats.energy_monitor));
    ("power_failures", `I s.Stats.power_failures);
    ("reboots", `I s.Stats.reboots);
    ("task_executions", `I s.Stats.task_executions);
    ("task_completions", `I s.Stats.task_completions);
    ("path_restarts", `I s.Stats.path_restarts);
    ("path_skips", `I s.Stats.path_skips);
  ]

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let stats_to_json s =
  let field (key, v) =
    let value =
      match v with
      | `S s -> Printf.sprintf "\"%s\"" (json_escape s)
      | `I n -> string_of_int n
      | `F f -> Printf.sprintf "%.3f" f
    in
    Printf.sprintf "  \"%s\": %s" key value
  in
  "{\n" ^ String.concat ",\n" (List.map field (stats_fields s)) ^ "\n}\n"

let stats_csv_header =
  String.concat "," (List.map fst (stats_fields Stats.{
    outcome = Completed; total_time = Time.zero; off_time = Time.zero;
    app_time = Time.zero; runtime_overhead = Time.zero;
    monitor_overhead = Time.zero; energy_total = Energy.zero;
    energy_app = Energy.zero; energy_runtime = Energy.zero;
    energy_monitor = Energy.zero; power_failures = 0; reboots = 0;
    task_executions = 0; task_completions = 0; path_restarts = 0;
    path_skips = 0;
  }))

let stats_to_csv_row s =
  String.concat ","
    (List.map
       (fun (_, v) ->
         match v with
         | `S str -> csv_quote str
         | `I n -> string_of_int n
         | `F f -> Printf.sprintf "%.3f" f)
       (stats_fields s))
