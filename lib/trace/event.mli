(** Observable events of an intermittent execution.

    Both runtimes (ARTEMIS and the Mayfly baseline) log the same event
    vocabulary so traces are directly comparable; Figure 13 is rendered
    straight from such a log. *)

open Artemis_util

type t =
  | Boot  (** first power-on (hard reset, Section 4.1) *)
  | Reboot of { charging_delay : Time.t }
      (** back up after a power failure *)
  | Power_failure of { during_task : string option }
      (** brown-out; [during_task] is the interrupted task, if any *)
  | Task_started of { task : string; attempt : int }
      (** [attempt] counts executions of this task since it last completed *)
  | Task_completed of { task : string }
  | Monitor_verdict of { monitor : string; task : string; action : string }
      (** a monitor reported a property violation and proposed an action *)
  | Runtime_action of { action : string; task : string }
      (** the arbitrated action the runtime actually took *)
  | Path_started of { path : int }
  | Path_completed of { path : int }
  | Path_restarted of { path : int; reason : string }
  | Path_skipped of { path : int; reason : string }
  | Monitoring_suspended of { path : int }
      (** completePath: rest of the path runs unmonitored (Table 1) *)
  | Round_completed of { round : int }
      (** reactive execution: one full pass over the application's paths
          finished and the next begins *)
  | Adaptation_staged of { id : int; bytes : int }
      (** a live property update arrived over the radio and was written
          to the NVM staging region (PR 4) *)
  | Adaptation_applied of { id : int; generation : int }
      (** the update committed: the generation flip swapped the active
          monitor suite *)
  | Adaptation_rejected of { id : int; reason : string }
      (** on-device validation refused the staged update *)
  | App_completed
  | Horizon_reached of { reason : string }
      (** the simulation gave up: treated as non-termination (DNF) *)

type timed = { at : Time.t; event : t }

val pp : Format.formatter -> t -> unit
val pp_timed : Format.formatter -> timed -> unit
val to_string : t -> string
