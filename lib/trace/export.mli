(** Machine-readable exports of traces and run statistics, for plotting
    the reproduced figures outside the harness. *)

val log_to_csv : Log.t -> string
(** Columns: [time_us,event,task,path,detail]; one row per event, header
    included, RFC-4180 quoting for the detail field. *)

val log_digest : Log.t -> string
(** Hex MD5 of the rendered timeline: two runs are byte-identical iff
    their digests are equal (the fault-injection replay check). *)

val stats_to_json : Stats.t -> string
(** A flat JSON object (hand-rendered; keys are stable and documented by
    the implementation). *)

val stats_to_csv_row : Stats.t -> string
val stats_csv_header : string
(** Matching header/row pair for aggregating many runs into one CSV. *)
