(** Machine-readable exports of traces and run statistics, for plotting
    the reproduced figures outside the harness. *)

val log_to_csv : Log.t -> string
(** Columns: [time_us,event,task,path,detail]; one row per event, header
    included, RFC-4180 quoting for the detail field. *)

val log_digest : Log.t -> string
(** Hex MD5 of the rendered timeline: two runs are byte-identical iff
    their digests are equal (the fault-injection replay check). *)

val stats_to_json : Stats.t -> string
(** A flat JSON object (hand-rendered; keys are stable and documented by
    the implementation).  Always valid JSON: non-finite floats render as
    [null] via {!Artemis_util.Json.float_lit}. *)

val stats_to_csv_row : Stats.t -> string
val stats_csv_header : string
(** Matching header/row pair for aggregating many runs into one CSV.
    Both derive from the same field-spec list as {!stats_to_json}, so
    header, row and JSON keys cannot desync. *)

val reconcile_metrics : Stats.t -> (string * int * int) list
(** Cross-check the observability counters against the log-derived
    stats.  Returns [(name, stats_value, counter_value)] for every
    counter that disagrees - empty when the metrics registry was enabled
    for the whole run (the counters are bumped at the same
    [Device.record] chokepoint the stats are computed from). *)
