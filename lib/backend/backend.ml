module Nvm = Artemis_nvm.Nvm
module Device = Artemis_device.Device
module Task = Artemis_task.Task

type outcome = Committed | Interrupted

type instance = {
  recover : unit -> unit;
  execute :
    task:Task.t ->
    context:(unit -> Task.context) ->
    commit:(unit -> unit) ->
    outcome;
  fram_bytes : unit -> int;
}

module type S = sig
  val name : string
  val description : string

  val injection_sites : string list
  (** Extra crash windows this backend's commit protocol exposes, in
      numbering order (appended after the NVM and runtime sites by the
      fault-injection engine).  Empty for backends whose commit is the
      single NVM transaction commit. *)

  val bodies : Task.app -> (string * (Task.context -> unit)) list
  (** The WAR-analysis surface: every distinct unit of re-execution,
      named, in first-appearance order.  All current backends re-execute
      whole task bodies, so this is {!Task.bodies} - a backend with a
      different re-execution granularity would override it. *)

  val setup : probe:(string -> unit) -> Device.t -> Task.app -> instance
  (** Allocate the backend's persistent cells on [device] and return the
      per-run protocol hooks.  Called once per run by the runtime's
      state construction; [probe] is the fault-injection hook for the
      backend's own [injection_sites]. *)
end

type b = (module S)

let name (module B : S) = B.name
let description (module B : S) = B.description
let injection_sites (module B : S) = B.injection_sites
let bodies (module B : S) app = B.bodies app
let setup (module B : S) ~probe device app = B.setup ~probe device app

(* The reference backend: the paper's ARTEMIS task-transaction protocol
   (task body inside one NVM transaction that also flips the scheduler
   cursor; ImmortalThreads-style monitor calls are layered above by the
   runtime).  It allocates no cells of its own and must reproduce the
   pre-refactor [Runtime.execute_task] behaviour exactly - the runtime
   matrix measures every other backend against it. *)
module Immortal_tasks : S = struct
  let name = "immortal"

  let description =
    "ARTEMIS task transactions (ImmortalThreads-style reference)"

  let injection_sites = []
  let bodies = Task.bodies

  let setup ~probe device _app =
    ignore probe;
    let nvm = Device.nvm device in
    {
      recover = (fun () -> ());
      execute =
        (fun ~task ~context ~commit ->
          Nvm.begin_tx nvm;
          match
            Device.consume device Device.App ~during:task.Task.name
              ~power:task.Task.power ~duration:task.Task.duration ()
          with
          | Device.Interrupted | Device.Starved ->
              (* the open transaction was rolled back by the power failure *)
              Interrupted
          | Device.Completed ->
              task.Task.body (context ());
              commit ();
              Nvm.commit_tx nvm;
              Committed);
      fram_bytes = (fun () -> 0);
    }
end

let immortal : b = (module Immortal_tasks)
