(** The unified intermittent-runtime backend interface (PR 10).

    The ARTEMIS runtime ({!Artemis_runtime.Runtime}) owns the scheduler
    loop, the monitor-call machinery and verdict application; what
    varies between intermittent-system families is {e how a task's
    effects become durable} and what that protocol costs.  A [Backend]
    abstracts exactly that seam:

    - {b execute}: run one task attempt and commit its effects together
      with the runtime's cursor advance (passed in as [commit]);
    - {b recover}: reboot-time repair, called at every scheduler loop
      entry (must be a cheap no-op when there is nothing to repair);
    - {b bodies}: the backend's unit-of-re-execution surface for the
      static WAR-hazard pass ({!Artemis_consistency.War});
    - {b setup}: the backend's own persistent NVM cells, allocated once
      so the stable-footprint oracle holds across crashes.

    Because every backend runs the same monitors through the same
    runtime, monitor verdicts must agree across backends on a given
    scenario - the invariant the runtime matrix
    ([Artemis_faultsim.Matrix]) checks - while energy and recovery cost
    columns differ per family. *)

module Nvm = Artemis_nvm.Nvm
module Device = Artemis_device.Device
module Task = Artemis_task.Task

type outcome =
  | Committed  (** the task body ran and its effects are durable *)
  | Interrupted
      (** a power failure (or starvation) cut the attempt short; all
          task effects were rolled back or are recoverable by
          [recover] *)

type instance = {
  recover : unit -> unit;
      (** called at every scheduler loop entry, before the cursor is
          read: finish any commit a crash interrupted.  Must cost one
          cell read when there is nothing to do. *)
  execute :
    task:Task.t ->
    context:(unit -> Task.context) ->
    commit:(unit -> unit) ->
    outcome;
      (** run one attempt of [task].  [context ()] builds the task
          context (evaluated after the task's energy was consumed, so
          [now] is the completion time); [commit ()] performs the
          runtime's own cursor write and must be made durable atomically
          with the task's effects. *)
  fram_bytes : unit -> int;
      (** declared FRAM bytes of the cells [setup] allocated (the
          backend's own footprint, excluded from the shared runtime's). *)
}

module type S = sig
  val name : string
  val description : string

  val injection_sites : string list
  (** Extra crash windows this backend's commit protocol exposes, in
      numbering order (appended after the NVM and runtime sites by the
      fault-injection engine).  Empty for backends whose commit point is
      the single NVM transaction commit. *)

  val bodies : Task.app -> (string * (Task.context -> unit)) list
  (** The WAR-analysis surface: every distinct unit of re-execution,
      named, in first-appearance order. *)

  val setup : probe:(string -> unit) -> Device.t -> Task.app -> instance
  (** Allocate the backend's persistent cells on [device] and return the
      per-run protocol hooks.  Called once per run. *)
end

type b = (module S)

val name : b -> string
val description : b -> string
val injection_sites : b -> string list
val bodies : b -> Task.app -> (string * (Task.context -> unit)) list
val setup : b -> probe:(string -> unit) -> Device.t -> Task.app -> instance

val immortal : b
(** The reference backend: the paper's ARTEMIS task-transaction
    protocol.  Allocates no cells and reproduces the pre-refactor
    runtime behaviour exactly; the runtime matrix measures every other
    backend against it. *)
