open Artemis_util

type t = Fixed_delay of Time.t | From_harvester of Harvester.t

let recharge policy ~now ~capacitor =
  match policy with
  | Fixed_delay d ->
      Capacitor.recharge_full capacitor;
      Some d
  | From_harvester h ->
      (* [time_to_harvest] inverts the energy integral through a float
         seconds->us conversion that rounds to nearest, so the returned
         window can undershoot the deficit by a fraction of a sample -
         charging exactly the harvested integral then leaves the level a
         hair below [on_threshold] and the device would reboot still
         unable to turn on.  Top up: keep extending the window (by at
         least 1 us, the clock granule) until the turn-on threshold is
         actually reached. *)
      let rec top_up now waited =
        if Capacitor.can_turn_on capacitor then Some waited
        else
          let deficit = Capacitor.deficit_to_turn_on capacitor in
          match Harvester.time_to_harvest h ~now deficit with
          | None -> None (* harvest exhausted below threshold: starved *)
          | Some dt ->
              let dt = Time.max dt (Time.of_us 1) in
              Capacitor.charge capacitor
                (Harvester.harvested h ~from_:now ~until:(Time.add now dt));
              top_up (Time.add now dt) (Time.add waited dt)
      in
      top_up now Time.zero
