(** Energy-storage capacitor of the simulated batteryless device.

    The device runs from the capacitor alone (the standard intermittent-
    computing assumption: harvesting while computing is negligible next to
    the active draw).  Execution drains it; when the level falls to the
    turn-off threshold the device browns out, and it may boot again only
    once the level has been charged back up to the turn-on threshold. *)

open Artemis_util

type t

val create :
  capacity:Energy.energy ->
  on_threshold:Energy.energy ->
  off_threshold:Energy.energy ->
  ?initial:Energy.energy ->
  unit ->
  t
(** @raise Invalid_argument unless
    [off_threshold < on_threshold <= capacity] and the optional initial
    level is within [off_threshold, capacity] (default: full). *)

val capacity : t -> Energy.energy
val on_threshold : t -> Energy.energy
val off_threshold : t -> Energy.energy
val level : t -> Energy.energy

val usable : t -> Energy.energy
(** Energy available before brown-out: [level - off_threshold]. *)

val usable_budget : t -> Energy.energy
(** Usable energy of a fully charged capacitor:
    [capacity - off_threshold].  This is the per-charge task budget. *)

type drain_result =
  | Drained            (** the full request was satisfied *)
  | Depleted of Energy.energy
      (** brown-out: only this much was drawn before the level hit the
          off threshold *)

val drain : t -> Energy.energy -> drain_result

val charge : t -> Energy.energy -> unit
(** Add energy, clamped at capacity. *)

val recharge_full : t -> unit
(** Used by the fixed-charging-delay policy: after the modelled delay the
    capacitor is back at capacity. *)

val can_turn_on : t -> bool
(** Level has reached the turn-on threshold. *)

val deficit_to_turn_on : t -> Energy.energy
(** Energy still to harvest before the device can boot (zero if it can). *)
