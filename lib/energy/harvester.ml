open Artemis_util

type t =
  | Constant of Energy.power
  | Duty_cycle of { period : Time.t; on_fraction : float; rate : Energy.power }
  | Trace of (Time.t * Energy.power) array

let validate = function
  | Constant p ->
      if Energy.to_uw p < 0. then Error "constant rate is negative" else Ok ()
  | Duty_cycle { period; on_fraction; rate } ->
      if Time.(period <= zero) then Error "duty-cycle period must be positive"
      else if on_fraction < 0. || on_fraction > 1. then
        Error "on_fraction must be within [0, 1]"
      else if Energy.to_uw rate < 0. then Error "duty-cycle rate is negative"
      else Ok ()
  | Trace arr ->
      if Array.length arr = 0 then Error "empty trace"
      else if not (Time.equal (fst arr.(0)) Time.zero) then
        Error "trace must start at time 0"
      else
        let rec check i =
          if i >= Array.length arr then Ok ()
          else if Time.(fst arr.(i - 1) >= fst arr.(i)) then
            Error "trace times must be strictly increasing"
          else if Energy.to_uw (snd arr.(i)) < 0. then
            Error "trace rate is negative"
          else check (i + 1)
        in
        check 1

let duty_on_len period on_fraction =
  Time.of_us
    (int_of_float (Float.round (float_of_int (Time.to_us period) *. on_fraction)))

(* --- Trace lookup ---

   Real harvesting traces (NREL solar, office RF) run to hundreds of
   thousands of samples, and the charging policy queries them on every
   recharge, so the old O(n) rewind-and-scan dominated long campaigns.
   Lookup is now a binary search, fronted by a one-entry monotone cursor:
   the simulator's queries move forward in time, so the answer is almost
   always the cached segment or the one right after it.  Both caches key
   on the array's physical identity, which keeps the public
   [Trace of array] constructor (and every existing literal) unchanged. *)

(* Largest [i] with [fst arr.(i) <= at], or [-1] if [at] precedes the
   first sample. *)
let bsearch arr at =
  let n = Array.length arr in
  if n = 0 || Time.(at < fst arr.(0)) then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Time.(fst arr.(mid) <= at) then lo := mid else hi := mid - 1
    done;
    !lo
  end

(* Both memo caches are domain-local (PR 5): worker domains of the
   parallel campaign runner each get their own, so concurrent sweeps
   never invalidate (or race on) each other's cursor.  Results are
   bit-identical to the naive scan regardless of cache state, so
   per-domain caches only affect speed, never values. *)
let cursor_key :
    ((Time.t * Energy.power) array ref * int ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref [||], ref (-1)))

let seg_index arr at =
  let cursor_arr, cursor_idx = Domain.DLS.get cursor_key in
  let n = Array.length arr in
  let holds j =
    j >= -1 && j < n
    && (j = -1 || Time.(fst arr.(j) <= at))
    && (j + 1 >= n || Time.(at < fst arr.(j + 1)))
  in
  if !cursor_arr != arr then begin
    cursor_arr := arr;
    cursor_idx := bsearch arr at
  end
  else begin
    let i = !cursor_idx in
    if holds i then ()
    else if holds (i + 1) then cursor_idx := i + 1
    else if holds (i + 2) then cursor_idx := i + 2
    else cursor_idx := bsearch arr at
  end;
  !cursor_idx

(* Prefix sums: [p.(i)] is the energy harvested from time 0 to the start
   of segment [i], accumulated left to right exactly as the naive scan
   did, so [integral] stays bit-identical to the O(n) version the
   differential test replays. *)
let prefix_key :
    ((Time.t * Energy.power) array ref * Energy.energy array ref)
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref [||], ref [||]))

let prefixes arr =
  let prefix_arr, prefix_sums = Domain.DLS.get prefix_key in
  if !prefix_arr != arr then begin
    let n = Array.length arr in
    let p = Array.make n Energy.zero in
    let acc = ref Energy.zero in
    for i = 0 to n - 2 do
      let seg_start, rate = arr.(i) in
      let seg_end = fst arr.(i + 1) in
      acc := Energy.add !acc (Energy.consumed rate (Time.sub seg_end seg_start));
      p.(i + 1) <- !acc
    done;
    prefix_arr := arr;
    prefix_sums := p
  end;
  !prefix_sums

let rate_at t at =
  match t with
  | Constant p -> p
  | Duty_cycle { period; on_fraction; rate } ->
      let phase = Time.of_us (Time.to_us at mod Time.to_us period) in
      if Time.(phase < duty_on_len period on_fraction) then rate else Energy.uw 0.
  | Trace arr ->
      let i = seg_index arr at in
      if i < 0 then Energy.uw 0. else snd arr.(i)

(* Integral of the incoming power from time 0 to [at]. *)
let integral t at =
  match t with
  | Constant p -> Energy.consumed p at
  | Duty_cycle { period; on_fraction; rate } ->
      let on_len = duty_on_len period on_fraction in
      let cycles = Time.to_us at / Time.to_us period in
      let phase = Time.of_us (Time.to_us at mod Time.to_us period) in
      let per_cycle = Energy.consumed rate on_len in
      let partial = Energy.consumed rate (Time.min phase on_len) in
      Energy.add (Energy.scale per_cycle (float_of_int cycles)) partial
  | Trace arr ->
      let i = seg_index arr at in
      if i < 0 then Energy.zero
      else
        let p = (prefixes arr).(i) in
        let seg_start, rate = arr.(i) in
        if Time.(seg_start < at) then
          Energy.add p (Energy.consumed rate (Time.sub at seg_start))
        else p

let harvested t ~from_ ~until =
  if Time.(until < from_) then invalid_arg "Harvester.harvested: until < from";
  Energy.sub_exact (integral t until) (integral t from_)

let time_to_harvest t ~now needed =
  if Energy.(needed <= Energy.zero) then Some Time.zero
  else
    match t with
    | Constant p ->
        if Energy.to_uw p <= 0. then None
        else Some (Energy.time_to_consume p needed)
    | Duty_cycle { period; on_fraction; rate } ->
        let on_len = duty_on_len period on_fraction in
        let per_cycle = Energy.consumed rate on_len in
        if Energy.to_uj per_cycle <= 0. then None
        else
          (* Scan forward cycle by cycle; bounded because each full cycle
             collects a fixed positive amount. *)
          let target = Energy.add (integral t now) needed in
          let cycles_hint =
            int_of_float (Energy.to_uj target /. Energy.to_uj per_cycle)
          in
          let rec refine at =
            let have = integral t at in
            if Energy.(target <= have) then at
            else
              let missing = Energy.sub_exact target have in
              let r = rate_at t at in
              if Energy.to_uw r > 0. then
                (* the microsecond floor guarantees progress when the
                   remaining energy rounds to less than 1 us of harvesting *)
                let step = Time.max (Time.of_us 1) (Energy.time_to_consume r missing) in
                refine (Time.add at step)
              else
                (* inside the off segment: jump to the next period start *)
                let next =
                  Time.of_us
                    ((Time.to_us at / Time.to_us period + 1) * Time.to_us period)
                in
                refine next
          in
          let start = Time.scale period (Stdlib.max 0 (cycles_hint - 1)) in
          let finish = refine (Time.max now start) in
          Some (Time.sub finish now)
    | Trace arr ->
        let n = Array.length arr in
        let rec scan i at remaining =
          if Energy.(remaining <= Energy.zero) then Some (Time.sub at now)
          else if i >= n - 1 then
            let rate = snd arr.(n - 1) in
            if Energy.to_uw rate <= 0. then None
            else Some (Time.sub (Time.add at (Energy.time_to_consume rate remaining)) now)
          else
            let seg_end = fst arr.(i + 1) in
            if Time.(seg_end <= at) then scan (i + 1) at remaining
            else
              let rate = snd arr.(i) in
              let seg_energy = Energy.consumed rate (Time.sub seg_end at) in
              if Energy.(remaining <= seg_energy) && Energy.to_uw rate > 0. then
                Some (Time.sub (Time.add at (Energy.time_to_consume rate remaining)) now)
              else scan (i + 1) seg_end (Energy.sub_exact remaining seg_energy)
        in
        scan (Stdlib.max (seg_index arr now) 0) now needed
