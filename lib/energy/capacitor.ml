open Artemis_util

type t = {
  capacity : Energy.energy;
  on_threshold : Energy.energy;
  off_threshold : Energy.energy;
  mutable level : Energy.energy;
}

type drain_result = Drained | Depleted of Energy.energy

let create ~capacity ~on_threshold ~off_threshold ?initial () =
  let open Energy in
  if not (off_threshold < on_threshold && on_threshold <= capacity) then
    invalid_arg "Capacitor.create: need off < on <= capacity";
  let initial = match initial with Some i -> i | None -> capacity in
  if not (off_threshold <= initial && initial <= capacity) then
    invalid_arg "Capacitor.create: initial level out of range";
  { capacity; on_threshold; off_threshold; level = initial }

let capacity t = t.capacity
let on_threshold t = t.on_threshold
let off_threshold t = t.off_threshold
let level t = t.level
let usable t = Energy.sub t.level t.off_threshold
let usable_budget t = Energy.sub t.capacity t.off_threshold

let drain t e =
  let available = usable t in
  if Energy.(e <= available) then begin
    t.level <- Energy.sub t.level e;
    Drained
  end
  else begin
    t.level <- t.off_threshold;
    Depleted available
  end

let charge t e = t.level <- Energy.min t.capacity (Energy.add t.level e)
let recharge_full t = t.level <- t.capacity
let can_turn_on t = Energy.(t.on_threshold <= t.level)

let deficit_to_turn_on t =
  if can_turn_on t then Energy.zero else Energy.sub t.on_threshold t.level
