(** How long the device stays dark after a power failure.

    The paper's evaluation treats the charging time as the swept
    independent variable (1-10 minutes, Figure 12), so the primary policy
    reproduces exactly that; the harvester-driven policy derives the delay
    from a {!Harvester.t} model instead, for experiments beyond the
    paper. *)

open Artemis_util

type t =
  | Fixed_delay of Time.t
      (** every power failure costs exactly this charging time, after
          which the capacitor is fully recharged (the paper's setup) *)
  | From_harvester of Harvester.t
      (** charge with the harvester until the capacitor reaches its
          turn-on threshold; the capacitor level then reflects exactly the
          harvested energy *)

val recharge :
  t -> now:Time.t -> capacitor:Capacitor.t -> Time.t option
(** Apply the policy after a brown-out at absolute time [now]: charges
    [capacitor] and returns the off-time, or [None] when the harvester can
    never bring the device back (permanent starvation).  On [Some _] the
    capacitor is guaranteed to have reached its turn-on threshold, even
    when the harvester's integral inversion rounds the charging window
    down by a fraction of a sample. *)
