(** ETAP-style static energy-admissibility analysis (PR 9).

    Bounds the worst-case cost of a {e single monitor call} per property
    before deployment, from three ingredients: the {!Artemis_fsm.Table}
    lowering's per-(state, event-kind) structural worst case (guard scan
    ops, fired-body ops, FRAM writes), the {!Artemis_device.Cost_model}
    cycle constants, and the deployment alternative's dispatch pricing.
    The bound composes with the capacitor/charging-policy profile to
    classify each property:

    - {b progresses}: the bound fits the charge level every reboot is
      guaranteed to start from;
    - {b marginal}: the bound fits a full charge but not the guaranteed
      reboot level (a harvester that stops at the turn-on threshold may
      need several attempts);
    - {b may livelock}: the bound exceeds the usable budget of a full
      charge, so the call can never commit and will retry forever.

    Soundness against the simulator is by construction: the runtime
    charges monitor work through the same {!dispatch_cost}/{!step_cost}
    functions and the same (ceiling) cycle conversion, and the bound
    adds the structural margin on top - the bound-domination QCheck
    harness in the test suite pins the contract across engines and
    injected-failure schedules. *)

open Artemis_util
module Cost_model = Artemis_device.Cost_model
module Device = Artemis_device.Device
module Capacitor = Artemis_energy.Capacitor
module Charging_policy = Artemis_energy.Charging_policy
module Ast = Artemis_fsm.Ast

(** {2 Deployment alternatives}

    Canonical definition of the paper's Section 7 implementation
    alternatives; [Runtime.monitor_deployment] re-exports it, so the
    simulator and this analysis can never price a deployment
    differently. *)

type deployment =
  | Separate_module
  | Inlined
  | External_wireless of { radio_power : Energy.power; round_trip : Time.t }

val deployment_label : deployment -> string

val dispatch_cost : Cost_model.t -> deployment -> Energy.power * Time.t
(** What the simulator charges once per monitor call. *)

val step_cost : Cost_model.t -> deployment -> Energy.power * Time.t
(** What the simulator charges per watching property step. *)

(** {2 Per-property bounds} *)

type bound = {
  b_property : string;
  b_worst_state : string;  (** ["-"] when no transition can ever fire *)
  b_worst_kind : string;  (** ["start"], ["end"] or ["-"] *)
  b_step_cycles : int;  (** flat per-property step constant *)
  b_guard_cycles : int;  (** structural margin: candidate guard scan *)
  b_body_cycles : int;  (** structural margin: worst fired body *)
  b_write_cycles : int;  (** structural margin: fired body's FRAM writes *)
  b_step_time : Time.t;
  b_step_energy : Energy.energy;  (** this property's share of one call *)
  b_call_time : Time.t;  (** dispatch + step: bound if deployed alone *)
  b_call_energy : Energy.energy;
}

val property_bound :
  ?deployment:deployment -> model:Cost_model.t -> Ast.machine -> bound
(** Lower [machine] with {!Artemis_fsm.Table.compile} and bound one
    call.  @raise Failure on an ill-typed machine. *)

val suite_call_bound :
  ?deployment:deployment -> model:Cost_model.t -> bound list -> Energy.energy
(** One dispatch plus every property's step share: the worst case of a
    single call against a whole deployed suite (every property may watch
    the same event). *)

(** {2 Charge budget and classification} *)

type budget = {
  usable : Energy.energy;  (** full charge minus the off threshold *)
  reboot : Energy.energy;  (** usable energy guaranteed after a recharge *)
  policy_label : string;
}

val budget : capacitor:Capacitor.t -> policy:Charging_policy.t -> budget
val budget_of_device : Device.t -> budget

type classification = Progresses | Marginal | May_livelock

val classify : budget -> bound -> classification
val classification_label : classification -> string

(** {2 Admission} *)

val admit :
  ?deployment:deployment ->
  model:Cost_model.t ->
  budget:budget ->
  Ast.machine list ->
  (unit, string) result
(** [Error reason] (prefixed ["energy-inadmissible: "]) if any machine
    classifies as {!May_livelock}.  [Runtime] installs this as the
    adaptation validate step's admission check, so over-budget OTA
    updates are rejected on the wire-protocol path. *)

(** {2 Reports} *)

type entry = {
  e_origin : string;  (** ["deployed"] or ["update #N"] *)
  e_bound : bound;
  e_class : classification;
}

val analyze :
  ?deployment:deployment ->
  model:Cost_model.t ->
  budget:budget ->
  origin:string ->
  Ast.machine list ->
  entry list

val render_human :
  scenario:string ->
  deployment:deployment ->
  model:Cost_model.t ->
  budget:budget ->
  entry list ->
  Buffer.t ->
  unit

val render_json :
  scenario:string ->
  deployment:deployment ->
  model:Cost_model.t ->
  budget:budget ->
  entry list ->
  Buffer.t ->
  unit
(** Hand-rendered JSON with a fixed key order, one line. *)
