open Artemis_util
module Cost_model = Artemis_device.Cost_model
module Device = Artemis_device.Device
module Capacitor = Artemis_energy.Capacitor
module Charging_policy = Artemis_energy.Charging_policy
module Ast = Artemis_fsm.Ast
module Table = Artemis_fsm.Table

(* ------------------------------------------------------------------ *)
(* Deployment alternatives (Section 7).  This is the canonical type;
   Runtime re-exports it so the simulator and the static analysis price
   monitor calls from the same definition and can never drift. *)

type deployment =
  | Separate_module
  | Inlined
  | External_wireless of { radio_power : Energy.power; round_trip : Time.t }

let deployment_label = function
  | Separate_module -> "separate-module"
  | Inlined -> "inlined"
  | External_wireless _ -> "external-wireless"

(* (power, duration) the simulator charges once per monitor call. *)
let dispatch_cost model = function
  | Separate_module ->
      ( Cost_model.overhead_power model,
        Cost_model.cycles_to_time model
          model.Cost_model.artemis_monitor_dispatch_cycles )
  | Inlined -> (Cost_model.overhead_power model, Time.zero)
  | External_wireless { radio_power; round_trip } -> (radio_power, round_trip)

(* (power, duration) the simulator charges per watching property step. *)
let step_cost model = function
  | Separate_module ->
      ( Cost_model.overhead_power model,
        Cost_model.cycles_to_time model
          model.Cost_model.artemis_monitor_cycles_per_property )
  | Inlined ->
      ( Cost_model.overhead_power model,
        Cost_model.cycles_to_time model
          (model.Cost_model.artemis_monitor_cycles_per_property / 2) )
  | External_wireless _ -> (Cost_model.overhead_power model, Time.zero)

(* ------------------------------------------------------------------ *)
(* Per-property worst-case single-call bound *)

type bound = {
  b_property : string;
  b_worst_state : string;  (* "-" when no transition can ever fire *)
  b_worst_kind : string;  (* "start" | "end" | "-" *)
  b_step_cycles : int;  (* flat per-property step constant *)
  b_guard_cycles : int;  (* structural: candidate guard scan *)
  b_body_cycles : int;  (* structural: worst fired body *)
  b_write_cycles : int;  (* structural: FRAM writes of the fired body *)
  b_step_time : Time.t;
  b_step_energy : Energy.energy;  (* this property's share of one call *)
  b_call_time : Time.t;  (* dispatch + step: bound if deployed alone *)
  b_call_energy : Energy.energy;
}

(* Worst (state, kind) of a lowered machine under [model], weighing guard
   and body ops at [table_op_cycles] and FRAM writes at
   [nvm_write_cycles].  Structural cycles are an additive margin over the
   flat per-property constant the simulator charges: the simulator's
   charge can therefore never exceed the bound, while the bound tracks
   what the real MSP430 monitor would additionally pay to run the guard
   and body code. *)
let worst_structure model table =
  let open Cost_model in
  let best = ref (-1, (0, 0, 0, "-", "-")) in
  List.iter
    (fun (c : Table.step_cost) ->
      let guard_cy = c.Table.cost_guard_ops * model.table_op_cycles in
      let body_cy = c.Table.cost_body_ops * model.table_op_cycles in
      let write_cy = c.Table.cost_nvm_writes * model.nvm_write_cycles in
      let total = guard_cy + body_cy + write_cy in
      if total > fst !best then
        best :=
          ( total,
            ( guard_cy,
              body_cy,
              write_cy,
              c.Table.cost_state,
              if c.Table.cost_start then "start" else "end" ) ))
    (Table.step_costs table);
  snd !best

let property_bound ?(deployment = Separate_module) ~model machine =
  let table = Table.compile machine in
  let guard_cy, body_cy, write_cy, state, kind = worst_structure model table in
  let off_device = match deployment with External_wireless _ -> true | _ -> false in
  let flat_cycles =
    match deployment with
    | Separate_module -> model.Cost_model.artemis_monitor_cycles_per_property
    | Inlined -> model.Cost_model.artemis_monitor_cycles_per_property / 2
    | External_wireless _ -> 0
  in
  let guard_cy, body_cy, write_cy =
    if off_device then (0, 0, 0) else (guard_cy, body_cy, write_cy)
  in
  let step_power, _ = step_cost model deployment in
  let step_time =
    if off_device then Time.zero
    else
      Cost_model.cycles_to_time model
        (flat_cycles + guard_cy + body_cy + write_cy)
  in
  let step_energy = Energy.consumed step_power step_time in
  let dispatch_power, dispatch_time = dispatch_cost model deployment in
  let dispatch_energy =
    Energy.consumed dispatch_power dispatch_time
  in
  {
    b_property = machine.Ast.machine_name;
    b_worst_state = state;
    b_worst_kind = kind;
    b_step_cycles = flat_cycles;
    b_guard_cycles = guard_cy;
    b_body_cycles = body_cy;
    b_write_cycles = write_cy;
    b_step_time = step_time;
    b_step_energy = step_energy;
    b_call_time = Time.add dispatch_time step_time;
    b_call_energy = Energy.add dispatch_energy step_energy;
  }

(* One monitor call steps every property that watches the event, so the
   whole-suite worst case is one dispatch plus every property's step
   share. *)
let suite_call_bound ?(deployment = Separate_module) ~model bounds =
  let dispatch_power, dispatch_time = dispatch_cost model deployment in
  let dispatch_energy =
    Energy.consumed dispatch_power dispatch_time
  in
  List.fold_left
    (fun acc b -> Energy.add acc b.b_step_energy)
    dispatch_energy bounds

(* ------------------------------------------------------------------ *)
(* Charge budget *)

type budget = {
  usable : Energy.energy;  (* capacity - off threshold: best case *)
  reboot : Energy.energy;  (* guaranteed usable right after a recharge *)
  policy_label : string;
}

let budget ~capacitor ~policy =
  let usable = Capacitor.usable_budget capacitor in
  match policy with
  | Charging_policy.Fixed_delay _ ->
      (* recharges to full capacity *)
      { usable; reboot = usable; policy_label = "fixed-delay" }
  | Charging_policy.From_harvester _ ->
      (* recharges exactly to the turn-on threshold *)
      {
        usable;
        reboot =
          Energy.sub
            (Capacitor.on_threshold capacitor)
            (Capacitor.off_threshold capacitor);
        policy_label = "harvester";
      }

let budget_of_device device =
  budget ~capacitor:(Device.capacitor device) ~policy:(Device.policy device)

(* ------------------------------------------------------------------ *)
(* Classification *)

type classification = Progresses | Marginal | May_livelock

let classify budget bound =
  if Energy.(budget.usable < bound.b_call_energy) then May_livelock
  else if Energy.(budget.reboot < bound.b_call_energy) then Marginal
  else Progresses

let classification_label = function
  | Progresses -> "progresses"
  | Marginal -> "marginal"
  | May_livelock -> "may livelock"

(* ------------------------------------------------------------------ *)
(* Admission (used by Adapt.validate via Runtime): refuse any update
   whose properties could never complete a monitor call on one charge. *)

let uj e = Energy.to_uj e

let admit ?(deployment = Separate_module) ~model ~budget:b machines =
  let rec check = function
    | [] -> Ok ()
    | m :: rest -> (
        let bound = property_bound ~deployment ~model m in
        match classify b bound with
        | May_livelock ->
            Error
              (Printf.sprintf
                 "energy-inadmissible: property '%s' worst-case monitor-call \
                  bound %.3f uJ exceeds the usable charge budget %.3f uJ (may \
                  livelock)"
                 bound.b_property (uj bound.b_call_energy) (uj b.usable))
        | Progresses | Marginal -> check rest)
  in
  check machines

(* ------------------------------------------------------------------ *)
(* Report rendering *)

type entry = {
  e_origin : string;  (* "deployed" or "update #N" *)
  e_bound : bound;
  e_class : classification;
}

let analyze ?(deployment = Separate_module) ~model ~budget:b ~origin machines =
  List.map
    (fun m ->
      let bound = property_bound ~deployment ~model m in
      { e_origin = origin; e_bound = bound; e_class = classify b bound })
    machines

let render_human ~scenario ~deployment ~model ~budget:b entries buf =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "energy-admissibility report: %s\n" scenario;
  add "  deployment %s @ %d Hz; budget usable %.3f uJ, reboot %.3f uJ (%s)\n"
    (deployment_label deployment)
    model.Cost_model.mcu_frequency_hz (uj b.usable) (uj b.reboot)
    b.policy_label;
  let deployed = List.filter (fun e -> e.e_origin = "deployed") entries in
  let suite_bound =
    suite_call_bound ~deployment ~model
      (List.map (fun e -> e.e_bound) deployed)
  in
  add "  %-28s %-10s %-12s %10s %10s  %s\n" "property" "origin" "worst-case"
    "call-us" "call-uJ" "class";
  List.iter
    (fun e ->
      let bd = e.e_bound in
      add "  %-28s %-10s %-12s %10d %10.3f  %s\n" bd.b_property e.e_origin
        (if bd.b_worst_state = "-" then "-"
         else bd.b_worst_state ^ "/" ^ bd.b_worst_kind)
        (Time.to_us bd.b_call_time)
        (uj bd.b_call_energy)
        (classification_label (classify b bd)))
    entries;
  add "  deployed-suite call bound: %.3f uJ (%s)\n" (uj suite_bound)
    (if Energy.(b.usable < suite_bound) then "may livelock"
     else if Energy.(b.reboot < suite_bound) then "marginal"
     else "progresses")

let render_json ~scenario ~deployment ~model ~budget:b entries buf =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let deployed = List.filter (fun e -> e.e_origin = "deployed") entries in
  let suite_bound =
    suite_call_bound ~deployment ~model
      (List.map (fun e -> e.e_bound) deployed)
  in
  add "{\"scenario\": \"%s\", \"deployment\": \"%s\", \"mcu_hz\": %d, "
    scenario (deployment_label deployment) model.Cost_model.mcu_frequency_hz;
  add "\"budget\": {\"usable_uj\": %.3f, \"reboot_uj\": %.3f, \"policy\": \"%s\"}, "
    (uj b.usable) (uj b.reboot) b.policy_label;
  add "\"suite_call_bound_uj\": %.3f, \"properties\": [" (uj suite_bound);
  List.iteri
    (fun i e ->
      let bd = e.e_bound in
      if i > 0 then add ", ";
      add
        "{\"name\": \"%s\", \"origin\": \"%s\", \"worst_state\": \"%s\", \
         \"worst_kind\": \"%s\", \"step_cycles\": %d, \"guard_cycles\": %d, \
         \"body_cycles\": %d, \"write_cycles\": %d, \"call_us\": %d, \
         \"call_uj\": %.3f, \"class\": \"%s\"}"
        bd.b_property e.e_origin bd.b_worst_state bd.b_worst_kind
        bd.b_step_cycles bd.b_guard_cycles bd.b_body_cycles bd.b_write_cycles
        (Time.to_us bd.b_call_time)
        (uj bd.b_call_energy)
        (classification_label e.e_class))
    entries;
  add "]}\n"
