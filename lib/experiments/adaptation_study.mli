(** Live property adaptation vs full reprogramming (PR 4).

    Delivers property updates to the running health benchmark through
    the crash-atomic adaptation protocol and compares the measured
    radio time/energy and end-to-end latency against shipping a whole
    firmware image over the same BLE-class link. *)

open Artemis

type row = {
  label : string;
  update : Adapt.update;
  record : Runtime.adaptation_record;
  final_generation : int;
  final_monitors : string list;  (** deployment order after the update *)
  stats : Stats.t;
}

type study = {
  rows : row list;
  reprogram_bytes : int;  (** full firmware image shipped by the baseline *)
  reprogram_time : Time.t;
  reprogram_energy : Energy.energy;
}

val firmware_image_bytes : int
val updates : (string * Adapt.update) list
(** The studied updates: a compatible replacement (persistent state
    migrated) and a removal-plus-addition. *)

val run : ?at:int -> unit -> study
(** Run the health benchmark once per update, delivering it at scheduler
    iteration [at] (default 40) under intermittent power. *)

val latency : row -> Time.t
(** First delivery attempt to committed generation flip. *)

val applied : row -> bool
val energy_ratio : study -> row -> float
(** Reprogram energy over this update's measured radio energy. *)

val render : study -> string
