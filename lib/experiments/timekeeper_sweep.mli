(** How persistent-timekeeper quality affects property enforcement.

    ARTEMIS (like Mayfly/TICS/InK) assumes persistent timekeeping; real
    timekeepers saturate beyond a maximum measurable off-interval.  This
    sweep runs the benchmark at a 6-minute charging delay under
    timekeepers with different saturation ceilings: a ceiling below the
    5-minute MITD window makes every long outage read as "short", so the
    staleness violation is never detected - the run "succeeds" by
    delivering stale acceleration data. *)

open Artemis

type row = {
  label : string;
  stats : Stats.t;
  mitd_enforced : bool;  (** any MITD verdict observed *)
  transmissions : int;  (** completed [send] executions *)
}

val run : ?delay_min:int -> ?jobs:int -> unit -> row list
(** Rows: ideal timekeeper, then saturation ceilings of 10 min, 2 min and
    30 s ([delay_min] defaults to 6). *)

val render : row list -> string
