open Artemis
module Par = Artemis_util.Par

type row = {
  copies : int;
  monitors : int;
  monitor_ms : float;
  app_s : float;
  monitor_fram : int;
}

(* k independent copies of the benchmark's machines; each copy is renamed
   so its FRAM cells are distinct, but checks the same events. *)
let replicated_machines k =
  let base = To_fsm.spec (Spec.Parser.parse_exn Health_app.spec_text) in
  List.concat_map
    (fun i ->
      List.map
        (fun (m : Fsm.Ast.machine) ->
          if i = 0 then m
          else
            { m with Fsm.Ast.machine_name = Printf.sprintf "%s_copy%d" m.Fsm.Ast.machine_name i })
        base)
    (List.init k Fun.id)

let run_with_copies ?engine copies =
  let device = Config.device Config.Continuous in
  let app, _ = Health_app.make (Device.nvm device) in
  let machines = replicated_machines copies in
  let suite = deploy ?engine device machines in
  let stats = Runtime.run device app suite in
  {
    copies;
    monitors = List.length machines;
    monitor_ms = Time.to_ms_f stats.Stats.monitor_overhead;
    app_s = Time.to_sec_f stats.Stats.app_time;
    monitor_fram = Nvm.footprint (Device.nvm device) ~kind:Nvm.Fram ~region:Nvm.Monitor;
  }

let run ?engine ?(factors = [ 1; 2; 4; 8 ]) ?(jobs = 1) () =
  Par.map_list ~jobs (run_with_copies ?engine) factors

let render rows =
  let table =
    Table.create
      ~headers:
        [ "property copies"; "monitors"; "monitor overhead (ms)"; "app time (s)"; "monitor FRAM (B)" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.copies;
          string_of_int r.monitors;
          Printf.sprintf "%.2f" r.monitor_ms;
          Printf.sprintf "%.3f" r.app_s;
          string_of_int r.monitor_fram;
        ])
    rows;
  Table.render table

(* --- non-watching properties --- *)

(* A deployed property whose machine names only tasks the application
   never runs: with task-indexed dispatch it is never invoked, so its
   only cost is FRAM.  This is the sweep the indexed hot path is judged
   on - monitor overhead must stay flat as these are piled on. *)
let non_watching_machine i =
  let task = Printf.sprintf "ghostTask%d" i in
  {
    Fsm.Ast.machine_name = Printf.sprintf "ghost%d" i;
    vars = [ { Fsm.Ast.var_name = "n"; ty = Fsm.Ast.Tint;
               init = Fsm.Ast.Vint 0; persistent = false } ];
    initial = "Idle";
    states =
      [
        {
          Fsm.Ast.state_name = "Idle";
          transitions =
            [
              {
                Fsm.Ast.trigger = Fsm.Ast.On_start task;
                guard = None;
                body = [ Fsm.Ast.Assign ("n", Fsm.Ast.Binop (Fsm.Ast.Add, Fsm.Ast.Var "n", Fsm.Ast.Lit (Fsm.Ast.Vint 1))) ];
                target = "Idle";
              };
            ];
        };
      ];
  }

type non_watching_row = {
  extra : int;  (** non-watching properties deployed on top of the base set *)
  total_monitors : int;
  nw_monitor_ms : float;
  nw_monitor_fram : int;
}

let run_with_extras ?engine extra =
  let device = Config.device Config.Continuous in
  let app, _ = Health_app.make (Device.nvm device) in
  let machines =
    replicated_machines 1 @ List.init extra non_watching_machine
  in
  let suite = deploy ?engine device machines in
  let stats = Runtime.run device app suite in
  {
    extra;
    total_monitors = List.length machines;
    nw_monitor_ms = Time.to_ms_f stats.Stats.monitor_overhead;
    nw_monitor_fram =
      Nvm.footprint (Device.nvm device) ~kind:Nvm.Fram ~region:Nvm.Monitor;
  }

let run_non_watching ?engine ?(extras = [ 0; 8; 32; 128 ]) ?(jobs = 1) () =
  Par.map_list ~jobs (run_with_extras ?engine) extras

let render_non_watching rows =
  let table =
    Table.create
      ~headers:
        [ "non-watching extras"; "monitors"; "monitor overhead (ms)"; "monitor FRAM (B)" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.extra;
          string_of_int r.total_monitors;
          Printf.sprintf "%.2f" r.nw_monitor_ms;
          string_of_int r.nw_monitor_fram;
        ])
    rows;
  Table.render table
