open Artemis
module Par = Artemis_util.Par

type row = {
  label : string;
  stats : Stats.t;
  mitd_enforced : bool;
  transmissions : int;
}

let run_with ~label ~off_estimator ~delay_min =
  let clock = Persistent_clock.create ~off_estimator () in
  let run =
    Config.run_health ~clock Config.Artemis_runtime
      (Config.Intermittent (Time.of_min delay_min))
  in
  let mitd_enforced =
    Log.count
      (Device.log run.Config.device)
      (function
        | Event.Monitor_verdict { monitor; _ } ->
            String.length monitor >= 4 && String.sub monitor 0 4 = "MITD"
        | _ -> false)
    > 0
  in
  {
    label;
    stats = run.Config.stats;
    mitd_enforced;
    transmissions = run.Config.handles.Health_app.sent_messages ();
  }

let run ?(delay_min = 6) ?(jobs = 1) () =
  (* Each row is a thunk so its (stateful) timekeeper is created on the
     worker domain that runs it. *)
  let saturating minutes_label ceiling () =
    let tk =
      Remanence_timekeeper.create ~relative_error:0.05 ~max_measurable:ceiling ()
    in
    run_with
      ~label:(Printf.sprintf "saturates at %s" minutes_label)
      ~off_estimator:(Remanence_timekeeper.as_off_estimator tk)
      ~delay_min
  in
  Par.map_list ~jobs
    (fun row -> row ())
    [
      (fun () ->
        run_with ~label:"ideal" ~off_estimator:Remanence_timekeeper.ideal
          ~delay_min);
      saturating "10 min" (Time.of_min 10);
      saturating "2 min" (Time.of_min 2);
      saturating "30 s" (Time.of_sec 30);
    ]

let render rows =
  let table =
    Table.create
      ~headers:
        [ "timekeeper"; "outcome"; "MITD enforced"; "transmissions delivered" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.label;
          (match r.stats.Stats.outcome with
          | Stats.Completed -> "completed"
          | Stats.Did_not_finish reason -> "DNF: " ^ reason);
          (if r.mitd_enforced then "yes" else "no (stale data delivered)");
          string_of_int r.transmissions;
        ])
    rows;
  Table.render table
