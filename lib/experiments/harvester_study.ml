open Artemis
module Par = Artemis_util.Par

type row = {
  harvest_uw : float;
  mean_delay : Time.t option;
  artemis : Stats.t;
  mayfly : Stats.t;
}

let duty_cycle_harvester ~avg_uw =
  (* 2-minute period, power arrives during the first half at twice the
     average rate *)
  Harvester.Duty_cycle
    {
      period = Time.of_min 2;
      on_fraction = 0.5;
      rate = Energy.uw (2. *. avg_uw);
    }

(* Unlike the fixed-delay policy (which recharges to capacity), the
   harvester policy brings the capacitor back to the turn-on threshold
   only; the threshold must therefore sit above the hungriest task's
   demand (accel, 17.28 mJ) or the device crash-loops on wake-up. *)
let study_capacitor () =
  Capacitor.create
    ~capacity:(Energy.mj 18.5)
    ~on_threshold:(Energy.mj 18.45)
    ~off_threshold:(Energy.mj 1.0)
    ()

let device ~avg_uw =
  Device.create
    ~capacitor:(study_capacitor ())
    ~policy:(Charging_policy.From_harvester (duty_cycle_harvester ~avg_uw))
    ~horizon:(Time.of_min 720) ()

let mean_charging_delay dev =
  let delays =
    Log.events (Device.log dev)
    |> List.filter_map (fun (e : Event.timed) ->
           match e.Event.event with
           | Event.Reboot { charging_delay } -> Some charging_delay
           | _ -> None)
  in
  match delays with
  | [] -> None
  | delays ->
      Some
        (Time.divide
           (List.fold_left Time.add Time.zero delays)
           (List.length delays))

let run_system ~avg_uw system =
  let dev = device ~avg_uw in
  let app, _ = Health_app.make (Device.nvm dev) in
  let stats =
    match system with
    | `Artemis ->
        let suite = compile_and_deploy_exn dev app Health_app.spec_text in
        Runtime.run dev app suite
    | `Mayfly ->
        Mayfly.run dev app
          (Mayfly.annotations_of_spec
             (Spec.Parser.parse_exn Health_app.mayfly_spec_text))
  in
  (stats, dev)

let run ?(rates_uw = [ 1000.; 200.; 100.; 65.; 50.; 40. ]) ?(jobs = 1) () =
  Par.map_list ~jobs
    (fun harvest_uw ->
      let artemis, artemis_dev = run_system ~avg_uw:harvest_uw `Artemis in
      let mayfly, _ = run_system ~avg_uw:harvest_uw `Mayfly in
      { harvest_uw; mean_delay = mean_charging_delay artemis_dev; artemis; mayfly })
    rates_uw

let outcome_cell (s : Stats.t) =
  match s.Stats.outcome with
  | Stats.Completed -> Printf.sprintf "completed in %.1f min" (Config.minutes s)
  | Stats.Did_not_finish _ -> "DNF (non-termination)"

let render rows =
  let table =
    Table.create
      ~headers:
        [ "avg harvest"; "mean charging delay"; "ARTEMIS"; "Mayfly" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Printf.sprintf "%.0f uW" r.harvest_uw;
          (match r.mean_delay with
          | None -> "none (no failures)"
          | Some d -> Printf.sprintf "%.1f min" (Time.to_min_f d));
          outcome_cell r.artemis;
          outcome_cell r.mayfly;
        ])
    rows;
  Table.render table
