open Artemis
module Par = Artemis_util.Par

type deployment_row = {
  label : string;
  continuous : Stats.t;
  intermittent : Stats.t;
  est_text_bytes : int;
  est_monitor_fram : int;
}

let benchmark_machines () =
  To_fsm.spec (Spec.Parser.parse_exn Health_app.spec_text)

(* Local-memory estimates per deployment.  Separate: the generated unit as
   is.  Inlined: every property's step code is woven at both boundary
   events of its task (x2 duplication), the shared dispatcher disappears.
   External: only a radio shim and an event buffer stay on-device. *)
let memory_estimates deployment =
  let machines = benchmark_machines () in
  match deployment with
  | Runtime.Separate_module ->
      let unit_c = To_c.suite machines in
      ( To_c.estimated_text_bytes unit_c,
        List.fold_left (fun acc m -> acc + To_c.fram_bytes m) 0 machines )
  | Runtime.Inlined ->
      let per_machine =
        List.fold_left
          (fun acc m -> acc + (2 * To_c.estimated_text_bytes (To_c.machine m)))
          0 machines
      in
      ( per_machine,
        List.fold_left (fun acc m -> acc + To_c.fram_bytes m) 0 machines )
  | Runtime.External_wireless _ -> (420, 32)

let run_deployment deployment supply =
  let config = { Runtime.default_config with deployment } in
  (Config.run_health ~config Config.Artemis_runtime supply).Config.stats

let deployments ?(jobs = 1) () =
  let mk (label, deployment) =
    let text, fram = memory_estimates deployment in
    {
      label;
      continuous = run_deployment deployment Config.Continuous;
      intermittent =
        run_deployment deployment (Config.Intermittent (Time.of_min 6));
      est_text_bytes = text;
      est_monitor_fram = fram;
    }
  in
  Par.map_list ~jobs mk
    [
      ("separate module (paper)", Runtime.Separate_module);
      ("inlined", Runtime.Inlined);
      ("external wireless", Runtime.default_external_wireless);
    ]

let render_deployments rows =
  let table =
    Table.create
      ~headers:
        [
          "deployment";
          "monitor overhead (ms)";
          "monitor energy (uJ)";
          "6min run completes";
          "local .text (B)";
          "local FRAM (B)";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.label;
          Printf.sprintf "%.2f" (Time.to_ms_f r.continuous.Stats.monitor_overhead);
          Printf.sprintf "%.1f" (Energy.to_uj r.continuous.Stats.energy_monitor);
          (match r.intermittent.Stats.outcome with
          | Stats.Completed -> "yes"
          | Stats.Did_not_finish _ -> "no");
          string_of_int r.est_text_bytes;
          string_of_int r.est_monitor_fram;
        ])
    rows;
  Table.render table

type collect_row = {
  reset_on_fail : bool;
  stats : Stats.t;
  body_temp_runs : int;
}

let collect_semantics ?(jobs = 1) () =
  Par.map_list ~jobs
    (fun reset_on_fail ->
      let options = { To_fsm.collect_reset_on_fail = reset_on_fail } in
      let run =
        Config.run_health ~options ~horizon:(Time.of_min 20)
          ~config:{ Runtime.default_config with max_loop_iterations = 5_000 }
          Config.Artemis_runtime Config.Continuous
      in
      {
        reset_on_fail;
        stats = run.Config.stats;
        body_temp_runs =
          Log.count
            (Device.log run.Config.device)
            (function
              | Event.Task_completed { task = "bodyTemp" } -> true
              | _ -> false);
      })
    [ false; true ]

let render_collect rows =
  let table =
    Table.create
      ~headers:[ "collect counter on failure"; "outcome"; "bodyTemp executions" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          (if r.reset_on_fail then "reset (literal Figure 7)"
           else "accumulate (our default)");
          (match r.stats.Stats.outcome with
          | Stats.Completed -> "completed"
          | Stats.Did_not_finish reason -> "DNF: " ^ reason);
          string_of_int r.body_temp_runs;
        ])
    rows;
  Table.render table
