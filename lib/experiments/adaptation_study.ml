open Artemis

(* Live property adaptation vs full reprogramming (PR 4).

   Table 3 credits ARTEMIS with "runtime adaptation": changing the
   deployed property suite without reflashing the device.  This study
   quantifies that claim on the health benchmark: each scheduled update
   is delivered over the BLE-class radio, staged in NVM and applied
   through the crash-atomic protocol, and we compare the measured
   delivery time/energy and end-to-end latency against the cost of
   shipping a whole firmware image over the same link - the only
   alternative on a device without the protocol. *)

type row = {
  label : string;
  update : Adapt.update;
  record : Runtime.adaptation_record;
  final_generation : int;
  final_monitors : string list;
  stats : Stats.t;
}

type study = {
  rows : row list;
  reprogram_bytes : int;
  reprogram_time : Time.t;
  reprogram_energy : Energy.energy;
}

(* The same 64-byte-chunk link model the runtime costs deliveries with. *)
let radio_params () =
  match Runtime.default_external_wireless with
  | Runtime.External_wireless { radio_power; round_trip } ->
      (radio_power, round_trip)
  | Runtime.Separate_module | Runtime.Inlined -> assert false

let chunk_bytes = 64

(* A realistic MSP430-class monitor firmware image.  Reprogramming also
   loses all persistent monitor state (there is nothing to migrate
   into), which the adaptation path keeps. *)
let firmware_image_bytes = 16 * 1024

let reprogram_cost () =
  let radio_power, round_trip = radio_params () in
  let chunks = (firmware_image_bytes + chunk_bytes - 1) / chunk_bytes in
  let time = Time.scale round_trip chunks in
  (time, Energy.consumed radio_power time)

let updates =
  [
    ( "tighten MITD window (5min -> 4min, attempts migrated)",
      Adapt.spec_update ~id:1
        "send: { MITD: 4min dpTask: accel onFail: restartPath maxAttempt: 3 \
         onFail: skipPath Path: 2; }" );
    ( "retire maxDuration, add maxTries on send",
      Adapt.spec_update ~id:2 ~remove:[ "maxDuration_send" ]
        "send: { maxTries: 8 onFail: skipPath; }" );
  ]

let run_update ~at (label, update) =
  let device = Config.device (Config.Intermittent (Time.of_min 1)) in
  let app, _handles = Health_app.make (Device.nvm device) in
  let suite = compile_and_deploy_exn device app Health_app.spec_text in
  let result = Runtime.run_adaptive ~adaptations:[ (at, update) ] device app suite in
  let record =
    match result.Runtime.records with
    | [ r ] -> r
    | rs ->
        failwith
          (Printf.sprintf "adaptation study: expected one record, got %d"
             (List.length rs))
  in
  {
    label;
    update;
    record;
    final_generation = result.Runtime.final_generation;
    final_monitors =
      List.map Monitor.name (Suite.monitors result.Runtime.final_suite);
    stats = result.Runtime.adaptive_stats;
  }

let run ?(at = 40) () =
  let reprogram_time, reprogram_energy = reprogram_cost () in
  {
    rows = List.map (run_update ~at) updates;
    reprogram_bytes = firmware_image_bytes;
    reprogram_time;
    reprogram_energy;
  }

let latency (r : row) =
  Time.sub r.record.Runtime.completed_at r.record.Runtime.first_attempt_at

let applied (r : row) =
  match r.record.Runtime.outcome with
  | Runtime.Update_applied _ -> true
  | Runtime.Update_rejected _ | Runtime.Update_unfinished -> false

let energy_ratio s (r : row) =
  Energy.to_mj s.reprogram_energy
  /. Float.max 1e-9 (Energy.to_mj r.record.Runtime.radio_energy)

let render s =
  let table =
    Table.create
      ~headers:
        [ "update"; "wire"; "radio time"; "radio energy"; "latency"; "vs reprogram" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.label;
          Printf.sprintf "%d B" r.record.Runtime.wire_bytes;
          Printf.sprintf "%.1f ms" (Time.to_ms_f r.record.Runtime.radio_time);
          Printf.sprintf "%.3f mJ" (Energy.to_mj r.record.Runtime.radio_energy);
          Printf.sprintf "%.1f ms" (Time.to_ms_f (latency r));
          Printf.sprintf "%.0fx less energy" (energy_ratio s r);
        ])
    s.rows;
  Printf.sprintf
    "%s\nfull reprogram baseline: %d B image, %.1f ms radio, %.2f mJ (and all \
     persistent monitor state lost)\n"
    (Table.render table) s.reprogram_bytes
    (Time.to_ms_f s.reprogram_time)
    (Energy.to_mj s.reprogram_energy)
