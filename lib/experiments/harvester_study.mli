(** Beyond the paper: Figure 12's crossover with a physical harvester
    model instead of dialled charging delays.

    The paper's evaluation controls the charging time directly (its RF
    transmitter is duty-cycled to produce 1-10 minute outages).  Here the
    device recharges from a {!Harvester} model, so the charging delay is
    {e emergent}: sweeping the harvested power moves the expected recharge
    time of the energy budget across the 5-minute MITD window.  The
    emergent picture is richer than the dialled sweep: because the
    duty-cycle phase varies the delay from failure to failure, Mayfly
    first enters a band where it still terminates but pathologically
    slowly (only the occasional sub-window recharge lets it through),
    before hard non-termination once no recharge ever fits the window -
    while ARTEMIS's bounded attempts keep its cost flat. *)

open Artemis

type row = {
  harvest_uw : float;  (** average harvested power *)
  mean_delay : Time.t option;  (** observed mean charging delay, if any *)
  artemis : Stats.t;
  mayfly : Stats.t;
}

val run : ?rates_uw:float list -> ?jobs:int -> unit -> row list
(** Default sweep: 1000, 200, 100, 65, 50 and 40 uW average harvest (duty-cycled
    2 min period, 50% on-time, so instantaneous rate is twice the
    average). *)

val render : row list -> string
