(** Shared experimental setup: the calibrated benchmark device and
    one-call runners for both systems (Section 5 "Experimental Setup").

    The capacitor is sized (17.5 mJ usable) so that, as in the paper's
    testbed, a full charge completes [accel] but not [accel]+[classify]:
    every pass over path 2 browns out before [send] starts, which is what
    makes the MITD property between [accel] and [send] bite once charging
    delays exceed five minutes (DESIGN.md, cost-model calibration). *)

open Artemis

type power_supply =
  | Continuous  (** bench power supply: capacitor never depletes *)
  | Intermittent of Time.t  (** RF harvesting with this charging delay *)

val device : ?horizon:Time.t -> ?clock:Persistent_clock.t -> power_supply -> Device.t

val benchmark_capacitor : unit -> Capacitor.t
(** A fresh instance of the calibrated 17.5 mJ-usable capacitor, for
    experiments that build their own devices (harvester studies). *)

type system = Artemis_runtime | Mayfly_runtime

type run = {
  stats : Stats.t;
  device : Device.t;
  handles : Health_app.handles;
}

val run_health :
  ?temp_base:float ->
  ?horizon:Time.t ->
  ?clock:Persistent_clock.t ->
  ?options:To_fsm.options ->
  ?config:Runtime.config ->
  ?adaptations:(int * Adapt.update) list ->
  ?engine:Monitor.engine ->
  system ->
  power_supply ->
  run
(** Build a fresh device, deploy the health-monitoring benchmark with its
    Figure 5 specification (or the Mayfly subset), run it once.
    [adaptations] (ARTEMIS only) schedules live property updates;
    [engine] (ARTEMIS only) selects the monitor execution backend. *)

val minutes : Stats.t -> float
(** Total execution time in minutes. *)

val millijoules : Stats.t -> float
