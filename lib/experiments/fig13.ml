open Artemis

type result = {
  stats : Stats.t;
  mitd_violations : int;
  path2_restarts : int;
  path2_skipped : bool;
  timeline : string;
}

let path2_tasks = [ "accel"; "classify"; "send" ]
let mentions_path2_task t = List.mem t path2_tasks

(* Keep only the events that tell the Figure 13 story: path 2 activity,
   the power failures interleaving it, and the monitor decisions. *)
let relevant = function
  | Event.Task_started { task; _ }
  | Event.Task_completed { task }
  | Event.Power_failure { during_task = Some task } ->
      mentions_path2_task task
  | Event.Monitor_verdict { task; _ } | Event.Runtime_action { task; _ } ->
      mentions_path2_task task
  | Event.Path_started { path }
  | Event.Path_completed { path }
  | Event.Path_restarted { path; _ }
  | Event.Path_skipped { path; _ }
  | Event.Monitoring_suspended { path } ->
      path = 2
  | Event.Reboot _ -> true
  | Event.Power_failure { during_task = None } -> true
  | Event.Boot | Event.App_completed | Event.Horizon_reached _
  | Event.Round_completed _ | Event.Adaptation_staged _
  | Event.Adaptation_applied _ | Event.Adaptation_rejected _ ->
      true

let is_mitd_verdict = function
  | Event.Monitor_verdict { monitor; _ } ->
      String.length monitor >= 4 && String.equal (String.sub monitor 0 4) "MITD"
  | _ -> false

let run ?(delay_min = 6) () =
  let { Config.stats; device; _ } =
    Config.run_health Config.Artemis_runtime
      (Config.Intermittent (Time.of_min delay_min))
  in
  let log = Device.log device in
  let events = Log.events log in
  (* the story starts when path 2 is first entered *)
  let rec from_path2 = function
    | [] -> []
    | { Event.event = Event.Path_started { path = 2 }; _ } :: _ as tail -> tail
    | _ :: rest -> from_path2 rest
  in
  let shown =
    List.filter (fun (e : Event.timed) -> relevant e.Event.event) (from_path2 events)
  in
  let mitd_violations =
    List.length (List.filter (fun (e : Event.timed) -> is_mitd_verdict e.Event.event) events)
  in
  let path2_restarts =
    Log.count log (function
      | Event.Path_restarted { path = 2; _ } -> true
      | _ -> false)
  in
  let path2_skipped =
    Log.count log (function Event.Path_skipped { path = 2; _ } -> true | _ -> false)
    > 0
  in
  let timeline =
    String.concat "\n"
      (List.map (Format.asprintf "%a" Event.pp_timed) shown)
  in
  { stats; mitd_violations; path2_restarts; path2_skipped; timeline }

let render r =
  Printf.sprintf
    "MITD violations observed: %d\npath #2 restarts: %d\npath #2 skipped by \
     maxAttempt: %b\n\n%s"
    r.mitd_violations r.path2_restarts r.path2_skipped r.timeline
