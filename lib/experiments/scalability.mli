(** Scalability of property checking (the paper's contribution 3 and
    problem P3).

    The paper argues that fused designs cannot scale their property set,
    while ARTEMIS adds properties without touching application or runtime
    code.  This study deploys the benchmark with its property set
    replicated k times (every copy is a real, independently evaluated
    monitor) and measures how the monitor overhead grows while the
    application time stays untouched: the per-event cost is the dispatch
    plus a per-property term for each monitor the event can fire, so
    overhead grows linearly in the {e watching} copies.

    The companion non-watching sweep deploys properties that name only
    tasks the application never runs: task-indexed dispatch never invokes
    them, so monitor overhead must stay flat (sublinear in the deployed
    count) while only their FRAM footprint grows. *)

val replicated_machines : int -> Artemis.Fsm.Ast.machine list
(** [k] independent, renamed copies of the benchmark property set — the
    workload both the sweep below and the bench's dispatch kernels deploy. *)

type row = {
  copies : int;  (** replication factor of the benchmark property set *)
  monitors : int;  (** deployed monitor count *)
  monitor_ms : float;
  app_s : float;
  monitor_fram : int;
}

val run :
  ?engine:Artemis.Monitor.engine ->
  ?factors:int list ->
  ?jobs:int ->
  unit ->
  row list
(** Default factors: 1, 2, 4, 8.  [engine] selects the monitor execution
    backend (compiled by default), letting the bench compare the two.
    [jobs] (default 1) distributes the factor sweep over that many
    domains; each row builds its own device, so rows are independent and
    the result order is fixed. *)

val render : row list -> string

type non_watching_row = {
  extra : int;  (** non-watching properties deployed on top of the base set *)
  total_monitors : int;
  nw_monitor_ms : float;
  nw_monitor_fram : int;
}

val run_non_watching :
  ?engine:Artemis.Monitor.engine ->
  ?extras:int list ->
  ?jobs:int ->
  unit ->
  non_watching_row list
(** Default extras: 0, 8, 32, 128 non-watching properties on top of the
    base benchmark set. *)

val render_non_watching : non_watching_row list -> string
