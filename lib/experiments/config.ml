open Artemis

type power_supply = Continuous | Intermittent of Time.t

let benchmark_capacitor () =
  Capacitor.create
    ~capacity:(Energy.mj 18.5)
    ~on_threshold:(Energy.mj 18.0)
    ~off_threshold:(Energy.mj 1.0)
    ()

let bench_supply_capacitor () =
  (* effectively infinite: two orders of magnitude above one run's needs *)
  Capacitor.create
    ~capacity:(Energy.mj 100_000.)
    ~on_threshold:(Energy.mj 99_000.)
    ~off_threshold:(Energy.mj 0.)
    ()

let device ?horizon ?clock supply =
  match supply with
  | Continuous ->
      Device.create
        ~capacitor:(bench_supply_capacitor ())
        ~policy:(Charging_policy.Fixed_delay Time.zero)
        ?horizon ?clock ()
  | Intermittent delay ->
      Device.create
        ~capacitor:(benchmark_capacitor ())
        ~policy:(Charging_policy.Fixed_delay delay)
        ?horizon ?clock ()

type system = Artemis_runtime | Mayfly_runtime

type run = { stats : Stats.t; device : Device.t; handles : Health_app.handles }

let run_health ?temp_base ?horizon ?clock ?options ?config ?adaptations ?engine
    system supply =
  let device = device ?horizon ?clock supply in
  let app, handles = Health_app.make ?temp_base (Device.nvm device) in
  let stats =
    match system with
    | Artemis_runtime ->
        let suite =
          compile_and_deploy_exn ?options ?engine device app
            Health_app.spec_text
        in
        Runtime.run ?config ?adaptations device app suite
    | Mayfly_runtime ->
        let annotations =
          Mayfly.annotations_of_spec
            (Spec.Parser.parse_exn Health_app.mayfly_spec_text)
        in
        Mayfly.run device app annotations
  in
  { stats; device; handles }

let minutes (s : Stats.t) = Time.to_min_f s.Stats.total_time
let millijoules (s : Stats.t) = Energy.to_mj s.Stats.energy_total
