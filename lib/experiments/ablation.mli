(** Ablation studies for the design choices DESIGN.md calls out.

    Two ablations beyond the paper's headline evaluation:

    - {b monitor deployment} (Section 7 "Implementation Alternatives"):
      the same benchmark under separate-module (the paper's design),
      inlined, and external-wireless monitors.  Expected trade-off:
      inlining shaves monitor time at a footprint cost; the external
      monitor frees local memory but its radio round-trips dwarf every
      other overhead.
    - {b collect semantics} (DESIGN.md decision 1): the literal Figure 7
      collect machine resets its counter on failure, which makes the
      benchmark's path 1 (one sample per pass, restart until 10 are
      collected) unable to ever progress - empirical justification for
      the accumulate-across-restarts default. *)

open Artemis

type deployment_row = {
  label : string;
  continuous : Stats.t;
  intermittent : Stats.t;  (** 6-minute charging delay *)
  est_text_bytes : int;  (** local monitor code size estimate *)
  est_monitor_fram : int;  (** local monitor FRAM estimate *)
}

val deployments : ?jobs:int -> unit -> deployment_row list
val render_deployments : deployment_row list -> string

type collect_row = {
  reset_on_fail : bool;
  stats : Stats.t;
  body_temp_runs : int;  (** bodyTemp completions before termination/DNF *)
}

val collect_semantics : ?jobs:int -> unit -> collect_row list
val render_collect : collect_row list -> string
