open Artemis_util
module Nvm = Artemis_nvm.Nvm
module Device = Artemis_device.Device
module Report = Artemis_device.Report
module Event = Artemis_trace.Event
module Stats = Artemis_trace.Stats
module Task = Artemis_task.Task

type thread = {
  thread_name : string;
  priority : int;
  tasks : Task.t list;
  expiry : Time.t option;
}

type armed = { thread : thread; arrival : Time.t }

let validate armed_list =
  let ( let* ) r f = Result.bind r f in
  let* () = if armed_list = [] then Error "no armed threads" else Ok () in
  let names = List.map (fun a -> a.thread.thread_name) armed_list in
  let* () =
    if List.length (List.sort_uniq String.compare names) = List.length names
    then Ok ()
    else Error "thread names must be unique"
  in
  let* () =
    match List.find_opt (fun a -> a.thread.tasks = []) armed_list with
    | Some a -> Error (Printf.sprintf "thread %S has an empty chain" a.thread.thread_name)
    | None -> Ok ()
  in
  if List.exists (fun a -> Time.is_negative a.arrival) armed_list then
    Error "negative arrival time"
  else Ok ()

(* The WAR-analysis surface (PR 7): every distinct task body across all
   armed threads, in scheduling-surface order.  InK runs each task
   inside a transaction exactly like the ARTEMIS runtime, so the same
   read-then-plain-write rule applies. *)
let bodies armed_list =
  let seen = Hashtbl.create 16 in
  List.concat_map (fun a -> a.thread.tasks) armed_list
  |> List.filter_map (fun (t : Task.t) ->
         if Hashtbl.mem seen t.Task.name then None
         else begin
           Hashtbl.add seen t.Task.name ();
           Some (t.Task.name, t.Task.body)
         end)

type config = {
  kernel_cycles_per_event : int;
  mcu_power : Energy.power;
  mcu_frequency_hz : int;
  max_loop_iterations : int;
  seed : int;
}

let default_config =
  {
    kernel_cycles_per_event = 320;
    mcu_power = Energy.mw 1.2;
    mcu_frequency_hz = 1_000_000;
    max_loop_iterations = 200_000;
    seed = 42;
  }

type thread_state = Alive | Finished | Evicted

(* Per-thread persistent progress: one atomic cell each. *)
type progress = { next_task : int; state : thread_state }

type outcome = {
  stats : Stats.t;
  completed_threads : string list;
  evicted_threads : string list;
}

type state = {
  device : Device.t;
  armed : armed array;
  cells : progress Nvm.cell array;
  config : config;
  prng : Prng.t;
  mutable completion_order : string list;  (* reverse order *)
  mutable iterations : int;
}

let make_state ~config device armed_list =
  (match validate armed_list with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ink.run: invalid threads: " ^ msg));
  let nvm = Device.nvm device in
  let armed = Array.of_list armed_list in
  let cells =
    Array.mapi
      (fun i a ->
        Nvm.cell nvm ~region:Runtime
          ~name:(Printf.sprintf "ink.thread.%d.%s" i a.thread.thread_name)
          ~bytes:3
          { next_task = 0; state = Alive })
      armed
  in
  {
    device;
    armed;
    cells;
    config;
    prng = Prng.create ~seed:config.seed;
    completion_order = [];
    iterations = 0;
  }

let cycles_to_time st cycles =
  Time.of_us (cycles * 1_000_000 / st.config.mcu_frequency_hz)

let consume_kernel st =
  Device.consume st.device Device.Runtime_work ~power:st.config.mcu_power
    ~duration:(cycles_to_time st st.config.kernel_cycles_per_event)
    ()

(* Highest priority among alive threads whose event has arrived; FIFO by
   arrival, then index, among equals. *)
let pick st =
  let now = Device.now st.device in
  let best = ref None in
  Array.iteri
    (fun i a ->
      if (Nvm.read st.cells.(i)).state = Alive && Time.(a.arrival <= now) then
        match !best with
        | None -> best := Some i
        | Some j ->
            let b = st.armed.(j) in
            if
              a.thread.priority > b.thread.priority
              || (a.thread.priority = b.thread.priority
                 && Time.(a.arrival < b.arrival))
            then best := Some i)
    st.armed;
  !best

let earliest_pending st =
  let now = Device.now st.device in
  Array.to_list st.armed
  |> List.mapi (fun i a -> (i, a))
  |> List.filter (fun (i, a) ->
         (Nvm.read st.cells.(i)).state = Alive && Time.(a.arrival > now))
  |> List.fold_left
       (fun acc (_, a) ->
         match acc with
         | None -> Some a.arrival
         | Some t -> Some (Time.min t a.arrival))
       None

let run_thread_step st i =
  let a = st.armed.(i) in
  let progress = Nvm.read st.cells.(i) in
  let task = List.nth a.thread.tasks progress.next_task in
  Device.record st.device
    (Event.Task_started { task = task.Task.name; attempt = 1 });
  match consume_kernel st with
  | Device.Interrupted | Device.Starved -> ()
  | Device.Completed -> (
      (* fixed reaction: evict the whole thread when the triggering
         event's data has expired (Table 3) *)
      let expired =
        match a.thread.expiry with
        | None -> false
        | Some window ->
            Time.(Time.sub (Device.now st.device) a.arrival > window)
      in
      if expired then begin
        Device.record st.device
          (Event.Runtime_action
             { action = "evictThread " ^ a.thread.thread_name; task = task.Task.name });
        Nvm.write st.cells.(i) { progress with state = Evicted }
      end
      else begin
        let nvm = Device.nvm st.device in
        Nvm.begin_tx nvm;
        match
          Device.consume st.device Device.App ~during:task.Task.name
            ~power:task.Task.power ~duration:task.Task.duration ()
        with
        | Device.Interrupted | Device.Starved -> ()
        | Device.Completed ->
            task.Task.body
              { Task.nvm; now = Device.now st.device; prng = st.prng };
            let finished = progress.next_task + 1 >= List.length a.thread.tasks in
            Nvm.tx_write st.cells.(i)
              {
                next_task = progress.next_task + 1;
                state = (if finished then Finished else Alive);
              };
            Nvm.commit_tx nvm;
            Device.record st.device (Event.Task_completed { task = task.Task.name });
            if finished then
              st.completion_order <- a.thread.thread_name :: st.completion_order
      end)

let finish st ~outcome =
  let stats = Report.stats st.device ~outcome in
  let evicted =
    Array.to_list st.armed
    |> List.mapi (fun i a -> (i, a))
    |> List.filter_map (fun (i, a) ->
           if (Nvm.read st.cells.(i)).state = Evicted then
             Some a.thread.thread_name
           else None)
  in
  {
    stats;
    completed_threads = List.rev st.completion_order;
    evicted_threads = evicted;
  }

(* --- the unified-backend adapter (PR 10) ---

   Runs ARTEMIS [Task.app] tasks under the InK execution discipline
   inside the shared runtime: every task dispatch pays the reactive
   kernel's event-handling cost before the task transaction opens, and
   the kernel's scheduling progress commits atomically with the task. *)
module Backend_impl : Artemis_backend.Backend.S = struct
  module Backend = Artemis_backend.Backend

  let name = "ink"
  let description = "InK-style reactive kernel (event dispatch per task)"
  let injection_sites = []
  let bodies = Task.bodies

  let setup ~probe device _app =
    ignore probe;
    let config = default_config in
    let nvm = Device.nvm device in
    let sched = Nvm.cell nvm ~region:Runtime ~name:"inkb.sched" ~bytes:3 0 in
    let consume_kernel () =
      Device.consume device Device.Runtime_work ~power:config.mcu_power
        ~duration:
          (Time.of_us
             (config.kernel_cycles_per_event * 1_000_000
             / config.mcu_frequency_hz))
        ()
    in
    {
      Backend.recover = (fun () -> ());
      execute =
        (fun ~task ~context ~commit ->
          match consume_kernel () with
          | Device.Interrupted | Device.Starved -> Backend.Interrupted
          | Device.Completed -> (
              Nvm.begin_tx nvm;
              match
                Device.consume device Device.App ~during:task.Task.name
                  ~power:task.Task.power ~duration:task.Task.duration ()
              with
              | Device.Interrupted | Device.Starved -> Backend.Interrupted
              | Device.Completed ->
                  task.Task.body (context ());
                  (* kernel progress joins the task transaction: a crash
                     re-dispatches the same event, never skips one *)
                  Nvm.tx_write sched (Nvm.read sched + 1);
                  commit ();
                  Nvm.commit_tx nvm;
                  Backend.Committed));
      fram_bytes = (fun () -> 3);
    }
end

let backend : Artemis_backend.Backend.b = (module Backend_impl)

let run ?(config = default_config) device armed_list =
  let st = make_state ~config device armed_list in
  Device.record device Event.Boot;
  let rec loop () =
    st.iterations <- st.iterations + 1;
    if st.iterations > config.max_loop_iterations then begin
      let reason = "iteration limit (no progress)" in
      Device.record device (Event.Horizon_reached { reason });
      finish st ~outcome:(Stats.Did_not_finish reason)
    end
    else if Device.horizon_exceeded device then begin
      let reason = "simulation time horizon" in
      Device.record device (Event.Horizon_reached { reason });
      finish st ~outcome:(Stats.Did_not_finish reason)
    end
    else
      match pick st with
      | Some i ->
          run_thread_step st i;
          loop ()
      | None -> (
          match earliest_pending st with
          | Some arrival ->
              (* idle (deep sleep) until the next event arrives *)
              let wait = Time.sub arrival (Device.now st.device) in
              ignore
                (Device.consume st.device Device.Runtime_work
                   ~power:(Energy.uw 0.) ~duration:wait ());
              loop ()
          | None ->
              Device.record device Event.App_completed;
              finish st ~outcome:Stats.Completed)
  in
  loop ()
