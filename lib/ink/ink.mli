(** InK-style reactive baseline (Yıldırım et al., SenSys'18), the last
    executable row of the paper's Table 3.

    InK is a reactive kernel: computation is organized into {e task
    threads} triggered by timestamped events; a priority scheduler picks
    the highest-priority ready thread and runs its task chain to
    completion, power-failure-resiliently.  Its timing support is a fixed
    reaction: when the triggering event's data has expired by the time a
    task starts, the kernel {e evicts} the whole thread ("runtime evicts
    thread upon expiration") - there is no per-property action language
    and no bounded-attempt construct.

    The model here: each thread is armed by one event at a given arrival
    time; threads become ready at their arrival time and are scheduled by
    descending priority (FIFO among equals, by arrival).  Tasks are the
    same atomic, transactional {!Artemis_task.Task.t} values the other
    runtimes execute. *)

open Artemis_util
open Artemis_device
open Artemis_task

type thread = {
  thread_name : string;
  priority : int;  (** higher is scheduled first *)
  tasks : Task.t list;  (** the chain run when the event fires *)
  expiry : Time.t option;
      (** maximum age of the triggering event at any task start; older
          means the kernel evicts the thread *)
}

type armed = { thread : thread; arrival : Time.t }
(** One event instance arming a thread. *)

val validate : armed list -> (unit, string) result
(** Non-empty; thread names unique; chains non-empty; arrivals
    non-negative. *)

val bodies : armed list -> (string * (Task.context -> unit)) list
(** Every distinct task body across all armed threads, named, in
    first-appearance order: the access-recording surface for the static
    WAR-hazard analysis ({!Artemis_consistency.War.analyze_bodies}). *)

type config = {
  kernel_cycles_per_event : int;  (** scheduler bookkeeping per task event *)
  mcu_power : Energy.power;
  mcu_frequency_hz : int;
  max_loop_iterations : int;
  seed : int;
}

val default_config : config

type outcome = {
  stats : Artemis_trace.Stats.t;
  completed_threads : string list;  (** in completion order *)
  evicted_threads : string list;
}

val run : ?config:config -> Device.t -> armed list -> outcome
(** Process every armed event to completion or eviction.
    @raise Invalid_argument if {!validate} rejects the input. *)

val backend : Artemis_backend.Backend.b
(** The unified-backend adapter (PR 10, [name = "ink"]): runs ARTEMIS
    task apps under the InK execution discipline inside the shared
    runtime - kernel event-dispatch cost before each task transaction,
    scheduling progress ([inkb.sched]) committed atomically with the
    task. *)
