open Artemis_util
module Nvm = Artemis_nvm.Nvm
module Capacitor = Artemis_energy.Capacitor
module Charging_policy = Artemis_energy.Charging_policy
module Clock = Artemis_clock.Persistent_clock
module Log = Artemis_trace.Log
module Event = Artemis_trace.Event

type category = App | Runtime_work | Monitor_work
type consume_result = Completed | Interrupted | Starved

type t = {
  nvm : Nvm.t;
  clock : Clock.t;
  capacitor : Capacitor.t;
  policy : Charging_policy.t;
  log : Log.t;
  horizon : Time.t;
  mutable scheduled_failures : Time.t list;  (* sorted ascending *)
  mutable off : Time.t;
  mutable time_app : Time.t;
  mutable time_runtime : Time.t;
  mutable time_monitor : Time.t;
  mutable energy_app : Energy.energy;
  mutable energy_runtime : Energy.energy;
  mutable energy_monitor : Energy.energy;
  mutable failures : int;
  mutable starved : bool;
}

let default_capacitor () =
  Capacitor.create
    ~capacity:(Energy.mj 100.)
    ~on_threshold:(Energy.mj 95.)
    ~off_threshold:(Energy.mj 10.)
    ()

let create ?capacitor ?policy ?clock ?horizon () =
  let capacitor =
    match capacitor with Some c -> c | None -> default_capacitor ()
  in
  let policy =
    match policy with
    | Some p -> p
    | None -> Charging_policy.Fixed_delay (Time.of_min 1)
  in
  let clock = match clock with Some c -> c | None -> Clock.create () in
  let horizon = match horizon with Some h -> h | None -> Time.of_min 360 in
  {
    nvm = Nvm.create ();
    clock;
    capacitor;
    policy;
    log = Log.create ();
    horizon;
    scheduled_failures = [];
    off = Time.zero;
    time_app = Time.zero;
    time_runtime = Time.zero;
    time_monitor = Time.zero;
    energy_app = Energy.zero;
    energy_runtime = Energy.zero;
    energy_monitor = Energy.zero;
    failures = 0;
    starved = false;
  }

let nvm t = t.nvm
let log t = t.log
let capacitor t = t.capacitor
let now t = Clock.now t.clock
let sim_time t = Clock.elapsed_ground_truth t.clock
let record t event = Log.record t.log ~at:(now t) event

let account t category dt energy =
  match category with
  | App ->
      t.time_app <- Time.add t.time_app dt;
      t.energy_app <- Energy.add t.energy_app energy
  | Runtime_work ->
      t.time_runtime <- Time.add t.time_runtime dt;
      t.energy_runtime <- Energy.add t.energy_runtime energy
  | Monitor_work ->
      t.time_monitor <- Time.add t.time_monitor dt;
      t.energy_monitor <- Energy.add t.energy_monitor energy

let schedule_failure t ~at =
  t.scheduled_failures <-
    List.sort Time.compare (at :: t.scheduled_failures)

(* Pop the first scheduled failure that lands strictly inside the window
   [start, start + duration).  Entries already in the past (e.g. times
   that fell into an off-period) are dropped so they cannot shadow later
   ones. *)
let rec pop_scheduled_failure t ~start ~duration =
  match t.scheduled_failures with
  | at :: rest when Time.(at < start) ->
      t.scheduled_failures <- rest;
      pop_scheduled_failure t ~start ~duration
  | at :: rest when Time.(at < Time.add start duration) ->
      t.scheduled_failures <- rest;
      Some (Time.sub at start)
  | _ -> None

let handle_power_failure t ~during =
  t.failures <- t.failures + 1;
  record t (Event.Power_failure { during_task = during });
  Nvm.power_failure t.nvm;
  match Charging_policy.recharge t.policy ~now:(sim_time t) ~capacitor:t.capacitor with
  | None ->
      t.starved <- true;
      record t (Event.Horizon_reached { reason = "harvester starved" });
      Starved
  | Some delay ->
      Clock.advance_off t.clock delay;
      t.off <- Time.add t.off delay;
      Clock.record_reboot t.clock;
      record t (Event.Reboot { charging_delay = delay });
      Interrupted

let force_power_failure t ?during () =
  if t.starved then Starved else handle_power_failure t ~during

let consume t category ?during ~power ~duration () =
  if Time.is_negative duration then invalid_arg "Device.consume: negative duration";
  if t.starved then Starved
  else
    let forced = pop_scheduled_failure t ~start:(sim_time t) ~duration in
    match forced with
    | Some offset ->
        (* Run up to the injected failure point, then brown out. *)
        let partial_energy = Energy.consumed power offset in
        ignore (Capacitor.drain t.capacitor partial_energy);
        Clock.advance t.clock offset;
        account t category offset partial_energy;
        handle_power_failure t ~during
    | None ->
        if Energy.to_uw power <= 0. then begin
          Clock.advance t.clock duration;
          account t category duration Energy.zero;
          Completed
        end
        else
          let want = Energy.consumed power duration in
          (match Capacitor.drain t.capacitor want with
          | Capacitor.Drained ->
              Clock.advance t.clock duration;
              account t category duration want;
              Completed
          | Capacitor.Depleted drawn ->
              let partial = Energy.time_to_consume power drawn in
              Clock.advance t.clock partial;
              account t category partial drawn;
              handle_power_failure t ~during)

let horizon_exceeded t = t.starved || Time.(sim_time t > t.horizon)

let time_in t = function
  | App -> t.time_app
  | Runtime_work -> t.time_runtime
  | Monitor_work -> t.time_monitor

let energy_in t = function
  | App -> t.energy_app
  | Runtime_work -> t.energy_runtime
  | Monitor_work -> t.energy_monitor

let off_time t = t.off

let total_energy t =
  Energy.add t.energy_app (Energy.add t.energy_runtime t.energy_monitor)

let power_failures t = t.failures
let reboots t = Clock.reboots t.clock
