open Artemis_util
module Nvm = Artemis_nvm.Nvm
module Capacitor = Artemis_energy.Capacitor
module Charging_policy = Artemis_energy.Charging_policy
module Clock = Artemis_clock.Persistent_clock
module Log = Artemis_trace.Log
module Event = Artemis_trace.Event
module Obs = Artemis_obs.Obs

type category = App | Runtime_work | Monitor_work

(* Observability: the counters mirror the log (they are bumped at the
   single [record] chokepoint), so an enabled-for-the-whole-run registry
   reconciles exactly with the [Stats] derived from the same log. *)
let m_task_executions = Obs.counter "task_executions"
let m_task_completions = Obs.counter "task_completions"
let m_power_failures = Obs.counter "power_failures"
let m_reboots = Obs.counter "reboots"
let m_path_restarts = Obs.counter "path_restarts"
let m_path_skips = Obs.counter "path_skips"
let m_monitor_verdicts = Obs.counter "monitor_verdicts"
let m_runtime_actions = Obs.counter "runtime_actions"
let g_energy_app = Obs.gauge "energy_app_uj"
let g_energy_runtime = Obs.gauge "energy_runtime_uj"
let g_energy_monitor = Obs.gauge "energy_monitor_uj"
let g_capacitor = Obs.gauge "capacitor_uj"
let h_consume = Obs.histogram "consume_us"
let h_charging = Obs.histogram "charging_delay_us"

let observe_event obs event =
  (match event with
  | Event.Task_started _ -> Obs.Ctx.incr obs m_task_executions
  | Event.Task_completed _ -> Obs.Ctx.incr obs m_task_completions
  | Event.Power_failure _ -> Obs.Ctx.incr obs m_power_failures
  | Event.Reboot _ -> Obs.Ctx.incr obs m_reboots
  | Event.Path_restarted _ -> Obs.Ctx.incr obs m_path_restarts
  | Event.Path_skipped _ -> Obs.Ctx.incr obs m_path_skips
  | Event.Monitor_verdict _ -> Obs.Ctx.incr obs m_monitor_verdicts
  | Event.Runtime_action _ -> Obs.Ctx.incr obs m_runtime_actions
  | _ -> ());
  if Obs.Ctx.tracing_enabled obs then
    match event with
    | Event.Boot -> Obs.Ctx.instant obs ~cat:"power" "boot"
    | Event.Power_failure { during_task } ->
        let args =
          match during_task with
          | Some task -> [ ("task", Obs.S task) ]
          | None -> []
        in
        Obs.Ctx.instant obs ~cat:"power" ~args "power_failure"
    | Event.Monitor_verdict { monitor; task; action } ->
        Obs.Ctx.instant obs ~cat:"monitor"
          ~args:
            [ ("monitor", Obs.S monitor); ("task", Obs.S task);
              ("action", Obs.S action) ]
          "verdict"
    | Event.Runtime_action { action; task } ->
        Obs.Ctx.instant obs ~cat:"runtime"
          ~args:[ ("action", Obs.S action); ("task", Obs.S task) ]
          "corrective_action"
    | Event.Path_restarted { path; reason } ->
        Obs.Ctx.instant obs ~cat:"runtime"
          ~args:[ ("path", Obs.I path); ("reason", Obs.S reason) ]
          "path_restarted"
    | Event.Path_skipped { path; reason } ->
        Obs.Ctx.instant obs ~cat:"runtime"
          ~args:[ ("path", Obs.I path); ("reason", Obs.S reason) ]
          "path_skipped"
    | Event.App_completed -> Obs.Ctx.instant obs ~cat:"runtime" "app_completed"
    | Event.Horizon_reached { reason } ->
        Obs.Ctx.instant obs ~cat:"runtime"
          ~args:[ ("reason", Obs.S reason) ]
          "horizon_reached"
    | _ -> ()
type consume_result = Completed | Interrupted | Starved

type t = {
  nvm : Nvm.t;
  obs : Obs.ctx;
  clock : Clock.t;
  capacitor : Capacitor.t;
  mutable policy : Charging_policy.t;
  log : Log.t;
  horizon : Time.t;
  mutable scheduled_failures : Time.t list;  (* sorted ascending *)
  mutable off : Time.t;
  mutable time_app : Time.t;
  mutable time_runtime : Time.t;
  mutable time_monitor : Time.t;
  mutable energy_app : Energy.energy;
  mutable energy_runtime : Energy.energy;
  mutable energy_monitor : Energy.energy;
  mutable failures : int;
  mutable starved : bool;
  mutable on_record : (Event.t -> unit) option;
      (* event-tap at the [record] chokepoint: the freshness tracker
         (PR 7) subscribes here, so every runtime backend that logs
         through this device feeds it without depending on it *)
}

let default_capacitor () =
  Capacitor.create
    ~capacity:(Energy.mj 100.)
    ~on_threshold:(Energy.mj 95.)
    ~off_threshold:(Energy.mj 10.)
    ()

let create ?capacitor ?policy ?clock ?horizon ?obs () =
  let capacitor =
    match capacitor with Some c -> c | None -> default_capacitor ()
  in
  let policy =
    match policy with
    | Some p -> p
    | None -> Charging_policy.Fixed_delay (Time.of_min 1)
  in
  let clock = match clock with Some c -> c | None -> Clock.create () in
  let horizon = match horizon with Some h -> h | None -> Time.of_min 360 in
  let obs = match obs with Some o -> o | None -> Obs.current () in
  (* Hand the observability layer this device's simulated clock so spans
     and instants are stamped in simulated microseconds.  The last
     created device on a context wins; each context's devices run
     sequentially. *)
  Obs.Ctx.set_clock obs (fun () -> Time.to_us (Clock.elapsed_ground_truth clock));
  {
    nvm = Nvm.create ~obs ();
    obs;
    clock;
    capacitor;
    policy;
    log = Log.create ();
    horizon;
    scheduled_failures = [];
    off = Time.zero;
    time_app = Time.zero;
    time_runtime = Time.zero;
    time_monitor = Time.zero;
    energy_app = Energy.zero;
    energy_runtime = Energy.zero;
    energy_monitor = Energy.zero;
    failures = 0;
    starved = false;
    on_record = None;
  }

let nvm t = t.nvm
let obs t = t.obs
let log t = t.log
let capacitor t = t.capacitor
let set_policy t policy = t.policy <- policy
let policy t = t.policy
let now t = Clock.now t.clock
let sim_time t = Clock.elapsed_ground_truth t.clock
let set_on_record t hook = t.on_record <- hook
let record t event =
  Log.record t.log ~at:(now t) event;
  observe_event t.obs event;
  match t.on_record with None -> () | Some f -> f event

let account t category dt energy =
  (match category with
  | App ->
      t.time_app <- Time.add t.time_app dt;
      t.energy_app <- Energy.add t.energy_app energy
  | Runtime_work ->
      t.time_runtime <- Time.add t.time_runtime dt;
      t.energy_runtime <- Energy.add t.energy_runtime energy
  | Monitor_work ->
      t.time_monitor <- Time.add t.time_monitor dt;
      t.energy_monitor <- Energy.add t.energy_monitor energy);
  if Obs.Ctx.metrics_enabled t.obs then begin
    Obs.Ctx.observe_us t.obs h_consume (Time.to_us dt);
    Obs.Ctx.set_gauge t.obs g_energy_app (Energy.to_uj t.energy_app);
    Obs.Ctx.set_gauge t.obs g_energy_runtime (Energy.to_uj t.energy_runtime);
    Obs.Ctx.set_gauge t.obs g_energy_monitor (Energy.to_uj t.energy_monitor);
    Obs.Ctx.set_gauge t.obs g_capacitor
      (Energy.to_uj (Capacitor.level t.capacitor))
  end

let schedule_failure t ~at =
  t.scheduled_failures <-
    List.sort Time.compare (at :: t.scheduled_failures)

(* Pop the first scheduled failure that lands strictly inside the window
   [start, start + duration).  Entries already in the past (e.g. times
   that fell into an off-period) are dropped so they cannot shadow later
   ones. *)
let rec pop_scheduled_failure t ~start ~duration =
  match t.scheduled_failures with
  | at :: rest when Time.(at < start) ->
      t.scheduled_failures <- rest;
      pop_scheduled_failure t ~start ~duration
  | at :: rest when Time.(at < Time.add start duration) ->
      t.scheduled_failures <- rest;
      Some (Time.sub at start)
  | _ -> None

let handle_power_failure t ~during =
  t.failures <- t.failures + 1;
  record t (Event.Power_failure { during_task = during });
  Nvm.power_failure t.nvm;
  match Charging_policy.recharge t.policy ~now:(sim_time t) ~capacitor:t.capacitor with
  | None ->
      t.starved <- true;
      record t (Event.Horizon_reached { reason = "harvester starved" });
      Starved
  | Some delay ->
      let t0 = if Obs.Ctx.tracing_enabled t.obs then Obs.Ctx.now_us t.obs else 0 in
      Clock.advance_off t.clock delay;
      t.off <- Time.add t.off delay;
      Clock.record_reboot t.clock;
      if Obs.Ctx.tracing_enabled t.obs then
        Obs.Ctx.span t.obs ~cat:"power" ~begin_us:t0
          ~end_us:(Obs.Ctx.now_us t.obs) "charging";
      Obs.Ctx.observe_us t.obs h_charging (Time.to_us delay);
      record t (Event.Reboot { charging_delay = delay });
      Interrupted

let force_power_failure t ?during () =
  if t.starved then Starved else handle_power_failure t ~during

let consume t category ?during ~power ~duration () =
  if Time.is_negative duration then invalid_arg "Device.consume: negative duration";
  if t.starved then Starved
  else
    let forced = pop_scheduled_failure t ~start:(sim_time t) ~duration in
    match forced with
    | Some offset -> (
        (* Run up to the injected failure point, then brown out.  The
           capacitor may deplete before the injection point is reached;
           in that case the device browns out at the depletion point and
           only the energy actually drawn is accounted, mirroring the
           [Depleted drawn] branch below. *)
        let partial_energy = Energy.consumed power offset in
        match Capacitor.drain t.capacitor partial_energy with
        | Capacitor.Drained ->
            Clock.advance t.clock offset;
            account t category offset partial_energy;
            handle_power_failure t ~during
        | Capacitor.Depleted drawn ->
            let partial = Energy.time_to_consume power drawn in
            Clock.advance t.clock partial;
            account t category partial drawn;
            handle_power_failure t ~during)
    | None ->
        if Energy.to_uw power <= 0. then begin
          Clock.advance t.clock duration;
          account t category duration Energy.zero;
          Completed
        end
        else
          let want = Energy.consumed power duration in
          (match Capacitor.drain t.capacitor want with
          | Capacitor.Drained ->
              Clock.advance t.clock duration;
              account t category duration want;
              Completed
          | Capacitor.Depleted drawn ->
              let partial = Energy.time_to_consume power drawn in
              Clock.advance t.clock partial;
              account t category partial drawn;
              handle_power_failure t ~during)

let horizon_exceeded t = t.starved || Time.(sim_time t > t.horizon)

let time_in t = function
  | App -> t.time_app
  | Runtime_work -> t.time_runtime
  | Monitor_work -> t.time_monitor

let energy_in t = function
  | App -> t.energy_app
  | Runtime_work -> t.energy_runtime
  | Monitor_work -> t.energy_monitor

let off_time t = t.off

let total_energy t =
  Energy.add t.energy_app (Energy.add t.energy_runtime t.energy_monitor)

let power_failures t = t.failures
let reboots t = Clock.reboots t.clock
