(** Cycle-cost calibration of the runtimes.

    The paper measures overheads on an MSP430FR5994 at 1 MHz; we charge
    overhead work in MCU cycles and convert to time at the configured
    frequency.  The default constants are calibrated so that one
    continuous-power run of the benchmark lands on the Figure 14/15
    scales (seconds of app time, low milliseconds of overhead), with
    ARTEMIS slightly above Mayfly - the paper's qualitative result.  All
    constants are plain record fields so experiments can sweep them. *)

open Artemis_util

type t = {
  mcu_frequency_hz : int;
  mcu_active_power : Energy.power;
      (** baseline MCU draw while executing anything *)
  artemis_runtime_cycles_per_event : int;
      (** checkTask/taskFinish bookkeeping around each task event *)
  artemis_monitor_dispatch_cycles : int;
      (** callMonitor entry/exit, event marshalling *)
  artemis_monitor_cycles_per_property : int;
      (** one FSM step per active property *)
  mayfly_runtime_cycles_per_event : int;
      (** Mayfly main-loop bookkeeping per task event *)
  mayfly_cycles_per_property : int;
      (** fused in-loop check (expiration / collect) *)
  table_op_cycles : int;
      (** worst-case cycles per executed monitor guard/body bytecode op
          (energy-admissibility bound margin; not charged by the
          simulator, which uses the flat per-property constant) *)
  nvm_write_cycles : int;
      (** worst-case cycles per FRAM word write a fired monitor body
          performs (bound margin, same caveat as {!table_op_cycles}) *)
}

val default : t

val cycles_to_time : t -> int -> Time.t
(** Rounds {e up} to the next microsecond: the conversion feeds static
    bounds, so it must never under-account.  Exact (byte-identical to
    the historical truncating version) whenever
    [cycles * 1_000_000 mod mcu_frequency_hz = 0] - in particular at
    the 1 MHz default. *)

val artemis_runtime_overhead : t -> Time.t
(** Per task event (start or end). *)

val artemis_monitor_overhead : t -> properties:int -> Time.t
(** Per task event given the number of properties the monitors evaluate. *)

val mayfly_runtime_overhead : t -> Time.t
val mayfly_check_overhead : t -> properties:int -> Time.t

val overhead_power : t -> Energy.power
(** Overhead work draws only the MCU baseline (no peripherals). *)
