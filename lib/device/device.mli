(** Discrete-event simulator of an intermittently powered MCU.

    This is the substitute for the paper's MSP430FR5994 testbed.  The
    device owns the simulated FRAM ({!Artemis_nvm.Nvm}), the persistent
    clock, the capacitor and the charging policy; runtimes execute work by
    calling {!consume}, which advances time while draining the capacitor
    and transparently models brown-outs:

    - the partial work up to depletion still costs its time and energy;
    - volatile state and the open NVM transaction are lost;
    - the charging policy decides how long the device stays dark;
    - a reboot is logged and the caller is told the work was interrupted.

    All time and energy is accounted per {!category} so the overhead
    breakdowns of Figures 14-16 fall out of the accounting directly. *)

open Artemis_util

type t

type category =
  | App  (** application task bodies *)
  | Runtime_work  (** intermittent-runtime bookkeeping *)
  | Monitor_work  (** property checking *)

type consume_result =
  | Completed  (** the whole duration ran without interruption *)
  | Interrupted  (** a power failure cut the work short; device rebooted *)
  | Starved  (** power failed and the harvester can never recharge *)

val create :
  ?capacitor:Artemis_energy.Capacitor.t ->
  ?policy:Artemis_energy.Charging_policy.t ->
  ?clock:Artemis_clock.Persistent_clock.t ->
  ?horizon:Time.t ->
  ?obs:Artemis_obs.Obs.ctx ->
  unit ->
  t
(** Defaults: a 100 mJ capacitor with 90 mJ usable budget, a fixed
    1-minute charging delay, a 1 ms-granularity drift-free clock, and a
    6-hour simulation horizon.  [obs] is the observability context the
    device (and everything built on it: nvm, runtime, monitors) records
    into; it defaults to the calling domain's current context and
    receives this device's simulated clock. *)

val nvm : t -> Artemis_nvm.Nvm.t

val obs : t -> Artemis_obs.Obs.ctx
(** The device's observability context (also reachable as
    [Nvm.obs (nvm t)]). *)

val log : t -> Artemis_trace.Log.t
val capacitor : t -> Artemis_energy.Capacitor.t

val set_policy : t -> Artemis_energy.Charging_policy.t -> unit
val policy : t -> Artemis_energy.Charging_policy.t
(** Replace the charging policy.  Scenario builders pick their own
    policy at {!create} time; the fleet runner overrides it here to
    sweep one scenario across harvester profiles before the run
    starts. *)

val now : t -> Time.t
(** Timestamp as the software observes it (persistent-clock read). *)

val sim_time : t -> Time.t
(** Exact simulation time. *)

val record : t -> Artemis_trace.Event.t -> unit
(** Log an event at the current time. *)

val set_on_record : t -> (Artemis_trace.Event.t -> unit) option -> unit
(** Install (or clear) an event tap invoked synchronously by {!record}
    after the event has been logged.  Every runtime backend logs through
    this single chokepoint, so a subscriber - the input-freshness
    tracker ({!Artemis_consistency.Freshness}) timestamps producer
    completions and audits consumer starts/commits here - observes all
    of them without the device depending on it.  The hook must not
    raise and must not call back into the device. *)

val consume :
  t -> category -> ?during:string -> power:Energy.power -> duration:Time.t ->
  unit -> consume_result
(** Execute work of the given constant power draw and duration.
    [during] names the task for the power-failure log entry.  A
    non-positive power advances time without draining.
    @raise Invalid_argument on a negative duration. *)

val force_power_failure : t -> ?during:string -> unit -> consume_result
(** Model a power failure right now, independent of the capacitor level:
    abort volatile/transactional state, log the failure and recharge via
    the charging policy.  Returns [Interrupted] (device rebooted) or
    [Starved].  This is the recovery half of injected fault-simulation
    failures ({!Artemis_nvm.Nvm.Injected_failure}). *)

val schedule_failure : t -> at:Time.t -> unit
(** Test hook: force a power failure the next time [consume] crosses the
    given absolute simulation time (the capacitor is drained at that
    point regardless of its level). *)

val horizon_exceeded : t -> bool

(* Accounting *)

val time_in : t -> category -> Time.t
val energy_in : t -> category -> Energy.energy
val off_time : t -> Time.t
val total_energy : t -> Energy.energy
val power_failures : t -> int
val reboots : t -> int
