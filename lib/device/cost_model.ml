open Artemis_util

type t = {
  mcu_frequency_hz : int;
  mcu_active_power : Energy.power;
  artemis_runtime_cycles_per_event : int;
  artemis_monitor_dispatch_cycles : int;
  artemis_monitor_cycles_per_property : int;
  mayfly_runtime_cycles_per_event : int;
  mayfly_cycles_per_property : int;
  table_op_cycles : int;
  nvm_write_cycles : int;
}

let default =
  {
    mcu_frequency_hz = 1_000_000;
    mcu_active_power = Energy.mw 1.2;
    artemis_runtime_cycles_per_event = 400;
    artemis_monitor_dispatch_cycles = 180;
    artemis_monitor_cycles_per_property = 120;
    mayfly_runtime_cycles_per_event = 260;
    mayfly_cycles_per_property = 150;
    table_op_cycles = 6;
    nvm_write_cycles = 30;
  }

let cycles_to_time t cycles =
  (* 1e6 us per second / f cycles per second = us per cycle; round UP so
     the conversion is conservative - truncating under-accounted every
     overhead at frequencies that don't divide 1 MHz (180 cycles at
     8 MHz is 22.5 us, not 22), which would let a measured cost exceed
     a static bound built from the same constants. *)
  Time.of_us ((cycles * 1_000_000 + t.mcu_frequency_hz - 1) / t.mcu_frequency_hz)

let artemis_runtime_overhead t = cycles_to_time t t.artemis_runtime_cycles_per_event

let artemis_monitor_overhead t ~properties =
  cycles_to_time t
    (t.artemis_monitor_dispatch_cycles
    + (t.artemis_monitor_cycles_per_property * properties))

let mayfly_runtime_overhead t = cycles_to_time t t.mayfly_runtime_cycles_per_event

let mayfly_check_overhead t ~properties =
  cycles_to_time t (t.mayfly_cycles_per_property * properties)

let overhead_power t = t.mcu_active_power
