(** Work-stealing parallel map over OCaml 5 domains.

    Built for the campaign/sweep fan-out: the index space is split into
    one contiguous range per worker, workers self-schedule [chunk]-sized
    chunks off their own range and steal the upper half of the fattest
    remaining range when theirs drains.  Results are written at their
    input index, so the output array is in input order regardless of
    which domain ran what - the deterministic-merge property the
    parallel faultsim runner depends on.

    The mapped function runs on worker domains: it must not touch
    domain-unsafe shared state.  Each spawned domain starts with its own
    quiet {!Artemis_obs.Obs} context, and simulator callers build a
    fresh Device/Nvm/Suite per index, so runs are isolated by
    construction. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: what [--jobs] defaults to when
    the caller asks for "all cores" ([--jobs 0] in the CLIs). *)

val auto_chunk : jobs:int -> int -> int
(** The default chunk for an [n]-item map over [jobs] workers:
    [max 1 (n / (jobs * 8))].  The whole map then costs O(jobs) lock
    operations instead of O(n), while steals can still rebalance a
    skewed tail. *)

val map : jobs:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [Array.init n f] evaluated in parallel.  The
    effective worker count is [jobs] capped at both [n] and
    {!recommended_jobs} - extra domains beyond the machine's cores can
    only time-slice and stall every minor GC, so they are never spawned
    (an effective count of 1 runs inline with no domain spawned).
    [chunk] is how many consecutive indices a worker claims per queue
    operation; it defaults to {!auto_chunk} and results are identical
    for every chunk value.  If [f] raises, the first exception (by
    completion order) is re-raised after all workers drain.

    @raise Invalid_argument if [jobs < 1] or [chunk < 1]. *)

val map_list : jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}, preserving order. *)
