(** Work-stealing parallel map over OCaml 5 domains.

    Built for the campaign/sweep fan-out: the index space is split into
    one contiguous range per worker, workers self-schedule [chunk]-sized
    chunks off their own range and steal the upper half of the fattest
    remaining range when theirs drains.  Results are written at their
    input index, so the output array is in input order regardless of
    which domain ran what - the deterministic-merge property the
    parallel faultsim runner depends on.

    The mapped function runs on worker domains: it must not touch
    domain-unsafe shared state.  Each spawned domain starts with its own
    quiet {!Artemis_obs.Obs} context, and simulator callers build a
    fresh Device/Nvm/Suite per index, so runs are isolated by
    construction. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: what [--jobs] defaults to when
    the caller asks for "all cores". *)

val map : jobs:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [Array.init n f] evaluated on [min jobs n]
    domains ([jobs = 1] runs inline with no domain spawned).  [chunk]
    (default 1) is how many consecutive indices a worker claims per
    queue operation - raise it when per-index work is tiny.  If [f]
    raises, the first exception (by completion order) is re-raised after
    all workers drain.

    @raise Invalid_argument if [jobs < 1] or [chunk < 1]. *)

val map_list : jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}, preserving order. *)
