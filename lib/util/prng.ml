type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 step; the classic constants give good avalanche behaviour. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Independent stream per index, derived without drawing from [t]: the
   parent state and the index are combined and pushed through two
   finalizer rounds so neighbouring indices land on uncorrelated
   trajectories.  Deterministic in (parent state, index) only, which is
   what lets a parallel fan-out derive run [i]'s stream directly. *)
let split t ~index =
  if index < 0 then invalid_arg "Prng.split: negative index";
  let child =
    { state =
        Int64.add t.state
          (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L) }
  in
  ignore (next_int64 child);
  ignore (next_int64 child);
  child

let int_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_range: hi < lo";
  lo + (next_int t mod (hi - lo + 1))

let float_range t ~lo ~hi =
  (* 2^62 as a float: OCaml's native int is 63-bit, so (1 lsl 62) would
     overflow to min_int *)
  let unit = float_of_int (next_int t) /. Float.ldexp 1. 62 in
  lo +. (unit *. (hi -. lo))

let bool t = next_int t land 1 = 1
