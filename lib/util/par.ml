(* Work-stealing parallel map over OCaml 5 domains.

   The index space [0, n) is split evenly into one contiguous range per
   worker.  A worker repeatedly takes a chunk off the front of its own
   range; when the range is empty it steals the upper half of the
   largest remaining range.  All ranges live behind one mutex - take
   operations are two integer updates, so the lock is never contended
   for long and the scheme needs no atomics or lock-free queues.

   Two scaling bugs fixed in PR 8 (BENCH_PR5 measured jobs=8 at 2.2x the
   jobs=1 wall time on one core):

   - the default chunk was 1, so every mapped item took the global mutex
     once; under contention each blocked lock is a futex round-trip, and
     on an oversubscribed machine it is a scheduler quantum.  The chunk
     now defaults to ~n/(jobs*8) so the whole map costs O(jobs) lock
     operations while steals can still rebalance tails.
   - [jobs] was taken literally, so asking for more workers than the
     machine has cores spawned domains that can only time-slice - and
     every minor GC then waits for all of them to reach a safepoint.
     Effective parallelism is now capped at
     [Domain.recommended_domain_count]; results are written at their
     input index, so the output is identical either way.

   Results land in a preallocated array at their input index, so the
   output order is independent of the (nondeterministic) execution
   order - this is what lets the parallel campaign runner produce
   byte-identical reports. *)

type range = { mutable lo : int; mutable hi : int }  (* [lo, hi) *)

let recommended_jobs () = Domain.recommended_domain_count ()

(* One lock operation per ~1/8 of a worker's even share: coarse enough
   that the mutex disappears from profiles, fine enough that stealing
   can still even out a skewed tail. *)
let auto_chunk ~jobs n = max 1 (n / (jobs * 8))

let map ~jobs ?chunk n f =
  if jobs < 1 then invalid_arg "Par.map: jobs must be >= 1";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Par.map: chunk must be >= 1"
  | _ -> ());
  if n < 0 then invalid_arg "Par.map: negative size";
  let jobs = min (min jobs n) (max 1 (recommended_jobs ())) in
  if n = 0 then [||]
  else if jobs <= 1 then Array.init n f
  else begin
    let chunk =
      match chunk with Some c -> c | None -> auto_chunk ~jobs n
    in
    let results = Array.make n None in
    let mu = Mutex.create () in
    let failed : (exn * Printexc.raw_backtrace) option ref = ref None in
    let ranges =
      Array.init jobs (fun w ->
          { lo = w * n / jobs; hi = (w + 1) * n / jobs })
    in
    let take w =
      Mutex.lock mu;
      let r = ranges.(w) in
      if !failed <> None then begin
        Mutex.unlock mu;
        None
      end
      else begin
        (if r.lo >= r.hi then begin
           (* own range drained: steal the upper half of the fattest one *)
           let victim = ref (-1) and best = ref 0 in
           Array.iteri
             (fun i v ->
               let left = v.hi - v.lo in
               if left > !best then begin
                 best := left;
                 victim := i
               end)
             ranges;
           if !victim >= 0 then begin
             let v = ranges.(!victim) in
             let mid = v.lo + ((v.hi - v.lo) / 2) in
             r.lo <- mid;
             r.hi <- v.hi;
             v.hi <- mid
           end
         end);
        if r.lo >= r.hi then begin
          Mutex.unlock mu;
          None
        end
        else begin
          let lo = r.lo in
          let hi = min (lo + chunk) r.hi in
          r.lo <- hi;
          Mutex.unlock mu;
          Some (lo, hi)
        end
      end
    in
    let record_failure exn bt =
      Mutex.lock mu;
      if !failed = None then failed := Some (exn, bt);
      Mutex.unlock mu
    in
    let rec worker w =
      match take w with
      | None -> ()
      | Some (lo, hi) ->
          (try
             for i = lo to hi - 1 do
               results.(i) <- Some (f i)
             done
           with exn ->
             let bt = Printexc.get_raw_backtrace () in
             record_failure exn bt);
          worker w
    in
    let domains =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    Array.iter Domain.join domains;
    (match !failed with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index was executed or we raised *))
      results
  end

let map_list ~jobs ?chunk f xs =
  let arr = Array.of_list xs in
  Array.to_list (map ~jobs ?chunk (Array.length arr) (fun i -> f arr.(i)))
