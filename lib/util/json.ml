type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- rendering --- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

let float_lit f =
  if Float.is_finite f then Printf.sprintf "%.3f" f else "null"

let int_lit = string_of_int

(* --- parsing --- *)

exception Fail of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match text.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub text !pos 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape"
                   | Some code ->
                       (* decode only the ASCII range; everything the
                          harness emits is ASCII *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else Buffer.add_string buf (Printf.sprintf "\\u%04x" code));
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let seen = ref false in
      while
        !pos < n && match text.[!pos] with '0' .. '9' -> true | _ -> false
      do
        seen := true;
        advance ()
      done;
      if not !seen then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "JSON error at byte %d: %s" at msg)

let parse_exn text =
  match parse text with Ok v -> v | Error msg -> failwith msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None
