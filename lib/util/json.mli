(** Minimal JSON support shared by every exporter in the harness.

    Two halves, deliberately small so the simulator keeps zero external
    dependencies:

    - {b rendering helpers} used by {!module:Artemis_trace.Export}, the
      observability layer and the fault-injection reports, so every
      hand-rolled JSON emitter escapes strings and renders floats the
      same (JSON-safe) way;
    - a {b strict parser} used as the project's JSON checker: the golden
      tests and the CLIs re-parse what the emitters produced instead of
      trusting them. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** {1 Rendering} *)

val escape : string -> string
(** Backslash-escape quotes, backslashes, newlines and control
    characters; the result is valid between double quotes. *)

val quote : string -> string
(** [escape] wrapped in double quotes. *)

val float_lit : float -> string
(** JSON-safe float literal with three decimals ([%.3f]).  JSON has no
    [nan] or [inf] tokens, so non-finite values render as [null] instead
    of corrupting the document. *)

val int_lit : int -> string

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Strict recursive-descent parse of a complete document (one value,
    then end of input).  Error messages carry the byte offset. *)

val parse_exn : string -> t

(** {1 Accessors (for tests and validators)} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option
