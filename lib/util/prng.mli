(** Small deterministic pseudo-random generator (splitmix64).

    Synthetic sensor waveforms and failure-injection tests need randomness
    that is reproducible across runs and independent of the global
    [Random] state, so each stream owns its own generator seeded
    explicitly. *)

type t

val create : seed:int -> t
val copy : t -> t

val split : t -> index:int -> t
(** A child generator derived from [t]'s current state and [index]
    without advancing [t].  The same (state, index) pair always yields
    the same stream, and distinct indices yield uncorrelated streams -
    the per-run derivation the parallel campaign fan-out uses so no
    sequential pre-drawing is needed.
    @raise Invalid_argument if [index < 0]. *)

val next_int : t -> int
(** Next non-negative 62-bit integer. *)

val int_range : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. @raise Invalid_argument if [hi < lo]. *)

val float_range : t -> lo:float -> hi:float -> float
val bool : t -> bool
