(** One-time compilation of intermediate-language machines into a fast
    executable form (the deploy-time counterpart of the generated C of
    Section 4.2: pay for static precomputation once, keep the per-event
    path tight).

    Compilation interns state and variable names to dense integer ids,
    resolves every [Var]/[Assign] to an array slot, translates
    expressions, guards and statement bodies into OCaml closures, and
    precomputes a per-state [(task, Start|End) -> transition candidates]
    table.  The per-event path then performs no list scans, no string
    comparisons for state or variable lookup, and never re-traverses the
    AST: trigger dispatch is one hash lookup, variable access is one
    array index.

    {!Interp} remains the reference semantics: for every machine, store
    and event trace, {!step} is observationally equivalent to
    {!Interp.step} (same states, same variable values, same failures,
    same dynamic errors) - enforced by the differential tests. *)

type t
(** A compiled machine. *)

type store = {
  get : int -> Ast.value;       (** read the variable in a slot *)
  set : int -> Ast.value -> unit;
  get_state : unit -> int;      (** current state as an interned id *)
  set_state : int -> unit;
}
(** Slot-indexed store: the compiled analogue of {!Interp.store}.  Slots
    are variable declaration order; state ids are state declaration
    order. *)

val compile : Ast.machine -> t
(** Typecheck and compile.  @raise Failure if the machine is ill-typed
    (same behaviour as {!Typecheck.check_exn}). *)

val machine : t -> Ast.machine
(** The source machine (unchanged). *)

val name : t -> string

(** {2 Interning tables} *)

val state_count : t -> int
val state_name : t -> int -> string
val state_id : t -> string -> int
(** @raise Not_found for an unknown state name. *)

val initial_state : t -> int

val var_count : t -> int
val var_name : t -> int -> string
val var_id : t -> string -> int
(** @raise Not_found for an unknown variable name. *)

val var_decls : t -> Ast.var_decl array
(** Declarations in slot order (slot [i] holds variable
    [(var_decls t).(i)]). *)

(** {2 Execution} *)

val memory_store : t -> store
(** Fresh array-backed store initialized from the declarations. *)

val step : t -> store -> Interp.event -> Interp.failure list
(** Process one event; first trigger-and-guard-matching transition of the
    current state fires, in declaration order, exactly as
    {!Interp.step}.  @raise Interp.Runtime_error on the same dynamic
    errors (missing [data(x)] payload, division by zero). *)

(** {2 Static trigger information} *)

val watched_tasks : t -> string list
(** Distinct task names appearing in [On_start]/[On_end] triggers, in
    first-mention order. *)

val watches_any_event : t -> bool
(** Whether any transition uses the [On_any] trigger (such a machine
    watches every task). *)

val mentions_task : t -> string -> bool
(** O(1) equivalent of {!Interp.mentions_task}: hash lookup, and [true]
    for every task when the machine uses [On_any]. *)

val pp_event_key : Format.formatter -> Interp.event_kind * string -> unit
(** Diagnostics: render a dispatch key as [startTask(t)]/[endTask(t)]. *)
