(** Table-driven monitor engine: machines lowered to flat integer arrays.

    The third execution engine (after {!Interp} and {!Compile}).  Where
    the closure-compiled engine still allocates a closure per compiled
    expression node and chases a pointer per call, this pass lowers a
    typechecked machine into dense integer tables:

    - states, variables and watched tasks are interned to dense ids;
    - trigger dispatch is one dense [(state, kind, task) -> candidates]
      row lookup (rows are offsets into a CSR-style candidate array);
    - guards and statement bodies are compiled to a small postfix
      bytecode executed over an int and a float operand stack, with all
      literals, [data(_)] keys and precomputed failure records held in
      constant pools.

    Because the typechecker has already assigned every expression a
    static type, the bytecode is monomorphic: int, bool and time values
    travel the int stack ([time] is its microsecond count, [bool] is
    0/1), floats travel the float stack, and no tagging or boxing
    happens at run time.  A steady-state step - dispatch, guard
    evaluation, body execution, state update - allocates nothing
    (enforced by a [Gc.minor_words] test) and touches only the
    machine's contiguous register block.

    {!Interp} remains the reference semantics: for every machine, store
    and event trace, {!step} is observationally equivalent to
    {!Interp.step} and {!Compile.step} - same states, same variable
    values, same failures, same dynamic errors with identical messages
    - enforced by the three-way differential fuzz tests. *)

type t
(** A lowered machine: immutable tables shared by all its instances. *)

val compile : Ast.machine -> t
(** Typecheck and lower.  @raise Failure if the machine is ill-typed
    (same behaviour as {!Typecheck.check_exn}). *)

val machine : t -> Ast.machine
val name : t -> string

(** {2 Interning tables} *)

val state_count : t -> int
val state_name : t -> int -> string

val state_id : t -> string -> int
(** @raise Not_found for an unknown state name. *)

val initial_state : t -> int
val var_count : t -> int
val var_name : t -> int -> string

val var_id : t -> string -> int
(** @raise Not_found for an unknown variable name.  Slots are variable
    declaration order, compatible with {!Compile.var_id}. *)

val var_decls : t -> Ast.var_decl array

val task_count : t -> int
(** Watched task names interned by this machine (excludes the implicit
    "unknown task" dispatch column). *)

(** {2 Flat-buffer footprint}

    Everything the engine touches per step, in machine words.  This is
    what [artemisc --engine table] reports per property and what an
    NVM-resident deployment of the tables would occupy. *)

val dispatch_words : t -> int
(** Dense dispatch rows + CSR candidate segments + per-transition
    (guard pc, body pc, target) metadata. *)

val code_words : t -> int
(** Bytecode words + float constant pool entries. *)

val buffer_words : t -> int
(** [dispatch_words + code_words]. *)

val int_regs : t -> int
(** Mutable int-class registers (control state + int/bool/time vars). *)

val float_regs : t -> int

(** {2 Instances}

    An instance is a machine's mutable run state: a block of int
    registers (register 0 is the control state) and a block of float
    registers, plus reusable operand-stack scratch.  [pack] lays several
    machines' registers out in one shared pair of arrays, so a whole
    suite's monitor state is two contiguous buffers - snapshotable with
    two [Array.copy]. *)

type inst

val instance :
  ?var_sink:(int -> unit) -> ?state_sink:(int -> unit) -> t -> inst
(** Fresh instance with registers set from the declarations.
    [var_sink slot] is called immediately after each variable
    assignment commits to the register file, [state_sink id] after a
    fired transition updates the control state - the NVM-backed monitor
    uses them to write the same FRAM cells the other engines write, in
    the same order.  Both default to no-ops (the memory-backed form). *)

type packed = {
  p_ints : int array;  (** every instance's int registers, contiguous *)
  p_floats : float array;
  p_insts : inst list;  (** same order as the input tables *)
}

val pack : t list -> packed
(** One contiguous register buffer for a whole suite of machines. *)

val step : t -> inst -> Interp.event -> Interp.failure list
(** Process one event; the first trigger-and-guard-matching transition
    of the current state fires, in declaration order, exactly as
    {!Interp.step}.  Returns [[]] (no allocation) on the steady-state
    path.  @raise Interp.Runtime_error on the same dynamic errors as
    the other engines (missing [data(x)] payload, division by zero),
    with identical messages. *)

val current_state : inst -> int
val set_state : inst -> int -> unit

val read_var : t -> inst -> int -> Ast.value
(** Box the register holding slot [i] back into an {!Ast.value}. *)

val load_var : t -> inst -> int -> Ast.value -> unit
(** Poke a value into slot [i]'s register without invoking the sink
    (used to refresh registers from the durable FRAM copy). *)

val reset_vars : t -> inst -> unit
(** Registers back to declared initial values and the initial state;
    sinks are not invoked. *)

(** {2 Static trigger information} *)

val watched_tasks : t -> string list
val watches_any_event : t -> bool
val mentions_task : t -> string -> bool

(** {2 Static worst-case step costs}

    Per-(state, event-kind) worst-case work of one {!step}, measured in
    executed bytecode ops and FRAM writes - the structural inputs of the
    energy-admissibility analysis.  Sound because the statement language
    has no loops: every jump is forward, so a linear opcode scan to the
    program's HALT bounds any dynamic execution.  Quick-form (quickened)
    guards and bodies are charged their equivalent op counts. *)

type step_cost = {
  cost_state : string;
  cost_start : bool;  (** true for a start event, false for an end event *)
  cost_guard_ops : int;
      (** every candidate guard of the worst dispatch column evaluates *)
  cost_body_ops : int;  (** worst single fired body *)
  cost_nvm_writes : int;
      (** fired body's var stores + the control-state write *)
}

val step_costs : t -> step_cost list
(** One entry per (state, kind) from which at least one transition can
    fire; a step from any other configuration does dispatch work only.
    Each field is maximised independently over the dispatch columns, so
    combining them stays an upper bound for every concrete event. *)
