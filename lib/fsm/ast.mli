(** Abstract syntax of the ARTEMIS intermediate language (Section 3.3).

    A monitor is a single state machine.  Transitions are triggered by the
    runtime's task events ([startTask]/[endTask] with a timestamp, or
    [anyEvent]), may carry boolean guards, and their bodies contain
    assignments, conditionals and [fail] statements that signal a property
    violation together with the corrective action the runtime should
    take.  Events without a matching transition are accepted silently
    (implicit self-transition), exactly as the paper specifies. *)

open Artemis_util

type ty = Tint | Tbool | Tfloat | Ttime

type value = Vint of int | Vbool of bool | Vfloat of float | Vtime of Time.t

type action =
  | Restart_path
  | Skip_path
  | Restart_task
  | Skip_task
  | Complete_path

type var_decl = {
  var_name : string;
  ty : ty;
  init : value;
  persistent : bool;
      (** survives monitor re-initialisation on path restart (attempt and
          collect counters; see DESIGN.md decision 2) *)
}

type trigger =
  | On_start of string  (** startTask(task) *)
  | On_end of string  (** endTask(task) *)
  | On_any  (** anyEvent: both kinds, any task *)

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Lit of value
  | Var of string
  | Timestamp  (** the event's timestamp, written [t] *)
  | Event_path  (** the path the runtime is currently executing, [path] *)
  | Dep_data of string  (** [data(x)]: a monitored task variable (float) *)
  | Energy_level
      (** [energyLevel]: capacitor level in mJ - the Section 4.2.2
          energy-awareness extension primitive *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | Fail of action * int option
      (** signal a violation; the optional int is an explicit target path *)

type transition = {
  trigger : trigger;
  guard : expr option;
  body : stmt list;
  target : string;
}

type state = { state_name : string; transitions : transition list }

type machine = {
  machine_name : string;
  vars : var_decl list;
  initial : string;
  states : state list;
}

val ty_of_value : value -> ty
val ty_to_string : ty -> string
val action_to_string : action -> string
val action_of_string : string -> action option

val equal_value : value -> value -> bool
(** Language equality, as the FSM [==] operator sees it: floats compare
    by IEEE semantics, so [NaN <> NaN] (matching the emitted C). *)

val same_value : value -> value -> bool
(** Observational equality for differential comparison of stores: like
    {!equal_value} but total on floats ([NaN] equals itself), so two
    engines that both computed [NaN] count as agreeing. *)

val equal_machine : machine -> machine -> bool

val find_state : machine -> string -> state option
val find_var : machine -> string -> var_decl option

val pp_value : Format.formatter -> value -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_machine : Format.formatter -> machine -> unit
(** Debug printers; {!Printer} emits parseable concrete syntax. *)
