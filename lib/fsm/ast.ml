open Artemis_util

type ty = Tint | Tbool | Tfloat | Ttime
type value = Vint of int | Vbool of bool | Vfloat of float | Vtime of Time.t

type action =
  | Restart_path
  | Skip_path
  | Restart_task
  | Skip_task
  | Complete_path

type var_decl = { var_name : string; ty : ty; init : value; persistent : bool }
type trigger = On_start of string | On_end of string | On_any
type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Lit of value
  | Var of string
  | Timestamp
  | Event_path
  | Dep_data of string
  | Energy_level
  | Unop of unop * expr
  | Binop of binop * expr * expr

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | Fail of action * int option

type transition = {
  trigger : trigger;
  guard : expr option;
  body : stmt list;
  target : string;
}

type state = { state_name : string; transitions : transition list }

type machine = {
  machine_name : string;
  vars : var_decl list;
  initial : string;
  states : state list;
}

let ty_of_value = function
  | Vint _ -> Tint
  | Vbool _ -> Tbool
  | Vfloat _ -> Tfloat
  | Vtime _ -> Ttime

let ty_to_string = function
  | Tint -> "int"
  | Tbool -> "bool"
  | Tfloat -> "float"
  | Ttime -> "time"

let action_to_string = function
  | Restart_path -> "restartPath"
  | Skip_path -> "skipPath"
  | Restart_task -> "restartTask"
  | Skip_task -> "skipTask"
  | Complete_path -> "completePath"

let action_of_string = function
  | "restartPath" -> Some Restart_path
  | "skipPath" -> Some Skip_path
  | "restartTask" -> Some Restart_task
  | "skipTask" -> Some Skip_task
  | "completePath" -> Some Complete_path
  | _ -> None

let equal_value a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Vtime x, Vtime y -> Time.equal x y
  | (Vint _ | Vbool _ | Vfloat _ | Vtime _), _ -> false

(* Float.compare is a total order with NaN equal to itself (and -0. equal
   to +0.), which is what store-vs-store comparison needs: two engines
   that both overflowed to NaN agree, even though the language's [==]
   says NaN <> NaN. *)
let same_value a b =
  match (a, b) with
  | Vfloat x, Vfloat y -> Float.compare x y = 0
  | _ -> equal_value a b

(* Structural equality is fine for everything except Vtime (abstract),
   which equal_value handles; machines are compared component-wise. *)
let equal_var_decl a b =
  String.equal a.var_name b.var_name
  && a.ty = b.ty && equal_value a.init b.init
  && a.persistent = b.persistent

let rec equal_expr a b =
  match (a, b) with
  | Lit x, Lit y -> equal_value x y
  | Var x, Var y -> String.equal x y
  | Timestamp, Timestamp | Event_path, Event_path | Energy_level, Energy_level ->
      true
  | Dep_data x, Dep_data y -> String.equal x y
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | ( ( Lit _ | Var _ | Timestamp | Event_path | Dep_data _ | Energy_level
      | Unop _ | Binop _ ),
      _ ) ->
      false

let rec equal_stmt a b =
  match (a, b) with
  | Assign (x, e), Assign (y, f) -> String.equal x y && equal_expr e f
  | If (c1, t1, e1), If (c2, t2, e2) ->
      equal_expr c1 c2 && equal_stmts t1 t2 && equal_stmts e1 e2
  | Fail (a1, p1), Fail (a2, p2) -> a1 = a2 && p1 = p2
  | (Assign _ | If _ | Fail _), _ -> false

and equal_stmts a b =
  List.length a = List.length b && List.for_all2 equal_stmt a b

let equal_transition a b =
  a.trigger = b.trigger
  && (match (a.guard, b.guard) with
     | None, None -> true
     | Some x, Some y -> equal_expr x y
     | None, Some _ | Some _, None -> false)
  && equal_stmts a.body b.body
  && String.equal a.target b.target

let equal_state a b =
  String.equal a.state_name b.state_name
  && List.length a.transitions = List.length b.transitions
  && List.for_all2 equal_transition a.transitions b.transitions

let equal_machine a b =
  String.equal a.machine_name b.machine_name
  && List.length a.vars = List.length b.vars
  && List.for_all2 equal_var_decl a.vars b.vars
  && String.equal a.initial b.initial
  && List.length a.states = List.length b.states
  && List.for_all2 equal_state a.states b.states

let find_state m name =
  List.find_opt (fun s -> String.equal s.state_name name) m.states

let find_var m name =
  List.find_opt (fun v -> String.equal v.var_name name) m.vars

let pp_value ppf = function
  | Vint n -> Format.fprintf ppf "%d" n
  | Vbool b -> Format.fprintf ppf "%b" b
  | Vfloat f -> Format.fprintf ppf "%g" f
  | Vtime t -> Time.pp ppf t

let unop_to_string = function Neg -> "-" | Not -> "!"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

let rec pp_expr ppf = function
  | Lit v -> pp_value ppf v
  | Var x -> Format.pp_print_string ppf x
  | Timestamp -> Format.pp_print_string ppf "t"
  | Event_path -> Format.pp_print_string ppf "path"
  | Dep_data x -> Format.fprintf ppf "data(%s)" x
  | Energy_level -> Format.pp_print_string ppf "energyLevel"
  | Unop (op, e) -> Format.fprintf ppf "%s(%a)" (unop_to_string op) pp_expr e
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b

let pp_trigger ppf = function
  | On_start t -> Format.fprintf ppf "startTask(%s)" t
  | On_end t -> Format.fprintf ppf "endTask(%s)" t
  | On_any -> Format.pp_print_string ppf "anyEvent"

let pp_machine ppf m =
  Format.fprintf ppf "@[<v>machine %s (initial %s)@ " m.machine_name m.initial;
  List.iter
    (fun v ->
      Format.fprintf ppf "%svar %s : %s = %a@ "
        (if v.persistent then "persistent " else "")
        v.var_name (ty_to_string v.ty) pp_value v.init)
    m.vars;
  List.iter
    (fun s ->
      Format.fprintf ppf "state %s:@ " s.state_name;
      List.iter
        (fun tr ->
          Format.fprintf ppf "  on %a%a -> %s@ " pp_trigger tr.trigger
            (fun ppf -> function
              | None -> ()
              | Some g -> Format.fprintf ppf " when %a" pp_expr g)
            tr.guard tr.target)
        s.transitions)
    m.states;
  Format.fprintf ppf "@]"
