open Artemis_util
open Ast

type event_kind = Start | End

type event = {
  kind : event_kind;
  task : string;
  timestamp : Time.t;
  path : int;
  dep_data : (string * float) list;
  energy_mj : float;
}

type store = {
  get : string -> value;
  set : string -> value -> unit;
  get_state : unit -> string;
  set_state : string -> unit;
}

type failure = {
  failed_machine : string;
  action : action;
  target_path : int option;
}

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let memory_store (m : machine) =
  let vars = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace vars v.var_name v.init) m.vars;
  let state = ref m.initial in
  {
    get =
      (fun x ->
        match Hashtbl.find_opt vars x with
        | Some v -> v
        | None -> error "unknown variable %S" x);
    set = (fun x v -> Hashtbl.replace vars x v);
    get_state = (fun () -> !state);
    set_state = (fun s -> state := s);
  }

let as_bool = function
  | Vbool b -> b
  | v -> error "expected a bool, got %a" pp_value v

let rec eval m store event e =
  match e with
  | Lit v -> v
  | Var x -> store.get x
  | Timestamp -> Vtime event.timestamp
  | Event_path -> Vint event.path
  | Dep_data x -> (
      match List.assoc_opt x event.dep_data with
      | Some f -> Vfloat f
      | None -> error "event carries no data for %S" x)
  | Energy_level -> Vfloat event.energy_mj
  | Unop (Neg, e) -> (
      match eval m store event e with
      | Vint n -> Vint (-n)
      | Vfloat f -> Vfloat (-.f)
      | Vtime t -> Vtime (Time.sub Time.zero t)
      | Vbool _ -> error "cannot negate a bool")
  | Unop (Not, e) -> Vbool (not (as_bool (eval m store event e)))
  | Binop (And, a, b) ->
      (* short-circuit, like the generated C *)
      if as_bool (eval m store event a) then eval m store event b else Vbool false
  | Binop (Or, a, b) ->
      if as_bool (eval m store event a) then Vbool true else eval m store event b
  | Binop (op, a, b) ->
      (* operands evaluate left-to-right: when both raise (e.g. two
         divisions by zero), the left error wins in every engine *)
      let va = eval m store event a in
      let vb = eval m store event b in
      eval_binop op va vb

and eval_binop op va vb =
  let cmp c = Vbool c in
  match (op, va, vb) with
  | Add, Vint a, Vint b -> Vint (a + b)
  | Add, Vfloat a, Vfloat b -> Vfloat (a +. b)
  | Add, Vtime a, Vtime b -> Vtime (Time.add a b)
  | Sub, Vint a, Vint b -> Vint (a - b)
  | Sub, Vfloat a, Vfloat b -> Vfloat (a -. b)
  | Sub, Vtime a, Vtime b -> Vtime (Time.sub a b)
  | Mul, Vint a, Vint b -> Vint (a * b)
  | Mul, Vfloat a, Vfloat b -> Vfloat (a *. b)
  | Div, Vint _, Vint 0 -> error "integer division by zero"
  | Div, Vint a, Vint b -> Vint (a / b)
  | Div, Vfloat a, Vfloat b -> Vfloat (a /. b)
  | Mod, Vint _, Vint 0 -> error "modulo by zero"
  | Mod, Vint a, Vint b -> Vint (a mod b)
  | Eq, a, b -> cmp (equal_value a b)
  | Ne, a, b -> cmp (not (equal_value a b))
  | Lt, Vint a, Vint b -> cmp (a < b)
  | Lt, Vfloat a, Vfloat b -> cmp (a < b)
  | Lt, Vtime a, Vtime b -> cmp Time.(a < b)
  | Le, Vint a, Vint b -> cmp (a <= b)
  | Le, Vfloat a, Vfloat b -> cmp (a <= b)
  | Le, Vtime a, Vtime b -> cmp Time.(a <= b)
  | Gt, Vint a, Vint b -> cmp (a > b)
  | Gt, Vfloat a, Vfloat b -> cmp (a > b)
  | Gt, Vtime a, Vtime b -> cmp Time.(a > b)
  | Ge, Vint a, Vint b -> cmp (a >= b)
  | Ge, Vfloat a, Vfloat b -> cmp (a >= b)
  | Ge, Vtime a, Vtime b -> cmp Time.(a >= b)
  | (Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | And | Or), a, b ->
      error "ill-typed operands %a and %a" pp_value a pp_value b

let eval_expr m store event e = eval m store event e

let trigger_matches trigger (event : event) =
  match (trigger, event.kind) with
  | On_any, (Start | End) -> true
  | On_start task, Start -> String.equal task event.task
  | On_end task, End -> String.equal task event.task
  | On_start _, End | On_end _, Start -> false

let step m store event =
  let failures = ref [] in
  let rec run_stmt = function
    | Assign (x, e) -> store.set x (eval m store event e)
    | If (cond, then_, else_) ->
        if as_bool (eval m store event cond) then List.iter run_stmt then_
        else List.iter run_stmt else_
    | Fail (action, target_path) ->
        failures :=
          { failed_machine = m.machine_name; action; target_path } :: !failures
  in
  let current = store.get_state () in
  let state =
    match find_state m current with
    | Some s -> s
    | None -> error "machine %S: unknown current state %S" m.machine_name current
  in
  let fires tr =
    trigger_matches tr.trigger event
    &&
    match tr.guard with
    | None -> true
    | Some g -> as_bool (eval m store event g)
  in
  (match List.find_opt fires state.transitions with
  | None -> ()  (* implicit self-transition *)
  | Some tr ->
      List.iter run_stmt tr.body;
      store.set_state tr.target);
  List.rev !failures

(* An [On_any] trigger fires on every task's events, so such a machine
   watches every task: path restarts must re-initialize it no matter which
   tasks the path contains. *)
let mentions_task m task =
  List.exists
    (fun s ->
      List.exists
        (fun tr ->
          match tr.trigger with
          | On_start t | On_end t -> String.equal t task
          | On_any -> true)
        s.transitions)
    m.states
