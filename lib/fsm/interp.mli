(** Execution semantics of intermediate-language machines.

    One {!step} consumes one runtime event: the transitions of the current
    state are tried in declaration order; the first one whose trigger and
    guard match fires - its body runs, its [fail] statements are collected,
    and the machine moves to the target state.  If no transition matches,
    the event is accepted silently (implicit self-transition).

    The variable/state store is abstract so the same interpreter runs over
    plain hash tables (tests) and over NVM-backed persistent cells (the
    deployed monitors). *)

open Artemis_util

type event_kind = Start | End

type event = {
  kind : event_kind;
  task : string;
  timestamp : Time.t;
  path : int;  (** index of the path the runtime is executing *)
  dep_data : (string * float) list;  (** monitored variables, at End *)
  energy_mj : float;  (** capacitor level (Section 4.2.2 extension) *)
}

type store = {
  get : string -> Ast.value;
  set : string -> Ast.value -> unit;
  get_state : unit -> string;
  set_state : string -> unit;
}

type failure = {
  failed_machine : string;
  action : Ast.action;
  target_path : int option;  (** explicit [Path] of the fail statement *)
}

exception Runtime_error of string
(** Raised on dynamic errors the typechecker cannot rule out: unknown
    [data(x)] payload, division by zero. *)

val memory_store : Ast.machine -> store
(** Fresh in-memory store initialized from the declarations (tests,
    quick evaluation). *)

val step : Ast.machine -> store -> event -> failure list
(** Process one event.  @raise Runtime_error as documented above. *)

val eval_expr : Ast.machine -> store -> event -> Ast.expr -> Ast.value
(** Exposed for tests. @raise Runtime_error *)

val as_bool : Ast.value -> bool
(** @raise Runtime_error on a non-bool.  Shared with {!Compile} so both
    execution engines report identical dynamic errors. *)

val eval_binop : Ast.binop -> Ast.value -> Ast.value -> Ast.value
(** Strict binary-operator semantics (no short-circuit; [And]/[Or] expect
    already-evaluated operands).  The single source of truth for operator
    behaviour and error messages, reused by the compiled engine.
    @raise Runtime_error on division/modulo by zero or ill-typed operands. *)

val mentions_task : Ast.machine -> string -> bool
(** Does any trigger of the machine apply to this task?  [On_any]
    triggers match every task, so a machine using one watches all tasks.
    Used to bind monitors to paths for re-initialisation. *)
