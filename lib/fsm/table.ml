open Ast
module Time = Artemis_util.Time

let error fmt = Format.kasprintf (fun s -> raise (Interp.Runtime_error s)) fmt

(* --- the flat representation ---

   Bytecode: one int per opcode, operands inline in the following
   word(s).  Two operand stacks - int/bool/time values (time is its
   microsecond count, bool is 0/1) on the int stack, floats on the float
   stack - so no value is ever tagged or boxed at run time.  The
   numbering below is matched by the literal patterns in [exec]; keep
   the two in sync.

      0 HALT             stop; guards leave their result on the int stack
      1 IPUSH k          push the inline literal k
      2 FPUSH i          push float pool entry i
      3 ILOAD r          push int register r
      4 FLOAD r          push float register r
      5 ISTORE r slot    pop into int register r (then var sink on slot)
      6 FSTORE r slot    pop into float register r (then var sink)
      7 TSLOAD           push the event timestamp (us)
      8 PATHLOAD         push the event path
      9 DEPLOAD s        push the event payload named by string pool s
     10 ENERGYLOAD       push the event energy level
     11 INEG  12 FNEG  13 NOT
     14 IADD  15 ISUB  16 IMUL  17 IDIV  18 IMOD
     19 FADD  20 FSUB  21 FMUL  22 FDIV
     23 IEQ  24 INE  25 ILT  26 ILE  27 IGT  28 IGE
     29 FEQ  30 FNE  31 FLT  32 FLE  33 FGT  34 FGE
     35 JMP pc          jump to the absolute program counter pc
     36 JZ pc           pop the int stack; jump when zero
     37 FAIL k          emit precompiled failure record k *)

let op_halt = 0
let op_ipush = 1
let op_fpush = 2
let op_iload = 3
let op_fload = 4
let op_istore = 5
let op_fstore = 6
let op_tsload = 7
let op_pathload = 8
let op_depload = 9
let op_energyload = 10
let op_ineg = 11
let op_fneg = 12
let op_not = 13
let op_iadd = 14
let op_isub = 15
let op_imul = 16
let op_idiv = 17
let op_imod = 18
let op_fadd = 19
let op_fsub = 20
let op_fmul = 21
let op_fdiv = 22
let op_ieq = 23
let op_ine = 24
let op_ilt = 25
let op_ile = 26
let op_igt = 27
let op_ige = 28
let op_feq = 29
let op_fne = 30
let op_flt = 31
let op_fle = 32
let op_fgt = 33
let op_fge = 34
let op_jmp = 35
let op_jz = 36
let op_fail = 37

(* Allocation- and exception-free string -> int lookup for the per-event
   task column.  [Hashtbl.find] costs a raised [Not_found] on every miss
   (~4x a hit) and [find_opt] boxes an option on every hit; the hot path
   tolerates neither.  Open addressing over a power-of-two array, empty
   slots marked by physical equality with a private sentinel string. *)
module Strmap = struct
  type t = { keys : string array; vals : int array; mask : int }

  let sentinel = Bytes.unsafe_to_string (Bytes.create 0)

  (* Two loads and two adds - [Hashtbl.hash] walks the whole string and
     costs more than the lookup it feeds.  Collisions only cost extra
     [String.equal] probes, never a wrong answer. *)
  let hash s =
    let n = String.length s in
    if n = 0 then 0
    else (n * 31) + Char.code (String.unsafe_get s (n - 1))

  let build pairs =
    let n = List.length pairs in
    let size =
      let s = ref 8 in
      while !s < 4 * max 1 n do
        s := !s * 2
      done;
      !s
    in
    let m =
      { keys = Array.make size sentinel; vals = Array.make size 0;
        mask = size - 1 }
    in
    List.iter
      (fun (k, v) ->
        let i = ref (hash k land m.mask) in
        while not (m.keys.(!i) == sentinel) do
          i := (!i + 1) land m.mask
        done;
        m.keys.(!i) <- k;
        m.vals.(!i) <- v)
      pairs;
    m

  (* returns [default] when [key] is absent; never allocates or raises
     (a while loop, not a local rec: the closure would allocate) *)
  let find m key ~default =
    let keys = m.keys and mask = m.mask in
    let i = ref (hash key land mask) in
    let res = ref default in
    let probing = ref true in
    while !probing do
      let k = Array.unsafe_get keys !i in
      if k == sentinel then probing := false
      else if String.equal k key then begin
        res := Array.unsafe_get m.vals !i;
        probing := false
      end
      else i := (!i + 1) land mask
    done;
    !res
end

type t = {
  machine : machine;
  state_names : string array;
  state_ids : (string, int) Hashtbl.t;
  var_decl_arr : var_decl array;
  var_ids : (string, int) Hashtbl.t;
  var_reg : int array;  (* slot -> register index within its class *)
  var_is_float : bool array;  (* slot -> register class *)
  n_iregs : int;  (* register 0 is the control state *)
  n_fregs : int;
  initial : int;
  task_ids : Strmap.t;  (* watched task -> dispatch column *)
  n_tasks : int;
  row_shift : int;  (* dispatch row stride = 1 lsl row_shift >= n_tasks + 1 *)
  (* direct-mapped dispatch memo, indexed by the cheap string hash: an
     app's task loop reuses the same name strings event after event, so
     after one pass every lookup is two loads and a physical-equality
     check.  Sound because equal pointers imply equal contents imply the
     same column; a colliding or fresh string just re-probes [task_ids]
     and overwrites its slot. *)
  memo_keys : string array;
  memo_cols : int array;
  memo_mask : int;
  (* the slot the previous event's task hashed to: consecutive events
     usually repeat a task string (start/end pairs), and re-probing that
     slot first skips the hash.  An int field, so updating it never hits
     the write barrier. *)
  mutable last_h : int;
  (* dispatch.(((state * 2) + kind) * (n_tasks + 1) + task) is an offset
     into [cands] ([count; tr; tr; ...] segments, shared between rows
     with identical candidate lists) or -1 for "no transition can
     fire".  Column [n_tasks] is the unknown-task fallback (On_any
     transitions only). *)
  dispatch : int array;
  cands : int array;
  tr_guard_pc : int array;  (* transition -> guard entry pc, -1 unguarded *)
  tr_body_pc : int array;  (* transition -> body entry pc, -1 empty *)
  tr_target : int array;
  (* Quickened transitions.  The property generator ([To_fsm]) only ever
     emits a handful of guard and body shapes - counter comparisons
     against a literal, elapsed-time checks, counter bumps, timestamp
     latches.  Recognizing those at compile time and storing them as flat
     per-transition metadata keeps the steady-state hot path out of
     [exec] entirely; only dpData predicates and failure bodies still run
     bytecode.  Guard codes ([tr_qg]):
        0             general - run the bytecode at [tr_guard_pc]
        1             unconditional
        2..7          reg <  k, <=, >, >=, =, <>      (int/bool/time regs)
        8..13         (t_us - reg) < k, <=, >, >=, =, <>
     Body codes ([tr_qb]):
        0             general - run the bytecode at [tr_body_pc]
        1             empty body
        2             reg := k
        3             reg := reg + k
        4             reg := t_us *)
  tr_qg : int array;
  tr_qg_reg : int array;
  tr_qg_k : int array;
  tr_qb : int array;
  tr_qb_reg : int array;
  tr_qb_k : int array;
  tr_qb_slot : int array;
  code : int array;
  fpool : float array;
  spool : string array;
  failpool : Interp.failure array;
  stack_i : int;  (* worst-case operand stack depths, from lowering *)
  stack_f : int;
  watched : string list;
  watched_tbl : (string, unit) Hashtbl.t;
  any_event : bool;
}

(* --- lowering --- *)

type vec = { mutable buf : int array; mutable len : int }

let vec () = { buf = Array.make 64 0; len = 0 }

let vpush v x =
  if v.len = Array.length v.buf then begin
    let b = Array.make (2 * v.len) 0 in
    Array.blit v.buf 0 b 0 v.len;
    v.buf <- b
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

let varray v = Array.sub v.buf 0 v.len

type emitter = {
  ecode : vec;
  mutable fpool_rev : float list;
  fpool_tbl : (int64, int) Hashtbl.t;  (* keyed by bits: NaN-safe interning *)
  mutable n_f : int;
  mutable spool_rev : string list;
  spool_tbl : (string, int) Hashtbl.t;
  mutable n_s : int;
  mutable failpool_rev : Interp.failure list;
  mutable n_fail : int;
  mutable imax : int;
  mutable fmax : int;
}

let emitter () =
  {
    ecode = vec ();
    fpool_rev = [];
    fpool_tbl = Hashtbl.create 8;
    n_f = 0;
    spool_rev = [];
    spool_tbl = Hashtbl.create 8;
    n_s = 0;
    failpool_rev = [];
    n_fail = 0;
    imax = 0;
    fmax = 0;
  }

let bumpi em d = if d > em.imax then em.imax <- d
let bumpf em d = if d > em.fmax then em.fmax <- d

let fidx em x =
  let bits = Int64.bits_of_float x in
  match Hashtbl.find_opt em.fpool_tbl bits with
  | Some i -> i
  | None ->
      let i = em.n_f in
      em.fpool_rev <- x :: em.fpool_rev;
      em.n_f <- i + 1;
      Hashtbl.add em.fpool_tbl bits i;
      i

let sidx em s =
  match Hashtbl.find_opt em.spool_tbl s with
  | Some i -> i
  | None ->
      let i = em.n_s in
      em.spool_rev <- s :: em.spool_rev;
      em.n_s <- i + 1;
      Hashtbl.add em.spool_tbl s i;
      i

let failidx em f =
  let i = em.n_fail in
  em.failpool_rev <- f :: em.failpool_rev;
  em.n_fail <- i + 1;
  i

(* emit a jump with a placeholder target; [patch] points it at the
   current end of code *)
let emit_jump em op =
  vpush em.ecode op;
  let at = em.ecode.len in
  vpush em.ecode (-1);
  at

let patch em at = em.ecode.buf.(at) <- em.ecode.len

(* Post-typecheck every expression has a static type, so lowering is
   total; the [failwith] branches are unreachable for machines that
   passed [Typecheck.check_exn]. *)
let ty_exn vars e =
  match Typecheck.expr_type ~vars e with
  | Ok ty -> ty
  | Error msg -> failwith ("Table.compile: " ^ msg)

(* [i]/[f] are the operand-stack depths on entry; every push records the
   new peak so instance scratch arrays can be sized exactly.  The
   invariant: an expression leaves exactly one value, on the stack of
   its static class (float vs int/bool/time). *)
let rec emit_expr ~vars ~slots em e ~i ~f =
  let code = em.ecode in
  match e with
  | Lit (Vint n) ->
      vpush code op_ipush;
      vpush code n;
      bumpi em (i + 1)
  | Lit (Vbool b) ->
      vpush code op_ipush;
      vpush code (if b then 1 else 0);
      bumpi em (i + 1)
  | Lit (Vtime tt) ->
      vpush code op_ipush;
      vpush code (Time.to_us tt);
      bumpi em (i + 1)
  | Lit (Vfloat x) ->
      vpush code op_fpush;
      vpush code (fidx em x);
      bumpf em (f + 1)
  | Var x ->
      let is_float, reg, _slot = slots x in
      if is_float then begin
        vpush code op_fload;
        vpush code reg;
        bumpf em (f + 1)
      end
      else begin
        vpush code op_iload;
        vpush code reg;
        bumpi em (i + 1)
      end
  | Timestamp ->
      vpush code op_tsload;
      bumpi em (i + 1)
  | Event_path ->
      vpush code op_pathload;
      bumpi em (i + 1)
  | Dep_data k ->
      vpush code op_depload;
      vpush code (sidx em k);
      bumpf em (f + 1)
  | Energy_level ->
      vpush code op_energyload;
      bumpf em (f + 1)
  | Unop (Neg, a) ->
      emit_expr ~vars ~slots em a ~i ~f;
      vpush code (if ty_exn vars a = Tfloat then op_fneg else op_ineg)
  | Unop (Not, a) ->
      emit_expr ~vars ~slots em a ~i ~f;
      vpush code op_not
  | Binop (And, a, b) ->
      (* short-circuit, like every other engine: b's code (and its
         dynamic errors) is skipped when a is false *)
      emit_expr ~vars ~slots em a ~i ~f;
      let jz = emit_jump em op_jz in
      emit_expr ~vars ~slots em b ~i ~f;
      let jend = emit_jump em op_jmp in
      patch em jz;
      vpush code op_ipush;
      vpush code 0;
      bumpi em (i + 1);
      patch em jend
  | Binop (Or, a, b) ->
      emit_expr ~vars ~slots em a ~i ~f;
      let jz = emit_jump em op_jz in
      vpush code op_ipush;
      vpush code 1;
      bumpi em (i + 1);
      let jend = emit_jump em op_jmp in
      patch em jz;
      emit_expr ~vars ~slots em b ~i ~f;
      patch em jend
  | Binop (op, a, b) ->
      (* operands evaluate left-to-right, matching the interpreter: when
         both raise, the left error must win in every engine *)
      let float_operands = ty_exn vars a = Tfloat in
      if float_operands then begin
        emit_expr ~vars ~slots em a ~i ~f;
        emit_expr ~vars ~slots em b ~i ~f:(f + 1);
        let opc =
          match op with
          | Add -> op_fadd
          | Sub -> op_fsub
          | Mul -> op_fmul
          | Div -> op_fdiv
          | Eq -> op_feq
          | Ne -> op_fne
          | Lt -> op_flt
          | Le -> op_fle
          | Gt -> op_fgt
          | Ge -> op_fge
          | Mod | And | Or -> assert false (* ill-typed / handled above *)
        in
        vpush code opc;
        (match op with
        | Eq | Ne | Lt | Le | Gt | Ge -> bumpi em (i + 1)
        | _ -> ())
      end
      else begin
        emit_expr ~vars ~slots em a ~i ~f;
        emit_expr ~vars ~slots em b ~i:(i + 1) ~f;
        let opc =
          match op with
          | Add -> op_iadd
          | Sub -> op_isub
          | Mul -> op_imul
          | Div -> op_idiv
          | Mod -> op_imod
          | Eq -> op_ieq
          | Ne -> op_ine
          | Lt -> op_ilt
          | Le -> op_ile
          | Gt -> op_igt
          | Ge -> op_ige
          | And | Or -> assert false
        in
        vpush code opc
      end

let rec emit_stmt ~vars ~slots ~machine_name em = function
  | Assign (x, e) ->
      emit_expr ~vars ~slots em e ~i:0 ~f:0;
      let is_float, reg, slot = slots x in
      vpush em.ecode (if is_float then op_fstore else op_istore);
      vpush em.ecode reg;
      vpush em.ecode slot
  | If (cond, then_, else_) ->
      emit_expr ~vars ~slots em cond ~i:0 ~f:0;
      let jz = emit_jump em op_jz in
      List.iter (emit_stmt ~vars ~slots ~machine_name em) then_;
      let jend = emit_jump em op_jmp in
      patch em jz;
      List.iter (emit_stmt ~vars ~slots ~machine_name em) else_;
      patch em jend
  | Fail (action, target_path) ->
      (* the failure record is fully known at compile time *)
      let k =
        failidx em { Interp.failed_machine = machine_name; action; target_path }
      in
      vpush em.ecode op_fail;
      vpush em.ecode k

let compile (m : machine) =
  Typecheck.check_exn m;
  let state_names = Array.of_list (List.map (fun s -> s.state_name) m.states) in
  let state_ids = Hashtbl.create (Array.length state_names) in
  Array.iteri (fun idx n -> Hashtbl.replace state_ids n idx) state_names;
  let var_decl_arr = Array.of_list m.vars in
  let nvars = Array.length var_decl_arr in
  let var_ids = Hashtbl.create (max 1 nvars) in
  Array.iteri (fun idx v -> Hashtbl.replace var_ids v.var_name idx) var_decl_arr;
  let var_is_float = Array.map (fun v -> v.ty = Tfloat) var_decl_arr in
  let var_reg = Array.make (max 1 nvars) 0 in
  let n_iregs = ref 1 (* register 0: control state *) and n_fregs = ref 0 in
  Array.iteri
    (fun slot fl ->
      if fl then begin
        var_reg.(slot) <- !n_fregs;
        incr n_fregs
      end
      else begin
        var_reg.(slot) <- !n_iregs;
        incr n_iregs
      end)
    var_is_float;
  (* watched tasks in first-mention order, as in Compile *)
  let watched_tbl = Hashtbl.create 8 in
  let watched = ref [] in
  let any_event = ref false in
  List.iter
    (fun s ->
      List.iter
        (fun tr ->
          match tr.trigger with
          | On_start task | On_end task ->
              if not (Hashtbl.mem watched_tbl task) then begin
                Hashtbl.replace watched_tbl task ();
                watched := task :: !watched
              end
          | On_any -> any_event := true)
        s.transitions)
    m.states;
  let watched = List.rev !watched in
  let task_ids = Strmap.build (List.mapi (fun idx task -> (task, idx)) watched) in
  let n_tasks = List.length watched in
  let task_names = Array.of_list watched in
  (* lower every transition's guard and body *)
  let vars x = Option.map (fun v -> v.ty) (find_var m x) in
  let slots x =
    let slot = Hashtbl.find var_ids x in
    (var_is_float.(slot), var_reg.(slot), slot)
  in
  let em = emitter () in
  (* quick-form recognizers (codes documented on [type t]); anything they
     decline falls through to full bytecode, so they are free to be
     conservative *)
  let int_slot x =
    let is_float, reg, slot = slots x in
    if is_float then None else Some (reg, slot)
  in
  let cmp_base = function
    | Lt -> Some 0
    | Le -> Some 1
    | Gt -> Some 2
    | Ge -> Some 3
    | Eq -> Some 4
    | Ne -> Some 5
    | _ -> None
  in
  let quick_guard = function
    | None -> Some (1, 0, 0)
    | Some (Var x) when vars x = Some Tbool -> (
        match int_slot x with
        | Some (reg, _) -> Some (7 (* reg <> 0 *), reg, 0)
        | None -> None)
    | Some (Binop (op, Var x, Lit lit)) -> (
        match (cmp_base op, int_slot x, lit) with
        | Some c, Some (reg, _), Vint k -> Some (2 + c, reg, k)
        | Some c, Some (reg, _), Vtime tt -> Some (2 + c, reg, Time.to_us tt)
        | _ -> None)
    | Some (Binop (op, Binop (Sub, Timestamp, Var x), Lit (Vtime tt))) -> (
        match (cmp_base op, int_slot x) with
        | Some c, Some (reg, _) -> Some (8 + c, reg, Time.to_us tt)
        | _ -> None)
    | _ -> None
  in
  let quick_body = function
    | [] -> Some (1, 0, 0, 0)
    | [ Assign (x, rhs) ] -> (
        match int_slot x with
        | None -> None
        | Some (reg, slot) -> (
            match rhs with
            | Lit (Vint k) -> Some (2, reg, k, slot)
            | Lit (Vbool b) -> Some (2, reg, (if b then 1 else 0), slot)
            | Lit (Vtime tt) -> Some (2, reg, Time.to_us tt, slot)
            | Timestamp -> Some (4, reg, 0, slot)
            | Binop (Add, Var y, Lit (Vint k)) when String.equal y x ->
                Some (3, reg, k, slot)
            | Binop (Sub, Var y, Lit (Vint k)) when String.equal y x ->
                Some (3, reg, -k, slot)
            | _ -> None))
    | _ -> None
  in
  let transitions =
    List.concat_map (fun s -> s.transitions) m.states |> Array.of_list
  in
  let ntrans = Array.length transitions in
  let tr_guard_pc = Array.make (max 1 ntrans) (-1) in
  let tr_body_pc = Array.make (max 1 ntrans) (-1) in
  let tr_target = Array.make (max 1 ntrans) 0 in
  let tr_qg = Array.make (max 1 ntrans) 0 in
  let tr_qg_reg = Array.make (max 1 ntrans) 0 in
  let tr_qg_k = Array.make (max 1 ntrans) 0 in
  let tr_qb = Array.make (max 1 ntrans) 0 in
  let tr_qb_reg = Array.make (max 1 ntrans) 0 in
  let tr_qb_k = Array.make (max 1 ntrans) 0 in
  let tr_qb_slot = Array.make (max 1 ntrans) 0 in
  Array.iteri
    (fun idx tr ->
      (match quick_guard tr.guard with
      | Some (q, reg, k) ->
          tr_qg.(idx) <- q;
          tr_qg_reg.(idx) <- reg;
          tr_qg_k.(idx) <- k
      | None ->
          (* quick_guard only declines a present guard *)
          let g = Option.get tr.guard in
          tr_guard_pc.(idx) <- em.ecode.len;
          emit_expr ~vars ~slots em g ~i:0 ~f:0;
          vpush em.ecode op_halt);
      (match quick_body tr.body with
      | Some (q, reg, k, slot) ->
          tr_qb.(idx) <- q;
          tr_qb_reg.(idx) <- reg;
          tr_qb_k.(idx) <- k;
          tr_qb_slot.(idx) <- slot
      | None ->
          tr_body_pc.(idx) <- em.ecode.len;
          List.iter
            (emit_stmt ~vars ~slots ~machine_name:m.machine_name em)
            tr.body;
          vpush em.ecode op_halt);
      tr_target.(idx) <- Hashtbl.find state_ids tr.target)
    transitions;
  (* dense dispatch over (state, kind, task column); rows with identical
     candidate lists share one CSR segment *)
  let state_trs =
    let next = ref 0 in
    List.map
      (fun s ->
        List.map
          (fun tr ->
            let idx = !next in
            incr next;
            (idx, tr))
          s.transitions)
      m.states
    |> Array.of_list
  in
  let cands = vec () in
  let seg_tbl = Hashtbl.create 32 in
  let seg_of lst =
    match lst with
    | [] -> -1
    | _ -> (
        let key = String.concat "," (List.map string_of_int lst) in
        match Hashtbl.find_opt seg_tbl key with
        | Some off -> off
        | None ->
            let off = cands.len in
            vpush cands (List.length lst);
            List.iter (vpush cands) lst;
            Hashtbl.add seg_tbl key off;
            off)
  in
  let nstates = Array.length state_names in
  (* rows padded to a power of two: the hot path indexes with a shift,
     not a multiply *)
  let row_shift =
    let s = ref 0 in
    while 1 lsl !s < n_tasks + 1 do
      incr s
    done;
    !s
  in
  let stride = 1 lsl row_shift in
  let dispatch = Array.make (max 1 (nstates * 2 * stride)) (-1) in
  Array.iteri
    (fun si trs ->
      for kind = 0 to 1 do
        for col = 0 to n_tasks do
          let matching =
            List.filter_map
              (fun (idx, tr) ->
                let fires =
                  match (tr.trigger, kind) with
                  | On_any, _ -> true
                  | On_start task, 0 | On_end task, 1 ->
                      col < n_tasks && String.equal task_names.(col) task
                  | (On_start _ | On_end _), _ -> false
                in
                if fires then Some idx else None)
              trs
          in
          dispatch.((((si * 2) + kind) lsl row_shift) + col) <- seg_of matching
        done
      done)
    state_trs;
  {
    machine = m;
    state_names;
    state_ids;
    var_decl_arr;
    var_ids;
    var_reg;
    var_is_float;
    n_iregs = !n_iregs;
    n_fregs = !n_fregs;
    initial = Hashtbl.find state_ids m.initial;
    task_ids;
    n_tasks;
    dispatch;
    cands = varray cands;
    row_shift;
    memo_keys = Array.make 16 Strmap.sentinel;
    memo_cols = Array.make 16 0;
    memo_mask = 15;
    last_h = 0;
    tr_guard_pc;
    tr_body_pc;
    tr_target;
    tr_qg;
    tr_qg_reg;
    tr_qg_k;
    tr_qb;
    tr_qb_reg;
    tr_qb_k;
    tr_qb_slot;
    code = varray em.ecode;
    fpool = Array.of_list (List.rev em.fpool_rev);
    spool = Array.of_list (List.rev em.spool_rev);
    failpool = Array.of_list (List.rev em.failpool_rev);
    stack_i = em.imax;
    stack_f = em.fmax;
    watched;
    watched_tbl;
    any_event = !any_event;
  }

(* --- accessors --- *)

let machine t = t.machine
let name t = t.machine.machine_name
let state_count t = Array.length t.state_names
let state_name t i = t.state_names.(i)
let state_id t n = Hashtbl.find t.state_ids n
let initial_state t = t.initial
let var_count t = Array.length t.var_decl_arr
let var_name t i = t.var_decl_arr.(i).var_name
let var_id t n = Hashtbl.find t.var_ids n
let var_decls t = t.var_decl_arr
let task_count t = t.n_tasks
let watched_tasks t = t.watched
let watches_any_event t = t.any_event
let mentions_task t task = t.any_event || Hashtbl.mem t.watched_tbl task

let dispatch_words t =
  (* per-transition metadata: guard pc, body pc, target, plus the seven
     quickening words *)
  Array.length t.dispatch + Array.length t.cands
  + (10 * Array.length t.tr_target)

let code_words t = Array.length t.code + Array.length t.fpool
let buffer_words t = dispatch_words t + code_words t
let int_regs t = t.n_iregs
let float_regs t = t.n_fregs

(* --- instances --- *)

type inst = {
  ints : int array;
  floats : float array;
  ibase : int;
  fbase : int;
  istack : int array;
  fstack : float array;
  mutable failures : Interp.failure list;  (* reverse emission order *)
  var_sink : int -> unit;
  state_sink : int -> unit;
  sinks : bool;  (* false = both sinks are [no_sink]; skip the calls *)
}

let no_sink (_ : int) = ()

let current_state inst = inst.ints.(inst.ibase)
let set_state inst s = inst.ints.(inst.ibase) <- s

let load_var t inst slot v =
  let reg = t.var_reg.(slot) in
  match v with
  | Vint n -> inst.ints.(inst.ibase + reg) <- n
  | Vbool b -> inst.ints.(inst.ibase + reg) <- (if b then 1 else 0)
  | Vtime tt -> inst.ints.(inst.ibase + reg) <- Time.to_us tt
  | Vfloat x -> inst.floats.(inst.fbase + reg) <- x

let read_var t inst slot =
  let reg = t.var_reg.(slot) in
  match t.var_decl_arr.(slot).ty with
  | Tint -> Vint inst.ints.(inst.ibase + reg)
  | Tbool -> Vbool (inst.ints.(inst.ibase + reg) <> 0)
  | Ttime -> Vtime (Time.of_us inst.ints.(inst.ibase + reg))
  | Tfloat -> Vfloat inst.floats.(inst.fbase + reg)

let reset_vars t inst =
  set_state inst t.initial;
  Array.iteri (fun slot v -> load_var t inst slot v.init) t.var_decl_arr

let make_inst t ~ints ~floats ~ibase ~fbase ~var_sink ~state_sink =
  let inst =
    {
      ints;
      floats;
      ibase;
      fbase;
      istack = Array.make (max 1 t.stack_i) 0;
      fstack = Array.make (max 1 t.stack_f) 0.;
      failures = [];
      var_sink;
      state_sink;
      sinks = not (var_sink == no_sink && state_sink == no_sink);
    }
  in
  reset_vars t inst;
  inst

let instance ?(var_sink = no_sink) ?(state_sink = no_sink) t =
  make_inst t
    ~ints:(Array.make t.n_iregs 0)
    ~floats:(Array.make (max 1 t.n_fregs) 0.)
    ~ibase:0 ~fbase:0 ~var_sink ~state_sink

type packed = { p_ints : int array; p_floats : float array; p_insts : inst list }

let pack ts =
  let ni = List.fold_left (fun acc t -> acc + t.n_iregs) 0 ts in
  let nf = List.fold_left (fun acc t -> acc + t.n_fregs) 0 ts in
  let p_ints = Array.make (max 1 ni) 0 in
  let p_floats = Array.make (max 1 nf) 0. in
  let ib = ref 0 and fb = ref 0 in
  let p_insts =
    List.map
      (fun t ->
        let inst =
          make_inst t ~ints:p_ints ~floats:p_floats ~ibase:!ib ~fbase:!fb
            ~var_sink:no_sink ~state_sink:no_sink
        in
        ib := !ib + t.n_iregs;
        fb := !fb + t.n_fregs;
        inst)
      ts
  in
  { p_ints; p_floats; p_insts }

(* --- execution --- *)

(* find an event payload without allocating (the assoc list's floats are
   already boxed; pushing one onto the float stack just copies it) *)
let rec dep_find key = function
  | [] -> error "event carries no data for %S" key
  | (k, (v : float)) :: rest -> if String.equal k key then v else dep_find key rest

(* One bytecode program, from [pc0] to its HALT.  Returns the int-stack
   top (guards leave their boolean there); bodies ignore the result.
   The literal opcode patterns mirror the numbering at the top of the
   file.

   A while loop over ref-held [pc]/[isp]/[fsp] (the compiler's
   [eliminate_ref] pass turns them into registers - a local recursive
   function would allocate a closure per call here), and every array
   access is unchecked: [pc] and the inline operands come from our own
   emitter, stack offsets never exceed the emit-time [stack_i]/[stack_f]
   peaks the scratch arrays are sized by, and register numbers are
   bounded by [n_iregs]/[n_fregs]. *)
let exec t inst (ev : Interp.event) pc0 =
  let code = t.code in
  let ints = inst.ints and floats = inst.floats in
  let ib = inst.ibase and fb = inst.fbase in
  let istack = inst.istack and fstack = inst.fstack in
  let pc = ref pc0 and isp = ref 0 and fsp = ref 0 in
  let running = ref true in
  while !running do
    let op = Array.unsafe_get code !pc in
    match op with
    | 0 (* HALT *) -> running := false
    | 1 (* IPUSH *) ->
        Array.unsafe_set istack !isp (Array.unsafe_get code (!pc + 1));
        isp := !isp + 1;
        pc := !pc + 2
    | 2 (* FPUSH *) ->
        Array.unsafe_set fstack !fsp
          (Array.unsafe_get t.fpool (Array.unsafe_get code (!pc + 1)));
        fsp := !fsp + 1;
        pc := !pc + 2
    | 3 (* ILOAD *) ->
        Array.unsafe_set istack !isp
          (Array.unsafe_get ints (ib + Array.unsafe_get code (!pc + 1)));
        isp := !isp + 1;
        pc := !pc + 2
    | 4 (* FLOAD *) ->
        Array.unsafe_set fstack !fsp
          (Array.unsafe_get floats (fb + Array.unsafe_get code (!pc + 1)));
        fsp := !fsp + 1;
        pc := !pc + 2
    | 5 (* ISTORE *) ->
        isp := !isp - 1;
        Array.unsafe_set ints
          (ib + Array.unsafe_get code (!pc + 1))
          (Array.unsafe_get istack !isp);
        if inst.sinks then inst.var_sink (Array.unsafe_get code (!pc + 2));
        pc := !pc + 3
    | 6 (* FSTORE *) ->
        fsp := !fsp - 1;
        Array.unsafe_set floats
          (fb + Array.unsafe_get code (!pc + 1))
          (Array.unsafe_get fstack !fsp);
        if inst.sinks then inst.var_sink (Array.unsafe_get code (!pc + 2));
        pc := !pc + 3
    | 7 (* TSLOAD *) ->
        Array.unsafe_set istack !isp (Time.to_us ev.Interp.timestamp);
        isp := !isp + 1;
        pc := !pc + 1
    | 8 (* PATHLOAD *) ->
        Array.unsafe_set istack !isp ev.Interp.path;
        isp := !isp + 1;
        pc := !pc + 1
    | 9 (* DEPLOAD *) ->
        Array.unsafe_set fstack !fsp
          (dep_find
             (Array.unsafe_get t.spool (Array.unsafe_get code (!pc + 1)))
             ev.Interp.dep_data);
        fsp := !fsp + 1;
        pc := !pc + 2
    | 10 (* ENERGYLOAD *) ->
        Array.unsafe_set fstack !fsp ev.Interp.energy_mj;
        fsp := !fsp + 1;
        pc := !pc + 1
    | 11 (* INEG *) ->
        Array.unsafe_set istack (!isp - 1) (-Array.unsafe_get istack (!isp - 1));
        pc := !pc + 1
    | 12 (* FNEG *) ->
        Array.unsafe_set fstack (!fsp - 1) (-.Array.unsafe_get fstack (!fsp - 1));
        pc := !pc + 1
    | 13 (* NOT *) ->
        Array.unsafe_set istack (!isp - 1)
          (1 - Array.unsafe_get istack (!isp - 1));
        pc := !pc + 1
    | 14 (* IADD *) ->
        let s = !isp - 2 in
        Array.unsafe_set istack s
          (Array.unsafe_get istack s + Array.unsafe_get istack (s + 1));
        isp := s + 1;
        pc := !pc + 1
    | 15 (* ISUB *) ->
        let s = !isp - 2 in
        Array.unsafe_set istack s
          (Array.unsafe_get istack s - Array.unsafe_get istack (s + 1));
        isp := s + 1;
        pc := !pc + 1
    | 16 (* IMUL *) ->
        let s = !isp - 2 in
        Array.unsafe_set istack s
          (Array.unsafe_get istack s * Array.unsafe_get istack (s + 1));
        isp := s + 1;
        pc := !pc + 1
    | 17 (* IDIV *) ->
        let s = !isp - 2 in
        let d = Array.unsafe_get istack (s + 1) in
        if d = 0 then error "integer division by zero";
        Array.unsafe_set istack s (Array.unsafe_get istack s / d);
        isp := s + 1;
        pc := !pc + 1
    | 18 (* IMOD *) ->
        let s = !isp - 2 in
        let d = Array.unsafe_get istack (s + 1) in
        if d = 0 then error "modulo by zero";
        Array.unsafe_set istack s (Array.unsafe_get istack s mod d);
        isp := s + 1;
        pc := !pc + 1
    | 19 (* FADD *) ->
        let s = !fsp - 2 in
        Array.unsafe_set fstack s
          (Array.unsafe_get fstack s +. Array.unsafe_get fstack (s + 1));
        fsp := s + 1;
        pc := !pc + 1
    | 20 (* FSUB *) ->
        let s = !fsp - 2 in
        Array.unsafe_set fstack s
          (Array.unsafe_get fstack s -. Array.unsafe_get fstack (s + 1));
        fsp := s + 1;
        pc := !pc + 1
    | 21 (* FMUL *) ->
        let s = !fsp - 2 in
        Array.unsafe_set fstack s
          (Array.unsafe_get fstack s *. Array.unsafe_get fstack (s + 1));
        fsp := s + 1;
        pc := !pc + 1
    | 22 (* FDIV *) ->
        let s = !fsp - 2 in
        Array.unsafe_set fstack s
          (Array.unsafe_get fstack s /. Array.unsafe_get fstack (s + 1));
        fsp := s + 1;
        pc := !pc + 1
    | 23 (* IEQ *) ->
        let s = !isp - 2 in
        Array.unsafe_set istack s
          (if Array.unsafe_get istack s = Array.unsafe_get istack (s + 1) then 1
           else 0);
        isp := s + 1;
        pc := !pc + 1
    | 24 (* INE *) ->
        let s = !isp - 2 in
        Array.unsafe_set istack s
          (if Array.unsafe_get istack s <> Array.unsafe_get istack (s + 1) then 1
           else 0);
        isp := s + 1;
        pc := !pc + 1
    | 25 (* ILT *) ->
        let s = !isp - 2 in
        Array.unsafe_set istack s
          (if Array.unsafe_get istack s < Array.unsafe_get istack (s + 1) then 1
           else 0);
        isp := s + 1;
        pc := !pc + 1
    | 26 (* ILE *) ->
        let s = !isp - 2 in
        Array.unsafe_set istack s
          (if Array.unsafe_get istack s <= Array.unsafe_get istack (s + 1) then 1
           else 0);
        isp := s + 1;
        pc := !pc + 1
    | 27 (* IGT *) ->
        let s = !isp - 2 in
        Array.unsafe_set istack s
          (if Array.unsafe_get istack s > Array.unsafe_get istack (s + 1) then 1
           else 0);
        isp := s + 1;
        pc := !pc + 1
    | 28 (* IGE *) ->
        let s = !isp - 2 in
        Array.unsafe_set istack s
          (if Array.unsafe_get istack s >= Array.unsafe_get istack (s + 1) then 1
           else 0);
        isp := s + 1;
        pc := !pc + 1
    | 29 (* FEQ *) ->
        (* IEEE equality, like [Ast.equal_value]: NaN <> NaN, -0. = +0. *)
        let s = !fsp - 2 in
        Array.unsafe_set istack !isp
          (if Array.unsafe_get fstack s = Array.unsafe_get fstack (s + 1) then 1
           else 0);
        isp := !isp + 1;
        fsp := s;
        pc := !pc + 1
    | 30 (* FNE *) ->
        let s = !fsp - 2 in
        Array.unsafe_set istack !isp
          (if Array.unsafe_get fstack s = Array.unsafe_get fstack (s + 1) then 0
           else 1);
        isp := !isp + 1;
        fsp := s;
        pc := !pc + 1
    | 31 (* FLT *) ->
        let s = !fsp - 2 in
        Array.unsafe_set istack !isp
          (if Array.unsafe_get fstack s < Array.unsafe_get fstack (s + 1) then 1
           else 0);
        isp := !isp + 1;
        fsp := s;
        pc := !pc + 1
    | 32 (* FLE *) ->
        let s = !fsp - 2 in
        Array.unsafe_set istack !isp
          (if Array.unsafe_get fstack s <= Array.unsafe_get fstack (s + 1) then 1
           else 0);
        isp := !isp + 1;
        fsp := s;
        pc := !pc + 1
    | 33 (* FGT *) ->
        let s = !fsp - 2 in
        Array.unsafe_set istack !isp
          (if Array.unsafe_get fstack s > Array.unsafe_get fstack (s + 1) then 1
           else 0);
        isp := !isp + 1;
        fsp := s;
        pc := !pc + 1
    | 34 (* FGE *) ->
        let s = !fsp - 2 in
        Array.unsafe_set istack !isp
          (if Array.unsafe_get fstack s >= Array.unsafe_get fstack (s + 1) then 1
           else 0);
        isp := !isp + 1;
        fsp := s;
        pc := !pc + 1
    | 35 (* JMP *) -> pc := Array.unsafe_get code (!pc + 1)
    | 36 (* JZ *) ->
        isp := !isp - 1;
        if Array.unsafe_get istack !isp = 0 then
          pc := Array.unsafe_get code (!pc + 1)
        else pc := !pc + 2
    | 37 (* FAIL *) ->
        inst.failures <-
          Array.unsafe_get t.failpool (Array.unsafe_get code (!pc + 1))
          :: inst.failures;
        pc := !pc + 2
    | op -> error "corrupt bytecode: opcode %d at pc %d" op !pc
  done;
  if !isp > 0 then Array.unsafe_get istack (!isp - 1) else 0

let step t inst (ev : Interp.event) =
  let kind = match ev.Interp.kind with Interp.Start -> 0 | Interp.End -> 1 in
  let task = ev.Interp.task in
  let col =
    (* front cache first (no hash), then the memo slot the task really
       hashes to, then the full probe *)
    let lh = t.last_h in
    if Array.unsafe_get t.memo_keys lh == task then
      Array.unsafe_get t.memo_cols lh
    else begin
      let h = Strmap.hash task land t.memo_mask in
      t.last_h <- h;
      if Array.unsafe_get t.memo_keys h == task then
        Array.unsafe_get t.memo_cols h
      else begin
        let c = Strmap.find t.task_ids task ~default:t.n_tasks in
        Array.unsafe_set t.memo_keys h task;
        Array.unsafe_set t.memo_cols h c;
        c
      end
    end
  in
  let seg =
    Array.unsafe_get t.dispatch
      (((((Array.unsafe_get inst.ints inst.ibase * 2) + kind) lsl t.row_shift)
       + col))
  in
  if seg < 0 then [] (* implicit self-transition *)
  else begin
    let cands = t.cands in
    let n = Array.unsafe_get cands seg in
    (* declaration-order guard scan (refs, not a local rec: see [exec]);
       quick guards evaluate inline, only general ones enter [exec] *)
    let fired = ref (-1) in
    let i = ref 0 in
    while !fired < 0 && !i < n do
      let tr = Array.unsafe_get cands (seg + 1 + !i) in
      let q = Array.unsafe_get t.tr_qg tr in
      let pass =
        if q = 1 then true
        else if q = 0 then begin
          let g = Array.unsafe_get t.tr_guard_pc tr in
          g < 0 || exec t inst ev g <> 0
        end
        else begin
          let v0 =
            Array.unsafe_get inst.ints
              (inst.ibase + Array.unsafe_get t.tr_qg_reg tr)
          in
          let v =
            if q >= 8 then Time.to_us ev.Interp.timestamp - v0 else v0
          in
          let k = Array.unsafe_get t.tr_qg_k tr in
          match if q < 8 then q else q - 6 with
          | 2 -> v < k
          | 3 -> v <= k
          | 4 -> v > k
          | 5 -> v >= k
          | 6 -> v = k
          | _ -> v <> k
        end
      in
      if pass then fired := tr else incr i
    done;
    if !fired < 0 then [] (* implicit self-transition *)
    else begin
      let tr = !fired in
      let qb = Array.unsafe_get t.tr_qb tr in
      let result =
        if qb = 0 then begin
          inst.failures <- [];
          ignore (exec t inst ev (Array.unsafe_get t.tr_body_pc tr));
          match inst.failures with [] -> [] | fs -> List.rev fs
        end
        else begin
          (* quick bodies contain no FAIL, so the result is always [] *)
          if qb >= 2 then begin
            let at = inst.ibase + Array.unsafe_get t.tr_qb_reg tr in
            let v =
              if qb = 2 then Array.unsafe_get t.tr_qb_k tr
              else if qb = 3 then
                Array.unsafe_get inst.ints at + Array.unsafe_get t.tr_qb_k tr
              else Time.to_us ev.Interp.timestamp
            in
            Array.unsafe_set inst.ints at v;
            if inst.sinks then
              inst.var_sink (Array.unsafe_get t.tr_qb_slot tr)
          end;
          []
        end
      in
      let tgt = Array.unsafe_get t.tr_target tr in
      Array.unsafe_set inst.ints inst.ibase tgt;
      if inst.sinks then inst.state_sink tgt;
      result
    end
  end

(* --- static worst-case step costs (energy-admissibility analysis) --- *)

(* Inline operand words following each opcode; must match [exec]. *)
let operand_words = function
  | 1 (* IPUSH *) | 2 (* FPUSH *) | 3 (* ILOAD *) | 4 (* FLOAD *)
  | 9 (* DEPLOAD *) | 35 (* JMP *) | 36 (* JZ *) | 37 (* FAIL *) -> 1
  | 5 (* ISTORE *) | 6 (* FSTORE *) -> 2
  | _ -> 0

(* Linear scan from [pc] to the program's terminating HALT.  The
   statement language has no loops, so every jump the lowering emits is
   forward and each op executes at most once: the (ops, stores) of the
   whole scan are a sound upper bound on any dynamic execution from
   [pc]. *)
let program_cost t pc =
  let ops = ref 0 and writes = ref 0 and p = ref pc in
  while t.code.(!p) <> op_halt do
    let op = t.code.(!p) in
    incr ops;
    if op = op_istore || op = op_fstore then incr writes;
    p := !p + 1 + operand_words op
  done;
  (!ops, !writes)

let guard_ops t tr =
  match t.tr_qg.(tr) with
  | 0 ->
      let g = t.tr_guard_pc.(tr) in
      if g < 0 then 0 else fst (program_cost t g)
  | 1 -> 0 (* unconditional *)
  | q when q < 8 -> 1 (* reg CMP k *)
  | _ -> 2 (* (t - reg) CMP k *)

(* (ops, var stores) of a fired body; the control-state write is charged
   separately by the caller. *)
let body_cost t tr =
  match t.tr_qb.(tr) with
  | 0 ->
      let b = t.tr_body_pc.(tr) in
      if b < 0 then (0, 0) else program_cost t b
  | 1 -> (0, 0) (* empty *)
  | 2 (* reg := k *) | 4 (* reg := t *) -> (1, 1)
  | _ -> (2, 1) (* reg := reg + k *)

type step_cost = {
  cost_state : string;
  cost_start : bool;  (** true for a start event, false for an end event *)
  cost_guard_ops : int;
  cost_body_ops : int;
  cost_nvm_writes : int;
}

let step_costs t =
  let acc = ref [] in
  for state = Array.length t.state_names - 1 downto 0 do
    for kind = 1 downto 0 do
      let base = ((state * 2) + kind) lsl t.row_shift in
      let gmax = ref 0 and bmax = ref 0 and wmax = ref 0 in
      let fires = ref false in
      for col = 0 to t.n_tasks do
        let seg = t.dispatch.(base + col) in
        if seg >= 0 then begin
          fires := true;
          (* worst case: every candidate guard runs (none passes until
             the last), then the worst body fires *)
          let gsum = ref 0 in
          let n = t.cands.(seg) in
          for i = 0 to n - 1 do
            let tr = t.cands.(seg + 1 + i) in
            gsum := !gsum + guard_ops t tr;
            let bops, bwrites = body_cost t tr in
            bmax := max !bmax bops;
            (* + 1: the fired transition always writes the control state *)
            wmax := max !wmax (bwrites + 1)
          done;
          gmax := max !gmax !gsum
        end
      done;
      if !fires then
        acc :=
          {
            cost_state = t.state_names.(state);
            cost_start = kind = 0;
            cost_guard_ops = !gmax;
            cost_body_ops = !bmax;
            cost_nvm_writes = !wmax;
          }
          :: !acc
    done
  done;
  !acc
