open Artemis_util
open Ast

type store = {
  get : int -> value;
  set : int -> value -> unit;
  get_state : unit -> int;
  set_state : int -> unit;
}

(* A compiled transition: guard and body are closures over the slot store,
   the target is an interned state id. *)
type ctrans = {
  guard : (store -> Interp.event -> value) option;
  body : store -> Interp.event -> Interp.failure list ref -> unit;
  target : int;
}

(* Per-state dispatch: [start_index]/[end_index] map a task name to the
   declaration-ordered transitions that can fire for that (kind, task) -
   the task's own triggers merged with the state's [On_any] triggers.
   Tasks absent from the index can only fire [On_any] transitions
   ([any_only]). *)
type cstate = {
  start_index : (string, ctrans array) Hashtbl.t;
  end_index : (string, ctrans array) Hashtbl.t;
  any_only : ctrans array;
}

type t = {
  machine : machine;
  state_names : string array;
  state_ids : (string, int) Hashtbl.t;
  var_decl_arr : var_decl array;
  var_ids : (string, int) Hashtbl.t;
  initial : int;
  states : cstate array;
  watched : string list;  (* distinct, first-mention order *)
  watched_tbl : (string, unit) Hashtbl.t;
  any_event : bool;
}

let machine t = t.machine
let name t = t.machine.machine_name
let state_count t = Array.length t.state_names
let state_name t i = t.state_names.(i)
let state_id t n = Hashtbl.find t.state_ids n
let initial_state t = t.initial
let var_count t = Array.length t.var_decl_arr
let var_name t i = t.var_decl_arr.(i).var_name
let var_id t n = Hashtbl.find t.var_ids n
let var_decls t = t.var_decl_arr
let watched_tasks t = t.watched
let watches_any_event t = t.any_event
let mentions_task t task = t.any_event || Hashtbl.mem t.watched_tbl task

let pp_event_key ppf (kind, task) =
  match (kind : Interp.event_kind) with
  | Interp.Start -> Format.fprintf ppf "startTask(%s)" task
  | Interp.End -> Format.fprintf ppf "endTask(%s)" task

let error fmt =
  Format.kasprintf (fun s -> raise (Interp.Runtime_error s)) fmt

(* --- expression compilation --- *)

(* The typechecker rules out static type errors, so the fast paths below
   cover every well-typed case they match; anything else (remaining valid
   shapes like time arithmetic, and genuine dynamic errors) falls back to
   [Interp.eval_binop], the single source of operator semantics and error
   messages. *)
let rec compile_expr var_ids (e : expr) : store -> Interp.event -> value =
  match e with
  | Lit v -> fun _ _ -> v
  | Var x ->
      let slot = Hashtbl.find var_ids x in
      fun s _ -> s.get slot
  | Timestamp -> fun _ ev -> Vtime ev.Interp.timestamp
  | Event_path -> fun _ ev -> Vint ev.Interp.path
  | Dep_data x ->
      fun _ ev -> (
        match List.assoc_opt x ev.Interp.dep_data with
        | Some f -> Vfloat f
        | None -> error "event carries no data for %S" x)
  | Energy_level -> fun _ ev -> Vfloat ev.Interp.energy_mj
  | Unop (Neg, e) -> (
      let f = compile_expr var_ids e in
      fun s ev ->
        match f s ev with
        | Vint n -> Vint (-n)
        | Vfloat x -> Vfloat (-.x)
        | Vtime t -> Vtime (Time.sub Time.zero t)
        | Vbool _ -> error "cannot negate a bool")
  | Unop (Not, e) ->
      let f = compile_expr var_ids e in
      fun s ev -> Vbool (not (Interp.as_bool (f s ev)))
  | Binop (And, a, b) ->
      (* short-circuit, like the interpreter and the generated C *)
      let fa = compile_expr var_ids a and fb = compile_expr var_ids b in
      fun s ev -> if Interp.as_bool (fa s ev) then fb s ev else Vbool false
  | Binop (Or, a, b) ->
      let fa = compile_expr var_ids a and fb = compile_expr var_ids b in
      fun s ev -> if Interp.as_bool (fa s ev) then Vbool true else fb s ev
  | Binop (op, a, b) -> (
      (* operands evaluate left-to-right, matching the interpreter: when
         both raise, the left error must win in every engine *)
      let fa = compile_expr var_ids a and fb = compile_expr var_ids b in
      match op with
      | Add -> (
          fun s ev ->
            let va = fa s ev in
            let vb = fb s ev in
            match (va, vb) with
            | Vint x, Vint y -> Vint (x + y)
            | Vfloat x, Vfloat y -> Vfloat (x +. y)
            | va, vb -> Interp.eval_binop Add va vb)
      | Sub -> (
          fun s ev ->
            let va = fa s ev in
            let vb = fb s ev in
            match (va, vb) with
            | Vint x, Vint y -> Vint (x - y)
            | Vfloat x, Vfloat y -> Vfloat (x -. y)
            | va, vb -> Interp.eval_binop Sub va vb)
      | Mul -> (
          fun s ev ->
            let va = fa s ev in
            let vb = fb s ev in
            match (va, vb) with
            | Vint x, Vint y -> Vint (x * y)
            | Vfloat x, Vfloat y -> Vfloat (x *. y)
            | va, vb -> Interp.eval_binop Mul va vb)
      | Lt -> (
          fun s ev ->
            let va = fa s ev in
            let vb = fb s ev in
            match (va, vb) with
            | Vint x, Vint y -> Vbool (x < y)
            | Vfloat x, Vfloat y -> Vbool (x < y)
            | va, vb -> Interp.eval_binop Lt va vb)
      | Le -> (
          fun s ev ->
            let va = fa s ev in
            let vb = fb s ev in
            match (va, vb) with
            | Vint x, Vint y -> Vbool (x <= y)
            | Vfloat x, Vfloat y -> Vbool (x <= y)
            | va, vb -> Interp.eval_binop Le va vb)
      | Gt -> (
          fun s ev ->
            let va = fa s ev in
            let vb = fb s ev in
            match (va, vb) with
            | Vint x, Vint y -> Vbool (x > y)
            | Vfloat x, Vfloat y -> Vbool (x > y)
            | va, vb -> Interp.eval_binop Gt va vb)
      | Ge -> (
          fun s ev ->
            let va = fa s ev in
            let vb = fb s ev in
            match (va, vb) with
            | Vint x, Vint y -> Vbool (x >= y)
            | Vfloat x, Vfloat y -> Vbool (x >= y)
            | va, vb -> Interp.eval_binop Ge va vb)
      | Eq | Ne | Div | Mod ->
          fun s ev ->
            let va = fa s ev in
            let vb = fb s ev in
            Interp.eval_binop op va vb
      | And | Or -> assert false (* handled above *))

(* --- statement compilation --- *)

let rec compile_stmt var_ids machine_name = function
  | Assign (x, e) ->
      let slot = Hashtbl.find var_ids x in
      let f = compile_expr var_ids e in
      fun s ev _acc -> s.set slot (f s ev)
  | If (cond, then_, else_) ->
      let fc = compile_expr var_ids cond
      and ft = compile_stmts var_ids machine_name then_
      and fe = compile_stmts var_ids machine_name else_ in
      fun s ev acc ->
        if Interp.as_bool (fc s ev) then ft s ev acc else fe s ev acc
  | Fail (action, target_path) ->
      (* the failure record is fully known at compile time *)
      let failure =
        { Interp.failed_machine = machine_name; action; target_path }
      in
      fun _ _ acc -> acc := failure :: !acc

and compile_stmts var_ids machine_name stmts =
  match Array.of_list (List.map (compile_stmt var_ids machine_name) stmts) with
  | [||] -> fun _ _ _ -> ()
  | [| f |] -> f
  | fs -> fun s ev acc -> Array.iter (fun f -> f s ev acc) fs

(* --- state dispatch tables --- *)

let compile_state var_ids state_ids machine_name (s : state) =
  let compiled =
    List.map
      (fun tr ->
        ( tr.trigger,
          {
            guard = Option.map (compile_expr var_ids) tr.guard;
            body = compile_stmts var_ids machine_name tr.body;
            target = Hashtbl.find state_ids tr.target;
          } ))
      s.transitions
  in
  let candidates pred =
    Array.of_list (List.filter_map (fun (trg, c) -> if pred trg then Some c else None) compiled)
  in
  let tasks_of pick =
    List.filter_map (fun (trg, _) -> pick trg) compiled
    |> List.sort_uniq String.compare
  in
  let start_tasks =
    tasks_of (function On_start t -> Some t | On_end _ | On_any -> None)
  in
  let end_tasks =
    tasks_of (function On_end t -> Some t | On_start _ | On_any -> None)
  in
  let start_index = Hashtbl.create (max 1 (List.length start_tasks)) in
  List.iter
    (fun task ->
      Hashtbl.replace start_index task
        (candidates (function
          | On_start t -> String.equal t task
          | On_any -> true
          | On_end _ -> false)))
    start_tasks;
  let end_index = Hashtbl.create (max 1 (List.length end_tasks)) in
  List.iter
    (fun task ->
      Hashtbl.replace end_index task
        (candidates (function
          | On_end t -> String.equal t task
          | On_any -> true
          | On_start _ -> false)))
    end_tasks;
  {
    start_index;
    end_index;
    any_only = candidates (function On_any -> true | On_start _ | On_end _ -> false);
  }

let compile (m : machine) =
  Typecheck.check_exn m;
  let state_names = Array.of_list (List.map (fun s -> s.state_name) m.states) in
  let state_ids = Hashtbl.create (Array.length state_names) in
  Array.iteri (fun i n -> Hashtbl.replace state_ids n i) state_names;
  let var_decl_arr = Array.of_list m.vars in
  let var_ids = Hashtbl.create (max 1 (Array.length var_decl_arr)) in
  Array.iteri (fun i v -> Hashtbl.replace var_ids v.var_name i) var_decl_arr;
  let states =
    Array.of_list
      (List.map (compile_state var_ids state_ids m.machine_name) m.states)
  in
  let watched_tbl = Hashtbl.create 8 in
  let watched = ref [] in
  let any_event = ref false in
  List.iter
    (fun s ->
      List.iter
        (fun tr ->
          match tr.trigger with
          | On_start t | On_end t ->
              if not (Hashtbl.mem watched_tbl t) then begin
                Hashtbl.replace watched_tbl t ();
                watched := t :: !watched
              end
          | On_any -> any_event := true)
        s.transitions)
    m.states;
  {
    machine = m;
    state_names;
    state_ids;
    var_decl_arr;
    var_ids;
    initial = Hashtbl.find state_ids m.initial;
    states;
    watched = List.rev !watched;
    watched_tbl;
    any_event = !any_event;
  }

(* --- execution --- *)

let memory_store t =
  let vars = Array.map (fun v -> v.init) t.var_decl_arr in
  let state = ref t.initial in
  {
    get = (fun i -> vars.(i));
    set = (fun i v -> vars.(i) <- v);
    get_state = (fun () -> !state);
    set_state = (fun s -> state := s);
  }

let step t store (event : Interp.event) =
  let cstate = t.states.(store.get_state ()) in
  let candidates =
    let index =
      match event.Interp.kind with
      | Interp.Start -> cstate.start_index
      | Interp.End -> cstate.end_index
    in
    match Hashtbl.find_opt index event.Interp.task with
    | Some trs -> trs
    | None -> cstate.any_only
  in
  let n = Array.length candidates in
  let rec first i =
    if i >= n then None
    else
      let tr = candidates.(i) in
      match tr.guard with
      | None -> Some tr
      | Some g ->
          if Interp.as_bool (g store event) then Some tr else first (i + 1)
  in
  match first 0 with
  | None -> []  (* implicit self-transition *)
  | Some tr ->
      let failures = ref [] in
      tr.body store event failures;
      store.set_state tr.target;
      List.rev !failures
