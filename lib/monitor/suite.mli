(** The set of application-specific monitors deployed with one
    application, and the arbitration rule the runtime applies when
    several of them fail on the same event.

    Deployment builds a task-indexed dispatch table: each event only
    touches the monitors that can react to it (monitors naming the
    event's task, plus the always-run [On_any] watchers), so delivering
    an event is O(relevant monitors), not O(deployed monitors). *)

open Artemis_nvm
open Artemis_fsm

type t

val create : ?engine:Monitor.engine -> Nvm.t -> Ast.machine list -> t
(** [engine] defaults to [Compiled] (see {!Monitor.create}). *)

val of_monitors : Monitor.t list -> t
(** Build a suite (and its dispatch index) over already-created monitors.
    Used by the live-adaptation protocol, which creates replacement
    monitors itself so it can control cell naming and state migration. *)

val monitors : t -> Monitor.t list

(** {2 Mutation (PR 4 live adaptation)}

    All three are functional: they return a new suite sharing the
    untouched monitors (and their NVM cells) with the old one, so the
    adaptation protocol can hold both generations until its single-cell
    generation flip commits. *)

val find : t -> string -> Monitor.t option
(** The deployed monitor with that machine name, if any. *)

val add : t -> Monitor.t -> t
(** @raise Invalid_argument if a monitor with the same name is deployed. *)

val remove : t -> string -> t
(** @raise Invalid_argument if no monitor with that name is deployed. *)

val replace : t -> Monitor.t -> t
(** Swap in [monitor] for the same-named deployed monitor, preserving
    deployment order.
    @raise Invalid_argument if no monitor with that name is deployed. *)

val property_count : t -> int
(** Number of deployed monitors = number of properties (the monitor
    overhead cost model scales with this). *)

val hard_reset : t -> unit

val relevant_monitors : t -> Interp.event -> Monitor.t list
(** The monitors that can react to the event, in deployment order: one
    hash lookup on the event's task ([On_any] watchers for unknown
    tasks). *)

val step_all : t -> Interp.event -> Interp.failure list
(** Deliver the event to every relevant monitor, concatenating the
    reported failures in deployment order.  Equivalent to
    {!step_all_unindexed} (skipped monitors could only take the implicit
    self-transition). *)

val step_all_unindexed : t -> Interp.event -> Interp.failure list
(** Reference path: deliver the event to {e every} monitor (each machine
    decides relevance).  Kept for differential tests and as the
    interpreted-era baseline in the benchmarks. *)

val reinit_for_tasks : t -> tasks:string list -> unit
(** Path restart: re-initialize every monitor watching one of the given
    tasks (Section 3.3).  [On_any] machines watch every task. *)

val fram_bytes : t -> int

(** {2 Arbitration} *)

val severity : Ast.action -> int
(** Deterministic action-severity order (DESIGN.md decision 3):
    skipPath (4) > restartPath (3) > completePath (2) > skipTask (1) >
    restartTask (0). *)

val arbitrate : Interp.failure list -> Interp.failure option
(** The failure whose action the runtime executes: highest severity,
    first-reported among equals; [None] when the list is empty. *)
