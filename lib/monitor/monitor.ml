open Artemis_nvm
open Artemis_fsm
module Obs = Artemis_obs.Obs

let m_steps = Obs.counter "monitor_steps"
let m_failures = Obs.counter "monitor_failures"

let ty_bytes = function
  | Ast.Tint -> 4
  | Ast.Tbool -> 1
  | Ast.Tfloat -> 4
  | Ast.Ttime -> 8

type engine = Interpreted | Compiled | Table

(* The table engine keeps its working state in registers, but the FRAM
   cells must stay authoritative for crash recovery: the instance's sinks
   write each assignment through to its cell in program order (so NVM
   write counts and injection-site hits match the other engines), and the
   registers are refreshed from the cells whenever they may have diverged
   - after a transaction abort or power failure (tracked by the store's
   [Nvm.revert_count]) or an out-of-band cell write (reset, persistent
   state migration), which forces [synced_at] back to [min_int]. *)
type table_rt = {
  table : Table.t;
  tinst : Table.inst;
  nvm : Nvm.t;
  mutable synced_at : int;  (* revert_count at the last register refresh *)
}

type t = {
  obs : Obs.ctx;  (* the owning device's recording surface *)
  compiled : Compile.t;
  engine : engine;
  state_cell : int Nvm.cell;  (* interned state id *)
  var_cells : Ast.value Nvm.cell array;  (* indexed by variable slot *)
  cstore : Compile.store;
  istore : Interp.store;  (* reference semantics over the same cells *)
  trt : table_rt option;  (* present iff [engine = Table] *)
  bytes : int;
}

let create ?(engine = Compiled) ?cell_prefix nvm (machine : Ast.machine) =
  let compiled = Compile.compile machine (* typechecks *) in
  let prefix =
    match cell_prefix with
    | Some p -> p
    | None -> machine.Ast.machine_name
  in
  let state_cell =
    Nvm.cell nvm ~region:Monitor ~name:(prefix ^ ".state") ~bytes:2
      (Compile.initial_state compiled)
  in
  let var_cells =
    Array.map
      (fun (v : Ast.var_decl) ->
        Nvm.cell nvm ~region:Monitor
          ~name:(prefix ^ "." ^ v.Ast.var_name)
          ~bytes:(ty_bytes v.Ast.ty) v.Ast.init)
      (Compile.var_decls compiled)
  in
  let cstore =
    {
      Compile.get = (fun slot -> Nvm.read var_cells.(slot));
      set = (fun slot v -> Nvm.write_join var_cells.(slot) v);
      get_state = (fun () -> Nvm.read state_cell);
      set_state = (fun id -> Nvm.write_join state_cell id);
    }
  in
  (* The interpreted store resolves names through the interning tables so
     both engines share the exact same FRAM cells. *)
  let istore =
    let slot_exn x =
      match Compile.var_id compiled x with
      | slot -> slot
      | exception Not_found ->
          raise (Interp.Runtime_error (Printf.sprintf "unknown variable %S" x))
    in
    {
      Interp.get = (fun x -> Nvm.read var_cells.(slot_exn x));
      set = (fun x v -> Nvm.write_join var_cells.(slot_exn x) v);
      get_state = (fun () -> Compile.state_name compiled (Nvm.read state_cell));
      set_state = (fun s -> Nvm.write_join state_cell (Compile.state_id compiled s));
    }
  in
  (* The generated C keeps each property's parameters (limits, dependent
     task pointer, action fields) in an FRAM-resident property_t struct
     (Figure 10); the interpreter holds them in the machine AST instead,
     so the deployed footprint is accounted for explicitly. *)
  let property_table_bytes = 24 in
  ignore
    (Nvm.cell nvm ~region:Monitor ~name:(prefix ^ ".property_t")
       ~bytes:property_table_bytes ());
  let bytes =
    2 + property_table_bytes
    + List.fold_left (fun acc v -> acc + ty_bytes v.Ast.ty) 0 machine.Ast.vars
  in
  let trt =
    match engine with
    | Interpreted | Compiled -> None
    | Table ->
        let table = Table.compile machine in
        (* the var sink must read back the register it just wrote, so it
           needs the instance being constructed: tie the knot via a ref *)
        let self = ref None in
        let tinst =
          Table.instance table
            ~var_sink:(fun slot ->
              match !self with
              | Some i ->
                  Nvm.write_join var_cells.(slot) (Table.read_var table i slot)
              | None -> ())
            ~state_sink:(fun id -> Nvm.write_join state_cell id)
        in
        self := Some tinst;
        Some { table; tinst; nvm; synced_at = min_int }
  in
  { obs = Nvm.obs nvm; compiled; engine; state_cell; var_cells; cstore; istore; trt; bytes }

let name t = Compile.name t.compiled
let machine t = Compile.machine t.compiled
let engine t = t.engine
let compiled t = t.compiled

(* Reset/reinit writes join any enclosing transaction (write_join) so a
   path restart can make the whole monitor re-initialisation atomic. *)
(* any write to the cells that bypasses the table instance's sinks must
   force a register refresh before the next table step *)
let invalidate_registers t =
  match t.trt with Some rt -> rt.synced_at <- min_int | None -> ()

let hard_reset t =
  Nvm.write_join t.state_cell (Compile.initial_state t.compiled);
  Array.iteri
    (fun slot (v : Ast.var_decl) -> Nvm.write_join t.var_cells.(slot) v.Ast.init)
    (Compile.var_decls t.compiled);
  invalidate_registers t

let reinitialize t =
  Nvm.write_join t.state_cell (Compile.initial_state t.compiled);
  Array.iteri
    (fun slot (v : Ast.var_decl) ->
      if not v.Ast.persistent then Nvm.write_join t.var_cells.(slot) v.Ast.init)
    (Compile.var_decls t.compiled);
  invalidate_registers t

let step t event =
  Obs.Ctx.incr t.obs m_steps;
  let failures =
    match t.engine with
    | Compiled -> Compile.step t.compiled t.cstore event
    | Interpreted -> Interp.step (Compile.machine t.compiled) t.istore event
    | Table ->
        let rt = Option.get t.trt in
        (* registers go stale only after a rollback (revert counter) or an
           out-of-band cell write ([invalidate_registers]); on the
           steady-state path this is one integer compare *)
        let rc = Nvm.revert_count rt.nvm in
        if rt.synced_at <> rc then begin
          Table.set_state rt.tinst (Nvm.read t.state_cell);
          let cells = t.var_cells in
          for slot = 0 to Array.length cells - 1 do
            Table.load_var rt.table rt.tinst slot (Nvm.read cells.(slot))
          done;
          rt.synced_at <- rc
        end;
        Table.step rt.table rt.tinst event
  in
  (match failures with [] -> () | fs -> Obs.Ctx.add t.obs m_failures (List.length fs));
  failures

let current_state t = Compile.state_name t.compiled (Nvm.read t.state_cell)

let read_var t x =
  match Compile.var_id t.compiled x with
  | slot -> Nvm.read t.var_cells.(slot)
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf "Monitor.read_var: monitor %S has no variable %S"
           (Compile.name t.compiled) x)

(* --- live adaptation (PR 4): persistent-state hand-over --- *)

(* A replacement monitor may keep its predecessor's [persistent]
   variables only when every one of them has a same-named, same-typed
   persistent counterpart in the predecessor; otherwise the adaptation
   protocol falls back to hard-reset semantics (fresh initial values). *)
let compatible_layout ~from t =
  Array.for_all
    (fun (v : Ast.var_decl) ->
      (not v.Ast.persistent)
      || Array.exists
           (fun (w : Ast.var_decl) ->
             w.Ast.persistent
             && String.equal w.Ast.var_name v.Ast.var_name
             && w.Ast.ty = v.Ast.ty)
           (Compile.var_decls from.compiled))
    (Compile.var_decls t.compiled)

(* Copy persistent values from the retiring monitor into the replacement.
   Each copy is a plain [Nvm.write]: individually durable, and idempotent
   because the source cells are never touched — so the whole migration can
   be re-run from the top after a mid-migration power failure without
   changing the outcome.  Returns the migrated variable names. *)
let migrate_persistent ~from t =
  Array.to_list (Compile.var_decls t.compiled)
  |> List.filter_map (fun (v : Ast.var_decl) ->
         if not v.Ast.persistent then None
         else
           match Compile.var_id from.compiled v.Ast.var_name with
           | exception Not_found -> None
           | old_slot ->
               let w = (Compile.var_decls from.compiled).(old_slot) in
               if w.Ast.persistent && w.Ast.ty = v.Ast.ty then (
                 let slot = Compile.var_id t.compiled v.Ast.var_name in
                 Nvm.write t.var_cells.(slot) (Nvm.read from.var_cells.(old_slot));
                 Some v.Ast.var_name)
               else None)
  |> fun migrated ->
  invalidate_registers t;
  migrated

let watches_task t task = Compile.mentions_task t.compiled task
let watches_event t (event : Interp.event) = watches_task t event.Interp.task
let fram_bytes t = t.bytes
