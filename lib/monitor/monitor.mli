(** A deployed monitor: an intermediate-language machine whose variables
    and control state live in simulated FRAM, so that - like the
    ImmortalThreads-generated C monitors of Section 4.2.3 - it survives
    power failures without losing track of the properties it checks.

    The machine is compiled once at deploy time ({!Compile}): variables
    live in a slot-indexed array of FRAM cells, the control state is an
    interned id, and event dispatch is a hash lookup - the per-event path
    does no list scans or string comparisons. *)

open Artemis_nvm
open Artemis_fsm

type t

type engine =
  | Interpreted
      (** Reference semantics: {!Interp.step} over the AST.  Kept for
          differential testing and the interpreted-vs-compiled bench. *)
  | Compiled  (** Deploy-time compiled closures ({!Compile.step}). *)

val create : ?engine:engine -> Nvm.t -> Ast.machine -> t
(** Typechecks and compiles the machine, then allocates one FRAM cell per
    variable plus a state cell, all in the [Monitor] region (their bytes
    are what Table 2 reports as monitor FRAM).  [engine] defaults to
    [Compiled]; both engines operate on the same FRAM cells and are
    observationally equivalent.
    @raise Failure if the machine is ill-typed. *)

val name : t -> string
val machine : t -> Ast.machine
val engine : t -> engine

val compiled : t -> Compile.t
(** The compiled form (interning tables, static trigger information). *)

val hard_reset : t -> unit
(** First-boot initialisation ([resetMonitor], Figure 8 line 14). *)

val reinitialize : t -> unit
(** Path-restart re-initialisation: control state and ordinary variables
    reset, [persistent] variables retained (Section 3.3 and DESIGN.md
    decision 2). *)

val step : t -> Interp.event -> Interp.failure list
(** Feed one runtime event through the machine. *)

val current_state : t -> string
val read_var : t -> string -> Ast.value
(** @raise Not_found for an unknown variable. *)

val watches_task : t -> string -> bool
(** Whether any trigger of the machine applies to the task (O(1); [On_any]
    machines watch every task).  Used to select the monitors a path
    restart must re-initialize and to index event dispatch. *)

val watches_event : t -> Interp.event -> bool
(** [watches_task] on the event's task. *)

val fram_bytes : t -> int
