(** A deployed monitor: an intermediate-language machine whose variables
    and control state live in simulated FRAM, so that - like the
    ImmortalThreads-generated C monitors of Section 4.2.3 - it survives
    power failures without losing track of the properties it checks.

    The machine is compiled once at deploy time ({!Compile}): variables
    live in a slot-indexed array of FRAM cells, the control state is an
    interned id, and event dispatch is a hash lookup - the per-event path
    does no list scans or string comparisons. *)

open Artemis_nvm
open Artemis_fsm

type t

type engine =
  | Interpreted
      (** Reference semantics: {!Interp.step} over the AST.  Kept for
          differential testing and the interpreted-vs-compiled bench. *)
  | Compiled  (** Deploy-time compiled closures ({!Compile.step}). *)
  | Table
      (** Flat-table bytecode engine ({!Table.step}): dense dispatch plus
          postfix bytecode over an int/float register file.  The FRAM
          cells stay authoritative — registers are refreshed from the
          cells before each step and every assignment is written through
          to its cell in program order, so footprint accounting and
          crash recovery are identical to the other engines. *)

val create : ?engine:engine -> ?cell_prefix:string -> Nvm.t -> Ast.machine -> t
(** Typechecks and compiles the machine, then allocates one FRAM cell per
    variable plus a state cell, all in the [Monitor] region (their bytes
    are what Table 2 reports as monitor FRAM).  [engine] defaults to
    [Compiled]; both engines operate on the same FRAM cells and are
    observationally equivalent.  [cell_prefix] overrides the machine name
    as the cell-name prefix — the live-adaptation protocol deploys
    replacement generations under ["g<N>/<machine>"] so both generations'
    cells coexist until the generation flip commits.
    @raise Failure if the machine is ill-typed. *)

val name : t -> string
val machine : t -> Ast.machine
val engine : t -> engine

val compiled : t -> Compile.t
(** The compiled form (interning tables, static trigger information). *)

val hard_reset : t -> unit
(** First-boot initialisation ([resetMonitor], Figure 8 line 14). *)

val reinitialize : t -> unit
(** Path-restart re-initialisation: control state and ordinary variables
    reset, [persistent] variables retained (Section 3.3 and DESIGN.md
    decision 2). *)

val step : t -> Interp.event -> Interp.failure list
(** Feed one runtime event through the machine. *)

val current_state : t -> string
val read_var : t -> string -> Ast.value
(** @raise Invalid_argument for an unknown variable, naming the monitor
    and the variable. *)

(** {2 Live adaptation (PR 4)} *)

val compatible_layout : from:t -> t -> bool
(** Whether every [persistent] variable of the replacement monitor has a
    same-named, same-typed persistent counterpart in [from].  When false
    the adaptation protocol keeps the replacement's fresh initial values
    (hard-reset fallback). *)

val migrate_persistent : from:t -> t -> string list
(** Copy each compatible persistent variable's current value from [from]
    into the replacement's cells and return the migrated names.  Each copy
    is an individually-durable {!Nvm.write} and the source cells are never
    written, so re-running the migration after a mid-migration power
    failure is harmless (idempotent). *)

val watches_task : t -> string -> bool
(** Whether any trigger of the machine applies to the task (O(1); [On_any]
    machines watch every task).  Used to select the monitors a path
    restart must re-initialize and to index event dispatch. *)

val watches_event : t -> Interp.event -> bool
(** [watches_task] on the event's task. *)

val fram_bytes : t -> int
