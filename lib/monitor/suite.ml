open Artemis_fsm

(* [dispatch] maps each statically-watched task to the deployment-ordered
   monitors that can react to its events ([On_any] watchers included, in
   place).  Events for tasks no monitor names fall back to [any_watchers].
   Monitors not in an event's list can only take the implicit
   self-transition, so skipping them is observationally equivalent to
   stepping everything. *)
type t = {
  monitors : Monitor.t list;
  dispatch : (string, Monitor.t list) Hashtbl.t;
  any_watchers : Monitor.t list;
}

let of_monitors monitors =
  let tasks =
    List.concat_map (fun m -> Compile.watched_tasks (Monitor.compiled m)) monitors
    |> List.sort_uniq String.compare
  in
  let dispatch = Hashtbl.create (max 1 (List.length tasks)) in
  List.iter
    (fun task ->
      Hashtbl.replace dispatch task
        (List.filter (fun m -> Monitor.watches_task m task) monitors))
    tasks;
  let any_watchers =
    List.filter (fun m -> Compile.watches_any_event (Monitor.compiled m)) monitors
  in
  { monitors; dispatch; any_watchers }

let create ?engine nvm machines =
  of_monitors (List.map (Monitor.create ?engine nvm) machines)

(* The mutation API is functional: each operation rebuilds the dispatch
   index over the new monitor list, so a suite value is immutable and the
   adaptation protocol can hold both generations while it commits.  The
   monitors themselves (and their NVM cells) are shared, not copied. *)

let find t name =
  List.find_opt (fun m -> String.equal (Monitor.name m) name) t.monitors

let add t monitor =
  if find t (Monitor.name monitor) <> None then
    invalid_arg
      (Printf.sprintf "Suite.add: monitor %S already deployed"
         (Monitor.name monitor));
  of_monitors (t.monitors @ [ monitor ])

let remove t name =
  if find t name = None then
    invalid_arg (Printf.sprintf "Suite.remove: no monitor %S deployed" name);
  of_monitors
    (List.filter (fun m -> not (String.equal (Monitor.name m) name)) t.monitors)

let replace t monitor =
  let name = Monitor.name monitor in
  if find t name = None then
    invalid_arg (Printf.sprintf "Suite.replace: no monitor %S deployed" name);
  of_monitors
    (List.map
       (fun m -> if String.equal (Monitor.name m) name then monitor else m)
       t.monitors)

let monitors t = t.monitors
let property_count t = List.length t.monitors
let hard_reset t = List.iter Monitor.hard_reset t.monitors

let relevant_monitors t (event : Interp.event) =
  match Hashtbl.find_opt t.dispatch event.Interp.task with
  | Some ms -> ms
  | None -> t.any_watchers

let step_all t event =
  List.concat_map (fun m -> Monitor.step m event) (relevant_monitors t event)

let step_all_unindexed t event =
  List.concat_map (fun m -> Monitor.step m event) t.monitors

let reinit_for_tasks t ~tasks =
  List.iter
    (fun m ->
      if List.exists (fun task -> Monitor.watches_task m task) tasks then
        Monitor.reinitialize m)
    t.monitors

let fram_bytes t =
  List.fold_left (fun acc m -> acc + Monitor.fram_bytes m) 0 t.monitors

let severity = function
  | Ast.Skip_path -> 4
  | Ast.Restart_path -> 3
  | Ast.Complete_path -> 2
  | Ast.Skip_task -> 1
  | Ast.Restart_task -> 0

let arbitrate failures =
  List.fold_left
    (fun best (f : Interp.failure) ->
      match best with
      | None -> Some f
      | Some b -> if severity f.action > severity b.action then Some f else Some b)
    None failures
