(** Catalogue of self-contained device+application+property scenarios the
    fault-injection engine can rebuild from scratch for every run.

    Determinism contract: [build] must construct a fresh device, fresh
    NVM and fresh monitors every time, with no dependence on wall-clock
    time or global mutable state, so that two runs of the same injection
    schedule produce byte-identical traces. *)

open Artemis

type built = {
  device : Device.t;
  app : Task.app;
  suite : Suite.t;
  machines : Fsm.Ast.machine list;
      (** the deployed property machines, in deployment order - the
          golden oracle re-executes them on a pristine store *)
  config : Runtime.config;
}

type t = {
  name : string;
  description : string;
  build : seed:int -> built;  (** [seed] feeds the task-context PRNG *)
}

val quickstart : t
(** [examples/quickstart.ml] verbatim: sample -> doomed transmit under a
    3.2 mJ capacitor, one [maxTries: 3 onFail: skipPath] property. *)

val health : t
(** The Figure 4-6 wearable benchmark: three paths, the full Figure 5
    property specification, 1-minute charging delay. *)

val all : t list
val find : string -> t option
