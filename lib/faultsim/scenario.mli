(** Catalogue of self-contained device+application+property scenarios the
    fault-injection engine can rebuild from scratch for every run.

    Determinism contract: [build] must construct a fresh device, fresh
    NVM and fresh monitors every time, with no dependence on wall-clock
    time or global mutable state, so that two runs of the same injection
    schedule produce byte-identical traces. *)

open Artemis

type built = {
  device : Device.t;
  app : Task.app;
  suite : Suite.t;
  machines : Fsm.Ast.machine list;
      (** the deployed property machines, in deployment order - the
          golden oracle re-executes them on a pristine store *)
  config : Runtime.config;
  adaptations : (int * Adapt.update) list;
      (** live property updates delivered mid-run (PR 4); empty for the
          classic scenarios *)
}

type t = {
  name : string;
  description : string;
  build : engine:Monitor.engine option -> seed:int -> built;
      (** [seed] feeds the task-context PRNG; [engine] selects the
          monitor execution backend (default [Compiled]) *)
}

val quickstart : t
(** [examples/quickstart.ml] verbatim: sample -> doomed transmit under a
    3.2 mJ capacitor, one [maxTries: 3 onFail: skipPath] property. *)

val health : t
(** The Figure 4-6 wearable benchmark: three paths, the full Figure 5
    property specification, 1-minute charging delay. *)

val quickstart_adapt : t
(** {!quickstart} plus a live update at iteration 3 replacing the
    maxTries property - drives the campaign through the update-window
    crash sites. *)

val health_adapt : t
(** {!health} plus a live update at iteration 40 tightening the MITD
    window (persistent [attempts] migrated) and removing
    [maxDuration_send]. *)

val with_engine : Monitor.engine -> t -> t
(** Pin the scenario's monitor engine: the returned scenario builds the
    same device and application but deploys its suite with [engine],
    ignoring any engine passed to [build].  Name and description are
    unchanged, so campaign reports stay comparable across engines. *)

val all : t list
val find : string -> t option
